.PHONY: all build test check clean

all: build

build:
	dune build @all

test:
	dune runtest

# The gate a PR must pass: everything builds, every test is green, and
# no build artifacts are tracked or dirtying the tree.
check:
	dune build @all
	dune runtest
	@if git ls-files | grep -q '^_build/'; then \
	  echo "check: _build/ files are tracked in git" >&2; exit 1; fi
	@if git status --porcelain | grep -q '_build'; then \
	  echo "check: _build/ appears in git status (gitignore broken?)" >&2; exit 1; fi
	@echo "check: OK"

clean:
	dune clean
