.PHONY: all build test lint certify-smoke farm-smoke chaos-smoke control-smoke trace-smoke bench-pin perf-compare check clean

all: build

build:
	dune build @all

test:
	dune runtest

# Static-analysis self-check: run the dataflow analyzer over every
# bundled workload class. Fails on solver non-convergence or a CFG
# that changes across an encode/decode round trip.
lint:
	dune exec bin/dvmctl.exe -- lint
	dune exec bin/dvmctl.exe -- certify --small

# Certified-rewriting smoke: rewrite the full bundled workloads with
# certificate emission on and translation-validate every class from its
# wire image (must be 0 failures), then run the seeded mutation harness
# over the small builds — corrupted rewriter output / tampered
# certificates must be killed by the verifier or the certifier at a
# kill rate of at least 0.9. dvmctl exits nonzero on either front.
certify-smoke:
	dune exec bin/dvmctl.exe -- certify --mutate --seed 20260808 --count 3 --min-kill 0.9

# Smoke-scale run of the proxy-farm experiment: a quick shard sweep
# with caching off (the scaling curve) and one cached run exercising
# single-flight coalescing and the shared L2.
farm-smoke:
	dune exec bin/dvmctl.exe -- farm --clients 24 --shards 1,2 --duration 5 --applets 8
	dune exec bin/dvmctl.exe -- farm --clients 24 --shards 2 --duration 5 --applets 4 --cache 16 --l2 32

# Smoke-scale chaos run: a short seeded schedule (one crash window,
# LAN loss, a flash-crowd spike) against the overload controls.
# dvmctl exits nonzero if any of the three invariants — digest
# integrity, zero late serves, post-fault recovery — fails.
chaos-smoke:
	dune exec bin/dvmctl.exe -- chaos --clients 12 --duration 12 \
	  --spike-start 3 --spike-len 5 --crashes 1 --loss 1.0 --trace

# Control-plane smoke: a short seeded run replicating a policy bump
# across the farm while control links partition (split brain), one
# shard crash/restarts, the leased leader is killed mid-commit (the
# new leader must re-drive the uncommitted suffix) and later wakes
# with a stale term. dvmctl exits nonzero if any control-plane
# invariant fails: a client served under the revoked policy version,
# two valid leadership leases at one sampled instant (or a term
# regression), snapshot catch-up state that differs from a full-log
# replay, a shard that never converges, or digest drift on applets
# the bump does not touch. The second line is the election smoke:
# leader crash + leader partition forced on, checked via --json.
control-smoke:
	dune exec bin/dvmctl.exe -- control --clients 12 --duration 18 \
	  --applets 6 --bump-at 7 --partitions 1 --partition-len 2 --trace
	dune exec bin/dvmctl.exe -- control --clients 12 --duration 18 \
	  --applets 6 --bump-at 7 --partitions 1 --partition-len 2 --json

# Trace smoke: a seeded chaos run must yield, for at least one shed and
# one serve-stale brownout request, a single cross-node trace with the
# client span, the edge routing span and the explaining reason event.
# dvmctl exits nonzero if either trace is missing; the exports (Chrome
# trace + JSON + flight-recorder dump) land under _build/trace-smoke/.
trace-smoke:
	mkdir -p _build/trace-smoke
	dune exec bin/dvmctl.exe -- flight --out _build/trace-smoke/flight
	dune exec bin/dvmctl.exe -- slo --json

# Perf trajectory pin: re-run the seeded bench phases that write
# BENCH_<phase>.json and fail if the output drifts from the committed
# baselines. Every number in those files except wall_ms (host time,
# ignored by the diff) is a function of the virtual clock and the
# pinned seeds, so a diff is either a real behaviour change (recommit
# the baseline, explain it in the PR) or nondeterminism leaking in (a
# bug).
bench-pin:
	dune exec bench/main.exe -- faults
	dune exec bench/main.exe -- farm
	dune exec bench/main.exe -- chaos
	dune exec bench/main.exe -- control
	dune exec bench/main.exe -- elide
	dune exec bench/main.exe -- certify
	git diff -I '"wall_ms"' --exit-code BENCH_faults.json BENCH_farm.json BENCH_chaos.json BENCH_control.json BENCH_elide.json BENCH_certify.json
	git checkout -- BENCH_faults.json BENCH_farm.json BENCH_chaos.json BENCH_control.json BENCH_elide.json BENCH_certify.json

# Perf compare: the bench perf phase re-runs the pinned phases, exits
# non-zero if any served byte, digest or metric drifts from the
# committed baselines, and prints baseline-vs-now wall-clock per phase
# (the speed trajectory the wall_ms field records). The trailing git
# diff is a second, independent net over the same files.
perf-compare:
	dune exec bench/main.exe -- perf
	git diff -I '"wall_ms"' --exit-code BENCH_faults.json BENCH_farm.json BENCH_chaos.json BENCH_control.json BENCH_elide.json BENCH_certify.json
	git checkout -- BENCH_faults.json BENCH_farm.json BENCH_chaos.json BENCH_control.json BENCH_elide.json BENCH_certify.json

# The gate a PR must pass: everything builds, every test is green, and
# no build artifacts are tracked or dirtying the tree.
check:
	dune build @all
	dune runtest
	dune exec bin/dvmctl.exe -- lint
	$(MAKE) certify-smoke
	$(MAKE) farm-smoke
	$(MAKE) chaos-smoke
	$(MAKE) control-smoke
	$(MAKE) trace-smoke
	$(MAKE) perf-compare
	@if git ls-files | grep -q '^_build/'; then \
	  echo "check: _build/ files are tracked in git" >&2; exit 1; fi
	@if git status --porcelain | grep -q '_build'; then \
	  echo "check: _build/ appears in git status (gitignore broken?)" >&2; exit 1; fi
	@echo "check: OK"

clean:
	dune clean
