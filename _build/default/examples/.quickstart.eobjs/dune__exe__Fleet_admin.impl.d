examples/fleet_admin.ml: Bytecode Dvm Format Jit Jvm List Monitor Printf Proxy Simnet String Verifier
