examples/fleet_admin.mli:
