examples/mobile_code.ml: Float Jvm List Monitor Opt Printf String Workloads
