examples/mobile_code.mli:
