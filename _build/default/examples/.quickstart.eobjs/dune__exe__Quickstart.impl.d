examples/quickstart.ml: Bytecode Dvm Jvm List Printf Proxy Simnet String Verifier
