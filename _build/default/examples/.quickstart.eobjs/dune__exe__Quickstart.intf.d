examples/quickstart.mli:
