examples/secure_intranet.ml: Bytecode Format Hashtbl Jvm Option Printf Security String
