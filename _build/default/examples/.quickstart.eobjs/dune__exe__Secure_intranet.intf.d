examples/secure_intranet.mli:
