examples/trace_service.ml: Bytecode Jvm List Monitor Printf String
