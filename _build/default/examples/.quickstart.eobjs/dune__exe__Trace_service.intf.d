examples/trace_service.mli:
