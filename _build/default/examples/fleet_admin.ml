(* Fleet administration (§3.3): a heterogeneous fleet of clients
   handshakes with the remote administration console; the tamper-
   evident audit trail records network-wide activity; the network
   compiler pre-translates for every ISA in the fleet; and a rogue
   application is pruned from the whole network with one administrative
   action. Run with:

     dune exec examples/fleet_admin.exe
*)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let app_ok =
  B.class_ "corp/Payroll"
    [
      B.meth
        ~flags:[ CF.Public; CF.Static ]
        "main" "()V"
        [
          B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
          B.Push_str "payroll done";
          B.Invokevirtual
            ("java/io/OutputStream", "println", "(Ljava/lang/String;)V");
          B.Return;
        ];
    ]

let app_rogue =
  B.class_ "fun/Miner"
    [
      B.meth
        ~flags:[ CF.Public; CF.Static ]
        "main" "()V"
        [
          B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
          B.Push_str "mining...";
          B.Invokevirtual
            ("java/io/OutputStream", "println", "(Ljava/lang/String;)V");
          B.Return;
        ];
    ]

let origin name =
  if String.equal name "corp/Payroll" then
    Some (Bytecode.Encode.class_to_bytes app_ok)
  else if String.equal name "fun/Miner" then
    Some (Bytecode.Encode.class_to_bytes app_rogue)
  else None

let () =
  let console = Monitor.Console.create () in
  (* 1. A heterogeneous fleet checks in. *)
  let fleet =
    List.map
      (fun (user, hw, isa) ->
        Monitor.Console.handshake console ~user ~hardware:hw ~native_format:isa
          ~vm_version:"dvm-1.0" ~time:0L)
      [
        ("alice", "x86-200MHz-64MB", "x86");
        ("bob", "alpha-500MHz-128MB", "alpha");
        ("carol", "x86-166MHz-32MB", "x86");
      ]
  in
  Printf.printf "fleet: %d clients, ISAs present: %s\n" (List.length fleet)
    (String.concat ", " (Monitor.Console.native_formats console));

  (* 2. The network compiler pre-translates for every ISA present —
     resource investments in the compiler benefit the whole fleet. *)
  let svc = Jit.Service.create () in
  let compiled = Jit.Service.compile_for_fleet svc console app_ok in
  Printf.printf "network compiler: %d (method, ISA) units ready ahead of time\n"
    (List.length compiled);

  (* 3. Clients run apps through the instrumented pipeline; every
     method entry/exit lands in the console's audit trail. *)
  let oracle = Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ()) in
  let run_client client app_name =
    let engine = Simnet.Engine.create () in
    let proxy =
      Proxy.create engine ~origin
        ~origin_latency:(fun _ -> 0L)
        ~filters:
          [
            Verifier.Static_verifier.filter ~oracle ();
            Monitor.Instrument.audit_filter ();
          ]
        ()
    in
    (* the loader refuses banned applications *)
    let provider name =
      match Monitor.Console.is_banned console name with
      | Some _ -> None
      | None -> Proxy.provider proxy name
    in
    let c =
      Dvm.Client.create_dvm ~console ~session:client.Monitor.Console.session
        ~provider ()
    in
    Monitor.Console.record_app_start console client ~app:app_name ~time:0L;
    match Dvm.Client.run_main c app_name with
    | Ok () -> Printf.printf "  [%s] %s -> %s" client.Monitor.Console.user
                 app_name (Jvm.Vmstate.output c.Dvm.Client.vm)
    | Error e ->
      Printf.printf "  [%s] %s -> REFUSED (%s)\n" client.Monitor.Console.user
        app_name (Jvm.Interp.describe_throwable e)
  in
  print_endline "\nbusiness as usual:";
  List.iter (fun c -> run_client c "corp/Payroll") fleet;
  run_client (List.hd fleet) "fun/Miner";

  (* 4. The administrator prunes the rogue app network-wide. *)
  print_endline "\n>>> console bans fun/Miner across the network <<<";
  Monitor.Console.ban_app console ~app:"fun/Miner" ~reason:"unauthorized"
    ~time:1L;
  List.iter (fun c -> run_client c "fun/Miner") fleet;

  (* 5. The audit trail saw everything and is tamper-evident. *)
  let audit = Monitor.Console.audit console in
  Printf.printf "\naudit trail: %d events, hash chain verifies: %b\n"
    (Monitor.Audit.count audit)
    (Monitor.Audit.verify_chain audit);
  print_endline "last five events:";
  let events = Monitor.Audit.events audit in
  let tail = List.filteri (fun i _ -> i >= List.length events - 5) events in
  List.iter
    (fun ev -> Format.printf "  %a@." Monitor.Audit.pp_event ev)
    tail;
  Format.printf "@.%a" Monitor.Console.pp_report console
