(* Mobile code over a slow link (§5): a PDA on a 28.8 Kb/s modem loads
   an application through the DVM proxy. The repartitioning service
   splits classes at method granularity from a first-use profile, so
   the hot startup path travels first and cold code stays on the
   server until (unless) it is needed. Run with:

     dune exec examples/mobile_code.exe
*)

let kb bytes = Float.of_int bytes /. 1024.0

let () =
  (* 1. Build an application and profile its first execution on a
     desktop inside the organization. *)
  let app = Workloads.Apps.build_small Workloads.Apps.jlex in
  Printf.printf "application: %s, %d classes, %.0f KB total\n"
    app.Workloads.Appgen.spec.Workloads.Appgen.name
    (List.length app.Workloads.Appgen.classes)
    (kb app.Workloads.Appgen.total_bytes);

  let instrumented =
    List.map
      (Monitor.Instrument.instrument_class
         ~runtime_class:Monitor.Profiler.profiler_class)
      app.Workloads.Appgen.classes
  in
  let vm = Jvm.Bootlib.fresh_vm () in
  let prof = Monitor.Profiler.install vm () in
  List.iter (Jvm.Classreg.register vm.Jvm.Vmstate.reg) instrumented;
  (match Jvm.Interp.run_main vm app.Workloads.Appgen.entry with
  | Ok () -> ()
  | Error e -> failwith (Jvm.Interp.describe_throwable e));
  let profile = Opt.First_use.of_profiler prof in
  Printf.printf "first-use profile: %d methods touched\n"
    (List.length (Monitor.Profiler.first_use_order prof));

  (* 2. Repartition on the proxy. *)
  let split_classes, results =
    Opt.Repartition.split_app profile app.Workloads.Appgen.classes
  in
  let orig_bytes = app.Workloads.Appgen.total_bytes in
  let hot_bytes =
    List.fold_left (fun a r -> a + r.Opt.Repartition.hot_bytes) 0 results
  in
  let moved = List.fold_left (fun a r -> a + r.Opt.Repartition.moved) 0 results in
  Printf.printf
    "repartitioned: %d methods factored into satellites;\n\
     startup transfer %.0f KB -> %.0f KB (%.0f%% saved)\n"
    moved (kb orig_bytes) (kb hot_bytes)
    (100.0 *. Float.of_int (orig_bytes - hot_bytes) /. Float.of_int orig_bytes);

  (* 3. Startup time over the modem, baseline vs repartitioned. *)
  let modem_bps = 28_800 and latency_us = 150_000 in
  let t bytes reqs =
    Float.of_int
      ((reqs * latency_us) + Opt.Startup.transfer_us ~bandwidth_bps:modem_bps ~bytes)
    /. 1e6
  in
  let nclasses = List.length app.Workloads.Appgen.classes in
  Printf.printf
    "\nstartup over 28.8 Kb/s: baseline %.1fs, repartitioned %.1fs (%.0f%% faster)\n"
    (t orig_bytes nclasses) (t hot_bytes nclasses)
    (100.0 *. (t orig_bytes nclasses -. t hot_bytes nclasses) /. t orig_bytes nclasses);

  (* 4. Behaviour is unchanged: run the split application for real. *)
  let vm2 = Jvm.Bootlib.fresh_vm () in
  List.iter (Jvm.Classreg.register vm2.Jvm.Vmstate.reg) split_classes;
  (match Jvm.Interp.run_main vm2 app.Workloads.Appgen.entry with
  | Ok () -> ()
  | Error e -> failwith (Jvm.Interp.describe_throwable e));
  let vm3 = Jvm.Bootlib.fresh_vm () in
  List.iter (Jvm.Classreg.register vm3.Jvm.Vmstate.reg) app.Workloads.Appgen.classes;
  (match Jvm.Interp.run_main vm3 app.Workloads.Appgen.entry with
  | Ok () -> ()
  | Error e -> failwith (Jvm.Interp.describe_throwable e));
  Printf.printf "\nsplit app output identical to original: %b\n"
    (String.equal (Jvm.Vmstate.output vm2) (Jvm.Vmstate.output vm3));

  (* 5. The paper's six GUI applications, from the analytic model. *)
  print_endline "\nstartup improvement at 28.8 Kb/s for the paper's six apps:";
  List.iter
    (fun m ->
      Printf.printf "  %-15s %5.1f%%\n" m.Opt.Startup.app_name
        (Opt.Startup.improvement_percent m ~bandwidth_bps:modem_bps
           ~latency_us:200_000))
    Workloads.Applets.startup_apps
