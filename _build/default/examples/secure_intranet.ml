(* Secure intranet (§3.2): one XML policy governs every client in the
   organization from a single point of control.

   Two clients — a trusted corporate desktop and an applet sandbox —
   run the same file-grabbing application rewritten by the security
   service. The administrator then revokes a permission centrally and
   the change takes effect on running clients through cache
   invalidation, with no user cooperation. Run with:

     dune exec examples/secure_intranet.exe
*)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let policy_xml =
  {|<policy default="deny">
      <domain name="desktops">
        <grant permission="file.open"/>
        <grant permission="file.read"/>
        <grant permission="property.get"/>
      </domain>
      <domain name="applets">
        <grant permission="property.get"/>
        <!-- no file permissions for applets -->
      </domain>
      <resource prefix="/home/" domain="homedirs"/>
      <operation permission="file.open"
                 class="java/io/FileInputStream" method="&lt;init&gt;"/>
      <operation permission="file.read"
                 class="java/io/FileInputStream" method="read"/>
      <operation permission="property.get"
                 class="java/lang/System" method="getProperty"/>
      <principal classprefix="applet/" domain="applets"/>
      <principal classprefix="corp/" domain="desktops"/>
    </policy>|}

(* The same application code, deployed under two package prefixes. *)
let grabber name =
  B.class_ name
    [
      B.meth
        ~flags:[ CF.Public; CF.Static ]
        "main" "()V"
        [
          B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
          B.New "java/io/FileInputStream";
          B.Dup;
          B.Push_str "/home/alice/notes";
          B.Invokespecial
            ("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V");
          B.Invokevirtual ("java/io/FileInputStream", "read", "()I");
          B.Invokevirtual ("java/io/OutputStream", "println", "(I)V");
          B.Return;
        ];
    ]

let () =
  let policy = Security.Policy_xml.parse policy_xml in
  Format.printf "Central policy:@\n%a@\n" Security.Policy.pp policy;

  let server = Security.Server.create policy in
  let run_client ~label ~cls_name =
    let app = grabber cls_name in
    let sid =
      Option.value ~default:"unknown"
        (Security.Policy.domain_of_class policy cls_name)
    in
    (* the static service rewrites the app against the operation map *)
    let counters = Security.Rewriter.fresh_counters () in
    let rewritten = Security.Rewriter.rewrite_class ~counters policy app in
    let vm = Jvm.Bootlib.fresh_vm () in
    Hashtbl.replace vm.Jvm.Vmstate.files "/home/alice/notes" "meeting at 3";
    let enf = Security.Enforcement.install vm ~server ~sid in
    Jvm.Classreg.register vm.Jvm.Vmstate.reg rewritten;
    Printf.printf "\n[%s] domain=%s, %d checks injected: " label sid
      counters.Security.Rewriter.checks_inserted;
    (match Jvm.Interp.run_main vm cls_name with
    | Ok () ->
      Printf.printf "ran fine, output: %s"
        (String.trim (Jvm.Vmstate.output vm))
    | Error e ->
      Printf.printf "DENIED (%s)" (Jvm.Interp.describe_throwable e));
    Printf.printf "\n  (enforcement: %d checks, %d cache hits, %d downloads)\n"
      enf.Security.Enforcement.checks enf.Security.Enforcement.cache_hits
      enf.Security.Enforcement.downloads;
    (vm, cls_name, enf)
  in
  let _ = run_client ~label:"corporate desktop" ~cls_name:"corp/Reader" in
  let _ = run_client ~label:"applet sandbox" ~cls_name:"applet/Reader" in

  (* Central revocation: one administrative action, every client cache
     invalidated, no user cooperation needed. *)
  print_endline "\n>>> administrator revokes file.read from desktops <<<";
  Security.Server.update server (fun p ->
      Security.Policy.with_rule p ~sid:"desktops" ~permission:"file.read"
        ~allow:false);
  let vm, cls_name, enf = run_client ~label:"corporate desktop, after revocation" ~cls_name:"corp/Reader" in
  ignore (vm, cls_name, enf);
  Printf.printf
    "\nInvalidations delivered to subscribed clients: %d\n"
    server.Security.Server.invalidations_sent
