(* The instruction-level profiling and tracing service (§3.3).

   The paper used this service "to obtain traces of synchronization
   behavior for Java applications" and fed the data into a transparent
   optimization service. Here: a workload is instrumented at
   basic-block and synchronization granularity on the proxy, runs on an
   ordinary client, and the resulting block-heat and sync profiles come
   back to the operator — plus the first-use trace handed to the §5
   repartitioner. Run with:

     dune exec examples/trace_service.exe
*)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

(* A little app with a hot loop, a cold branch, and lock activity. *)
let app =
  B.class_ "trace/Worker"
    [
      B.meth
        ~flags:[ CF.Public; CF.Static ]
        "main" "()V"
        [
          (* lock <- new Object() *)
          B.New "java/lang/Object";
          B.Dup;
          B.Invokespecial ("java/lang/Object", "<init>", "()V");
          B.Astore 2;
          B.Const 0;
          B.Istore 1;
          B.Const 200;
          B.Istore 0;
          B.Label "loop";
          B.Iload 0;
          B.If_z (Bytecode.Instr.Le, "done");
          (* synchronized block around the accumulation *)
          B.Aload 2;
          B.Monitorenter;
          B.Iload 1;
          B.Iload 0;
          B.Add;
          B.Istore 1;
          B.Aload 2;
          B.Monitorexit;
          (* a cold path taken once *)
          B.Iload 0;
          B.Const 200;
          B.If_icmp (Bytecode.Instr.Ne, "skip");
          B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
          B.Push_str "first iteration";
          B.Invokevirtual
            ("java/io/OutputStream", "println", "(Ljava/lang/String;)V");
          B.Label "skip";
          B.Inc (0, -1);
          B.Goto "loop";
          B.Label "done";
          B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
          B.Iload 1;
          B.Invokevirtual ("java/io/OutputStream", "println", "(I)V");
          B.Return;
        ];
    ]

let () =
  (* The proxy stacks method-level profiling (with sync tracing) and
     block-level tracing. *)
  let counters = Monitor.Instrument.fresh_counters () in
  let instrumented =
    app
    |> Monitor.Instrument.instrument_class
         ~runtime_class:Monitor.Profiler.profiler_class ~sync_trace:true
    |> Monitor.Instrument.trace_blocks ~counters
  in
  Printf.printf "instrumentation: %d probes across %d methods\n"
    counters.Monitor.Instrument.probes_inserted
    counters.Monitor.Instrument.methods_instrumented;

  let vm = Jvm.Bootlib.fresh_vm () in
  let prof = Monitor.Profiler.install vm () in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg instrumented;
  (match Jvm.Interp.run_main vm "trace/Worker" with
  | Ok () -> Printf.printf "program output: %s" (Jvm.Vmstate.output vm)
  | Error e -> failwith (Jvm.Interp.describe_throwable e));

  print_endline "\nhottest basic blocks:";
  List.iteri
    (fun i (label, n) ->
      if i < 5 then Printf.printf "  %6d x %s\n" n label)
    (Monitor.Profiler.block_profile prof);

  Printf.printf "\nsynchronization events in main: %d (2 per iteration)\n"
    (Monitor.Profiler.sync_count prof "trace/Worker.main()V");

  (* The first-use trace feeds the repartitioner (§5). *)
  Printf.printf "first-use order: %s\n"
    (String.concat " -> " (Monitor.Profiler.first_use_order prof));

  (* And the client's collector can clean up after the run. *)
  let st = Jvm.Gc.collect vm in
  Printf.printf "gc after run: %d objects live, %d collected (%d bytes)\n"
    st.Jvm.Gc.live_objects st.Jvm.Gc.collected_objects
    st.Jvm.Gc.collected_bytes
