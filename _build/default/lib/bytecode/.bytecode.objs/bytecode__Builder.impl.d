lib/bytecode/builder.ml: Array Classfile Cp Descriptor Hashtbl Instr Int32 List String
