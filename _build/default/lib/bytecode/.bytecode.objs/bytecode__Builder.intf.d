lib/bytecode/builder.mli: Classfile Cp Instr
