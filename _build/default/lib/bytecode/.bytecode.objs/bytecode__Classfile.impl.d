lib/bytecode/classfile.ml: Array Cp Format Instr List String
