lib/bytecode/classfile.mli: Cp Format Instr
