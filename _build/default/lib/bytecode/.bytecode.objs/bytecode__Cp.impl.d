lib/bytecode/cp.ml: Array Format Hashtbl
