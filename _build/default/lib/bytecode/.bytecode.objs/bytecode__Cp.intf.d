lib/bytecode/cp.mli: Format
