lib/bytecode/decode.ml: Array Classfile Cp Encode Format Hashtbl Instr Io List
