lib/bytecode/decode.mli: Classfile
