lib/bytecode/descriptor.ml: Buffer Format List String
