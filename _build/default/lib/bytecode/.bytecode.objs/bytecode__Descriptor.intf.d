lib/bytecode/descriptor.mli: Format
