lib/bytecode/disasm.ml: Array Classfile Cp Format Instr List String
