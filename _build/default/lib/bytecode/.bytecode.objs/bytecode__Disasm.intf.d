lib/bytecode/disasm.mli: Classfile Cp Format Instr
