lib/bytecode/encode.ml: Array Classfile Cp Instr Io List String
