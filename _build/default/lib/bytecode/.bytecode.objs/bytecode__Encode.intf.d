lib/bytecode/encode.mli: Classfile
