lib/bytecode/instr.ml: Array Format Printf String
