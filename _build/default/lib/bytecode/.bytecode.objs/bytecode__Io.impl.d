lib/bytecode/io.ml: Buffer Char Int32 Printf String
