lib/bytecode/io.mli:
