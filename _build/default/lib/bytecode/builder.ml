(* Symbolic assembler: the convenient front end for constructing
   classes. Instructions reference labels by name and members by
   (class, name, descriptor) triples; [assemble] resolves labels to
   instruction indices and interns member references into the constant
   pool. Labels occupy no code slot. *)

type instr =
  | Label of string
  | Const of int
  | Push_str of string
  | Null
  | Iload of int
  | Istore of int
  | Aload of int
  | Astore of int
  | Inc of int * int
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Neg
  | Shl
  | Shr
  | And
  | Or
  | Xor
  | Dup
  | Dup_x1
  | Pop
  | Swap
  | Goto of string
  | If_icmp of Instr.icmp * string
  | If_z of Instr.icmp * string
  | If_acmp of bool * string
  | If_null of bool * string
  | Jsr of string
  | Ret of int
  | Switch of int * string list * string (* low, targets, default *)
  | Ireturn
  | Areturn
  | Return
  | Getstatic of string * string * string
  | Putstatic of string * string * string
  | Getfield of string * string * string
  | Putfield of string * string * string
  | Invokevirtual of string * string * string
  | Invokestatic of string * string * string
  | Invokespecial of string * string * string
  | Invokeinterface of string * string * string
  | New of string
  | Newarray
  | Anewarray of string
  | Arraylength
  | Iaload
  | Iastore
  | Aaload
  | Aastore
  | Athrow
  | Checkcast of string
  | Instanceof of string
  | Monitorenter
  | Monitorexit

exception Unbound_label of string
exception Duplicate_label of string

let is_label = function Label _ -> true | _ -> false

(* Map label name -> instruction index of the next real instruction. *)
let label_table instrs =
  let tbl = Hashtbl.create 16 in
  let idx = ref 0 in
  List.iter
    (fun i ->
      match i with
      | Label l ->
        if Hashtbl.mem tbl l then raise (Duplicate_label l);
        Hashtbl.add tbl l !idx
      | _ -> incr idx)
    instrs;
  tbl

let resolve tbl l =
  match Hashtbl.find_opt tbl l with
  | Some i -> i
  | None -> raise (Unbound_label l)

let assemble pool instrs : Instr.t array =
  let tbl = label_table instrs in
  let r l = resolve tbl l in
  let lower = function
    | Label _ -> assert false
    | Const n -> Instr.Iconst (Int32.of_int n)
    | Push_str s -> Instr.Ldc_str (Cp.Builder.string pool s)
    | Null -> Instr.Aconst_null
    | Iload n -> Instr.Iload n
    | Istore n -> Instr.Istore n
    | Aload n -> Instr.Aload n
    | Astore n -> Instr.Astore n
    | Inc (n, d) -> Instr.Iinc (n, d)
    | Add -> Instr.Iadd
    | Sub -> Instr.Isub
    | Mul -> Instr.Imul
    | Div -> Instr.Idiv
    | Rem -> Instr.Irem
    | Neg -> Instr.Ineg
    | Shl -> Instr.Ishl
    | Shr -> Instr.Ishr
    | And -> Instr.Iand
    | Or -> Instr.Ior
    | Xor -> Instr.Ixor
    | Dup -> Instr.Dup
    | Dup_x1 -> Instr.Dup_x1
    | Pop -> Instr.Pop
    | Swap -> Instr.Swap
    | Goto l -> Instr.Goto (r l)
    | If_icmp (c, l) -> Instr.If_icmp (c, r l)
    | If_z (c, l) -> Instr.If_z (c, r l)
    | If_acmp (eq, l) -> Instr.If_acmp (eq, r l)
    | If_null (isnull, l) -> Instr.If_null (isnull, r l)
    | Jsr l -> Instr.Jsr (r l)
    | Ret n -> Instr.Ret n
    | Switch (low, ts, d) ->
      Instr.Tableswitch
        {
          low = Int32.of_int low;
          targets = Array.of_list (List.map r ts);
          default = r d;
        }
    | Ireturn -> Instr.Ireturn
    | Areturn -> Instr.Areturn
    | Return -> Instr.Return
    | Getstatic (c, n, d) ->
      Instr.Getstatic (Cp.Builder.fieldref pool ~cls:c ~name:n ~desc:d)
    | Putstatic (c, n, d) ->
      Instr.Putstatic (Cp.Builder.fieldref pool ~cls:c ~name:n ~desc:d)
    | Getfield (c, n, d) ->
      Instr.Getfield (Cp.Builder.fieldref pool ~cls:c ~name:n ~desc:d)
    | Putfield (c, n, d) ->
      Instr.Putfield (Cp.Builder.fieldref pool ~cls:c ~name:n ~desc:d)
    | Invokevirtual (c, n, d) ->
      Instr.Invokevirtual (Cp.Builder.methodref pool ~cls:c ~name:n ~desc:d)
    | Invokestatic (c, n, d) ->
      Instr.Invokestatic (Cp.Builder.methodref pool ~cls:c ~name:n ~desc:d)
    | Invokespecial (c, n, d) ->
      Instr.Invokespecial (Cp.Builder.methodref pool ~cls:c ~name:n ~desc:d)
    | Invokeinterface (c, n, d) ->
      Instr.Invokeinterface (Cp.Builder.methodref pool ~cls:c ~name:n ~desc:d)
    | New c -> Instr.New (Cp.Builder.class_ pool c)
    | Newarray -> Instr.Newarray
    | Anewarray c -> Instr.Anewarray (Cp.Builder.class_ pool c)
    | Arraylength -> Instr.Arraylength
    | Iaload -> Instr.Iaload
    | Iastore -> Instr.Iastore
    | Aaload -> Instr.Aaload
    | Aastore -> Instr.Aastore
    | Athrow -> Instr.Athrow
    | Checkcast c -> Instr.Checkcast (Cp.Builder.class_ pool c)
    | Instanceof c -> Instr.Instanceof (Cp.Builder.class_ pool c)
    | Monitorenter -> Instr.Monitorenter
    | Monitorexit -> Instr.Monitorexit
  in
  instrs
  |> List.filter (fun i -> not (is_label i))
  |> List.map lower
  |> Array.of_list

(* Conservative upper bound on operand-stack height: accumulate the
   per-instruction stack deltas along the instruction list, taking the
   running maximum, and never letting the running height drop below
   zero across merge points. This over-approximates but is always safe
   for code whose true max is what the verifier later computes. *)
let stack_delta pool (i : Instr.t) =
  let invoke_delta idx ~receiver =
    let mref = Cp.get_methodref pool idx in
    let sg = Descriptor.method_sig_of_string mref.Cp.ref_desc in
    let pop = List.length sg.Descriptor.params + if receiver then 1 else 0 in
    let push = match sg.Descriptor.ret with None -> 0 | Some _ -> 1 in
    (push - pop, pop)
  in
  let field_width idx = ignore (Cp.get_fieldref pool idx); 1 in
  match i with
  | Instr.Nop -> (0, 0)
  | Instr.Iconst _ | Instr.Ldc_str _ | Instr.Aconst_null -> (1, 0)
  | Instr.Iload _ | Instr.Aload _ -> (1, 0)
  | Instr.Istore _ | Instr.Astore _ -> (-1, 1)
  | Instr.Iinc _ -> (0, 0)
  | Instr.Iadd | Instr.Isub | Instr.Imul | Instr.Idiv | Instr.Irem
  | Instr.Ishl | Instr.Ishr | Instr.Iand | Instr.Ior | Instr.Ixor ->
    (-1, 2)
  | Instr.Ineg -> (0, 1)
  | Instr.Dup -> (1, 1)
  | Instr.Dup_x1 -> (1, 2)
  | Instr.Pop -> (-1, 1)
  | Instr.Swap -> (0, 2)
  | Instr.Goto _ -> (0, 0)
  | Instr.If_icmp _ | Instr.If_acmp _ -> (-2, 2)
  | Instr.If_z _ | Instr.If_null _ -> (-1, 1)
  | Instr.Jsr _ -> (1, 0)
  | Instr.Ret _ -> (0, 0)
  | Instr.Tableswitch _ -> (-1, 1)
  | Instr.Ireturn | Instr.Areturn -> (-1, 1)
  | Instr.Return -> (0, 0)
  | Instr.Getstatic _ -> (1, 0)
  | Instr.Putstatic i -> (-field_width i, 1)
  | Instr.Getfield _ -> (0, 1)
  | Instr.Putfield i -> (-1 - field_width i, 2)
  | Instr.Invokevirtual i | Instr.Invokespecial i | Instr.Invokeinterface i ->
    invoke_delta i ~receiver:true
  | Instr.Invokestatic i -> invoke_delta i ~receiver:false
  | Instr.New _ -> (1, 0)
  | Instr.Newarray | Instr.Anewarray _ -> (0, 1)
  | Instr.Arraylength -> (0, 1)
  | Instr.Iaload | Instr.Aaload -> (-1, 2)
  | Instr.Iastore | Instr.Aastore -> (-3, 3)
  | Instr.Athrow -> (-1, 1)
  | Instr.Checkcast _ -> (0, 1)
  | Instr.Instanceof _ -> (0, 1)
  | Instr.Monitorenter | Instr.Monitorexit -> (-1, 1)

let estimate_max_stack ?(handler_targets = []) pool (code : Instr.t array) =
  (* Depth-first over the CFG, tracking entry heights per instruction;
     handlers start with height 1 (the thrown exception). *)
  let n = Array.length code in
  if n = 0 then 0
  else begin
    let entry = Array.make n (-1) in
    let maxh = ref 0 in
    (* Ill-formed code whose stack grows around a loop would make this
       walk diverge; cap the height (the verifier rejects such code
       later on the height mismatch). *)
    let cap = (4 * n) + 64 in
    let rec walk idx h =
      if idx >= 0 && idx < n && entry.(idx) < h && h <= cap then begin
        entry.(idx) <- h;
        let d, need = stack_delta pool code.(idx) in
        ignore need;
        let h' = max 0 (h + d) in
        maxh := max !maxh (max h (h + max 0 d));
        List.iter (fun s -> walk s h') (Instr.successors idx code.(idx))
      end
    in
    walk 0 0;
    List.iter (fun t -> walk t 1) handler_targets;
    max 1 !maxh
  end

let estimate_max_locals ~params ~is_static (code : Instr.t array) =
  let base = params + if is_static then 0 else 1 in
  Array.fold_left
    (fun acc i ->
      match i with
      | Instr.Iload n | Instr.Istore n | Instr.Aload n | Instr.Astore n
      | Instr.Iinc (n, _) | Instr.Ret n ->
        max acc (n + 1)
      | _ -> acc)
    (max 1 base) code

type mdef = {
  md_name : string;
  md_desc : string;
  md_flags : Classfile.access list;
  md_body : instr list option;
  md_handlers : (string * string * string * string option) list;
      (* start label, end label, handler label, catch type *)
}

let meth ?(flags = [ Classfile.Public ]) ?(handlers = []) name desc body =
  {
    md_name = name;
    md_desc = desc;
    md_flags = flags;
    md_body = Some body;
    md_handlers = handlers;
  }

let native_meth ?(flags = [ Classfile.Public; Classfile.Native ]) name desc =
  let flags =
    if List.mem Classfile.Native flags then flags else Classfile.Native :: flags
  in
  { md_name = name; md_desc = desc; md_flags = flags; md_body = None;
    md_handlers = [] }

let abstract_meth ?(flags = [ Classfile.Public; Classfile.Abstract ]) name desc
    =
  { md_name = name; md_desc = desc; md_flags = flags; md_body = None;
    md_handlers = [] }

let field ?(flags = [ Classfile.Public ]) name desc =
  { Classfile.f_name = name; f_desc = desc; f_flags = flags }

(* A default no-argument constructor that just calls super's. *)
let default_init super =
  meth "<init>" "()V"
    [ Aload 0; Invokespecial (super, "<init>", "()V"); Return ]

let build_method pool md =
  match md.md_body with
  | None ->
    {
      Classfile.m_name = md.md_name;
      m_desc = md.md_desc;
      m_flags = md.md_flags;
      m_code = None;
    }
  | Some body ->
    let tbl = label_table body in
    let instrs = assemble pool body in
    let sg = Descriptor.method_sig_of_string md.md_desc in
    let handlers =
      List.map
        (fun (s, e, h, catch) ->
          {
            Classfile.h_start = resolve tbl s;
            h_end = resolve tbl e;
            h_target = resolve tbl h;
            h_catch = catch;
          })
        md.md_handlers
    in
    let cur_pool = Cp.Builder.to_pool pool in
    let handler_targets =
      List.map (fun h -> h.Classfile.h_target) handlers
    in
    {
      Classfile.m_name = md.md_name;
      m_desc = md.md_desc;
      m_flags = md.md_flags;
      m_code =
        Some
          {
            Classfile.max_stack =
              estimate_max_stack ~handler_targets cur_pool instrs;
            max_locals =
              estimate_max_locals
                ~params:(Descriptor.param_slots sg)
                ~is_static:(List.mem Classfile.Static md.md_flags)
                instrs;
            instrs;
            handlers;
          };
    }

let class_ ?(super = Classfile.java_lang_object) ?(interfaces = [])
    ?(flags = [ Classfile.Public ]) ?(fields = []) ?(attributes = []) name
    mdefs =
  let pool = Cp.Builder.create () in
  (* Intern this class and its super so every class file names itself,
     mirroring the real format. *)
  let _ = Cp.Builder.class_ pool name in
  let _ = Cp.Builder.class_ pool super in
  let methods = List.map (build_method pool) mdefs in
  {
    Classfile.name;
    super = (if String.equal name Classfile.java_lang_object then None
             else Some super);
    interfaces;
    c_flags = flags;
    fields;
    methods;
    pool = Cp.Builder.to_pool pool;
    attributes;
  }
