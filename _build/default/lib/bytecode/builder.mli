(** Symbolic assembler.

    The convenient front end for constructing classes: instructions
    reference labels by name and members by (class, name, descriptor)
    triples. {!assemble} resolves labels to instruction indices and
    interns member references into a constant pool. [Label] markers
    occupy no code slot. *)

type instr =
  | Label of string  (** marks the position of the next real instruction *)
  | Const of int
  | Push_str of string
  | Null
  | Iload of int
  | Istore of int
  | Aload of int
  | Astore of int
  | Inc of int * int
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Neg
  | Shl
  | Shr
  | And
  | Or
  | Xor
  | Dup
  | Dup_x1
  | Pop
  | Swap
  | Goto of string
  | If_icmp of Instr.icmp * string
  | If_z of Instr.icmp * string
  | If_acmp of bool * string
  | If_null of bool * string
  | Jsr of string
  | Ret of int
  | Switch of int * string list * string
  | Ireturn
  | Areturn
  | Return
  | Getstatic of string * string * string
  | Putstatic of string * string * string
  | Getfield of string * string * string
  | Putfield of string * string * string
  | Invokevirtual of string * string * string
  | Invokestatic of string * string * string
  | Invokespecial of string * string * string
  | Invokeinterface of string * string * string
  | New of string
  | Newarray
  | Anewarray of string
  | Arraylength
  | Iaload
  | Iastore
  | Aaload
  | Aastore
  | Athrow
  | Checkcast of string
  | Instanceof of string
  | Monitorenter
  | Monitorexit

exception Unbound_label of string
exception Duplicate_label of string

val assemble : Cp.Builder.t -> instr list -> Instr.t array
(** Lower symbolic instructions, resolving labels and interning
    constant-pool references.
    @raise Unbound_label or @raise Duplicate_label on label errors. *)

val estimate_max_stack :
  ?handler_targets:int list -> Cp.t -> Instr.t array -> int
(** Conservative upper bound on the operand-stack height, walking the
    CFG from entry (and from each handler target at height 1). *)

val estimate_max_locals : params:int -> is_static:bool -> Instr.t array -> int

(** A method definition awaiting assembly. *)
type mdef = {
  md_name : string;
  md_desc : string;
  md_flags : Classfile.access list;
  md_body : instr list option;
  md_handlers : (string * string * string * string option) list;
      (** (start label, end label, handler label, catch type) *)
}

val meth :
  ?flags:Classfile.access list ->
  ?handlers:(string * string * string * string option) list ->
  string ->
  string ->
  instr list ->
  mdef

val native_meth : ?flags:Classfile.access list -> string -> string -> mdef
val abstract_meth : ?flags:Classfile.access list -> string -> string -> mdef
val field : ?flags:Classfile.access list -> string -> string -> Classfile.field

val default_init : string -> mdef
(** A no-argument constructor that only invokes [super.<init>()]. *)

val class_ :
  ?super:string ->
  ?interfaces:string list ->
  ?flags:Classfile.access list ->
  ?fields:Classfile.field list ->
  ?attributes:(string * string) list ->
  string ->
  mdef list ->
  Classfile.t
(** Assemble a complete class. Computes [max_stack] / [max_locals]
    estimates for every method body. *)
