(* In-memory class model: the unit the proxy parses, the services
   rewrite, and the client runtime loads. *)

type access = Public | Private | Protected | Static | Final | Abstract | Native

type handler = {
  h_start : int; (* first covered instruction index, inclusive *)
  h_end : int; (* last covered instruction index, exclusive *)
  h_target : int; (* handler entry instruction index *)
  h_catch : string option; (* [None] catches everything *)
}

type code = {
  max_stack : int;
  max_locals : int;
  instrs : Instr.t array;
  handlers : handler list;
}

type meth = {
  m_name : string;
  m_desc : string;
  m_flags : access list;
  m_code : code option; (* [None] for native and abstract methods *)
}

type field = { f_name : string; f_desc : string; f_flags : access list }

type t = {
  name : string;
  super : string option; (* [None] only for the root class *)
  interfaces : string list;
  c_flags : access list;
  fields : field list;
  methods : meth list;
  pool : Cp.t;
  attributes : (string * string) list; (* name -> raw bytes *)
}

let java_lang_object = "java/lang/Object"

let has_flag flags f = List.mem f flags
let is_static m = has_flag m.m_flags Static

let find_method cls name desc =
  List.find_opt
    (fun m -> String.equal m.m_name name && String.equal m.m_desc desc)
    cls.methods

let find_field cls name =
  List.find_opt (fun f -> String.equal f.f_name name) cls.fields

let find_attribute cls name =
  List.assoc_opt name cls.attributes

let with_attribute cls name value =
  let rest = List.remove_assoc name cls.attributes in
  { cls with attributes = (name, value) :: rest }

let method_count cls = List.length cls.methods

let instruction_count cls =
  List.fold_left
    (fun acc m ->
      match m.m_code with
      | None -> acc
      | Some c -> acc + Array.length c.instrs)
    0 cls.methods

let code_bytes code =
  Array.fold_left (fun acc i -> acc + Instr.encoded_size i) 0 code.instrs

let map_methods f cls = { cls with methods = List.map f cls.methods }

let pp_access ppf a =
  Format.pp_print_string ppf
    (match a with
    | Public -> "public"
    | Private -> "private"
    | Protected -> "protected"
    | Static -> "static"
    | Final -> "final"
    | Abstract -> "abstract"
    | Native -> "native")

let access_bit = function
  | Public -> 0x0001
  | Private -> 0x0002
  | Protected -> 0x0004
  | Static -> 0x0008
  | Final -> 0x0010
  | Abstract -> 0x0400
  | Native -> 0x0100

let access_to_u16 flags =
  List.fold_left (fun acc a -> acc lor access_bit a) 0 flags

let access_of_u16 bits =
  List.filter
    (fun a -> bits land access_bit a <> 0)
    [ Public; Private; Protected; Static; Final; Abstract; Native ]
