(** In-memory class model.

    This is the unit of work in the DVM: the proxy parses bytes into a
    [Classfile.t], the static services rewrite it, and the client
    runtime loads it. *)

type access = Public | Private | Protected | Static | Final | Abstract | Native

(** Exception-table entry over instruction indices:
    [h_start] inclusive, [h_end] exclusive. *)
type handler = {
  h_start : int;
  h_end : int;
  h_target : int;
  h_catch : string option;  (** [None] catches every throwable *)
}

type code = {
  max_stack : int;
  max_locals : int;
  instrs : Instr.t array;
  handlers : handler list;
}

type meth = {
  m_name : string;
  m_desc : string;
  m_flags : access list;
  m_code : code option;  (** [None] for native and abstract methods *)
}

type field = { f_name : string; f_desc : string; f_flags : access list }

type t = {
  name : string;
  super : string option;  (** [None] only for the root class *)
  interfaces : string list;
  c_flags : access list;
  fields : field list;
  methods : meth list;
  pool : Cp.t;
  attributes : (string * string) list;
      (** custom class attributes, name → raw bytes; used by the
          reflection service and for signatures *)
}

val java_lang_object : string

val has_flag : access list -> access -> bool
val is_static : meth -> bool
val find_method : t -> string -> string -> meth option
val find_field : t -> string -> field option
val find_attribute : t -> string -> string option

val with_attribute : t -> string -> string -> t
(** Set (or replace) a custom class attribute. *)

val method_count : t -> int

val instruction_count : t -> int
(** Total instructions across all method bodies. *)

val code_bytes : code -> int
(** Encoded size in bytes of a code body. *)

val map_methods : (meth -> meth) -> t -> t
val pp_access : Format.formatter -> access -> unit
val access_to_u16 : access list -> int
val access_of_u16 : int -> access list
