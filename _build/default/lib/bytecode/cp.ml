(* Constant pool: an indexed table of shared constants referenced by
   instructions and by the class structure. Index 0 is reserved (as in
   real class files) so that 0 can mean "no entry". *)

type entry =
  | Utf8 of string
  | Int_const of int32
  | Class of int (* utf8 index: internal class name *)
  | Str of int (* utf8 index: string literal *)
  | Fieldref of int * int (* class index, name_and_type index *)
  | Methodref of int * int (* class index, name_and_type index *)
  | Name_and_type of int * int (* name utf8 index, descriptor utf8 index *)

type t = entry array

exception Invalid_index of int
exception Wrong_kind of { index : int; expected : string }

type member_ref = { ref_class : string; ref_name : string; ref_desc : string }

let size (pool : t) = Array.length pool

let entry (pool : t) i =
  if i <= 0 || i >= Array.length pool then raise (Invalid_index i);
  pool.(i)

let get_utf8 pool i =
  match entry pool i with
  | Utf8 s -> s
  | Int_const _ | Class _ | Str _ | Fieldref _ | Methodref _ | Name_and_type _
    ->
    raise (Wrong_kind { index = i; expected = "Utf8" })

let get_int pool i =
  match entry pool i with
  | Int_const n -> n
  | Utf8 _ | Class _ | Str _ | Fieldref _ | Methodref _ | Name_and_type _ ->
    raise (Wrong_kind { index = i; expected = "Int_const" })

let get_class_name pool i =
  match entry pool i with
  | Class u -> get_utf8 pool u
  | Utf8 _ | Int_const _ | Str _ | Fieldref _ | Methodref _ | Name_and_type _
    ->
    raise (Wrong_kind { index = i; expected = "Class" })

let get_string pool i =
  match entry pool i with
  | Str u -> get_utf8 pool u
  | Utf8 _ | Int_const _ | Class _ | Fieldref _ | Methodref _ | Name_and_type _
    ->
    raise (Wrong_kind { index = i; expected = "Str" })

let get_name_and_type pool i =
  match entry pool i with
  | Name_and_type (n, d) -> (get_utf8 pool n, get_utf8 pool d)
  | Utf8 _ | Int_const _ | Class _ | Str _ | Fieldref _ | Methodref _ ->
    raise (Wrong_kind { index = i; expected = "Name_and_type" })

let member_ref_of pool ~expected c nt i =
  match entry pool nt with
  | Name_and_type _ ->
    let ref_name, ref_desc = get_name_and_type pool nt in
    { ref_class = get_class_name pool c; ref_name; ref_desc }
  | _ -> raise (Wrong_kind { index = i; expected })

let get_fieldref pool i =
  match entry pool i with
  | Fieldref (c, nt) -> member_ref_of pool ~expected:"Fieldref" c nt i
  | Utf8 _ | Int_const _ | Class _ | Str _ | Methodref _ | Name_and_type _ ->
    raise (Wrong_kind { index = i; expected = "Fieldref" })

let get_methodref pool i =
  match entry pool i with
  | Methodref (c, nt) -> member_ref_of pool ~expected:"Methodref" c nt i
  | Utf8 _ | Int_const _ | Class _ | Str _ | Fieldref _ | Name_and_type _ ->
    raise (Wrong_kind { index = i; expected = "Methodref" })

let pp_entry ppf = function
  | Utf8 s -> Format.fprintf ppf "Utf8 %S" s
  | Int_const n -> Format.fprintf ppf "Int %ld" n
  | Class i -> Format.fprintf ppf "Class #%d" i
  | Str i -> Format.fprintf ppf "String #%d" i
  | Fieldref (c, nt) -> Format.fprintf ppf "Fieldref #%d.#%d" c nt
  | Methodref (c, nt) -> Format.fprintf ppf "Methodref #%d.#%d" c nt
  | Name_and_type (n, d) -> Format.fprintf ppf "NameAndType #%d:#%d" n d

module Builder = struct
  (* Interning builder: identical entries are shared, as the real javac
     constant-pool writer does. *)
  type builder = {
    mutable entries : entry array;
    mutable next : int;
    index : (entry, int) Hashtbl.t;
  }

  type t = builder

  let create () =
    { entries = Array.make 16 (Utf8 ""); next = 1; index = Hashtbl.create 64 }

  let of_pool (pool : entry array) =
    let b = create () in
    let n = Array.length pool in
    b.entries <- Array.make (max 16 (2 * n)) (Utf8 "");
    Array.blit pool 0 b.entries 0 n;
    b.next <- n;
    for i = 1 to n - 1 do
      (* First occurrence wins, so lookups stay stable. *)
      if not (Hashtbl.mem b.index pool.(i)) then Hashtbl.add b.index pool.(i) i
    done;
    b

  let add b e =
    match Hashtbl.find_opt b.index e with
    | Some i -> i
    | None ->
      if b.next >= Array.length b.entries then begin
        let bigger = Array.make (2 * Array.length b.entries) (Utf8 "") in
        Array.blit b.entries 0 bigger 0 b.next;
        b.entries <- bigger
      end;
      let i = b.next in
      b.entries.(i) <- e;
      b.next <- i + 1;
      Hashtbl.add b.index e i;
      i

  let utf8 b s = add b (Utf8 s)
  let int_const b n = add b (Int_const n)
  let class_ b name = add b (Class (utf8 b name))
  let string b s = add b (Str (utf8 b s))

  let name_and_type b ~name ~desc =
    add b (Name_and_type (utf8 b name, utf8 b desc))

  let fieldref b ~cls ~name ~desc =
    add b (Fieldref (class_ b cls, name_and_type b ~name ~desc))

  let methodref b ~cls ~name ~desc =
    add b (Methodref (class_ b cls, name_and_type b ~name ~desc))

  let to_pool b = Array.sub b.entries 0 (max 1 b.next)
end
