(** Constant pool.

    An indexed table of shared constants referenced by instructions and
    by the class structure. As in real class files, index 0 is reserved
    and never denotes an entry. *)

type entry =
  | Utf8 of string
  | Int_const of int32
  | Class of int  (** index of a [Utf8] holding an internal class name *)
  | Str of int  (** index of a [Utf8] holding a string literal *)
  | Fieldref of int * int  (** [Class] index, [Name_and_type] index *)
  | Methodref of int * int  (** [Class] index, [Name_and_type] index *)
  | Name_and_type of int * int  (** name [Utf8] index, descriptor [Utf8] index *)

type t = entry array

exception Invalid_index of int
exception Wrong_kind of { index : int; expected : string }

(** A fully resolved field or method reference. *)
type member_ref = { ref_class : string; ref_name : string; ref_desc : string }

val size : t -> int
(** Number of slots including the reserved slot 0. *)

val entry : t -> int -> entry
(** @raise Invalid_index if the index is out of range (including 0). *)

val get_utf8 : t -> int -> string
val get_int : t -> int -> int32
val get_class_name : t -> int -> string
val get_string : t -> int -> string
val get_name_and_type : t -> int -> string * string
val get_fieldref : t -> int -> member_ref
val get_methodref : t -> int -> member_ref
val pp_entry : Format.formatter -> entry -> unit

(** Interning constant-pool builder. Structurally identical entries are
    shared; building is amortized O(1) per entry. *)
module Builder : sig
  type t

  val create : unit -> t

  val of_pool : entry array -> t
  (** Seed a builder with an existing pool so that rewritten classes
      keep their original indices and only grow the pool. *)

  val utf8 : t -> string -> int
  val int_const : t -> int32 -> int
  val class_ : t -> string -> int
  val string : t -> string -> int
  val name_and_type : t -> name:string -> desc:string -> int
  val fieldref : t -> cls:string -> name:string -> desc:string -> int
  val methodref : t -> cls:string -> name:string -> desc:string -> int
  val to_pool : t -> entry array
end
