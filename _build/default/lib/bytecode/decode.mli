(** Binary class-file decoder.

    Decoding performs the {e syntactic} part of class-file checking:
    magic and version, pool-entry tags, truncation, and — because
    branch targets are converted from byte offsets back to instruction
    indices — the "branches land on instruction boundaries" part of the
    paper's phase-2 instruction-integrity verification. Everything else
    (pool-index kinds, bounds, type safety) belongs to the verifier. *)

exception Format_error of string

val class_of_bytes : string -> Classfile.t
(** @raise Format_error on any malformed input. *)

val class_attributes_of_bytes : string -> (string * string) list
(** Fast path: extract only the class attributes, skipping code bodies
    via their length prefixes. @raise Format_error on malformed input. *)
