(** Field and method type descriptors.

    The descriptor grammar follows the JVM specification restricted to
    the types the DVM substrate supports: [I] (32-bit integers, also
    standing in for the small integral types), [Lname;] object
    references, and [\[t] arrays. Method descriptors are
    [(t1 t2 ...)r] with [V] for a void return. *)

type ty =
  | Int  (** [I] *)
  | Obj of string  (** [Lname;] — internal (slash-separated) class name *)
  | Arr of ty  (** [\[t] *)

type method_sig = {
  params : ty list;
  ret : ty option;  (** [None] encodes a [V] (void) return *)
}

exception Bad_descriptor of string

val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string

val ty_of_string : string -> ty
(** Parse a field descriptor. @raise Bad_descriptor on malformed input. *)

val method_sig_to_string : method_sig -> string

val method_sig_of_string : string -> method_sig
(** Parse a method descriptor. @raise Bad_descriptor on malformed input. *)

val is_method_descriptor : string -> bool
(** Cheap syntactic test: does the string start like a method descriptor? *)

val valid_field_descriptor : string -> bool
val valid_method_descriptor : string -> bool

val param_slots : method_sig -> int
(** Locals slots occupied by the parameters (every type is one slot). *)

val equal_ty : ty -> ty -> bool
