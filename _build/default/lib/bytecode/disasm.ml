(* Human-readable class dumps, with constant-pool references resolved
   inline where possible. *)

let pp_resolved pool ppf (i : Instr.t) =
  let member get idx mnemonic =
    match get pool idx with
    | { Cp.ref_class; ref_name; ref_desc } ->
      Format.fprintf ppf "%s %s.%s:%s" mnemonic ref_class ref_name ref_desc
    | exception (Cp.Invalid_index _ | Cp.Wrong_kind _) ->
      Format.fprintf ppf "%s #%d (unresolvable)" mnemonic idx
  in
  let cls idx mnemonic =
    match Cp.get_class_name pool idx with
    | name -> Format.fprintf ppf "%s %s" mnemonic name
    | exception (Cp.Invalid_index _ | Cp.Wrong_kind _) ->
      Format.fprintf ppf "%s #%d (unresolvable)" mnemonic idx
  in
  match i with
  | Instr.Ldc_str idx -> (
    match Cp.get_string pool idx with
    | s -> Format.fprintf ppf "ldc %S" s
    | exception (Cp.Invalid_index _ | Cp.Wrong_kind _) ->
      Format.fprintf ppf "ldc #%d (unresolvable)" idx)
  | Instr.Getstatic idx -> member Cp.get_fieldref idx "getstatic"
  | Instr.Putstatic idx -> member Cp.get_fieldref idx "putstatic"
  | Instr.Getfield idx -> member Cp.get_fieldref idx "getfield"
  | Instr.Putfield idx -> member Cp.get_fieldref idx "putfield"
  | Instr.Invokevirtual idx -> member Cp.get_methodref idx "invokevirtual"
  | Instr.Invokestatic idx -> member Cp.get_methodref idx "invokestatic"
  | Instr.Invokespecial idx -> member Cp.get_methodref idx "invokespecial"
  | Instr.Invokeinterface idx -> member Cp.get_methodref idx "invokeinterface"
  | Instr.New idx -> cls idx "new"
  | Instr.Anewarray idx -> cls idx "anewarray"
  | Instr.Checkcast idx -> cls idx "checkcast"
  | Instr.Instanceof idx -> cls idx "instanceof"
  | other -> Instr.pp ppf other

let pp_code pool ppf (code : Classfile.code) =
  Format.fprintf ppf "    stack=%d locals=%d@\n" code.max_stack
    code.max_locals;
  Array.iteri
    (fun idx i ->
      Format.fprintf ppf "    %4d: %a@\n" idx (pp_resolved pool) i)
    code.instrs;
  List.iter
    (fun h ->
      Format.fprintf ppf "    handler [%d, %d) -> %d catch %s@\n"
        h.Classfile.h_start h.Classfile.h_end h.Classfile.h_target
        (match h.Classfile.h_catch with None -> "<any>" | Some c -> c))
    code.handlers

let pp_method pool ppf (m : Classfile.meth) =
  Format.fprintf ppf "  %a %s %s@\n"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Classfile.pp_access)
    m.m_flags m.m_name m.m_desc;
  match m.m_code with
  | None -> Format.fprintf ppf "    <no code>@\n"
  | Some code -> pp_code pool ppf code

let pp_class ppf (cls : Classfile.t) =
  Format.fprintf ppf "class %s" cls.name;
  (match cls.super with
  | None -> ()
  | Some s -> Format.fprintf ppf " extends %s" s);
  if cls.interfaces <> [] then
    Format.fprintf ppf " implements %s" (String.concat ", " cls.interfaces);
  Format.fprintf ppf "@\n";
  List.iter
    (fun f ->
      Format.fprintf ppf "  field %s : %s@\n" f.Classfile.f_name
        f.Classfile.f_desc)
    cls.fields;
  List.iter (pp_method cls.pool ppf) cls.methods;
  List.iter
    (fun (name, value) ->
      Format.fprintf ppf "  attribute %s (%d bytes)@\n" name
        (String.length value))
    cls.attributes

let class_to_string cls = Format.asprintf "%a" pp_class cls
