(** Human-readable class dumps with constant-pool references resolved
    inline. *)

val pp_resolved : Cp.t -> Format.formatter -> Instr.t -> unit
val pp_code : Cp.t -> Format.formatter -> Classfile.code -> unit
val pp_method : Cp.t -> Format.formatter -> Classfile.meth -> unit
val pp_class : Format.formatter -> Classfile.t -> unit
val class_to_string : Classfile.t -> string
