(** Binary class-file encoder.

    The layout mirrors the real class-file format (magic, versioned
    header, constant pool, members, attributes). Two simplifications
    are documented in DESIGN.md: header class names are direct strings
    rather than pool indices, and branch operands are absolute byte
    offsets rather than relative ones. *)

val magic : int
val version_major : int
val version_minor : int

val class_to_bytes : Classfile.t -> string

val class_size : Classfile.t -> int
(** Encoded size in bytes; this is the "size on the wire" used by the
    network experiments. *)
