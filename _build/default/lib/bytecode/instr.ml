(* The DVM instruction set: a JVM-like typed stack machine over ints,
   references and arrays. In this in-memory form, branch targets are
   *instruction indices* into the method's code array; the binary
   encoder/decoder translate to and from byte offsets. This makes
   rewriting (instruction insertion with target remapping) simple and
   total. *)

type icmp = Eq | Ne | Lt | Ge | Gt | Le

type t =
  | Nop
  | Iconst of int32
  | Ldc_str of int (* CP Str index *)
  | Aconst_null
  | Iload of int
  | Istore of int
  | Aload of int
  | Astore of int
  | Iinc of int * int
  | Iadd
  | Isub
  | Imul
  | Idiv
  | Irem
  | Ineg
  | Ishl
  | Ishr
  | Iand
  | Ior
  | Ixor
  | Dup
  | Dup_x1
  | Pop
  | Swap
  | Goto of int
  | If_icmp of icmp * int
  | If_z of icmp * int (* compare int against zero *)
  | If_acmp of bool * int (* [true] branches when refs are equal *)
  | If_null of bool * int (* [true] branches when ref is null *)
  | Jsr of int
  | Ret of int (* local variable holding the return address *)
  | Tableswitch of { low : int32; targets : int array; default : int }
  | Ireturn
  | Areturn
  | Return
  | Getstatic of int (* CP Fieldref index *)
  | Putstatic of int
  | Getfield of int
  | Putfield of int
  | Invokevirtual of int (* CP Methodref index *)
  | Invokestatic of int
  | Invokespecial of int
  | Invokeinterface of int
  | New of int (* CP Class index *)
  | Newarray (* int array; length on stack *)
  | Anewarray of int (* CP Class index of the element type *)
  | Arraylength
  | Iaload
  | Iastore
  | Aaload
  | Aastore
  | Athrow
  | Checkcast of int (* CP Class index *)
  | Instanceof of int
  | Monitorenter
  | Monitorexit

let targets = function
  | Goto t | If_icmp (_, t) | If_z (_, t) | If_acmp (_, t) | If_null (_, t)
  | Jsr t ->
    [ t ]
  | Tableswitch { targets; default; _ } -> default :: Array.to_list targets
  | Nop | Iconst _ | Ldc_str _ | Aconst_null | Iload _ | Istore _ | Aload _
  | Astore _ | Iinc _ | Iadd | Isub | Imul | Idiv | Irem | Ineg | Ishl | Ishr
  | Iand | Ior | Ixor | Dup | Dup_x1 | Pop | Swap | Ret _ | Ireturn | Areturn
  | Return | Getstatic _ | Putstatic _ | Getfield _ | Putfield _
  | Invokevirtual _ | Invokestatic _ | Invokespecial _ | Invokeinterface _
  | New _ | Newarray
  | Anewarray _ | Arraylength | Iaload | Iastore | Aaload | Aastore | Athrow
  | Checkcast _ | Instanceof _ | Monitorenter | Monitorexit ->
    []

let map_targets f = function
  | Goto t -> Goto (f t)
  | If_icmp (c, t) -> If_icmp (c, f t)
  | If_z (c, t) -> If_z (c, f t)
  | If_acmp (eq, t) -> If_acmp (eq, f t)
  | If_null (isnull, t) -> If_null (isnull, f t)
  | Jsr t -> Jsr (f t)
  | Tableswitch { low; targets; default } ->
    Tableswitch { low; targets = Array.map f targets; default = f default }
  | ( Nop | Iconst _ | Ldc_str _ | Aconst_null | Iload _ | Istore _ | Aload _
    | Astore _ | Iinc _ | Iadd | Isub | Imul | Idiv | Irem | Ineg | Ishl
    | Ishr | Iand | Ior | Ixor | Dup | Dup_x1 | Pop | Swap | Ret _ | Ireturn
    | Areturn | Return | Getstatic _ | Putstatic _ | Getfield _ | Putfield _
    | Invokevirtual _ | Invokestatic _ | Invokespecial _ | Invokeinterface _
    | New _ | Newarray
    | Anewarray _ | Arraylength | Iaload | Iastore | Aaload | Aastore | Athrow
    | Checkcast _ | Instanceof _ | Monitorenter | Monitorexit ) as i ->
    i

(* Does control never fall through to the next instruction? *)
let is_terminator = function
  | Goto _ | Ret _ | Tableswitch _ | Ireturn | Areturn | Return | Athrow ->
    true
  | Nop | Iconst _ | Ldc_str _ | Aconst_null | Iload _ | Istore _ | Aload _
  | Astore _ | Iinc _ | Iadd | Isub | Imul | Idiv | Irem | Ineg | Ishl | Ishr
  | Iand | Ior | Ixor | Dup | Dup_x1 | Pop | Swap | If_icmp _ | If_z _
  | If_acmp _ | If_null _ | Jsr _ | Getstatic _ | Putstatic _ | Getfield _
  | Putfield _ | Invokevirtual _ | Invokestatic _ | Invokespecial _
  | Invokeinterface _ | New _
  | Newarray | Anewarray _ | Arraylength | Iaload | Iastore | Aaload | Aastore
  | Checkcast _ | Instanceof _ | Monitorenter | Monitorexit ->
    false

(* Successor instruction indices of the instruction at [idx]
   (exception edges excluded). *)
let successors idx i =
  let fall = if is_terminator i then [] else [ idx + 1 ] in
  targets i @ fall

let pp_icmp ppf c =
  Format.pp_print_string ppf
    (match c with
    | Eq -> "eq"
    | Ne -> "ne"
    | Lt -> "lt"
    | Ge -> "ge"
    | Gt -> "gt"
    | Le -> "le")

let pp ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Iconst n -> Format.fprintf ppf "iconst %ld" n
  | Ldc_str i -> Format.fprintf ppf "ldc_str #%d" i
  | Aconst_null -> Format.pp_print_string ppf "aconst_null"
  | Iload n -> Format.fprintf ppf "iload %d" n
  | Istore n -> Format.fprintf ppf "istore %d" n
  | Aload n -> Format.fprintf ppf "aload %d" n
  | Astore n -> Format.fprintf ppf "astore %d" n
  | Iinc (n, d) -> Format.fprintf ppf "iinc %d %d" n d
  | Iadd -> Format.pp_print_string ppf "iadd"
  | Isub -> Format.pp_print_string ppf "isub"
  | Imul -> Format.pp_print_string ppf "imul"
  | Idiv -> Format.pp_print_string ppf "idiv"
  | Irem -> Format.pp_print_string ppf "irem"
  | Ineg -> Format.pp_print_string ppf "ineg"
  | Ishl -> Format.pp_print_string ppf "ishl"
  | Ishr -> Format.pp_print_string ppf "ishr"
  | Iand -> Format.pp_print_string ppf "iand"
  | Ior -> Format.pp_print_string ppf "ior"
  | Ixor -> Format.pp_print_string ppf "ixor"
  | Dup -> Format.pp_print_string ppf "dup"
  | Dup_x1 -> Format.pp_print_string ppf "dup_x1"
  | Pop -> Format.pp_print_string ppf "pop"
  | Swap -> Format.pp_print_string ppf "swap"
  | Goto t -> Format.fprintf ppf "goto @%d" t
  | If_icmp (c, t) -> Format.fprintf ppf "if_icmp%a @%d" pp_icmp c t
  | If_z (c, t) -> Format.fprintf ppf "if%a @%d" pp_icmp c t
  | If_acmp (true, t) -> Format.fprintf ppf "if_acmpeq @%d" t
  | If_acmp (false, t) -> Format.fprintf ppf "if_acmpne @%d" t
  | If_null (true, t) -> Format.fprintf ppf "ifnull @%d" t
  | If_null (false, t) -> Format.fprintf ppf "ifnonnull @%d" t
  | Jsr t -> Format.fprintf ppf "jsr @%d" t
  | Ret n -> Format.fprintf ppf "ret %d" n
  | Tableswitch { low; targets; default } ->
    Format.fprintf ppf "tableswitch %ld [%s] default @%d" low
      (String.concat "; "
         (Array.to_list (Array.map (Printf.sprintf "@%d") targets)))
      default
  | Ireturn -> Format.pp_print_string ppf "ireturn"
  | Areturn -> Format.pp_print_string ppf "areturn"
  | Return -> Format.pp_print_string ppf "return"
  | Getstatic i -> Format.fprintf ppf "getstatic #%d" i
  | Putstatic i -> Format.fprintf ppf "putstatic #%d" i
  | Getfield i -> Format.fprintf ppf "getfield #%d" i
  | Putfield i -> Format.fprintf ppf "putfield #%d" i
  | Invokevirtual i -> Format.fprintf ppf "invokevirtual #%d" i
  | Invokestatic i -> Format.fprintf ppf "invokestatic #%d" i
  | Invokespecial i -> Format.fprintf ppf "invokespecial #%d" i
  | Invokeinterface i -> Format.fprintf ppf "invokeinterface #%d" i
  | New i -> Format.fprintf ppf "new #%d" i
  | Newarray -> Format.pp_print_string ppf "newarray int"
  | Anewarray i -> Format.fprintf ppf "anewarray #%d" i
  | Arraylength -> Format.pp_print_string ppf "arraylength"
  | Iaload -> Format.pp_print_string ppf "iaload"
  | Iastore -> Format.pp_print_string ppf "iastore"
  | Aaload -> Format.pp_print_string ppf "aaload"
  | Aastore -> Format.pp_print_string ppf "aastore"
  | Athrow -> Format.pp_print_string ppf "athrow"
  | Checkcast i -> Format.fprintf ppf "checkcast #%d" i
  | Instanceof i -> Format.fprintf ppf "instanceof #%d" i
  | Monitorenter -> Format.pp_print_string ppf "monitorenter"
  | Monitorexit -> Format.pp_print_string ppf "monitorexit"

let to_string i = Format.asprintf "%a" pp i

(* Byte size of the encoded instruction: one opcode byte plus
   fixed-width operands (u2 for indices and locals, i4 for constants,
   i4 relative offsets for branches). Tableswitch is variable. *)
let encoded_size = function
  | Nop | Aconst_null | Iadd | Isub | Imul | Idiv | Irem | Ineg | Ishl | Ishr
  | Iand | Ior | Ixor | Dup | Dup_x1 | Pop | Swap | Ireturn | Areturn | Return
  | Newarray | Arraylength | Iaload | Iastore | Aaload | Aastore | Athrow
  | Monitorenter | Monitorexit ->
    1
  | Iload _ | Istore _ | Aload _ | Astore _ | Ret _ | Ldc_str _ | Getstatic _
  | Putstatic _ | Getfield _ | Putfield _ | Invokevirtual _ | Invokestatic _
  | Invokespecial _ | Invokeinterface _ | New _ | Anewarray _ | Checkcast _
  | Instanceof _ ->
    3
  | Iinc _ -> 5
  | Iconst _ -> 5
  | Goto _ | If_icmp _ | If_z _ | If_acmp _ | If_null _ | Jsr _ -> 5
  | Tableswitch { targets; _ } -> 1 + 4 + 4 + 4 + (4 * Array.length targets)
