(** The DVM instruction set.

    A JVM-like typed stack machine over 32-bit integers, object
    references and arrays. In this in-memory form branch targets are
    {e instruction indices} into the enclosing method's code array; the
    binary encoder/decoder translate to and from byte offsets. Index
    targets make rewriting — instruction insertion with target
    remapping — simple and total. *)

type icmp = Eq | Ne | Lt | Ge | Gt | Le

type t =
  | Nop
  | Iconst of int32  (** push an integer constant *)
  | Ldc_str of int  (** push the string literal at a CP [Str] index *)
  | Aconst_null
  | Iload of int
  | Istore of int
  | Aload of int
  | Astore of int
  | Iinc of int * int  (** add a constant to an int local in place *)
  | Iadd
  | Isub
  | Imul
  | Idiv
  | Irem
  | Ineg
  | Ishl
  | Ishr
  | Iand
  | Ior
  | Ixor
  | Dup
  | Dup_x1
  | Pop
  | Swap
  | Goto of int
  | If_icmp of icmp * int  (** branch on comparison of two ints *)
  | If_z of icmp * int  (** branch on comparison of an int against zero *)
  | If_acmp of bool * int  (** [true] branches when the two refs are equal *)
  | If_null of bool * int  (** [true] branches when the ref is null *)
  | Jsr of int  (** jump to subroutine, pushing a return address *)
  | Ret of int  (** return via the address in a local variable *)
  | Tableswitch of { low : int32; targets : int array; default : int }
  | Ireturn
  | Areturn
  | Return
  | Getstatic of int  (** CP [Fieldref] index *)
  | Putstatic of int
  | Getfield of int
  | Putfield of int
  | Invokevirtual of int  (** CP [Methodref] index *)
  | Invokestatic of int
  | Invokespecial of int  (** constructors and super calls *)
  | Invokeinterface of int  (** dispatch through an interface type *)
  | New of int  (** CP [Class] index *)
  | Newarray  (** new int array; length on stack *)
  | Anewarray of int  (** new reference array; CP [Class] element type *)
  | Arraylength
  | Iaload
  | Iastore
  | Aaload
  | Aastore
  | Athrow
  | Checkcast of int
  | Instanceof of int
  | Monitorenter
  | Monitorexit

val targets : t -> int list
(** Explicit branch targets (instruction indices). *)

val map_targets : (int -> int) -> t -> t

val is_terminator : t -> bool
(** [true] when control never falls through to the next instruction. *)

val successors : int -> t -> int list
(** [successors idx i] is the set of successor instruction indices of
    the instruction [i] located at [idx], exception edges excluded. *)

val pp : Format.formatter -> t -> unit
val pp_icmp : Format.formatter -> icmp -> unit
val to_string : t -> string

val encoded_size : t -> int
(** Size in bytes of the binary encoding of the instruction. *)
