(* Big-endian byte-level readers and writers used by the class-file
   encoder/decoder and by services that attach binary attributes. *)

exception Truncated of string

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let u1 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u2 b v =
    u1 b ((v lsr 8) land 0xff);
    u1 b (v land 0xff)

  let u4 b v =
    u1 b ((v lsr 24) land 0xff);
    u1 b ((v lsr 16) land 0xff);
    u1 b ((v lsr 8) land 0xff);
    u1 b (v land 0xff)

  let i4 b (v : int32) = u4 b (Int32.to_int v land 0xffffffff)

  let i2 b v =
    (* two's-complement 16-bit *)
    u2 b (v land 0xffff)

  let str b s =
    u2 b (String.length s);
    Buffer.add_string b s

  let raw b s = Buffer.add_string b s
  let contents = Buffer.contents
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }
  let pos r = r.pos
  let remaining r = String.length r.data - r.pos
  let at_end r = remaining r = 0

  let need r n what =
    if remaining r < n then
      raise (Truncated (Printf.sprintf "%s: need %d bytes at %d" what n r.pos))

  let u1 r =
    need r 1 "u1";
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u2 r =
    need r 2 "u2";
    let v = u1 r in
    (v lsl 8) lor u1 r

  let u4 r =
    need r 4 "u4";
    let a = u2 r in
    let b = u2 r in
    (a lsl 16) lor b

  let i4 r = Int32.of_int (u4 r)

  let i2 r =
    let v = u2 r in
    if v land 0x8000 <> 0 then v - 0x10000 else v

  let str r =
    let n = u2 r in
    need r n "str";
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let raw r n =
    need r n "raw";
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s
end
