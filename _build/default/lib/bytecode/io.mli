(** Big-endian byte-level readers and writers for the class-file wire
    format and binary attributes. *)

exception Truncated of string

module Writer : sig
  type t

  val create : unit -> t
  val u1 : t -> int -> unit
  val u2 : t -> int -> unit
  val u4 : t -> int -> unit
  val i4 : t -> int32 -> unit
  val i2 : t -> int -> unit

  val str : t -> string -> unit
  (** Length-prefixed (u2) string. *)

  val raw : t -> string -> unit
  val contents : t -> string
end

module Reader : sig
  type t

  val of_string : string -> t
  val pos : t -> int
  val remaining : t -> int
  val at_end : t -> bool
  val u1 : t -> int
  val u2 : t -> int
  val u4 : t -> int
  val i4 : t -> int32
  val i2 : t -> int
  val str : t -> string
  val raw : t -> int -> string
end
