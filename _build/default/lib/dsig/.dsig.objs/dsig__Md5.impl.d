lib/dsig/md5.ml: Array Buffer Char Float Int32 Int64 List Printf String
