lib/dsig/md5.mli:
