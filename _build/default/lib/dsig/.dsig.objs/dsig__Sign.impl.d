lib/dsig/sign.ml: Bytecode Char List Md5 String
