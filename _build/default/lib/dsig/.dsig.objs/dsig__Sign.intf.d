lib/dsig/sign.mli: Bytecode
