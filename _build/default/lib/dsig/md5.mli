(** MD5 (RFC 1321), implemented from the specification. *)

val digest : string -> string
(** 16-byte raw digest. *)

val to_hex : string -> string
val hex_digest : string -> string
