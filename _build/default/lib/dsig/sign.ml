(* Code signing for transformed classes (§2): digital signatures
   attached by the static service components ensure the injected checks
   are inseparable from applications; clients redirect incorrectly
   signed or unsigned code back to the centralized services.

   Substitution note (DESIGN.md): the paper cites RSA; we use an
   HMAC-style keyed-MD5 over a shared organization key distributed by
   the key manager. The evaluation only requires that signing and
   verification exist, bind to the exact bytes, and have a cost. *)

type key = { key_id : string; secret : string }

let signature_attribute = "dvm.signature"

let make_key ~key_id ~secret = { key_id; secret }

(* HMAC construction over MD5 with the standard ipad/opad schedule. *)
let hmac key data =
  let block = 64 in
  let k =
    if String.length key > block then Md5.digest key
    else key ^ String.make (block - String.length key) '\x00'
  in
  let xor_with pad = String.map (fun c -> Char.chr (Char.code c lxor pad)) k in
  Md5.digest (xor_with 0x5c ^ Md5.digest (xor_with 0x36 ^ data))

(* The signature covers the class bytes *without* the signature
   attribute itself. *)
let strip_signature (cf : Bytecode.Classfile.t) =
  {
    cf with
    Bytecode.Classfile.attributes =
      List.remove_assoc signature_attribute cf.Bytecode.Classfile.attributes;
  }

let signable_bytes cf = Bytecode.Encode.class_to_bytes (strip_signature cf)

let sign key (cf : Bytecode.Classfile.t) =
  let mac = hmac key.secret (signable_bytes cf) in
  Bytecode.Classfile.with_attribute cf signature_attribute
    (key.key_id ^ ":" ^ Md5.to_hex mac)

type verdict = Valid | Unsigned | Bad_signature | Unknown_key of string

(* Client-side check: the key manager holds the organization keys the
   client trusts. *)
let verify keys (cf : Bytecode.Classfile.t) =
  match Bytecode.Classfile.find_attribute cf signature_attribute with
  | None -> Unsigned
  | Some v -> (
    match String.index_opt v ':' with
    | None -> Bad_signature
    | Some i -> (
      let key_id = String.sub v 0 i in
      let hex = String.sub v (i + 1) (String.length v - i - 1) in
      match List.find_opt (fun k -> String.equal k.key_id key_id) keys with
      | None -> Unknown_key key_id
      | Some key ->
        let expect = Md5.to_hex (hmac key.secret (signable_bytes cf)) in
        if String.equal expect hex then Valid else Bad_signature))

(* Simulated cost of a signature operation, in cost units (~µs): one
   MD5 pass over the class dominates. *)
let sign_cost_us ~bytes = 5 + (bytes / 100)
let verify_cost_us ~bytes = sign_cost_us ~bytes
