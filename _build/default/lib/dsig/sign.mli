(** Code signing for transformed classes (§2).

    Signatures attached by the static service components make injected
    checks inseparable from applications; clients redirect incorrectly
    signed or unsigned code back to the centralized services.

    Substitution (DESIGN.md): keyed-MD5 (HMAC construction) over a
    shared organization key stands in for the paper's RSA. *)

type key = { key_id : string; secret : string }

val signature_attribute : string
val make_key : key_id:string -> secret:string -> key
val hmac : string -> string -> string

val strip_signature : Bytecode.Classfile.t -> Bytecode.Classfile.t
val signable_bytes : Bytecode.Classfile.t -> string

val sign : key -> Bytecode.Classfile.t -> Bytecode.Classfile.t
(** Attach a signature attribute covering the class bytes without the
    attribute itself. *)

type verdict = Valid | Unsigned | Bad_signature | Unknown_key of string

val verify : key list -> Bytecode.Classfile.t -> verdict

val sign_cost_us : bytes:int -> int
val verify_cost_us : bytes:int -> int
