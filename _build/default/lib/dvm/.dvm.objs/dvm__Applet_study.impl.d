lib/dvm/applet_study.ml: Bytecode Costs Experiment Float Int64 Jvm List Monitor Proxy Security String Verifier Workloads
