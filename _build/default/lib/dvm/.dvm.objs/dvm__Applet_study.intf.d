lib/dvm/applet_study.mli:
