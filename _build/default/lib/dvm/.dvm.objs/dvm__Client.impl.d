lib/dvm/client.ml: Bytecode Costs Float Hashtbl Int64 Jvm List Monitor Option Security Verifier
