lib/dvm/client.mli: Jvm Monitor Security Verifier
