lib/dvm/costs.ml: Float Int64 Jvm
