lib/dvm/costs.mli: Jvm
