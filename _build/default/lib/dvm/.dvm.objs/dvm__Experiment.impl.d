lib/dvm/experiment.ml: Bytecode Client Costs Float Hashtbl Int64 Jvm List Monitor Proxy Rewrite Security Simnet String Verifier Workloads
