lib/dvm/experiment.mli: Monitor Rewrite Security Verifier Workloads
