lib/dvm/scaling.ml: Array Bytecode Experiment Float Int64 Jvm List Monitor Printf Proxy Security Simnet String Verifier Workloads
