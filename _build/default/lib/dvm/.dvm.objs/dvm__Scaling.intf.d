lib/dvm/scaling.mli: Simnet
