(* The applet-download study of §4.1.2: the latency a client sees when
   loading Internet applets through the service infrastructure —
   uncached (full pipeline) versus cached (another client fetched the
   applet first) — against the raw Internet fetch latency. *)

type stats = {
  n : int;
  mean_internet_ms : float;
  stddev_internet_ms : float;
  mean_proxy_overhead_ms : float; (* parse+instrument time, uncached *)
  overhead_percent : float;
  mean_cached_ms : float; (* full fetch time when cached *)
}

(* Client-side HTTP request overhead (connection setup, headers,
   browser bookkeeping), paid on every fetch, cached or not. *)
let client_request_overhead_ms = 150.0

let run ?(seed = 42) ?(n = 100) () : stats =
  let pop = Workloads.Applets.population ~n ~seed () in
  let oracle = Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ()) in
  let filters =
    [
      Verifier.Static_verifier.filter ~oracle ();
      Security.Rewriter.filter Experiment.standard_policy;
      Monitor.Instrument.audit_filter ();
    ]
  in
  let lat_ms ap = Float.of_int ap.Workloads.Applets.ap_wan_latency_us /. 1000.0 in
  let mean_internet =
    List.fold_left (fun a ap -> a +. lat_ms ap) 0.0 pop /. Float.of_int n
  in
  let stddev =
    sqrt
      (List.fold_left
         (fun a ap ->
           let d = lat_ms ap -. mean_internet in
           a +. (d *. d))
         0.0 pop
      /. Float.of_int n)
  in
  (* Uncached: run the real pipeline per applet and take its simulated
     CPU cost; cached: fixed cache service plus LAN transfer. *)
  let total_overhead_ms = ref 0.0 in
  let total_cached_ms = ref 0.0 in
  List.iter
    (fun ap ->
      let body =
        Bytecode.Encode.class_to_bytes (Workloads.Applets.realize ap)
      in
      let outcome = Proxy.Pipeline.run filters body in
      total_overhead_ms :=
        !total_overhead_ms
        +. (Int64.to_float (Proxy.Pipeline.total_cost outcome) /. 1000.0);
      let out_bytes = String.length outcome.Proxy.Pipeline.out_bytes in
      total_cached_ms :=
        !total_cached_ms +. 2.0 (* cache service *)
        +. client_request_overhead_ms
        +. (Float.of_int (Costs.lan_transfer_us ~bytes:out_bytes) /. 1000.0)
        +. (Costs.client_parse_us_per_byte *. Float.of_int out_bytes /. 1000.0))
    pop;
  let mean_overhead = !total_overhead_ms /. Float.of_int n in
  {
    n;
    mean_internet_ms = mean_internet;
    stddev_internet_ms = stddev;
    mean_proxy_overhead_ms = mean_overhead;
    overhead_percent = 100.0 *. mean_overhead /. mean_internet;
    mean_cached_ms = !total_cached_ms /. Float.of_int n;
  }
