(** The applet-download study of §4.1.2: client-visible latency when
    loading Internet applets through the service infrastructure,
    uncached (full pipeline) vs cached. *)

type stats = {
  n : int;
  mean_internet_ms : float;
  stddev_internet_ms : float;
  mean_proxy_overhead_ms : float;
  overhead_percent : float;
  mean_cached_ms : float;
}

val client_request_overhead_ms : float
val run : ?seed:int -> ?n:int -> unit -> stats
