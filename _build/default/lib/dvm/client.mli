(** Client assembly.

    Builds a VM configured either as a {e monolithic} virtual machine
    (all services local: load-time verification, stack-introspection
    security, client-side auditing) or as a {e DVM client} (thin
    runtime plus the dynamic service components: RTVerifier link
    checks, the enforcement manager, the monitoring natives). *)

type architecture = Monolithic | Dvm_client

type t = {
  vm : Jvm.Vmstate.t;
  architecture : architecture;
  rt_verifier : Verifier.Rt_verifier.stats option;
  enforcement : Security.Enforcement.t option;
  profiler : Monitor.Profiler.t option;
  mutable local_verify_checks : int;
  mutable local_verify_errors : int;
}

val jdk_security_hook :
  Jvm.Vmstate.t -> Security.Policy.t -> sid:Security.Policy.sid -> string -> unit
(** The monolithic JDK security manager: stack-introspection checks at
    the anticipated operations, charged at Figure 9's overheads. *)

val create_monolithic :
  ?policy:Security.Policy.t ->
  ?sid:Security.Policy.sid ->
  ?verify:bool ->
  ?oracle_provider:Jvm.Classreg.provider ->
  provider:Jvm.Classreg.provider ->
  unit ->
  t
(** [oracle_provider] serves the local verifier's environment lookups
    (defaults to [provider]); pass the raw origin to keep transfer
    metering honest. *)

val create_dvm :
  ?console:Monitor.Console.t ->
  ?session:int ->
  ?security_server:Security.Server.t ->
  ?sid:Security.Policy.sid ->
  provider:Jvm.Classreg.provider ->
  unit ->
  t

val run_main : t -> string -> (unit, Jvm.Value.t) result
val client_time_us : t -> int64
