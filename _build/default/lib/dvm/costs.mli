(** The shared cost model, in simulated microseconds on the paper's
    reference client (200 MHz PentiumPro, 64 MB). All constants are
    calibrations anchored to numbers the paper reports; the
    reproduction claims shapes, not cycle counts (DESIGN.md). *)

val client_us_per_bytecode : float
val client_parse_us_per_byte : float

val monolithic_verify_us_per_check : float
(** Figure 7's bars are (Figure 8 checks) x this constant. *)

val monolithic_audit_us_per_invocation : float

(** Figure 9 "JDK (overhead)" column, µs. *)

val jdk_overhead_get_property : int64
val jdk_overhead_open_file : int64
val jdk_overhead_set_priority : int64

val lan_bandwidth_bps : int
val lan_latency_us : int
val lan_transfer_us : bytes:int -> int

val client_us_of_vm : Jvm.Vmstate.t -> int64
(** Instruction counts weighted by interpretation speed plus native
    costs at face value. *)

val us_to_s : int64 -> float
