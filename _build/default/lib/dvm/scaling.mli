(** The scaling experiment of §4.2 (Figure 10): hundreds of clients
    fetch different applets through one proxy with caching disabled.
    See the implementation header for the resource model behind the
    64 MB knee. *)

type point = {
  clients : int;
  throughput_bytes_per_s : float;
  mean_latency_us : float;
  mean_latency_s_per_kb : float;
  requests_completed : int;
  proxy_utilization : float;
}

val per_client_state_bytes : int
val think_time : Simnet.Engine.time

val run :
  ?duration_s:int ->
  ?seed:int ->
  ?applet_count:int ->
  ?mem_capacity:int ->
  ?proxies:int ->
  ?cache_capacity:int ->
  clients:int ->
  unit ->
  point
(** [proxies] > 1 models the replicated-server deployment of §2:
    clients spread round-robin over the pool. [cache_capacity] > 0
    enables the proxy cache and makes clients share the popular applet
    set (the paper's stated mitigations). *)

val sweep :
  ?duration_s:int ->
  ?seed:int ->
  ?applet_count:int ->
  ?mem_capacity:int ->
  ?proxies:int ->
  ?cache_capacity:int ->
  int list ->
  point list
