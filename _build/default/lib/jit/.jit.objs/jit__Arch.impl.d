lib/jit/arch.ml:
