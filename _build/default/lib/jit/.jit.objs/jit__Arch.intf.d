lib/jit/arch.mli:
