lib/jit/exec.ml: Array Format Int32 Ir List
