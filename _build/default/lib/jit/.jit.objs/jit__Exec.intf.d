lib/jit/exec.mli: Ir
