lib/jit/ir.ml: Arch Array Format
