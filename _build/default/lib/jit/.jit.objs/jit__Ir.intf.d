lib/jit/ir.mli: Arch Format
