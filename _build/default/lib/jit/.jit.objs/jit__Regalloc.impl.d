lib/jit/regalloc.ml: Arch Array Hashtbl Ir List
