lib/jit/regalloc.mli: Arch Hashtbl Ir
