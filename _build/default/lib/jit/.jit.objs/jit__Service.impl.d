lib/jit/service.ml: Arch Array Bytecode Exec Hashtbl Int64 Ir List Monitor Printf Regalloc Translate
