lib/jit/service.mli: Arch Bytecode Hashtbl Ir Monitor Regalloc
