lib/jit/translate.ml: Array Bytecode Int32 Ir List
