lib/jit/translate.mli: Bytecode Ir
