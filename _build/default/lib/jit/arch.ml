(* Client architecture descriptors for the network compilation service
   (§3.4). The paper's DVM runs on x86 and DEC Alpha clients; the
   client describes its native format during the administration
   handshake and the network compiler translates ahead of time for that
   format. *)

type t = {
  name : string;
  registers : int; (* allocatable general-purpose registers *)
  (* relative per-operation cost in cost units; interpretation of the
     same operation costs ~1 unit, so these model native speedup *)
  cost_alu : float;
  cost_mem : float;
  cost_branch : float;
  cost_call : float;
}

let x86 =
  {
    name = "x86";
    registers = 6; (* eax..edi minus stack/frame pointers *)
    cost_alu = 0.10;
    cost_mem = 0.25;
    cost_branch = 0.15;
    cost_call = 0.80;
  }

let alpha =
  {
    name = "alpha";
    registers = 24;
    cost_alu = 0.08;
    cost_mem = 0.22;
    cost_branch = 0.12;
    cost_call = 0.70;
  }

let by_name = function
  | "x86" -> Some x86
  | "alpha" -> Some alpha
  | _ -> None

let all = [ x86; alpha ]
