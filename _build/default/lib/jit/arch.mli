(** Client architecture descriptors for the network compilation
    service (§3.4). The paper's DVM runs on x86 and DEC Alpha clients;
    the client's native format arrives via the administration
    handshake. *)

type t = {
  name : string;
  registers : int;  (** allocatable general-purpose registers *)
  cost_alu : float;
      (** relative per-operation costs in cost units; interpreting the
          same operation costs ~1 unit, so these model native speedup *)
  cost_mem : float;
  cost_branch : float;
  cost_call : float;
}

val x86 : t
val alpha : t
val by_name : string -> t option
val all : t list
