(** Executor for compiled kernels: runs the arithmetic/control subset
    of the IR over virtual registers. Methods using object or call
    operations are reported interpreter-resident (see DESIGN.md). *)

exception Unsupported of string

val supported_instr : Ir.instr -> bool
val supported : Ir.meth -> bool

type value = Vint of int32 | Vstr of string | Vnull | Varr of int32 array

exception Kernel_fault of string

val run : Ir.meth -> value list -> value option
