(* Linear-scan register allocation over live intervals: the second half
   of the network compiler. Virtual registers get an interval spanning
   their first definition/use to their last use (extended to whole-body
   for registers live across backward branches); intervals are walked
   in start order and assigned to the architecture's register file,
   spilling the longest-lived interval when the file is full. *)

type location = Phys of int | Spill of int

type result = {
  assignment : (Ir.reg, location) Hashtbl.t;
  spills : int;
  registers_used : int;
}

type interval = { vreg : Ir.reg; start : int; finish : int }

let intervals (m : Ir.meth) =
  let first = Hashtbl.create 16 in
  let last = Hashtbl.create 16 in
  let touch idx r =
    if not (Hashtbl.mem first r) then Hashtbl.replace first r idx;
    Hashtbl.replace last r idx
  in
  Array.iteri
    (fun idx insn ->
      List.iter (touch idx) (Ir.defs insn);
      List.iter (touch idx) (Ir.uses insn))
    m.Ir.code;
  (* A backward branch extends every interval spanning its target:
     conservatively, any vreg whose interval overlaps [target, branch]
     stays live through the loop. *)
  let extend_for_loops () =
    Array.iteri
      (fun idx insn ->
        List.iter
          (fun t ->
            if t <= idx then
              Hashtbl.iter
                (fun r f ->
                  let l = Hashtbl.find last r in
                  if f <= idx && l >= t then Hashtbl.replace last r (max l idx))
                first)
          (Ir.targets insn))
      m.Ir.code
  in
  extend_for_loops ();
  Hashtbl.fold
    (fun r f acc -> { vreg = r; start = f; finish = Hashtbl.find last r } :: acc)
    first []
  |> List.sort (fun a b -> compare (a.start, a.vreg) (b.start, b.vreg))

let allocate (arch : Arch.t) (m : Ir.meth) : result =
  let k = arch.Arch.registers in
  let assignment = Hashtbl.create 16 in
  let active = ref [] in (* (finish, phys, vreg), sorted by finish *)
  let free = ref (List.init k (fun i -> i)) in
  let spills = ref 0 in
  let next_slot = ref 0 in
  let used = Hashtbl.create 8 in
  let expire point =
    let expired, alive =
      List.partition (fun (f, _, _) -> f < point) !active
    in
    List.iter (fun (_, p, _) -> free := p :: !free) expired;
    active := alive
  in
  List.iter
    (fun iv ->
      expire iv.start;
      match !free with
      | p :: rest ->
        free := rest;
        Hashtbl.replace assignment iv.vreg (Phys p);
        Hashtbl.replace used p ();
        active :=
          List.sort compare ((iv.finish, p, iv.vreg) :: !active)
      | [] ->
        (* Spill whichever lives longest: this interval or the last
           active one. *)
        let sorted = List.sort compare !active in
        (match List.rev sorted with
        | (f, p, v) :: rest_rev when f > iv.finish ->
          (* steal the register from the longer-lived interval *)
          Hashtbl.replace assignment v (Spill !next_slot);
          incr next_slot;
          incr spills;
          Hashtbl.replace assignment iv.vreg (Phys p);
          active := List.sort compare ((iv.finish, p, iv.vreg) :: List.rev rest_rev)
        | _ ->
          Hashtbl.replace assignment iv.vreg (Spill !next_slot);
          incr next_slot;
          incr spills))
    (intervals m);
  { assignment; spills = !spills; registers_used = Hashtbl.length used }

(* Every vreg the method touches has a location, and no two phys-
   allocated vregs with overlapping intervals share a register. Used by
   tests as the allocator's correctness oracle. *)
let valid (m : Ir.meth) (r : result) =
  let ivs = intervals m in
  List.for_all (fun iv -> Hashtbl.mem r.assignment iv.vreg) ivs
  && List.for_all
       (fun a ->
         List.for_all
           (fun b ->
             a.vreg >= b.vreg
             || a.finish < b.start
             || b.finish < a.start
             ||
             match (Hashtbl.find r.assignment a.vreg, Hashtbl.find r.assignment b.vreg) with
             | Phys x, Phys y -> x <> y
             | _ -> true)
           ivs)
       ivs
