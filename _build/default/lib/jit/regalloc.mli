(** Linear-scan register allocation over live intervals: the second
    half of the network compiler. Backward branches conservatively
    extend any interval spanning the loop. *)

type location = Phys of int | Spill of int

type result = {
  assignment : (Ir.reg, location) Hashtbl.t;
  spills : int;
  registers_used : int;
}

type interval = { vreg : Ir.reg; start : int; finish : int }

val intervals : Ir.meth -> interval list
val allocate : Arch.t -> Ir.meth -> result

val valid : Ir.meth -> result -> bool
(** Correctness oracle: every touched vreg has a location and no two
    overlapping intervals share a physical register. *)
