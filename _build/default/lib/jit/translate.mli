(** Stack-to-register translation: the first half of the network
    compiler.

    Verified bytecode has a consistent operand-stack depth at every
    program point, so stack slot [d] maps to virtual register
    [max_locals + d] and no SSA construction is needed.

    Scope (DESIGN.md): methods using [jsr]/[ret] or exception handlers
    stay interpreted — the service compiles what it can, as a
    conservative AOT compiler would. *)

exception Unsupported of string

val translate_method : Bytecode.Cp.t -> Bytecode.Classfile.meth -> Ir.meth
(** @raise Unsupported for abstract/native bodies, jsr/ret, handlers. *)
