lib/jvm/bootlib.ml: Buffer Bytecode Char Classreg Hashtbl Heap Int32 Int64 List Printf String Value Vmstate
