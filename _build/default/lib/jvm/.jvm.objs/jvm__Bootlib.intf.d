lib/jvm/bootlib.mli: Bytecode Classreg Vmstate
