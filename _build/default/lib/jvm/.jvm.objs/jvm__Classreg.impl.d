lib/jvm/classreg.ml: Bytecode Hashtbl List Printf String Value
