lib/jvm/classreg.mli: Bytecode Hashtbl Value
