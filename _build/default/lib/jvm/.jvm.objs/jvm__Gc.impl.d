lib/jvm/gc.ml: Array Classreg Hashtbl Heap List Value Vmstate
