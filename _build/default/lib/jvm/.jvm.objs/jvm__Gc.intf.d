lib/jvm/gc.mli: Hashtbl Value Vmstate
