lib/jvm/heap.ml: Array Hashtbl List Value
