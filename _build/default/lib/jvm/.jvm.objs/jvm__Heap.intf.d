lib/jvm/heap.mli: Value
