lib/jvm/interp.ml: Array Bytecode Classreg Fun Hashtbl Heap Int32 Int64 List Printf Value Vmstate
