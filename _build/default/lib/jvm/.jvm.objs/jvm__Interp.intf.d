lib/jvm/interp.mli: Value Vmstate
