lib/jvm/value.ml: Array Bytecode Format Hashtbl Int32 String
