lib/jvm/value.mli: Format Hashtbl
