lib/jvm/vmstate.ml: Buffer Classreg Format Hashtbl Heap Int64 List Value
