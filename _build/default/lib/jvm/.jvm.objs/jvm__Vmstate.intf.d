lib/jvm/vmstate.mli: Buffer Classreg Format Hashtbl Heap Value
