(* The boot class library: the minimal java/lang and java/io surface
   the workloads and the services need, plus the native methods backing
   it. Native operations carry fixed simulated costs (in cost units ~
   microseconds) matching the *baseline* column of the paper's Figure 9
   where the paper reports one; everything else is a small constant.

   Natives that guard a security-relevant operation consult
   [vm.security_hook]. The hook models the monolithic JDK 1.2
   stack-introspection SecurityManager: it is only invoked at the
   points the original system designers anticipated (property access,
   file open, thread priority) — pointedly *not* file read, which is
   the paper's example of a hole that only binary rewriting can
   close. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let run_hook vm op =
  match vm.Vmstate.security_hook with None -> () | Some f -> f op

(* --- Native operation base costs (cost units, ~µs). --- *)

let cost_println = 20L
let cost_get_property = 2L (* Fig. 9 baseline: 0.0020 ms *)
let cost_open_file = 1406L (* Fig. 9 baseline: 1.406 ms *)
let cost_set_priority = 64L (* Fig. 9 baseline: 0.0638 ms *)
let cost_read_file = 14L (* Fig. 9 baseline: 0.0141 ms *)
let cost_string_op = 1L

(* --- Class definitions. --- *)

let object_cls =
  B.class_ "java/lang/Object"
    [
      B.meth "<init>" "()V" [ B.Return ];
      B.native_meth "hashCode" "()I";
      B.native_meth "equals" "(Ljava/lang/Object;)I";
      B.native_meth "toString" "()Ljava/lang/String;";
    ]

let string_cls =
  B.class_ ~flags:[ CF.Public; CF.Final ] "java/lang/String"
    [
      B.native_meth "length" "()I";
      B.native_meth "charAt" "(I)I";
      B.native_meth "concat" "(Ljava/lang/String;)Ljava/lang/String;";
      B.native_meth "equals" "(Ljava/lang/Object;)I";
      B.native_meth "hashCode" "()I";
      B.native_meth "substring" "(II)Ljava/lang/String;";
      B.native_meth ~flags:[ CF.Public; CF.Static; CF.Native ] "valueOf"
        "(I)Ljava/lang/String;";
    ]

let output_stream_cls =
  B.class_ "java/io/OutputStream"
    [
      B.default_init "java/lang/Object";
      B.native_meth "println" "(Ljava/lang/String;)V";
      B.native_meth "println" "(I)V";
      B.native_meth "print" "(Ljava/lang/String;)V";
      B.native_meth "write" "(I)V";
    ]

let system_cls =
  B.class_ "java/lang/System"
    ~fields:
      [ B.field ~flags:[ CF.Public; CF.Static ] "out" "Ljava/io/OutputStream;" ]
    [
      B.native_meth ~flags:[ CF.Public; CF.Static; CF.Native ] "getProperty"
        "(Ljava/lang/String;)Ljava/lang/String;";
      B.native_meth ~flags:[ CF.Public; CF.Static; CF.Native ] "setProperty"
        "(Ljava/lang/String;Ljava/lang/String;)V";
      B.native_meth ~flags:[ CF.Public; CF.Static; CF.Native ]
        "currentTimeMillis" "()I";
    ]

let throwable_cls =
  B.class_ "java/lang/Throwable"
    ~fields:[ B.field "message" "Ljava/lang/String;" ]
    [
      B.meth "<init>" "()V"
        [
          B.Aload 0;
          B.Invokespecial ("java/lang/Object", "<init>", "()V");
          B.Return;
        ];
      B.meth "<init>" "(Ljava/lang/String;)V"
        [
          B.Aload 0;
          B.Invokespecial ("java/lang/Object", "<init>", "()V");
          B.Aload 0;
          B.Aload 1;
          B.Putfield ("java/lang/Throwable", "message", "Ljava/lang/String;");
          B.Return;
        ];
      B.meth "getMessage" "()Ljava/lang/String;"
        [
          B.Aload 0;
          B.Getfield ("java/lang/Throwable", "message", "Ljava/lang/String;");
          B.Areturn;
        ];
    ]

(* A throwable subclass whose constructors chain to the parent. *)
let throwable_sub name ~super =
  B.class_ name ~super
    [
      B.meth "<init>" "()V"
        [ B.Aload 0; B.Invokespecial (super, "<init>", "()V"); B.Return ];
      B.meth "<init>" "(Ljava/lang/String;)V"
        [
          B.Aload 0;
          B.Aload 1;
          B.Invokespecial (super, "<init>", "(Ljava/lang/String;)V");
          B.Return;
        ];
    ]

let thread_cls =
  B.class_ "java/lang/Thread"
    ~fields:
      [ B.field ~flags:[ CF.Public; CF.Static ] "current" "Ljava/lang/Thread;" ]
    [
      B.default_init "java/lang/Object";
      B.native_meth ~flags:[ CF.Public; CF.Static; CF.Native ] "currentThread"
        "()Ljava/lang/Thread;";
      B.native_meth "setPriority" "(I)V";
      B.native_meth "getPriority" "()I";
    ]

let file_cls =
  B.class_ "java/io/File"
    ~fields:[ B.field "path" "Ljava/lang/String;" ]
    [
      B.meth "<init>" "(Ljava/lang/String;)V"
        [
          B.Aload 0;
          B.Invokespecial ("java/lang/Object", "<init>", "()V");
          B.Aload 0;
          B.Aload 1;
          B.Putfield ("java/io/File", "path", "Ljava/lang/String;");
          B.Return;
        ];
      B.native_meth "exists" "()I";
      B.meth "getPath" "()Ljava/lang/String;"
        [
          B.Aload 0;
          B.Getfield ("java/io/File", "path", "Ljava/lang/String;");
          B.Areturn;
        ];
    ]

let file_input_stream_cls =
  B.class_ "java/io/FileInputStream"
    ~fields:
      [
        B.field "path" "Ljava/lang/String;";
        B.field "pos" "I";
      ]
    [
      B.meth "<init>" "(Ljava/lang/String;)V"
        [
          B.Aload 0;
          B.Invokespecial ("java/lang/Object", "<init>", "()V");
          B.Aload 0;
          B.Aload 1;
          B.Putfield ("java/io/FileInputStream", "path", "Ljava/lang/String;");
          B.Aload 0;
          B.Aload 1;
          B.Invokevirtual
            ("java/io/FileInputStream", "open", "(Ljava/lang/String;)V");
          B.Return;
        ];
      B.native_meth "open" "(Ljava/lang/String;)V";
      B.native_meth "read" "()I";
      B.meth "close" "()V" [ B.Return ];
    ]

(* A pure-bytecode linear congruential generator: lives in the boot
   library so workloads can consume pseudo-random numbers while
   exercising the interpreter rather than a native. *)
let random_cls =
  B.class_ "java/util/Random"
    ~fields:[ B.field "seed" "I" ]
    [
      B.meth "<init>" "(I)V"
        [
          B.Aload 0;
          B.Invokespecial ("java/lang/Object", "<init>", "()V");
          B.Aload 0;
          B.Iload 1;
          B.Putfield ("java/util/Random", "seed", "I");
          B.Return;
        ];
      (* next(bound): seed <- seed*1103515245 + 12345; return
         (seed >>> 16) mod bound, non-negative. *)
      B.meth "next" "(I)I"
        [
          B.Aload 0;
          B.Aload 0;
          B.Getfield ("java/util/Random", "seed", "I");
          B.Const 1103515245;
          B.Mul;
          B.Const 12345;
          B.Add;
          B.Putfield ("java/util/Random", "seed", "I");
          B.Aload 0;
          B.Getfield ("java/util/Random", "seed", "I");
          B.Const 16;
          B.Shr;
          B.Iload 1;
          B.Rem;
          B.Dup;
          B.If_z (Bytecode.Instr.Ge, "done");
          B.Iload 1;
          B.Add;
          B.Label "done";
          B.Ireturn;
        ];
    ]

let math_cls =
  B.class_ "java/lang/Math"
    [
      B.native_meth ~flags:[ CF.Public; CF.Static; CF.Native ] "min" "(II)I";
      B.native_meth ~flags:[ CF.Public; CF.Static; CF.Native ] "max" "(II)I";
      B.native_meth ~flags:[ CF.Public; CF.Static; CF.Native ] "abs" "(I)I";
    ]

let integer_cls =
  B.class_ "java/lang/Integer"
    [
      B.native_meth ~flags:[ CF.Public; CF.Static; CF.Native ] "parseInt"
        "(Ljava/lang/String;)I";
      (* toString delegates to the String.valueOf native *)
      B.meth ~flags:[ CF.Public; CF.Static ] "toString" "(I)Ljava/lang/String;"
        [
          B.Iload 0;
          B.Invokestatic ("java/lang/String", "valueOf", "(I)Ljava/lang/String;");
          B.Areturn;
        ];
    ]

(* A pure-bytecode StringBuilder over the String natives: enough for
   the usual append-chain idiom. *)
let string_builder_cls =
  B.class_ "java/lang/StringBuilder"
    ~fields:[ B.field "buf" "Ljava/lang/String;" ]
    [
      B.meth "<init>" "()V"
        [
          B.Aload 0;
          B.Invokespecial ("java/lang/Object", "<init>", "()V");
          B.Aload 0;
          B.Push_str "";
          B.Putfield ("java/lang/StringBuilder", "buf", "Ljava/lang/String;");
          B.Return;
        ];
      B.meth "append" "(Ljava/lang/String;)Ljava/lang/StringBuilder;"
        [
          B.Aload 0;
          B.Aload 0;
          B.Getfield ("java/lang/StringBuilder", "buf", "Ljava/lang/String;");
          B.Aload 1;
          B.Invokevirtual
            ("java/lang/String", "concat", "(Ljava/lang/String;)Ljava/lang/String;");
          B.Putfield ("java/lang/StringBuilder", "buf", "Ljava/lang/String;");
          B.Aload 0;
          B.Areturn;
        ];
      B.meth "appendInt" "(I)Ljava/lang/StringBuilder;"
        [
          B.Aload 0;
          B.Iload 1;
          B.Invokestatic ("java/lang/String", "valueOf", "(I)Ljava/lang/String;");
          B.Invokevirtual
            ( "java/lang/StringBuilder",
              "append",
              "(Ljava/lang/String;)Ljava/lang/StringBuilder;" );
          B.Areturn;
        ];
      B.meth "toString" "()Ljava/lang/String;"
        [
          B.Aload 0;
          B.Getfield ("java/lang/StringBuilder", "buf", "Ljava/lang/String;");
          B.Areturn;
        ];
      B.meth "length" "()I"
        [
          B.Aload 0;
          B.Getfield ("java/lang/StringBuilder", "buf", "Ljava/lang/String;");
          B.Invokevirtual ("java/lang/String", "length", "()I");
          B.Ireturn;
        ];
    ]

let throwable_tree =
  [
    ("java/lang/Exception", "java/lang/Throwable");
    ("java/lang/RuntimeException", "java/lang/Exception");
    ("java/lang/Error", "java/lang/Throwable");
    ("java/lang/LinkageError", "java/lang/Error");
    ("java/lang/VerifyError", "java/lang/LinkageError");
    ("java/lang/NoClassDefFoundError", "java/lang/LinkageError");
    ("java/lang/NoSuchMethodError", "java/lang/LinkageError");
    ("java/lang/NoSuchFieldError", "java/lang/LinkageError");
    ("java/lang/StackOverflowError", "java/lang/Error");
    ("java/lang/ClassCastException", "java/lang/RuntimeException");
    ("java/lang/NullPointerException", "java/lang/RuntimeException");
    ("java/lang/ArithmeticException", "java/lang/RuntimeException");
    ("java/lang/ArrayIndexOutOfBoundsException", "java/lang/RuntimeException");
    ("java/lang/NegativeArraySizeException", "java/lang/RuntimeException");
    ("java/lang/SecurityException", "java/lang/RuntimeException");
    ("java/io/IOException", "java/lang/Exception");
    ("java/lang/NumberFormatException", "java/lang/RuntimeException");
  ]

let boot_classes () =
  [
    object_cls;
    string_cls;
    output_stream_cls;
    system_cls;
    throwable_cls;
    thread_cls;
    file_cls;
    file_input_stream_cls;
    random_cls;
    math_cls;
    integer_cls;
    string_builder_cls;
  ]
  @ List.map (fun (n, s) -> throwable_sub n ~super:s) throwable_tree

let boot_class_names () =
  List.map (fun c -> c.CF.name) (boot_classes ())

(* --- Native implementations. --- *)

let arg n args =
  match List.nth_opt args n with
  | Some v -> v
  | None -> Vmstate.fault "native: missing argument %d" n

let str_arg vm n args =
  match arg n args with
  | Value.Str s -> s
  | Value.Null -> Vmstate.throw vm ~cls:Vmstate.c_npe ~message:"null string"
  | v -> Vmstate.fault "native: expected string, got %s" (Value.to_string v)

let int_arg n args =
  match arg n args with
  | Value.Int v -> Int32.to_int v
  | v -> Vmstate.fault "native: expected int, got %s" (Value.to_string v)

let register_natives vm =
  let reg = Vmstate.register_native vm in
  (* java/lang/Object *)
  reg ~cls:"java/lang/Object" ~name:"hashCode" ~desc:"()I" (fun _ args ->
      match arg 0 args with
      | Value.Obj o -> Some (Value.Int (Int32.of_int o.Value.oid))
      | Value.Str s -> Some (Value.Int (Int32.of_int (Hashtbl.hash s)))
      | v -> Some (Value.Int (Int32.of_int (Hashtbl.hash (Value.to_string v)))));
  reg ~cls:"java/lang/Object" ~name:"equals" ~desc:"(Ljava/lang/Object;)I"
    (fun _ args ->
      let same = Value.ref_equal (arg 0 args) (arg 1 args) in
      Some (Value.Int (if same then 1l else 0l)));
  reg ~cls:"java/lang/Object" ~name:"toString" ~desc:"()Ljava/lang/String;"
    (fun _ args -> Some (Value.Str (Value.to_string (arg 0 args))));
  (* java/lang/String *)
  reg ~cls:"java/lang/String" ~name:"length" ~desc:"()I" (fun vm args ->
      Vmstate.add_cost vm cost_string_op;
      Some (Value.Int (Int32.of_int (String.length (str_arg vm 0 args)))));
  reg ~cls:"java/lang/String" ~name:"charAt" ~desc:"(I)I" (fun vm args ->
      Vmstate.add_cost vm cost_string_op;
      let s = str_arg vm 0 args in
      let i = int_arg 1 args in
      if i < 0 || i >= String.length s then
        Vmstate.throw vm ~cls:Vmstate.c_aioobe ~message:(string_of_int i)
      else Some (Value.Int (Int32.of_int (Char.code s.[i]))));
  reg ~cls:"java/lang/String" ~name:"concat"
    ~desc:"(Ljava/lang/String;)Ljava/lang/String;" (fun vm args ->
      Vmstate.add_cost vm cost_string_op;
      Some (Value.Str (str_arg vm 0 args ^ str_arg vm 1 args)));
  reg ~cls:"java/lang/String" ~name:"equals" ~desc:"(Ljava/lang/Object;)I"
    (fun vm args ->
      Vmstate.add_cost vm cost_string_op;
      let s = str_arg vm 0 args in
      match arg 1 args with
      | Value.Str t -> Some (Value.Int (if String.equal s t then 1l else 0l))
      | _ -> Some (Value.Int 0l));
  reg ~cls:"java/lang/String" ~name:"hashCode" ~desc:"()I" (fun vm args ->
      Vmstate.add_cost vm cost_string_op;
      Some (Value.Int (Int32.of_int (Hashtbl.hash (str_arg vm 0 args)))));
  reg ~cls:"java/lang/String" ~name:"substring" ~desc:"(II)Ljava/lang/String;"
    (fun vm args ->
      Vmstate.add_cost vm cost_string_op;
      let s = str_arg vm 0 args in
      let i = int_arg 1 args and j = int_arg 2 args in
      if i < 0 || j > String.length s || i > j then
        Vmstate.throw vm ~cls:Vmstate.c_aioobe
          ~message:(Printf.sprintf "%d..%d" i j)
      else Some (Value.Str (String.sub s i (j - i))));
  reg ~cls:"java/lang/String" ~name:"valueOf" ~desc:"(I)Ljava/lang/String;"
    (fun vm args ->
      Vmstate.add_cost vm cost_string_op;
      Some (Value.Str (string_of_int (int_arg 0 args))));
  (* java/io/OutputStream *)
  reg ~cls:"java/io/OutputStream" ~name:"println" ~desc:"(Ljava/lang/String;)V"
    (fun vm args ->
      Vmstate.add_cost vm cost_println;
      Buffer.add_string vm.Vmstate.out (str_arg vm 1 args);
      Buffer.add_char vm.Vmstate.out '\n';
      None);
  reg ~cls:"java/io/OutputStream" ~name:"println" ~desc:"(I)V" (fun vm args ->
      Vmstate.add_cost vm cost_println;
      Buffer.add_string vm.Vmstate.out (string_of_int (int_arg 1 args));
      Buffer.add_char vm.Vmstate.out '\n';
      None);
  reg ~cls:"java/io/OutputStream" ~name:"print" ~desc:"(Ljava/lang/String;)V"
    (fun vm args ->
      Vmstate.add_cost vm cost_println;
      Buffer.add_string vm.Vmstate.out (str_arg vm 1 args);
      None);
  reg ~cls:"java/io/OutputStream" ~name:"write" ~desc:"(I)V" (fun vm args ->
      Vmstate.add_cost vm cost_println;
      Buffer.add_char vm.Vmstate.out (Char.chr (int_arg 1 args land 0xff));
      None);
  (* java/lang/System *)
  reg ~cls:"java/lang/System" ~name:"getProperty"
    ~desc:"(Ljava/lang/String;)Ljava/lang/String;" (fun vm args ->
      Vmstate.add_cost vm cost_get_property;
      run_hook vm "property.get";
      let key = str_arg vm 0 args in
      match Hashtbl.find_opt vm.Vmstate.props key with
      | Some v -> Some (Value.Str v)
      | None -> Some Value.Null);
  reg ~cls:"java/lang/System" ~name:"setProperty"
    ~desc:"(Ljava/lang/String;Ljava/lang/String;)V" (fun vm args ->
      Vmstate.add_cost vm cost_get_property;
      run_hook vm "property.set";
      Hashtbl.replace vm.Vmstate.props (str_arg vm 0 args) (str_arg vm 1 args);
      None);
  reg ~cls:"java/lang/System" ~name:"currentTimeMillis" ~desc:"()I"
    (fun vm _ ->
      Some
        (Value.Int (Int64.to_int32 (Int64.div (Vmstate.total_cost vm) 1000L))));
  (* java/lang/Thread *)
  reg ~cls:"java/lang/Thread" ~name:"currentThread"
    ~desc:"()Ljava/lang/Thread;" (fun vm _ ->
      let l = Classreg.lookup vm.Vmstate.reg "java/lang/Thread" in
      match Hashtbl.find_opt l.Classreg.statics "current" with
      | Some (Value.Obj _ as t) -> Some t
      | Some _ | None ->
        let t =
          Value.Obj
            (Heap.alloc_obj vm.Vmstate.heap ~cls:"java/lang/Thread"
               ~field_descs:[])
        in
        Hashtbl.replace l.Classreg.statics "current" t;
        Some t);
  reg ~cls:"java/lang/Thread" ~name:"setPriority" ~desc:"(I)V" (fun vm args ->
      Vmstate.add_cost vm cost_set_priority;
      run_hook vm "thread.setPriority";
      vm.Vmstate.thread_priority <- int_arg 1 args;
      None);
  reg ~cls:"java/lang/Thread" ~name:"getPriority" ~desc:"()I" (fun vm _ ->
      Some (Value.Int (Int32.of_int vm.Vmstate.thread_priority)));
  (* java/io/File *)
  reg ~cls:"java/io/File" ~name:"exists" ~desc:"()I" (fun vm args ->
      match arg 0 args with
      | Value.Obj o -> (
        match Hashtbl.find_opt o.Value.fields "path" with
        | Some (Value.Str p) ->
          Some
            (Value.Int (if Hashtbl.mem vm.Vmstate.files p then 1l else 0l))
        | Some _ | None -> Some (Value.Int 0l))
      | v -> Vmstate.fault "File.exists on %s" (Value.to_string v));
  (* java/io/FileInputStream *)
  reg ~cls:"java/io/FileInputStream" ~name:"open" ~desc:"(Ljava/lang/String;)V"
    (fun vm args ->
      Vmstate.add_cost vm cost_open_file;
      run_hook vm "file.open";
      let path = str_arg vm 1 args in
      if not (Hashtbl.mem vm.Vmstate.files path) then
        Vmstate.throw vm ~cls:Vmstate.c_io ~message:("no such file: " ^ path)
      else None);
  reg ~cls:"java/io/FileInputStream" ~name:"read" ~desc:"()I" (fun vm args ->
      Vmstate.add_cost vm cost_read_file;
      (* Note: no security hook here. The JDK never anticipated a check
         on read — the paper's motivating hole. *)
      match arg 0 args with
      | Value.Obj o -> (
        let path =
          match Hashtbl.find_opt o.Value.fields "path" with
          | Some (Value.Str p) -> p
          | Some _ | None -> ""
        in
        let pos =
          match Hashtbl.find_opt o.Value.fields "pos" with
          | Some (Value.Int p) -> Int32.to_int p
          | Some _ | None -> 0
        in
        match Hashtbl.find_opt vm.Vmstate.files path with
        | Some content when pos < String.length content ->
          Hashtbl.replace o.Value.fields "pos"
            (Value.Int (Int32.of_int (pos + 1)));
          Some (Value.Int (Int32.of_int (Char.code content.[pos])))
        | Some _ -> Some (Value.Int (-1l))
        | None ->
          Vmstate.throw vm ~cls:Vmstate.c_io ~message:("unopened: " ^ path))
      | v -> Vmstate.fault "read on %s" (Value.to_string v))

let register_extra_natives vm =
  let reg = Vmstate.register_native vm in
  reg ~cls:"java/lang/Math" ~name:"min" ~desc:"(II)I" (fun _ args ->
      let a = int_arg 0 args and b = int_arg 1 args in
      Some (Value.Int (Int32.of_int (min a b))));
  reg ~cls:"java/lang/Math" ~name:"max" ~desc:"(II)I" (fun _ args ->
      let a = int_arg 0 args and b = int_arg 1 args in
      Some (Value.Int (Int32.of_int (max a b))));
  reg ~cls:"java/lang/Math" ~name:"abs" ~desc:"(I)I" (fun _ args ->
      Some (Value.Int (Int32.abs (Int32.of_int (int_arg 0 args)))));
  reg ~cls:"java/lang/Integer" ~name:"parseInt" ~desc:"(Ljava/lang/String;)I"
    (fun vm args ->
      let s = str_arg vm 0 args in
      match Int32.of_string_opt (String.trim s) with
      | Some n -> Some (Value.Int n)
      | None ->
        Vmstate.throw vm ~cls:"java/lang/NumberFormatException" ~message:s)

(* --- Installation. --- *)

let install vm =
  List.iter
    (fun cf ->
      Classreg.register vm.Vmstate.reg cf;
      match Classreg.find_loaded vm.Vmstate.reg cf.CF.name with
      | Some l -> l.Classreg.init_state <- Classreg.Initialized
      | None -> assert false)
    (boot_classes ());
  register_natives vm;
  register_extra_natives vm;
  (* Wire up System.out. *)
  let sys = Classreg.lookup vm.Vmstate.reg "java/lang/System" in
  let out =
    Value.Obj
      (Heap.alloc_obj vm.Vmstate.heap ~cls:"java/io/OutputStream"
         ~field_descs:[])
  in
  Hashtbl.replace sys.Classreg.statics "out" out

let fresh_vm ?budget ?provider () =
  let vm = Vmstate.create ?budget ?provider () in
  install vm;
  vm
