(** The boot class library.

    The minimal [java/lang] and [java/io] surface the workloads and
    services need, plus the native methods backing it. Native
    operations carry fixed simulated costs matching the baseline
    column of the paper's Figure 9 where one is reported.

    Security-relevant natives (property access, file open, thread
    priority) consult [vm.security_hook], modelling the monolithic JDK
    SecurityManager's anticipated check points. File {e read} has no
    hook — the paper's example of a hole only binary rewriting can
    close. *)

val boot_classes : unit -> Bytecode.Classfile.t list
val boot_class_names : unit -> string list

val install : Vmstate.t -> unit
(** Register all boot classes and natives and wire up [System.out]. *)

val fresh_vm :
  ?budget:int64 -> ?provider:Classreg.provider -> unit -> Vmstate.t
(** A new VM with the boot library installed. *)

(** Baseline native costs (cost units), exposed for the cost model and
    the Figure 9 harness. *)

val cost_get_property : int64
val cost_open_file : int64
val cost_set_priority : int64
val cost_read_file : int64
