(* The client garbage collector.

   The paper's own DVM client "includes an interpreter, runtime, and
   garbage collector"; this is that collector in the reproduction's
   accounting model: a stop-the-world mark-sweep that traces
   reachability from the VM's roots (class statics, plus any explicit
   roots the embedder holds) over object fields and reference arrays,
   and retires everything unreached. Memory reclamation is expressed in
   the heap's byte accounting — the substrate beneath is the host
   language's own collector — but the reachability computation, the
   statistics, and the sweep set are real and tested. *)

type stats = {
  traced_roots : int;
  live_objects : int;
  live_arrays : int;
  collected_objects : int;
  collected_arrays : int;
  collected_bytes : int;
}

(* Identity of a heap cell, as the collector tracks it. *)
type cell = Cell_obj of Value.obj | Cell_iarr of Value.int_array | Cell_rarr of Value.ref_array

let cell_id = function
  | Cell_obj o -> o.Value.oid
  | Cell_iarr a -> a.Value.aid
  | Cell_rarr a -> a.Value.rid

let cell_of_value = function
  | Value.Obj o -> Some (Cell_obj o)
  | Value.Arr_int a -> Some (Cell_iarr a)
  | Value.Arr_ref a -> Some (Cell_rarr a)
  | Value.Int _ | Value.Null | Value.Str _ | Value.Retaddr _ -> None

let word = 8

let cell_bytes = function
  | Cell_obj o -> (2 * word) + (word * Hashtbl.length o.Value.fields)
  | Cell_iarr a -> (2 * word) + (4 * Array.length a.Value.ints)
  | Cell_rarr a -> (2 * word) + (word * Array.length a.Value.refs)

(* Trace the full reachable set from the given roots. *)
let reachable roots =
  let marked : (int, cell) Hashtbl.t = Hashtbl.create 256 in
  let rec mark v =
    match cell_of_value v with
    | None -> ()
    | Some cell ->
      let id = cell_id cell in
      if not (Hashtbl.mem marked id) then begin
        Hashtbl.replace marked id cell;
        match cell with
        | Cell_obj o -> Hashtbl.iter (fun _ f -> mark f) o.Value.fields
        | Cell_rarr a -> Array.iter mark a.Value.refs
        | Cell_iarr _ -> ()
      end
  in
  List.iter mark roots;
  marked

(* All roots a quiescent VM holds: every loaded class's statics. *)
let vm_roots (vm : Vmstate.t) =
  Hashtbl.fold
    (fun _ (l : Classreg.loaded) acc ->
      Hashtbl.fold (fun _ v acc -> v :: acc) l.Classreg.statics acc)
    vm.Vmstate.reg.Classreg.classes []

(* Collect at a quiescent point (no frames live): everything not
   reachable from statics and [extra_roots] is garbage. The heap's
   byte accounting is rolled back by the collected volume. *)
let collect ?(extra_roots = []) (vm : Vmstate.t) : stats =
  let roots = extra_roots @ vm_roots vm in
  let marked = reachable roots in
  let live_objects = ref 0 and live_arrays = ref 0 in
  Hashtbl.iter
    (fun _ cell ->
      match cell with
      | Cell_obj _ -> incr live_objects
      | Cell_iarr _ | Cell_rarr _ -> incr live_arrays)
    marked;
  (* The heap's allocation counters tell us how much was ever
     allocated; the delta against the marked set is this cycle's
     garbage. *)
  let heap = vm.Vmstate.heap in
  let live_bytes =
    Hashtbl.fold (fun _ c acc -> acc + cell_bytes c) marked 0
  in
  let collected_objects = max 0 (heap.Heap.objects_allocated - !live_objects) in
  let collected_arrays = max 0 (heap.Heap.arrays_allocated - !live_arrays) in
  let collected_bytes = max 0 (heap.Heap.bytes_allocated - live_bytes) in
  (* Roll the accounting forward: the surviving set becomes the new
     baseline, as after a real sweep. *)
  heap.Heap.objects_allocated <- !live_objects;
  heap.Heap.arrays_allocated <- !live_arrays;
  heap.Heap.bytes_allocated <- live_bytes;
  {
    traced_roots = List.length roots;
    live_objects = !live_objects;
    live_arrays = !live_arrays;
    collected_objects;
    collected_arrays;
    collected_bytes;
  }
