(** The client garbage collector.

    A stop-the-world mark-sweep over the VM's reachability graph
    (class statics plus explicit embedder roots, through object fields
    and reference arrays), run at quiescent points. Reclamation is
    expressed in the heap's byte accounting — the substrate beneath is
    the host collector — but the reachability computation, statistics
    and sweep set are real. *)

type stats = {
  traced_roots : int;
  live_objects : int;
  live_arrays : int;
  collected_objects : int;
  collected_arrays : int;
  collected_bytes : int;
}

type cell =
  | Cell_obj of Value.obj
  | Cell_iarr of Value.int_array
  | Cell_rarr of Value.ref_array

val reachable : Value.t list -> (int, cell) Hashtbl.t
(** The transitive reachable set from the given roots, keyed by heap
    cell id. *)

val vm_roots : Vmstate.t -> Value.t list
(** Every loaded class's static fields. *)

val collect : ?extra_roots:Value.t list -> Vmstate.t -> stats
