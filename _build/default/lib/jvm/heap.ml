(* Allocation and heap accounting. The heap does not collect garbage —
   workloads are bounded — but it does track allocation volume because
   the evaluation's memory model (e.g. the proxy's 64 MB ceiling)
   depends on it. *)

type t = {
  mutable next_id : int;
  mutable objects_allocated : int;
  mutable arrays_allocated : int;
  mutable bytes_allocated : int;
}

let create () =
  {
    next_id = 1;
    objects_allocated = 0;
    arrays_allocated = 0;
    bytes_allocated = 0;
  }

let fresh_id h =
  let id = h.next_id in
  h.next_id <- id + 1;
  id

(* Rough per-object size model: header + one word per field slot. *)
let word = 8

let alloc_obj h ~cls ~field_descs =
  let fields = Hashtbl.create (max 4 (List.length field_descs)) in
  List.iter
    (fun (name, desc) ->
      Hashtbl.replace fields name (Value.default_of_descriptor desc))
    field_descs;
  h.objects_allocated <- h.objects_allocated + 1;
  h.bytes_allocated <-
    h.bytes_allocated + (2 * word) + (word * List.length field_descs);
  { Value.oid = fresh_id h; cls; fields }

let alloc_int_array h len =
  h.arrays_allocated <- h.arrays_allocated + 1;
  h.bytes_allocated <- h.bytes_allocated + (2 * word) + (4 * len);
  { Value.aid = fresh_id h; ints = Array.make len 0l }

let alloc_ref_array h ~elem len =
  h.arrays_allocated <- h.arrays_allocated + 1;
  h.bytes_allocated <- h.bytes_allocated + (2 * word) + (word * len);
  { Value.rid = fresh_id h; relem = elem; refs = Array.make len Value.Null }
