(** Allocation and heap accounting.

    No garbage collection — workloads are bounded — but allocation
    volume is tracked because the evaluation's memory model depends on
    it. *)

type t = {
  mutable next_id : int;
  mutable objects_allocated : int;
  mutable arrays_allocated : int;
  mutable bytes_allocated : int;
}

val create : unit -> t

val alloc_obj :
  t -> cls:string -> field_descs:(string * string) list -> Value.obj
(** Allocate an object with all fields set to their descriptor
    defaults. *)

val alloc_int_array : t -> int -> Value.int_array
val alloc_ref_array : t -> elem:string -> int -> Value.ref_array
