(** The bytecode interpreter.

    Deliberately trusting: operand and local slots are checked at use
    with {!Vmstate.Runtime_fault}, which is exactly the class of crash
    the verifier exists to rule out. Verified code never faults;
    unverified code may. *)

val ensure_initialized : Vmstate.t -> string -> unit
(** Load, link and run [<clinit>] of a class (and its superclasses) on
    first use. *)

val invoke :
  Vmstate.t ->
  cls:string ->
  name:string ->
  desc:string ->
  Value.t list ->
  Value.t option
(** Resolve and invoke a method. For instance methods the receiver is
    the first element of the argument list.
    @raise Vmstate.Throw when a VM exception escapes the call. *)

val run_main : Vmstate.t -> string -> (unit, Value.t) result
(** Initialize a class and run its [main()V], converting an escaping
    VM exception into [Error]. *)

val describe_throwable : Value.t -> string
