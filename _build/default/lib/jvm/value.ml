(* Runtime values. Strings carry their payload natively (the boot
   library's java/lang/String is otherwise opaque), and return
   addresses exist only transiently for jsr/ret. *)

type t =
  | Int of int32
  | Null
  | Str of string
  | Obj of obj
  | Arr_int of int_array
  | Arr_ref of ref_array
  | Retaddr of int

and obj = {
  oid : int;
  cls : string;
  fields : (string, t) Hashtbl.t;
}

and int_array = { aid : int; ints : int32 array }
and ref_array = { rid : int; relem : string; refs : t array }

let string_class = "java/lang/String"

(* The dynamic class name of a value, as used by instanceof. *)
let class_of = function
  | Int _ -> "I"
  | Null -> "<null>"
  | Str _ -> string_class
  | Obj o -> o.cls
  | Arr_int _ -> "[I"
  | Arr_ref a -> "[L" ^ a.relem ^ ";"
  | Retaddr _ -> "<retaddr>"

let is_reference = function
  | Null | Str _ | Obj _ | Arr_int _ | Arr_ref _ -> true
  | Int _ | Retaddr _ -> false

let default_of_descriptor desc =
  match Bytecode.Descriptor.ty_of_string desc with
  | Bytecode.Descriptor.Int -> Int 0l
  | Bytecode.Descriptor.Obj _ | Bytecode.Descriptor.Arr _ -> Null

let truthy = function Int n -> not (Int32.equal n 0l) | _ -> false

let rec pp ppf = function
  | Int n -> Format.fprintf ppf "%ld" n
  | Null -> Format.pp_print_string ppf "null"
  | Str s -> Format.fprintf ppf "%S" s
  | Obj o -> Format.fprintf ppf "%s@%d" o.cls o.oid
  | Arr_int a -> Format.fprintf ppf "int[%d]@%d" (Array.length a.ints) a.aid
  | Arr_ref a ->
    Format.fprintf ppf "%s[%d]@%d" a.relem (Array.length a.refs) a.rid
  | Retaddr pc -> Format.fprintf ppf "retaddr@%d" pc

and to_string v = Format.asprintf "%a" pp v

(* Reference equality as if_acmp sees it. *)
let ref_equal a b =
  match (a, b) with
  | Null, Null -> true
  | Str x, Str y -> x == y || String.equal x y
  | Obj x, Obj y -> x.oid = y.oid
  | Arr_int x, Arr_int y -> x.aid = y.aid
  | Arr_ref x, Arr_ref y -> x.rid = y.rid
  | _, _ -> false
