(** Runtime values.

    Strings carry their payload natively; return addresses exist only
    transiently for [jsr]/[ret]. *)

type t =
  | Int of int32
  | Null
  | Str of string
  | Obj of obj
  | Arr_int of int_array
  | Arr_ref of ref_array
  | Retaddr of int

and obj = { oid : int; cls : string; fields : (string, t) Hashtbl.t }
and int_array = { aid : int; ints : int32 array }
and ref_array = { rid : int; relem : string; refs : t array }

val string_class : string

val class_of : t -> string
(** Dynamic class name as [instanceof] sees it; arrays are ["\[I"] and
    ["\[Lelem;"]. *)

val is_reference : t -> bool
val default_of_descriptor : string -> t
val truthy : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val ref_equal : t -> t -> bool
(** Reference equality as [if_acmp] sees it (strings compare by
    content, standing in for interning). *)
