lib/monitor/audit.ml: Bytecode Dsig Format Int64 List Printf String
