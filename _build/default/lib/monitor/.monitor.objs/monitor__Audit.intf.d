lib/monitor/audit.mli: Format
