lib/monitor/console.ml: Audit Format Hashtbl List Printf String
