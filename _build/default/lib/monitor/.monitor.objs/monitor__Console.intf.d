lib/monitor/console.mli: Audit Format
