lib/monitor/instrument.ml: Array Bytecode List Printf Profiler Rewrite
