lib/monitor/instrument.mli: Bytecode Rewrite
