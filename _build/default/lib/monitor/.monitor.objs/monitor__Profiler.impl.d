lib/monitor/profiler.ml: Audit Bytecode Console Hashtbl Jvm List Option String
