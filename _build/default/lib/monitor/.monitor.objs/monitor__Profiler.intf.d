lib/monitor/profiler.mli: Bytecode Console Jvm
