(** The remote administration console (§3.3).

    Clients perform a handshake establishing credentials and receive a
    session identifier; the console tracks hardware configurations,
    users, VM instances and code versions, stores the audit trail, and
    is the single point from which rogue applications are pruned. *)

type client = {
  session : int;
  user : string;
  hardware : string;
  native_format : string;  (** target ISA, consumed by the compilation service *)
  vm_version : string;
  mutable apps_started : string list;
  mutable last_seen : int64;
}

type t

val create : unit -> t
val audit : t -> Audit.t

val handshake :
  t ->
  user:string ->
  hardware:string ->
  native_format:string ->
  vm_version:string ->
  time:int64 ->
  client

val record_app_start : t -> client -> app:string -> time:int64 -> unit
val record_event : t -> client -> kind:string -> detail:string -> time:int64 -> unit

val ban_app : t -> app:string -> reason:string -> time:int64 -> unit
val is_banned : t -> string -> string option

val clients : t -> client list
val find_client : t -> int -> client option

val native_formats : t -> string list
(** Distinct client ISAs — what the network compiler pre-translates
    for. *)

val pp_report : Format.formatter -> t -> unit
(** A fleet status report: clients, sessions, audit health, bans. *)
