(** The static component of the monitoring services (§3.3).

    Transforms applications to invoke the auditing/profiling runtime at
    entry to and exit from methods and constructors, and (for the
    tracing service) at synchronization operations. *)

val method_label : string -> Bytecode.Classfile.meth -> string

type counters = {
  mutable probes_inserted : int;
  mutable methods_instrumented : int;
}

val fresh_counters : unit -> counters

val instrument_class :
  ?counters:counters ->
  runtime_class:string ->
  ?sync_trace:bool ->
  Bytecode.Classfile.t ->
  Bytecode.Classfile.t

val block_leaders : Bytecode.Classfile.code -> int list
(** Basic-block leaders: entry, branch targets, fall-throughs after
    branches/terminators, handler targets. *)

val trace_blocks :
  ?counters:counters -> Bytecode.Classfile.t -> Bytecode.Classfile.t
(** The instruction-level tracing service of §3.3: counts basic-block
    executions via [dvm/Tracer.block] probes. *)

val audit_filter : ?counters:counters -> unit -> Rewrite.Filter.t
val profile_filter :
  ?counters:counters -> ?sync_trace:bool -> unit -> Rewrite.Filter.t
val trace_filter : ?counters:counters -> unit -> Rewrite.Filter.t
