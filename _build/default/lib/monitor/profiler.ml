(* The dynamic side of the monitoring services (§3.3): natives backing
   dvm/Auditor (audit events forwarded to the console), dvm/Profiler
   (dynamic call graph à la gprof, invocation counts, first-use order —
   the input to the §5 repartitioning optimizer) and dvm/Tracer
   (synchronization tracing). *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let auditor_class = "dvm/Auditor"
let profiler_class = "dvm/Profiler"
let tracer_class = "dvm/Tracer"
let desc_s = "(Ljava/lang/String;)V"

let runtime_classes () =
  let st = [ CF.Public; CF.Static; CF.Native ] in
  [
    B.class_ auditor_class
      [
        B.native_meth ~flags:st "enter" desc_s;
        B.native_meth ~flags:st "exit" desc_s;
        B.native_meth ~flags:st "event" desc_s;
      ];
    B.class_ profiler_class
      [
        B.native_meth ~flags:st "enter" desc_s;
        B.native_meth ~flags:st "exit" desc_s;
      ];
    B.class_ tracer_class
      [
        B.native_meth ~flags:st "sync" desc_s;
        B.native_meth ~flags:st "block" desc_s;
      ];
  ]

(* Per-event client cost (cost units ~ µs). *)
let cost_audit_event = 3L
let cost_profile_event = 1L

type t = {
  mutable stack : string list; (* current call path *)
  edges : (string * string, int) Hashtbl.t; (* caller -> callee counts *)
  counts : (string, int) Hashtbl.t; (* invocation counts *)
  first_use : (string, int64) Hashtbl.t; (* method -> first-use time *)
  mutable first_use_rev : string list; (* reverse first-use order *)
  sync_events : (string, int) Hashtbl.t; (* method -> sync ops *)
  block_counts : (string, int) Hashtbl.t; (* "method@block" -> executions *)
  mutable events : int;
}

let create () =
  {
    stack = [];
    edges = Hashtbl.create 64;
    counts = Hashtbl.create 64;
    first_use = Hashtbl.create 64;
    first_use_rev = [];
    sync_events = Hashtbl.create 16;
    block_counts = Hashtbl.create 64;
    events = 0;
  }

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let on_enter t ~time name =
  t.events <- t.events + 1;
  (match t.stack with
  | caller :: _ -> bump t.edges (caller, name)
  | [] -> bump t.edges ("<root>", name));
  bump t.counts name;
  if not (Hashtbl.mem t.first_use name) then begin
    Hashtbl.replace t.first_use name time;
    t.first_use_rev <- name :: t.first_use_rev
  end;
  t.stack <- name :: t.stack

let on_exit t name =
  t.events <- t.events + 1;
  match t.stack with
  | top :: rest when String.equal top name -> t.stack <- rest
  | _ ->
    (* Exceptional unwinding can skip exits; drop to the matching
       frame if one exists. *)
    let rec unwind = function
      | top :: rest when not (String.equal top name) -> unwind rest
      | _ :: rest -> rest
      | [] -> []
    in
    t.stack <- unwind t.stack

let on_sync t name =
  t.events <- t.events + 1;
  bump t.sync_events name

let on_block t label =
  t.events <- t.events + 1;
  bump t.block_counts label

let first_use_order t = List.rev t.first_use_rev

let call_graph t =
  Hashtbl.fold (fun (a, b) n acc -> (a, b, n) :: acc) t.edges []

let sync_count t name =
  Option.value ~default:0 (Hashtbl.find_opt t.sync_events name)

let block_count t label =
  Option.value ~default:0 (Hashtbl.find_opt t.block_counts label)

let block_profile t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.block_counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let invocation_count t name =
  Option.value ~default:0 (Hashtbl.find_opt t.counts name)

(* Install the monitoring natives into a client VM. Audit events are
   forwarded to the console against the given client session; profile
   data accumulates in the returned profiler state. *)
let install vm ?console ?(session = 0) () =
  let t = create () in
  List.iter
    (fun cf ->
      Jvm.Classreg.register vm.Jvm.Vmstate.reg cf;
      match Jvm.Classreg.find_loaded vm.Jvm.Vmstate.reg cf.CF.name with
      | Some l -> l.Jvm.Classreg.init_state <- Jvm.Classreg.Initialized
      | None -> assert false)
    (runtime_classes ());
  let str_arg args =
    match args with
    | [ Jvm.Value.Str s ] -> s
    | _ -> Jvm.Vmstate.fault "monitor native: bad arguments"
  in
  let reg = Jvm.Vmstate.register_native vm in
  let forward kind vm args =
    Jvm.Vmstate.add_cost vm cost_audit_event;
    (match console with
    | Some console -> (
      match Console.find_client console session with
      | Some client ->
        Console.record_event console client ~kind ~detail:(str_arg args)
          ~time:(Jvm.Vmstate.total_cost vm)
      | None ->
        Audit.append (Console.audit console)
          ~time:(Jvm.Vmstate.total_cost vm) ~session ~kind
          ~detail:(str_arg args))
    | None -> ());
    None
  in
  reg ~cls:auditor_class ~name:"enter" ~desc:desc_s (forward "method.enter");
  reg ~cls:auditor_class ~name:"exit" ~desc:desc_s (forward "method.exit");
  reg ~cls:auditor_class ~name:"event" ~desc:desc_s (forward "app.event");
  reg ~cls:profiler_class ~name:"enter" ~desc:desc_s (fun vm args ->
      Jvm.Vmstate.add_cost vm cost_profile_event;
      on_enter t ~time:(Jvm.Vmstate.total_cost vm) (str_arg args);
      None);
  reg ~cls:profiler_class ~name:"exit" ~desc:desc_s (fun vm args ->
      Jvm.Vmstate.add_cost vm cost_profile_event;
      on_exit t (str_arg args);
      None);
  reg ~cls:tracer_class ~name:"sync" ~desc:desc_s (fun vm args ->
      Jvm.Vmstate.add_cost vm cost_profile_event;
      on_sync t (str_arg args);
      None);
  reg ~cls:tracer_class ~name:"block" ~desc:desc_s (fun vm args ->
      Jvm.Vmstate.add_cost vm cost_profile_event;
      on_block t (str_arg args);
      None);
  t
