(** The dynamic side of the monitoring services (§3.3).

    Natives backing [dvm/Auditor] (events forwarded to the console),
    [dvm/Profiler] (dynamic call graph, invocation counts, first-use
    order — the input to the §5 repartitioning optimizer) and
    [dvm/Tracer] (synchronization tracing). *)

val auditor_class : string
val profiler_class : string
val tracer_class : string
val desc_s : string
val runtime_classes : unit -> Bytecode.Classfile.t list
val cost_audit_event : int64
val cost_profile_event : int64

type t

val create : unit -> t
val on_enter : t -> time:int64 -> string -> unit
val on_exit : t -> string -> unit
val on_sync : t -> string -> unit
val on_block : t -> string -> unit

val first_use_order : t -> string list
(** Methods in the order they were first invoked. *)

val call_graph : t -> (string * string * int) list
(** (caller, callee, count) edges; roots appear under ["<root>"]. *)

val invocation_count : t -> string -> int
val sync_count : t -> string -> int

val block_count : t -> string -> int
(** Executions of one basic block, keyed ["method@leader-index"]. *)

val block_profile : t -> (string * int) list
(** All traced blocks, hottest first. *)

val install : Jvm.Vmstate.t -> ?console:Console.t -> ?session:int -> unit -> t
(** Register the monitoring natives in a client VM. *)
