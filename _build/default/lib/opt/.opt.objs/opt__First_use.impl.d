lib/opt/first_use.ml: Bytecode Float Hashtbl List Monitor String
