lib/opt/first_use.mli: Bytecode Monitor
