lib/opt/repartition.ml: Array Bytecode First_use List
