lib/opt/repartition.mli: Bytecode First_use
