lib/opt/startup.ml: Bytecode Float List Repartition
