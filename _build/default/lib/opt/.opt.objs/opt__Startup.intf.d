lib/opt/startup.mli: Bytecode First_use
