lib/opt/transport.ml: Bytecode First_use Float List Repartition
