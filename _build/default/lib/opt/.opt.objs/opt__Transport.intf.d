lib/opt/transport.mli: Bytecode First_use
