(* The repartitioning service (§5): splits application classes at
   method granularity so frequently used and related methods travel
   together while rarely used methods are factored into separate units
   loaded only on demand.

   Mechanism: a cold method's body moves verbatim into a satellite
   class <C>$cold as a *static* method whose descriptor gains the
   receiver as first parameter — the locals layout is unchanged, so the
   body needs no rewriting. The original method remains as a small
   forwarding stub, preserving virtual dispatch and the public
   interface; invoking it pulls the satellite over the network on first
   use (lazy class loading does the rest). Neither the JVM clients nor
   the origin servers need modification. *)

module CF = Bytecode.Classfile
module CP = Bytecode.Cp
module I = Bytecode.Instr
module D = Bytecode.Descriptor

let satellite_name cls = cls ^ "$cold"
let impl_name m_name = m_name ^ "$impl"

(* The descriptor of the moved implementation: instance receivers are
   made explicit. *)
let impl_desc ~owner ~is_static desc =
  if is_static then desc
  else
    let sg = D.method_sig_of_string desc in
    D.method_sig_to_string { sg with D.params = D.Obj owner :: sg.D.params }

(* The forwarding stub left in place of a cold method. *)
let stub_body pool ~owner ~is_static (m : CF.meth) =
  let sg = D.method_sig_of_string m.CF.m_desc in
  let loads =
    let param_loads base =
      List.mapi
        (fun i ty ->
          match ty with
          | D.Int -> I.Iload (base + i)
          | D.Obj _ | D.Arr _ -> I.Aload (base + i))
        sg.D.params
    in
    if is_static then param_loads 0 else I.Aload 0 :: param_loads 1
  in
  let call =
    I.Invokestatic
      (CP.Builder.methodref pool ~cls:(satellite_name owner)
         ~name:(impl_name m.CF.m_name)
         ~desc:(impl_desc ~owner ~is_static m.CF.m_desc))
  in
  let ret =
    match sg.D.ret with
    | None -> I.Return
    | Some D.Int -> I.Ireturn
    | Some (D.Obj _ | D.Arr _) -> I.Areturn
  in
  let instrs = Array.of_list (loads @ [ call; ret ]) in
  {
    CF.max_stack = max 1 (List.length loads);
    max_locals = max 1 (List.length loads);
    instrs;
    handlers = [];
  }

type result = {
  hot : CF.t; (* the slimmed class, stubs in place *)
  cold : CF.t option; (* the satellite, or None if nothing moved *)
  moved : int;
  hot_bytes : int;
  cold_bytes : int;
}

let split profile (cf : CF.t) : result =
  let hot_meths, cold_meths = First_use.partition profile cf in
  match cold_meths with
  | [] ->
    let b = Bytecode.Encode.class_size cf in
    { hot = cf; cold = None; moved = 0; hot_bytes = b; cold_bytes = 0 }
  | cold_meths ->
    let pool = CP.Builder.of_pool cf.CF.pool in
    let sat = satellite_name cf.CF.name in
    (* Stubs replace the cold methods in the original class. *)
    let stubs =
      List.map
        (fun m ->
          let is_static = CF.has_flag m.CF.m_flags CF.Static in
          {
            m with
            CF.m_code = Some (stub_body pool ~owner:cf.CF.name ~is_static m);
          })
        cold_meths
    in
    (* Moved implementations keep their bodies verbatim; only name,
       staticness and descriptor change. The satellite shares the
       original constant pool so every reference still resolves. *)
    let impls =
      List.map
        (fun m ->
          let is_static = CF.has_flag m.CF.m_flags CF.Static in
          {
            CF.m_name = impl_name m.CF.m_name;
            m_desc = impl_desc ~owner:cf.CF.name ~is_static m.CF.m_desc;
            m_flags = [ CF.Public; CF.Static ];
            m_code = m.CF.m_code;
          })
        cold_meths
    in
    let final_pool = CP.Builder.to_pool pool in
    let hot =
      { cf with CF.methods = hot_meths @ stubs; pool = final_pool }
    in
    let cold =
      {
        CF.name = sat;
        super = Some CF.java_lang_object;
        interfaces = [];
        c_flags = [ CF.Public ];
        fields = [];
        methods = impls;
        pool = final_pool;
        attributes = [ ("dvm.satellite.of", cf.CF.name) ];
      }
    in
    {
      hot;
      cold = Some cold;
      moved = List.length cold_meths;
      hot_bytes = Bytecode.Encode.class_size hot;
      cold_bytes = Bytecode.Encode.class_size cold;
    }

(* Repartition a whole application: returns the new class list (hot
   classes plus satellites) and the map of satellite names. *)
let split_app profile classes =
  let results = List.map (split profile) classes in
  let all =
    List.concat_map
      (fun r -> r.hot :: (match r.cold with Some c -> [ c ] | None -> []))
      results
  in
  (all, results)
