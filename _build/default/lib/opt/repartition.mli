(** The repartitioning service (§5).

    Splits application classes at method granularity: a cold method's
    body moves verbatim into a satellite class [<C>$cold] as a static
    method whose descriptor gains the receiver as first parameter; the
    original method becomes a forwarding stub, preserving virtual
    dispatch and the public interface. Lazy class loading fetches the
    satellite only on first use; neither clients nor origin servers
    need modification. *)

val satellite_name : string -> string
val impl_name : string -> string
val impl_desc : owner:string -> is_static:bool -> string -> string

type result = {
  hot : Bytecode.Classfile.t;
  cold : Bytecode.Classfile.t option;
  moved : int;
  hot_bytes : int;
  cold_bytes : int;
}

val split : First_use.profile -> Bytecode.Classfile.t -> result

val split_app :
  First_use.profile ->
  Bytecode.Classfile.t list ->
  Bytecode.Classfile.t list * result list
