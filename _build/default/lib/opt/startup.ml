(* Startup-time model for the §5 evaluation (Figures 11 and 12).

   Startup time — invocation until the application can service user
   requests — decomposes into a bandwidth-independent client component,
   per-request round-trip latency, and the serialized transfer of the
   code needed before readiness. Repartitioning removes the cold
   fraction of that transfer; the improvement therefore approaches the
   cold fraction on slow links and fades as bandwidth grows and the
   fixed components dominate — the shape of Figure 12. *)

type app_model = {
  app_name : string;
  startup_bytes : int; (* code transferred before readiness, baseline *)
  requests : int; (* fetches issued during startup *)
  cold_fraction : float; (* removable share of startup bytes *)
  client_startup_us : int; (* bandwidth-independent client work *)
}

let transfer_us ~bandwidth_bps ~bytes =
  int_of_float
    (Float.of_int bytes *. 8.0 *. 1_000_000.0 /. Float.of_int bandwidth_bps)

let startup_time_us t ~bandwidth_bps ~latency_us ~repartitioned =
  let bytes =
    if repartitioned then
      int_of_float (Float.of_int t.startup_bytes *. (1.0 -. t.cold_fraction))
    else t.startup_bytes
  in
  (* Repartitioning leaves the request count unchanged: the same
     classes are fetched, just smaller. *)
  t.client_startup_us + (t.requests * latency_us)
  + transfer_us ~bandwidth_bps ~bytes

let improvement_percent t ~bandwidth_bps ~latency_us =
  let base =
    startup_time_us t ~bandwidth_bps ~latency_us ~repartitioned:false
  in
  let opt = startup_time_us t ~bandwidth_bps ~latency_us ~repartitioned:true in
  if base = 0 then 0.0
  else 100.0 *. Float.of_int (base - opt) /. Float.of_int base

(* A measured model built from real classes and a real profile: the
   baseline transfers the originals, the optimized run transfers the
   split hot parts. Used to validate the closed form against actual
   repartitioned bytes. *)
let model_of_classes ~name ~profile ~startup_classes ~client_startup_us
    ~requests classes =
  let startup =
    List.filter
      (fun cf -> List.mem cf.Bytecode.Classfile.name startup_classes)
      classes
  in
  let base_bytes =
    List.fold_left (fun a c -> a + Bytecode.Encode.class_size c) 0 startup
  in
  let hot_bytes =
    List.fold_left
      (fun a c -> a + (Repartition.split profile c).Repartition.hot_bytes)
      0 startup
  in
  {
    app_name = name;
    startup_bytes = base_bytes;
    requests;
    cold_fraction =
      (if base_bytes = 0 then 0.0
       else Float.of_int (base_bytes - hot_bytes) /. Float.of_int base_bytes);
    client_startup_us;
  }
