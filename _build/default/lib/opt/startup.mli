(** Startup-time model for the §5 evaluation (Figures 11 and 12). *)

type app_model = {
  app_name : string;
  startup_bytes : int;
  requests : int;
  cold_fraction : float;
  client_startup_us : int;
}

val transfer_us : bandwidth_bps:int -> bytes:int -> int

val startup_time_us :
  app_model -> bandwidth_bps:int -> latency_us:int -> repartitioned:bool -> int

val improvement_percent : app_model -> bandwidth_bps:int -> latency_us:int -> float

val model_of_classes :
  name:string ->
  profile:First_use.profile ->
  startup_classes:string list ->
  client_startup_us:int ->
  requests:int ->
  Bytecode.Classfile.t list ->
  app_model
(** A measured model built from real classes and a real profile. *)
