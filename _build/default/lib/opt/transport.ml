(* Code-transport modes (§5).

   Java ships code either as a whole archive or by fetching entire
   classes at first reference; the paper's observation is that even
   lazy class loading transfers 10–30 % of code that is never invoked,
   because classes are the wrong granularity. This module measures the
   three transport modes over a real profile so the bench can show the
   progression archive → lazy class → repartitioned. *)

type mode =
  | Whole_archive (* the entire application as one unit *)
  | Lazy_class (* entire classes, fetched at first reference *)
  | Repartitioned (* hot parts of classes; satellites stay behind *)

let mode_name = function
  | Whole_archive -> "whole archive"
  | Lazy_class -> "lazy class"
  | Repartitioned -> "repartitioned"

(* Classes the profile actually touched (by method label prefix). *)
let used_classes profile classes =
  List.filter
    (fun cf ->
      List.exists
        (fun m ->
          First_use.is_used profile
            (First_use.method_key cf.Bytecode.Classfile.name
               m.Bytecode.Classfile.m_name m.Bytecode.Classfile.m_desc))
        cf.Bytecode.Classfile.methods)
    classes

let bytes_transferred mode profile classes =
  match mode with
  | Whole_archive ->
    List.fold_left (fun a c -> a + Bytecode.Encode.class_size c) 0 classes
  | Lazy_class ->
    List.fold_left
      (fun a c -> a + Bytecode.Encode.class_size c)
      0
      (used_classes profile classes)
  | Repartitioned ->
    List.fold_left
      (fun a c -> a + (Repartition.split profile c).Repartition.hot_bytes)
      0
      (used_classes profile classes)

(* The paper's §5 headline measurement: the share of *transferred* code
   (under lazy class loading) that is never invoked. *)
let never_invoked_fraction profile classes =
  let used = used_classes profile classes in
  let total =
    List.fold_left (fun a c -> a + Bytecode.Encode.class_size c) 0 used
  in
  let dead =
    List.fold_left
      (fun a c ->
        a
        + int_of_float
            (First_use.cold_fraction profile c
            *. Float.of_int (Bytecode.Encode.class_size c)))
      0 used
  in
  if total = 0 then 0.0 else Float.of_int dead /. Float.of_int total
