(** Code-transport modes (§5).

    Measures the three granularities of mobile-code transfer over a
    real first-use profile: whole archive, lazy class loading, and
    method-granularity repartitioning — including the paper's headline
    observation that lazy class loading still transfers 10–30 % of
    code that is never invoked. *)

type mode = Whole_archive | Lazy_class | Repartitioned

val mode_name : mode -> string

val used_classes :
  First_use.profile -> Bytecode.Classfile.t list -> Bytecode.Classfile.t list

val bytes_transferred :
  mode -> First_use.profile -> Bytecode.Classfile.t list -> int

val never_invoked_fraction :
  First_use.profile -> Bytecode.Classfile.t list -> float
(** Share of code transferred under lazy class loading that the
    profile never invoked. *)
