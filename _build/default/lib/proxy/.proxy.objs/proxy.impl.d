lib/proxy/proxy.ml: Cache Dsig Float Httpwire Int64 Jvm Monitor Pipeline Printf Rewrite Simnet String
