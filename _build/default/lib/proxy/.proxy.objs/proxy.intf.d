lib/proxy/proxy.mli: Cache Dsig Httpwire Jvm Monitor Pipeline Rewrite Simnet
