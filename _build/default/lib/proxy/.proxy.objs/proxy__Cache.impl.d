lib/proxy/cache.ml: Hashtbl String
