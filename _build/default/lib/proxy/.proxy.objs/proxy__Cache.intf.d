lib/proxy/cache.mli: Hashtbl
