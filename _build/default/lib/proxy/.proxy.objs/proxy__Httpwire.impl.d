lib/proxy/httpwire.ml: Format Printf String
