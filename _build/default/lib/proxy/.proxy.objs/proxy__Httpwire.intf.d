lib/proxy/httpwire.mli:
