lib/proxy/pipeline.ml: Bytecode Dsig Float Int64 List Rewrite String Verifier
