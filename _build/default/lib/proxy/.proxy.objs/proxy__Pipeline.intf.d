lib/proxy/pipeline.mli: Bytecode Dsig Rewrite
