(** The proxy's class cache (§3): rewritten classes are cached so code
    shared between clients is transformed once. LRU over a byte
    budget; capacity 0 disables caching. *)

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable used : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

and entry = { bytes : string; mutable last_used : int }

val create : capacity:int -> t
val enabled : t -> bool
val find : t -> string -> string option
val store : t -> string -> string -> unit
val size : t -> int
