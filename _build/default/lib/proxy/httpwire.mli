(** The proxy's wire protocol: minimal HTTP/1.0-shaped framing (the
    paper's proxy is an HTTP proxy). Requests name a class resource;
    responses carry a status and Content-Length body. *)

exception Bad_message of string

val encode_request : cls:string -> string
val decode_request : string -> string
(** @raise Bad_message on malformed input. *)

type status = Ok_200 | Not_found_404 | Bad_request_400

val status_code : status -> int
val encode_response : status:status -> body:string -> string
val decode_response : string -> status * string
val response_overhead : body_bytes:int -> int

val serve : (string -> string option) -> string -> string
(** One request/response exchange over an origin-like lookup;
    malformed requests get a 400. *)
