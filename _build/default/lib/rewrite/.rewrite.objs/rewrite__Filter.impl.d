lib/rewrite/filter.ml: Bytecode Fun List
