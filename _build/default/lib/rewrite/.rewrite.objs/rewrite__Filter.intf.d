lib/rewrite/filter.mli: Bytecode
