lib/rewrite/patch.ml: Array Bytecode List
