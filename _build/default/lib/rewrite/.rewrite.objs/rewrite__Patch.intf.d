lib/rewrite/patch.mli: Bytecode
