(* The internal filtering API of Section 3: logically separate static
   services are code-transformation filters over a parsed class, and
   are stacked on the proxy according to site-specific requirements.
   Parsing and code generation happen once, outside the stack. *)

type t = {
  name : string;
  transform : Bytecode.Classfile.t -> Bytecode.Classfile.t;
}

exception Rejected of { filter : string; cls : string; reason : string }

let make ~name transform = { name; transform }

let reject ~filter ~cls reason = raise (Rejected { filter; cls; reason })

let apply t cls = t.transform cls

let run_stack filters cls = List.fold_left (fun c f -> apply f c) cls filters

let stack ~name filters =
  { name; transform = (fun cls -> run_stack filters cls) }

let identity = { name = "identity"; transform = Fun.id }

let names filters = List.map (fun f -> f.name) filters
