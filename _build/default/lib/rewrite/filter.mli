(** The internal filtering API of §3.

    Logically separate static services are code-transformation filters
    over a parsed class and are stacked on the proxy according to
    site-specific requirements; parsing and code generation happen once
    outside the stack. *)

type t = {
  name : string;
  transform : Bytecode.Classfile.t -> Bytecode.Classfile.t;
}

exception Rejected of { filter : string; cls : string; reason : string }
(** Raised by a filter that refuses a class (e.g. verification
    failure). The proxy converts this into an error-reporting
    replacement class. *)

val make :
  name:string -> (Bytecode.Classfile.t -> Bytecode.Classfile.t) -> t

val reject : filter:string -> cls:string -> string -> 'a

val apply : t -> Bytecode.Classfile.t -> Bytecode.Classfile.t
val run_stack : t list -> Bytecode.Classfile.t -> Bytecode.Classfile.t
val stack : name:string -> t list -> t
val identity : t
val names : t list -> string list
