lib/security/enforcement.ml: Bytecode Hashtbl Jvm List Policy Server
