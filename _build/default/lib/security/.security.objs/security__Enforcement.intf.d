lib/security/enforcement.mli: Bytecode Hashtbl Jvm Policy Server
