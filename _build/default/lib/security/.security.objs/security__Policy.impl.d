lib/security/policy.ml: Format List Option String
