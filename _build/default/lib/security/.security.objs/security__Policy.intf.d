lib/security/policy.mli: Format
