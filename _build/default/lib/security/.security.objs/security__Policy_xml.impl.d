lib/security/policy_xml.ml: Buffer Format List Policy String
