lib/security/policy_xml.mli: Policy
