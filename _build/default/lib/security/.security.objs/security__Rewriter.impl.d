lib/security/rewriter.ml: Array Bytecode Enforcement List Policy Rewrite
