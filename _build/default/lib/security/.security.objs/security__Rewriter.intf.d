lib/security/rewriter.mli: Bytecode Policy Rewrite
