lib/security/server.ml: List Policy
