lib/security/server.mli: Policy
