(* The high-level, XML-based policy specification language of §3.2.

   A small XML subset suffices: elements, attributes, self-closing
   tags, comments, and character data (ignored). Example:

     <policy default="deny">
       <domain name="applets">
         <grant permission="property.get"/>
         <deny permission="file.open"/>
       </domain>
       <resource prefix="/tmp/" domain="tmpfiles"/>
       <operation permission="file.open"
                  class="java/io/FileInputStream" method="open"/>
       <principal classprefix="applet/" domain="applets"/>
     </policy>
*)

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* --- Minimal XML representation and parser. --- *)

type xml = { tag : string; attrs : (string * string) list; children : xml list }

type lexer = { src : string; mutable pos : int }

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None
let advance lx = lx.pos <- lx.pos + 1

let skip_ws lx =
  while
    lx.pos < String.length lx.src
    && (match lx.src.[lx.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance lx
  done

let expect lx c =
  match peek lx with
  | Some c' when c = c' -> advance lx
  | Some c' -> fail "expected %C at %d, found %C" c lx.pos c'
  | None -> fail "expected %C at end of input" c

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name lx =
  let start = lx.pos in
  while lx.pos < String.length lx.src && is_name_char lx.src.[lx.pos] do
    advance lx
  done;
  if lx.pos = start then fail "expected a name at %d" start;
  String.sub lx.src start (lx.pos - start)

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Buffer.contents b
    else if s.[i] = '&' then begin
      match String.index_from_opt s i ';' with
      | None -> fail "unterminated entity"
      | Some j ->
        (match String.sub s (i + 1) (j - i - 1) with
        | "lt" -> Buffer.add_char b '<'
        | "gt" -> Buffer.add_char b '>'
        | "amp" -> Buffer.add_char b '&'
        | "quot" -> Buffer.add_char b '"'
        | "apos" -> Buffer.add_char b '\''
        | e -> fail "unknown entity &%s;" e);
        go (j + 1)
    end
    else begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
  in
  go 0

let read_attr_value lx =
  let quote =
    match peek lx with
    | Some (('"' | '\'') as q) ->
      advance lx;
      q
    | _ -> fail "expected quoted attribute value at %d" lx.pos
  in
  let start = lx.pos in
  (match String.index_from_opt lx.src start quote with
  | None -> fail "unterminated attribute value"
  | Some j -> lx.pos <- j + 1);
  unescape (String.sub lx.src start (lx.pos - 1 - start))

let read_attrs lx =
  let rec go acc =
    skip_ws lx;
    match peek lx with
    | Some ('>' | '/') | None -> List.rev acc
    | Some _ ->
      let name = read_name lx in
      skip_ws lx;
      expect lx '=';
      skip_ws lx;
      let value = read_attr_value lx in
      go ((name, value) :: acc)
  in
  go []

let skip_comment lx =
  (* positioned after "<!--" *)
  let rec go () =
    if lx.pos + 2 >= String.length lx.src then fail "unterminated comment"
    else if
      lx.src.[lx.pos] = '-' && lx.src.[lx.pos + 1] = '-' && lx.src.[lx.pos + 2] = '>'
    then lx.pos <- lx.pos + 3
    else begin
      advance lx;
      go ()
    end
  in
  go ()

let rec read_element lx =
  skip_ws lx;
  expect lx '<';
  let tag = read_name lx in
  let attrs = read_attrs lx in
  skip_ws lx;
  match peek lx with
  | Some '/' ->
    advance lx;
    expect lx '>';
    { tag; attrs; children = [] }
  | Some '>' ->
    advance lx;
    let children = read_children lx tag in
    { tag; attrs; children }
  | _ -> fail "malformed tag %s" tag

and read_children lx parent =
  let rec go acc =
    (* skip character data *)
    while
      lx.pos < String.length lx.src && lx.src.[lx.pos] <> '<'
    do
      advance lx
    done;
    if lx.pos + 1 >= String.length lx.src then fail "unterminated element %s" parent
    else if lx.src.[lx.pos + 1] = '/' then begin
      lx.pos <- lx.pos + 2;
      let name = read_name lx in
      if not (String.equal name parent) then
        fail "mismatched close tag %s inside %s" name parent;
      skip_ws lx;
      expect lx '>';
      List.rev acc
    end
    else if
      lx.pos + 3 < String.length lx.src
      && String.sub lx.src lx.pos 4 = "<!--"
    then begin
      lx.pos <- lx.pos + 4;
      skip_comment lx;
      go acc
    end
    else go (read_element lx :: acc)
  in
  go []

let parse_xml src =
  let lx = { src; pos = 0 } in
  skip_ws lx;
  (* tolerate a processing instruction like <?xml ...?> *)
  if
    lx.pos + 1 < String.length src
    && src.[lx.pos] = '<'
    && src.[lx.pos + 1] = '?'
  then begin
    match String.index_from_opt src lx.pos '>' with
    | Some j -> lx.pos <- j + 1
    | None -> fail "unterminated processing instruction"
  end;
  let el = read_element lx in
  skip_ws lx;
  if lx.pos <> String.length src then fail "trailing content after root element";
  el

(* --- Policy construction from the XML tree. --- *)

let attr ?default el name =
  match List.assoc_opt name el.attrs with
  | Some v -> v
  | None -> (
    match default with
    | Some d -> d
    | None -> fail "<%s> missing attribute %S" el.tag name)

let parse (src : string) : Policy.t =
  let root = parse_xml src in
  if not (String.equal root.tag "policy") then
    fail "root element must be <policy>, found <%s>" root.tag;
  let default_allow =
    match attr ~default:"deny" root "default" with
    | "allow" -> true
    | "deny" -> false
    | v -> fail "policy default must be allow|deny, found %S" v
  in
  let rules = ref [] in
  let resources = ref [] in
  let operations = ref [] in
  let principals = ref [] in
  List.iter
    (fun child ->
      match child.tag with
      | "domain" ->
        let sid = attr child "name" in
        List.iter
          (fun g ->
            match g.tag with
            | "grant" ->
              rules :=
                {
                  Policy.rule_sid = sid;
                  rule_permission = attr g "permission";
                  rule_allow = true;
                }
                :: !rules
            | "deny" ->
              rules :=
                {
                  Policy.rule_sid = sid;
                  rule_permission = attr g "permission";
                  rule_allow = false;
                }
                :: !rules
            | t -> fail "unexpected <%s> inside <domain>" t)
          child.children
      | "resource" ->
        resources := (attr child "prefix", attr child "domain") :: !resources
      | "operation" ->
        operations :=
          {
            Policy.op_permission = attr child "permission";
            op_class = attr child "class";
            op_method = attr ~default:"*" child "method";
            op_resource_arg =
              (match attr ~default:"none" child "resourcearg" with
              | "last" -> true
              | "none" -> false
              | v -> fail "operation resourcearg must be last|none, found %S" v);
          }
          :: !operations
      | "principal" ->
        principals :=
          (attr child "classprefix", attr child "domain") :: !principals
      | t -> fail "unexpected <%s> inside <policy>" t)
    root.children;
  {
    Policy.version = 1;
    default_allow;
    rules = List.rev !rules;
    resources = List.rev !resources;
    operations = List.rev !operations;
    principals = List.rev !principals;
  }
