(** The XML-based policy specification language of §3.2.

    {[
      <policy default="deny">
        <domain name="applets">
          <grant permission="property.get"/>
          <deny permission="file.open"/>
        </domain>
        <resource prefix="/tmp/" domain="tmpfiles"/>
        <operation permission="file.open"
                   class="java/io/FileInputStream" method="open"/>
        <principal classprefix="applet/" domain="applets"/>
      </policy>
    ]} *)

exception Parse_error of string

type xml = { tag : string; attrs : (string * string) list; children : xml list }

val parse_xml : string -> xml
(** Parse the supported XML subset (elements, attributes, self-closing
    tags, comments, entities). @raise Parse_error on malformed input. *)

val parse : string -> Policy.t
(** Parse a policy document. @raise Parse_error on malformed input. *)
