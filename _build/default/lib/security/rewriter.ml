(* The static component of the security service (§3.2): rewrites
   incoming applications so that every security-relevant operation
   named by the policy's operation map is preceded by a call to the
   client's enforcement manager. Because insertion happens at the
   bytecode level on the proxy, checks can guard operations the
   original system designers never anticipated — file read being the
   paper's example. *)

module CF = Bytecode.Classfile
module CP = Bytecode.Cp
module I = Bytecode.Instr

type counters = {
  mutable checks_inserted : int;
  mutable methods_instrumented : int;
  mutable classes_processed : int;
}

let fresh_counters () =
  { checks_inserted = 0; methods_instrumented = 0; classes_processed = 0 }

(* A resource-aware check is only possible when the protected call's
   last parameter is a String sitting on top of the stack at the call
   site. *)
let last_param_is_string desc =
  match Bytecode.Descriptor.method_sig_of_string desc with
  | { Bytecode.Descriptor.params; _ } -> (
    match List.rev params with
    | Bytecode.Descriptor.Obj "java/lang/String" :: _ -> true
    | _ -> false)
  | exception Bytecode.Descriptor.Bad_descriptor _ -> false

(* Find the call sites in a method that the operation map covers, with
   the permission each requires and whether the resource name is
   available on the stack. *)
let protected_sites policy pool (code : CF.code) =
  let sites = ref [] in
  Array.iteri
    (fun idx insn ->
      match insn with
      | I.Invokevirtual k | I.Invokestatic k | I.Invokespecial k
      | I.Invokeinterface k -> (
        match CP.get_methodref pool k with
        | mr ->
          List.iter
            (fun op ->
              let with_resource =
                op.Policy.op_resource_arg
                && last_param_is_string mr.CP.ref_desc
              in
              sites := (idx, op.Policy.op_permission, with_resource) :: !sites)
            (Policy.operations_for policy ~cls:mr.CP.ref_class
               ~meth:mr.CP.ref_name)
        | exception (CP.Invalid_index _ | CP.Wrong_kind _) -> ())
      | _ -> ())
    code.CF.instrs;
  List.rev !sites

let check_block pool permission ~with_resource =
  if with_resource then
    (* stack: [.., resource] -> dup the resource name and pass it with
       the permission: checkResource(resource, permission) *)
    [
      I.Dup;
      I.Ldc_str (CP.Builder.string pool permission);
      I.Invokestatic
        (CP.Builder.methodref pool ~cls:Enforcement.class_name
           ~name:"checkResource" ~desc:Enforcement.desc_check_resource);
    ]
  else
    [
      I.Ldc_str (CP.Builder.string pool permission);
      I.Invokestatic
        (CP.Builder.methodref pool ~cls:Enforcement.class_name ~name:"check"
           ~desc:Enforcement.desc_check);
    ]

let rewrite_class ?(counters = fresh_counters ()) policy (cf : CF.t) : CF.t =
  counters.classes_processed <- counters.classes_processed + 1;
  let pool = CP.Builder.of_pool cf.CF.pool in
  let methods =
    List.map
      (fun m ->
        match m.CF.m_code with
        | None -> m
        | Some code ->
          let sites = protected_sites policy (CP.Builder.to_pool pool) code in
          if sites = [] then m
          else begin
            counters.methods_instrumented <- counters.methods_instrumented + 1;
            counters.checks_inserted <-
              counters.checks_inserted + List.length sites;
            let insertions =
              List.map
                (fun (at, permission, with_resource) ->
                  {
                    Rewrite.Patch.at;
                    block = check_block pool permission ~with_resource;
                  })
                sites
            in
            let code = Rewrite.Patch.apply_insertions code insertions in
            let sg = Bytecode.Descriptor.method_sig_of_string m.CF.m_desc in
            let code =
              Rewrite.Patch.refit_bounds (CP.Builder.to_pool pool)
                ~params:(Bytecode.Descriptor.param_slots sg)
                ~is_static:(CF.has_flag m.CF.m_flags CF.Static)
                code
            in
            { m with CF.m_code = Some code }
          end)
      cf.CF.methods
  in
  { cf with CF.methods; pool = CP.Builder.to_pool pool }

let filter ?counters policy =
  Rewrite.Filter.make ~name:"security" (rewrite_class ?counters policy)
