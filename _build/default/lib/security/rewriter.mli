(** The static component of the security service (§3.2).

    Rewrites incoming applications so every security-relevant operation
    named by the policy's operation map is preceded by a call to the
    client's enforcement manager. Insertion at the bytecode level means
    checks can guard operations the original system designers never
    anticipated — file read being the paper's example. *)

type counters = {
  mutable checks_inserted : int;
  mutable methods_instrumented : int;
  mutable classes_processed : int;
}

val fresh_counters : unit -> counters

val rewrite_class :
  ?counters:counters -> Policy.t -> Bytecode.Classfile.t -> Bytecode.Classfile.t

val filter : ?counters:counters -> Policy.t -> Rewrite.Filter.t
