(* The centralized network security service: holds the master policy,
   answers enforcement-manager queries, and drives the
   cache-invalidation protocol that propagates access-matrix changes to
   clients (§3.2). *)

type t = {
  mutable policy : Policy.t;
  mutable subscribers : (unit -> unit) list; (* invalidation callbacks *)
  mutable queries : int;
  mutable downloads : int;
  mutable invalidations_sent : int;
}

let create policy =
  { policy; subscribers = []; queries = 0; downloads = 0; invalidations_sent = 0 }

let policy t = t.policy

(* Single point of control: changing the policy immediately invalidates
   every subscribed client cache. No cooperation from unprivileged
   users is required. *)
let set_policy t p =
  t.policy <- p;
  List.iter
    (fun cb ->
      t.invalidations_sent <- t.invalidations_sent + 1;
      cb ())
    t.subscribers

let update t f = set_policy t (f t.policy)

let query t ~sid ~permission =
  t.queries <- t.queries + 1;
  Policy.decide t.policy ~sid ~permission

(* The bulk download an enforcement manager performs on first use:
   the domain's rules, the policy default, and the resource map (so
   resource-qualified checks resolve locally). *)
let download_slice t ~sid =
  t.downloads <- t.downloads + 1;
  ( Policy.slice_for_domain t.policy sid,
    t.policy.Policy.default_allow,
    t.policy.Policy.resources )

let subscribe t cb = t.subscribers <- cb :: t.subscribers
