(** The centralized network security service (§3.2).

    Holds the master policy, answers enforcement-manager queries, and
    drives the cache-invalidation protocol that propagates access-matrix
    changes to clients. *)

type t = {
  mutable policy : Policy.t;
  mutable subscribers : (unit -> unit) list;
  mutable queries : int;
  mutable downloads : int;
  mutable invalidations_sent : int;
}

val create : Policy.t -> t
val policy : t -> Policy.t

val set_policy : t -> Policy.t -> unit
(** Single point of control: invalidates every subscribed client
    cache. *)

val update : t -> (Policy.t -> Policy.t) -> unit
val query : t -> sid:Policy.sid -> permission:Policy.permission -> bool

val download_slice :
  t -> sid:Policy.sid -> Policy.rule list * bool * (string * Policy.sid) list
(** The bulk download an enforcement manager performs on first use:
    the domain's rules, the policy default, and the resource map. *)

val subscribe : t -> (unit -> unit) -> unit
