lib/simnet/engine.ml: Array Int64
