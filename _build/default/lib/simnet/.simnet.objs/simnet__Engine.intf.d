lib/simnet/engine.mli:
