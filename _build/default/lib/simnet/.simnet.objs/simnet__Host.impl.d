lib/simnet/host.ml: Engine Float Int64
