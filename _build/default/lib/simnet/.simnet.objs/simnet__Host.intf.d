lib/simnet/host.mli: Engine
