lib/simnet/link.ml: Engine Float Int64
