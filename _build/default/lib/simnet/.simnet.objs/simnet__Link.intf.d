lib/simnet/link.mli: Engine
