(** Simulated hosts.

    A single serializing CPU with a speed factor relative to the
    paper's 200 MHz PentiumPro reference machines, and a memory budget.
    Memory pressure does not fail allocations — it slows work down (the
    paging behaviour behind Figure 10's saturation knee). *)

type t = {
  engine : Engine.t;
  name : string;
  cpu_factor : float;
  mem_capacity : int;
  mutable mem_used : int;
  mutable busy_until : Engine.time;
  mutable cpu_busy : Engine.time;
  mutable jobs : int;
  thrash_factor : float;
}

val create :
  ?cpu_factor:float ->
  ?mem_capacity:int ->
  ?thrash_factor:float ->
  Engine.t ->
  name:string ->
  t
(** Defaults: reference CPU, 64 MB memory (the paper's proxy). *)

val mem_pressure : t -> float
val effective_cost : t -> cost_us:Engine.time -> Engine.time
val compute : t -> cost_us:Engine.time -> (unit -> unit) -> unit
val allocate : t -> int -> unit
val release : t -> int -> unit
val utilization : t -> float
