(** Network links with bandwidth and latency.

    A link is a serializing resource: transmissions queue behind one
    another (the shared-medium behaviour of the paper's 10 Mb/s
    Ethernet), then propagate with the link latency. *)

type t = {
  engine : Engine.t;
  name : string;
  bandwidth_bps : int;
  latency : Engine.time;
  mutable busy_until : Engine.time;
  mutable bytes_carried : int;
  mutable transfers : int;
}

val create :
  Engine.t -> name:string -> bandwidth_bps:int -> latency:Engine.time -> t

val tx_time : t -> bytes:int -> Engine.time
val transfer : t -> bytes:int -> (unit -> unit) -> unit

val transfer_time_us : bandwidth_bps:int -> latency_us:int -> bytes:int -> int
(** Closed-form single-transfer time for analytic startup models. *)

val ethernet_10mb : Engine.t -> t
val modem_28_8k : Engine.t -> t
val utilization : t -> float
