lib/verifier/assumptions.ml: Format Hashtbl List String
