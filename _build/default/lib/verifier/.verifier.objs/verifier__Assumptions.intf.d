lib/verifier/assumptions.mli: Format
