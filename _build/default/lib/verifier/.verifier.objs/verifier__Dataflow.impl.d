lib/verifier/dataflow.ml: Array Assumptions Bytecode Format Hashtbl List Option Oracle Printf Queue String Verror Vtype
