lib/verifier/dataflow.mli: Assumptions Bytecode Oracle Verror Vtype
