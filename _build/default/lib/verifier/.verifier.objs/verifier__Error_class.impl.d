lib/verifier/error_class.ml: Bytecode List Printf Verror
