lib/verifier/error_class.mli: Bytecode Verror
