lib/verifier/oracle.ml: Bytecode Hashtbl List Option String
