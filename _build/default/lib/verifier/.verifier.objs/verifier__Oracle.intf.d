lib/verifier/oracle.mli: Bytecode
