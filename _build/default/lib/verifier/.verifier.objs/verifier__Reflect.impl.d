lib/verifier/reflect.ml: Bytecode Hashtbl List Oracle Printf Rewrite
