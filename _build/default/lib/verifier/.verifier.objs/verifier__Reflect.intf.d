lib/verifier/reflect.mli: Bytecode Oracle Rewrite
