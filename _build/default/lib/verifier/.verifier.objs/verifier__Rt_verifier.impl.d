lib/verifier/rt_verifier.ml: Bytecode Format Int32 Jvm List String
