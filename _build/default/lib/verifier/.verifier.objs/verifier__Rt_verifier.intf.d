lib/verifier/rt_verifier.mli: Bytecode Jvm
