lib/verifier/static_verifier.ml: Array Assumptions Bytecode Dataflow Hashtbl List Oracle Printf Rewrite Rt_verifier String Structural Verror
