lib/verifier/static_verifier.mli: Bytecode Oracle Rewrite Verror
