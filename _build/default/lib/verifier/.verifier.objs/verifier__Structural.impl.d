lib/verifier/structural.ml: Array Bytecode Format Hashtbl List String Verror
