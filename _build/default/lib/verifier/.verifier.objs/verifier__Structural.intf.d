lib/verifier/structural.mli: Bytecode Verror
