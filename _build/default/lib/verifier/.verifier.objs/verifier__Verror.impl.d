lib/verifier/verror.ml: Format
