lib/verifier/vtype.ml: Assumptions Bytecode Format Oracle String
