lib/verifier/vtype.mli: Assumptions Bytecode Format Oracle
