(* Assumptions a class makes about its environment, collected during
   the static phases and deferred to the client as injected runtime
   checks. Each assumption carries its scope, per the paper:
   inheritance relationships affect the whole class, member references
   only the methods that use them. *)

type assumption =
  | Class_exists of string
  | Subclass_of of { sub : string; super : string }
  | Field_exists of { cls : string; name : string; desc : string; static : bool }
  | Method_exists of { cls : string; name : string; desc : string; static : bool }

type scope =
  | Class_wide
  | In_method of string (* method name ^ descriptor *)

type entry = { what : assumption; where : scope }

type t = {
  mutable entries : entry list; (* reverse order *)
  seen : (assumption * scope, unit) Hashtbl.t;
}

let create () = { entries = []; seen = Hashtbl.create 32 }

let add t ~scope what =
  let key = (what, scope) in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.add t.seen key ();
    t.entries <- { what; where = scope } :: t.entries
  end

let to_list t = List.rev t.entries
let count t = List.length t.entries

let class_wide t =
  List.filter_map
    (fun e -> match e.where with Class_wide -> Some e.what | In_method _ -> None)
    (to_list t)

let for_method t key =
  List.filter_map
    (fun e ->
      match e.where with
      | In_method k when String.equal k key -> Some e.what
      | In_method _ | Class_wide -> None)
    (to_list t)

let pp_assumption ppf = function
  | Class_exists c -> Format.fprintf ppf "class %s exists" c
  | Subclass_of { sub; super } -> Format.fprintf ppf "%s <: %s" sub super
  | Field_exists { cls; name; desc; static } ->
    Format.fprintf ppf "%sfield %s.%s : %s"
      (if static then "static " else "")
      cls name desc
  | Method_exists { cls; name; desc; static } ->
    Format.fprintf ppf "%smethod %s.%s : %s"
      (if static then "static " else "")
      cls name desc
