(** Assumptions a class makes about its environment.

    Collected during the static verification phases and deferred to the
    client as injected runtime checks. Each assumption carries its
    scope: inheritance relationships affect the whole class, member
    references only the methods that use them (§3.1). *)

type assumption =
  | Class_exists of string
  | Subclass_of of { sub : string; super : string }
  | Field_exists of { cls : string; name : string; desc : string; static : bool }
  | Method_exists of { cls : string; name : string; desc : string; static : bool }

type scope =
  | Class_wide
  | In_method of string  (** method name ^ descriptor *)

type entry = { what : assumption; where : scope }
type t

val create : unit -> t

val add : t -> scope:scope -> assumption -> unit
(** Idempotent per (assumption, scope). *)

val to_list : t -> entry list
val count : t -> int
val class_wide : t -> assumption list
val for_method : t -> string -> assumption list
val pp_assumption : Format.formatter -> assumption -> unit
