(** Verification phase 3: dataflow type inference over method bodies.

    A worklist abstract interpretation computes entry verification
    types for every instruction. Checks undecidable against the
    oracle's knowledge become collected {!Assumptions} (deferred to the
    client) rather than errors — the static/dynamic partitioning of
    §3.1. Subroutines use the merged-frame approximation: [ret] flows
    to the instruction after every [jsr] targeting its entry. *)

type frame = { locals : Vtype.t array; stack : Vtype.t list }

type result = {
  r_errors : Verror.t list;
  r_checks : int;  (** static checks performed *)
}

val verify_method :
  Oracle.t -> Assumptions.t -> Bytecode.Classfile.t -> Bytecode.Classfile.meth -> result

val verify_class :
  Oracle.t -> Assumptions.t -> Bytecode.Classfile.t -> Verror.t list * int
(** Errors across all methods plus the total static-check count. *)
