(* Error propagation (§3.1): when static verification rejects a class,
   the service forwards a replacement class of the same name that
   raises a VerifyError during its initialization, so the failure
   reaches the client through the regular exception mechanisms. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let build ~name ~message =
  B.class_ name
    [
      B.meth
        ~flags:[ CF.Public; CF.Static ]
        "<clinit>" "()V"
        [
          B.New "java/lang/VerifyError";
          B.Dup;
          B.Push_str message;
          B.Invokespecial
            ("java/lang/VerifyError", "<init>", "(Ljava/lang/String;)V");
          B.Athrow;
        ];
      B.default_init "java/lang/Object";
    ]

let of_errors ~name errors =
  let message =
    match errors with
    | [] -> "verification failed"
    | e :: _ ->
      Printf.sprintf "%s (%d error%s)" (Verror.to_string e)
        (List.length errors)
        (if List.length errors = 1 then "" else "s")
  in
  build ~name ~message
