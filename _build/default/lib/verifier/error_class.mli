(** Error propagation (§3.1): a replacement class of the same name that
    raises a [VerifyError] during initialization, so a static
    verification failure reaches the client through the regular Java
    exception mechanisms. *)

val build : name:string -> message:string -> Bytecode.Classfile.t
val of_errors : name:string -> Verror.t list -> Bytecode.Classfile.t
