(* The verifier's window onto the class environment. On the server the
   oracle knows the boot library and whatever application classes have
   passed through the proxy; everything else is *unknown*, and checks
   against unknown classes become collected assumptions deferred to the
   client (the paper's link-phase partitioning). *)

type class_info = {
  ci_name : string;
  ci_super : string option;
  ci_interfaces : string list;
  ci_final : bool;
  ci_fields : (string * string * bool * bool) list;
      (* name, desc, is_static, is_private *)
  ci_methods : (string * string * bool * bool) list;
}

type t = string -> class_info option

let info_of_classfile (cf : Bytecode.Classfile.t) =
  {
    ci_name = cf.Bytecode.Classfile.name;
    ci_super = cf.Bytecode.Classfile.super;
    ci_interfaces = cf.Bytecode.Classfile.interfaces;
    ci_final =
      List.mem Bytecode.Classfile.Final cf.Bytecode.Classfile.c_flags;
    ci_fields =
      List.map
        (fun f ->
          ( f.Bytecode.Classfile.f_name,
            f.Bytecode.Classfile.f_desc,
            List.mem Bytecode.Classfile.Static f.Bytecode.Classfile.f_flags,
            List.mem Bytecode.Classfile.Private f.Bytecode.Classfile.f_flags ))
        cf.Bytecode.Classfile.fields;
    ci_methods =
      List.map
        (fun m ->
          ( m.Bytecode.Classfile.m_name,
            m.Bytecode.Classfile.m_desc,
            List.mem Bytecode.Classfile.Static m.Bytecode.Classfile.m_flags,
            List.mem Bytecode.Classfile.Private m.Bytecode.Classfile.m_flags ))
        cf.Bytecode.Classfile.methods;
  }

let of_classes classes : t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun cf ->
      Hashtbl.replace tbl cf.Bytecode.Classfile.name (info_of_classfile cf))
    classes;
  fun name -> Hashtbl.find_opt tbl name

let empty : t = fun _ -> None

(* Extend an oracle with additional classes (e.g. the class under
   verification itself, so self-references resolve). *)
let extend oracle classes : t =
  let local = of_classes classes in
  fun name -> (match local name with Some i -> Some i | None -> oracle name)

let find_field (oracle : t) cls name =
  match oracle cls with
  | None -> None
  | Some ci ->
    List.find_opt (fun (n, _, _, _) -> String.equal n name) ci.ci_fields
    |> Option.map (fun (_, d, s, _) -> (d, s))

(* Walks the superclass chain for inherited members, stopping (and
   returning [`Unknown]) when the chain leaves the oracle's
   knowledge. *)
let rec lookup_field (oracle : t) cls name =
  match oracle cls with
  | None -> `Unknown
  | Some ci -> (
    match
      List.find_opt (fun (n, _, _, _) -> String.equal n name) ci.ci_fields
    with
    | Some (_, d, s, p) -> `Found (cls, d, s, p)
    | None -> (
      match ci.ci_super with
      | None -> `Absent
      | Some s -> lookup_field oracle s name))

let rec lookup_method (oracle : t) cls name desc =
  match oracle cls with
  | None -> `Unknown
  | Some ci -> (
    match
      List.find_opt
        (fun (n, d, _, _) -> String.equal n name && String.equal d desc)
        ci.ci_methods
    with
    | Some (_, _, s, p) -> `Found (cls, s, p)
    | None -> (
      match ci.ci_super with
      | None -> `Absent
      | Some s -> lookup_method oracle s name desc))

(* Subtype query over possibly-unknown hierarchies:
   [`Yes] / [`No] when decidable, [`Unknown] when the walk escapes the
   oracle. Arrays are covariant; everything widens to Object. *)
let rec is_subclass (oracle : t) ~sub ~super =
  if String.equal sub super then `Yes
  else if String.equal super Bytecode.Classfile.java_lang_object then `Yes
  else if String.length sub > 0 && sub.[0] = '[' then
    if String.length super > 0 && super.[0] = '[' then
      match (elem_of sub, elem_of super) with
      | Some a, Some b when a <> "I" && b <> "I" ->
        is_subclass oracle ~sub:a ~super:b
      | Some a, Some b -> if String.equal a b then `Yes else `No
      | _, _ -> `No
    else `No
  else
    (* Three-valued combination: any [`Yes] wins; otherwise any
       [`Unknown] taints a [`No] into [`Unknown]. *)
    let join a b =
      match (a, b) with
      | `Yes, _ | _, `Yes -> `Yes
      | `Unknown, _ | _, `Unknown -> `Unknown
      | `No, `No -> `No
    in
    let rec walk name =
      if String.equal name super then `Yes
      else
        match oracle name with
        | None -> `Unknown
        | Some ci ->
          let via_ifaces =
            List.fold_left
              (fun acc i -> join acc (interface_reaches i))
              `No ci.ci_interfaces
          in
          let via_super =
            match ci.ci_super with None -> `No | Some s -> walk s
          in
          join via_ifaces via_super
    and interface_reaches i =
      if String.equal i super then `Yes
      else
        match oracle i with
        | None -> `Unknown
        | Some ci ->
          List.fold_left
            (fun acc j -> join acc (interface_reaches j))
            `No ci.ci_interfaces
    in
    walk sub

and elem_of name =
  if String.equal name "[I" then Some "I"
  else if
    String.length name >= 4
    && name.[0] = '['
    && name.[1] = 'L'
    && name.[String.length name - 1] = ';'
  then Some (String.sub name 2 (String.length name - 3))
  else if String.length name >= 2 && name.[0] = '[' then
    Some (String.sub name 1 (String.length name - 1))
  else None
