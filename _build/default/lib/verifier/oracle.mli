(** The verifier's window onto the class environment.

    On the server the oracle knows the boot library and whatever
    application classes have passed through the proxy; everything else
    is {e unknown}, and checks against unknown classes become collected
    assumptions deferred to the client (the paper's link-phase
    partitioning). *)

type class_info = {
  ci_name : string;
  ci_super : string option;
  ci_interfaces : string list;
  ci_final : bool;
  ci_fields : (string * string * bool * bool) list;
      (** name, desc, is_static, is_private *)
  ci_methods : (string * string * bool * bool) list;
}

type t = string -> class_info option

val info_of_classfile : Bytecode.Classfile.t -> class_info
val of_classes : Bytecode.Classfile.t list -> t
val empty : t

val extend : t -> Bytecode.Classfile.t list -> t
(** Extend an oracle with additional classes (e.g. the class under
    verification, so self-references resolve). *)

val find_field : t -> string -> string -> (string * bool) option
(** Field declared directly on the class: (descriptor, is_static). *)

val lookup_field :
  t ->
  string ->
  string ->
  [ `Found of string * string * bool * bool | `Absent | `Unknown ]
(** Field lookup through the superclass chain; [`Unknown] when the walk
    escapes the oracle's knowledge. Found yields
    (declaring class, descriptor, is_static, is_private). *)

val lookup_method :
  t ->
  string ->
  string ->
  string ->
  [ `Found of string * bool * bool | `Absent | `Unknown ]
(** Method lookup through the superclass chain. Found yields
    (declaring class, is_static, is_private). *)

val is_subclass : t -> sub:string -> super:string -> [ `Yes | `No | `Unknown ]
(** Three-valued subtype query over possibly-unknown hierarchies.
    Arrays are covariant; every reference widens to Object. *)

val elem_of : string -> string option
