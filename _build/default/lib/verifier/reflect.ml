(* The reflection service of §4.3.

   The paper recounts replacing a slow reflection path with a service
   that "adds self-describing attributes to classes": the proxy
   attaches a compact binary member table so that later services (and
   other proxies) can learn a class's exported interface without
   re-parsing its code — the anecdote's point being that binary
   rewriting can compensate for limitations in client performance and
   functionality.

   The attribute encodes exactly what the verifier's oracle needs:
   superclass, interfaces, flags, and the field/method tables. *)

module CF = Bytecode.Classfile

let attribute_name = "dvm.reflect"

exception Malformed of string

(* --- Binary encoding of a member table. --- *)

let encode_info (i : Oracle.class_info) : string =
  let w = Bytecode.Io.Writer.create () in
  Bytecode.Io.Writer.str w i.Oracle.ci_name;
  (match i.Oracle.ci_super with
  | None -> Bytecode.Io.Writer.u1 w 0
  | Some s ->
    Bytecode.Io.Writer.u1 w 1;
    Bytecode.Io.Writer.str w s);
  Bytecode.Io.Writer.u1 w (if i.Oracle.ci_final then 1 else 0);
  Bytecode.Io.Writer.u2 w (List.length i.Oracle.ci_interfaces);
  List.iter (Bytecode.Io.Writer.str w) i.Oracle.ci_interfaces;
  let member (name, desc, static, private_) =
    Bytecode.Io.Writer.str w name;
    Bytecode.Io.Writer.str w desc;
    Bytecode.Io.Writer.u1 w ((if static then 1 else 0) lor (if private_ then 2 else 0))
  in
  Bytecode.Io.Writer.u2 w (List.length i.Oracle.ci_fields);
  List.iter member i.Oracle.ci_fields;
  Bytecode.Io.Writer.u2 w (List.length i.Oracle.ci_methods);
  List.iter member i.Oracle.ci_methods;
  Bytecode.Io.Writer.contents w

let decode_info (data : string) : Oracle.class_info =
  let r = Bytecode.Io.Reader.of_string data in
  try
    let ci_name = Bytecode.Io.Reader.str r in
    let ci_super =
      match Bytecode.Io.Reader.u1 r with
      | 0 -> None
      | 1 -> Some (Bytecode.Io.Reader.str r)
      | k -> raise (Malformed (Printf.sprintf "bad super flag %d" k))
    in
    let ci_final = Bytecode.Io.Reader.u1 r = 1 in
    let rec read_n n f acc =
      if n = 0 then List.rev acc else read_n (n - 1) f (f () :: acc)
    in
    let member () =
      let name = Bytecode.Io.Reader.str r in
      let desc = Bytecode.Io.Reader.str r in
      let bits = Bytecode.Io.Reader.u1 r in
      (name, desc, bits land 1 <> 0, bits land 2 <> 0)
    in
    let ci_interfaces =
      read_n (Bytecode.Io.Reader.u2 r) (fun () -> Bytecode.Io.Reader.str r) []
    in
    let ci_fields = read_n (Bytecode.Io.Reader.u2 r) member [] in
    let ci_methods = read_n (Bytecode.Io.Reader.u2 r) member [] in
    if not (Bytecode.Io.Reader.at_end r) then
      raise (Malformed "trailing bytes in reflect attribute");
    { Oracle.ci_name; ci_super; ci_interfaces; ci_final; ci_fields; ci_methods }
  with Bytecode.Io.Truncated msg -> raise (Malformed msg)

(* --- Service surface. --- *)

(* Attach the self-describing attribute. Idempotent: re-running the
   filter refreshes the table (e.g. after other services add guard
   fields). *)
let annotate (cf : CF.t) : CF.t =
  CF.with_attribute cf attribute_name
    (encode_info (Oracle.info_of_classfile cf))

let read (cf : CF.t) : Oracle.class_info option =
  match CF.find_attribute cf attribute_name with
  | None -> None
  | Some data -> (
    match decode_info data with
    | info -> Some info
    | exception Malformed _ -> None)

(* The service as a proxy filter; placed last in the stack so the
   attribute describes the fully transformed class. *)
let filter () = Rewrite.Filter.make ~name:"reflect" annotate

(* An oracle over annotated class bytes: the fast path the §4.3
   anecdote describes. For annotated classes, only the attribute is
   decoded; unannotated classes fall back to a full parse. *)
let oracle_of_bytes (fetch : string -> string option) : Oracle.t =
  let cache = Hashtbl.create 64 in
  fun name ->
    match Hashtbl.find_opt cache name with
    | Some v -> v
    | None ->
      let v =
        match fetch name with
        | None -> None
        | Some bytes -> (
          (* fast path: pull only the attributes, skipping code *)
          match
            List.assoc_opt attribute_name
              (Bytecode.Decode.class_attributes_of_bytes bytes)
          with
          | Some data -> (
            match decode_info data with
            | info -> Some info
            | exception Malformed _ -> None)
          | None -> (
            match Bytecode.Decode.class_of_bytes bytes with
            | cf -> Some (Oracle.info_of_classfile cf)
            | exception Bytecode.Decode.Format_error _ -> None)
          | exception Bytecode.Decode.Format_error _ -> None)
      in
      Hashtbl.replace cache name v;
      v
