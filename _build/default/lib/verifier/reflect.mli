(** The reflection service of §4.3.

    Attaches a compact, self-describing binary member table to classes
    so later services (and other proxies) can learn a class's exported
    interface without re-parsing its code — the paper's example of
    binary rewriting compensating for slow client interfaces. *)

val attribute_name : string

exception Malformed of string

val encode_info : Oracle.class_info -> string
val decode_info : string -> Oracle.class_info

val annotate : Bytecode.Classfile.t -> Bytecode.Classfile.t
(** Attach (or refresh) the self-describing attribute. *)

val read : Bytecode.Classfile.t -> Oracle.class_info option
(** [None] when the attribute is absent or malformed. *)

val filter : unit -> Rewrite.Filter.t
(** Place last in the stack so the attribute describes the fully
    transformed class. *)

val oracle_of_bytes : (string -> string option) -> Oracle.t
(** An oracle over annotated class bytes; annotated classes decode only
    the attribute's table, others fall back to a full parse. Results
    are memoized. *)
