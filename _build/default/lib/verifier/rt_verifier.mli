(** The dynamic component of the distributed verification service.

    A small runtime class ([dvm/RTVerifier]) whose natives perform the
    deferred link-phase checks — a descriptor lookup and a string
    comparison against the client's class registry (§3.1). *)

val class_name : string
val desc_check_class : string
val desc_check_subclass : string
val desc_check_member : string

val runtime_class : unit -> Bytecode.Classfile.t

type stats = {
  mutable dynamic_checks : int;  (** deferred checks executed *)
  mutable failures : int;
}

val install : Jvm.Vmstate.t -> stats
(** Register the runtime class and its natives in a client VM. *)
