(** The static verification service (§3.1).

    Runs phases 1–3 against an environment oracle, collects the
    assumptions the class makes about unknown classes, and rewrites the
    class into {e self-verifying} form: methods with deferred
    assumptions get the guarded Figure-3 prologue invoking
    [dvm/RTVerifier], and class-wide assumptions are checked from an
    injected [<clinit>] prologue. *)

type stats = {
  sv_static_checks : int;  (** checks performed at the server *)
  sv_deferred : int;  (** runtime check calls injected *)
  sv_guarded_methods : int;
}

type outcome =
  | Verified of Bytecode.Classfile.t * stats
  | Rejected of Verror.t list * stats

val guard_field_name : string -> string -> string

val verify : oracle:Oracle.t -> Bytecode.Classfile.t -> outcome

(** Accumulated service statistics, as read by the remote
    administration console. *)
type counters = {
  mutable total_static_checks : int;
  mutable total_deferred : int;
  mutable classes_verified : int;
  mutable classes_rejected : int;
}

val fresh_counters : unit -> counters

val filter : ?counters:counters -> oracle:Oracle.t -> unit -> Rewrite.Filter.t
(** The service as a proxy filter; rejection raises
    {!Rewrite.Filter.Rejected}, which the proxy converts into an
    error-propagation class ({!Error_class}). *)
