(* Verification phases 1 and 2.

   Phase 1 checks that the class file is internally consistent:
   constant-pool entries have the right shapes, descriptors parse,
   members are not duplicated, access flags make sense.

   Phase 2 checks instruction integrity per method: branch targets and
   local indices in range, constant-pool operands of the right kind,
   execution cannot fall off the end of the code, exception tables
   well-formed, declared stack/locals bounds sane. *)

module CF = Bytecode.Classfile
module CP = Bytecode.Cp
module I = Bytecode.Instr
module D = Bytecode.Descriptor

let max_code_length = 65535
let max_locals_limit = 65535
let max_stack_limit = 65535

type 'a collector = { mutable errors : Verror.t list; mutable checks : int }

let err c ?meth ?idx ~cls fmt =
  Format.kasprintf
    (fun msg -> c.errors <- Verror.make ?meth ?idx ~cls msg :: c.errors)
    fmt

let checked c = c.checks <- c.checks + 1

(* --- Phase 1: class-file consistency. --- *)

let check_pool c ~cls (pool : CP.t) =
  let n = CP.size pool in
  let utf8_ok i = i > 0 && i < n && (match pool.(i) with CP.Utf8 _ -> true | _ -> false) in
  let class_ok i =
    i > 0 && i < n && (match pool.(i) with CP.Class u -> utf8_ok u | _ -> false)
  in
  let nat_ok i ~want_method =
    i > 0 && i < n
    &&
    match pool.(i) with
    | CP.Name_and_type (nm, dsc) ->
      utf8_ok nm && utf8_ok dsc
      &&
      let d = CP.get_utf8 pool dsc in
      if want_method then D.valid_method_descriptor d
      else D.valid_field_descriptor d
    | _ -> false
  in
  for i = 1 to n - 1 do
    checked c;
    match pool.(i) with
    | CP.Utf8 _ | CP.Int_const _ -> ()
    | CP.Class u -> if not (utf8_ok u) then err c ~cls "pool %d: Class -> bad Utf8 %d" i u
    | CP.Str u -> if not (utf8_ok u) then err c ~cls "pool %d: Str -> bad Utf8 %d" i u
    | CP.Fieldref (cl, nt) ->
      if not (class_ok cl) then err c ~cls "pool %d: Fieldref -> bad Class %d" i cl;
      if not (nat_ok nt ~want_method:false) then
        err c ~cls "pool %d: Fieldref -> bad NameAndType %d" i nt
    | CP.Methodref (cl, nt) ->
      if not (class_ok cl) then err c ~cls "pool %d: Methodref -> bad Class %d" i cl;
      if not (nat_ok nt ~want_method:true) then
        err c ~cls "pool %d: Methodref -> bad NameAndType %d" i nt
    | CP.Name_and_type (nm, dsc) ->
      if not (utf8_ok nm && utf8_ok dsc) then
        err c ~cls "pool %d: NameAndType -> bad Utf8" i
  done

let check_members c (cf : CF.t) =
  let cls = cf.CF.name in
  let seen_fields = Hashtbl.create 16 in
  List.iter
    (fun f ->
      checked c;
      if not (D.valid_field_descriptor f.CF.f_desc) then
        err c ~cls "field %s: bad descriptor %S" f.CF.f_name f.CF.f_desc;
      if Hashtbl.mem seen_fields f.CF.f_name then
        err c ~cls "duplicate field %s" f.CF.f_name;
      Hashtbl.replace seen_fields f.CF.f_name ())
    cf.CF.fields;
  let seen_meths = Hashtbl.create 16 in
  List.iter
    (fun m ->
      checked c;
      let key = m.CF.m_name ^ m.CF.m_desc in
      if not (D.valid_method_descriptor m.CF.m_desc) then
        err c ~cls "method %s: bad descriptor %S" m.CF.m_name m.CF.m_desc;
      if Hashtbl.mem seen_meths key then err c ~cls "duplicate method %s" key;
      Hashtbl.replace seen_meths key ();
      let abstract = CF.has_flag m.CF.m_flags CF.Abstract in
      let native = CF.has_flag m.CF.m_flags CF.Native in
      (match m.CF.m_code with
      | None ->
        if not (abstract || native) then
          err c ~cls "method %s has no code and is neither abstract nor native"
            key
      | Some _ ->
        if abstract || native then
          err c ~cls "abstract/native method %s has code" key);
      if abstract && CF.has_flag m.CF.m_flags CF.Final then
        err c ~cls "method %s is abstract and final" key;
      if
        String.equal m.CF.m_name "<init>"
        && CF.has_flag m.CF.m_flags CF.Static
      then err c ~cls "constructor %s is static" key)
    cf.CF.methods;
  checked c;
  if String.equal cf.CF.name "" then err c ~cls "empty class name";
  if CF.has_flag cf.CF.c_flags CF.Abstract && CF.has_flag cf.CF.c_flags CF.Final
  then err c ~cls "class is abstract and final";
  match cf.CF.super with
  | None ->
    if not (String.equal cf.CF.name CF.java_lang_object) then
      err c ~cls "missing superclass"
  | Some s -> if String.equal s "" then err c ~cls "empty superclass name"

(* --- Phase 2: instruction integrity. --- *)

let check_code c ~cls ~meth (pool : CP.t) (code : CF.code) =
  let n = Array.length code.CF.instrs in
  let e fmt = err c ~cls ~meth fmt in
  let e_at idx fmt = err c ~cls ~meth ~idx fmt in
  checked c;
  if n = 0 then e "empty code";
  if n > max_code_length then e "code too long (%d)" n;
  if code.CF.max_locals < 0 || code.CF.max_locals > max_locals_limit then
    e "bad max_locals %d" code.CF.max_locals;
  if code.CF.max_stack < 0 || code.CF.max_stack > max_stack_limit then
    e "bad max_stack %d" code.CF.max_stack;
  let target_ok t = t >= 0 && t < n in
  let pool_fieldref idx =
    match CP.get_fieldref pool idx with
    | _ -> true
    | exception (CP.Invalid_index _ | CP.Wrong_kind _) -> false
  in
  let pool_methodref idx =
    match CP.get_methodref pool idx with
    | _ -> true
    | exception (CP.Invalid_index _ | CP.Wrong_kind _) -> false
  in
  let pool_class idx =
    match CP.get_class_name pool idx with
    | _ -> true
    | exception (CP.Invalid_index _ | CP.Wrong_kind _) -> false
  in
  let pool_string idx =
    match CP.get_string pool idx with
    | _ -> true
    | exception (CP.Invalid_index _ | CP.Wrong_kind _) -> false
  in
  let local_ok l = l >= 0 && l < code.CF.max_locals in
  Array.iteri
    (fun idx insn ->
      checked c;
      List.iter
        (fun t -> if not (target_ok t) then e_at idx "branch target %d out of range" t)
        (I.targets insn);
      (match insn with
      | I.Iload l | I.Istore l | I.Aload l | I.Astore l | I.Iinc (l, _)
      | I.Ret l ->
        if not (local_ok l) then e_at idx "local %d out of range" l
      | I.Ldc_str k -> if not (pool_string k) then e_at idx "bad string index %d" k
      | I.Getstatic k | I.Putstatic k | I.Getfield k | I.Putfield k ->
        if not (pool_fieldref k) then e_at idx "bad fieldref index %d" k
      | I.Invokevirtual k | I.Invokestatic k | I.Invokespecial k
      | I.Invokeinterface k ->
        if not (pool_methodref k) then e_at idx "bad methodref index %d" k
      | I.New k | I.Anewarray k | I.Checkcast k | I.Instanceof k ->
        if not (pool_class k) then e_at idx "bad class index %d" k
      | I.Nop | I.Iconst _ | I.Aconst_null | I.Iadd | I.Isub | I.Imul | I.Idiv
      | I.Irem | I.Ineg | I.Ishl | I.Ishr | I.Iand | I.Ior | I.Ixor | I.Dup
      | I.Dup_x1 | I.Pop | I.Swap | I.Goto _ | I.If_icmp _ | I.If_z _
      | I.If_acmp _ | I.If_null _ | I.Jsr _ | I.Tableswitch _ | I.Ireturn
      | I.Areturn | I.Return | I.Newarray | I.Arraylength | I.Iaload
      | I.Iastore | I.Aaload | I.Aastore | I.Athrow | I.Monitorenter
      | I.Monitorexit ->
        ());
      (* Execution must not fall off the end. *)
      if idx = n - 1 && not (I.is_terminator insn) then
        e_at idx "execution falls off the end of the code")
    code.CF.instrs;
  List.iter
    (fun h ->
      checked c;
      if not (h.CF.h_start >= 0 && h.CF.h_start < h.CF.h_end && h.CF.h_end <= n)
      then e "bad handler range [%d, %d)" h.CF.h_start h.CF.h_end;
      if not (target_ok h.CF.h_target) then
        e "handler target %d out of range" h.CF.h_target;
      match h.CF.h_catch with
      | Some "" -> e "empty catch type"
      | Some _ | None -> ())
    code.CF.handlers

let run (cf : CF.t) =
  let c = { errors = []; checks = 0 } in
  let cls = cf.CF.name in
  check_pool c ~cls cf.CF.pool;
  check_members c cf;
  List.iter
    (fun m ->
      match m.CF.m_code with
      | None -> ()
      | Some code ->
        let meth = m.CF.m_name ^ m.CF.m_desc in
        (* Parameters must fit in the declared locals. *)
        (match D.method_sig_of_string m.CF.m_desc with
        | sg ->
          let needed =
            D.param_slots sg + if CF.has_flag m.CF.m_flags CF.Static then 0 else 1
          in
          checked c;
          if code.CF.max_locals < needed then
            err c ~cls ~meth "max_locals %d < parameter slots %d"
              code.CF.max_locals needed
        | exception D.Bad_descriptor _ -> () (* already reported *));
        check_code c ~cls ~meth cf.CF.pool code)
    cf.CF.methods;
  (List.rev c.errors, c.checks)
