(** Verification phases 1 and 2 (§3.1).

    Phase 1: the class file is internally consistent — constant-pool
    entry shapes, descriptor syntax, duplicate members, flag sanity.

    Phase 2: instruction integrity per method — branch targets and
    local indices in range, constant-pool operands of the right kind,
    execution cannot fall off the end, exception tables well-formed. *)

val max_code_length : int
val max_locals_limit : int
val max_stack_limit : int

val run : Bytecode.Classfile.t -> Verror.t list * int
(** Returns the errors found and the number of checks performed. *)
