(* Verification errors, located by method and instruction where
   applicable. *)

type t = {
  e_class : string;
  e_method : string option; (* name ^ descriptor *)
  e_idx : int option; (* instruction index *)
  e_msg : string;
}

let make ?meth ?idx ~cls msg =
  { e_class = cls; e_method = meth; e_idx = idx; e_msg = msg }

let pp ppf e =
  Format.fprintf ppf "%s" e.e_class;
  (match e.e_method with
  | Some m -> Format.fprintf ppf ".%s" m
  | None -> ());
  (match e.e_idx with Some i -> Format.fprintf ppf "@@%d" i | None -> ());
  Format.fprintf ppf ": %s" e.e_msg

let to_string e = Format.asprintf "%a" pp e
