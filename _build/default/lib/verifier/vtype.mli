(** The verification type lattice for the phase-3 dataflow analysis. *)

type t =
  | Top  (** unusable join of incompatible slots *)
  | VInt
  | Null
  | Ref of string  (** class name or array name like ["\[I"] *)
  | Uninit of { pc : int; cls : string }
      (** result of [new] at instruction [pc], constructor not yet run *)
  | Uninit_this of string  (** [this] in [<init>] before the super call *)
  | Retaddr of int  (** return address for subroutine entry [int] *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val name_of_desc_ty : Bytecode.Descriptor.ty -> string
val of_desc_ty : Bytecode.Descriptor.ty -> t
val of_desc_string : string -> t
val is_reference : t -> bool

val name_assignable :
  Oracle.t ->
  Assumptions.t ->
  scope:Assumptions.scope ->
  sub:string ->
  super:string ->
  bool
(** Decide [sub <: super], recording an assumption and answering
    optimistically when the hierarchy escapes the oracle — the deferral
    mechanism of §3.1. *)

val assignable_to_class :
  Oracle.t -> Assumptions.t -> scope:Assumptions.scope -> t -> target:string -> bool

val assignable_to_desc :
  Oracle.t ->
  Assumptions.t ->
  scope:Assumptions.scope ->
  t ->
  Bytecode.Descriptor.ty ->
  bool

val common_super : Oracle.t -> string -> string -> string
val merge : Oracle.t -> t -> t -> t
(** Join (least upper bound). *)
