lib/workloads/appgen.ml: Array Bytecode Float Hashtbl List Printf
