lib/workloads/appgen.mli: Bytecode
