lib/workloads/applets.ml: Appgen Bytecode Float Hashtbl List Opt Printf
