lib/workloads/applets.mli: Bytecode Opt
