lib/workloads/apps.ml: Appgen Hashtbl
