lib/workloads/apps.mli: Appgen
