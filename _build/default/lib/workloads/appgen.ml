(* Parameterized synthetic application generator.

   The paper's benchmarks (Figure 5) are real Java applications; we
   regenerate stand-ins that match their externally visible parameters
   — class count, code volume, and a kernel whose instruction mix
   resembles the original (table-driven scanning, parser stacks,
   compile loops, a TPC-A-style transaction mix, iterative solving) —
   because the services operate on class files and execution traces,
   not on application semantics (see DESIGN.md).

   Generation is deterministic in the spec's seed. Every generated
   class passes the verifier, and every app prints a final checksum so
   behaviour preservation under rewriting is checkable. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile
module I = Bytecode.Instr

type kernel = Lexer | Parser | Compiler | Database | Solver

type spec = {
  name : string;
  prefix : string; (* class-name prefix, e.g. "jlex/" *)
  classes : int;
  target_bytes : int; (* total encoded size to approximate (Fig. 5) *)
  work_iters : int; (* driver loop count: controls run length *)
  kernel : kernel;
  cold_fraction : float; (* fraction of generated methods never called *)
  seed : int;
}

(* Small deterministic PRNG so workloads are reproducible. *)
type rng = { mutable state : int }

let rng seed = { state = (seed * 2654435761) land 0x3fffffff }

let next r bound =
  r.state <- ((r.state * 1103515245) + 12345) land 0x3fffffff;
  (r.state lsr 13) mod bound

let static = [ CF.Public; CF.Static ]

(* --- Body fragments. --- *)

(* A deterministic arithmetic scramble on local 0, [n] operations
   long. *)
let arith_chain r n =
  let ops = [| B.Add; B.Sub; B.Mul; B.Xor; B.Or; B.And |] in
  List.concat
    (List.init n (fun _ ->
         [ B.Iload 0; B.Const (1 + next r 97); ops.(next r 6); B.Istore 0 ]))

(* A counted loop running [body] [count] times; the counter lives in
   local [counter] (default 1). Local 0 is the accumulator by
   convention. *)
let counted_loop ?(counter = 1) ~label ~count body =
  [ B.Const count; B.Istore counter; B.Label (label ^ "_top");
    B.Iload counter; B.If_z (I.Le, label ^ "_done") ]
  @ body
  @ [ B.Inc (counter, -1); B.Goto (label ^ "_top"); B.Label (label ^ "_done") ]

(* --- Compute kernels: one hot static method `step(I)I` per flavor,
   placed on the app's Kernel class. Each consumes its argument and
   returns an updated accumulator, exercising a distinct mix. --- *)

let lexer_kernel =
  (* Table-driven scanning: walk a synthetic input array through a
     tableswitch-based state machine. *)
  B.meth ~flags:static "step" "(I)I"
    ([
       (* input = new int[64]; fill with (i*7+arg) % 5 *)
       B.Const 64;
       B.Newarray;
       B.Astore 2;
     ]
    @ counted_loop ~label:"fill" ~count:64
        [
          B.Aload 2;
          B.Iload 1;
          B.Const 1;
          B.Sub;
          B.Iload 1;
          B.Const 7;
          B.Mul;
          B.Iload 0;
          B.Add;
          B.Const 5;
          B.Rem;
          B.Iastore;
        ]
    @ [ B.Const 0; B.Istore 3 (* state *) ]
    @ counted_loop ~label:"scan" ~count:64
        ([
           B.Aload 2;
           B.Iload 1;
           B.Const 1;
           B.Sub;
           B.Iaload;
           B.Switch (0, [ "s0"; "s1"; "s2"; "s3"; "s4" ], "sd");
           B.Label "s0";
           B.Iload 3; B.Const 1; B.Add; B.Istore 3; B.Goto "merge";
           B.Label "s1";
           B.Iload 3; B.Const 3; B.Mul; B.Istore 3; B.Goto "merge";
           B.Label "s2";
           B.Iload 3; B.Const 5; B.Xor; B.Istore 3; B.Goto "merge";
           B.Label "s3";
           B.Iload 3; B.Const 2; B.Shl; B.Istore 3; B.Goto "merge";
           B.Label "s4";
           B.Iload 3; B.Const 7; B.Sub; B.Istore 3; B.Goto "merge";
           B.Label "sd";
           B.Const 0; B.Istore 3;
           B.Label "merge";
         ])
    @ [ B.Iload 0; B.Iload 3; B.Add; B.Ireturn ])

let parser_kernel =
  (* Shift/reduce over an explicit int-array stack. *)
  B.meth ~flags:static "step" "(I)I"
    ([ B.Const 32; B.Newarray; B.Astore 2; B.Const 0; B.Istore 3 (* sp *) ]
    @ counted_loop ~label:"shift" ~count:48
        [
          (* push (arg + i) mod 11; on overflow reduce: pop two, push sum *)
          B.Iload 3;
          B.Const 31;
          B.If_icmp (I.Lt, "push");
          (* reduce *)
          B.Aload 2;
          B.Const 0;
          B.Aload 2;
          B.Const 0;
          B.Iaload;
          B.Aload 2;
          B.Const 1;
          B.Iaload;
          B.Add;
          B.Iastore;
          B.Const 1;
          B.Istore 3;
          B.Goto "shifted";
          B.Label "push";
          B.Aload 2;
          B.Iload 3;
          B.Iload 0;
          B.Iload 1;
          B.Add;
          B.Const 11;
          B.Rem;
          B.Iastore;
          B.Inc (3, 1);
          B.Label "shifted";
        ]
    @ [
        (* fold the stack *)
        B.Const 0; B.Istore 4;
      ]
    @ counted_loop ~label:"fold" ~count:16
        [
          B.Iload 4;
          B.Aload 2;
          B.Iload 1;
          B.Const 1;
          B.Sub;
          B.Iaload;
          B.Add;
          B.Istore 4;
        ]
    @ [ B.Iload 0; B.Iload 4; B.Xor; B.Ireturn ])

let compiler_kernel =
  (* Pizza-like: string building plus arithmetic, heavier on calls. *)
  B.meth ~flags:static "step" "(I)I"
    ([
       B.Iload 0;
       B.Invokestatic ("java/lang/String", "valueOf", "(I)Ljava/lang/String;");
       B.Astore 2;
       B.Aload 2;
       B.Push_str "x";
       B.Invokevirtual
         ("java/lang/String", "concat", "(Ljava/lang/String;)Ljava/lang/String;");
       B.Invokevirtual ("java/lang/String", "hashCode", "()I");
       B.Istore 3;
     ]
    @ counted_loop ~label:"opt" ~count:40
        [
          B.Iload 0; B.Iload 3; B.Xor; B.Const 3; B.Mul; B.Const 65535; B.And;
          B.Istore 0;
        ]
    @ [ B.Iload 0; B.Ireturn ])

let database_kernel =
  (* TPC-A-like: pick an account pseudo-randomly, update balances held
     in object fields, track a teller total. *)
  B.meth ~flags:static "step" "(I)I"
    ([
       (* acct = new Account(); *)
       B.New "wl/Account";
       B.Dup;
       B.Invokespecial ("wl/Account", "<init>", "()V");
       B.Astore 2;
     ]
    @ counted_loop ~label:"tx" ~count:20
        [
          (* acct.balance += (arg + i) % 97 - 48 *)
          B.Aload 2;
          B.Aload 2;
          B.Getfield ("wl/Account", "balance", "I");
          B.Iload 0;
          B.Iload 1;
          B.Add;
          B.Const 97;
          B.Rem;
          B.Const 48;
          B.Sub;
          B.Add;
          B.Putfield ("wl/Account", "balance", "I");
        ]
    @ [
        B.Iload 0;
        B.Aload 2;
        B.Getfield ("wl/Account", "balance", "I");
        B.Add;
        B.Ireturn;
      ])

let solver_kernel =
  (* Cassowary-like: iterative relaxation over an int array until the
     residual settles. *)
  B.meth ~flags:static "step" "(I)I"
    ([ B.Const 16; B.Newarray; B.Astore 2 ]
    @ counted_loop ~label:"seed" ~count:16
        [
          B.Aload 2; B.Iload 1; B.Const 1; B.Sub; B.Iload 0; B.Iload 1;
          B.Mul; B.Const 31; B.Rem; B.Iastore;
        ]
    @ counted_loop ~label:"relax" ~count:24
        ([ B.Const 1; B.Istore 3 ]
        @ counted_loop ~counter:4 ~label:"sweep" ~count:14
            [
              (* a[i] = (a[i-1] + a[i+1]) / 2, via local 3 as index *)
              B.Aload 2;
              B.Iload 3;
              B.Aload 2;
              B.Iload 3;
              B.Const 1;
              B.Sub;
              B.Iaload;
              B.Aload 2;
              B.Iload 3;
              B.Const 1;
              B.Add;
              B.Iaload;
              B.Add;
              B.Const 2;
              B.Div;
              B.Iastore;
              B.Inc (3, 1);
            ])
    @ [ B.Iload 0; B.Aload 2; B.Const 7; B.Iaload; B.Add; B.Ireturn ])

let kernel_method = function
  | Lexer -> lexer_kernel
  | Parser -> parser_kernel
  | Compiler -> compiler_kernel
  | Database -> database_kernel
  | Solver -> solver_kernel

(* The account class used by the database kernel. *)
let account_class =
  B.class_ "wl/Account"
    ~fields:[ B.field "balance" "I"; B.field "history" "I" ]
    [ B.default_init "java/lang/Object" ]

(* --- Class synthesis. --- *)

(* A padding method: realistic-looking arithmetic code sized to fill
   the class towards its byte budget. Cold methods are identical in
   shape but never invoked by the driver. *)
let filler_method r ~name ~ops =
  B.meth ~flags:static name "(I)I"
    ([ B.Iload 0; B.Istore 0 ] @ arith_chain r ops @ [ B.Iload 0; B.Ireturn ])

(* A worker class: `hot(I)I` chains the per-flavor computation and some
   local arithmetic; cold methods pad the class to its budget. *)
let worker_class spec r idx ~budget =
  let name = Printf.sprintf "%sC%d" spec.prefix idx in
  let hot =
    B.meth ~flags:static "hot" "(I)I"
      ([ B.Iload 0 ]
      @ [
          B.Invokestatic (spec.prefix ^ "Kernel", "step", "(I)I");
          B.Istore 0;
        ]
      @ arith_chain r (4 + next r 8)
      @ [ B.Iload 0; B.Ireturn ])
  in
  (* Estimate bytes per filler op (~4 instructions of ~3.6 bytes). *)
  let filler_bytes_per_op = 15 in
  let overhead = 420 in
  let pad_total = max 0 ((budget - overhead) / filler_bytes_per_op) in
  (* The cold fraction is real: cold methods hold that share of the
     padding bytes and are never invoked by the driver, so a first-use
     profile measures spec.cold_fraction of the code as dead — the
     paper's 10-30% band. *)
  let cold_ops = int_of_float (spec.cold_fraction *. Float.of_int pad_total) in
  let warm_ops = max 4 (pad_total - cold_ops) in
  let n_warm = 2 and n_cold = 2 in
  let warm =
    List.init n_warm (fun i ->
        filler_method r ~name:(Printf.sprintf "warm%d" i)
          ~ops:(max 2 (warm_ops / n_warm)))
  in
  let cold =
    List.init n_cold (fun i ->
        filler_method r ~name:(Printf.sprintf "cold%d" i)
          ~ops:(max 2 (cold_ops / n_cold)))
  in
  ( B.class_ name ((hot :: warm) @ cold),
    name,
    List.init n_warm (fun i -> Printf.sprintf "warm%d" i) )

(* The driver: main() loops work_iters times, calling each worker's hot
   path round-robin plus one warm filler, then prints a checksum. *)
let driver_class spec worker_names =
  let name = spec.prefix ^ "Main" in
  let calls =
    List.concat_map
      (fun (w, warms) ->
        B.Invokestatic (w, "hot", "(I)I")
        :: List.map (fun warm -> B.Invokestatic (w, warm, "(I)I")) warms)
      worker_names
  in
  B.class_ name
    [
      B.meth ~flags:static "main" "()V"
        ([ B.Const 1; B.Istore 0 ]
        @ counted_loop ~label:"work" ~count:spec.work_iters
            ([ B.Iload 0 ] @ calls @ [ B.Istore 0 ])
        @ [
            B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
            B.Iload 0;
            B.Invokevirtual ("java/io/OutputStream", "println", "(I)V");
            B.Return;
          ]);
    ]

type app = {
  spec : spec;
  entry : string; (* class whose main() runs the workload *)
  classes : Bytecode.Classfile.t list;
  total_bytes : int;
}

let build spec : app =
  let r = rng spec.seed in
  let kernel_cls =
    B.class_ (spec.prefix ^ "Kernel") [ kernel_method spec.kernel ]
  in
  let n_workers = max 1 (spec.classes - 2) in
  let fixed =
    Bytecode.Encode.class_size kernel_cls
    + (match spec.kernel with Database -> Bytecode.Encode.class_size account_class | _ -> 0)
  in
  let budget = max 500 ((spec.target_bytes - fixed) * 115 / 100 / n_workers) in
  let workers = List.init n_workers (fun i -> worker_class spec r i ~budget) in
  let worker_names = List.map (fun (_, n, warms) -> (n, warms)) workers in
  let driver = driver_class spec worker_names in
  let classes =
    (driver :: kernel_cls :: List.map (fun (c, _, _) -> c) workers)
    @ (match spec.kernel with Database -> [ account_class ] | _ -> [])
  in
  {
    spec;
    entry = spec.prefix ^ "Main";
    classes;
    total_bytes =
      List.fold_left (fun a c -> a + Bytecode.Encode.class_size c) 0 classes;
  }

let class_bytes app =
  List.map
    (fun c -> (c.Bytecode.Classfile.name, Bytecode.Encode.class_to_bytes c))
    app.classes

(* An origin function serving the app's classes, as a web server
   would. *)
let origin app : string -> string option =
  let tbl = Hashtbl.create 32 in
  List.iter (fun (n, b) -> Hashtbl.replace tbl n b) (class_bytes app);
  fun name -> Hashtbl.find_opt tbl name
