(** Parameterized synthetic application generator.

    Regenerates stand-ins for the paper's Figure-5 benchmarks matching
    their externally visible parameters — class count, code volume, a
    kernel whose instruction mix resembles the original, and a real
    never-invoked (cold) code fraction — because the DVM services
    operate on class files and execution traces, not application
    semantics (DESIGN.md). Deterministic in the seed; all generated
    classes pass the verifier; every app prints a final checksum. *)

type kernel = Lexer | Parser | Compiler | Database | Solver

type spec = {
  name : string;
  prefix : string;  (** class-name prefix, e.g. ["jlex/"] *)
  classes : int;
  target_bytes : int;  (** total encoded size to approximate (Fig. 5) *)
  work_iters : int;  (** driver loop count: controls run length *)
  kernel : kernel;
  cold_fraction : float;  (** share of padding code never invoked *)
  seed : int;
}

type app = {
  spec : spec;
  entry : string;  (** class whose [main()] runs the workload *)
  classes : Bytecode.Classfile.t list;
  total_bytes : int;
}

val build : spec -> app

val class_bytes : app -> (string * string) list
val origin : app -> string -> string option
(** Serve the app's classes as a web server would. *)
