(* The Internet applet population of §4.1.2 / Figure 10, and the six
   graphical applications of the §5 startup study (Figures 11–12).

   The 100-applet sample is regenerated with a deterministic
   long-tailed size distribution whose mean matches the fetch-latency
   arithmetic of §4.1.2, and per-applet WAN latencies matching the
   reported mean (2198 ms) and large standard deviation (3752 ms).

   The six startup applications are analytic models: their startup
   transfer sizes are back-fitted from Figure 11's low-bandwidth
   intercepts, and their cold fractions sit in the 10–30 % band the
   paper reports for code that is downloaded but never invoked. *)

type applet = {
  ap_name : string;
  ap_bytes : int; (* class-file bytes *)
  ap_wan_latency_us : int; (* Internet fetch latency for this applet *)
}

(* Deterministic PRNG (distinct from Appgen's to keep streams
   independent). *)
let lcg seed =
  let state = ref (seed land 0x3fffffff) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    Float.of_int (!state lsr 7 land 0xffff) /. 65536.0

(* A long-tailed (log-uniformish) sample in [lo, hi]. *)
let long_tailed u ~lo ~hi =
  let x = u () in
  let lx = log (Float.of_int lo) and hx = log (Float.of_int hi) in
  int_of_float (exp (lx +. ((hx -. lx) *. x *. x)))

let population ?(n = 100) ?(seed = 42) () =
  let u = lcg seed in
  List.init n (fun i ->
      let bytes = long_tailed u ~lo:700 ~hi:12_000 in
      (* Latencies: mostly 0.3–2 s, occasionally much worse — mean
         ~2.2 s with a std well above the mean, like the AltaVista
         sample. *)
      let lat =
        let x = u () in
        if x < 0.75 then 300_000 + int_of_float (1_700_000.0 *. u ())
        else if x < 0.95 then 2_000_000 + int_of_float (6_000_000.0 *. u ())
        else 8_000_000 + int_of_float (10_000_000.0 *. u ())
      in
      { ap_name = Printf.sprintf "applet/A%03d" i; ap_bytes = bytes;
        ap_wan_latency_us = lat })

let mean_latency_ms pop =
  List.fold_left (fun a ap -> a +. Float.of_int ap.ap_wan_latency_us) 0.0 pop
  /. Float.of_int (List.length pop) /. 1000.0

let mean_bytes pop =
  List.fold_left (fun a ap -> a + ap.ap_bytes) 0 pop / List.length pop

(* Serve an applet as a single generated class of roughly the right
   size, so the proxy pipeline does real parse/verify/rewrite work on
   it. *)
let realize ap : Bytecode.Classfile.t =
  let spec =
    {
      Appgen.name = ap.ap_name;
      prefix = ap.ap_name ^ "/";
      classes = 3;
      target_bytes = ap.ap_bytes;
      work_iters = 1;
      kernel = Appgen.Compiler;
      cold_fraction = 0.2;
      seed = Hashtbl.hash ap.ap_name;
    }
  in
  let app = Appgen.build spec in
  (* The largest generated class carries the applet's code volume. *)
  List.fold_left
    (fun best c ->
      if Bytecode.Encode.class_size c > Bytecode.Encode.class_size best then c
      else best)
    (List.hd app.Appgen.classes)
    app.Appgen.classes

(* --- The §5 startup applications (Figures 11 and 12). --- *)

let startup_apps : Opt.Startup.app_model list =
  [
    {
      Opt.Startup.app_name = "Java WorkShop";
      startup_bytes = 3_200_000;
      requests = 120;
      cold_fraction = 0.28;
      client_startup_us = 2_500_000;
    };
    {
      Opt.Startup.app_name = "Java Studio";
      startup_bytes = 2_400_000;
      requests = 100;
      cold_fraction = 0.24;
      client_startup_us = 2_200_000;
    };
    {
      Opt.Startup.app_name = "Hot Java";
      startup_bytes = 1_400_000;
      requests = 70;
      cold_fraction = 0.20;
      client_startup_us = 1_800_000;
    };
    {
      Opt.Startup.app_name = "Net Charts";
      startup_bytes = 540_000;
      requests = 40;
      cold_fraction = 0.17;
      client_startup_us = 1_200_000;
    };
    {
      Opt.Startup.app_name = "CQ";
      startup_bytes = 220_000;
      requests = 25;
      cold_fraction = 0.13;
      client_startup_us = 900_000;
    };
    {
      Opt.Startup.app_name = "Animated UI";
      startup_bytes = 110_000;
      requests = 15;
      cold_fraction = 0.10;
      client_startup_us = 600_000;
    };
  ]
