(** The Internet applet population of §4.1.2 / Figure 10 and the six
    startup applications of §5 (Figures 11–12). See DESIGN.md for the
    calibration targets. *)

type applet = {
  ap_name : string;
  ap_bytes : int;
  ap_wan_latency_us : int;
}

val population : ?n:int -> ?seed:int -> unit -> applet list
val mean_latency_ms : applet list -> float
val mean_bytes : applet list -> int

val realize : applet -> Bytecode.Classfile.t
(** A real class of roughly the applet's size, so the pipeline does
    real parse/verify/rewrite work on it. *)

val startup_apps : Opt.Startup.app_model list
(** Analytic models of the six §5 GUI applications, back-fitted from
    Figure 11's low-bandwidth intercepts; cold fractions sit in the
    paper's 10–30 %% never-invoked band. *)
