(* The five benchmark applications of Figure 5, with the paper's size
   and class-count parameters. Iteration counts are calibrated so the
   simulated run times land in the magnitude range of Figure 6 under
   the cost model in lib/dvm/costs.ml. *)

let jlex =
  {
    Appgen.name = "jlex";
    prefix = "jlex/";
    classes = 20;
    target_bytes = 91 * 1024;
    work_iters = 51;
    kernel = Appgen.Lexer;
    cold_fraction = 0.25;
    seed = 101;
  }

let javacup =
  {
    Appgen.name = "javacup";
    prefix = "javacup/";
    classes = 35;
    target_bytes = 130 * 1024;
    work_iters = 69;
    kernel = Appgen.Parser;
    cold_fraction = 0.25;
    seed = 202;
  }

let pizza =
  {
    Appgen.name = "pizza";
    prefix = "pizza/";
    classes = 241;
    target_bytes = 825 * 1024;
    work_iters = 69;
    kernel = Appgen.Compiler;
    cold_fraction = 0.25;
    seed = 303;
  }

let instantdb =
  {
    Appgen.name = "instantdb";
    prefix = "instantdb/";
    classes = 70;
    target_bytes = 312 * 1024;
    work_iters = 135;
    kernel = Appgen.Database;
    cold_fraction = 0.25;
    seed = 404;
  }

let cassowary =
  {
    Appgen.name = "cassowary";
    prefix = "cassowary/";
    classes = 34;
    target_bytes = 85 * 1024;
    work_iters = 22;
    kernel = Appgen.Solver;
    cold_fraction = 0.25;
    seed = 505;
  }

let all_specs = [ jlex; javacup; pizza; instantdb; cassowary ]

let descriptions =
  [
    ("jlex", "Lexical analyzer generator");
    ("javacup", "LALR parser compiler");
    ("pizza", "Bytecode to native compiler");
    ("instantdb", "Relational database with a TPC-A like workload");
    ("cassowary", "Constraint satisfier");
  ]

(* Builds are deterministic; memoize so tests and benches share them. *)
let cache : (string, Appgen.app) Hashtbl.t = Hashtbl.create 8

let build spec =
  match Hashtbl.find_opt cache spec.Appgen.name with
  | Some app -> app
  | None ->
    let app = Appgen.build spec in
    Hashtbl.replace cache spec.Appgen.name app;
    app

(* A reduced variant for unit tests: same structure, shorter run. *)
let build_small spec =
  Appgen.build
    { spec with Appgen.work_iters = max 1 (spec.Appgen.work_iters / 20) }
