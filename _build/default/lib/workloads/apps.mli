(** The five benchmark applications of Figure 5, with the paper's size
    and class-count parameters; iteration counts calibrated so
    simulated run times land in Figure 6's magnitude range. *)

val jlex : Appgen.spec
val javacup : Appgen.spec
val pizza : Appgen.spec
val instantdb : Appgen.spec
val cassowary : Appgen.spec
val all_specs : Appgen.spec list
val descriptions : (string * string) list

val build : Appgen.spec -> Appgen.app
(** Memoized: benches and tests share one deterministic build. *)

val build_small : Appgen.spec -> Appgen.app
(** Same structure, ~20x shorter run; for unit tests. *)
