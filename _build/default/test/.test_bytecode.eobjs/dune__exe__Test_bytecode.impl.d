test/test_bytecode.ml: Alcotest Array Bytecode Bytes List Printf QCheck QCheck_alcotest String
