test/test_dsig.ml: Alcotest Bytecode Bytes Char Dsig List Printf QCheck QCheck_alcotest String
