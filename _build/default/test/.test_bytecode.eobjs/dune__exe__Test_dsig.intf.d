test/test_dsig.mli:
