test/test_dvm.ml: Alcotest Bytecode Bytes Dvm Int64 Jvm Lazy List Monitor Proxy Security Simnet String Verifier Workloads
