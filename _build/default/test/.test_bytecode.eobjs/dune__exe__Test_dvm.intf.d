test/test_dvm.mli:
