test/test_jit.ml: Alcotest Array Bytecode Float Int32 Jit Jvm List Monitor Option Printf QCheck QCheck_alcotest String
