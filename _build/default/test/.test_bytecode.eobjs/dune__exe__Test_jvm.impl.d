test/test_jvm.ml: Alcotest Array Bytecode Char Hashtbl Int32 Int64 Jvm List Printf String Workloads
