test/test_monitor.ml: Alcotest Bytecode Bytes Char Int64 Jvm List Monitor Printf String
