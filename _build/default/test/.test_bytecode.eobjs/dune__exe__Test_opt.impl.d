test/test_opt.ml: Alcotest Array Bytecode Float Hashtbl Jvm List Monitor Opt Option Printf QCheck QCheck_alcotest String Verifier Workloads
