test/test_proxy.ml: Alcotest Bytecode Dsig Hashtbl Int64 Jvm List Monitor Proxy Simnet String Verifier
