test/test_proxy.mli:
