test/test_rewrite.ml: Alcotest Array Bytecode Int32 Jvm List Option Printf QCheck QCheck_alcotest Rewrite
