test/test_security.ml: Alcotest Array Bytecode Char Hashtbl Int32 Jvm List QCheck QCheck_alcotest Security String
