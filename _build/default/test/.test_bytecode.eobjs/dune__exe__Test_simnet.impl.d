test/test_simnet.ml: Alcotest Int64 List QCheck QCheck_alcotest Simnet
