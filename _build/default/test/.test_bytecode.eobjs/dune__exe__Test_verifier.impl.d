test/test_verifier.ml: Alcotest Bytecode Bytes Int32 Jvm List Printf QCheck QCheck_alcotest Rewrite String Verifier
