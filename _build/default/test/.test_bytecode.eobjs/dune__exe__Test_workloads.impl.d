test/test_workloads.ml: Alcotest Bytecode Dvm Float Jvm Lazy List Opt Printf Security String Verifier Workloads
