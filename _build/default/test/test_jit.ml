(* Tests for the network compilation service: stack-to-register
   translation, register allocation validity, kernel execution
   equivalence against the interpreter, and the per-architecture
   service cache. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let check = Alcotest.check
let fail = Alcotest.fail
let static = [ CF.Public; CF.Static ]

let gcd_cls =
  B.class_ "K"
    [
      B.meth ~flags:static "gcd" "(II)I"
        [
          B.Label "top";
          B.Iload 1;
          B.If_z (Bytecode.Instr.Eq, "done");
          B.Iload 0;
          B.Iload 1;
          B.Rem;
          B.Iload 1;
          B.Istore 0;
          B.Istore 1;
          B.Goto "top";
          B.Label "done";
          B.Iload 0;
          B.Ireturn;
        ];
      B.meth ~flags:static "sumsq" "(I)I"
        [
          B.Const 0;
          B.Istore 1;
          B.Label "loop";
          B.Iload 0;
          B.If_z (Bytecode.Instr.Le, "done");
          B.Iload 1;
          B.Iload 0;
          B.Iload 0;
          B.Mul;
          B.Add;
          B.Istore 1;
          B.Inc (0, -1);
          B.Goto "loop";
          B.Label "done";
          B.Iload 1;
          B.Ireturn;
        ];
      B.meth ~flags:static "arr" "(I)I"
        [
          B.Iload 0;
          B.Newarray;
          B.Astore 1;
          B.Aload 1;
          B.Const 0;
          B.Const 5;
          B.Iastore;
          B.Aload 1;
          B.Const 0;
          B.Iaload;
          B.Aload 1;
          B.Arraylength;
          B.Add;
          B.Ireturn;
        ];
      B.meth ~flags:static "deep" "(I)I"
        (* stresses dup/swap translation *)
        [ B.Iload 0; B.Dup; B.Dup; B.Mul; B.Swap; B.Sub; B.Ireturn ];
    ]

let translate name desc =
  match CF.find_method gcd_cls name desc with
  | Some m -> Jit.Translate.translate_method gcd_cls.CF.pool m
  | None -> fail "method not found"

let interp_result name desc args =
  let vm = Jvm.Bootlib.fresh_vm () in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg gcd_cls;
  match
    Jvm.Interp.invoke vm ~cls:"K" ~name ~desc
      (List.map (fun n -> Jvm.Value.Int (Int32.of_int n)) args)
  with
  | Some (Jvm.Value.Int r) -> Int32.to_int r
  | _ -> fail "interp: no result"

let kernel_result ir args =
  match
    Jit.Exec.run ir (List.map (fun n -> Jit.Exec.Vint (Int32.of_int n)) args)
  with
  | Some (Jit.Exec.Vint r) -> Int32.to_int r
  | _ -> fail "kernel: no result"

let test_translation_equivalence () =
  let cases =
    [
      ("gcd", "(II)I", [ [ 252; 105 ]; [ 7; 13 ]; [ 13; 0 ]; [ 1; 1 ] ]);
      ("sumsq", "(I)I", [ [ 0 ]; [ 1 ]; [ 10 ]; [ 100 ] ]);
      ("arr", "(I)I", [ [ 3 ]; [ 10 ] ]);
      ("deep", "(I)I", [ [ 4 ]; [ 9 ]; [ -3 ] ]);
    ]
  in
  List.iter
    (fun (name, desc, argss) ->
      let ir = translate name desc in
      check Alcotest.bool (name ^ " kernel-executable") true
        (Jit.Exec.supported ir);
      List.iter
        (fun args ->
          check Alcotest.int
            (Printf.sprintf "%s%s" name
               (String.concat "," (List.map string_of_int args)))
            (interp_result name desc args)
            (kernel_result ir args))
        argss)
    cases

let test_unsupported_stays_interpreted () =
  let handlers =
    B.class_ "H"
      [
        B.meth ~flags:static "f" "()I"
          ~handlers:[ ("a", "b", "c", None) ]
          [
            B.Label "a";
            B.Const 1;
            B.Label "b";
            B.Ireturn;
            B.Label "c";
            B.Pop;
            B.Const 2;
            B.Ireturn;
          ];
      ]
  in
  (match
     Jit.Translate.translate_method handlers.CF.pool
       (Option.get (CF.find_method handlers "f" "()I"))
   with
  | _ -> fail "handlers should be unsupported"
  | exception Jit.Translate.Unsupported _ -> ());
  let jsr =
    B.class_ "J"
      [
        B.meth ~flags:static "f" "()I"
          [ B.Jsr "s"; B.Const 1; B.Ireturn; B.Label "s"; B.Astore 0; B.Ret 0 ];
      ]
  in
  match
    Jit.Translate.translate_method jsr.CF.pool
      (Option.get (CF.find_method jsr "f" "()I"))
  with
  | _ -> fail "jsr should be unsupported"
  | exception Jit.Translate.Unsupported _ -> ()

let test_regalloc_valid () =
  List.iter
    (fun arch ->
      List.iter
        (fun (name, desc) ->
          let ir = translate name desc in
          let r = Jit.Regalloc.allocate arch ir in
          check Alcotest.bool
            (Printf.sprintf "%s on %s valid" name arch.Jit.Arch.name)
            true
            (Jit.Regalloc.valid ir r);
          check Alcotest.bool "register bound respected" true
            (r.Jit.Regalloc.registers_used <= arch.Jit.Arch.registers))
        [ ("gcd", "(II)I"); ("sumsq", "(I)I"); ("arr", "(I)I"); ("deep", "(I)I") ])
    Jit.Arch.all

let test_regalloc_spills_under_pressure () =
  (* Many simultaneously live values on a tiny register file. *)
  let wide =
    B.class_ "W"
      [
        B.meth ~flags:static "f" "()I"
          (List.concat
             (List.init 12 (fun i -> [ B.Const i; B.Istore i ]))
          @ List.concat (List.init 12 (fun i -> [ B.Iload i ]))
          @ List.init 11 (fun _ -> B.Add)
          @ [ B.Ireturn ]);
      ]
  in
  let ir =
    Jit.Translate.translate_method wide.CF.pool
      (Option.get (CF.find_method wide "f" "()I"))
  in
  let tiny = { Jit.Arch.x86 with Jit.Arch.registers = 4; name = "tiny" } in
  let r = Jit.Regalloc.allocate tiny ir in
  check Alcotest.bool "spills happened" true (r.Jit.Regalloc.spills > 0);
  check Alcotest.bool "still valid" true (Jit.Regalloc.valid ir r)

let test_service_cache_per_arch () =
  let svc = Jit.Service.create () in
  let r1 = Jit.Service.compile_class svc Jit.Arch.x86 gcd_cls in
  check Alcotest.int "all methods handled" 4 (List.length r1);
  let misses1 = svc.Jit.Service.cache_misses in
  (* Same class, same arch: all hits. *)
  let _ = Jit.Service.compile_class svc Jit.Arch.x86 gcd_cls in
  check Alcotest.int "no new misses" misses1 svc.Jit.Service.cache_misses;
  check Alcotest.bool "hits recorded" true (svc.Jit.Service.cache_hits >= 4);
  (* Different arch: separate cache entries. *)
  let _ = Jit.Service.compile_class svc Jit.Arch.alpha gcd_cls in
  check Alcotest.bool "alpha misses" true
    (svc.Jit.Service.cache_misses > misses1)

let test_compile_for_fleet () =
  let console = Monitor.Console.create () in
  ignore
    (Monitor.Console.handshake console ~user:"a" ~hardware:"h1"
       ~native_format:"x86" ~vm_version:"1" ~time:0L);
  ignore
    (Monitor.Console.handshake console ~user:"b" ~hardware:"h2"
       ~native_format:"alpha" ~vm_version:"1" ~time:0L);
  let svc = Jit.Service.create () in
  let results = Jit.Service.compile_for_fleet svc console gcd_cls in
  (* 4 methods x 2 architectures *)
  check Alcotest.int "both ISAs compiled" 8 (List.length results)

let test_static_cost_below_interpretation () =
  let ir = translate "sumsq" "(I)I" in
  let cost = Jit.Ir.static_cost Jit.Arch.x86 ir.Jit.Ir.code in
  (* interpretation of the same stream costs ~1 unit per instruction *)
  check Alcotest.bool "compiled estimate cheaper" true
    (cost < Float.of_int (Array.length ir.Jit.Ir.code))

let prop_translation_equiv_random_arith =
  QCheck.Test.make ~name:"random arith kernels: compiled = interpreted"
    ~count:150
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 15) (int_bound 5)) (int_range (-50) 50))
    (fun (ops, seed) ->
      let body =
        [ B.Iload 0 ]
        @ List.concat_map
            (fun k ->
              [
                B.Const ((k * 7) + 1);
                (match k with
                | 0 -> B.Add
                | 1 -> B.Sub
                | 2 -> B.Mul
                | 3 -> B.Xor
                | 4 -> B.Or
                | _ -> B.And);
              ])
            ops
        @ [ B.Ireturn ]
      in
      let cls = B.class_ "R" [ B.meth ~flags:static "f" "(I)I" body ] in
      let ir =
        Jit.Translate.translate_method cls.CF.pool
          (Option.get (CF.find_method cls "f" "(I)I"))
      in
      let vm = Jvm.Bootlib.fresh_vm () in
      Jvm.Classreg.register vm.Jvm.Vmstate.reg cls;
      let interp =
        match
          Jvm.Interp.invoke vm ~cls:"R" ~name:"f" ~desc:"(I)I"
            [ Jvm.Value.Int (Int32.of_int seed) ]
        with
        | Some (Jvm.Value.Int r) -> r
        | _ -> fail "no interp result"
      in
      match Jit.Exec.run ir [ Jit.Exec.Vint (Int32.of_int seed) ] with
      | Some (Jit.Exec.Vint r) -> Int32.equal r interp
      | _ -> false)

let () =
  Alcotest.run "jit"
    [
      ( "translate",
        [
          Alcotest.test_case "equivalence" `Quick test_translation_equivalence;
          Alcotest.test_case "unsupported -> interpreter" `Quick
            test_unsupported_stays_interpreted;
          QCheck_alcotest.to_alcotest prop_translation_equiv_random_arith;
        ] );
      ( "regalloc",
        [
          Alcotest.test_case "valid allocations" `Quick test_regalloc_valid;
          Alcotest.test_case "spills under pressure" `Quick
            test_regalloc_spills_under_pressure;
        ] );
      ( "service",
        [
          Alcotest.test_case "per-arch cache" `Quick test_service_cache_per_arch;
          Alcotest.test_case "fleet compile" `Quick test_compile_for_fleet;
          Alcotest.test_case "static cost" `Quick
            test_static_cost_below_interpretation;
        ] );
    ]
