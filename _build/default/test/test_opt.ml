(* Tests for the §5 repartitioning optimizer: first-use analysis, class
   splitting with behaviour preservation, lazy satellite loading, and
   the startup-time model behind Figures 11–12. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let check = Alcotest.check
let fail = Alcotest.fail
let static = [ CF.Public; CF.Static ]

(* A class with hot and cold methods, both static and instance. *)
let subject =
  B.class_ "app/Widget"
    ~fields:[ B.field "state" "I" ]
    [
      B.default_init "java/lang/Object";
      B.meth ~flags:static "hotEntry" "(I)I"
        [ B.Iload 0; B.Const 2; B.Mul; B.Ireturn ];
      B.meth "hotMethod" "()I"
        [ B.Aload 0; B.Getfield ("app/Widget", "state", "I"); B.Ireturn ];
      B.meth ~flags:static "coldStatic" "(I)I"
        ((* bulky enough that factoring it out actually shrinks the
            class *)
         List.concat (List.init 30 (fun k -> [ B.Iload 0; B.Const k; B.Add; B.Istore 0 ]))
        @ [ B.Iload 0; B.Const 100; B.Add; B.Ireturn ]);
      B.meth "coldInstance" "(I)I"
        [
          B.Aload 0;
          B.Getfield ("app/Widget", "state", "I");
          B.Iload 1;
          B.Add;
          B.Ireturn;
        ];
    ]

let profile =
  Opt.First_use.of_order
    [ "app/Widget.hotEntry(I)I"; "app/Widget.hotMethod()I" ]

let test_partition () =
  let hot, cold = Opt.First_use.partition profile subject in
  let names ms = List.map (fun m -> m.CF.m_name) ms in
  check Alcotest.bool "init unmovable" true (List.mem "<init>" (names hot));
  check Alcotest.bool "hotEntry hot" true (List.mem "hotEntry" (names hot));
  check Alcotest.bool "coldStatic cold" true (List.mem "coldStatic" (names cold));
  check Alcotest.bool "coldInstance cold" true
    (List.mem "coldInstance" (names cold));
  let frac = Opt.First_use.cold_fraction profile subject in
  check Alcotest.bool "cold fraction in (0,1)" true (frac > 0.0 && frac < 1.0)

let test_split_structure () =
  let r = Opt.Repartition.split profile subject in
  check Alcotest.int "two cold methods moved" 2 r.Opt.Repartition.moved;
  (match r.Opt.Repartition.cold with
  | None -> fail "no satellite"
  | Some sat ->
    check Alcotest.string "satellite name" "app/Widget$cold" sat.CF.name;
    check Alcotest.bool "impl present" true
      (CF.find_method sat "coldStatic$impl" "(I)I" <> None);
    (* the instance method's impl gains an explicit receiver *)
    check Alcotest.bool "receiver made explicit" true
      (CF.find_method sat "coldInstance$impl" "(Lapp/Widget;I)I" <> None));
  check Alcotest.bool "hot class smaller" true
    (r.Opt.Repartition.hot_bytes < Bytecode.Encode.class_size subject);
  (* stubs keep the public interface *)
  check Alcotest.bool "stub remains" true
    (CF.find_method r.Opt.Repartition.hot "coldInstance" "(I)I" <> None)

let run_widget classes =
  let vm = Jvm.Bootlib.fresh_vm () in
  List.iter (Jvm.Classreg.register vm.Jvm.Vmstate.reg) classes;
  let mk () =
    let fields = Jvm.Classreg.all_instance_fields vm.Jvm.Vmstate.reg "app/Widget" in
    let o = Jvm.Heap.alloc_obj vm.Jvm.Vmstate.heap ~cls:"app/Widget" ~field_descs:fields in
    Hashtbl.replace o.Jvm.Value.fields "state" (Jvm.Value.Int 7l);
    Jvm.Value.Obj o
  in
  let s = Jvm.Interp.invoke vm ~cls:"app/Widget" ~name:"coldStatic" ~desc:"(I)I" [ Jvm.Value.Int 5l ] in
  let i =
    Jvm.Interp.invoke vm ~cls:"app/Widget" ~name:"coldInstance" ~desc:"(I)I"
      [ mk (); Jvm.Value.Int 3l ]
  in
  let h = Jvm.Interp.invoke vm ~cls:"app/Widget" ~name:"hotMethod" ~desc:"()I" [ mk () ] in
  (s, i, h)

let test_split_preserves_behaviour () =
  let r = Opt.Repartition.split profile subject in
  let sat = Option.get r.Opt.Repartition.cold in
  let original = run_widget [ subject ] in
  let split = run_widget [ r.Opt.Repartition.hot; sat ] in
  check Alcotest.bool "identical results" true (original = split)

let test_satellite_loaded_lazily () =
  let r = Opt.Repartition.split profile subject in
  let sat = Option.get r.Opt.Repartition.cold in
  let sat_bytes = Bytecode.Encode.class_to_bytes sat in
  let fetched = ref [] in
  let provider name =
    fetched := name :: !fetched;
    if name = sat.CF.name then Some sat_bytes else None
  in
  let vm = Jvm.Bootlib.fresh_vm ~provider () in
  Jvm.Classreg.register vm.Jvm.Vmstate.reg r.Opt.Repartition.hot;
  (* Hot path: the satellite must not be fetched. *)
  (match
     Jvm.Interp.invoke vm ~cls:"app/Widget" ~name:"hotEntry" ~desc:"(I)I"
       [ Jvm.Value.Int 4l ]
   with
  | Some (Jvm.Value.Int 8l) -> ()
  | _ -> fail "hot path broken");
  check (Alcotest.list Alcotest.string) "no fetch yet" [] !fetched;
  (* First cold call pulls the satellite. *)
  (match
     Jvm.Interp.invoke vm ~cls:"app/Widget" ~name:"coldStatic" ~desc:"(I)I"
       [ Jvm.Value.Int 1l ]
   with
  | Some (Jvm.Value.Int _) -> ()
  | _ -> fail "cold path broken");
  check Alcotest.bool "satellite fetched on demand" true
    (List.mem sat.CF.name !fetched)

let test_split_nothing_when_all_hot () =
  let all_hot =
    Opt.First_use.of_order
      [
        "app/Widget.hotEntry(I)I";
        "app/Widget.hotMethod()I";
        "app/Widget.coldStatic(I)I";
        "app/Widget.coldInstance(I)I";
      ]
  in
  let r = Opt.Repartition.split all_hot subject in
  check Alcotest.int "nothing moved" 0 r.Opt.Repartition.moved;
  check Alcotest.bool "no satellite" true (r.Opt.Repartition.cold = None)

let test_split_verifies () =
  (* Both halves must pass the verifier (given each other). *)
  let r = Opt.Repartition.split profile subject in
  let sat = Option.get r.Opt.Repartition.cold in
  let oracle =
    Verifier.Oracle.of_classes
      (Jvm.Bootlib.boot_classes () @ [ r.Opt.Repartition.hot; sat ])
  in
  List.iter
    (fun cf ->
      match Verifier.Static_verifier.verify ~oracle cf with
      | Verifier.Static_verifier.Verified _ -> ()
      | Verifier.Static_verifier.Rejected (errors, _) ->
        fail
          (cf.CF.name ^ ": "
          ^ String.concat "; " (List.map Verifier.Verror.to_string errors)))
    [ r.Opt.Repartition.hot; sat ]

(* --- Transport modes. --- *)

let test_transport_modes_ordered () =
  let app = Workloads.Apps.build_small Workloads.Apps.jlex in
  let instrumented =
    List.map
      (Monitor.Instrument.instrument_class
         ~runtime_class:Monitor.Profiler.profiler_class)
      app.Workloads.Appgen.classes
  in
  let vm = Jvm.Bootlib.fresh_vm () in
  let prof = Monitor.Profiler.install vm () in
  List.iter (Jvm.Classreg.register vm.Jvm.Vmstate.reg) instrumented;
  (match Jvm.Interp.run_main vm app.Workloads.Appgen.entry with
  | Ok () -> ()
  | Error e -> fail (Jvm.Interp.describe_throwable e));
  let profile = Opt.First_use.of_profiler prof in
  let classes = app.Workloads.Appgen.classes in
  let b mode = Opt.Transport.bytes_transferred mode profile classes in
  check Alcotest.bool "archive >= lazy >= repartitioned" true
    (b Opt.Transport.Whole_archive >= b Opt.Transport.Lazy_class
    && b Opt.Transport.Lazy_class > b Opt.Transport.Repartitioned);
  let dead = Opt.Transport.never_invoked_fraction profile classes in
  check Alcotest.bool
    (Printf.sprintf "never-invoked share in the paper's 10-30%% band (%.2f)" dead)
    true
    (dead >= 0.10 && dead <= 0.35)

(* --- Startup model (Figures 11/12). --- *)

let model =
  {
    Opt.Startup.app_name = "test";
    startup_bytes = 1_000_000;
    requests = 50;
    cold_fraction = 0.25;
    client_startup_us = 1_000_000;
  }

let test_startup_decreases_with_bandwidth () =
  let t bw =
    Opt.Startup.startup_time_us model ~bandwidth_bps:bw ~latency_us:100_000
      ~repartitioned:false
  in
  check Alcotest.bool "monotone" true
    (t 28_800 > t 128_000 && t 128_000 > t 1_000_000 && t 1_000_000 > t 8_000_000)

let test_improvement_fades_with_bandwidth () =
  let imp bw =
    Opt.Startup.improvement_percent model ~bandwidth_bps:bw ~latency_us:100_000
  in
  let slow = imp 28_800 and fast = imp 8_000_000 in
  check Alcotest.bool "positive at modem speed" true (slow > 15.0);
  check Alcotest.bool "bounded by cold fraction" true (slow <= 25.0 +. 1e-9);
  check Alcotest.bool "fades with bandwidth" true (fast < slow /. 3.0)

let test_model_of_classes_matches_split () =
  let m =
    Opt.Startup.model_of_classes ~name:"widget" ~profile
      ~startup_classes:[ "app/Widget" ] ~client_startup_us:0 ~requests:1
      [ subject ]
  in
  let r = Opt.Repartition.split profile subject in
  let expect =
    Float.of_int (Bytecode.Encode.class_size subject - r.Opt.Repartition.hot_bytes)
    /. Float.of_int (Bytecode.Encode.class_size subject)
  in
  check (Alcotest.float 0.001) "measured cold fraction" expect
    m.Opt.Startup.cold_fraction

(* Property: splitting under a random hot subset always preserves the
   three probe results. *)
let prop_split_preserves =
  QCheck.Test.make ~name:"random profiles: split preserves results" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 4) (int_bound 3))
    (fun hot_picks ->
      let all =
        [|
          "app/Widget.hotEntry(I)I";
          "app/Widget.hotMethod()I";
          "app/Widget.coldStatic(I)I";
          "app/Widget.coldInstance(I)I";
        |]
      in
      let profile =
        Opt.First_use.of_order (List.map (fun i -> all.(i)) hot_picks)
      in
      let r = Opt.Repartition.split profile subject in
      let classes =
        r.Opt.Repartition.hot
        :: (match r.Opt.Repartition.cold with Some c -> [ c ] | None -> [])
      in
      run_widget classes = run_widget [ subject ])

let () =
  Alcotest.run "opt"
    [
      ( "first_use",
        [
          Alcotest.test_case "partition" `Quick test_partition;
        ] );
      ( "repartition",
        [
          Alcotest.test_case "split structure" `Quick test_split_structure;
          Alcotest.test_case "behaviour preserved" `Quick
            test_split_preserves_behaviour;
          Alcotest.test_case "satellite lazy" `Quick
            test_satellite_loaded_lazily;
          Alcotest.test_case "all hot -> no-op" `Quick
            test_split_nothing_when_all_hot;
          Alcotest.test_case "both halves verify" `Quick test_split_verifies;
          QCheck_alcotest.to_alcotest prop_split_preserves;
        ] );
      ( "transport",
        [
          Alcotest.test_case "mode ordering + dead-code band" `Quick
            test_transport_modes_ordered;
        ] );
      ( "startup",
        [
          Alcotest.test_case "monotone in bandwidth" `Quick
            test_startup_decreases_with_bandwidth;
          Alcotest.test_case "improvement fades" `Quick
            test_improvement_fades_with_bandwidth;
          Alcotest.test_case "measured model" `Quick
            test_model_of_classes_matches_split;
        ] );
    ]
