(* Tests for the verification service: structural phases, dataflow
   type inference, assumption collection, Figure-3 rewriting, the
   dynamic RTVerifier component, error propagation — and the soundness
   property that ties it all together: code accepted by the verifier
   never faults the interpreter. *)

module B = Bytecode.Builder
module CF = Bytecode.Classfile
module I = Bytecode.Instr
module V = Jvm.Value
module SV = Verifier.Static_verifier

let check = Alcotest.check
let fail = Alcotest.fail
let static = [ CF.Public; CF.Static ]

let boot_oracle = Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ())

let expect_verified ?(oracle = boot_oracle) cls =
  match SV.verify ~oracle cls with
  | SV.Verified (cls', stats) -> (cls', stats)
  | SV.Rejected (errors, _) ->
    fail
      ("unexpected rejection: "
      ^ String.concat "; " (List.map Verifier.Verror.to_string errors))

let expect_rejected ?(oracle = boot_oracle) cls =
  match SV.verify ~oracle cls with
  | SV.Verified _ -> fail "expected rejection"
  | SV.Rejected (errors, _) ->
    check Alcotest.bool "has errors" true (errors <> []);
    errors

(* --- Acceptance of well-typed programs. --- *)

let hello_cls =
  B.class_ "Hello"
    [
      B.meth ~flags:static "main" "()V"
        [
          B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
          B.Push_str "hello world";
          B.Invokevirtual
            ("java/io/OutputStream", "println", "(Ljava/lang/String;)V");
          B.Return;
        ];
    ]

let test_accepts_hello () =
  let cls', stats = expect_verified hello_cls in
  check Alcotest.bool "static checks performed" true (stats.SV.sv_static_checks > 0);
  (* Everything was known to the oracle: nothing deferred, no rewrite. *)
  check Alcotest.int "no deferred checks" 0 stats.SV.sv_deferred;
  check Alcotest.int "same method count" (CF.method_count hello_cls)
    (CF.method_count cls')

let test_accepts_loops_and_exceptions () =
  let cls =
    B.class_ "LoopEx"
      [
        B.default_init "java/lang/Object";
        B.meth ~flags:static "f" "(I)I"
          ~handlers:[ ("try", "end", "catch", Some "java/lang/ArithmeticException") ]
          [
            B.Label "try";
            B.Const 100;
            B.Iload 0;
            B.Div;
            B.Istore 1;
            B.Label "end";
            B.Goto "ok";
            B.Label "catch";
            B.Pop;
            B.Const (-1);
            B.Istore 1;
            B.Label "ok";
            B.Iload 1;
            B.Ireturn;
          ];
      ]
  in
  ignore (expect_verified cls)

let test_accepts_object_construction () =
  let cls =
    B.class_ "Mk" ~fields:[ B.field "v" "I" ]
      [
        B.meth "<init>" "(I)V"
          [
            B.Aload 0;
            B.Invokespecial ("java/lang/Object", "<init>", "()V");
            B.Aload 0;
            B.Iload 1;
            B.Putfield ("Mk", "v", "I");
            B.Return;
          ];
        B.meth ~flags:static "make" "(I)LMk;"
          [
            B.New "Mk";
            B.Dup;
            B.Iload 0;
            B.Invokespecial ("Mk", "<init>", "(I)V");
            B.Areturn;
          ];
      ]
  in
  ignore (expect_verified cls)

let test_accepts_jsr_ret () =
  let cls =
    B.class_ "JsrOk"
      [
        B.meth ~flags:static "f" "()I"
          [
            B.Const 0;
            B.Istore 0;
            B.Jsr "sub";
            B.Jsr "sub";
            B.Iload 0;
            B.Ireturn;
            B.Label "sub";
            B.Astore 1;
            B.Inc (0, 1);
            B.Ret 1;
          ];
      ]
  in
  ignore (expect_verified cls)

let test_accepts_field_init_before_super () =
  (* putfield on uninitialized this for own fields is allowed. *)
  let cls =
    B.class_ "Early" ~fields:[ B.field "x" "I" ]
      [
        B.meth "<init>" "()V"
          [
            B.Aload 0;
            B.Const 5;
            B.Putfield ("Early", "x", "I");
            B.Aload 0;
            B.Invokespecial ("java/lang/Object", "<init>", "()V");
            B.Return;
          ];
      ]
  in
  ignore (expect_verified cls)

let test_accepts_interface_call () =
  let iface =
    B.class_ ~flags:[ CF.Public; CF.Abstract ] "Shape"
      [ B.abstract_meth "area" "()I" ]
  in
  let square =
    B.class_ "Square" ~interfaces:[ "Shape" ]
      ~fields:[ B.field "side" "I" ]
      [
        B.default_init "java/lang/Object";
        B.meth "area" "()I"
          [
            B.Aload 0;
            B.Getfield ("Square", "side", "I");
            B.Aload 0;
            B.Getfield ("Square", "side", "I");
            B.Mul;
            B.Ireturn;
          ];
      ]
  in
  let user =
    B.class_ "ShapeUser"
      [
        B.meth ~flags:static "f" "(LShape;)I"
          [ B.Aload 0; B.Invokeinterface ("Shape", "area", "()I"); B.Ireturn ];
        B.meth ~flags:static "g" "()I"
          [
            B.New "Square";
            B.Dup;
            B.Invokespecial ("Square", "<init>", "()V");
            B.Invokestatic ("ShapeUser", "f", "(LShape;)I");
            B.Ireturn;
          ];
      ]
  in
  let oracle =
    Verifier.Oracle.of_classes
      (Jvm.Bootlib.boot_classes () @ [ iface; square; user ])
  in
  List.iter (fun c -> ignore (expect_verified ~oracle c)) [ square; user ]

let test_rejects_non_implementor_as_interface () =
  let iface =
    B.class_ ~flags:[ CF.Public; CF.Abstract ] "Shape2"
      [ B.abstract_meth "area" "()I" ]
  in
  let plain = B.class_ "Plain" [ B.default_init "java/lang/Object" ] in
  let user =
    B.class_ "BadUser"
      [
        B.meth ~flags:static "g" "()I"
          [
            B.New "Plain";
            B.Dup;
            B.Invokespecial ("Plain", "<init>", "()V");
            B.Invokeinterface ("Shape2", "area", "()I");
            B.Ireturn;
          ];
      ]
  in
  let oracle =
    Verifier.Oracle.of_classes
      (Jvm.Bootlib.boot_classes () @ [ iface; plain; user ])
  in
  ignore (expect_rejected ~oracle user)

let test_rejects_ret_via_non_retaddr () =
  (* ret through a local that holds an int *)
  let cls =
    B.class_ "RJ1"
      [
        B.meth ~flags:static "f" "()I"
          [ B.Const 3; B.Istore 0; B.Ret 0 ];
      ]
  in
  ignore (expect_rejected cls)

let test_rejects_backward_branch_stack_growth () =
  (* Each loop iteration leaves one extra int on the stack: the merge
     at the loop head has mismatched heights. *)
  let cls =
    B.class_ "RJ2"
      [
        B.meth ~flags:static "f" "()I"
          [
            B.Const 0;
            B.Label "top";
            B.Const 1;
            B.Const 1;
            B.If_z (I.Ne, "top");
            (* the loop head is reached with height 1 first and height 2
               from the back edge: the merge must be rejected *)
            B.Pop;
            B.Ireturn;
          ];
      ]
  in
  ignore (expect_rejected cls)

let test_rejects_retaddr_arithmetic () =
  (* load a return address and add to it *)
  let cls =
    B.class_ "RJ3"
      [
        B.meth ~flags:static "f" "()I"
          [
            B.Jsr "sub";
            B.Const 0;
            B.Ireturn;
            B.Label "sub";
            B.Astore 0;
            B.Iload 0;
            B.Const 1;
            B.Add;
            B.Pop;
            B.Ret 0;
          ];
      ]
  in
  ignore (expect_rejected cls)

let test_private_access_enforced () =
  let holder =
    B.class_ "Holder"
      ~fields:[ B.field ~flags:[ CF.Private ] "secret" "I" ]
      [
        B.default_init "java/lang/Object";
        B.meth ~flags:[ CF.Private; CF.Static ] "hidden" "()I"
          [ B.Const 7; B.Ireturn ];
        (* private access from within the declaring class is fine *)
        B.meth "own" "()I"
          [
            B.Aload 0;
            B.Getfield ("Holder", "secret", "I");
            B.Invokestatic ("Holder", "hidden", "()I");
            B.Add;
            B.Ireturn;
          ];
      ]
  in
  let snooper_field =
    B.class_ "SnooperF"
      [
        B.meth ~flags:static "f" "(LHolder;)I"
          [ B.Aload 0; B.Getfield ("Holder", "secret", "I"); B.Ireturn ];
      ]
  in
  let snooper_method =
    B.class_ "SnooperM"
      [
        B.meth ~flags:static "f" "()I"
          [ B.Invokestatic ("Holder", "hidden", "()I"); B.Ireturn ];
      ]
  in
  let oracle =
    Verifier.Oracle.of_classes
      (Jvm.Bootlib.boot_classes () @ [ holder; snooper_field; snooper_method ])
  in
  ignore (expect_verified ~oracle holder);
  ignore (expect_rejected ~oracle snooper_field);
  ignore (expect_rejected ~oracle snooper_method)

(* --- Reflection service (§4.3). --- *)

(* local fixtures (the assumption-collection fixtures live further
   down) *)
let reflect_user =
  B.class_ "RUser"
    ~fields:[ B.field "x" "I"; B.field ~flags:static "shared" "I" ]
    [
      B.default_init "java/lang/Object";
      B.meth ~flags:static "f" "()I"
        [ B.Invokestatic ("RHelper", "value", "()I"); B.Ireturn ];
    ]

let reflect_helper =
  B.class_ "RHelper"
    [ B.meth ~flags:static "value" "()I" [ B.Const 5; B.Ireturn ] ]

let test_reflect_roundtrip () =
  let info = Verifier.Oracle.info_of_classfile reflect_user in
  let info' = Verifier.Reflect.decode_info (Verifier.Reflect.encode_info info) in
  check Alcotest.bool "roundtrip" true (info = info')

let test_reflect_annotate_and_read () =
  let annotated = Verifier.Reflect.annotate hello_cls in
  (match Verifier.Reflect.read annotated with
  | Some info ->
    check Alcotest.string "name" "Hello" info.Verifier.Oracle.ci_name;
    check Alcotest.bool "main listed" true
      (List.exists
         (fun (n, d, s, _) -> n = "main" && d = "()V" && s)
         info.Verifier.Oracle.ci_methods)
  | None -> fail "attribute unreadable");
  check Alcotest.bool "absent on plain class" true
    (Verifier.Reflect.read hello_cls = None)

let test_reflect_fast_oracle_equivalent () =
  let classes = [ hello_cls; reflect_user; reflect_helper ] in
  let annotated = List.map Verifier.Reflect.annotate classes in
  let bytes_of =
    List.map
      (fun c -> (c.CF.name, Bytecode.Encode.class_to_bytes c))
      annotated
  in
  let fetch n = List.assoc_opt n bytes_of in
  let fast = Verifier.Reflect.oracle_of_bytes fetch in
  let slow = Verifier.Oracle.of_classes classes in
  List.iter
    (fun c ->
      let name = c.CF.name in
      match (fast name, slow name) with
      | Some a, Some b ->
        check Alcotest.bool (name ^ " same info") true
          (a.Verifier.Oracle.ci_methods = b.Verifier.Oracle.ci_methods
          && a.Verifier.Oracle.ci_fields = b.Verifier.Oracle.ci_fields
          && a.Verifier.Oracle.ci_super = b.Verifier.Oracle.ci_super)
      | _ -> fail (name ^ " missing"))
    classes;
  check Alcotest.bool "unknown name" true (fast "nope" = None)

let test_reflect_attribute_survives_wire () =
  let annotated = Verifier.Reflect.annotate reflect_user in
  let back =
    Bytecode.Decode.class_of_bytes (Bytecode.Encode.class_to_bytes annotated)
  in
  check Alcotest.bool "readable after roundtrip" true
    (Verifier.Reflect.read back <> None);
  (* fast attributes-only extraction agrees with the full decode *)
  let attrs =
    Bytecode.Decode.class_attributes_of_bytes
      (Bytecode.Encode.class_to_bytes annotated)
  in
  check Alcotest.bool "fast path sees it" true
    (List.mem_assoc Verifier.Reflect.attribute_name attrs)

(* --- Rejection of ill-typed programs. --- *)

let reject_body name body =
  let cls = B.class_ name [ B.meth ~flags:static "f" "()I" body ] in
  ignore (expect_rejected cls)

let test_rejects_underflow () = reject_body "R1" [ B.Add; B.Ireturn ]

let test_rejects_type_confusion () =
  reject_body "R2" [ B.Push_str "s"; B.Const 1; B.Add; B.Ireturn ]

let test_rejects_int_as_ref () =
  reject_body "R3"
    [ B.Const 5; B.Istore 0; B.Aload 0; B.Arraylength; B.Ireturn ]

let test_rejects_wrong_return () =
  let cls =
    B.class_ "R4" [ B.meth ~flags:static "f" "()V" [ B.Const 1; B.Ireturn ] ]
  in
  ignore (expect_rejected cls)

let test_rejects_merge_height_mismatch () =
  reject_body "R5"
    [
      B.Const 1;
      B.If_z (I.Eq, "other");
      B.Const 1;
      B.Const 2;
      B.Goto "join";
      B.Label "other";
      B.Const 3;
      B.Label "join";
      B.Ireturn;
    ]

let test_rejects_uninitialized_use () =
  let cls =
    B.class_ "R6"
      [
        B.meth ~flags:static "f" "()V"
          [
            B.New "java/lang/Object";
            (* no constructor call *)
            B.Invokevirtual ("java/lang/Object", "hashCode", "()I");
            B.Pop;
            B.Return;
          ];
      ]
  in
  ignore (expect_rejected cls)

let test_rejects_falls_off_end () =
  (* Built by hand: builder-level assembly is fine, structure is not. *)
  let base = B.class_ "R7" [ B.meth ~flags:static "f" "()V" [ B.Return ] ] in
  let broken =
    CF.map_methods
      (fun m ->
        match m.CF.m_code with
        | Some c -> { m with CF.m_code = Some { c with CF.instrs = [| I.Nop |] } }
        | None -> m)
      base
  in
  ignore (expect_rejected broken)

let test_rejects_bad_field_type () =
  let cls =
    B.class_ "R8"
      [
        B.meth ~flags:static "f" "()V"
          [
            (* System.out has type OutputStream, claim it is a String *)
            B.Getstatic ("java/lang/System", "out", "Ljava/lang/String;");
            B.Pop;
            B.Return;
          ];
      ]
  in
  ignore (expect_rejected cls)

let test_rejects_missing_member_of_known_class () =
  let cls =
    B.class_ "R9"
      [
        B.meth ~flags:static "f" "()V"
          [
            B.Getstatic ("java/lang/System", "nonesuch", "I");
            B.Pop;
            B.Return;
          ];
      ]
  in
  ignore (expect_rejected cls)

let test_rejects_wrong_arg_type () =
  let cls =
    B.class_ "R10"
      [
        B.meth ~flags:static "f" "()V"
          [
            B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
            B.Const 1;
            (* println(String) with an int argument *)
            B.Invokevirtual
              ("java/io/OutputStream", "println", "(Ljava/lang/String;)V");
            B.Return;
          ];
      ]
  in
  ignore (expect_rejected cls)

let test_rejects_stack_overflow_beyond_declared () =
  let base =
    B.class_ "R11"
      [ B.meth ~flags:static "f" "()I" [ B.Const 1; B.Const 2; B.Add; B.Ireturn ] ]
  in
  let broken =
    CF.map_methods
      (fun m ->
        match m.CF.m_code with
        | Some c -> { m with CF.m_code = Some { c with CF.max_stack = 1 } }
        | None -> m)
      base
  in
  ignore (expect_rejected broken)

let test_rejects_duplicate_method () =
  let base = B.class_ "R12" [ B.meth ~flags:static "f" "()V" [ B.Return ] ] in
  let dup = { base with CF.methods = base.CF.methods @ base.CF.methods } in
  ignore (expect_rejected dup)

(* --- Assumption collection and Figure-3 rewriting. --- *)

let ext_user_cls =
  B.class_ "ExtUser"
    [
      B.meth ~flags:static "f" "()I"
        [ B.Invokestatic ("ext/Helper", "value", "()I"); B.Ireturn ];
    ]

let test_unknown_class_becomes_assumption () =
  let cls', stats = expect_verified ext_user_cls in
  check Alcotest.bool "deferred checks injected" true (stats.SV.sv_deferred > 0);
  check Alcotest.bool "guard field added" true
    (List.exists
       (fun f -> String.length f.CF.f_name > 5 && String.sub f.CF.f_name 0 5 = "__dvm")
       cls'.CF.fields);
  let dis = Bytecode.Disasm.class_to_string cls' in
  let contains sub =
    let n = String.length dis and m = String.length sub in
    let rec go i = i + m <= n && (String.sub dis i m = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "calls RTVerifier" true (contains "dvm/RTVerifier");
  check Alcotest.bool "checkMethod injected" true (contains "checkMethod")

let helper_cls =
  B.class_ "ext/Helper"
    [ B.meth ~flags:static "value" "()I" [ B.Const 77; B.Ireturn ] ]

(* A client VM with the RTVerifier dynamic component installed. *)
let client_vm ?provider extra =
  let vm = Jvm.Bootlib.fresh_vm ?provider () in
  let stats = Verifier.Rt_verifier.install vm in
  List.iter (Jvm.Classreg.register vm.Jvm.Vmstate.reg) extra;
  (vm, stats)

let test_self_verifying_runs_when_assumption_holds () =
  let cls', _ = expect_verified ext_user_cls in
  let vm, stats = client_vm [ cls'; helper_cls ] in
  (match Jvm.Interp.invoke vm ~cls:"ExtUser" ~name:"f" ~desc:"()I" [] with
  | Some (V.Int 77l) -> ()
  | _ -> fail "wrong result");
  check Alcotest.bool "dynamic checks ran" true (stats.Verifier.Rt_verifier.dynamic_checks > 0);
  let after_first = stats.Verifier.Rt_verifier.dynamic_checks in
  (* Second call: the Figure-3 guard skips the checks. *)
  (match Jvm.Interp.invoke vm ~cls:"ExtUser" ~name:"f" ~desc:"()I" [] with
  | Some (V.Int 77l) -> ()
  | _ -> fail "wrong result on second call");
  check Alcotest.int "guard suppresses re-checking" after_first
    stats.Verifier.Rt_verifier.dynamic_checks;
  check Alcotest.int "no failures" 0 stats.Verifier.Rt_verifier.failures

let test_self_verifying_fails_when_assumption_broken () =
  let cls', _ = expect_verified ext_user_cls in
  (* Client has no ext/Helper at all. *)
  let vm, stats = client_vm [ cls' ] in
  (match Jvm.Interp.invoke vm ~cls:"ExtUser" ~name:"f" ~desc:"()I" [] with
  | _ -> fail "expected VerifyError"
  | exception Jvm.Vmstate.Throw v ->
    check Alcotest.string "VerifyError" "java/lang/VerifyError" (V.class_of v));
  check Alcotest.bool "failure recorded" true (stats.Verifier.Rt_verifier.failures > 0)

let test_self_verifying_fails_on_descriptor_mismatch () =
  let cls', _ = expect_verified ext_user_cls in
  let wrong_helper =
    B.class_ "ext/Helper"
      [ B.meth ~flags:static "value" "(I)I" [ B.Iload 0; B.Ireturn ] ]
  in
  let vm, _ = client_vm [ cls'; wrong_helper ] in
  match Jvm.Interp.invoke vm ~cls:"ExtUser" ~name:"f" ~desc:"()I" [] with
  | _ -> fail "expected VerifyError"
  | exception Jvm.Vmstate.Throw v ->
    check Alcotest.string "VerifyError" "java/lang/VerifyError" (V.class_of v)

let test_class_wide_assumption_checked_at_clinit () =
  (* Subclass of an unknown superclass: checked from <clinit>. *)
  let sub =
    B.class_ "SubOfUnknown" ~super:"ext/Base"
      [
        B.meth "<init>" "()V"
          [
            B.Aload 0;
            B.Invokespecial ("ext/Base", "<init>", "()V");
            B.Return;
          ];
      ]
  in
  let cls', stats = expect_verified sub in
  check Alcotest.bool "deferred" true (stats.SV.sv_deferred > 0);
  check Alcotest.bool "clinit synthesized" true
    (CF.find_method cls' "<clinit>" "()V" <> None);
  (* Client without ext/Base: initialization fails with VerifyError. *)
  let vm, _ = client_vm [ cls' ] in
  match Jvm.Interp.ensure_initialized vm "SubOfUnknown" with
  | _ -> fail "expected a linkage error"
  | exception Jvm.Vmstate.Throw v ->
    (* Superclass resolution precedes <clinit>, so the missing parent
       may surface as NoClassDefFoundError rather than the injected
       check's VerifyError; both are LinkageErrors, as in a real JVM. *)
    check Alcotest.bool "linkage error" true
      (Jvm.Classreg.is_subclass vm.Jvm.Vmstate.reg ~sub:(V.class_of v)
         ~super:"java/lang/LinkageError")

let test_error_class_propagates () =
  let errors =
    expect_rejected
      (B.class_ "Broken" [ B.meth ~flags:static "f" "()I" [ B.Add; B.Ireturn ] ])
  in
  let repl = Verifier.Error_class.of_errors ~name:"Broken" errors in
  check Alcotest.string "same name" "Broken" repl.CF.name;
  let vm, _ = client_vm [ repl ] in
  match Jvm.Interp.ensure_initialized vm "Broken" with
  | _ -> fail "expected VerifyError on init"
  | exception Jvm.Vmstate.Throw v ->
    check Alcotest.string "VerifyError" "java/lang/VerifyError" (V.class_of v)

let test_filter_rejects_via_exception () =
  let f = SV.filter ~oracle:boot_oracle () in
  let bad =
    B.class_ "BadF" [ B.meth ~flags:static "f" "()I" [ B.Add; B.Ireturn ] ]
  in
  match Rewrite.Filter.apply f bad with
  | _ -> fail "expected Filter.Rejected"
  | exception Rewrite.Filter.Rejected { filter = "verifier"; cls = "BadF"; _ } ->
    ()

(* --- Rewriting preserves behaviour. --- *)

let test_rewrite_preserves_output () =
  let app =
    B.class_ "PreserveMe"
      [
        B.meth ~flags:static "main" "()V"
          [
            B.Const 0;
            B.Istore 0;
            B.Const 0;
            B.Istore 1;
            B.Label "loop";
            B.Iload 1;
            B.Const 10;
            B.If_icmp (I.Ge, "done");
            B.Iload 0;
            B.Invokestatic ("ext/Helper", "value", "()I");
            B.Add;
            B.Istore 0;
            B.Inc (1, 1);
            B.Goto "loop";
            B.Label "done";
            B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
            B.Iload 0;
            B.Invokevirtual ("java/io/OutputStream", "println", "(I)V");
            B.Return;
          ];
      ]
  in
  (* Reference run: original class on a trusting client. *)
  let vm0, _ = client_vm [ app; helper_cls ] in
  (match Jvm.Interp.run_main vm0 "PreserveMe" with
  | Ok () -> ()
  | Error e -> fail (Jvm.Interp.describe_throwable e));
  let reference = Jvm.Vmstate.output vm0 in
  check Alcotest.string "reference output" "770\n" reference;
  (* Rewritten run. *)
  let cls', _ = expect_verified app in
  let vm1, _ = client_vm [ cls'; helper_cls ] in
  (match Jvm.Interp.run_main vm1 "PreserveMe" with
  | Ok () -> ()
  | Error e -> fail (Jvm.Interp.describe_throwable e));
  check Alcotest.string "same output" reference (Jvm.Vmstate.output vm1)

(* --- Lattice properties. --- *)

let small_oracle =
  Verifier.Oracle.of_classes
    (Jvm.Bootlib.boot_classes ()
    @ [
        B.class_ "A" [ B.default_init "java/lang/Object" ];
        B.class_ "AB" ~super:"A" [ B.default_init "A" ];
        B.class_ "AC" ~super:"A" [ B.default_init "A" ];
        B.class_ "ABD" ~super:"AB" [ B.default_init "AB" ];
      ])

let gen_vtype =
  QCheck.Gen.oneof
    [
      QCheck.Gen.return Verifier.Vtype.Top;
      QCheck.Gen.return Verifier.Vtype.VInt;
      QCheck.Gen.return Verifier.Vtype.Null;
      QCheck.Gen.map
        (fun c -> Verifier.Vtype.Ref c)
        (QCheck.Gen.oneofl
           [ "A"; "AB"; "AC"; "ABD"; "java/lang/Object"; "java/lang/String"; "[I" ]);
      QCheck.Gen.map
        (fun pc -> Verifier.Vtype.Uninit { pc; cls = "A" })
        (QCheck.Gen.int_range 0 3);
      QCheck.Gen.map (fun e -> Verifier.Vtype.Retaddr e) (QCheck.Gen.int_range 0 3);
    ]

let arb_vtype = QCheck.make ~print:Verifier.Vtype.to_string gen_vtype

let merge = Verifier.Vtype.merge small_oracle

let prop_merge_idempotent =
  QCheck.Test.make ~name:"merge idempotent" ~count:500 arb_vtype (fun v ->
      Verifier.Vtype.equal (merge v v) v)

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:500
    (QCheck.pair arb_vtype arb_vtype) (fun (a, b) ->
      Verifier.Vtype.equal (merge a b) (merge b a))

let prop_merge_associative =
  QCheck.Test.make ~name:"merge associative" ~count:500
    (QCheck.triple arb_vtype arb_vtype arb_vtype) (fun (a, b, c) ->
      Verifier.Vtype.equal (merge a (merge b c)) (merge (merge a b) c))

let prop_merge_upper_bound =
  QCheck.Test.make ~name:"merge is an upper bound (refs)" ~count:500
    (QCheck.pair arb_vtype arb_vtype) (fun (a, b) ->
      match (a, b, merge a b) with
      | Verifier.Vtype.Ref x, Verifier.Vtype.Ref _, Verifier.Vtype.Ref m ->
        Verifier.Oracle.is_subclass small_oracle ~sub:x ~super:m = `Yes
      | _ -> true)

(* --- Soundness: verified programs never fault. --- *)

(* Random programs over a fixed vocabulary: some are well-typed, some
   are garbage. The property: if the static verifier accepts, the
   interpreter never raises Runtime_fault. *)
let gen_random_program =
  let open QCheck.Gen in
  let instr =
    frequency
      [
        (6, map (fun k -> B.Const k) (int_range (-3) 100));
        (3, return B.Add);
        (2, return B.Sub);
        (2, return B.Mul);
        (2, return B.Dup);
        (2, return B.Pop);
        (2, return B.Swap);
        (1, return B.Dup_x1);
        (2, map (fun n -> B.Iload n) (int_range 0 3));
        (2, map (fun n -> B.Istore n) (int_range 0 3));
        (1, map (fun n -> B.Aload n) (int_range 0 3));
        (1, map (fun n -> B.Astore n) (int_range 0 3));
        (1, return (B.Push_str "x"));
        (1, return B.Null);
        (1, return B.Newarray);
        (1, return B.Arraylength);
        (1, return B.Iaload);
        (1, return B.Iastore);
        (1, return (B.Goto "end"));
        (1, map (fun c -> B.If_z (c, "end")) (oneofl [ I.Eq; I.Ne; I.Lt; I.Ge ]));
        ( 1,
          return
            (B.Invokestatic
               ("java/lang/String", "valueOf", "(I)Ljava/lang/String;")) );
      ]
  in
  let* n = int_range 1 25 in
  let* body = list_repeat n instr in
  return (body @ [ B.Label "end"; B.Const 0; B.Ireturn ])

let arb_program =
  QCheck.make
    ~print:(fun body ->
      String.concat "\n"
        (List.map
           (fun i ->
             match i with
             | B.Label l -> l ^ ":"
             | _ -> "  <instr>")
           body))
    gen_random_program

let prop_verified_never_faults =
  QCheck.Test.make ~name:"verified programs never fault" ~count:500 arb_program
    (fun body ->
      let cls =
        try Some (B.class_ "Rand" [ B.meth ~flags:static "f" "()I" body ])
        with _ -> None
      in
      match cls with
      | None -> true
      | Some cls -> (
        match SV.verify ~oracle:boot_oracle cls with
        | SV.Rejected _ -> true (* rejection is always safe *)
        | SV.Verified (cls', _) -> (
          let vm = Jvm.Bootlib.fresh_vm ~budget:200_000L () in
          ignore (Verifier.Rt_verifier.install vm);
          Jvm.Classreg.register vm.Jvm.Vmstate.reg cls';
          match Jvm.Interp.invoke vm ~cls:"Rand" ~name:"f" ~desc:"()I" [] with
          | _ -> true
          | exception Jvm.Vmstate.Throw _ -> true (* VM exceptions are safe *)
          | exception Jvm.Vmstate.Budget_exhausted -> true
          | exception Jvm.Vmstate.Runtime_fault msg ->
            QCheck.Test.fail_reportf "verified code faulted: %s" msg)))

(* A generator of *structured* well-typed programs — nested loops,
   branches, calls, arrays, object construction — built from typed
   fragments with net stack effect zero. Unlike the random generator
   above, every output must verify; and running the verifier's rewrite
   must preserve the program's result. *)
let gen_structured_program =
  let open QCheck.Gen in
  let fresh =
    let k = ref 0 in
    fun () ->
      incr k;
      Printf.sprintf "L%d" !k
  in
  (* Each fragment leaves the stack empty and scrambles int local 0.
     Sub-generators are constructed under the depth guard: building
     them eagerly would recurse without bound. *)
  let arith =
    let* k = int_range 1 50 in
    let* op = oneofl [ B.Add; B.Sub; B.Mul; B.Xor ] in
    return [ B.Iload 0; B.Const k; op; B.Istore 0 ]
  in
  let rec fragment depth =
    if depth <= 0 then arith
    else
    let branch =
      let* inner = fragment (depth - 1) in
      let* other = fragment (depth - 1) in
      let l_else = fresh () and l_end = fresh () in
      return
        ([ B.Iload 0; B.If_z (I.Lt, l_else) ]
        @ inner
        @ [ B.Goto l_end; B.Label l_else ]
        @ other
        @ [ B.Label l_end ])
    in
    let loop =
      let* inner = fragment (depth - 1) in
      let* count = int_range 1 4 in
      let top = fresh () and done_ = fresh () in
      return
        ([ B.Const count; B.Istore 1; B.Label top; B.Iload 1;
           B.If_z (I.Le, done_) ]
        @ inner
        @ [ B.Inc (1, -1); B.Goto top; B.Label done_ ])
    in
    let call =
      return
        [
          B.Iload 0;
          B.Invokestatic ("java/lang/String", "valueOf", "(I)Ljava/lang/String;");
          B.Invokevirtual ("java/lang/String", "hashCode", "()I");
          B.Const 1023;
          B.And;
          B.Istore 0;
        ]
    in
    let arrays =
      let* len = int_range 1 8 in
      return
        [
          B.Const len;
          B.Newarray;
          B.Astore 2;
          B.Aload 2;
          B.Const 0;
          B.Iload 0;
          B.Iastore;
          B.Aload 2;
          B.Const 0;
          B.Iaload;
          B.Aload 2;
          B.Arraylength;
          B.Add;
          B.Istore 0;
        ]
    in
    let construct =
      return
        [
          B.New "java/lang/Object";
          B.Dup;
          B.Invokespecial ("java/lang/Object", "<init>", "()V");
          B.Invokevirtual ("java/lang/Object", "hashCode", "()I");
          B.Const 255;
          B.And;
          B.Iload 0;
          B.Add;
          B.Istore 0;
        ]
    in
    let* parts =
      list_size (int_range 1 3)
        (oneof [ arith; branch; loop; call; arrays; construct ])
    in
    return (List.concat parts)
  in
  let* depth = int_range 0 2 in
  let* body = fragment depth in
  return ([ B.Iload 0; B.Istore 0 ] @ body @ [ B.Iload 0; B.Ireturn ])

let prop_structured_always_verifies =
  QCheck.Test.make ~name:"structured well-typed programs always verify"
    ~count:100
    (QCheck.make gen_structured_program)
    (fun body ->
      let cls = B.class_ "Gen" [ B.meth ~flags:static "f" "(I)I" body ] in
      match SV.verify ~oracle:boot_oracle cls with
      | SV.Verified (cls', _) -> (
        (* and the (possibly rewritten) program still runs to the same
           result as the original *)
        let run cls =
          let vm = Jvm.Bootlib.fresh_vm ~budget:500_000L () in
          ignore (Verifier.Rt_verifier.install vm);
          Jvm.Classreg.register vm.Jvm.Vmstate.reg cls;
          match
            Jvm.Interp.invoke vm ~cls:"Gen" ~name:"f" ~desc:"(I)I"
              [ V.Int 37l ]
          with
          | Some (V.Int r) -> Some r
          | _ -> None
          | exception Jvm.Vmstate.Throw _ -> None
        in
        match (run cls, run cls') with
        | Some a, Some b -> Int32.equal a b
        | None, None -> true
        | _ -> false)
      | SV.Rejected (errors, _) ->
        QCheck.Test.fail_reportf "well-typed program rejected: %s"
          (String.concat "; " (List.map Verifier.Verror.to_string errors)))

(* Mutation soundness: corrupt encoded bytes; anything that still
   decodes and verifies must not fault the interpreter. *)
let prop_mutation_soundness =
  QCheck.Test.make ~name:"mutated classes: decode+verify => no fault"
    ~count:300
    (QCheck.pair (QCheck.make gen_random_program) (QCheck.pair QCheck.small_nat QCheck.small_nat))
    (fun (body, (pos_seed, byte_seed)) ->
      match B.class_ "Mut" [ B.meth ~flags:static "f" "()I" body ] with
      | exception _ -> true
      | cls -> (
        let bytes = Bytes.of_string (Bytecode.Encode.class_to_bytes cls) in
        let pos = pos_seed mod Bytes.length bytes in
        Bytes.set_uint8 bytes pos (byte_seed land 0xff);
        match Bytecode.Decode.class_of_bytes (Bytes.to_string bytes) with
        | exception Bytecode.Decode.Format_error _ -> true
        | mutated when not (String.equal mutated.CF.name "Mut") -> true
        | mutated -> (
          match SV.verify ~oracle:boot_oracle mutated with
          | SV.Rejected _ -> true
          | SV.Verified (cls', _) -> (
            let vm = Jvm.Bootlib.fresh_vm ~budget:200_000L () in
            ignore (Verifier.Rt_verifier.install vm);
            Jvm.Classreg.register vm.Jvm.Vmstate.reg cls';
            match Jvm.Interp.invoke vm ~cls:"Mut" ~name:"f" ~desc:"()I" [] with
            | _ -> true
            | exception Jvm.Vmstate.Throw _ -> true
            | exception Jvm.Vmstate.Budget_exhausted -> true
            | exception Jvm.Vmstate.Runtime_fault msg ->
              QCheck.Test.fail_reportf "mutant passed verification but faulted: %s"
                msg))))

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_merge_idempotent;
        prop_merge_commutative;
        prop_merge_associative;
        prop_merge_upper_bound;
        prop_verified_never_faults;
        prop_structured_always_verifies;
        prop_mutation_soundness;
      ]
  in
  Alcotest.run "verifier"
    [
      ( "accepts",
        [
          Alcotest.test_case "hello world" `Quick test_accepts_hello;
          Alcotest.test_case "loops and exceptions" `Quick
            test_accepts_loops_and_exceptions;
          Alcotest.test_case "object construction" `Quick
            test_accepts_object_construction;
          Alcotest.test_case "jsr/ret" `Quick test_accepts_jsr_ret;
          Alcotest.test_case "field init before super" `Quick
            test_accepts_field_init_before_super;
          Alcotest.test_case "interface call" `Quick test_accepts_interface_call;
        ] );
      ( "reflect",
        [
          Alcotest.test_case "roundtrip" `Quick test_reflect_roundtrip;
          Alcotest.test_case "annotate/read" `Quick
            test_reflect_annotate_and_read;
          Alcotest.test_case "fast oracle equivalent" `Quick
            test_reflect_fast_oracle_equivalent;
          Alcotest.test_case "survives the wire" `Quick
            test_reflect_attribute_survives_wire;
        ] );
      ( "rejects",
        [
          Alcotest.test_case "stack underflow" `Quick test_rejects_underflow;
          Alcotest.test_case "type confusion" `Quick test_rejects_type_confusion;
          Alcotest.test_case "int as reference" `Quick test_rejects_int_as_ref;
          Alcotest.test_case "wrong return" `Quick test_rejects_wrong_return;
          Alcotest.test_case "merge height mismatch" `Quick
            test_rejects_merge_height_mismatch;
          Alcotest.test_case "uninitialized use" `Quick
            test_rejects_uninitialized_use;
          Alcotest.test_case "falls off end" `Quick test_rejects_falls_off_end;
          Alcotest.test_case "bad field type" `Quick test_rejects_bad_field_type;
          Alcotest.test_case "missing member" `Quick
            test_rejects_missing_member_of_known_class;
          Alcotest.test_case "wrong arg type" `Quick test_rejects_wrong_arg_type;
          Alcotest.test_case "stack beyond declared" `Quick
            test_rejects_stack_overflow_beyond_declared;
          Alcotest.test_case "duplicate method" `Quick
            test_rejects_duplicate_method;
          Alcotest.test_case "non-implementor as interface" `Quick
            test_rejects_non_implementor_as_interface;
          Alcotest.test_case "private access enforced" `Quick
            test_private_access_enforced;
          Alcotest.test_case "ret via non-retaddr" `Quick
            test_rejects_ret_via_non_retaddr;
          Alcotest.test_case "backward-branch stack growth" `Quick
            test_rejects_backward_branch_stack_growth;
          Alcotest.test_case "retaddr arithmetic" `Quick
            test_rejects_retaddr_arithmetic;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "unknown class -> assumption" `Quick
            test_unknown_class_becomes_assumption;
          Alcotest.test_case "self-verifying ok" `Quick
            test_self_verifying_runs_when_assumption_holds;
          Alcotest.test_case "broken assumption" `Quick
            test_self_verifying_fails_when_assumption_broken;
          Alcotest.test_case "descriptor mismatch" `Quick
            test_self_verifying_fails_on_descriptor_mismatch;
          Alcotest.test_case "class-wide at clinit" `Quick
            test_class_wide_assumption_checked_at_clinit;
          Alcotest.test_case "error class propagates" `Quick
            test_error_class_propagates;
          Alcotest.test_case "filter rejects" `Quick test_filter_rejects_via_exception;
          Alcotest.test_case "rewrite preserves output" `Quick
            test_rewrite_preserves_output;
        ] );
      ("properties", props);
    ]
