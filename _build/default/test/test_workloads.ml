(* Tests for the workload generators: the Figure 5 applications match
   their published parameters, verify cleanly, run deterministically,
   and survive the full service pipeline; the applet population matches
   its calibration targets. *)

let check = Alcotest.check
let fail = Alcotest.fail

let small_apps =
  lazy (List.map Workloads.Apps.build_small Workloads.Apps.all_specs)

let test_fig5_parameters () =
  List.iter
    (fun spec ->
      let app = Workloads.Apps.build_small spec in
      check Alcotest.int
        (spec.Workloads.Appgen.name ^ " class count")
        spec.Workloads.Appgen.classes
        (List.length
           (List.filter
              (fun c ->
                (* count only the app's own package, excluding shared
                   helpers like wl/Account *)
                Security.Policy.prefix_match spec.Workloads.Appgen.prefix
                  c.Bytecode.Classfile.name)
              app.Workloads.Appgen.classes));
      let ratio =
        Float.of_int app.Workloads.Appgen.total_bytes
        /. Float.of_int spec.Workloads.Appgen.target_bytes
      in
      check Alcotest.bool
        (Printf.sprintf "%s size within 25%% of Fig.5 (%0.2f)"
           spec.Workloads.Appgen.name ratio)
        true
        (ratio > 0.75 && ratio < 1.25))
    Workloads.Apps.all_specs

let test_apps_verify () =
  List.iter
    (fun app ->
      let oracle =
        Verifier.Oracle.of_classes
          (Jvm.Bootlib.boot_classes () @ app.Workloads.Appgen.classes)
      in
      List.iter
        (fun cf ->
          match Verifier.Static_verifier.verify ~oracle cf with
          | Verifier.Static_verifier.Verified _ -> ()
          | Verifier.Static_verifier.Rejected (errors, _) ->
            fail
              (cf.Bytecode.Classfile.name ^ ": "
              ^ String.concat ";"
                  (List.map Verifier.Verror.to_string errors)))
        app.Workloads.Appgen.classes)
    (Lazy.force small_apps)

let run_app app =
  let vm = Jvm.Bootlib.fresh_vm () in
  List.iter (Jvm.Classreg.register vm.Jvm.Vmstate.reg)
    app.Workloads.Appgen.classes;
  match Jvm.Interp.run_main vm app.Workloads.Appgen.entry with
  | Ok () -> Jvm.Vmstate.output vm
  | Error e -> fail (Jvm.Interp.describe_throwable e)

let test_apps_run_deterministically () =
  List.iter
    (fun spec ->
      let a = run_app (Workloads.Apps.build_small spec) in
      let b = run_app (Workloads.Apps.build_small spec) in
      check Alcotest.string
        (spec.Workloads.Appgen.name ^ " deterministic")
        a b;
      check Alcotest.bool "produced a checksum" true (String.length a > 0))
    Workloads.Apps.all_specs

let test_apps_survive_pipeline () =
  (* Every class of every app passes the full service pipeline and the
     transformed app produces identical output. *)
  List.iter
    (fun spec ->
      let app = Workloads.Apps.build_small spec in
      let reference = run_app app in
      let r =
        Dvm.Experiment.run ~arch:(Dvm.Experiment.Dvm { cached = false }) app
      in
      check Alcotest.string
        (spec.Workloads.Appgen.name ^ " output preserved")
        reference r.Dvm.Experiment.r_output)
    [ Workloads.Apps.jlex; Workloads.Apps.cassowary ]

let test_applet_population () =
  let pop = Workloads.Applets.population () in
  check Alcotest.int "100 applets" 100 (List.length pop);
  let mean = Workloads.Applets.mean_bytes pop in
  check Alcotest.bool
    (Printf.sprintf "mean size ~2-4KB (%d)" mean)
    true
    (mean > 1_500 && mean < 5_000);
  let lat = Workloads.Applets.mean_latency_ms pop in
  check Alcotest.bool
    (Printf.sprintf "mean latency ~2-3s (%0.0f)" lat)
    true
    (lat > 1_800.0 && lat < 3_200.0);
  (* deterministic *)
  let pop2 = Workloads.Applets.population () in
  check Alcotest.bool "deterministic" true (pop = pop2)

let test_applets_realizable () =
  let pop = Workloads.Applets.population ~n:10 () in
  List.iter
    (fun ap ->
      let cf = Workloads.Applets.realize ap in
      let bytes = Bytecode.Encode.class_to_bytes cf in
      (* decodable and at least vaguely the right size *)
      let cf2 = Bytecode.Decode.class_of_bytes bytes in
      check Alcotest.bool "roundtrips" true (cf = cf2))
    pop

let test_startup_apps_cover_band () =
  (* Cold fractions sit in the paper's 10-30% never-invoked band. *)
  List.iter
    (fun m ->
      check Alcotest.bool
        (m.Opt.Startup.app_name ^ " cold fraction in band")
        true
        (m.Opt.Startup.cold_fraction >= 0.10
        && m.Opt.Startup.cold_fraction <= 0.30))
    Workloads.Applets.startup_apps;
  check Alcotest.int "six apps" 6 (List.length Workloads.Applets.startup_apps)

let () =
  Alcotest.run "workloads"
    [
      ( "fig5 apps",
        [
          Alcotest.test_case "parameters" `Quick test_fig5_parameters;
          Alcotest.test_case "verify" `Quick test_apps_verify;
          Alcotest.test_case "deterministic" `Quick
            test_apps_run_deterministically;
          Alcotest.test_case "survive pipeline" `Slow
            test_apps_survive_pipeline;
        ] );
      ( "applets",
        [
          Alcotest.test_case "population" `Quick test_applet_population;
          Alcotest.test_case "realizable" `Quick test_applets_realizable;
          Alcotest.test_case "startup apps" `Quick test_startup_apps_cover_band;
        ] );
    ]
