(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§4–§5), printing the paper's reported series
   next to the measured ones. Absolute numbers are calibrations (see
   DESIGN.md); the claims under test are the shapes — who wins, by
   roughly what factor, and where crossovers fall.

     dune exec bench/main.exe            runs everything
     dune exec bench/main.exe fig6       runs one experiment
     (fig5 fig6 fig7 fig8 fig9 applets fig10 fig11 fig12 ablations elide
      faults farm chaos micro perf)
*)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n--- %s ---\n" title

let s_of_us us = Int64.to_float us /. 1_000_000.0

(* Each benchmark phase runs with telemetry enabled and emits a metrics
   snapshot next to its results, so a figure's numbers come with the
   counters and latency distributions that produced them. Set
   DVM_TELEMETRY=0 to opt out (e.g. when shaving wall-clock noise).
   [micro] is exempt: its Bechamel loops are wall-clock-sensitive and
   run with telemetry disabled, the default. *)
let telemetry_wanted =
  match Sys.getenv_opt "DVM_TELEMETRY" with
  | Some ("0" | "false" | "off") -> false
  | _ -> true

(* --- BENCH_<phase>.json: the committed perf trajectory. ---

   The json phases push their headline numbers (throughput, tail
   quantiles, goodput, digests, SLO reports) here as raw JSON values;
   [with_phase ~json:true] writes them, together with the phase's
   counters and histograms, to BENCH_<phase>.json in the working
   directory. Every value except the wall_ms line is a function of the
   virtual clock and the pinned seeds, so the file is byte-identical
   run to run modulo that line — CI diffs it against the committed
   baseline (ignoring wall_ms) to pin the perf trajectory, and the
   [perf] phase reports the wall_ms columns as the speed record. *)
let bench_summary : (string * string) list ref = ref []
let bench_put k v = bench_summary := !bench_summary @ [ (k, v) ]
let write_bench ?(hists = true) ~wall_ms name =
  (* The virtual/wall ratio gauge is the one wall-clock-derived metric;
     zero it so the file stays byte-stable across runs. *)
  Telemetry.set_gauge Telemetry.default "simnet.virtual_wall_ratio_x1000" 0L;
  let summary =
    String.concat ",\n    "
      (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) !bench_summary)
  in
  let path = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out path in
  (* wall_ms is host time and varies run to run; every diff of these
     files (make bench-pin / perf-compare, the perf phase itself)
     ignores that one line, so the rest stays a byte-stable pin while
     the trajectory still records speed. *)
  Printf.fprintf oc
    "{\n\
    \  \"phase\": %S,\n\
    \  \"wall_ms\": %d,\n\
    \  \"summary\": {\n\
    \    %s\n\
    \  },\n\
    \  \"metrics\": %s\n\
     }\n"
    name wall_ms summary
    (if hists then Telemetry.metrics_json Telemetry.default
     else begin
       (* Phases that run on the host clock (no simnet engine) have
          wall-time histograms that drift run to run; pin only the
          deterministic counters and gauges for those. *)
       let kv (k, v) =
         Printf.sprintf "\"%s\":%Ld" (Telemetry.json_escape k) v
       in
       Printf.sprintf "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":[]}"
         (String.concat "," (List.map kv (Telemetry.counters Telemetry.default)))
         (String.concat "," (List.map kv (Telemetry.gauges Telemetry.default)))
     end);
  close_out oc;
  Printf.printf "\n--- %s: wrote %s ---\n" name path

(* [json] additionally emits the phase's latency histograms as one
   JSON line (name, count, p50/p95/p99, ...) for machine consumers,
   and writes the BENCH_<phase>.json baseline — the load/fault phases
   where tail latency is the result. *)
let with_phase ?(json = false) ?(hists = true) name f =
  if not telemetry_wanted then f ()
  else begin
    Telemetry.reset Telemetry.default;
    Telemetry.enable Telemetry.default;
    bench_summary := [];
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        Printf.printf "\n--- %s: telemetry ---\n%s" name
          (Telemetry.metrics_snapshot Telemetry.default);
        if json then begin
          Printf.printf "\n--- %s: histograms (json) ---\n%s\n" name
            (Telemetry.histograms_json Telemetry.default);
          let wall_ms =
            int_of_float ((Unix.gettimeofday () -. t0) *. 1000.0)
          in
          write_bench ~hists ~wall_ms name
        end;
        Telemetry.disable Telemetry.default)
      f
  end

(* --- Figure 5: benchmark description table. --- *)

let fig5 () =
  section "Figure 5: benchmark applications";
  Printf.printf "%-11s %9s %9s %9s %9s  %s\n" "Name" "Size(pap)" "Size(us)"
    "Cls(pap)" "Cls(us)" "Description";
  List.iter
    (fun spec ->
      let app = Workloads.Apps.build spec in
      let desc =
        List.assoc spec.Workloads.Appgen.name Workloads.Apps.descriptions
      in
      Printf.printf "%-11s %8dK %8dK %9d %9d  %s\n" spec.Workloads.Appgen.name
        (spec.Workloads.Appgen.target_bytes / 1024)
        (app.Workloads.Appgen.total_bytes / 1024)
        spec.Workloads.Appgen.classes
        (List.length app.Workloads.Appgen.classes)
        desc)
    Workloads.Apps.all_specs

(* --- Figure 6: end-to-end application performance. --- *)

let archs =
  [
    Dvm.Experiment.Monolithic;
    Dvm.Experiment.Dvm { cached = false };
    Dvm.Experiment.Dvm { cached = true };
  ]

let fig6_results =
  lazy
    (List.map
       (fun spec ->
         let app = Workloads.Apps.build spec in
         ( spec.Workloads.Appgen.name,
           List.map (fun arch -> (arch, Dvm.Experiment.run ~arch app)) archs ))
       Workloads.Apps.all_specs)

let fig6 () =
  section
    "Figure 6: application performance under monolithic and distributed VMs";
  Printf.printf
    "(execution time in simulated seconds; paper reports DVM ~11%% slower\n\
    \ uncached on average, and faster than monolithic once cached)\n\n";
  Printf.printf "%-11s %12s %12s %12s %10s\n" "App" "Monolithic" "DVM"
    "DVM cached" "DVM ovhd";
  let total_ovhd = ref 0.0 in
  List.iter
    (fun (name, results) ->
      let w arch = s_of_us (List.assoc arch results).Dvm.Experiment.r_wall_us in
      let mono = w Dvm.Experiment.Monolithic in
      let dvm = w (Dvm.Experiment.Dvm { cached = false }) in
      let cached = w (Dvm.Experiment.Dvm { cached = true }) in
      let ovhd = 100.0 *. (dvm -. mono) /. mono in
      total_ovhd := !total_ovhd +. ovhd;
      Printf.printf "%-11s %11.2fs %11.2fs %11.2fs %+9.1f%%\n" name mono dvm
        cached ovhd)
    (Lazy.force fig6_results);
  Printf.printf "\nAverage uncached overhead: %+.1f%% (paper: ~+11%%)\n"
    (!total_ovhd /. 5.0);
  List.iter
    (fun (name, results) ->
      let outs =
        List.sort_uniq compare
          (List.map (fun (_, r) -> r.Dvm.Experiment.r_output) results)
      in
      if List.length outs <> 1 then
        Printf.printf "WARNING: %s outputs diverge across architectures!\n"
          name)
    (Lazy.force fig6_results)

(* --- Figure 7: client-side verification overhead. --- *)

let fig7 () =
  section "Figure 7: client-side verification work (seconds of client time)";
  Printf.printf
    "(monolithic clients verify everything at load time; DVM clients run\n\
    \ only the deferred link checks injected by the static verifier)\n\n";
  Printf.printf "%-11s %16s %16s\n" "App" "Monolithic" "DVM client";
  List.iter
    (fun (name, results) ->
      let mono = List.assoc Dvm.Experiment.Monolithic results in
      let dvm = List.assoc (Dvm.Experiment.Dvm { cached = false }) results in
      let mono_s =
        Dvm.Costs.monolithic_verify_us_per_check
        *. Float.of_int mono.Dvm.Experiment.r_static_checks /. 1e6
      in
      let dvm_s =
        Float.of_int dvm.Dvm.Experiment.r_dynamic_checks *. 10.0 /. 1e6
      in
      Printf.printf "%-11s %15.3fs %15.5fs\n" name mono_s dvm_s)
    (Lazy.force fig6_results)

(* --- Figure 8: static vs dynamic check counts. --- *)

let fig8 () =
  section "Figure 8: breakdown of static and dynamic verification checks";
  Printf.printf
    "(paper values in parentheses; our checker counts coarser-grained\n\
    \ constraints, so magnitudes differ while the static:dynamic ratio —\n\
    \ the claim — holds)\n\n";
  let paper =
    [
      ("jlex", (291679, 371));
      ("javacup", (415825, 806));
      ("pizza", (289495, 541));
      ("instantdb", (1066944, 3426));
      ("cassowary", (1965538, 2346));
    ]
  in
  Printf.printf "%-11s %22s %22s\n" "App" "Static checks" "Dynamic checks";
  List.iter
    (fun (name, results) ->
      let dvm = List.assoc (Dvm.Experiment.Dvm { cached = false }) results in
      let ps, pd = List.assoc name paper in
      Printf.printf "%-11s %10d (%8d) %10d (%8d)\n" name
        dvm.Dvm.Experiment.r_static_checks ps
        dvm.Dvm.Experiment.r_dynamic_checks pd)
    (Lazy.force fig6_results)

(* --- Figure 9: security microbenchmarks. --- *)

let fig9 () =
  section "Figure 9: security service microbenchmarks (times in ms)";
  let policy =
    Security.Policy_xml.parse
      {|<policy default="allow">
          <domain name="apps">
            <grant permission="property.get"/>
            <grant permission="file.open"/>
            <grant permission="thread.setPriority"/>
            <grant permission="file.read"/>
          </domain>
          <operation permission="property.get" class="java/lang/System" method="getProperty"/>
          <operation permission="file.open" class="java/io/FileInputStream" method="&lt;init&gt;"/>
          <operation permission="thread.setPriority" class="java/lang/Thread" method="setPriority"/>
          <operation permission="file.read" class="java/io/FileInputStream" method="read"/>
        </policy>|}
  in
  let module B = Bytecode.Builder in
  let static = [ Bytecode.Classfile.Public; Bytecode.Classfile.Static ] in
  let ops =
    [
      ( "Get Property",
        "prop",
        [
          B.Push_str "user.name";
          B.Invokestatic
            ( "java/lang/System",
              "getProperty",
              "(Ljava/lang/String;)Ljava/lang/String;" );
          B.Pop;
          B.Return;
        ] );
      ( "Open File",
        "openf",
        [
          B.New "java/io/FileInputStream";
          B.Dup;
          B.Push_str "/data";
          B.Invokespecial
            ("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V");
          B.Pop;
          B.Return;
        ] );
      ( "Change Thread Priority",
        "prio",
        [
          B.Invokestatic
            ("java/lang/Thread", "currentThread", "()Ljava/lang/Thread;");
          B.Const 7;
          B.Invokevirtual ("java/lang/Thread", "setPriority", "(I)V");
          B.Return;
        ] );
      ( "Read File",
        "readf",
        [
          (* read from a stream opened during setup: the paper's
             baseline is the read alone *)
          B.Getstatic ("bench/SecOps", "in", "Ljava/io/FileInputStream;");
          B.Invokevirtual ("java/io/FileInputStream", "read", "()I");
          B.Pop;
          B.Return;
        ] );
    ]
  in
  let snippet_cls =
    B.class_ "bench/SecOps"
      ~fields:[ B.field ~flags:static "in" "Ljava/io/FileInputStream;" ]
      (B.meth ~flags:static "setup" "()V"
         [
           B.New "java/io/FileInputStream";
           B.Dup;
           B.Push_str "/data";
           B.Invokespecial
             ("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V");
           B.Putstatic ("bench/SecOps", "in", "Ljava/io/FileInputStream;");
           B.Return;
         ]
      :: List.map (fun (_, m, body) -> B.meth ~flags:static m "()V" body) ops)
  in
  let prep vm =
    Hashtbl.replace vm.Jvm.Vmstate.props "user.name" "egs";
    Hashtbl.replace vm.Jvm.Vmstate.files "/data" "datadata"
  in
  let measure vm name =
    let before = Jvm.Vmstate.total_cost vm in
    ignore (Jvm.Interp.invoke vm ~cls:"bench/SecOps" ~name ~desc:"()V" []);
    Int64.to_float (Int64.sub (Jvm.Vmstate.total_cost vm) before) /. 1000.0
  in
  let setup vm =
    ignore (Jvm.Interp.invoke vm ~cls:"bench/SecOps" ~name:"setup" ~desc:"()V" [])
  in
  let base_vm = Jvm.Bootlib.fresh_vm () in
  prep base_vm;
  Jvm.Classreg.register base_vm.Jvm.Vmstate.reg snippet_cls;
  setup base_vm;
  let jdk_vm = Jvm.Bootlib.fresh_vm () in
  prep jdk_vm;
  Jvm.Classreg.register jdk_vm.Jvm.Vmstate.reg snippet_cls;
  setup jdk_vm;
  jdk_vm.Jvm.Vmstate.security_hook <-
    Some (Dvm.Client.jdk_security_hook jdk_vm policy ~sid:"apps");
  let rewritten = Security.Rewriter.rewrite_class policy snippet_cls in
  let paper =
    [
      ("Get Property", (0.0020, 0.0488, 0.0468, 5.830, 0.0092, 0.0072));
      ("Open File", (1.406, 8.631, 7.224, 6.406, 1.430, 0.0238));
      ( "Change Thread Priority",
        (0.0638, 0.0645, 0.0007, 5.026, 0.0815, 0.0177) );
      ("Read File", (0.0141, nan, nan, 4.146, 0.0368, 0.0227));
    ]
  in
  Printf.printf "%-24s %9s %9s %9s %9s %9s %9s\n" "" "Baseline" "JDK chk"
    "JDK ovh" "DVM dl" "DVM chk" "DVM ovh";
  List.iter
    (fun (label, m, _) ->
      let baseline = measure base_vm m in
      let jdk = measure jdk_vm m in
      (* A fresh DVM client per row so each row's first check pays the
         policy download, as in the paper's "download" column. *)
      let server = Security.Server.create policy in
      let dvm_vm = Jvm.Bootlib.fresh_vm () in
      prep dvm_vm;
      let enf = Security.Enforcement.install dvm_vm ~server ~sid:"apps" in
      Jvm.Classreg.register dvm_vm.Jvm.Vmstate.reg rewritten;
      setup dvm_vm;
      (* setup may itself have triggered a check: clear the cache so
         the measured first check pays the policy download, as the
         paper's "download" column does *)
      Security.Enforcement.invalidate enf;
      let download = measure dvm_vm m in
      let dvm = measure dvm_vm m in
      let pb, pjc, pjo, pdl, pdc, pdo = List.assoc label paper in
      Printf.printf "%-24s %9.4f %9.4f %9.4f %9.3f %9.4f %9.4f\n" label
        baseline jdk (jdk -. baseline) download dvm (dvm -. baseline);
      Printf.printf "%-24s %9.4f %9.4f %9.4f %9.3f %9.4f %9.4f  (paper)\n" ""
        pb pjc pjo pdl pdc pdo)
    ops;
  Printf.printf
    "\nNote: the JDK cannot check Read File at all (no anticipated hook);\n\
     the DVM guards it through rewriting - the paper's qualitative point.\n"

(* --- §4.1.2: applet download latency. --- *)

let applets () =
  section "Section 4.1.2: applet download latency through the proxy";
  let st = Dvm.Applet_study.run () in
  Printf.printf "%-40s %10s %10s\n" "" "measured" "paper";
  Printf.printf "%-40s %8.0fms %10s\n" "mean Internet fetch latency"
    st.Dvm.Applet_study.mean_internet_ms "2198ms";
  Printf.printf "%-40s %8.0fms %10s\n" "  standard deviation"
    st.Dvm.Applet_study.stddev_internet_ms "3752ms";
  Printf.printf "%-40s %8.0fms %10s\n" "proxy parse+instrument (uncached)"
    st.Dvm.Applet_study.mean_proxy_overhead_ms "265ms";
  Printf.printf "%-40s %8.1f%% %10s\n" "  as %% of load latency"
    st.Dvm.Applet_study.overhead_percent "12%";
  Printf.printf "%-40s %8.0fms %10s\n" "cached fetch (another client primed)"
    st.Dvm.Applet_study.mean_cached_ms "338ms"

(* --- Figure 10: proxy throughput vs number of clients. --- *)

let fig10 () =
  section "Figure 10: sustained proxy throughput vs number of clients";
  Printf.printf
    "(caching disabled: worst case. Paper: linear to 250 clients, then\n\
    \ degradation as the proxy's 64 MB is exhausted; fetch latency\n\
    \ roughly constant at 1.0-1.2 s/kB in the linear range)\n\n";
  Printf.printf "%8s %16s %14s %12s %10s\n" "Clients" "Throughput(B/s)"
    "Latency(ms)" "s/kB" "CPU util";
  List.iter
    (fun p ->
      Printf.printf "%8d %16.0f %14.0f %12.2f %10.2f\n" p.Dvm.Scaling.clients
        p.Dvm.Scaling.throughput_bytes_per_s
        (p.Dvm.Scaling.mean_latency_us /. 1000.0)
        p.Dvm.Scaling.mean_latency_s_per_kb p.Dvm.Scaling.proxy_utilization)
    (Dvm.Scaling.sweep ~duration_s:40
       [ 10; 25; 50; 100; 150; 200; 250; 270; 290; 310 ])

(* --- Figures 11 and 12: startup vs bandwidth; repartitioning. --- *)

let bandwidths =
  [
    28_800; 56_000; 128_000; 256_000; 512_000; 1_000_000; 2_000_000;
    4_000_000; 8_000_000;
  ]

let fig11 () =
  section "Figure 11: application start-up time vs network bandwidth (s)";
  let latency_us = 200_000 in
  Printf.printf "%-15s" "KB/s:";
  List.iter
    (fun bw -> Printf.printf "%9.0f" (Float.of_int bw /. 8.0 /. 1000.0))
    bandwidths;
  print_newline ();
  List.iter
    (fun m ->
      Printf.printf "%-15s" m.Opt.Startup.app_name;
      List.iter
        (fun bw ->
          Printf.printf "%9.1f"
            (Float.of_int
               (Opt.Startup.startup_time_us m ~bandwidth_bps:bw ~latency_us
                  ~repartitioned:false)
            /. 1e6))
        bandwidths;
      print_newline ())
    Workloads.Applets.startup_apps;
  Printf.printf
    "\n(compare: ~900s for Java WorkShop at 28.8 Kb/s falling to tens of\n\
     seconds at LAN bandwidth, log-linear shape as in the paper)\n"

let fig12 () =
  section "Figure 12: %% start-up improvement with repartitioning";
  let latency_us = 200_000 in
  Printf.printf "%-15s" "KB/s:";
  List.iter
    (fun bw -> Printf.printf "%9.0f" (Float.of_int bw /. 8.0 /. 1000.0))
    bandwidths;
  print_newline ();
  List.iter
    (fun m ->
      Printf.printf "%-15s" m.Opt.Startup.app_name;
      List.iter
        (fun bw ->
          Printf.printf "%8.1f%%"
            (Opt.Startup.improvement_percent m ~bandwidth_bps:bw ~latency_us))
        bandwidths;
      print_newline ())
    Workloads.Applets.startup_apps;
  subsection "measured on a generated app (real split, real profile)";
  let app = Workloads.Apps.build_small Workloads.Apps.jlex in
  let instrumented =
    List.map
      (Monitor.Instrument.instrument_class
         ~runtime_class:Monitor.Profiler.profiler_class)
      app.Workloads.Appgen.classes
  in
  let vm = Jvm.Bootlib.fresh_vm () in
  let prof = Monitor.Profiler.install vm () in
  List.iter (Jvm.Classreg.register vm.Jvm.Vmstate.reg) instrumented;
  (match Jvm.Interp.run_main vm app.Workloads.Appgen.entry with
  | Ok () -> ()
  | Error e ->
    Printf.printf "profile run failed: %s\n" (Jvm.Interp.describe_throwable e));
  let profile = Opt.First_use.of_profiler prof in
  let _, results =
    Opt.Repartition.split_app profile app.Workloads.Appgen.classes
  in
  let orig =
    List.fold_left
      (fun a c -> a + Bytecode.Encode.class_size c)
      0 app.Workloads.Appgen.classes
  in
  let hot =
    List.fold_left (fun a r -> a + r.Opt.Repartition.hot_bytes) 0 results
  in
  Printf.printf
    "jlex: original %d bytes; hot (startup) transfer after split %d bytes\n\
     => %.1f%% of startup transfer removed at method granularity\n" orig hot
    (100.0 *. Float.of_int (orig - hot) /. Float.of_int orig);
  subsection "transport modes on real profiles (section 5 motivation)";
  Printf.printf "%-11s %10s %10s %10s %14s\n" "App" "archive" "lazy-cls"
    "repart" "never-invoked";
  List.iter
    (fun spec ->
      let app = Workloads.Apps.build_small spec in
      let instrumented =
        List.map
          (Monitor.Instrument.instrument_class
             ~runtime_class:Monitor.Profiler.profiler_class)
          app.Workloads.Appgen.classes
      in
      let vm = Jvm.Bootlib.fresh_vm () in
      let prof = Monitor.Profiler.install vm () in
      List.iter (Jvm.Classreg.register vm.Jvm.Vmstate.reg) instrumented;
      (match Jvm.Interp.run_main vm app.Workloads.Appgen.entry with
      | Ok () -> ()
      | Error _ -> ());
      let profile = Opt.First_use.of_profiler prof in
      let b mode =
        Opt.Transport.bytes_transferred mode profile app.Workloads.Appgen.classes
      in
      Printf.printf "%-11s %9dK %9dK %9dK %13.1f%%\n"
        spec.Workloads.Appgen.name
        (b Opt.Transport.Whole_archive / 1024)
        (b Opt.Transport.Lazy_class / 1024)
        (b Opt.Transport.Repartitioned / 1024)
        (100.0
        *. Opt.Transport.never_invoked_fraction profile
             app.Workloads.Appgen.classes))
    Workloads.Apps.all_specs;
  Printf.printf
    "(paper: even lazy class loading leaves 10-30%% of downloaded code\n\
     never invoked - the repartitioning service's motivation)\n"

(* --- Ablations. --- *)

let ablations () =
  section "Ablations (design choices called out in DESIGN.md)";
  let app = Workloads.Apps.build_small Workloads.Apps.jlex in
  let oracle =
    Verifier.Oracle.of_classes
      (Jvm.Bootlib.boot_classes () @ app.Workloads.Appgen.classes)
  in
  let mk_filters () =
    [
      Verifier.Static_verifier.filter ~oracle ();
      Security.Rewriter.filter Dvm.Experiment.standard_policy;
      Monitor.Instrument.audit_filter ();
    ]
  in
  subsection "1. parse-once pipeline vs parse-per-service";
  let total shared =
    List.fold_left
      (fun acc cf ->
        let bytes = Bytecode.Encode.class_to_bytes cf in
        let o =
          if shared then Proxy.Pipeline.run (mk_filters ()) bytes
          else Proxy.Pipeline.run_parse_per_service (mk_filters ()) bytes
        in
        Int64.add acc (Proxy.Pipeline.total_cost o))
      0L app.Workloads.Appgen.classes
  in
  let once = total true and per = total false in
  Printf.printf
    "proxy CPU, parse-once: %.2fs  parse-per-service: %.2fs (%.1fx)\n"
    (s_of_us once) (s_of_us per)
    (Int64.to_float per /. Int64.to_float once);
  subsection "2. pipeline order invariance (behaviour)";
  let run_order filters =
    let engine = Simnet.Engine.create () in
    let proxy =
      Proxy.create engine
        ~origin:(Workloads.Appgen.origin app)
        ~origin_latency:(fun _ -> 0L)
        ~filters ()
    in
    let server = Security.Server.create Dvm.Experiment.standard_policy in
    let client =
      Dvm.Client.create_dvm ~security_server:server ~sid:"apps"
        ~provider:(Proxy.provider proxy) ()
    in
    match Dvm.Client.run_main client app.Workloads.Appgen.entry with
    | Ok () -> Jvm.Vmstate.output client.Dvm.Client.vm
    | Error e -> "error: " ^ Jvm.Interp.describe_throwable e
  in
  let f1 = mk_filters () in
  let f2 = match mk_filters () with [ a; b; c ] -> [ c; b; a ] | l -> l in
  let o1 = run_order f1 and o2 = run_order f2 in
  Printf.printf
    "verify->security->audit output = audit->security->verify: %b\n"
    (String.equal o1 o2);
  subsection "3. signing cost";
  let key = Dsig.Sign.make_key ~key_id:"org" ~secret:"k" in
  let unsigned = total true in
  let signed =
    List.fold_left
      (fun acc cf ->
        let bytes = Bytecode.Encode.class_to_bytes cf in
        let o = Proxy.Pipeline.run ~signer:key (mk_filters ()) bytes in
        Int64.add
          (Int64.add acc (Proxy.Pipeline.total_cost o))
          (Int64.of_int
             (Dsig.Sign.sign_cost_us
                ~bytes:(String.length o.Proxy.Pipeline.out_bytes))))
      0L app.Workloads.Appgen.classes
  in
  Printf.printf
    "pipeline without signing: %.3fs  with signing: %.3fs (+%.1f%%)\n"
    (s_of_us unsigned) (s_of_us signed)
    (100.0
    *. (Int64.to_float signed -. Int64.to_float unsigned)
    /. Int64.to_float unsigned);
  subsection "4. enforcement-manager result cache";
  let policy = Dvm.Experiment.standard_policy in
  let server = Security.Server.create policy in
  let vm = Jvm.Bootlib.fresh_vm () in
  let enf = Security.Enforcement.install vm ~server ~sid:"apps" in
  ignore (Security.Enforcement.allowed ~vm enf "file.open");
  let before = vm.Jvm.Vmstate.native_cost in
  for _ = 1 to 1000 do
    ignore (Security.Enforcement.allowed ~vm enf "file.open")
  done;
  let cached_cost = vm.Jvm.Vmstate.native_cost - before in
  let before = vm.Jvm.Vmstate.native_cost in
  for _ = 1 to 1000 do
    Security.Enforcement.invalidate enf;
    ignore (Security.Enforcement.allowed ~vm enf "file.open")
  done;
  let uncached_cost = vm.Jvm.Vmstate.native_cost - before in
  Printf.printf
    "1000 checks, cached: %.1fms   invalidated each time: %.1fms (%.0fx)\n"
    (float_of_int cached_cost /. 1000.0)
    (float_of_int uncached_cost /. 1000.0)
    (float_of_int uncached_cost /. float_of_int cached_cost);
  subsection "5. compilation service: per-architecture ahead-of-time cache";
  let svc = Jit.Service.create () in
  List.iter
    (fun cf -> ignore (Jit.Service.compile_class svc Jit.Arch.x86 cf))
    app.Workloads.Appgen.classes;
  let first_cost = svc.Jit.Service.compile_cost_us in
  List.iter
    (fun cf -> ignore (Jit.Service.compile_class svc Jit.Arch.x86 cf))
    app.Workloads.Appgen.classes;
  Printf.printf
    "first client (x86): %.1fms compile; second client: %.1fms (cache hits %d)\n"
    (Int64.to_float first_cost /. 1000.0)
    (Int64.to_float (Int64.sub svc.Jit.Service.compile_cost_us first_cost)
    /. 1000.0)
    svc.Jit.Service.cache_hits;
  Printf.printf "compiled %d methods, %d interpreter-resident (jsr/handlers)\n"
    svc.Jit.Service.compiled_methods svc.Jit.Service.skipped_methods;
  subsection "6. reflection service (section 4.3): fast oracle vs full parse";
  let big = Workloads.Apps.build Workloads.Apps.pizza in
  let annotated =
    List.map
      (fun (n, b) ->
        ( n,
          Bytecode.Encode.class_to_bytes
            (Verifier.Reflect.annotate (Bytecode.Decode.class_of_bytes b)) ))
      (Workloads.Appgen.class_bytes big)
  in
  let fetch n = List.assoc_opt n annotated in
  let names = List.map fst annotated in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let slow =
    time (fun () ->
        List.iter
          (fun n ->
            match fetch n with
            | Some b ->
              ignore
                (Verifier.Oracle.info_of_classfile
                   (Bytecode.Decode.class_of_bytes b))
            | None -> ())
          names)
  in
  let fast =
    time (fun () ->
        let o = Verifier.Reflect.oracle_of_bytes fetch in
        List.iter (fun n -> ignore (o n)) names)
  in
  Printf.printf
    "oracle over %d pizza classes: full parse %.1fms, reflect attribute %.1fms (%.1fx)\n"
    (List.length names) (slow *. 1000.0) (fast *. 1000.0) (slow /. fast);
  subsection "7. replicated proxies (section 2): moving the Figure-10 knee";
  List.iter
    (fun proxies ->
      let pts =
        Dvm.Scaling.sweep ~duration_s:20 ~proxies [ 250; 310; 500 ]
      in
      Printf.printf "%d proxy(ies):" proxies;
      List.iter
        (fun p ->
          Printf.printf "  %d clients -> %.0f B/s" p.Dvm.Scaling.clients
            p.Dvm.Scaling.throughput_bytes_per_s)
        pts;
      print_newline ())
    [ 1; 2 ];
  subsection "8. proxy caching under load (the paper's other mitigation)";
  let worst = Dvm.Scaling.run ~duration_s:20 ~clients:250 () in
  let cached =
    Dvm.Scaling.run ~duration_s:20 ~clients:250
      ~cache_capacity:(48 * 1024 * 1024) ()
  in
  Printf.printf
    "250 clients: cache disabled %.0f B/s (util %.2f); cache enabled %.0f B/s (util %.2f)\n"
    worst.Dvm.Scaling.throughput_bytes_per_s worst.Dvm.Scaling.proxy_utilization
    cached.Dvm.Scaling.throughput_bytes_per_s
    cached.Dvm.Scaling.proxy_utilization

(* --- Bechamel microbenchmarks. --- *)

let micro () =
  section "Microbenchmarks (wall clock, via Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let app = lazy (Workloads.Apps.build_small Workloads.Apps.jlex) in
  let sample_cls = lazy (List.hd (Lazy.force app).Workloads.Appgen.classes) in
  let sample_bytes =
    lazy (Bytecode.Encode.class_to_bytes (Lazy.force sample_cls))
  in
  let oracle =
    lazy (Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ()))
  in
  let payload = String.make 4096 'x' in
  let spin_cls =
    lazy
      (Bytecode.Builder.class_ "Spin"
         [
           Bytecode.Builder.meth
             ~flags:[ Bytecode.Classfile.Public; Bytecode.Classfile.Static ]
             "f" "()I"
             [
               Bytecode.Builder.Const 10000;
               Bytecode.Builder.Istore 0;
               Bytecode.Builder.Label "l";
               Bytecode.Builder.Iload 0;
               Bytecode.Builder.If_z (Bytecode.Instr.Le, "d");
               Bytecode.Builder.Inc (0, -1);
               Bytecode.Builder.Goto "l";
               Bytecode.Builder.Label "d";
               Bytecode.Builder.Iload 0;
               Bytecode.Builder.Ireturn;
             ];
         ])
  in
  let tests =
    [
      Test.make ~name:"md5 4KB"
        (Staged.stage (fun () -> Dsig.Md5.digest payload));
      Test.make ~name:"encode class"
        (Staged.stage (fun () ->
             Bytecode.Encode.class_to_bytes (Lazy.force sample_cls)));
      Test.make ~name:"decode class"
        (Staged.stage (fun () ->
             Bytecode.Decode.class_of_bytes (Lazy.force sample_bytes)));
      Test.make ~name:"verify class"
        (Staged.stage (fun () ->
             Verifier.Static_verifier.verify ~oracle:(Lazy.force oracle)
               (Lazy.force sample_cls)));
      Test.make ~name:"audit-rewrite class"
        (Staged.stage (fun () ->
             Monitor.Instrument.instrument_class
               ~runtime_class:Monitor.Profiler.profiler_class
               (Lazy.force sample_cls)));
      Test.make ~name:"interp 30k bytecodes"
        (Staged.stage (fun () ->
             let vm = Jvm.Bootlib.fresh_vm () in
             Jvm.Classreg.register vm.Jvm.Vmstate.reg (Lazy.force spin_cls);
             Jvm.Interp.invoke vm ~cls:"Spin" ~name:"f" ~desc:"()I" []));
    ]
  in
  let test = Test.make_grouped ~name:"dvm" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances test in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> Printf.printf "%-28s %12.1f ns/run\n" name t
          | Some [] | None -> Printf.printf "%-28s (no estimate)\n" name)
        tbl)
    results

(* --- Elision: redundant-check elision via proxy-side dataflow. ---

   A workload-covering policy maps every worker class (method="*") to
   one per-app permission, so the driver's loop body holds dozens of
   sites for the same check. The availability analysis keeps the first
   and elides the rest; loop-invariant hoisting then lifts the survivor
   out of the loop. The same run compares JIT null/bounds guards with
   and without nullness/range facts. Program output must be
   byte-identical either way. *)

let elide () =
  section "Redundant-check elision (proxy-side dataflow analysis)";
  Printf.printf
    "(dynamic enforcement calls during the run, and null/bounds guards in\n\
    \ the compiled IR, with elision off vs on; output must be identical)\n\n";
  Printf.printf "%-11s %12s %12s %12s %12s %9s\n" "App" "checks off"
    "checks on" "guards off" "guards on" "output=";
  let improved = ref 0 in
  List.iter
    (fun spec ->
      let app = Workloads.Apps.build_small spec in
      let policy = Dvm.Certification.covering_policy app in
      let arch = Dvm.Experiment.Dvm { cached = false } in
      let off = Dvm.Experiment.run ~policy ~elide:false ~arch app in
      Analysis.Pass.clear ();
      let on = Dvm.Experiment.run ~policy ~elide:true ~arch app in
      let guards mode =
        let svc = Jit.Service.create () in
        List.iter
          (fun cf ->
            ignore (Jit.Service.compile_class ~elide:mode svc Jit.Arch.x86 cf))
          app.Workloads.Appgen.classes;
        svc.Jit.Service.guards_emitted
      in
      let g_off = guards false and g_on = guards true in
      let same_output =
        String.equal off.Dvm.Experiment.r_output on.Dvm.Experiment.r_output
      in
      if
        on.Dvm.Experiment.r_enforcement_checks
        < off.Dvm.Experiment.r_enforcement_checks
        && g_on < g_off && same_output
      then incr improved;
      (* Pin the per-app elision effect and the program-output digest:
         any rewriter or certifier change that alters served behavior
         shows up as a baseline diff here. *)
      bench_put spec.Workloads.Appgen.name
        (Printf.sprintf
           {|{"checks_off":%d,"checks_on":%d,"guards_off":%d,"guards_on":%d,"same_output":%b,"output_md5":"%s"}|}
           off.Dvm.Experiment.r_enforcement_checks
           on.Dvm.Experiment.r_enforcement_checks g_off g_on same_output
           (Dsig.Md5.hex_digest on.Dvm.Experiment.r_output));
      Printf.printf "%-11s %12d %12d %12d %12d %9b\n"
        spec.Workloads.Appgen.name off.Dvm.Experiment.r_enforcement_checks
        on.Dvm.Experiment.r_enforcement_checks g_off g_on same_output)
    Workloads.Apps.all_specs;
  bench_put "improved" (string_of_int !improved);
  Printf.printf
    "\n%d of 5 workloads run strictly fewer checks and carry strictly fewer\n\
     guards with elision on (bar: >= 3), outputs byte-identical.\n"
    !improved

(* --- Certify: translation validation of the rewriter. ---

   Every elided or hoisted check over the full 401-class workload set
   must be backed by a certificate the validator independently
   re-proves from the wire image; then the mutation harness corrupts
   rewriter output at a pinned seed and the verifier or certifier must
   kill (nearly) every mutant. Both halves are pure functions of the
   workload builds and the seed, so the BENCH file pins the whole
   certification surface: site counts, certificate counts, mutant
   sample and kill rate. *)

let certify_seed = 20260808L
let certify_mutants_per_class = 40
let certify_kill_bar = 0.9

let certify () =
  section "Certify: translation-validated rewriting + mutation kills";
  let rep = Dvm.Certification.certify_workloads () in
  let nfail = List.length rep.Dvm.Certification.rp_failures in
  Printf.printf
    "%d apps, %d classes, %d methods: %d protected sites\n\
    \  %d guarded by live checks, %d certificate-backed (%d hoists), \
     %d failure(s)\n"
    rep.Dvm.Certification.rp_apps rep.Dvm.Certification.rp_classes
    rep.Dvm.Certification.rp_methods rep.Dvm.Certification.rp_sites
    rep.Dvm.Certification.rp_live rep.Dvm.Certification.rp_certified
    rep.Dvm.Certification.rp_hoists nfail;
  List.iter
    (fun (cls, why) -> Printf.printf "  FAIL %s: %s\n" cls why)
    rep.Dvm.Certification.rp_failures;
  bench_put "certify"
    (Printf.sprintf
       {|{"classes":%d,"methods":%d,"sites":%d,"live":%d,"certified":%d,"hoists":%d,"cert_entries":%d,"elided":%d,"failures":%d}|}
       rep.Dvm.Certification.rp_classes rep.Dvm.Certification.rp_methods
       rep.Dvm.Certification.rp_sites rep.Dvm.Certification.rp_live
       rep.Dvm.Certification.rp_certified rep.Dvm.Certification.rp_hoists
       rep.Dvm.Certification.rp_cert_entries rep.Dvm.Certification.rp_elided
       nfail);
  let m =
    Dvm.Certification.mutation_run ~small:true ~seed:certify_seed
      ~count:certify_mutants_per_class ()
  in
  let rate = Dvm.Certification.kill_rate m in
  Printf.printf
    "\nmutation: seed %Ld, %d mutants: %d killed by verifier, %d by \
     certifier,\n%d survived (kill rate %.1f%%, bar %.0f%%)\n"
    m.Dvm.Certification.mt_seed m.Dvm.Certification.mt_mutants
    m.Dvm.Certification.mt_killed_verifier
    m.Dvm.Certification.mt_killed_certifier
    (List.length m.Dvm.Certification.mt_survivors)
    (100. *. rate) (100. *. certify_kill_bar);
  List.iter
    (fun (r : Dvm.Certification.mutation_result) ->
      Printf.printf "  survivor: %s: %s\n" r.Dvm.Certification.mu_class
        r.Dvm.Certification.mu_desc)
    m.Dvm.Certification.mt_survivors;
  bench_put "mutation"
    (Printf.sprintf
       {|{"seed":%Ld,"mutants":%d,"killed_verifier":%d,"killed_certifier":%d,"kill_rate":%.4f,"survivors":[%s]}|}
       m.Dvm.Certification.mt_seed m.Dvm.Certification.mt_mutants
       m.Dvm.Certification.mt_killed_verifier
       m.Dvm.Certification.mt_killed_certifier rate
       (String.concat ","
          (List.map
             (fun (r : Dvm.Certification.mutation_result) ->
               Printf.sprintf {|"%s: %s"|} r.Dvm.Certification.mu_class
                 r.Dvm.Certification.mu_desc)
             m.Dvm.Certification.mt_survivors)));
  if nfail > 0 || rate < certify_kill_bar then begin
    Printf.eprintf "certify: FAILED (failures=%d, kill rate %.3f)\n" nfail rate;
    exit 1
  end

(* --- Faults: availability under injected faults. ---

   The experiment §5's replication argument calls for but the paper
   never runs: startup latency through the proxy as the client's LAN
   loses packets, and the cost of a primary crash with and without a
   second replica to fail over to. Deterministic for the scenario
   seed: rerunning prints byte-identical tables. *)

let faults () =
  section "Faults: availability vs loss rate (jlex startup, seeded faults)";
  Printf.printf
    "Per-attempt timeout %.0f ms, %d attempts, backoff %.0f..%.0f ms, seed %d\n"
    (float_of_int Dvm.Availability.default_scenario.Dvm.Availability.sc_timeout_us
    /. 1e3)
    Dvm.Availability.default_scenario.Dvm.Availability.sc_max_attempts
    (float_of_int
       Dvm.Availability.default_scenario.Dvm.Availability.sc_base_backoff_us
    /. 1e3)
    (float_of_int
       Dvm.Availability.default_scenario.Dvm.Availability.sc_max_backoff_us
    /. 1e3)
    Dvm.Availability.default_scenario.Dvm.Availability.sc_seed;
  subsection "loss sweep";
  let av_points_json ps =
    "["
    ^ String.concat ","
        (List.map
           (fun p ->
             Printf.sprintf
               "{\"loss_pct\":%.1f,\"replicas\":%d,\"startup_us\":%Ld,\"requests\":%d,\"retries\":%d,\"drops\":%d,\"failovers\":%d,\"degraded\":%d}"
               p.Dvm.Availability.av_loss_pct p.Dvm.Availability.av_replicas
               p.Dvm.Availability.av_startup_us p.Dvm.Availability.av_requests
               p.Dvm.Availability.av_retries p.Dvm.Availability.av_drops
               p.Dvm.Availability.av_failovers p.Dvm.Availability.av_degraded)
           ps)
    ^ "]"
  in
  let loss =
    Dvm.Availability.(
      sweep ~loss_pcts:[ 0.0; 1.0; 5.0; 10.0 ] ~replica_counts:[ 1; 2 ] ())
  in
  Dvm.Availability.print_table loss;
  bench_put "loss_sweep" (av_points_json loss);
  subsection "primary crash at t=400ms (down 2.5s, cache-cold restart)";
  let crash =
    Dvm.Availability.(
      sweep ~scenario:crash_scenario ~loss_pcts:[ 1.0 ]
        ~replica_counts:[ 1; 2 ] ())
  in
  Dvm.Availability.print_table crash;
  bench_put "crash_sweep" (av_points_json crash);
  List.iter
    (fun p ->
      if p.Dvm.Availability.av_degraded > 0 then
        Printf.printf
          "  %d replica(s): %d classes degraded to the error-propagation \
           replacement\n"
          p.Dvm.Availability.av_replicas p.Dvm.Availability.av_degraded
      else
        Printf.printf "  %d replica(s): all classes served (%d failovers)\n"
          p.Dvm.Availability.av_replicas p.Dvm.Availability.av_failovers)
    crash;
  subsection "injected-fault trace (crash scenario, 2 replicas)";
  List.iter (Printf.printf "  %s\n")
    (List.nth crash 1).Dvm.Availability.av_trace;
  subsection "SLO monitor (crash scenario, 2 replicas, 1% loss)";
  let slo = Telemetry.Slo.create ~window_s:60 ~objective:0.99 () in
  let sp =
    Dvm.Availability.(
      run ~slo ~scenario:crash_scenario ~loss_pct:1.0 ~replicas:2 ())
  in
  let rep = Telemetry.Slo.report slo ~now_us:sp.Dvm.Availability.av_startup_us in
  print_string (Telemetry.Slo.report_text rep);
  bench_put "slo" (Telemetry.Slo.report_json rep)

(* --- Farm: the sharded-proxy scaling experiment. --- *)

let farm () =
  section "Proxy farm: consistent-hash sharding, single-flight, shared L2";
  subsection "aggregate throughput vs shard count (caching off, 400 clients)";
  Printf.printf
    "(per-client state spreads over the shards; one proxy at 400 clients\n\
    \ is far past its 64 MB knee, four are comfortably under theirs)\n\n";
  Printf.printf "%7s %16s %12s %10s %9s\n" "Shards" "Throughput(B/s)"
    "Latency(ms)" "Completed" "CPU util";
  let worst =
    Dvm.Scaling.farm_sweep ~duration_s:20 ~clients:400 [ 1; 2; 4; 8 ]
  in
  List.iter
    (fun p ->
      Printf.printf "%7d %16.0f %12.0f %10d %9.2f\n" p.Dvm.Scaling.f_shards
        p.Dvm.Scaling.f_throughput_bytes_per_s
        (p.Dvm.Scaling.f_mean_latency_us /. 1000.0)
        p.Dvm.Scaling.f_requests_completed p.Dvm.Scaling.f_utilization)
    worst;
  bench_put "shard_sweep"
    ("["
    ^ String.concat ","
        (List.map
           (fun p ->
             Printf.sprintf
               "{\"shards\":%d,\"throughput_bps\":%.1f,\"mean_latency_us\":%.1f,\"completed\":%d,\"utilization\":%.3f,\"trace_digest\":\"%s\"}"
               p.Dvm.Scaling.f_shards p.Dvm.Scaling.f_throughput_bytes_per_s
               p.Dvm.Scaling.f_mean_latency_us
               p.Dvm.Scaling.f_requests_completed p.Dvm.Scaling.f_utilization
               (Dsig.Md5.to_hex p.Dvm.Scaling.f_trace_digest))
           worst)
    ^ "]");
  (match worst with
  | one :: _ ->
    let four = List.nth worst 2 in
    Printf.printf "\n1 -> 4 shards: %.1fx aggregate throughput\n"
      (four.Dvm.Scaling.f_throughput_bytes_per_s
      /. one.Dvm.Scaling.f_throughput_bytes_per_s)
  | [] -> ());
  subsection "single-flight coalescing (shared popular set, caches on)";
  let slo = Telemetry.Slo.create ~window_s:20 ~objective:0.99 () in
  let cached =
    Dvm.Scaling.run_farm ~slo ~duration_s:20 ~clients:200 ~applet_count:8
      ~cache_capacity:(16 * 1024 * 1024) ~l2_capacity:(32 * 1024 * 1024)
      ~shards:4 ()
  in
  Printf.printf
    "4 shards, 200 clients, 8 popular applets: %d completions from %d\n\
     pipeline runs (%d requests coalesced into in-flight runs, %d L2 hits)\n"
    cached.Dvm.Scaling.f_requests_completed cached.Dvm.Scaling.f_pipeline_runs
    cached.Dvm.Scaling.f_coalesced cached.Dvm.Scaling.f_l2_hits;
  bench_put "coalesce"
    (Printf.sprintf
       "{\"completed\":%d,\"pipeline_runs\":%d,\"coalesced\":%d,\"l2_hits\":%d,\"throughput_bps\":%.1f,\"trace_digest\":\"%s\",\"served\":{%s}}"
       cached.Dvm.Scaling.f_requests_completed
       cached.Dvm.Scaling.f_pipeline_runs cached.Dvm.Scaling.f_coalesced
       cached.Dvm.Scaling.f_l2_hits
       cached.Dvm.Scaling.f_throughput_bytes_per_s
       (Dsig.Md5.to_hex cached.Dvm.Scaling.f_trace_digest)
       (String.concat ","
          (List.map
             (fun (k, d) ->
               Printf.sprintf "\"%s\":\"%s\"" k (Dsig.Md5.to_hex d))
             cached.Dvm.Scaling.f_served)));
  let rep = Telemetry.Slo.report slo ~now_us:(Simnet.Engine.sec 20) in
  subsection "SLO monitor (coalescing run)";
  print_string (Telemetry.Slo.report_text rep);
  bench_put "slo" (Telemetry.Slo.report_json rep)

(* --- Chaos: overload control under a scripted load spike. --- *)

let chaos () =
  section "Chaos: overload control under faults and a 3x load spike";
  let cfg = Dvm.Chaos.default_config in
  Printf.printf
    "%d shards, %d clients (x%d flash crowd at %d..%ds), %d crash windows,\n\
     %.1f%% LAN loss, %.0f ms deadline budget, seed %d\n\n"
    cfg.Dvm.Chaos.ch_shards cfg.Dvm.Chaos.ch_clients
    cfg.Dvm.Chaos.ch_spike_factor cfg.Dvm.Chaos.ch_spike_start_s
    (cfg.Dvm.Chaos.ch_spike_start_s + cfg.Dvm.Chaos.ch_spike_len_s)
    cfg.Dvm.Chaos.ch_crashes cfg.Dvm.Chaos.ch_loss_pct
    (Int64.to_float cfg.Dvm.Chaos.ch_budget_us /. 1e3)
    cfg.Dvm.Chaos.ch_seed;
  subsection "overload control on vs off (same spike, same seed)";
  let outcome_json o =
    Printf.sprintf
      "{\"fetches\":%d,\"served\":%d,\"stale\":%d,\"failed\":%d,\"shed\":%d,\"hedges\":%d,\"hedge_wins\":%d,\"retries\":%d,\"breaker_trips\":%d,\"deadline_violations\":%d,\"goodput_bps\":%.1f,\"p50_us\":%Ld,\"p95_us\":%Ld,\"p99_us\":%Ld,\"trace_digest\":\"%s\",\"slo\":%s}"
      o.Dvm.Chaos.co_fetches o.Dvm.Chaos.co_served o.Dvm.Chaos.co_stale_served
      o.Dvm.Chaos.co_failed o.Dvm.Chaos.co_shed o.Dvm.Chaos.co_hedges
      o.Dvm.Chaos.co_hedge_wins o.Dvm.Chaos.co_retries
      o.Dvm.Chaos.co_breaker_trips o.Dvm.Chaos.co_deadline_violations
      o.Dvm.Chaos.co_goodput_bps o.Dvm.Chaos.co_p50_us o.Dvm.Chaos.co_p95_us
      o.Dvm.Chaos.co_p99_us
      (Dsig.Md5.to_hex o.Dvm.Chaos.co_trace_digest)
      (Telemetry.Slo.report_json o.Dvm.Chaos.co_slo)
  in
  let cmp = Dvm.Chaos.spike_comparison cfg in
  Dvm.Chaos.print_outcome ~label:"control" cmp.Dvm.Chaos.cmp_control;
  Dvm.Chaos.print_outcome ~label:"baseline" cmp.Dvm.Chaos.cmp_baseline;
  Printf.printf
    "\ngoodput (in-deadline bytes/s) with control = %.2fx baseline (bar: \
     >= 2x)\n"
    cmp.Dvm.Chaos.cmp_goodput_ratio;
  bench_put "control" (outcome_json cmp.Dvm.Chaos.cmp_control);
  bench_put "baseline" (outcome_json cmp.Dvm.Chaos.cmp_baseline);
  bench_put "goodput_ratio"
    (Printf.sprintf "%.2f" cmp.Dvm.Chaos.cmp_goodput_ratio);
  subsection "invariants vs the fault-free reference run";
  let v = Dvm.Chaos.verify cfg in
  Dvm.Chaos.print_outcome ~label:"reference" v.Dvm.Chaos.v_reference;
  Dvm.Chaos.print_outcome ~label:"chaotic" v.Dvm.Chaos.v_chaotic;
  Printf.printf
    "\nserved bytes digest-identical: %b\n\
     zero serves past deadline:     %b\n\
     steady-state recovery:         %b (tail serves %d vs reference %d)\n"
    v.Dvm.Chaos.v_digests_ok v.Dvm.Chaos.v_no_late_serves
    v.Dvm.Chaos.v_recovered v.Dvm.Chaos.v_chaotic.Dvm.Chaos.co_tail_served
    v.Dvm.Chaos.v_reference.Dvm.Chaos.co_tail_served;
  bench_put "reference" (outcome_json v.Dvm.Chaos.v_reference);
  bench_put "chaotic" (outcome_json v.Dvm.Chaos.v_chaotic);
  bench_put "invariants"
    (Printf.sprintf
       "{\"digests_ok\":%b,\"no_late_serves\":%b,\"recovered\":%b}"
       v.Dvm.Chaos.v_digests_ok v.Dvm.Chaos.v_no_late_serves
       v.Dvm.Chaos.v_recovered);
  subsection "injected-fault trace (replayable from the seed)";
  List.iter (Printf.printf "  %s\n")
    v.Dvm.Chaos.v_chaotic.Dvm.Chaos.co_fault_trace

(* --- Control: a replicated policy bump under partition and split
   brain. --- *)

let control () =
  section "Control plane: policy bump under partition and split brain";
  let cfg = Dvm.Chaos.default_control_config in
  Printf.printf
    "%d shards, %d clients, %d applets, bump at %ds, %d control-link \
     partition\n\
     windows of %ds (the first spans the bump), restart %s, leader crash \
     %s,\n\
     leader partition %s, churn every %ds, snapshot every %d, %.0f ms \
     lease, seed %d\n\n"
    cfg.Dvm.Chaos.cc_shards cfg.Dvm.Chaos.cc_clients cfg.Dvm.Chaos.cc_applets
    cfg.Dvm.Chaos.cc_bump_at_s cfg.Dvm.Chaos.cc_partitions
    cfg.Dvm.Chaos.cc_partition_len_s
    (if cfg.Dvm.Chaos.cc_restart_shard then "on" else "off")
    (if cfg.Dvm.Chaos.cc_leader_crash then "on" else "off")
    (if cfg.Dvm.Chaos.cc_leader_partition then "on" else "off")
    cfg.Dvm.Chaos.cc_churn_s cfg.Dvm.Chaos.cc_snapshot_every
    (Int64.to_float cfg.Dvm.Chaos.cc_lease_us /. 1e3)
    cfg.Dvm.Chaos.cc_seed;
  let outcome_json o =
    Printf.sprintf
      "{\"fetches\":%d,\"served\":%d,\"stale\":%d,\"failed\":%d,\"shed\":%d,\"base_version\":%d,\"new_version\":%d,\"commit_us\":%Ld,\"revoked_serves\":%d,\"inflight_exempt\":%d,\"fence_rejects\":%d,\"resyncs\":%d,\"stale_drops\":%d,\"invalidations\":%d,\"heartbeats\":%d,\"commits\":%d,\"term\":%d,\"member_terms\":[%s],\"elections\":%d,\"leader_changes\":%d,\"stepdowns\":%d,\"redrives\":%d,\"compactions\":%d,\"snapshot_installs\":%d,\"max_leased\":%d,\"term_regressions\":%d,\"replay_ok\":%b,\"converged\":%b,\"changed_applets\":[%s],\"digests\":{%s},\"trace_digest\":\"%s\"}"
      o.Dvm.Chaos.cn_fetches o.Dvm.Chaos.cn_served o.Dvm.Chaos.cn_stale_served
      o.Dvm.Chaos.cn_failed o.Dvm.Chaos.cn_shed o.Dvm.Chaos.cn_base_version
      o.Dvm.Chaos.cn_new_version o.Dvm.Chaos.cn_commit_us
      o.Dvm.Chaos.cn_revoked_serves o.Dvm.Chaos.cn_inflight_exempt
      o.Dvm.Chaos.cn_fence_rejects o.Dvm.Chaos.cn_resyncs
      o.Dvm.Chaos.cn_stale_drops o.Dvm.Chaos.cn_invalidations
      o.Dvm.Chaos.cn_heartbeats o.Dvm.Chaos.cn_commits o.Dvm.Chaos.cn_term
      (String.concat ","
         (List.map string_of_int o.Dvm.Chaos.cn_member_terms))
      o.Dvm.Chaos.cn_elections o.Dvm.Chaos.cn_leader_changes
      o.Dvm.Chaos.cn_stepdowns o.Dvm.Chaos.cn_redrives
      o.Dvm.Chaos.cn_compactions o.Dvm.Chaos.cn_snapshot_installs
      o.Dvm.Chaos.cn_max_leased o.Dvm.Chaos.cn_term_regressions
      o.Dvm.Chaos.cn_replay_ok o.Dvm.Chaos.cn_converged
      (String.concat ","
         (List.map
            (fun a -> Printf.sprintf "\"%s\"" a)
            o.Dvm.Chaos.cn_changed_applets))
      (String.concat ","
         (List.map
            (fun (k, ds) ->
              Printf.sprintf "\"%s\":[%s]" k
                (String.concat ","
                   (List.map
                      (fun d -> Printf.sprintf "\"%s\"" (Dsig.Md5.to_hex d))
                      ds)))
            o.Dvm.Chaos.cn_digests))
      (Dsig.Md5.to_hex o.Dvm.Chaos.cn_trace_digest)
  in
  subsection "invariants vs the partition-free reference run";
  let w = Dvm.Chaos.verify_control cfg in
  Dvm.Chaos.print_control_outcome ~label:"reference" w.Dvm.Chaos.w_reference;
  Dvm.Chaos.print_control_outcome ~label:"chaotic" w.Dvm.Chaos.w_chaotic;
  let c = w.Dvm.Chaos.w_chaotic in
  Printf.printf
    "\nbump v%d -> v%d; %d applets change bytes\n\
     no serves under revoked version: %b (in-flight exempt: %d)\n\
     at most one leased leader:      %b (max sampled %d, term regressions \
     %d)\n\
     snapshot catch-up = replay:     %b (%d compactions, %d installs)\n\
     every shard converged:          %b\n\
     unaffected digests identical:   %b\n"
    c.Dvm.Chaos.cn_base_version c.Dvm.Chaos.cn_new_version
    (List.length c.Dvm.Chaos.cn_changed_applets)
    w.Dvm.Chaos.w_no_revoked_serves c.Dvm.Chaos.cn_inflight_exempt
    w.Dvm.Chaos.w_single_leader c.Dvm.Chaos.cn_max_leased
    c.Dvm.Chaos.cn_term_regressions w.Dvm.Chaos.w_replay_ok
    c.Dvm.Chaos.cn_compactions c.Dvm.Chaos.cn_snapshot_installs
    w.Dvm.Chaos.w_converged w.Dvm.Chaos.w_digests_ok;
  bench_put "reference" (outcome_json w.Dvm.Chaos.w_reference);
  bench_put "chaotic" (outcome_json c);
  bench_put "invariants"
    (Printf.sprintf
       "{\"no_revoked_serves\":%b,\"single_leader\":%b,\"replay_ok\":%b,\"converged\":%b,\"digests_ok\":%b}"
       w.Dvm.Chaos.w_no_revoked_serves w.Dvm.Chaos.w_single_leader
       w.Dvm.Chaos.w_replay_ok w.Dvm.Chaos.w_converged
       w.Dvm.Chaos.w_digests_ok);
  subsection "injected-fault trace (replayable from the seed)";
  List.iter (Printf.printf "  %s\n") c.Dvm.Chaos.cn_fault_trace;
  if not (Dvm.Chaos.control_ok w) then begin
    Printf.eprintf "control: control-plane invariant violated\n";
    exit 1
  end

(* --- Perf: wall-clock trajectory against the pinned baselines. ---

   Re-runs the three phases that write BENCH_<phase>.json, then diffs
   each fresh file against the baseline that was on disk (i.e. the
   committed one, in a clean tree) — ignoring only the wall_ms line,
   which is host time. Any other difference is digest/metric drift:
   an optimization changed behaviour, and the phase exits non-zero.
   When the pin holds, the wall_ms columns show the speed trajectory:
   baseline milliseconds vs this run, per phase. *)

let read_file path =
  match open_in_bin path with
  | ic ->
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Some s
  | exception Sys_error _ -> None

let is_wall_ms_line l =
  let key = "\"wall_ms\"" in
  let n = String.length l and m = String.length key in
  let rec go i = i + m <= n && (String.sub l i m = key || go (i + 1)) in
  go 0

let strip_wall_ms text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> not (is_wall_ms_line l))
  |> String.concat "\n"

let wall_ms_of text =
  String.split_on_char '\n' text
  |> List.find_map (fun l ->
         if is_wall_ms_line l then
           (* the key has no digits, so the line's digits are the value *)
           String.to_seq l
           |> Seq.filter (fun c -> c >= '0' && c <= '9')
           |> String.of_seq |> int_of_string_opt
         else None)

let perf () =
  section "Perf: wall-clock vs pinned BENCH baselines";
  (* elide runs on the host clock (no simnet engine), so its latency
     histograms are wall time and not pinnable — hists:false. Same for
     control: its offline digest cross-check replays the pipeline
     outside the sim clock, so filter_us histograms carry wall time. *)
  let pinned =
    [
      ("faults", faults, true); ("farm", farm, true); ("chaos", chaos, true);
      ("control", control, false); ("elide", elide, false);
      ("certify", certify, true);
    ]
  in
  let baselines =
    List.map
      (fun (n, _, _) -> (n, read_file (Printf.sprintf "BENCH_%s.json" n)))
      pinned
  in
  List.iter (fun (n, f, hists) -> with_phase ~json:true ~hists n f) pinned;
  Printf.printf "\n%-8s %9s %9s %8s  %s\n" "phase" "base(ms)" "now(ms)"
    "speedup" "pin";
  let drift = ref false in
  List.iter
    (fun (name, baseline) ->
      let fresh = read_file (Printf.sprintf "BENCH_%s.json" name) in
      match (baseline, fresh) with
      | None, _ ->
        Printf.printf "%-8s %9s %9s %8s  %s\n" name "-" "-" "-"
          "no baseline on disk (first run? commit the file)"
      | _, None ->
        drift := true;
        Printf.printf "%-8s %9s %9s %8s  %s\n" name "-" "-" "-"
          "DRIFT (phase wrote no file)"
      | Some base, Some now ->
        let pinned_ok = String.equal (strip_wall_ms base) (strip_wall_ms now) in
        if not pinned_ok then drift := true;
        let fmt_ms = function Some ms -> string_of_int ms | None -> "-" in
        let speedup =
          match (wall_ms_of base, wall_ms_of now) with
          | Some b, Some n when n > 0 ->
            Printf.sprintf "%.2fx" (float_of_int b /. float_of_int n)
          | _ -> "-"
        in
        Printf.printf "%-8s %9s %9s %8s  %s\n" name
          (fmt_ms (wall_ms_of base))
          (fmt_ms (wall_ms_of now))
          speedup
          (if pinned_ok then "ok" else "DRIFT"))
    baselines;
  if !drift then begin
    Printf.eprintf
      "\n\
       perf: BENCH baseline drift — served bytes, digests or metrics \
       changed.\n\
       Inspect with: git diff -I '\"wall_ms\"' BENCH_faults.json \
       BENCH_farm.json BENCH_chaos.json BENCH_control.json\n";
    exit 1
  end

let all () =
  with_phase "fig5" fig5;
  with_phase "fig6" fig6;
  with_phase "fig7" fig7;
  with_phase "fig8" fig8;
  with_phase "fig9" fig9;
  with_phase "applets" applets;
  with_phase "fig10" fig10;
  with_phase "fig11" fig11;
  with_phase "fig12" fig12;
  with_phase "ablations" ablations;
  with_phase ~json:true ~hists:false "elide" elide;
  with_phase ~json:true "certify" certify;
  with_phase ~json:true "faults" faults;
  with_phase ~json:true "farm" farm;
  with_phase ~json:true "chaos" chaos;
  with_phase ~json:true ~hists:false "control" control;
  micro ()

let () =
  let target = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match target with
  | "fig5" -> with_phase "fig5" fig5
  | "fig6" -> with_phase "fig6" fig6
  | "fig7" -> with_phase "fig7" fig7
  | "fig8" -> with_phase "fig8" fig8
  | "fig9" -> with_phase "fig9" fig9
  | "applets" -> with_phase "applets" applets
  | "fig10" -> with_phase "fig10" fig10
  | "fig11" -> with_phase "fig11" fig11
  | "fig12" -> with_phase "fig12" fig12
  | "ablations" -> with_phase "ablations" ablations
  | "elide" -> with_phase ~json:true ~hists:false "elide" elide
  | "certify" -> with_phase ~json:true "certify" certify
  | "faults" -> with_phase ~json:true "faults" faults
  | "farm" -> with_phase ~json:true "farm" farm
  | "chaos" -> with_phase ~json:true "chaos" chaos
  | "control" -> with_phase ~json:true ~hists:false "control" control
  | "micro" -> micro ()
  | "perf" -> perf ()
  | "all" -> all ()
  | other ->
    Printf.eprintf
      "unknown target %S (expected fig5..fig12, applets, ablations, elide, \
       certify, faults, farm, chaos, control, micro, perf, all)\n"
      other;
    exit 1
