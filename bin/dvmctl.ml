(* dvmctl: command-line front end to the DVM.

     dvmctl gen <app> <dir>       generate a Figure-5 workload app into a
                                  directory of .class files
     dvmctl disasm <file>         disassemble a class file
     dvmctl verify <file>...      statically verify class files (the first
                                  files serve as the oracle environment)
     dvmctl rewrite [opts] <file> run a class through the service pipeline
     dvmctl run <entry> <file>... execute an application on a DVM client
     dvmctl analyze [--dot] <file> dump CFG, dominators and dataflow facts
     dvmctl lint                  analyzer self-check over bundled workloads
     dvmctl flight [opts]         traced chaos run: export one shed and one
                                  brownout request's cross-node trace and
                                  the per-node flight-recorder rings
     dvmctl slo [opts]            chaos run summarized by the SLO monitor
                                  (goodput, violation rate, budget burn)
     dvmctl farm [opts]           sweep the sharded proxy farm over shard
                                  counts (Figure-10-style scaling curve)
     dvmctl chaos [opts]          seeded chaos run against the farm's
                                  overload controls: crash windows, LAN
                                  loss, a flash-crowd spike; checks the
                                  integrity/deadline/recovery invariants
     dvmctl control [opts]        replicate a policy bump across the farm
                                  under control-link partitions and a
                                  shard restart; checks that no client is
                                  served under the revoked policy version
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)

let load_class path =
  match Bytecode.Decode.class_of_bytes (read_file path) with
  | cf -> cf
  | exception Bytecode.Decode.Format_error msg ->
    Printf.eprintf "%s: malformed class file: %s\n" path msg;
    exit 2

(* --- gen --- *)

let gen app_name dir =
  match
    List.find_opt
      (fun s -> String.equal s.Workloads.Appgen.name app_name)
      Workloads.Apps.all_specs
  with
  | None ->
    Printf.eprintf "unknown app %S (expected: %s)\n" app_name
      (String.concat ", "
         (List.map (fun s -> s.Workloads.Appgen.name) Workloads.Apps.all_specs));
    exit 2
  | Some spec ->
    let app = Workloads.Apps.build spec in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun cf ->
        let fname =
          String.map
            (fun c -> if c = '/' then '.' else c)
            cf.Bytecode.Classfile.name
          ^ ".class"
        in
        write_file (Filename.concat dir fname)
          (Bytecode.Encode.class_to_bytes cf))
      app.Workloads.Appgen.classes;
    Printf.printf "wrote %d classes (%d bytes), entry point %s\n"
      (List.length app.Workloads.Appgen.classes)
      app.Workloads.Appgen.total_bytes app.Workloads.Appgen.entry;
    0

(* --- disasm --- *)

let disasm path =
  print_string (Bytecode.Disasm.class_to_string (load_class path));
  0

(* --- verify --- *)

let verify paths =
  let classes = List.map load_class paths in
  let oracle =
    Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes () @ classes)
  in
  let failed = ref 0 in
  List.iter
    (fun cf ->
      match Verifier.Static_verifier.verify ~oracle cf with
      | Verifier.Static_verifier.Verified (_, stats) ->
        Printf.printf "%-40s OK (%d static checks, %d deferred)\n"
          cf.Bytecode.Classfile.name
          stats.Verifier.Static_verifier.sv_static_checks
          stats.Verifier.Static_verifier.sv_deferred
      | Verifier.Static_verifier.Rejected (errors, _) ->
        incr failed;
        Printf.printf "%-40s REJECTED\n" cf.Bytecode.Classfile.name;
        List.iter
          (fun e -> Printf.printf "    %s\n" (Verifier.Verror.to_string e))
          errors)
    classes;
  if !failed > 0 then 1 else 0

(* --- rewrite --- *)

let rewrite with_security with_audit policy_path sign_key path out_path =
  let policy =
    match policy_path with
    | Some p -> Security.Policy_xml.parse (read_file p)
    | None -> Dvm.Experiment.standard_policy
  in
  let oracle = Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ()) in
  let filters =
    [ Verifier.Static_verifier.filter ~oracle () ]
    @ (if with_security then [ Security.Rewriter.filter policy ] else [])
    @ if with_audit then [ Monitor.Instrument.audit_filter () ] else []
  in
  let signer =
    Option.map (fun secret -> Dsig.Sign.make_key ~key_id:"org" ~secret) sign_key
  in
  let outcome = Proxy.Pipeline.run ?signer filters (read_file path) in
  (match outcome.Proxy.Pipeline.rejected with
  | Some (filter, reason) ->
    Printf.eprintf "rejected by %s: %s\n(an error-propagation class was emitted)\n"
      filter reason
  | None -> ());
  let out = Option.value ~default:(path ^ ".dvm") out_path in
  write_file out outcome.Proxy.Pipeline.out_bytes;
  Printf.printf "%s -> %s (%d -> %d bytes, proxy cost %.1f ms)\n" path out
    (String.length (read_file path))
    (String.length outcome.Proxy.Pipeline.out_bytes)
    (Int64.to_float (Proxy.Pipeline.total_cost outcome) /. 1000.0);
  0

(* --- run --- *)

let run entry paths =
  let classes = List.map load_class paths in
  let vm = Jvm.Bootlib.fresh_vm () in
  ignore (Verifier.Rt_verifier.install vm);
  ignore (Monitor.Profiler.install vm ());
  let server = Security.Server.create Dvm.Experiment.standard_policy in
  ignore (Security.Enforcement.install vm ~server ~sid:"apps");
  List.iter (Jvm.Classreg.register vm.Jvm.Vmstate.reg) classes;
  match Jvm.Interp.run_main vm entry with
  | Ok () ->
    print_string (Jvm.Vmstate.output vm);
    Printf.eprintf "(%d bytecodes executed)\n" vm.Jvm.Vmstate.instr_count;
    0
  | Error e ->
    print_string (Jvm.Vmstate.output vm);
    Printf.eprintf "uncaught exception: %s\n" (Jvm.Interp.describe_throwable e);
    1

(* --- split: profile an app and repartition it (section 5). --- *)

let split entry paths out_dir =
  let classes = List.map load_class paths in
  (* profile a first execution *)
  let instrumented =
    List.map
      (Monitor.Instrument.instrument_class
         ~runtime_class:Monitor.Profiler.profiler_class)
      classes
  in
  let vm = Jvm.Bootlib.fresh_vm () in
  let prof = Monitor.Profiler.install vm () in
  List.iter (Jvm.Classreg.register vm.Jvm.Vmstate.reg) instrumented;
  (match Jvm.Interp.run_main vm entry with
  | Ok () -> ()
  | Error e ->
    Printf.eprintf "profile run failed: %s
" (Jvm.Interp.describe_throwable e);
    exit 1);
  let profile = Opt.First_use.of_profiler prof in
  let split_classes, results = Opt.Repartition.split_app profile classes in
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  List.iter
    (fun cf ->
      let fname =
        String.map (fun c -> if c = '/' then '.' else c) cf.Bytecode.Classfile.name
        ^ ".class"
      in
      write_file (Filename.concat out_dir fname)
        (Bytecode.Encode.class_to_bytes cf))
    split_classes;
  let orig = List.fold_left (fun a c -> a + Bytecode.Encode.class_size c) 0 classes in
  let hot = List.fold_left (fun a r -> a + r.Opt.Repartition.hot_bytes) 0 results in
  let moved = List.fold_left (fun a r -> a + r.Opt.Repartition.moved) 0 results in
  Printf.printf
    "profiled %d methods; moved %d cold methods into satellites;
     startup transfer %d -> %d bytes (%.1f%% saved); wrote %d classes to %s
"
    (List.length (Monitor.Profiler.first_use_order prof))
    moved orig hot
    (100.0 *. Float.of_int (orig - hot) /. Float.of_int orig)
    (List.length split_classes) out_dir;
  0

(* --- analyze: dump the proxy-side dataflow view of a class. --- *)

let analyze path dot =
  let cf = load_class path in
  let pool = cf.Bytecode.Classfile.pool in
  List.iter
    (fun (m : Bytecode.Classfile.meth) ->
      match Analysis.Pass.for_method pool ~cls:cf.Bytecode.Classfile.name m with
      | None -> ()
      | Some f ->
        let cfg = f.Analysis.Pass.cfg in
        let label =
          cf.Bytecode.Classfile.name ^ "." ^ m.Bytecode.Classfile.m_name
          ^ m.Bytecode.Classfile.m_desc
        in
        if dot then print_string (Analysis.Cfg.to_dot ~name:label cfg)
        else begin
          Printf.printf "%s\n" label;
          Format.printf "%a" Analysis.Cfg.pp cfg;
          let dom = Lazy.force f.Analysis.Pass.dom in
          Array.iter
            (fun (b : Analysis.Cfg.block) ->
              match Analysis.Dom.idom dom b.Analysis.Cfg.id with
              | Some i -> Printf.printf "  idom(b%d) = b%d\n" b.Analysis.Cfg.id i
              | None -> ())
            cfg.Analysis.Cfg.blocks;
          List.iter
            (fun (l : Analysis.Dom.loop) ->
              Printf.printf "  loop: header b%d, latches [%s], %d blocks\n"
                l.Analysis.Dom.header
                (String.concat "; "
                   (List.map string_of_int l.Analysis.Dom.latches))
                (Hashtbl.length l.Analysis.Dom.body))
            (Analysis.Dom.loops dom);
          let nn = Lazy.force f.Analysis.Pass.nullness in
          let rg = Lazy.force f.Analysis.Pass.ranges in
          Array.iter
            (fun (b : Analysis.Cfg.block) ->
              let at = b.Analysis.Cfg.first in
              (match nn.Analysis.Nullness.before.(at) with
              | Some st ->
                Format.printf "  b%d null: %a@." b.Analysis.Cfg.id
                  Analysis.Nullness.pp_state st
              | None -> ());
              match rg.Analysis.Intrange.before.(at) with
              | Some st ->
                Format.printf "  b%d rng:  %a@." b.Analysis.Cfg.id
                  Analysis.Intrange.pp_state st
              | None -> ())
            cfg.Analysis.Cfg.blocks;
          Printf.printf "  solver iterations: nullness %d, ranges %d\n\n"
            nn.Analysis.Nullness.iterations rg.Analysis.Intrange.iterations
        end)
    cf.Bytecode.Classfile.methods;
  0

(* --- lint: run the analyzer over every bundled workload class.
   Fails on solver non-convergence and on any CFG that differs between
   the in-memory class and its encode/decode round trip. --- *)

let lint json =
  let failures = ref 0 in
  let failed = ref [] in
  let classes = ref 0 and methods = ref 0 and blocks = ref 0 in
  let boundaries (cfg : Analysis.Cfg.t) =
    Array.map
      (fun (b : Analysis.Cfg.block) ->
        (b.Analysis.Cfg.first, b.Analysis.Cfg.last))
      cfg.Analysis.Cfg.blocks
  in
  let fail_with cls (m : Bytecode.Classfile.meth) msg =
    incr failures;
    failed :=
      Printf.sprintf "%s.%s%s: %s" cls m.Bytecode.Classfile.m_name
        m.Bytecode.Classfile.m_desc msg
      :: !failed;
    Printf.eprintf "lint: %s.%s%s: %s\n" cls m.Bytecode.Classfile.m_name
      m.Bytecode.Classfile.m_desc msg
  in
  List.iter
    (fun spec ->
      let app = Workloads.Apps.build spec in
      List.iter
        (fun (cf : Bytecode.Classfile.t) ->
          incr classes;
          let decoded =
            Bytecode.Decode.class_of_bytes (Bytecode.Encode.class_to_bytes cf)
          in
          List.iter
            (fun (m : Bytecode.Classfile.meth) ->
              match m.Bytecode.Classfile.m_code with
              | None -> ()
              | Some code -> (
                incr methods;
                match Analysis.Cfg.of_code code with
                | exception Analysis.Cfg.Malformed msg ->
                  fail_with cf.Bytecode.Classfile.name m ("malformed: " ^ msg)
                | cfg -> (
                  blocks := !blocks + Analysis.Cfg.block_count cfg;
                  (match
                     Bytecode.Classfile.find_method decoded
                       m.Bytecode.Classfile.m_name m.Bytecode.Classfile.m_desc
                   with
                  | Some { Bytecode.Classfile.m_code = Some code'; _ } -> (
                    match Analysis.Cfg.of_code code' with
                    | exception Analysis.Cfg.Malformed msg ->
                      fail_with cf.Bytecode.Classfile.name m
                        ("decoded copy malformed: " ^ msg)
                    | cfg' ->
                      if boundaries cfg <> boundaries cfg' then
                        fail_with cf.Bytecode.Classfile.name m
                          "CFG decode mismatch")
                  | _ ->
                    fail_with cf.Bytecode.Classfile.name m
                      "method lost in encode/decode round trip");
                  let sg =
                    Bytecode.Descriptor.method_sig_of_string
                      m.Bytecode.Classfile.m_desc
                  in
                  let param_slots = Bytecode.Descriptor.param_slots sg in
                  let is_static =
                    Bytecode.Classfile.has_flag m.Bytecode.Classfile.m_flags
                      Bytecode.Classfile.Static
                  in
                  try
                    ignore
                      (Analysis.Nullness.analyze cf.Bytecode.Classfile.pool
                         ~max_locals:code.Bytecode.Classfile.max_locals
                         ~param_slots ~is_static cfg);
                    ignore
                      (Analysis.Intrange.analyze cf.Bytecode.Classfile.pool
                         ~max_locals:code.Bytecode.Classfile.max_locals
                         ~param_slots ~is_static cfg)
                  with Analysis.Solver.Diverged msg ->
                    fail_with cf.Bytecode.Classfile.name m
                      ("solver diverged: " ^ msg))))
            cf.Bytecode.Classfile.methods)
        app.Workloads.Appgen.classes)
    Workloads.Apps.all_specs;
  (if json then
     let escape s =
       String.concat ""
         (List.map
            (function
              | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n"
              | c -> String.make 1 c)
            (List.init (String.length s) (String.get s)))
     in
     Printf.printf
       {|{"classes":%d,"methods":%d,"blocks":%d,"failures":%d,"failed":[%s]}|}
       !classes !methods !blocks !failures
       (String.concat ","
          (List.rev_map (fun f -> Printf.sprintf {|"%s"|} (escape f)) !failed));
     print_newline ()
   else
     Printf.printf
       "lint: %d classes, %d methods, %d blocks analyzed, %d failure(s)\n"
       !classes !methods !blocks !failures);
  if !failures > 0 then 1 else 0

(* --- certify: rewrite every bundled workload under the covering
   policy with certificate emission on, round-trip the bytes, and make
   the translation validator re-prove every elision and hoist. With
   --mutate, also run the mutation harness and enforce a kill-rate
   bar. --- *)

let certify json mutate seed count min_kill small =
  let escape s =
    String.concat ""
      (List.map
         (function
           | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n"
           | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  let rep = Dvm.Certification.certify_workloads ~small () in
  let mrep =
    if mutate then
      Some
        (Dvm.Certification.mutation_run ~small:true ~seed:(Int64.of_int seed)
           ~count ())
    else None
  in
  let nfail = List.length rep.Dvm.Certification.rp_failures in
  if json then begin
    let mutation_json =
      match mrep with
      | None -> ""
      | Some m ->
        Printf.sprintf
          {|,"mutation":{"seed":%Ld,"mutants":%d,"killed_verifier":%d,"killed_certifier":%d,"kill_rate":%.4f,"survivors":[%s]}|}
          m.Dvm.Certification.mt_seed m.Dvm.Certification.mt_mutants
          m.Dvm.Certification.mt_killed_verifier
          m.Dvm.Certification.mt_killed_certifier
          (Dvm.Certification.kill_rate m)
          (String.concat ","
             (List.map
                (fun (r : Dvm.Certification.mutation_result) ->
                  Printf.sprintf {|"%s: %s"|} (escape r.Dvm.Certification.mu_class)
                    (escape r.Dvm.Certification.mu_desc))
                m.Dvm.Certification.mt_survivors))
    in
    Printf.printf
      {|{"apps":%d,"classes":%d,"methods":%d,"sites":%d,"live":%d,"certified":%d,"hoists":%d,"cert_entries":%d,"elided":%d,"failures":%d,"failed":[%s]%s}|}
      rep.Dvm.Certification.rp_apps rep.Dvm.Certification.rp_classes
      rep.Dvm.Certification.rp_methods rep.Dvm.Certification.rp_sites
      rep.Dvm.Certification.rp_live rep.Dvm.Certification.rp_certified
      rep.Dvm.Certification.rp_hoists rep.Dvm.Certification.rp_cert_entries
      rep.Dvm.Certification.rp_elided nfail
      (String.concat ","
         (List.map
            (fun (cls, why) ->
              Printf.sprintf {|"%s: %s"|} (escape cls) (escape why))
            rep.Dvm.Certification.rp_failures))
      mutation_json;
    print_newline ()
  end
  else begin
    Printf.printf
      "certify: %d apps, %d classes, %d methods\n\
      \  %d protected sites: %d live checks, %d certificate-backed (%d hoists)\n\
      \  %d certificate entries emitted, %d checks elided by the rewriter\n\
      \  %d failure(s)\n"
      rep.Dvm.Certification.rp_apps rep.Dvm.Certification.rp_classes
      rep.Dvm.Certification.rp_methods rep.Dvm.Certification.rp_sites
      rep.Dvm.Certification.rp_live rep.Dvm.Certification.rp_certified
      rep.Dvm.Certification.rp_hoists rep.Dvm.Certification.rp_cert_entries
      rep.Dvm.Certification.rp_elided nfail;
    List.iter
      (fun (cls, why) -> Printf.eprintf "certify: %s: %s\n" cls why)
      rep.Dvm.Certification.rp_failures;
    match mrep with
    | None -> ()
    | Some m ->
      Printf.printf
        "mutation: seed %Ld, %d mutants: %d killed by verifier, %d by \
         certifier, %d survived (kill rate %.1f%%, bar %.0f%%)\n"
        m.Dvm.Certification.mt_seed m.Dvm.Certification.mt_mutants
        m.Dvm.Certification.mt_killed_verifier
        m.Dvm.Certification.mt_killed_certifier
        (List.length m.Dvm.Certification.mt_survivors)
        (100. *. Dvm.Certification.kill_rate m)
        (100. *. min_kill);
      List.iter
        (fun (r : Dvm.Certification.mutation_result) ->
          Printf.printf "  survivor: %s: %s\n" r.Dvm.Certification.mu_class
            r.Dvm.Certification.mu_desc)
        m.Dvm.Certification.mt_survivors
  end;
  let kill_ok =
    match mrep with
    | None -> true
    | Some m -> Dvm.Certification.kill_rate m >= min_kill
  in
  if nfail > 0 || not kill_ok then 1 else 0

(* --- trace / metrics: run an instrumented workload and export
   telemetry (spans in Chrome trace_event form for Perfetto, or a
   plain-text metrics snapshot). --- *)

let find_spec app_name =
  match
    List.find_opt
      (fun s -> String.equal s.Workloads.Appgen.name app_name)
      Workloads.Apps.all_specs
  with
  | Some spec -> spec
  | None ->
    Printf.eprintf "unknown app %S (expected: %s)\n" app_name
      (String.concat ", "
         (List.map (fun s -> s.Workloads.Appgen.name) Workloads.Apps.all_specs));
    exit 2

(* The telemetry workload: fetch every class of the app through a
   proxy over a simulated WAN (simnet events, pipeline filters, cache
   misses), then run the app on a DVM client against the warmed proxy
   (cache hits, client fetches, deferred link checks). Touches every
   instrumented subsystem in one pass. *)
let run_traced_workload app_name =
  let spec = find_spec app_name in
  let app = Workloads.Apps.build_small spec in
  let oracle =
    Verifier.Oracle.of_classes
      (Jvm.Bootlib.boot_classes () @ app.Workloads.Appgen.classes)
  in
  let engine = Simnet.Engine.create () in
  (* Console and audit trail share the simulation clock, so audit
     events and telemetry spans agree on timestamps. *)
  let console =
    Monitor.Console.create ~clock:(fun () -> Simnet.Engine.now engine) ()
  in
  let services = Dvm.Experiment.standard_services ~oracle () in
  let proxy =
    Proxy.create engine
      ~audit:(Monitor.Console.audit console)
      ~origin:(Workloads.Appgen.origin app)
      ~origin_latency:(fun _ -> Simnet.Engine.ms 40)
      ~filters:services.Dvm.Experiment.filters ()
  in
  List.iter
    (fun (cls, _) -> Proxy.request proxy ~cls (fun _ -> ()))
    (Workloads.Appgen.class_bytes app);
  Simnet.Engine.run engine;
  let cclient =
    Monitor.Console.handshake console ~user:"operator"
      ~hardware:"x86-200MHz-64MB" ~native_format:"x86" ~vm_version:"dvm-1.0"
  in
  let server = Security.Server.create Dvm.Experiment.standard_policy in
  let client =
    Dvm.Client.create_dvm ~console ~session:cclient.Monitor.Console.session
      ~security_server:server ~sid:"apps" ~provider:(Proxy.provider proxy) ()
  in
  Monitor.Console.record_app_start console cclient
    ~app:app.Workloads.Appgen.entry;
  (match Dvm.Client.run_main client app.Workloads.Appgen.entry with
  | Ok () -> ()
  | Error e ->
    Printf.eprintf "workload failed: %s\n" (Jvm.Interp.describe_throwable e))

let with_telemetry f =
  let reg = Telemetry.default in
  Telemetry.reset reg;
  Telemetry.enable reg;
  Fun.protect ~finally:(fun () -> Telemetry.disable reg) f;
  reg

let trace app_name out_path =
  let reg = with_telemetry (fun () -> run_traced_workload app_name) in
  (try write_file out_path (Telemetry.chrome_trace reg)
   with Sys_error msg ->
     Printf.eprintf "cannot write trace: %s\n" msg;
     exit 2);
  let cats =
    List.sort_uniq String.compare
      (List.map (fun sp -> sp.Telemetry.sp_cat) (Telemetry.spans reg))
  in
  Printf.printf
    "wrote %s: %d spans across subsystems [%s], %d counters\n\
     (open in https://ui.perfetto.dev or chrome://tracing)\n"
    out_path (Telemetry.span_count reg)
    (String.concat ", " cats)
    (List.length (Telemetry.counters reg));
  0

let metrics app_name json =
  let reg = with_telemetry (fun () -> run_traced_workload app_name) in
  if json then print_endline (Telemetry.metrics_json reg)
  else print_string (Telemetry.metrics_snapshot reg);
  0

(* --- flight / slo: distributed tracing and the SLO monitor over a
   seeded chaos run. --- *)

let flight seed duration out =
  let cfg =
    {
      Dvm.Chaos.default_config with
      Dvm.Chaos.ch_seed = seed;
      ch_duration_s = duration;
      ch_trace = true;
    }
  in
  let o = Dvm.Chaos.run cfg in
  Printf.printf
    "chaos run (seed %d, %ds): %d fetches, %d served, %d shed, %d stale\n\
     collected %d spans and %d events across %d traces (%d dropped)\n\n"
    seed duration o.Dvm.Chaos.co_fetches o.Dvm.Chaos.co_served
    o.Dvm.Chaos.co_shed o.Dvm.Chaos.co_stale_served
    (Telemetry.Trace.span_count ())
    (Telemetry.Trace.event_count ())
    (List.length (Telemetry.Trace.trace_ids ()))
    (Telemetry.Trace.dropped ());
  let export label tr =
    Printf.printf "--- %s request (trace %016Lx) ---\n%s\n" label tr
      (Telemetry.Trace.render tr);
    let chrome = Printf.sprintf "%s-%s.trace.json" out label in
    let json = Printf.sprintf "%s-%s.json" out label in
    write_file chrome (Telemetry.Trace.export_chrome tr);
    write_file json (Telemetry.Trace.export_json tr);
    Printf.printf "wrote %s (Perfetto/chrome://tracing) and %s\n\n" chrome json
  in
  let missing = ref false in
  (match
     match Telemetry.Trace.find_trace_with ~kind:"admission.shed_deadline" with
     | Some tr -> Some tr
     | None -> Telemetry.Trace.find_trace_with ~kind:"admission.shed_queue"
   with
  | Some tr -> export "shed" tr
  | None ->
    missing := true;
    print_endline "no shed request in this run (try another seed)");
  (match Telemetry.Trace.find_trace_with ~kind:"client.serve_stale" with
  | Some tr -> export "stale" tr
  | None ->
    missing := true;
    print_endline "no serve-stale brownout in this run (try another seed)");
  let fpath = out ^ "-flight.json" in
  write_file fpath (Telemetry.Flight.dump_json ());
  Printf.printf "wrote %s: flight-recorder rings for nodes [%s]\n" fpath
    (String.concat ", " (Telemetry.Flight.nodes ()));
  if !missing then 1 else 0

let slo seed duration json =
  let cfg =
    {
      Dvm.Chaos.default_config with
      Dvm.Chaos.ch_seed = seed;
      ch_duration_s = duration;
    }
  in
  let o = Dvm.Chaos.run cfg in
  if json then print_endline (Telemetry.Slo.report_json o.Dvm.Chaos.co_slo)
  else begin
    Printf.printf
      "chaos run (seed %d, %ds): %d fetches, %d fresh, %d stale, %d failed, \
       %d shed\n\n"
      seed duration o.Dvm.Chaos.co_fetches o.Dvm.Chaos.co_served
      o.Dvm.Chaos.co_stale_served o.Dvm.Chaos.co_failed o.Dvm.Chaos.co_shed;
    print_string (Telemetry.Slo.report_text o.Dvm.Chaos.co_slo)
  end;
  0

let faults seed crash losses replicas trace =
  let scenario =
    let base =
      if crash then Dvm.Availability.crash_scenario
      else Dvm.Availability.default_scenario
    in
    { base with Dvm.Availability.sc_seed = seed }
  in
  let points =
    Dvm.Availability.sweep ~scenario ~loss_pcts:losses
      ~replica_counts:replicas ()
  in
  Dvm.Availability.print_table points;
  if trace then begin
    print_newline ();
    List.iter
      (fun p ->
        Printf.printf "fault trace (loss %.1f%%, %d replica(s)):\n"
          p.Dvm.Availability.av_loss_pct p.Dvm.Availability.av_replicas;
        match p.Dvm.Availability.av_trace with
        | [] -> print_endline "  (no faults injected)"
        | lines -> List.iter (Printf.printf "  %s\n") lines)
      points
  end;
  0

(* --- farm: the sharded-proxy scaling experiment. --- *)

let farm clients shard_counts duration applets cache_mb l2_mb seed =
  let cache_capacity = cache_mb * 1024 * 1024 in
  let l2_capacity = l2_mb * 1024 * 1024 in
  Printf.printf
    "proxy farm: %d clients, %ds, %d applets, L1 %d MB/shard, shared L2 %d MB\n%s\n"
    clients duration applets cache_mb l2_mb
    (if cache_capacity = 0 && l2_capacity = 0 then
       "(caching off: every request unique, the Figure-10 worst case)\n"
     else "(caches on: clients share the popular applet set)\n");
  Printf.printf "%7s %16s %12s %10s %10s %10s %8s %9s\n" "Shards"
    "Throughput(B/s)" "Latency(ms)" "Completed" "Pipeline" "Coalesced"
    "L2 hits" "CPU util";
  let points =
    Dvm.Scaling.farm_sweep ~duration_s:duration ~seed ~applet_count:applets
      ~cache_capacity ~l2_capacity ~clients shard_counts
  in
  List.iter
    (fun p ->
      Printf.printf "%7d %16.0f %12.0f %10d %10d %10d %8d %9.2f\n"
        p.Dvm.Scaling.f_shards p.Dvm.Scaling.f_throughput_bytes_per_s
        (p.Dvm.Scaling.f_mean_latency_us /. 1000.0)
        p.Dvm.Scaling.f_requests_completed p.Dvm.Scaling.f_pipeline_runs
        p.Dvm.Scaling.f_coalesced p.Dvm.Scaling.f_l2_hits
        p.Dvm.Scaling.f_utilization)
    points;
  (* The served bytes must not depend on who did the work: check the
     per-applet digests agree wherever two shard counts served the
     same applet. *)
  (match points with
  | [] | [ _ ] -> ()
  | base :: rest ->
    let mismatches = ref 0 and compared = ref 0 in
    List.iter
      (fun p ->
        List.iter
          (fun (k, d) ->
            match List.assoc_opt k base.Dvm.Scaling.f_served with
            | Some d0 ->
              incr compared;
              if not (String.equal d d0) then incr mismatches
            | None -> ())
          p.Dvm.Scaling.f_served)
      rest;
    Printf.printf
      "\nserved-bytes invariance: %d applet digests compared across shard \
       counts, %d mismatches\n"
      !compared !mismatches);
  0

(* --- chaos: the overload-control chaos harness. --- *)

let chaos seed shards clients duration spike spike_start spike_len crashes
    loss budget_ms no_control compare trace =
  let cfg =
    {
      Dvm.Chaos.default_config with
      Dvm.Chaos.ch_seed = seed;
      ch_shards = shards;
      ch_clients = clients;
      ch_duration_s = duration;
      ch_spike_factor = spike;
      ch_spike_start_s = spike_start;
      ch_spike_len_s = spike_len;
      ch_crashes = crashes;
      ch_loss_pct = loss;
      ch_budget_us = Int64.of_int (budget_ms * 1000);
      ch_control = not no_control;
      (* Tracing on: every fetch leaves a cross-node trace and the
         per-node flight recorders fill, so an invariant violation can
         dump the moments before it. *)
      ch_trace = true;
    }
  in
  Printf.printf
    "chaos: %d shards, %d clients (x%d flash crowd at %d..%ds), %d crash \
     windows,\n\
     %.1f%% LAN loss, %d ms deadline budget, overload control %s, seed %d\n\n"
    cfg.Dvm.Chaos.ch_shards cfg.Dvm.Chaos.ch_clients
    cfg.Dvm.Chaos.ch_spike_factor cfg.Dvm.Chaos.ch_spike_start_s
    (cfg.Dvm.Chaos.ch_spike_start_s + cfg.Dvm.Chaos.ch_spike_len_s)
    cfg.Dvm.Chaos.ch_crashes cfg.Dvm.Chaos.ch_loss_pct budget_ms
    (if cfg.Dvm.Chaos.ch_control then "on" else "OFF")
    cfg.Dvm.Chaos.ch_seed;
  if compare then begin
    let cmp = Dvm.Chaos.spike_comparison cfg in
    Dvm.Chaos.print_outcome ~label:"control" cmp.Dvm.Chaos.cmp_control;
    Dvm.Chaos.print_outcome ~label:"baseline" cmp.Dvm.Chaos.cmp_baseline;
    Printf.printf "\ngoodput with control = %.2fx baseline\n"
      cmp.Dvm.Chaos.cmp_goodput_ratio
  end;
  let v = Dvm.Chaos.verify cfg in
  if compare then print_newline ();
  Dvm.Chaos.print_outcome ~label:"reference" v.Dvm.Chaos.v_reference;
  Dvm.Chaos.print_outcome ~label:"chaotic" v.Dvm.Chaos.v_chaotic;
  Printf.printf
    "\nserved bytes digest-identical: %b\n\
     zero serves past deadline:     %b\n\
     steady-state recovery:         %b (tail serves %d vs reference %d)\n"
    v.Dvm.Chaos.v_digests_ok v.Dvm.Chaos.v_no_late_serves
    v.Dvm.Chaos.v_recovered v.Dvm.Chaos.v_chaotic.Dvm.Chaos.co_tail_served
    v.Dvm.Chaos.v_reference.Dvm.Chaos.co_tail_served;
  if trace then begin
    Printf.printf "\ninjected-fault trace (replayable from seed %d):\n" seed;
    match v.Dvm.Chaos.v_chaotic.Dvm.Chaos.co_fault_trace with
    | [] -> print_endline "  (no faults injected)"
    | lines -> List.iter (Printf.printf "  %s\n") lines
  end;
  if Dvm.Chaos.ok v then 0
  else begin
    (* Invariant violation: dump the per-node flight recorders (the
       last moments of the chaotic run) for the post-mortem. *)
    let path = "chaos-flight.json" in
    write_file path (Telemetry.Flight.dump_json ());
    Printf.eprintf "invariant violated; flight-recorder dump written to %s\n"
      path;
    1
  end

let control seed shards clients duration applets partitions partition_len
    bump_at no_restart lease_ms churn snapshot_every no_leader_crash
    no_leader_partition trace json =
  let cfg =
    {
      Dvm.Chaos.default_control_config with
      Dvm.Chaos.cc_seed = seed;
      cc_shards = shards;
      cc_clients = clients;
      cc_duration_s = duration;
      cc_applets = applets;
      cc_partitions = partitions;
      cc_partition_len_s = partition_len;
      cc_bump_at_s = bump_at;
      cc_restart_shard = not no_restart;
      cc_lease_us = Int64.of_int (lease_ms * 1000);
      cc_churn_s = churn;
      cc_snapshot_every = snapshot_every;
      cc_leader_crash = not no_leader_crash;
      cc_leader_partition = not no_leader_partition;
    }
  in
  if not json then
    Printf.printf
      "control: %d shards, %d clients, %d applets, policy bump at %ds,\n\
       %d control-link partition windows of %ds (first spans the bump), \
       restart %s,\n\
       leader crash %s, leader partition %s, churn every %ds, snapshot \
       every %d,\n\
       %d ms lease, seed %d\n\n"
      cfg.Dvm.Chaos.cc_shards cfg.Dvm.Chaos.cc_clients cfg.Dvm.Chaos.cc_applets
      cfg.Dvm.Chaos.cc_bump_at_s cfg.Dvm.Chaos.cc_partitions
      cfg.Dvm.Chaos.cc_partition_len_s
      (if cfg.Dvm.Chaos.cc_restart_shard then "on" else "off")
      (if cfg.Dvm.Chaos.cc_leader_crash then "on" else "off")
      (if cfg.Dvm.Chaos.cc_leader_partition then "on" else "off")
      cfg.Dvm.Chaos.cc_churn_s cfg.Dvm.Chaos.cc_snapshot_every lease_ms
      cfg.Dvm.Chaos.cc_seed;
  let w = Dvm.Chaos.verify_control cfg in
  let c = w.Dvm.Chaos.w_chaotic in
  let ok = Dvm.Chaos.control_ok w in
  if json then begin
    let escape s =
      String.concat ""
        (List.map
           (function
             | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n"
             | c -> String.make 1 c)
           (List.init (String.length s) (String.get s)))
    in
    let slist l =
      String.concat "," (List.map (fun s -> Printf.sprintf {|"%s"|} (escape s)) l)
    in
    let ilist l = String.concat "," (List.map string_of_int l) in
    Printf.printf
      {|{"seed":%d,"shards":%d,"fetches":%d,"served":%d,"failed":%d,"commit_us":%Ld,"term":%d,"member_terms":[%s],"elections":%d,"leader_changes":%d,"stepdowns":%d,"redrives":%d,"compactions":%d,"snapshot_installs":%d,"max_leased":%d,"term_regressions":%d,"resyncs":%d,"fence_rejects":%d,"invalidations":%d,"revoked_serves":%d,"member_versions":[%s],"changed_applets":[%s],"invariants":{"no_revoked_serves":%b,"single_leader":%b,"replay_ok":%b,"converged":%b,"digests_ok":%b,"ok":%b}}|}
      c.Dvm.Chaos.cn_seed cfg.Dvm.Chaos.cc_shards c.Dvm.Chaos.cn_fetches
      c.Dvm.Chaos.cn_served c.Dvm.Chaos.cn_failed c.Dvm.Chaos.cn_commit_us
      c.Dvm.Chaos.cn_term
      (ilist c.Dvm.Chaos.cn_member_terms)
      c.Dvm.Chaos.cn_elections c.Dvm.Chaos.cn_leader_changes
      c.Dvm.Chaos.cn_stepdowns c.Dvm.Chaos.cn_redrives
      c.Dvm.Chaos.cn_compactions c.Dvm.Chaos.cn_snapshot_installs
      c.Dvm.Chaos.cn_max_leased c.Dvm.Chaos.cn_term_regressions
      c.Dvm.Chaos.cn_resyncs c.Dvm.Chaos.cn_fence_rejects
      c.Dvm.Chaos.cn_invalidations c.Dvm.Chaos.cn_revoked_serves
      (ilist c.Dvm.Chaos.cn_member_versions)
      (slist c.Dvm.Chaos.cn_changed_applets)
      w.Dvm.Chaos.w_no_revoked_serves w.Dvm.Chaos.w_single_leader
      w.Dvm.Chaos.w_replay_ok w.Dvm.Chaos.w_converged
      w.Dvm.Chaos.w_digests_ok ok;
    print_newline ()
  end
  else begin
    Dvm.Chaos.print_control_outcome ~label:"reference" w.Dvm.Chaos.w_reference;
    Dvm.Chaos.print_control_outcome ~label:"chaotic" w.Dvm.Chaos.w_chaotic;
    Printf.printf
      "\nbump v%d -> v%d committed at %Ld us; %d applets change bytes: %s\n"
      c.Dvm.Chaos.cn_base_version c.Dvm.Chaos.cn_new_version
      c.Dvm.Chaos.cn_commit_us
      (List.length c.Dvm.Chaos.cn_changed_applets)
      (String.concat ", " c.Dvm.Chaos.cn_changed_applets);
    Printf.printf
      "\nno serves under revoked version: %b (in-flight exempt: %d)\n\
       at most one leased leader:      %b (max sampled %d, term \
       regressions %d)\n\
       snapshot catch-up = replay:     %b (%d compactions, %d installs)\n\
       every shard converged:          %b (versions %s, terms %s)\n\
       unaffected digests identical:   %b\n"
      w.Dvm.Chaos.w_no_revoked_serves c.Dvm.Chaos.cn_inflight_exempt
      w.Dvm.Chaos.w_single_leader c.Dvm.Chaos.cn_max_leased
      c.Dvm.Chaos.cn_term_regressions w.Dvm.Chaos.w_replay_ok
      c.Dvm.Chaos.cn_compactions c.Dvm.Chaos.cn_snapshot_installs
      w.Dvm.Chaos.w_converged
      (String.concat " "
         (List.map string_of_int c.Dvm.Chaos.cn_member_versions))
      (String.concat " " (List.map string_of_int c.Dvm.Chaos.cn_member_terms))
      w.Dvm.Chaos.w_digests_ok;
    if trace then begin
      Printf.printf "\ninjected-fault trace (replayable from seed %d):\n" seed;
      match c.Dvm.Chaos.cn_fault_trace with
      | [] -> print_endline "  (no faults injected)"
      | lines -> List.iter (Printf.printf "  %s\n") lines
    end
  end;
  if ok then 0
  else begin
    if not json then Printf.eprintf "control-plane invariant violated\n";
    1
  end

(* --- Cmdliner plumbing. --- *)

let gen_cmd =
  let app_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"APP")
  in
  let dir_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a Figure-5 workload application")
    Term.(const gen $ app_arg $ dir_arg)

let disasm_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a class file")
    Term.(const disasm $ path)

let verify_cmd =
  let paths = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Statically verify class files; all given files form the oracle \
          environment")
    Term.(const verify $ paths)

let rewrite_cmd =
  let security =
    Arg.(value & flag & info [ "security" ] ~doc:"insert security checks")
  in
  let audit =
    Arg.(value & flag & info [ "audit" ] ~doc:"insert audit instrumentation")
  in
  let policy =
    Arg.(value & opt (some file) None & info [ "policy" ] ~docv:"XML"
           ~doc:"XML policy file for the security service")
  in
  let key =
    Arg.(value & opt (some string) None & info [ "sign" ] ~docv:"SECRET"
           ~doc:"sign the output with this organization secret")
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT"
           ~doc:"output path (default FILE.dvm)")
  in
  Cmd.v
    (Cmd.info "rewrite" ~doc:"Run a class through the static service pipeline")
    Term.(const rewrite $ security $ audit $ policy $ key $ path $ out)

let run_cmd =
  let entry = Arg.(required & pos 0 (some string) None & info [] ~docv:"ENTRY") in
  let paths = Arg.(non_empty & pos_right 0 file [] & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute an application's main() on a DVM client")
    Term.(const run $ entry $ paths)

let split_cmd =
  let entry = Arg.(required & pos 0 (some string) None & info [] ~docv:"ENTRY") in
  let paths = Arg.(non_empty & pos_right 0 file [] & info [] ~docv:"FILE") in
  let out =
    Arg.(value & opt string "split-out" & info [ "o" ] ~docv:"DIR"
           ~doc:"output directory (default split-out)")
  in
  Cmd.v
    (Cmd.info "split"
       ~doc:
         "Profile a first execution and repartition the application at           method granularity (section 5)")
    Term.(const split $ entry $ paths $ out)

let analyze_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let dot =
    Arg.(value & flag
         & info [ "dot" ] ~doc:"emit Graphviz dot instead of a text dump")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Dump the proxy-side dataflow view of a class: basic blocks, \
          edges, dominators, loops, and the per-block nullness and \
          integer-range facts the elision passes consume")
    Term.(const analyze $ path $ dot)

let lint_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"emit a machine-readable summary on stdout instead of text")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the dataflow analyzer over every bundled workload class; \
          fails on solver non-convergence or on a CFG that changes across \
          an encode/decode round trip")
    Term.(const lint $ json)

let certify_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"emit a machine-readable summary on stdout")
  in
  let mutate =
    Arg.(value & flag
         & info [ "mutate" ]
             ~doc:"also run the mutation harness and enforce the kill-rate bar")
  in
  let seed =
    Arg.(value & opt int 20260808
         & info [ "seed" ] ~docv:"SEED" ~doc:"mutation sampling seed")
  in
  let count =
    Arg.(value & opt int 3
         & info [ "count" ] ~docv:"N" ~doc:"mutants sampled per class")
  in
  let min_kill =
    Arg.(value & opt float 0.9
         & info [ "min-kill" ] ~docv:"RATE"
             ~doc:"minimum mutation kill rate (0..1) to exit successfully")
  in
  let small =
    Arg.(value & flag
         & info [ "small" ]
             ~doc:"certify the small workload builds instead of the full \
                   401-class set")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Rewrite every bundled workload under the covering policy with \
          elision-certificate emission on, round-trip the bytes, and make \
          the translation validator independently re-prove every elided \
          and hoisted check; with --mutate, seeded corruptions of rewriter \
          output must be killed by the verifier or the certifier")
    Term.(const certify $ json $ mutate $ seed $ count $ min_kill $ small)

let trace_cmd =
  let app_arg =
    Arg.(value & pos 0 string "jlex" & info [] ~docv:"APP"
           ~doc:"workload application (a Figure-5 benchmark name)")
  in
  let out =
    Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"output path for the Chrome trace_event JSON")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a workload with telemetry enabled and export a Chrome \
          trace_event JSON (loadable in Perfetto) with spans from the \
          simulator, proxy pipeline, cache and client VM")
    Term.(const trace $ app_arg $ out)

let metrics_cmd =
  let app_arg =
    Arg.(value & pos 0 string "jlex" & info [] ~docv:"APP"
           ~doc:"workload application (a Figure-5 benchmark name)")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "emit one JSON object (counters, gauges, histograms with \
             p50/p95/p99) instead of the text snapshot")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a workload with telemetry enabled and print the metrics \
          snapshot (counters, gauges, latency histograms)")
    Term.(const metrics $ app_arg $ json)

let flight_cmd =
  let seed =
    Arg.(
      value
      & opt int Dvm.Chaos.default_config.Dvm.Chaos.ch_seed
      & info [ "seed" ] ~docv:"N"
          ~doc:"chaos-schedule seed; traces are a pure function of it")
  in
  let duration =
    Arg.(
      value & opt int 16
      & info [ "duration" ] ~docv:"S"
          ~doc:
            "simulated seconds (long enough at the default seed for both a \
             shed and a brownout to occur)")
  in
  let out =
    Arg.(
      value & opt string "flight"
      & info [ "out"; "o" ] ~docv:"PREFIX"
          ~doc:"output prefix for the exported trace/flight JSON files")
  in
  Cmd.v
    (Cmd.info "flight"
       ~doc:
         "Run a traced seeded chaos run, then walk one shed request and one \
          serve-stale brownout end to end: render each cross-node span tree \
          (client fetch, farm edge routing, shard hops, reason events), \
          export both as Chrome trace_event and plain JSON, and dump the \
          per-node flight-recorder rings")
    Term.(const flight $ seed $ duration $ out)

let slo_cmd =
  let seed =
    Arg.(
      value
      & opt int Dvm.Chaos.default_config.Dvm.Chaos.ch_seed
      & info [ "seed" ] ~docv:"N" ~doc:"chaos-schedule seed")
  in
  let duration =
    Arg.(
      value
      & opt int Dvm.Chaos.default_config.Dvm.Chaos.ch_duration_s
      & info [ "duration" ] ~docv:"S" ~doc:"simulated seconds")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"emit the report as one JSON object")
  in
  Cmd.v
    (Cmd.info "slo"
       ~doc:
         "Run a seeded chaos run and print the SLO monitor's report: \
          rolling goodput over the final window, deadline-violation rate \
          against the 99% objective, and error-budget burn")
    Term.(const slo $ seed $ duration $ json)

let faults_cmd =
  let seed =
    Arg.(value & opt int Dvm.Availability.default_scenario.Dvm.Availability.sc_seed
         & info [ "seed" ] ~docv:"N"
             ~doc:"fault-plan seed; the run is a pure function of it")
  in
  let crash =
    Arg.(value & flag
         & info [ "crash" ]
             ~doc:"crash the primary proxy at t=400ms for 2.5s (cache-cold \
                   restart)")
  in
  let losses =
    Arg.(value & opt (list float) [ 0.0; 1.0; 5.0; 10.0 ]
         & info [ "loss" ] ~docv:"PCTS"
             ~doc:"comma-separated packet-loss percentages for the client LAN")
  in
  let replicas =
    Arg.(value & opt (list int) [ 1; 2 ]
         & info [ "replicas" ] ~docv:"NS"
             ~doc:"comma-separated proxy replica counts")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ] ~doc:"print each run's injected-fault trace")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Inject deterministic faults (link loss, latency jitter, proxy \
          crash) into a simulated jlex startup and print availability: \
          startup latency, retries, failovers, and degraded classes per \
          loss rate and replica count")
    Term.(const faults $ seed $ crash $ losses $ replicas $ trace)

let farm_cmd =
  let clients =
    Arg.(value & opt int 400
         & info [ "clients" ] ~docv:"N" ~doc:"concurrent browsing clients")
  in
  let shards =
    Arg.(value & opt (list int) [ 1; 2; 4; 8 ]
         & info [ "shards" ] ~docv:"NS"
             ~doc:"comma-separated shard counts to sweep")
  in
  let duration =
    Arg.(value & opt int 20
         & info [ "duration" ] ~docv:"S" ~doc:"simulated seconds per point")
  in
  let applets =
    Arg.(value & opt int 64
         & info [ "applets" ] ~docv:"N" ~doc:"distinct applets in the workload")
  in
  let cache =
    Arg.(value & opt int 0
         & info [ "cache" ] ~docv:"MB"
             ~doc:"per-shard L1 cache size in MB (0 disables: every request \
                   unique)")
  in
  let l2 =
    Arg.(value & opt int 0
         & info [ "l2" ] ~docv:"MB"
             ~doc:"shared L2 cache size in MB (0 disables)")
  in
  let seed =
    Arg.(value & opt int 7
         & info [ "seed" ] ~docv:"N"
             ~doc:"workload seed; the run is a pure function of it")
  in
  Cmd.v
    (Cmd.info "farm"
       ~doc:
         "Sweep the consistent-hash proxy farm over shard counts and print \
          a Figure-10-style table: aggregate throughput, latency, pipeline \
          runs, single-flight coalescing, shared-L2 hits, and a served-bytes \
          invariance check across shard counts")
    Term.(const farm $ clients $ shards $ duration $ applets $ cache $ l2
          $ seed)

let chaos_cmd =
  let d = Dvm.Chaos.default_config in
  let seed =
    Arg.(value & opt int d.Dvm.Chaos.ch_seed
         & info [ "seed" ] ~docv:"N"
             ~doc:"chaos-schedule seed; the run is a pure function of it")
  in
  let shards =
    Arg.(value & opt int d.Dvm.Chaos.ch_shards
         & info [ "shards" ] ~docv:"N" ~doc:"farm shard count")
  in
  let clients =
    Arg.(value & opt int d.Dvm.Chaos.ch_clients
         & info [ "clients" ] ~docv:"N" ~doc:"steady-state browsing clients")
  in
  let duration =
    Arg.(value & opt int d.Dvm.Chaos.ch_duration_s
         & info [ "duration" ] ~docv:"S" ~doc:"simulated seconds")
  in
  let spike =
    Arg.(value & opt int d.Dvm.Chaos.ch_spike_factor
         & info [ "spike" ] ~docv:"X"
             ~doc:"flash crowd: total offered clients during the spike \
                   window, as a multiple of the steady-state count")
  in
  let spike_start =
    Arg.(value & opt int d.Dvm.Chaos.ch_spike_start_s
         & info [ "spike-start" ] ~docv:"S" ~doc:"spike window start")
  in
  let spike_len =
    Arg.(value & opt int d.Dvm.Chaos.ch_spike_len_s
         & info [ "spike-len" ] ~docv:"S"
             ~doc:"spike window length (0 disables the spike)")
  in
  let crashes =
    Arg.(value & opt int d.Dvm.Chaos.ch_crashes
         & info [ "crashes" ] ~docv:"N"
             ~doc:"shard crash/restart windows drawn from the seed")
  in
  let loss =
    Arg.(value & opt float d.Dvm.Chaos.ch_loss_pct
         & info [ "loss" ] ~docv:"PCT" ~doc:"client-LAN packet loss")
  in
  let budget =
    Arg.(value & opt int (Int64.to_int d.Dvm.Chaos.ch_budget_us / 1000)
         & info [ "budget" ] ~docv:"MS" ~doc:"per-fetch deadline budget (ms)")
  in
  let no_control =
    Arg.(value & flag
         & info [ "no-control" ]
             ~doc:"disable the overload controls (deadline kept client-side \
                   only, no shedding, no hedging, no retry budget)")
  in
  let compare =
    Arg.(value & flag
         & info [ "compare" ]
             ~doc:"also run the control-on vs control-off spike comparison \
                   and print the goodput ratio")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ] ~doc:"print the injected-fault trace")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded chaos schedule (shard crash/restart windows, LAN \
          loss and jitter, a flash-crowd load spike) against the farm's \
          overload controls and check the three invariants: served bytes \
          digest-identical to a fault-free run, zero serves past their \
          deadline, and recovery to steady-state throughput once faults \
          clear. Exits nonzero if any invariant fails")
    Term.(const chaos $ seed $ shards $ clients $ duration $ spike
          $ spike_start $ spike_len $ crashes $ loss $ budget $ no_control
          $ compare $ trace)

let control_cmd =
  let d = Dvm.Chaos.default_control_config in
  let seed =
    Arg.(value & opt int d.Dvm.Chaos.cc_seed
         & info [ "seed" ] ~docv:"N"
             ~doc:"fault-schedule seed; the run is a pure function of it")
  in
  let shards =
    Arg.(value & opt int d.Dvm.Chaos.cc_shards
         & info [ "shards" ] ~docv:"N" ~doc:"farm shard count")
  in
  let clients =
    Arg.(value & opt int d.Dvm.Chaos.cc_clients
         & info [ "clients" ] ~docv:"N" ~doc:"browsing clients")
  in
  let duration =
    Arg.(value & opt int d.Dvm.Chaos.cc_duration_s
         & info [ "duration" ] ~docv:"S" ~doc:"simulated seconds")
  in
  let applets =
    Arg.(value & opt int d.Dvm.Chaos.cc_applets
         & info [ "applets" ] ~docv:"N" ~doc:"distinct cached applets")
  in
  let partitions =
    Arg.(value & opt int d.Dvm.Chaos.cc_partitions
         & info [ "partitions" ] ~docv:"N"
             ~doc:"control-link partition windows; the first is pinned to \
                   span the policy bump (split brain: the victim's data \
                   path stays up)")
  in
  let partition_len =
    Arg.(value & opt int d.Dvm.Chaos.cc_partition_len_s
         & info [ "partition-len" ] ~docv:"S"
             ~doc:"partition window length")
  in
  let bump_at =
    Arg.(value & opt int d.Dvm.Chaos.cc_bump_at_s
         & info [ "bump-at" ] ~docv:"S"
             ~doc:"when the leader proposes the new policy version")
  in
  let no_restart =
    Arg.(value & flag
         & info [ "no-restart" ]
             ~doc:"skip the shard crash/restart window (the restarted \
                   shard must recover version and invalidations from \
                   the log, not the stale shared L2)")
  in
  let lease =
    Arg.(value & opt int (Int64.to_int d.Dvm.Chaos.cc_lease_us / 1000)
         & info [ "lease" ] ~docv:"MS" ~doc:"member lease length (ms)")
  in
  let churn =
    Arg.(value & opt int d.Dvm.Chaos.cc_churn_s
         & info [ "churn" ] ~docv:"S"
             ~doc:"propose a rotating cache invalidation every $(docv) \
                   seconds (0 = off); keeps the log growing so compaction \
                   triggers mid-run")
  in
  let snapshot_every =
    Arg.(value & opt int d.Dvm.Chaos.cc_snapshot_every
         & info [ "snapshot-every" ] ~docv:"N"
             ~doc:"fold the committed, applied prefix into a snapshot \
                   every $(docv) live entries")
  in
  let no_leader_crash =
    Arg.(value & flag
         & info [ "no-leader-crash" ]
             ~doc:"skip crashing the leased leader 200 ms after the bump \
                   (crash-during-commit: the new leader re-drives the \
                   uncommitted suffix)")
  in
  let no_leader_partition =
    Arg.(value & flag
         & info [ "no-leader-partition" ]
             ~doc:"skip partitioning the leased leader late in the run \
                   (the stale-term wake-up)")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ] ~doc:"print the injected-fault trace")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"emit one machine-readable JSON object (terms, leader \
                   changes, snapshot stats, invariant results) instead of \
                   the report")
  in
  Cmd.v
    (Cmd.info "control"
       ~doc:
         "Replicate a security-policy bump and its cache invalidations \
          across the farm while a seeded schedule partitions control \
          links (split brain), crash/restarts a shard, kills the leased \
          leader mid-commit and wakes it with a stale term, then check \
          the control-plane invariants: no client is ever served bytes \
          rewritten under the revoked policy version once the bump \
          commits, at most one member holds a valid leadership lease at \
          any sampled instant with terms monotone, snapshot catch-up is \
          state-identical to full-log replay, every shard converges to \
          the new version, and applets the bump does not affect serve \
          byte-identical digests to a partition-free run. Exits nonzero \
          on violation")
    Term.(const control $ seed $ shards $ clients $ duration $ applets
          $ partitions $ partition_len $ bump_at $ no_restart $ lease
          $ churn $ snapshot_every $ no_leader_crash $ no_leader_partition
          $ trace $ json)

let main_cmd =
  Cmd.group
    (Cmd.info "dvmctl" ~version:"1.0"
       ~doc:"Distributed virtual machine control tool")
    [
      gen_cmd; disasm_cmd; verify_cmd; rewrite_cmd; run_cmd; split_cmd;
      analyze_cmd; lint_cmd; certify_cmd; trace_cmd; metrics_cmd; flight_cmd;
      slo_cmd; faults_cmd; farm_cmd; chaos_cmd; control_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
