(* Quickstart: the paper's Figure 3, end to end.

   A hello-world class flows through the distributed verification
   service on a proxy, comes back in self-verifying form, and runs on a
   thin DVM client that has never seen a verifier. Run with:

     dune exec examples/quickstart.exe
*)

module B = Bytecode.Builder
module CF = Bytecode.Classfile

let hello =
  B.class_ "Hello"
    [
      B.meth
        ~flags:[ CF.Public; CF.Static ]
        "main" "()V"
        [
          B.Getstatic ("java/lang/System", "out", "Ljava/io/OutputStream;");
          B.Push_str "hello world";
          B.Invokevirtual
            ("java/io/OutputStream", "println", "(Ljava/lang/String;)V");
          B.Return;
        ];
    ]

let () =
  print_endline "=== 1. The application as the origin server stores it ===";
  print_string (Bytecode.Disasm.class_to_string hello);

  (* The proxy's static verification service. Its oracle knows only the
     boot library — System and OutputStream are known, so most checks
     complete statically; if Hello referenced classes the proxy had not
     seen, the checks would be deferred to the client (Figure 3). To
     show the rewriting, pretend even the boot library is unknown: *)
  let empty_oracle = Verifier.Oracle.empty in
  print_endline "\n=== 2. After the static verification service (empty oracle) ===";
  (match Verifier.Static_verifier.verify ~oracle:empty_oracle hello with
  | Verifier.Static_verifier.Rejected (errors, _) ->
    List.iter (fun e -> print_endline (Verifier.Verror.to_string e)) errors
  | Verifier.Static_verifier.Verified (rewritten, stats) ->
    Printf.printf
      "(static checks: %d, deferred runtime checks injected: %d)\n\n"
      stats.Verifier.Static_verifier.sv_static_checks
      stats.Verifier.Static_verifier.sv_deferred;
    print_string (Bytecode.Disasm.class_to_string rewritten);

    (* 3. Serve it through a real proxy to a real client. *)
    print_endline "\n=== 3. Running the self-verifying class on a DVM client ===";
    let engine = Simnet.Engine.create () in
    let oracle =
      Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ())
    in
    let proxy =
      Proxy.create engine
        ~origin:(fun name ->
          if String.equal name "Hello" then
            Some (Bytecode.Encode.class_to_bytes hello)
          else None)
        ~origin_latency:(fun _ -> 0L)
        ~filters:[ Verifier.Static_verifier.filter ~oracle () ]
        ()
    in
    let client =
      Dvm.Client.create_dvm ~provider:(Proxy.provider proxy) ()
    in
    (match Dvm.Client.run_main client "Hello" with
    | Ok () -> print_string (Jvm.Vmstate.output client.Dvm.Client.vm)
    | Error e -> print_endline (Jvm.Interp.describe_throwable e));
    Printf.printf
      "(client executed %d bytecodes; %d deferred link checks ran)\n"
      client.Dvm.Client.vm.Jvm.Vmstate.instr_count
      (match client.Dvm.Client.rt_verifier with
      | Some s -> s.Verifier.Rt_verifier.dynamic_checks
      | None -> 0));

  (* 4. What happens to code that does not verify. *)
  print_endline "\n=== 4. A malicious class is rejected and replaced ===";
  let evil =
    B.class_ "Evil"
      [
        B.meth
          ~flags:[ CF.Public; CF.Static ]
          "main" "()V"
          [ B.Push_str "i am an int, trust me"; B.Ireturn ];
      ]
  in
  let engine = Simnet.Engine.create () in
  let oracle = Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ()) in
  let proxy =
    Proxy.create engine
      ~origin:(fun name ->
        if String.equal name "Evil" then
          Some (Bytecode.Encode.class_to_bytes evil)
        else None)
      ~origin_latency:(fun _ -> 0L)
      ~filters:[ Verifier.Static_verifier.filter ~oracle () ]
      ()
  in
  let client = Dvm.Client.create_dvm ~provider:(Proxy.provider proxy) () in
  match Dvm.Client.run_main client "Evil" with
  | Ok () -> print_endline "!!! evil code ran"
  | Error e ->
    Printf.printf
      "client saw the error through ordinary exception handling:\n  %s\n"
      (Jvm.Interp.describe_throwable e)
