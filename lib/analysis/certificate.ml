(* Elision certificates: the machine-checkable evidence a rewriting
   service emits for every check it *didn't* insert. The optimizer
   that elides and hoists checks is an attack surface — a soundness
   hole there ships applets with missing guards — so instead of
   trusting it, each elided or hoisted site carries the dataflow fact
   that justifies the elision and the live check sites that establish
   it, in coordinates of the *rewritten* code. A separate
   translation-validation pass ({!Certify}) re-derives the facts from
   scratch and rejects the class when any certificate fails to
   re-prove.

   Facts mirror the analysis domains: available-check (the security
   rewriter's justification), nullness and int-range (the JIT's guard
   elisions, the substrate a tiered compiler can later consume). *)

type fact =
  | Available_check of string
      (* the named permission has been checked on every path reaching
         the site, with no intervening invalidation point *)
  | Nonnull_stack of int
      (* the stack value [depth] slots below the top is provably
         non-null at the site *)
  | Int_range of { slot : int; lo : int; hi : int }
      (* local [slot] is an int within [lo, hi] at the site *)

type kind =
  | Elided of { support : int list }
      (* the live check instructions (invoke sites) whose facts make
         the elided check redundant *)
  | Hoisted of { check_site : int; header : int }
      (* the preheader check instruction standing in for the elided
         in-loop check, and the first instruction of the loop header
         it guards *)

type entry = { ce_site : int; ce_fact : fact; ce_kind : kind }

type method_cert = {
  mc_name : string;
  mc_desc : string;
  mc_entries : entry list;
}

type class_cert = { cc_name : string; cc_methods : method_cert list }

(* --- Store: how certificates travel from the rewriter to the
   post-rewrite gate. Keyed by class name; a re-rewrite of the same
   class replaces its certificate, and rewrites that elide nothing
   clear any stale entry. --- *)

type store = (string, class_cert) Hashtbl.t

let create_store () : store = Hashtbl.create 64

let record (store : store) (cc : class_cert) =
  if List.for_all (fun mc -> mc.mc_entries = []) cc.cc_methods then
    Hashtbl.remove store cc.cc_name
  else Hashtbl.replace store cc.cc_name cc

let find (store : store) name = Hashtbl.find_opt store name

let entries_for (cc : class_cert option) ~meth ~desc =
  match cc with
  | None -> []
  | Some cc ->
    List.concat_map
      (fun mc ->
        if String.equal mc.mc_name meth && String.equal mc.mc_desc desc then
          mc.mc_entries
        else [])
      cc.cc_methods

let entry_count (cc : class_cert) =
  List.fold_left (fun acc mc -> acc + List.length mc.mc_entries) 0 cc.cc_methods

(* --- Rendering, for dvmctl and the audit trail. --- *)

let fact_to_string = function
  | Available_check p -> Printf.sprintf "available-check %S" p
  | Nonnull_stack d -> Printf.sprintf "nonnull stack[-%d]" d
  | Int_range { slot; lo; hi } ->
    Printf.sprintf "local %d in [%d, %d]" slot lo hi

let kind_to_string = function
  | Elided { support } ->
    Printf.sprintf "elided (support: %s)"
      (String.concat ", " (List.map (Printf.sprintf "@%d") support))
  | Hoisted { check_site; header } ->
    Printf.sprintf "hoisted (check @%d, header @%d)" check_site header

let entry_to_string e =
  Printf.sprintf "site @%d: %s, %s" e.ce_site
    (fact_to_string e.ce_fact)
    (kind_to_string e.ce_kind)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fact_json = function
  | Available_check p ->
    Printf.sprintf {|{"kind":"available_check","permission":"%s"}|}
      (json_escape p)
  | Nonnull_stack d -> Printf.sprintf {|{"kind":"nonnull_stack","depth":%d}|} d
  | Int_range { slot; lo; hi } ->
    Printf.sprintf {|{"kind":"int_range","slot":%d,"lo":%d,"hi":%d}|} slot lo hi

let kind_json = function
  | Elided { support } ->
    Printf.sprintf {|{"kind":"elided","support":[%s]}|}
      (String.concat "," (List.map string_of_int support))
  | Hoisted { check_site; header } ->
    Printf.sprintf {|{"kind":"hoisted","check_site":%d,"header":%d}|}
      check_site header

let entry_json e =
  Printf.sprintf {|{"site":%d,"fact":%s,"by":%s}|} e.ce_site
    (fact_json e.ce_fact) (kind_json e.ce_kind)

let to_json (cc : class_cert) =
  Printf.sprintf {|{"class":"%s","methods":[%s]}|} (json_escape cc.cc_name)
    (String.concat ","
       (List.map
          (fun mc ->
            Printf.sprintf {|{"method":"%s","desc":"%s","entries":[%s]}|}
              (json_escape mc.mc_name) (json_escape mc.mc_desc)
              (String.concat "," (List.map entry_json mc.mc_entries)))
          cc.cc_methods))
