(** Elision certificates: machine-checkable evidence for every check a
    rewriting service elided or hoisted, in coordinates of the
    {e rewritten} code. {!Certify} re-derives each fact independently
    and rejects classes whose certificates fail to re-prove. *)

type fact =
  | Available_check of string
      (** the named permission has been checked on every path reaching
          the site, with no intervening invalidation point *)
  | Nonnull_stack of int
      (** the stack value [depth] slots below the top is provably
          non-null at the site *)
  | Int_range of { slot : int; lo : int; hi : int }
      (** local [slot] is an int within [lo, hi] at the site *)

type kind =
  | Elided of { support : int list }
      (** live check instructions whose facts make the elided check
          redundant *)
  | Hoisted of { check_site : int; header : int }
      (** the preheader check standing in for the elided in-loop
          check, and the first instruction of the loop header *)

type entry = { ce_site : int; ce_fact : fact; ce_kind : kind }

type method_cert = {
  mc_name : string;
  mc_desc : string;
  mc_entries : entry list;
}

type class_cert = { cc_name : string; cc_methods : method_cert list }

(** {1 Store} — how certificates travel from the rewriter to the
    post-rewrite gate. Keyed by class name. *)

type store

val create_store : unit -> store

val record : store -> class_cert -> unit
(** Replaces any previous certificate for the class; recording a
    certificate with no entries clears the slot. *)

val find : store -> string -> class_cert option
val entries_for : class_cert option -> meth:string -> desc:string -> entry list
val entry_count : class_cert -> int

(** {1 Rendering} *)

val fact_to_string : fact -> string
val entry_to_string : entry -> string
val to_json : class_cert -> string
