(* Translation validation for the check-rewriting service: re-prove,
   from nothing but the *rewritten* bytecode and the emitted
   certificates, that every protected resource-use instruction is
   still guarded. The rewriter's optimizer (elision + hoisting) is
   deliberately not trusted — review has already caught soundness
   holes in it — so this pass rebuilds a fresh CFG, dominator tree and
   solver run of its own and rejects the class when:

   - a protected instruction's permission is not *available* (checked
     on every path, no intervening invalidation point) under a
     from-scratch must-analysis whose only generators are the live
     check invocations actually present in the code;
   - a protected instruction with no adjacent live check has no
     certificate (an unbacked elision — exactly what a buggy or
     hostile optimizer would produce);
   - a certificate's claims fail to re-prove: elision support that is
     not a live check of the right permission, a hoist whose loop
     structure, kill-freedom, first-trip guard or anticipability no
     longer hold over the rewritten code, a nullness or int-range fact
     the fresh solver cannot re-derive;
   - a resource-aware check (whose verdict depends on the runtime
     resource string) is not the literal adjacent guard block with no
     branch into its middle.

   The pass is parameterized over an {!env} of purely local
   recognizers (what is a protected site, what is a check invocation)
   so the analysis layer stays policy-agnostic; all global reasoning —
   dataflow, dominance, loops — lives here. *)

module CF = Bytecode.Classfile
module I = Bytecode.Instr

type env = {
  protected_sites :
    Bytecode.Cp.t -> CF.code -> (int * string * bool) list;
      (* resource-use instructions the policy covers:
         (index, permission, resource_aware) *)
  check_at : Bytecode.Cp.t -> CF.code -> int -> string option;
      (* [Some perm] iff the instruction at the index is a plain check
         invocation of [perm] whose 2-instruction block ends there *)
  resource_check_at : Bytecode.Cp.t -> CF.code -> int -> string option;
      (* [Some perm] iff the instruction at the index is a
         resource-aware check invocation whose 3-instruction block
         ends there *)
  kill : I.t -> bool;
      (* invalidation points: availability must not survive these *)
}

type stats = {
  mutable cs_methods : int;  (* methods with code examined *)
  mutable cs_sites : int;  (* protected sites validated *)
  mutable cs_live : int;  (* sites guarded by an adjacent live check *)
  mutable cs_certified : int;  (* sites accepted via a certificate *)
  mutable cs_hoists : int;  (* hoist certificates re-proved *)
}

let fresh_stats () =
  { cs_methods = 0; cs_sites = 0; cs_live = 0; cs_certified = 0; cs_hoists = 0 }

type reason = { r_meth : string; r_site : int; r_what : string }

let reason_to_string r =
  Printf.sprintf "%s @%d: %s" r.r_meth r.r_site r.r_what

(* Instructions a hoisted check may be moved across: cannot throw,
   write shared state, allocate or perform I/O. Kept deliberately
   independent of the rewriter's copy — a bug there must not excuse
   the same bug here. *)
let transparent = function
  | I.Nop | I.Iconst _ | I.Ldc_str _ | I.Aconst_null | I.Iload _ | I.Istore _
  | I.Aload _ | I.Astore _ | I.Iinc _ | I.Iadd | I.Isub | I.Imul | I.Ineg
  | I.Ishl | I.Ishr | I.Iand | I.Ior | I.Ixor | I.Dup | I.Dup_x1 | I.Pop
  | I.Swap | I.Goto _ | I.If_icmp _ | I.If_z _ | I.If_acmp _ | I.If_null _
  | I.Instanceof _ ->
    true
  | _ -> false

(* Every intra-loop path from [from_idx] must reach [site] before any
   non-transparent instruction, any loop exit, or any return to the
   header. [guard], when set, is a conditional whose non-fall-through
   edge is statically untaken on the first trip and is discounted.
   [is_check] marks live permission-check invocations: a hoisted check
   commutes with another check (neither writes state; both either pass
   silently or throw a denial before anything visible happens), so
   crossing one does not make the hoist observable. *)
let anticipable (cfg : Cfg.t) ~(in_loop : int -> bool) ~(is_check : int -> bool)
    ~from_idx ~guard ~site =
  let code = cfg.Cfg.code in
  let n = Array.length code.CF.instrs in
  let visiting = Hashtbl.create 16 in
  let rec walk idx =
    if idx = site then true
    else if idx < 0 || idx >= n then false
    else if not (in_loop cfg.Cfg.block_of.(idx)) then false
    else if idx = from_idx && Hashtbl.length visiting > 0 then false
    else if Hashtbl.mem visiting idx then false
    else begin
      Hashtbl.replace visiting idx ();
      let ins = code.CF.instrs.(idx) in
      let ok =
        if not (transparent ins || is_check idx) then false
        else
          let succs = I.successors idx ins in
          let succs =
            if guard = Some idx then List.filter (fun s -> s = idx + 1) succs
            else succs
          in
          succs <> [] && List.for_all walk succs
      in
      Hashtbl.remove visiting idx;
      ok
    end
  in
  walk from_idx

(* Evaluate the builder's counted-loop first-trip guard over the
   rewritten code: the header opens `iload c; ifXX exit` and the
   preheader — skipping any trailing hoisted check pairs — ends
   `iconst n; istore c`. Returns [`Zero_trip] when the exit is
   statically taken on the first trip (a hoist over such a loop runs a
   check the original program never ran), [`Guard g] when provably
   untaken, [`No_guard] when the idiom is absent. *)
let first_trip_guard env pool (code : CF.code) ~header_first ~block_first =
  let instrs = code.CF.instrs in
  let n = Array.length instrs in
  if header_first + 1 >= n then `No_guard
  else
    match (instrs.(header_first), instrs.(header_first + 1)) with
    | I.Iload c, I.If_z (cmp, _) ->
      (* Walk back over the hoisted check pairs sitting between the
         preheader's tail and the loop header. *)
      let j = ref (header_first - 1) in
      while !j >= block_first + 1 && env.check_at pool code !j <> None do
        j := !j - 2
      done;
      if !j < 1 then `No_guard
      else (
        match (instrs.(!j - 1), instrs.(!j)) with
        | I.Iconst niv, I.Istore c' when c = c' ->
          let niv = Int32.to_int niv in
          let taken =
            match cmp with
            | I.Eq -> niv = 0
            | I.Ne -> niv <> 0
            | I.Lt -> niv < 0
            | I.Ge -> niv >= 0
            | I.Gt -> niv > 0
            | I.Le -> niv <= 0
          in
          if taken then `Zero_trip else `Guard (header_first + 1)
        | _ -> `No_guard)
    | _ -> `No_guard

let param_slots_of (m : CF.meth) =
  match Bytecode.Descriptor.method_sig_of_string m.CF.m_desc with
  | sg -> Bytecode.Descriptor.param_slots sg
  | exception Bytecode.Descriptor.Bad_descriptor _ -> 0

(* --- Per-method validation. --- *)

let certify_method env pool (m : CF.meth) (code : CF.code)
    (entries : Certificate.entry list) (stats : stats) (push : reason -> unit)
    =
  let meth_label = m.CF.m_name ^ m.CF.m_desc in
  let fail site what = push { r_meth = meth_label; r_site = site; r_what = what } in
  let instrs = code.CF.instrs in
  let n = Array.length instrs in
  stats.cs_methods <- stats.cs_methods + 1;
  match Cfg.of_code code with
  | exception Cfg.Malformed msg -> fail 0 ("malformed CFG: " ^ msg)
  | cfg ->
    let sites = env.protected_sites pool code in
    (* Live plain checks actually present in the rewritten code — the
       only generators the availability re-derivation believes in. *)
    let check_perm = Array.init n (fun i -> env.check_at pool code i) in
    let gen i = match check_perm.(i) with Some p -> [ p ] | None -> [] in
    let avail =
      lazy (Checks.analyze ~kill:env.kill cfg ~gen)
    in
    let dom = lazy (Dom.compute cfg) in
    let loops = lazy (Dom.loops (Lazy.force dom)) in
    let is_static = CF.has_flag m.CF.m_flags CF.Static in
    let param_slots = param_slots_of m in
    let nullness =
      lazy
        (Nullness.analyze pool ~max_locals:code.CF.max_locals ~param_slots
           ~is_static cfg)
    in
    let ranges =
      lazy
        (Intrange.analyze pool ~max_locals:code.CF.max_locals ~param_slots
           ~is_static cfg)
    in
    (* Branch (and handler) targets: nothing may jump into the middle
       of a resource guard block. *)
    let targeted = Array.make (max n 1) false in
    Array.iteri
      (fun _ ins ->
        List.iter
          (fun t -> if t >= 0 && t < n then targeted.(t) <- true)
          (I.targets ins))
      instrs;
    List.iter
      (fun h -> if h.CF.h_target < n then targeted.(h.CF.h_target) <- true)
      code.CF.handlers;
    let site_tbl = Hashtbl.create 16 in
    List.iter
      (fun (idx, perm, res) -> Hashtbl.replace site_tbl idx (perm, res))
      sites;
    let kill_free body =
      Hashtbl.fold
        (fun b () acc ->
          acc
          &&
          let blk = Cfg.block cfg b in
          let ok = ref true in
          for i = blk.Cfg.first to blk.Cfg.last do
            if env.kill instrs.(i) then ok := false
          done;
          !ok)
        body true
    in
    let handler_free body =
      Hashtbl.fold
        (fun b () acc ->
          acc
          &&
          let blk = Cfg.block cfg b in
          List.for_all
            (fun h ->
              blk.Cfg.last < h.CF.h_start || blk.Cfg.first >= h.CF.h_end)
            code.CF.handlers)
        body true
    in
    (* A hoist certificate must re-prove the whole hoisting argument
       over the rewritten code: real check in the unique fall-through
       preheader, site on every iteration, kill- and handler-free
       body, and the first-trip guard (or anticipability) showing the
       moved check is not observable. *)
    let validate_hoist e perm ~check_site ~header =
      let site = e.Certificate.ce_site in
      if check_site < 0 || check_site >= n then (
        fail site "hoist check site out of range";
        false)
      else if check_perm.(check_site) <> Some perm then (
        fail site "hoist check site is not a live check of the permission";
        false)
      else if header < 0 || header >= n then (
        fail site "hoist header out of range";
        false)
      else
        let hb = cfg.Cfg.block_of.(header) in
        let header_block = Cfg.block cfg hb in
        if header_block.Cfg.first <> header then (
          fail site "certified header is not a block leader";
          false)
        else
          match
            List.find_opt
              (fun l -> l.Dom.header = hb)
              (Lazy.force loops)
          with
          | None ->
            fail site "no natural loop at the certified header";
            false
          | Some l ->
            let sb = cfg.Cfg.block_of.(site) in
            let d = Lazy.force dom in
            if not (Hashtbl.mem l.Dom.body sb) then (
              fail site "certified site is outside the hoisted loop";
              false)
            else if
              not
                (List.for_all
                   (fun latch -> Dom.dominates d sb latch)
                   l.Dom.latches)
            then (
              fail site "site does not run on every loop iteration";
              false)
            else if not (kill_free l.Dom.body) then (
              fail site "hoisted loop body contains an invalidation point";
              false)
            else if not (handler_free l.Dom.body) then (
              fail site "hoisted loop body is covered by a handler";
              false)
            else
              let outside_preds, ok_shape =
                List.fold_left
                  (fun (outs, ok) (pb, kind) ->
                    if kind = Cfg.Exn then (outs, false)
                    else if Hashtbl.mem l.Dom.body pb then (outs, ok)
                    else ((pb, kind) :: outs, ok))
                  ([], true) header_block.Cfg.preds
              in
              if not ok_shape then (
                fail site "loop header has an exception-edge predecessor";
                false)
              else (
                match outside_preds with
                | [ (pb, Cfg.Fall) ] when cfg.Cfg.block_of.(check_site) = pb ->
                  let pre = Cfg.block cfg pb in
                  let in_loop b = Hashtbl.mem l.Dom.body b in
                  let is_check i = check_perm.(i) <> None in
                  let antic guard =
                    anticipable cfg ~in_loop ~is_check ~from_idx:header ~guard
                      ~site
                  in
                  (* Redirected check insertions at the original header
                     land before it in the rewritten code; skip those
                     pairs so the counted-loop guard idiom is found
                     where the builder put it. *)
                  let hf = ref header in
                  while !hf + 1 < n && check_perm.(!hf + 1) <> None do
                    hf := !hf + 2
                  done;
                  let ok =
                    match
                      first_trip_guard env pool code ~header_first:!hf
                        ~block_first:pre.Cfg.first
                    with
                    | `Zero_trip ->
                      fail site "hoisted check guards a zero-trip loop";
                      false
                    | `Guard g ->
                      antic (Some g)
                      ||
                      (fail site "hoisted check is not anticipable";
                       false)
                    | `No_guard ->
                      antic None
                      ||
                      (fail site
                         "hoisted check is not anticipable and the loop has \
                          no first-trip guard";
                       false)
                  in
                  if ok then stats.cs_hoists <- stats.cs_hoists + 1;
                  ok
                | _ ->
                  fail site
                    "hoist check does not sit in the loop's unique \
                     fall-through preheader";
                  false)
    in
    (* Validate the certificate entries, recording which protected
       sites each validated available-check entry covers. *)
    let covered = Hashtbl.create 8 in
    List.iter
      (fun (e : Certificate.entry) ->
        let site = e.Certificate.ce_site in
        if site < 0 || site >= n then fail site "certificate site out of range"
        else
          match e.Certificate.ce_fact with
          | Certificate.Available_check perm -> (
            match Hashtbl.find_opt site_tbl site with
            | None -> fail site "certificate names a non-protected site"
            | Some (_, true) ->
              fail site "certificate for a resource-aware site"
            | Some (sperm, false) when not (String.equal sperm perm) ->
              fail site "certificate fact names the wrong permission"
            | Some _ ->
              let kind_ok =
                match e.Certificate.ce_kind with
                | Certificate.Elided { support } ->
                  support <> []
                  && List.for_all
                       (fun s ->
                         s >= 0 && s < n && check_perm.(s) = Some perm)
                       support
                  ||
                  (fail site "elision support is not a live check of the \
                              permission";
                   false)
                | Certificate.Hoisted { check_site; header } ->
                  validate_hoist e perm ~check_site ~header
              in
              (* The certificate's audit trail holds; the fact itself
                 is re-proved with the shared availability run below,
                 as part of the per-site judgment. *)
              if kind_ok then Hashtbl.replace covered site ())
          | Certificate.Nonnull_stack depth -> (
            match (Lazy.force nullness).Nullness.before.(site) with
            | Some st when Nullness.stack_nonnull st ~depth -> ()
            | Some _ -> fail site "nullness fact does not re-derive"
            | None -> fail site "nullness fact at unreachable site")
          | Certificate.Int_range { slot; lo; hi } -> (
            match (Lazy.force ranges).Intrange.before.(site) with
            | Some st when slot < Array.length st.Intrange.locals -> (
              let iv = st.Intrange.locals.(slot).Intrange.iv in
              match (iv.Intrange.lo, iv.Intrange.hi) with
              | Some l, Some h when l >= lo && h <= hi -> ()
              | _ -> fail site "int-range fact does not re-derive")
            | Some _ -> fail site "int-range fact names a bad slot"
            | None -> fail site "int-range fact at unreachable site"))
      entries;
    (* The per-site judgment: every protected instruction must be
       guarded in the rewritten code, independently of anything the
       rewriter believed. *)
    List.iter
      (fun (site, perm, resource_aware) ->
        stats.cs_sites <- stats.cs_sites + 1;
        if resource_aware then (
          match env.resource_check_at pool code (site - 1) with
          | Some p when String.equal p perm ->
            (* Block spans [site-3 .. site-1]; a branch may enter only
               at its head, so the dup'd resource string is the one
               the protected call consumes. *)
            if targeted.(site - 2) || targeted.(site - 1) || targeted.(site)
            then fail site "branch into the middle of a resource guard"
            else stats.cs_live <- stats.cs_live + 1
          | Some _ ->
            fail site "resource guard names the wrong permission"
          | None ->
            fail site "resource-use instruction without its adjacent guard")
        else if not (Checks.available (Lazy.force avail) ~at:site ~fact:perm)
        then
          fail site
            (Printf.sprintf
               "permission %S not available at the resource use" perm)
        else if site >= 1 && check_perm.(site - 1) = Some perm then
          stats.cs_live <- stats.cs_live + 1
        else if Hashtbl.mem covered site then
          stats.cs_certified <- stats.cs_certified + 1
        else fail site "elided check without certificate")
      sites

(* --- Whole-class validation. --- *)

let certify_class env ?cert (cf : CF.t) :
    (stats, reason list) result =
  let reasons = ref [] in
  let push r = reasons := r :: !reasons in
  let stats = fresh_stats () in
  let pool = cf.CF.pool in
  (* A certificate naming a method the class does not have is stale or
     forged. *)
  (match cert with
  | None -> ()
  | Some cc ->
    List.iter
      (fun (mc : Certificate.method_cert) ->
        match CF.find_method cf mc.Certificate.mc_name mc.Certificate.mc_desc with
        | Some { CF.m_code = Some _; _ } -> ()
        | Some { CF.m_code = None; _ } | None ->
          if mc.Certificate.mc_entries <> [] then
            push
              {
                r_meth = mc.Certificate.mc_name ^ mc.Certificate.mc_desc;
                r_site = 0;
                r_what = "certificate for a method without code";
              })
      cc.Certificate.cc_methods);
  List.iter
    (fun (m : CF.meth) ->
      match m.CF.m_code with
      | None -> ()
      | Some code ->
        let entries =
          Certificate.entries_for cert ~meth:m.CF.m_name ~desc:m.CF.m_desc
        in
        certify_method env pool m code entries stats push)
    cf.CF.methods;
  if !reasons = [] then Ok stats else Error (List.rev !reasons)
