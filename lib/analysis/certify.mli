(** Translation validation for check-rewriting: re-prove, from the
    {e rewritten} bytecode and the emitted {!Certificate}s alone, that
    every protected resource-use instruction is still guarded. Builds
    its own CFG, dominator tree and solver runs — no rewriter internal
    state is trusted — and rejects the class when a protected site is
    neither guarded by a live adjacent check (with the permission
    proved available on every path) nor covered by a certificate whose
    facts re-derive. *)

type env = {
  protected_sites :
    Bytecode.Cp.t -> Bytecode.Classfile.code -> (int * string * bool) list;
      (** resource-use instructions the policy covers:
          [(index, permission, resource_aware)] *)
  check_at : Bytecode.Cp.t -> Bytecode.Classfile.code -> int -> string option;
      (** [Some perm] iff the instruction at the index is a plain check
          invocation of [perm] (end of its 2-instruction block) *)
  resource_check_at :
    Bytecode.Cp.t -> Bytecode.Classfile.code -> int -> string option;
      (** [Some perm] iff the instruction at the index is a
          resource-aware check invocation (end of its 3-instruction
          block) *)
  kill : Bytecode.Instr.t -> bool;
      (** invalidation points: availability must not survive these *)
}

type stats = {
  mutable cs_methods : int;  (** methods with code examined *)
  mutable cs_sites : int;  (** protected sites validated *)
  mutable cs_live : int;  (** sites guarded by an adjacent live check *)
  mutable cs_certified : int;  (** sites accepted via a certificate *)
  mutable cs_hoists : int;  (** hoist certificates re-proved *)
}

type reason = { r_meth : string; r_site : int; r_what : string }

val reason_to_string : reason -> string

val certify_class :
  env ->
  ?cert:Certificate.class_cert ->
  Bytecode.Classfile.t ->
  (stats, reason list) result
(** Validate every method body of the class against its certificate
    (if any). [Error] carries one reason per failed obligation. *)
