(* Basic-block control-flow graph over a method's instruction array.

   Blocks are maximal straight-line runs; edges carry a kind so
   clients can distinguish fall-through, explicit branches and
   exception dispatch. Exception edges are block-granular: every block
   that intersects a handler's protected range gets an edge to the
   handler's target block, which over-approximates the instruction-
   level dispatch and is therefore safe for both may- and
   must-analyses (must-analyses see *more* merge paths, never fewer).

   The same graph backs the dominator computation, the fixed-point
   solver, dead-code reachability (`Rewrite.Patch.recompute`), and the
   `dvmctl analyze` report. *)

module I = Bytecode.Instr
module CF = Bytecode.Classfile

exception Malformed of string

type edge = Fall | Branch | Exn

type block = {
  id : int;
  first : int;
  last : int; (* inclusive *)
  mutable succs : (int * edge) list;
  mutable preds : (int * edge) list;
}

type t = {
  code : CF.code;
  blocks : block array;
  block_of : int array;
  reachable : bool array;
  rpo : int array;
}

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let check_targets (code : CF.code) =
  let n = Array.length code.CF.instrs in
  Array.iteri
    (fun idx ins ->
      List.iter
        (fun t ->
          if t < 0 || t >= n then
            malformed "branch target @%d out of range at instruction %d" t idx)
        (I.targets ins);
      if (not (I.is_terminator ins)) && idx = n - 1 then
        malformed "control falls off the end of the code array")
    code.CF.instrs;
  List.iter
    (fun h ->
      if
        h.CF.h_start < 0 || h.CF.h_end > n
        || h.CF.h_start >= h.CF.h_end
        || h.CF.h_target < 0 || h.CF.h_target >= n
      then malformed "handler range [%d,%d)->%d invalid" h.CF.h_start h.CF.h_end h.CF.h_target)
    code.CF.handlers

let of_code (code : CF.code) : t =
  let n = Array.length code.CF.instrs in
  if n = 0 then malformed "empty code array";
  check_targets code;
  (* Leaders: entry, branch targets, fall-throughs of branching
     instructions, and handler boundaries (so exception edges start and
     stop on block boundaries). *)
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun idx ins ->
      let ts = I.targets ins in
      List.iter (fun t -> leader.(t) <- true) ts;
      if (ts <> [] || I.is_terminator ins) && idx + 1 < n then
        leader.(idx + 1) <- true)
    code.CF.instrs;
  List.iter
    (fun h ->
      leader.(h.CF.h_start) <- true;
      if h.CF.h_end < n then leader.(h.CF.h_end) <- true;
      leader.(h.CF.h_target) <- true)
    code.CF.handlers;
  let nblocks = Array.fold_left (fun a l -> if l then a + 1 else a) 0 leader in
  let blocks =
    Array.make nblocks { id = 0; first = 0; last = 0; succs = []; preds = [] }
  in
  let block_of = Array.make n 0 in
  let bid = ref (-1) in
  for idx = 0 to n - 1 do
    if leader.(idx) then begin
      incr bid;
      blocks.(!bid) <- { id = !bid; first = idx; last = idx; succs = []; preds = [] }
    end
    else blocks.(!bid) <- { (blocks.(!bid)) with last = idx };
    block_of.(idx) <- !bid
  done;
  let add_edge u v kind =
    if not (List.mem (v, kind) blocks.(u).succs) then begin
      blocks.(u).succs <- blocks.(u).succs @ [ (v, kind) ];
      blocks.(v).preds <- blocks.(v).preds @ [ (u, kind) ]
    end
  in
  Array.iter
    (fun b ->
      let ins = code.CF.instrs.(b.last) in
      List.iter (fun t -> add_edge b.id block_of.(t) Branch) (I.targets ins);
      if (not (I.is_terminator ins)) && b.last + 1 < n then
        add_edge b.id block_of.(b.last + 1) Fall)
    blocks;
  List.iter
    (fun h ->
      let target = block_of.(h.CF.h_target) in
      Array.iter
        (fun b ->
          if b.first < h.CF.h_end && b.last >= h.CF.h_start then
            add_edge b.id target Exn)
        blocks)
    code.CF.handlers;
  (* Reachability and reverse postorder from the entry block, over all
     edge kinds. *)
  let reachable = Array.make nblocks false in
  let post = ref [] in
  let rec dfs u =
    if not reachable.(u) then begin
      reachable.(u) <- true;
      List.iter (fun (v, _) -> dfs v) blocks.(u).succs;
      post := u :: !post
    end
  in
  dfs 0;
  { code; blocks; block_of; reachable; rpo = Array.of_list !post }

let block_count g = Array.length g.blocks
let block g i = g.blocks.(i)
let block_of_instr g idx = g.block_of.(idx)

let instr_reachable g =
  let r = Array.make (Array.length g.code.CF.instrs) false in
  Array.iter
    (fun b ->
      if g.reachable.(b.id) then
        for i = b.first to b.last do
          r.(i) <- true
        done)
    g.blocks;
  r

let edge_name = function Fall -> "fall" | Branch -> "branch" | Exn -> "exn"

let pp ppf g =
  Array.iter
    (fun b ->
      Format.fprintf ppf "@[<v2>block %d [%d..%d]%s:%a@]@\nsuccs: %s@\n"
        b.id b.first b.last
        (if g.reachable.(b.id) then "" else " (unreachable)")
        (fun ppf () ->
          for i = b.first to b.last do
            Format.fprintf ppf "@,%4d: %a" i I.pp g.code.CF.instrs.(i)
          done)
        ()
        (String.concat ", "
           (List.map
              (fun (v, k) -> Printf.sprintf "%d(%s)" v (edge_name k))
              b.succs)))
    g.blocks

let to_dot ?(name = "cfg") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  node [shape=box fontname=monospace];\n" name);
  Array.iter
    (fun b ->
      let label = Buffer.create 64 in
      Buffer.add_string label (Printf.sprintf "B%d [%d..%d]\\l" b.id b.first b.last);
      for i = b.first to b.last do
        Buffer.add_string label
          (Printf.sprintf "%d: %s\\l" i (I.to_string g.code.CF.instrs.(i)))
      done;
      Buffer.add_string buf
        (Printf.sprintf "  b%d [label=\"%s\"%s];\n" b.id (Buffer.contents label)
           (if g.reachable.(b.id) then "" else " style=dotted"));
      List.iter
        (fun (v, k) ->
          Buffer.add_string buf
            (Printf.sprintf "  b%d -> b%d%s;\n" b.id v
               (match k with
               | Fall -> ""
               | Branch -> " [color=blue]"
               | Exn -> " [color=red style=dashed]")))
        b.succs)
    g.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
