(** Basic-block control-flow graph over a method body.

    Exception edges are block-granular: every block intersecting a
    handler's protected range gets an [Exn] edge to the handler target,
    a safe over-approximation of instruction-level dispatch. *)

exception Malformed of string

type edge = Fall | Branch | Exn

type block = {
  id : int;
  first : int;  (** first instruction index *)
  last : int;  (** last instruction index, inclusive *)
  mutable succs : (int * edge) list;
  mutable preds : (int * edge) list;
}

type t = {
  code : Bytecode.Classfile.code;
  blocks : block array;
  block_of : int array;  (** instruction index → block id *)
  reachable : bool array;  (** per block, from the entry *)
  rpo : int array;  (** reachable block ids in reverse postorder *)
}

val of_code : Bytecode.Classfile.code -> t
(** @raise Malformed on out-of-range branch targets, fall-through off
    the end of the code array, or invalid handler ranges. *)

val block_count : t -> int
val block : t -> int -> block
val block_of_instr : t -> int -> int

val instr_reachable : t -> bool array
(** Per-instruction reachability from the method entry. *)

val pp : Format.formatter -> t -> unit
val to_dot : ?name:string -> t -> string
