(* Available-facts must-analysis: which named facts (security checks,
   in practice) have executed on *every* path reaching each
   instruction, with no intervening invalidation point?

   The lattice is sets of fact names under intersection; "not yet
   reached" is the top element (the solver's [None]), so loops
   converge to the facts available around the back edge as well.

   The security rewriter instantiates this with one fact per
   permission: a site generates its permission, and monitor
   entry/exit kills everything — those are the synchronization points
   at which a concurrent policy push becomes visible, so a check
   surviving across one could observe a stale decision (see DESIGN.md,
   "Static analysis at the proxy"). *)

module I = Bytecode.Instr
module SS = Set.Make (String)

module L = struct
  type t = SS.t

  let equal = SS.equal
  let join = SS.inter
end

module S = Solver.Make (L)

type result = { before : SS.t option array; iterations : int }

let default_kill = function
  | I.Monitorenter | I.Monitorexit -> true
  | _ -> false

let analyze ?(kill = default_kill) (cfg : Cfg.t) ~(gen : int -> string list) :
    result =
  let transfer ~at ~instr facts =
    let facts = if kill instr then SS.empty else facts in
    List.fold_left (fun acc f -> SS.add f acc) facts (gen at)
  in
  let r = S.solve cfg ~init:SS.empty ~transfer in
  { before = r.S.before; iterations = r.S.iterations }

let available (r : result) ~at ~fact =
  match r.before.(at) with None -> false | Some s -> SS.mem fact s
