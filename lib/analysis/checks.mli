(** Available-facts must-analysis (forward, intersection join).

    Instantiated by the security rewriter with one fact per checked
    permission; [kill] defaults to the monitor instructions — the
    invalidation points at which a concurrent policy update becomes
    visible. *)

module SS : Set.S with type elt = string

type result = {
  before : SS.t option array;
      (** facts available at each instruction's entry; [None] =
          unreachable *)
  iterations : int;
}

val default_kill : Bytecode.Instr.t -> bool

val analyze :
  ?kill:(Bytecode.Instr.t -> bool) ->
  Cfg.t ->
  gen:(int -> string list) ->
  result
(** [gen at] — the facts instruction [at] establishes (available
    immediately after it). *)

val available : result -> at:int -> fact:string -> bool
