(* Dominator tree over a CFG, computed with the Cooper–Harvey–Kennedy
   iterative algorithm on the reverse-postorder numbering. All edge
   kinds participate: a handler target is dominated only by what
   dominates every throwing block, which is exactly what check-elision
   soundness needs. *)

type t = {
  cfg : Cfg.t;
  idom : int array; (* block id -> immediate dominator; entry maps to itself; -1 = unreachable *)
}

let compute (cfg : Cfg.t) : t =
  let n = Cfg.block_count cfg in
  let rpo_num = Array.make n max_int in
  Array.iteri (fun i b -> rpo_num.(b) <- i) cfg.Cfg.rpo;
  let idom = Array.make n (-1) in
  let entry = 0 in
  idom.(entry) <- entry;
  let rec intersect u v =
    if u = v then u
    else if rpo_num.(u) > rpo_num.(v) then intersect idom.(u) v
    else intersect u idom.(v)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> entry then begin
          let preds =
            List.filter_map
              (fun (p, _) -> if idom.(p) >= 0 then Some p else None)
              (Cfg.block cfg b).Cfg.preds
          in
          match preds with
          | [] -> ()
          | first :: rest ->
            let d = List.fold_left intersect first rest in
            if idom.(b) <> d then begin
              idom.(b) <- d;
              changed := true
            end
        end)
      cfg.Cfg.rpo
  done;
  { cfg; idom }

let idom t b = if b = 0 then None else if t.idom.(b) < 0 then None else Some t.idom.(b)

(* Does block [a] dominate block [b]? Walks up the dominator tree from
   [b]; depth is bounded by the tree height. *)
let dominates t a b =
  if t.idom.(b) < 0 then false
  else
    let rec up v = if v = a then true else if v = 0 then a = 0 else up t.idom.(v) in
    up b

(* Back edges u→v (v dominates u), over non-exception edges: the
   arcs that close natural loops. *)
let back_edges t =
  let edges = ref [] in
  Array.iter
    (fun b ->
      if t.cfg.Cfg.reachable.(b.Cfg.id) then
        List.iter
          (fun (v, kind) ->
            if kind <> Cfg.Exn && dominates t v b.Cfg.id then
              edges := (b.Cfg.id, v) :: !edges)
          b.Cfg.succs)
    t.cfg.Cfg.blocks;
  List.rev !edges

(* The natural loop of back edge (latch, header): header plus every
   block that reaches latch without passing through header. *)
let natural_loop t (latch, header) =
  let in_loop = Hashtbl.create 16 in
  Hashtbl.replace in_loop header ();
  let rec pull u =
    if not (Hashtbl.mem in_loop u) then begin
      Hashtbl.replace in_loop u ();
      List.iter (fun (p, _) -> pull p) (Cfg.block t.cfg u).Cfg.preds
    end
  in
  pull latch;
  in_loop

type loop = {
  header : int;
  latches : int list;
  body : (int, unit) Hashtbl.t; (* block ids, header included *)
}

(* Natural loops grouped by header (merging bodies of shared-header
   back edges). *)
let loops t =
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let body = natural_loop t (latch, header) in
      match Hashtbl.find_opt by_header header with
      | None -> Hashtbl.replace by_header header { header; latches = [ latch ]; body }
      | Some l ->
        Hashtbl.iter (fun b () -> Hashtbl.replace l.body b ()) body;
        Hashtbl.replace by_header header { l with latches = latch :: l.latches })
    (back_edges t);
  Hashtbl.fold (fun _ l acc -> l :: acc) by_header []

(* Exit-edge sources: loop blocks with a successor outside the loop. *)
let exit_sources t l =
  Hashtbl.fold
    (fun b () acc ->
      if
        List.exists
          (fun (s, _) -> not (Hashtbl.mem l.body s))
          (Cfg.block t.cfg b).Cfg.succs
      then b :: acc
      else acc)
    l.body []
