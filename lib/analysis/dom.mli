(** Dominator tree and natural loops over a {!Cfg.t}. *)

type t

val compute : Cfg.t -> t

val idom : t -> int -> int option
(** Immediate dominator of a block; [None] for the entry and for
    unreachable blocks. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] — does block [a] dominate block [b]? Unreachable
    blocks are dominated by nothing. *)

val back_edges : t -> (int * int) list
(** [(latch, header)] pairs over non-exception edges. *)

val natural_loop : t -> int * int -> (int, unit) Hashtbl.t

type loop = {
  header : int;
  latches : int list;
  body : (int, unit) Hashtbl.t;  (** block ids, header included *)
}

val loops : t -> loop list
(** Natural loops grouped by header. *)

val exit_sources : t -> loop -> int list
(** Loop blocks with at least one successor outside the loop. *)
