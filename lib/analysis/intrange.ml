(* Integer constant/range analysis with array-length facts.

   Tracks an interval for every int value and, for array references,
   an interval for the array's length (seeded at `newarray` sites
   whose length operand is bounded). `jit/translate` uses the result
   to elide bounds guards: an `iaload` needs no guard when the index
   interval fits inside [0, min-possible-length).

   Intervals are over native ints but model the VM's 32-bit wrapping
   arithmetic: any operation whose exact result could leave the int32
   range degrades to top rather than asserting a wrong bound.
   Widening at retreating edges guarantees termination. *)

module I = Bytecode.Instr
module CF = Bytecode.Classfile
module CP = Bytecode.Cp
module D = Bytecode.Descriptor

type interval = { lo : int option; hi : int option }
(* [None] bounds are -inf / +inf. Invariant: lo <= hi when both set. *)

let top_iv = { lo = None; hi = None }
let const_iv n = { lo = Some n; hi = Some n }
let of_bounds lo hi = { lo = Some lo; hi = Some hi }

let i32_min = Int32.to_int Int32.min_int
let i32_max = Int32.to_int Int32.max_int

let fits n = n >= i32_min && n <= i32_max

(* Clamp a computed bound pair to top when it could have wrapped. *)
let make lo hi =
  match (lo, hi) with
  | Some l, Some h when fits l && fits h -> { lo; hi }
  | Some l, None when fits l -> { lo; hi = None }
  | None, Some h when fits h -> { lo = None; hi }
  | None, None -> top_iv
  | _ -> top_iv

let join_iv a b =
  let lo =
    match (a.lo, b.lo) with Some x, Some y -> Some (min x y) | _ -> None
  in
  let hi =
    match (a.hi, b.hi) with Some x, Some y -> Some (max x y) | _ -> None
  in
  { lo; hi }

let widen_iv old next =
  {
    lo =
      (match (old.lo, next.lo) with
      | Some o, Some n when n < o -> None
      | _, n -> if old.lo = None then None else n);
    hi =
      (match (old.hi, next.hi) with
      | Some o, Some n when n > o -> None
      | _, n -> if old.hi = None then None else n);
  }

let meet_iv a b =
  let lo =
    match (a.lo, b.lo) with
    | Some x, Some y -> Some (max x y)
    | Some x, None | None, Some x -> Some x
    | None, None -> None
  in
  let hi =
    match (a.hi, b.hi) with
    | Some x, Some y -> Some (min x y)
    | Some x, None | None, Some x -> Some x
    | None, None -> None
  in
  match (lo, hi) with
  | Some l, Some h when l > h -> a (* contradictory path: keep the old fact *)
  | _ -> { lo; hi }

let add_iv a b =
  make
    (match (a.lo, b.lo) with Some x, Some y -> Some (x + y) | _ -> None)
    (match (a.hi, b.hi) with Some x, Some y -> Some (x + y) | _ -> None)

let neg_iv a =
  make
    (match a.hi with Some h -> Some (-h) | None -> None)
    (match a.lo with Some l -> Some (-l) | None -> None)

let sub_iv a b = add_iv a (neg_iv b)

let mul_iv a b =
  match (a.lo, a.hi, b.lo, b.hi) with
  | Some al, Some ah, Some bl, Some bh ->
    let products = [ al * bl; al * bh; ah * bl; ah * bh ] in
    make
      (Some (List.fold_left min max_int products))
      (Some (List.fold_left max min_int products))
  | _ -> top_iv

(* x % c for a constant c > 0: result in (-c, c), and non-negative
   when the dividend is. *)
let rem_iv a b =
  match (b.lo, b.hi) with
  | Some c, Some c' when c = c' && c > 0 ->
    let nonneg = match a.lo with Some l when l >= 0 -> true | _ -> false in
    of_bounds (if nonneg then 0 else -(c - 1)) (c - 1)
  | _ -> top_iv

(* x & c for a constant c >= 0 bounds the result to [0, c]. *)
let and_iv a b =
  let nonneg_const v =
    match (v.lo, v.hi) with
    | Some c, Some c' when c = c' && c >= 0 -> Some c
    | _ -> None
  in
  match (nonneg_const a, nonneg_const b) with
  | Some c, _ | _, Some c -> of_bounds 0 c
  | None, None -> top_iv

type av = {
  iv : interval; (* value interval, when the value is an int *)
  alen : interval option; (* length interval, when the value is an array *)
  origin : int option;
}

let unknown = { iv = top_iv; alen = None; origin = None }
let int_av iv = { iv; alen = None; origin = None }

type state = { locals : av array; stack : av list option }

let join_av a b =
  {
    iv = join_iv a.iv b.iv;
    alen =
      (match (a.alen, b.alen) with
      | Some x, Some y -> Some (join_iv x y)
      | _ -> None);
    origin = (if a.origin = b.origin then a.origin else None);
  }

let widen_av old next =
  {
    iv = widen_iv old.iv next.iv;
    alen =
      (match (old.alen, next.alen) with
      | Some x, Some y -> Some (widen_iv x y)
      | _ -> None);
    origin = next.origin;
  }

module L = struct
  type t = state

  let equal_iv a b = a.lo = b.lo && a.hi = b.hi

  let equal_av a b =
    equal_iv a.iv b.iv && a.origin = b.origin
    &&
    match (a.alen, b.alen) with
    | None, None -> true
    | Some x, Some y -> equal_iv x y
    | _ -> false

  let equal a b =
    Array.length a.locals = Array.length b.locals
    && Array.for_all2 equal_av a.locals b.locals
    &&
    match (a.stack, b.stack) with
    | None, None -> true
    | Some s1, Some s2 ->
      List.length s1 = List.length s2 && List.for_all2 equal_av s1 s2
    | _ -> false

  let join a b =
    {
      locals = Array.map2 join_av a.locals b.locals;
      stack =
        (match (a.stack, b.stack) with
        | Some s1, Some s2 when List.length s1 = List.length s2 ->
          Some (List.map2 join_av s1 s2)
        | _ -> None);
    }
end

let widen (old : state) (next : state) : state =
  {
    locals = Array.map2 widen_av old.locals next.locals;
    stack =
      (match (old.stack, next.stack) with
      | Some s1, Some s2 when List.length s1 = List.length s2 ->
        Some (List.map2 widen_av s1 s2)
      | _ -> None);
  }

module S = Solver.Make (L)

type result = { before : state option array; iterations : int }

let pop = function
  | Some (x :: rest) -> (x, Some rest)
  | Some [] | None -> (unknown, None)

let popn n st =
  let rec go n st = if n = 0 then st else go (n - 1) (snd (pop st)) in
  go n st

let push x = function Some s -> Some (x :: s) | None -> None

(* A write to local [n] (store or iinc) makes every remaining stack
   slot that recorded [n] as its origin stale: the slot still holds the
   *old* value, so constraining local [n] through it at a branch would
   narrow the wrong value. Sever the link; the slot's interval stays. *)
let clear_origin n = function
  | None -> None
  | Some s ->
    Some
      (List.map
         (fun a -> if a.origin = Some n then { a with origin = None } else a)
         s)

let set_local locals n x =
  if n < Array.length locals then begin
    let locals = Array.copy locals in
    locals.(n) <- x;
    locals
  end
  else locals

let degrade st =
  { locals = Array.map (fun _ -> unknown) st.locals; stack = None }

let binop f a b = int_av (f a.iv b.iv)

let transfer pool ~at:_ ~instr (st : state) : state =
  let { locals; stack } = st in
  match instr with
  | I.Nop | I.Goto _ | I.Ret _ | I.Return -> st
  | I.Iconst n -> { st with stack = push (int_av (const_iv (Int32.to_int n))) stack }
  | I.Ldc_str _ | I.New _ | I.Aconst_null | I.Getstatic _ ->
    { st with stack = push unknown stack }
  | I.Iload n | I.Aload n ->
    let av =
      if n < Array.length locals then { locals.(n) with origin = Some n }
      else unknown
    in
    { st with stack = push av stack }
  | I.Istore n | I.Astore n ->
    let x, stack = pop stack in
    {
      locals = set_local locals n { x with origin = Some n };
      stack = clear_origin n stack;
    }
  | I.Iinc (n, d) ->
    if n < Array.length locals then
      let x = locals.(n) in
      {
        locals = set_local locals n { x with iv = add_iv x.iv (const_iv d) };
        stack = clear_origin n stack;
      }
    else st
  | I.Iadd | I.Isub | I.Imul | I.Irem | I.Iand | I.Idiv | I.Ishl | I.Ishr
  | I.Ior | I.Ixor ->
    let b, stack = pop stack in
    let a, stack = pop stack in
    let res =
      match instr with
      | I.Iadd -> binop add_iv a b
      | I.Isub -> binop sub_iv a b
      | I.Imul -> binop mul_iv a b
      | I.Irem -> binop rem_iv a b
      | I.Iand -> binop and_iv a b
      | I.Ishr -> (
        (* x >> c for constant c >= 0 keeps the sign and shrinks
           magnitude: a non-negative x stays within [0, x.hi]. *)
        match (a.iv.lo, b.iv.lo, b.iv.hi) with
        | Some l, Some c, Some c' when l >= 0 && c = c' && c >= 0 ->
          int_av (make (Some 0) a.iv.hi)
        | _ -> int_av top_iv)
      | _ -> int_av top_iv
    in
    { st with stack = push res stack }
  | I.Ineg ->
    let a, stack = pop stack in
    { st with stack = push (int_av (neg_iv a.iv)) stack }
  | I.Dup -> (
    match stack with
    | Some (x :: _) -> { st with stack = push x stack }
    | _ -> { st with stack = None })
  | I.Dup_x1 -> (
    match stack with
    | Some (a :: b :: rest) -> { st with stack = Some (a :: b :: a :: rest) }
    | _ -> { st with stack = None })
  | I.Pop -> { st with stack = snd (pop stack) }
  | I.Swap -> (
    match stack with
    | Some (a :: b :: rest) -> { st with stack = Some (b :: a :: rest) }
    | _ -> { st with stack = None })
  | I.If_icmp _ -> { st with stack = popn 2 stack }
  | I.If_z _ | I.Tableswitch _ -> { st with stack = popn 1 stack }
  | I.If_acmp _ -> { st with stack = popn 2 stack }
  | I.If_null _ -> { st with stack = popn 1 stack }
  | I.Jsr _ -> degrade st
  | I.Ireturn | I.Areturn | I.Athrow -> { st with stack = popn 1 stack }
  | I.Putstatic _ -> { st with stack = popn 1 stack }
  | I.Getfield _ -> { st with stack = push unknown (popn 1 stack) }
  | I.Putfield _ -> { st with stack = popn 2 stack }
  | I.Invokestatic k | I.Invokevirtual k | I.Invokespecial k
  | I.Invokeinterface k -> (
    let virt = match instr with I.Invokestatic _ -> false | _ -> true in
    match
      let mr = CP.get_methodref pool k in
      D.method_sig_of_string mr.CP.ref_desc
    with
    | sg ->
      let stack =
        popn (List.length sg.D.params + if virt then 1 else 0) stack
      in
      let stack =
        match sg.D.ret with None -> stack | Some _ -> push unknown stack
      in
      { st with stack }
    | exception (CP.Invalid_index _ | CP.Wrong_kind _ | D.Bad_descriptor _) ->
      degrade st)
  | I.Newarray | I.Anewarray _ ->
    let len, stack = pop stack in
    let len_iv = meet_iv len.iv (make (Some 0) None) in
    { st with stack = push { iv = top_iv; alen = Some len_iv; origin = None } stack }
  | I.Arraylength ->
    let arr, stack = pop stack in
    let iv =
      match arr.alen with Some l -> l | None -> make (Some 0) None
    in
    { st with stack = push (int_av iv) stack }
  | I.Iaload | I.Aaload -> { st with stack = push unknown (popn 2 stack) }
  | I.Iastore | I.Aastore -> { st with stack = popn 3 stack }
  | I.Checkcast _ -> st
  | I.Instanceof _ -> { st with stack = push (int_av (of_bounds 0 1)) (popn 1 stack) }
  | I.Monitorenter | I.Monitorexit -> { st with stack = popn 1 stack }

(* Edge refinement for integer comparisons: on the taken (or
   fall-through) edge of `if_icmp`/`ifXX`, narrow the origin locals of
   the compared values. *)
let constrain post av bound =
  match av.origin with
  | Some n when n < Array.length post.locals ->
    let x = post.locals.(n) in
    {
      post with
      locals = set_local post.locals n { x with iv = meet_iv x.iv bound };
    }
  | _ -> post

(* The constraint [v1 cmp v2] as interval bounds for each side. *)
let bounds_of_cmp cmp (iv1 : interval) (iv2 : interval) =
  let minus_one v = match v with Some x -> Some (x - 1) | None -> None in
  let plus_one v = match v with Some x -> Some (x + 1) | None -> None in
  match cmp with
  | I.Lt -> (make None (minus_one iv2.hi), make (plus_one iv1.lo) None)
  | I.Le -> (make None iv2.hi, make iv1.lo None)
  | I.Gt -> (make (plus_one iv2.lo) None, make None (minus_one iv1.hi))
  | I.Ge -> (make iv2.lo None, make None iv1.hi)
  | I.Eq -> (iv2, iv1)
  | I.Ne -> (top_iv, top_iv)

let negate_cmp = function
  | I.Eq -> I.Ne
  | I.Ne -> I.Eq
  | I.Lt -> I.Ge
  | I.Ge -> I.Lt
  | I.Gt -> I.Le
  | I.Le -> I.Gt

(* When the branch target *is* the fall-through (degenerate but
   decodable bytecode), both runtime outcomes reach the same successor,
   so neither the comparison nor its negation holds there — refine
   nothing. *)
let refine ~at ~instr ~target ~pre post =
  let apply cmp v1 v2 =
    let b1, b2 = bounds_of_cmp cmp v1.iv v2.iv in
    constrain (constrain post v1 b1) v2 b2
  in
  match instr with
  | I.If_icmp (cmp, t) when t <> at + 1 -> (
    let cmp = if target = t then cmp else negate_cmp cmp in
    match pre.stack with
    | Some (v2 :: v1 :: _) -> apply cmp v1 v2
    | _ -> post)
  | I.If_z (cmp, t) when t <> at + 1 -> (
    let cmp = if target = t then cmp else negate_cmp cmp in
    match pre.stack with
    | Some (v1 :: _) -> apply cmp v1 (int_av (const_iv 0))
    | _ -> post)
  | _ -> post

let exn_adjust st = { st with stack = Some [ unknown ] }

let analyze pool ~(max_locals : int) ~(param_slots : int) ~(is_static : bool)
    (cfg : Cfg.t) : result =
  ignore param_slots;
  ignore is_static;
  let locals = Array.init (max 1 max_locals) (fun _ -> unknown) in
  let init = { locals; stack = Some [] } in
  let r =
    S.solve cfg ~init ~transfer:(transfer pool) ~refine ~exn_adjust ~widen
  in
  { before = r.S.before; iterations = r.S.iterations }

let stack_at (st : state) ~depth =
  match st.stack with None -> None | Some s -> List.nth_opt s depth

(* Is [idx] (at stack depth [idx_depth]) provably within the bounds of
   the array at [arr_depth]? *)
let in_bounds (st : state) ~idx_depth ~arr_depth =
  match (stack_at st ~depth:idx_depth, stack_at st ~depth:arr_depth) with
  | Some idx, Some { alen = Some len; _ } -> (
    match (idx.iv.lo, idx.iv.hi, len.lo) with
    | Some lo, Some hi, Some min_len -> lo >= 0 && hi < min_len
    | _ -> false)
  | _ -> false

let pp_iv ppf iv =
  let b = function None -> "∞" | Some n -> string_of_int n in
  Format.fprintf ppf "[%s%s,%s]"
    (match iv.lo with None -> "-" | Some _ -> "")
    (b iv.lo) (b iv.hi)

let pp_state ppf st =
  Format.fprintf ppf "locals=[%s] stack=%s"
    (String.concat " "
       (Array.to_list
          (Array.map (fun a -> Format.asprintf "%a" pp_iv a.iv) st.locals)))
    (match st.stack with
    | None -> "?"
    | Some s ->
      "["
      ^ String.concat " "
          (List.map
             (fun a ->
               match a.alen with
               | Some l -> Format.asprintf "arr(len%a)" pp_iv l
               | None -> Format.asprintf "%a" pp_iv a.iv)
             s)
      ^ "]")
