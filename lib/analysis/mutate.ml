(* Mutation testing for the rewrite certifier: seeded corruptions of
   rewriter output — the class after rewriting, plus its elision
   certificate — that a sound gate must catch. Each operator models a
   concrete failure mode of the optimizer or a tampered certificate:

   - [Drop_check]: a live check invocation is overwritten with nops —
     an elision the rewriter "forgot" to justify;
   - [Swap_branch]: a conditional's sense is flipped — a first-trip
     guard now exits when the loop used to run, making a hoisted check
     observable (or a guarded region reachable unguarded);
   - [Widen_bound]: an integer constant feeding a guard or loop bound
     is perturbed — the zero-trip/guard arithmetic the certifier
     re-evaluates no longer matches;
   - [Retarget_entry]: a branch aimed at a check block is redirected
     past it, straight to the protected instruction — the classic
     bypass a redirect-aware patcher exists to prevent;
   - [Forge_support]: a certificate's elision support is rewritten to
     name instructions that are not checks;
   - [Move_site]: a certificate entry is re-aimed at a different
     index, detaching the evidence from the site it covers.

   The harness only *generates* mutants; deciding whether the verifier
   or certifier kills each one is the caller's business (the analysis
   layer has no policy or verifier access). Selection is driven by a
   splitmix64 stream so a pinned seed yields a reproducible mutant
   set. *)

module I = Bytecode.Instr
module CF = Bytecode.Classfile

type op =
  | Drop_check
  | Swap_branch
  | Widen_bound
  | Retarget_entry
  | Forge_support
  | Move_site

let op_to_string = function
  | Drop_check -> "drop-check"
  | Swap_branch -> "swap-branch"
  | Widen_bound -> "widen-bound"
  | Retarget_entry -> "retarget-entry"
  | Forge_support -> "forge-support"
  | Move_site -> "move-site"

type mutation = {
  m_op : op;
  m_meth : string;  (* name ^ descriptor *)
  m_index : int;  (* instruction index (or certificate site) mutated *)
  m_note : string;
}

let mutation_to_string m =
  Printf.sprintf "%s %s @%d (%s)" (op_to_string m.m_op) m.m_meth m.m_index
    m.m_note

type mutant = {
  mu_mutation : mutation;
  mu_class : CF.t;
  mu_cert : Certificate.class_cert option;
}

(* --- Deterministic stream (splitmix64, same construction as the
   simnet fault injector — reimplemented here because the analysis
   layer sits below simnet in the dependency order). --- *)

type rng = { mutable state : int64 }

let rng ~seed = { state = seed }

let next_u64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let range t ~max =
  if max <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next_u64 t) 1)
                       (Int64.of_int max))

(* --- Candidate enumeration. A candidate is a thunk producing the
   mutated class/certificate pair; enumeration is deterministic
   (source order) so seeded selection is reproducible. --- *)

let negate = function
  | I.Eq -> I.Ne
  | I.Ne -> I.Eq
  | I.Lt -> I.Ge
  | I.Ge -> I.Lt
  | I.Gt -> I.Le
  | I.Le -> I.Gt

(* Rebuild the class with method [mi]'s instruction at each (idx, ins)
   pair replaced. *)
let patch_class (cf : CF.t) ~mi (edits : (int * I.t) list) : CF.t =
  let methods =
    List.mapi
      (fun i (m : CF.meth) ->
        if i <> mi then m
        else
          match m.CF.m_code with
          | None -> m
          | Some code ->
            let instrs = Array.copy code.CF.instrs in
            List.iter (fun (idx, ins) -> instrs.(idx) <- ins) edits;
            { m with CF.m_code = Some { code with CF.instrs } })
      cf.CF.methods
  in
  { cf with CF.methods }

(* Rebuild the certificate with entry [ei] of the method named
   [label] replaced. *)
let patch_cert (cc : Certificate.class_cert) ~label ~ei
    (f : Certificate.entry -> Certificate.entry) : Certificate.class_cert =
  let methods =
    List.map
      (fun (mc : Certificate.method_cert) ->
        if not (String.equal (mc.Certificate.mc_name ^ mc.Certificate.mc_desc)
                  label)
        then mc
        else
          {
            mc with
            Certificate.mc_entries =
              List.mapi
                (fun i e -> if i = ei then f e else e)
                mc.Certificate.mc_entries;
          })
      cc.Certificate.cc_methods
  in
  { cc with Certificate.cc_methods = methods }

let candidates ~(env : Certify.env) (cf : CF.t)
    (cert : Certificate.class_cert option) :
    (mutation * (unit -> CF.t * Certificate.class_cert option)) list =
  let pool = cf.CF.pool in
  let out = ref [] in
  let add m thunk = out := (m, thunk) :: !out in
  List.iteri
    (fun mi (m : CF.meth) ->
      match m.CF.m_code with
      | None -> ()
      | Some code ->
        let label = m.CF.m_name ^ m.CF.m_desc in
        let instrs = code.CF.instrs in
        let n = Array.length instrs in
        let check_perm = Array.init n (fun i -> env.Certify.check_at pool code i) in
        Array.iteri
          (fun idx ins ->
            (* Drop_check: nop out the [Ldc_str; Invokestatic] pair. *)
            (match check_perm.(idx) with
            | Some perm ->
              add
                {
                  m_op = Drop_check;
                  m_meth = label;
                  m_index = idx;
                  m_note = Printf.sprintf "drop check of %S" perm;
                }
                (fun () ->
                  ( patch_class cf ~mi [ (idx - 1, I.Nop); (idx, I.Nop) ],
                    cert ))
            | None -> ());
            (* Retarget_entry: a branch aimed at a check block's
               [Ldc_str] leader is sent past the check. *)
            List.iter
              (fun t ->
                if t + 1 < n && check_perm.(t + 1) <> None then
                  add
                    {
                      m_op = Retarget_entry;
                      m_meth = label;
                      m_index = idx;
                      m_note =
                        Printf.sprintf "branch target %d -> %d (skips check)"
                          t (t + 2);
                    }
                    (fun () ->
                      ( patch_class cf ~mi
                          [
                            ( idx,
                              I.map_targets
                                (fun u -> if u = t then t + 2 else u)
                                ins );
                          ],
                        cert )))
              (I.targets ins))
          instrs;
        (* Guard-directed operators: the first-trip guard of each
           certified hoist — the exact machinery whose re-evaluation
           the certifier is trusted with. [Swap_branch] flips the
           guard's sense (the exit the rewriter proved untaken becomes
           taken: a hoisted check now runs before a loop that never
           does); [Widen_bound] rewrites the counter's initial
           constant toward the exit condition. *)
        (match cert with
        | None -> ()
        | Some cc ->
          List.iter
            (fun (e : Certificate.entry) ->
              match e.Certificate.ce_kind with
              | Certificate.Hoisted { header; _ } ->
                (* Skip any leading redirected check pairs, as the
                   certifier does, to land on the guard idiom. *)
                let hf = ref header in
                while !hf + 1 < n && check_perm.(!hf + 1) <> None do
                  hf := !hf + 2
                done;
                let hf = !hf in
                if hf >= 0 && hf + 1 < n then (
                  (match (instrs.(hf), instrs.(hf + 1)) with
                  | I.Iload _, I.If_z (cmp, t) ->
                    add
                      {
                        m_op = Swap_branch;
                        m_meth = label;
                        m_index = hf + 1;
                        m_note = "flip first-trip guard sense";
                      }
                      (fun () ->
                        ( patch_class cf ~mi
                            [ (hf + 1, I.If_z (negate cmp, t)) ],
                          cert ))
                  | _ -> ());
                  (* Walk back over trailing hoisted check pairs to the
                     counter's initializing constant. *)
                  let j = ref (hf - 1) in
                  while !j >= 1 && check_perm.(!j) <> None do
                    j := !j - 2
                  done;
                  if !j >= 1 then
                    match (instrs.(!j - 1), instrs.(!j)) with
                    | I.Iconst c, I.Istore _ ->
                      let c' = if Int32.equal c 0l then 1l else 0l in
                      add
                        {
                          m_op = Widen_bound;
                          m_meth = label;
                          m_index = !j - 1;
                          m_note =
                            Printf.sprintf "loop-counter init %ld -> %ld" c c';
                        }
                        (fun () ->
                          ( patch_class cf ~mi [ (!j - 1, I.Iconst c') ],
                            cert ))
                    | _ -> ())
              | Certificate.Elided _ -> ())
            (Certificate.entries_for (Some cc) ~meth:m.CF.m_name
               ~desc:m.CF.m_desc));
        (* Certificate tampering for this method's entries. *)
        match cert with
        | None -> ()
        | Some cc ->
          List.iteri
            (fun ei (e : Certificate.entry) ->
              (match e.Certificate.ce_kind with
              | Certificate.Elided { support } when support <> [] ->
                let s = List.hd support in
                add
                  {
                    m_op = Forge_support;
                    m_meth = label;
                    m_index = e.Certificate.ce_site;
                    m_note =
                      Printf.sprintf "support @%d -> @%d (not a check)" s
                        (s + 1);
                  }
                  (fun () ->
                    ( cf,
                      Some
                        (patch_cert cc ~label ~ei (fun e ->
                             {
                               e with
                               Certificate.ce_kind =
                                 Certificate.Elided { support = [ s + 1 ] };
                             })) ))
              | _ -> ());
              add
                {
                  m_op = Move_site;
                  m_meth = label;
                  m_index = e.Certificate.ce_site;
                  m_note =
                    Printf.sprintf "site @%d -> @%d" e.Certificate.ce_site
                      (e.Certificate.ce_site + 1);
                }
                (fun () ->
                  ( cf,
                    Some
                      (patch_cert cc ~label ~ei (fun e ->
                           {
                             e with
                             Certificate.ce_site = e.Certificate.ce_site + 1;
                           })) )))
            (Certificate.entries_for (Some cc) ~meth:m.CF.m_name
               ~desc:m.CF.m_desc))
    cf.CF.methods;
  List.rev !out

(* Draw [count] distinct candidates from the enumeration using the
   seeded stream (all of them when fewer exist), in stream order. *)
let mutants ~env ~seed ~count (cf : CF.t)
    (cert : Certificate.class_cert option) : mutant list =
  let cands = Array.of_list (candidates ~env cf cert) in
  let n = Array.length cands in
  let t = rng ~seed in
  let take = min count n in
  (* Partial Fisher–Yates: the first [take] slots are a uniform
     sample without replacement. *)
  for i = 0 to take - 1 do
    let j = i + range t ~max:(n - i) in
    let tmp = cands.(i) in
    cands.(i) <- cands.(j);
    cands.(j) <- tmp
  done;
  List.init take (fun i ->
      let m, thunk = cands.(i) in
      let cls, cert = thunk () in
      { mu_mutation = m; mu_class = cls; mu_cert = cert })

let candidate_count ~env cf cert = List.length (candidates ~env cf cert)
