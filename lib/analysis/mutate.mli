(** Mutation testing for the rewrite certifier: seeded corruptions of
    rewriter output (class + elision certificate) that a sound gate
    must catch. The harness only generates mutants; the caller decides
    whether the verifier or certifier kills each one. A pinned seed
    yields a reproducible mutant set. *)

type op =
  | Drop_check  (** nop out a live check invocation pair *)
  | Swap_branch  (** flip a conditional's sense *)
  | Widen_bound  (** perturb an integer constant feeding a guard *)
  | Retarget_entry  (** redirect a branch past a check block *)
  | Forge_support  (** elision support that names non-checks *)
  | Move_site  (** re-aim a certificate entry at another index *)

val op_to_string : op -> string

type mutation = {
  m_op : op;
  m_meth : string;  (** name ^ descriptor *)
  m_index : int;  (** instruction index (or certificate site) mutated *)
  m_note : string;
}

val mutation_to_string : mutation -> string

type mutant = {
  mu_mutation : mutation;
  mu_class : Bytecode.Classfile.t;
  mu_cert : Certificate.class_cert option;
}

val mutants :
  env:Certify.env ->
  seed:int64 ->
  count:int ->
  Bytecode.Classfile.t ->
  Certificate.class_cert option ->
  mutant list
(** Up to [count] distinct mutants, sampled without replacement from
    the deterministic candidate enumeration. *)

val candidate_count :
  env:Certify.env -> Bytecode.Classfile.t -> Certificate.class_cert option -> int
