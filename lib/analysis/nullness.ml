(* Nullness analysis: which reference values are provably non-null at
   each instruction? Drives null-guard elision in `jit/translate`.

   Abstract values carry a nullness verdict plus an origin local, so a
   branch on `ifnull`/`ifnonnull` — or a successful dereference — can
   refine the *local* the value was loaded from, not just the consumed
   stack slot. Integers can never be null, so they are tracked as
   [Nonnull]; this loses nothing because guards only ever protect
   reference uses.

   The stack shape is [None] ("unknown") whenever join partners
   disagree or the code underflows — analysis must stay total on dead
   or hostile code; an unknown stack simply elides nothing. *)

module I = Bytecode.Instr
module CP = Bytecode.Cp
module D = Bytecode.Descriptor

type v = Null | Nonnull | Maybe

type av = { v : v; origin : int option }

type state = { locals : av array; stack : av list option }

let unknown = { v = Maybe; origin = None }
let nonnull = { v = Nonnull; origin = None }
let null_v = { v = Null; origin = None }

let join_v a b =
  match (a, b) with
  | Null, Null -> Null
  | Nonnull, Nonnull -> Nonnull
  | _ -> Maybe

let join_av a b =
  {
    v = join_v a.v b.v;
    origin = (if a.origin = b.origin then a.origin else None);
  }

module L = struct
  type t = state

  let equal_av a b = a.v = b.v && a.origin = b.origin

  let equal a b =
    Array.length a.locals = Array.length b.locals
    && Array.for_all2 equal_av a.locals b.locals
    &&
    match (a.stack, b.stack) with
    | None, None -> true
    | Some s1, Some s2 ->
      List.length s1 = List.length s2 && List.for_all2 equal_av s1 s2
    | _ -> false

  let join a b =
    let locals = Array.map2 join_av a.locals b.locals in
    let stack =
      match (a.stack, b.stack) with
      | Some s1, Some s2 when List.length s1 = List.length s2 ->
        Some (List.map2 join_av s1 s2)
      | _ -> None
    in
    { locals; stack }
end

module S = Solver.Make (L)

type result = { before : state option array; iterations : int }

let pop = function
  | Some (x :: rest) -> (x, Some rest)
  | Some [] | None -> (unknown, None)

let popn n st =
  let rec go n st = if n = 0 then st else go (n - 1) (snd (pop st)) in
  go n st

let push x = function Some s -> Some (x :: s) | None -> None

(* A successful dereference proves the receiver non-null afterwards. *)
let settle_nonnull locals av =
  match av.origin with
  | Some n when n < Array.length locals ->
    let locals = Array.copy locals in
    locals.(n) <- { locals.(n) with v = Nonnull };
    locals
  | _ -> locals

(* A write to local [n] makes every remaining stack slot that recorded
   [n] as its origin stale: the slot still holds the *old* value, so
   settling or refining local [n] through it would be unsound
   (e.g. `aload 1; aconst_null; astore 1; getfield` must not mark
   local 1 Nonnull). Sever the link; the slot's own verdict stays. *)
let clear_origin n = function
  | None -> None
  | Some s ->
    Some
      (List.map
         (fun a -> if a.origin = Some n then { a with origin = None } else a)
         s)

let set_local locals n x =
  if n < Array.length locals then begin
    let locals = Array.copy locals in
    locals.(n) <- x;
    locals
  end
  else locals

let degrade st =
  { locals = Array.map (fun _ -> unknown) st.locals; stack = None }

let transfer pool ~at:_ ~instr (st : state) : state =
  let { locals; stack } = st in
  match instr with
  | I.Nop | I.Goto _ | I.Ret _ | I.Return -> st
  | I.Iinc (n, _) -> { st with stack = clear_origin n stack }
  | I.Iconst _ -> { st with stack = push nonnull stack }
  | I.Ldc_str _ | I.New _ -> { st with stack = push nonnull stack }
  | I.Aconst_null -> { st with stack = push null_v stack }
  | I.Iload n | I.Aload n ->
    let av =
      if n < Array.length locals then { locals.(n) with origin = Some n }
      else unknown
    in
    { st with stack = push av stack }
  | I.Istore n | I.Astore n ->
    let x, stack = pop stack in
    {
      locals = set_local locals n { x with origin = Some n };
      stack = clear_origin n stack;
    }
  | I.Iadd | I.Isub | I.Imul | I.Idiv | I.Irem | I.Ishl | I.Ishr | I.Iand
  | I.Ior | I.Ixor ->
    { st with stack = push nonnull (popn 2 stack) }
  | I.Ineg -> { st with stack = push nonnull (popn 1 stack) }
  | I.Dup -> (
    match stack with
    | Some (x :: _) -> { st with stack = push x stack }
    | _ -> { st with stack = None })
  | I.Dup_x1 -> (
    match stack with
    | Some (a :: b :: rest) -> { st with stack = Some (a :: b :: a :: rest) }
    | _ -> { st with stack = None })
  | I.Pop -> { st with stack = snd (pop stack) }
  | I.Swap -> (
    match stack with
    | Some (a :: b :: rest) -> { st with stack = Some (b :: a :: rest) }
    | _ -> { st with stack = None })
  | I.If_icmp _ -> { st with stack = popn 2 stack }
  | I.If_z _ -> { st with stack = popn 1 stack }
  | I.If_acmp _ -> { st with stack = popn 2 stack }
  | I.If_null _ -> { st with stack = popn 1 stack }
  | I.Jsr _ ->
    (* Subroutines are outside this analysis's model: degrade. *)
    degrade st
  | I.Tableswitch _ -> { st with stack = popn 1 stack }
  | I.Ireturn | I.Areturn | I.Athrow -> { st with stack = popn 1 stack }
  | I.Getstatic _ -> { st with stack = push unknown stack }
  | I.Putstatic _ -> { st with stack = popn 1 stack }
  | I.Getfield _ ->
    let obj, stack = pop stack in
    { locals = settle_nonnull locals obj; stack = push unknown stack }
  | I.Putfield _ ->
    let stack = popn 1 stack in
    let obj, stack = pop stack in
    { locals = settle_nonnull locals obj; stack }
  | I.Invokestatic k | I.Invokevirtual k | I.Invokespecial k
  | I.Invokeinterface k -> (
    let virt = match instr with I.Invokestatic _ -> false | _ -> true in
    match
      let mr = CP.get_methodref pool k in
      D.method_sig_of_string mr.CP.ref_desc
    with
    | sg ->
      let stack = popn (List.length sg.D.params) stack in
      let locals, stack =
        if virt then
          let recv, stack = pop stack in
          (settle_nonnull locals recv, stack)
        else (locals, stack)
      in
      let stack =
        match sg.D.ret with None -> stack | Some _ -> push unknown stack
      in
      { locals; stack }
    | exception (CP.Invalid_index _ | CP.Wrong_kind _ | D.Bad_descriptor _) ->
      degrade st)
  | I.Newarray | I.Anewarray _ ->
    { st with stack = push nonnull (popn 1 stack) }
  | I.Arraylength ->
    let arr, stack = pop stack in
    { locals = settle_nonnull locals arr; stack = push nonnull stack }
  | I.Iaload | I.Aaload ->
    let stack = popn 1 stack in
    let arr, stack = pop stack in
    let res = match instr with I.Iaload -> nonnull | _ -> unknown in
    { locals = settle_nonnull locals arr; stack = push res stack }
  | I.Iastore | I.Aastore ->
    let stack = popn 2 stack in
    let arr, stack = pop stack in
    { locals = settle_nonnull locals arr; stack }
  | I.Checkcast _ -> st
  | I.Instanceof _ -> { st with stack = push nonnull (popn 1 stack) }
  | I.Monitorenter | I.Monitorexit ->
    let obj, stack = pop stack in
    { locals = settle_nonnull locals obj; stack }

(* Branch refinement: `ifnull` / `ifnonnull` tell us the popped
   value's nullness on each outgoing edge; propagate to its origin
   local. When the branch target *is* the fall-through (degenerate but
   decodable bytecode), both runtime outcomes reach the same successor
   and neither verdict holds there — refine nothing. *)
let refine ~at ~instr ~target ~pre post =
  match instr with
  | I.If_null (when_null, t) when t <> at + 1 -> (
    let taken = target = t in
    let verdict =
      if taken = when_null then Null else Nonnull
    in
    match pre.stack with
    | Some ({ origin = Some n; _ } :: _) when n < Array.length post.locals ->
      {
        post with
        locals = set_local post.locals n { post.locals.(n) with v = verdict };
      }
    | _ -> post)
  | _ -> post

(* A handler receives the locals of the faulting region and exactly
   the thrown reference on the stack. *)
let exn_adjust st = { st with stack = Some [ nonnull ] }

let analyze pool ~(max_locals : int) ~(param_slots : int) ~(is_static : bool)
    (cfg : Cfg.t) : result =
  let locals =
    Array.init (max 1 max_locals) (fun i ->
        (* `this` is never null; parameters are unknown refs. *)
        if (not is_static) && i = 0 then { v = Nonnull; origin = Some 0 }
        else if i < param_slots + if is_static then 0 else 1 then
          { unknown with origin = Some i }
        else unknown)
  in
  let init = { locals; stack = Some [] } in
  let r =
    S.solve cfg ~init ~transfer:(transfer pool) ~refine ~exn_adjust
  in
  { before = r.S.before; iterations = r.S.iterations }

(* Is the stack value at depth [k] from the top provably non-null? *)
let stack_nonnull (st : state) ~depth =
  match st.stack with
  | None -> false
  | Some s -> (
    match List.nth_opt s depth with
    | Some { v = Nonnull; _ } -> true
    | _ -> false)

let pp_v ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Nonnull -> Format.pp_print_string ppf "nonnull"
  | Maybe -> Format.pp_print_string ppf "maybe"

let pp_state ppf st =
  Format.fprintf ppf "locals=[%s] stack=%s"
    (String.concat " "
       (Array.to_list
          (Array.map (fun a -> Format.asprintf "%a" pp_v a.v) st.locals)))
    (match st.stack with
    | None -> "?"
    | Some s ->
      "["
      ^ String.concat " " (List.map (fun a -> Format.asprintf "%a" pp_v a.v) s)
      ^ "]")
