(** Nullness analysis over reference values.

    Values carry an origin local so branch and dereference evidence
    refines the local they were loaded from. Integers are tracked as
    [Nonnull] (they cannot be null); an unknown stack shape elides
    nothing. *)

type v = Null | Nonnull | Maybe

type av = { v : v; origin : int option }

type state = { locals : av array; stack : av list option }

type result = {
  before : state option array;  (** entry state per instruction *)
  iterations : int;
}

val analyze :
  Bytecode.Cp.t ->
  max_locals:int ->
  param_slots:int ->
  is_static:bool ->
  Cfg.t ->
  result

val stack_nonnull : state -> depth:int -> bool
(** Is the stack value at [depth] slots below the top provably
    non-null? *)

val pp_v : Format.formatter -> v -> unit
val pp_state : Format.formatter -> state -> unit
