(* The pass-manager facade: rewrite filters and the JIT ask here for
   analysis results instead of running solvers by hand. Results are
   memoized per (class, method, descriptor) and invalidated when the
   method body is physically replaced — rewriting passes produce new
   code records, so staleness is a pointer comparison.

   Forcing a domain records its cost in the global telemetry registry:
   `analysis.blocks`, `analysis.solver_iterations` and
   `analysis.methods` aggregate across every proxied class. *)

module CF = Bytecode.Classfile
module D = Bytecode.Descriptor

type facts = {
  cls : string;
  meth : string;
  desc : string;
  code : CF.code;
  cfg : Cfg.t;
  dom : Dom.t Lazy.t;
  nullness : Nullness.result Lazy.t;
  ranges : Intrange.result Lazy.t;
}

let record_solve iterations =
  Telemetry.Global.add "analysis.solver_iterations" (Int64.of_int iterations)

let build pool ~cls (m : CF.meth) (code : CF.code) : facts =
  let cfg = Cfg.of_code code in
  Telemetry.Global.incr "analysis.methods";
  Telemetry.Global.add "analysis.blocks"
    (Int64.of_int (Cfg.block_count cfg));
  let is_static = CF.has_flag m.CF.m_flags CF.Static in
  let param_slots =
    match D.method_sig_of_string m.CF.m_desc with
    | sg -> D.param_slots sg
    | exception D.Bad_descriptor _ -> 0
  in
  {
    cls;
    meth = m.CF.m_name;
    desc = m.CF.m_desc;
    code;
    cfg;
    dom = lazy (Dom.compute cfg);
    nullness =
      lazy
        (let r =
           Nullness.analyze pool ~max_locals:code.CF.max_locals ~param_slots
             ~is_static cfg
         in
         record_solve r.Nullness.iterations;
         r);
    ranges =
      lazy
        (let r =
           Intrange.analyze pool ~max_locals:code.CF.max_locals ~param_slots
             ~is_static cfg
         in
         record_solve r.Intrange.iterations;
         r);
  }

let cache : (string * string * string, facts) Hashtbl.t = Hashtbl.create 64

let clear () = Hashtbl.reset cache

let for_method pool ~cls (m : CF.meth) : facts option =
  match m.CF.m_code with
  | None -> None
  | Some code -> (
    let key = (cls, m.CF.m_name, m.CF.m_desc) in
    match Hashtbl.find_opt cache key with
    | Some f when f.code == code -> Some f
    | _ -> (
      match build pool ~cls m code with
      | f ->
        Hashtbl.replace cache key f;
        Some f
      | exception Cfg.Malformed _ -> None))
