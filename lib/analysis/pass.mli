(** Pass manager: memoized per-method analysis results for rewrite
    filters and the JIT.

    Results are keyed by (class, method, descriptor) and invalidated
    when the method's code record is physically replaced. Forcing a
    domain reports `analysis.*` counters through the global telemetry
    registry. *)

type facts = {
  cls : string;
  meth : string;
  desc : string;
  code : Bytecode.Classfile.code;
  cfg : Cfg.t;
  dom : Dom.t Lazy.t;
  nullness : Nullness.result Lazy.t;
  ranges : Intrange.result Lazy.t;
}

val for_method :
  Bytecode.Cp.t -> cls:string -> Bytecode.Classfile.meth -> facts option
(** [None] for bodyless methods and for code the CFG builder rejects
    as malformed. *)

val clear : unit -> unit
(** Drop all memoized results. *)
