(* Method-level call-graph reachability over a closed set of classes.

   Conservative virtual dispatch: an `invokevirtual`/`invokeinterface`
   of (name, desc) marks every class in the set that defines a
   matching method — overriding without class-hierarchy analysis.
   Referencing a class (`new`, a static member access) reaches its
   `<clinit>`. `opt/repartition` uses the complement to classify
   statically-dead methods as cold without a first-use profile. *)

module I = Bytecode.Instr
module CF = Bytecode.Classfile
module CP = Bytecode.Cp

type key = string * string * string (* class, method, descriptor *)

type result = {
  reachable : (key, unit) Hashtbl.t;
  methods : int; (* total methods with code across the class set *)
}

let is_reachable r ~cls ~meth ~desc = Hashtbl.mem r.reachable (cls, meth, desc)

let analyze (classes : CF.t list) ~(entries : key list) : result =
  let by_class = Hashtbl.create 32 in
  List.iter (fun cf -> Hashtbl.replace by_class cf.CF.name cf) classes;
  (* (name, desc) -> classes defining it, for conservative dispatch. *)
  let by_sig = Hashtbl.create 64 in
  let methods = ref 0 in
  List.iter
    (fun cf ->
      List.iter
        (fun m ->
          if m.CF.m_code <> None then incr methods;
          let k = (m.CF.m_name, m.CF.m_desc) in
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_sig k) in
          Hashtbl.replace by_sig k (cf.CF.name :: cur))
        cf.CF.methods)
    classes;
  let reachable = Hashtbl.create 64 in
  let work = Queue.create () in
  let mark (cls, meth, desc) =
    if not (Hashtbl.mem reachable (cls, meth, desc)) then begin
      Hashtbl.replace reachable (cls, meth, desc) ();
      Queue.add (cls, meth, desc) work
    end
  in
  let mark_clinit cls =
    match Hashtbl.find_opt by_class cls with
    | Some cf when CF.find_method cf "<clinit>" "()V" <> None ->
      mark (cls, "<clinit>", "()V")
    | _ -> ()
  in
  List.iter mark entries;
  while not (Queue.is_empty work) do
    let cls, meth, desc = Queue.take work in
    match Hashtbl.find_opt by_class cls with
    | None -> ()
    | Some cf -> (
      match CF.find_method cf meth desc with
      | None | Some { CF.m_code = None; _ } -> ()
      | Some { CF.m_code = Some code; _ } ->
        Array.iter
          (fun ins ->
            match ins with
            | I.Invokestatic k | I.Invokespecial k -> (
              match CP.get_methodref cf.CF.pool k with
              | mr ->
                mark_clinit mr.CP.ref_class;
                mark (mr.CP.ref_class, mr.CP.ref_name, mr.CP.ref_desc)
              | exception (CP.Invalid_index _ | CP.Wrong_kind _) -> ())
            | I.Invokevirtual k | I.Invokeinterface k -> (
              match CP.get_methodref cf.CF.pool k with
              | mr ->
                let sig_key = (mr.CP.ref_name, mr.CP.ref_desc) in
                mark (mr.CP.ref_class, mr.CP.ref_name, mr.CP.ref_desc);
                List.iter
                  (fun c -> mark (c, mr.CP.ref_name, mr.CP.ref_desc))
                  (Option.value ~default:[]
                     (Hashtbl.find_opt by_sig sig_key))
              | exception (CP.Invalid_index _ | CP.Wrong_kind _) -> ())
            | I.New k | I.Anewarray k | I.Checkcast k | I.Instanceof k -> (
              match CP.get_class_name cf.CF.pool k with
              | c -> mark_clinit c
              | exception (CP.Invalid_index _ | CP.Wrong_kind _) -> ())
            | I.Getstatic k | I.Putstatic k -> (
              match CP.get_fieldref cf.CF.pool k with
              | fr -> mark_clinit fr.CP.ref_class
              | exception (CP.Invalid_index _ | CP.Wrong_kind _) -> ())
            | _ -> ())
          code.CF.instrs)
  done;
  { reachable; methods = !methods }
