(** Method-level call-graph reachability over a closed class set, with
    conservative virtual dispatch (any class defining a matching
    (name, descriptor) is a dispatch candidate). *)

type key = string * string * string  (** class, method, descriptor *)

type result = {
  reachable : (key, unit) Hashtbl.t;
  methods : int;  (** total methods with code across the class set *)
}

val analyze : Bytecode.Classfile.t list -> entries:key list -> result
val is_reachable : result -> cls:string -> meth:string -> desc:string -> bool
