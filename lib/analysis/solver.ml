(* Generic worklist fixed-point solver, functorized over a
   join-semilattice. Forward, instruction-granular: facts propagate
   block-at-a-time, and per-instruction entry facts are materialized
   once the block facts stabilize.

   The design mirrors `Verifier.Dataflow`'s worklist (that module is
   the type-inference instance of the same scheme) but is generic in
   the lattice, supports optional widening at retreating-edge targets,
   and lets a domain refine the fact flowing along a specific branch
   edge — how nullness learns from `ifnull` and ranges learn from
   `if_icmp`. *)

module I = Bytecode.Instr
module CF = Bytecode.Classfile

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

exception Diverged of string

module Make (L : LATTICE) = struct
  type result = {
    before : L.t option array;
        (* entry fact per instruction; [None] = solver never reached it *)
    iterations : int; (* block processings until fixpoint *)
  }

  let solve ?widen
      ?(refine =
        fun ~at:_ ~instr:_ ~target:_ ~pre:_ post -> post)
      ?(exn_adjust = fun f -> f) (cfg : Cfg.t) ~(init : L.t)
      ~(transfer : at:int -> instr:I.t -> L.t -> L.t) : result =
    let nblocks = Cfg.block_count cfg in
    let code = cfg.Cfg.code in
    let rpo_num = Array.make nblocks max_int in
    Array.iteri (fun i b -> rpo_num.(b) <- i) cfg.Cfg.rpo;
    (* Widening points: targets of retreating edges in the rpo
       numbering (a superset of natural-loop headers). *)
    let widen_point = Array.make nblocks false in
    Array.iter
      (fun b ->
        List.iter
          (fun (v, _) -> if rpo_num.(v) <= rpo_num.(b.Cfg.id) then widen_point.(v) <- true)
          b.Cfg.succs)
      cfg.Cfg.blocks;
    (* Handlers covering each block, as handler-target block ids. *)
    let handlers_of = Array.make nblocks [] in
    List.iter
      (fun h ->
        Array.iter
          (fun b ->
            if b.Cfg.first < h.CF.h_end && b.Cfg.last >= h.CF.h_start then
              handlers_of.(b.Cfg.id) <-
                (h.CF.h_start, h.CF.h_end, cfg.Cfg.block_of.(h.CF.h_target))
                :: handlers_of.(b.Cfg.id))
          cfg.Cfg.blocks)
      code.CF.handlers;
    let block_in : L.t option array = Array.make nblocks None in
    let in_queue = Array.make nblocks false in
    let queue = Queue.create () in
    let enqueue b =
      if not in_queue.(b) then begin
        in_queue.(b) <- true;
        Queue.add b queue
      end
    in
    let join_into b fact =
      match block_in.(b) with
      | None ->
        block_in.(b) <- Some fact;
        enqueue b
      | Some old ->
        let j = L.join old fact in
        let j =
          match widen with
          | Some w when widen_point.(b) -> w old j
          | _ -> j
        in
        if not (L.equal old j) then begin
          block_in.(b) <- Some j;
          enqueue b
        end
    in
    block_in.(0) <- Some init;
    enqueue 0;
    let iterations = ref 0 in
    let limit = (nblocks * 256) + 1024 in
    while not (Queue.is_empty queue) do
      let bid = Queue.take queue in
      in_queue.(bid) <- false;
      incr iterations;
      if !iterations > limit then
        raise
          (Diverged
             (Printf.sprintf "no fixpoint after %d block visits (%d blocks)"
                !iterations nblocks));
      let b = Cfg.block cfg bid in
      let cur = ref (Option.get block_in.(bid)) in
      for idx = b.Cfg.first to b.Cfg.last do
        (* Exception edge: the handler can observe the state at any
           covered instruction's entry. *)
        List.iter
          (fun (hs, he, target) ->
            if idx >= hs && idx < he then join_into target (exn_adjust !cur))
          handlers_of.(bid);
        if idx < b.Cfg.last then
          cur := transfer ~at:idx ~instr:code.CF.instrs.(idx) !cur
      done;
      let last = b.Cfg.last in
      let instr = code.CF.instrs.(last) in
      let pre = !cur in
      let post = transfer ~at:last ~instr pre in
      List.iter
        (fun (v, kind) ->
          match kind with
          | Cfg.Exn -> ()
          | Cfg.Fall ->
            join_into v (refine ~at:last ~instr ~target:(last + 1) ~pre post)
          | Cfg.Branch ->
            List.iter
              (fun t ->
                if cfg.Cfg.block_of.(t) = v then
                  join_into v (refine ~at:last ~instr ~target:t ~pre post))
              (I.targets instr))
        b.Cfg.succs
    done;
    (* Materialize per-instruction entry facts. *)
    let before = Array.make (Array.length code.CF.instrs) None in
    Array.iter
      (fun b ->
        match block_in.(b.Cfg.id) with
        | None -> ()
        | Some fact ->
          let cur = ref fact in
          for idx = b.Cfg.first to b.Cfg.last do
            before.(idx) <- Some !cur;
            if idx < b.Cfg.last then
              cur := transfer ~at:idx ~instr:code.CF.instrs.(idx) !cur
          done)
      cfg.Cfg.blocks;
    { before; iterations = !iterations }
end
