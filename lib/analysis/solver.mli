(** Worklist fixed-point solver functorized over a join-semilattice.

    Forward, instruction-granular. Optional widening is applied at
    retreating-edge targets; an optional [refine] hook adjusts the
    fact flowing along a specific branch edge (conditional-branch
    refinement); [exn_adjust] maps the in-state of a covered
    instruction to the state observed by its exception handler. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

exception Diverged of string

module Make (L : LATTICE) : sig
  type result = {
    before : L.t option array;
        (** entry fact per instruction; [None] = unreachable *)
    iterations : int;  (** block processings until fixpoint *)
  }

  val solve :
    ?widen:(L.t -> L.t -> L.t) ->
    ?refine:
      (at:int ->
      instr:Bytecode.Instr.t ->
      target:int ->
      pre:L.t ->
      L.t ->
      L.t) ->
    ?exn_adjust:(L.t -> L.t) ->
    Cfg.t ->
    init:L.t ->
    transfer:(at:int -> instr:Bytecode.Instr.t -> L.t -> L.t) ->
    result
  (** @raise Diverged if no fixpoint is reached within the visit
      budget (a widening or monotonicity bug in the domain). *)
end
