(* Exact per-instruction stack effects, and the dataflow-exact
   max-stack / max-locals computation over *reachable* code that
   `Rewrite.Patch.recompute` exposes. Unlike the builder's
   conservative estimator, dead instructions (e.g. left behind after
   an unconditional branch by a rewriting pass) contribute nothing. *)

module I = Bytecode.Instr
module CF = Bytecode.Classfile
module CP = Bytecode.Cp
module D = Bytecode.Descriptor

(* (pops, pushes). Every DVM type is one slot. Raises the constant
   pool / descriptor exceptions on a malformed invoke site. *)
let effect pool (i : I.t) : int * int =
  let invoke k ~virt =
    let mr = CP.get_methodref pool k in
    let sg = D.method_sig_of_string mr.CP.ref_desc in
    let nargs = List.length sg.D.params + if virt then 1 else 0 in
    (nargs, match sg.D.ret with None -> 0 | Some _ -> 1)
  in
  match i with
  | I.Nop | I.Iinc _ | I.Goto _ | I.Ret _ | I.Return -> (0, 0)
  | I.Iconst _ | I.Ldc_str _ | I.Aconst_null | I.Iload _ | I.Aload _
  | I.Getstatic _ | I.New _ | I.Jsr _ ->
    (0, 1)
  | I.Istore _ | I.Astore _ | I.Putstatic _ | I.Pop | I.If_z _ | I.If_null _
  | I.Tableswitch _ | I.Ireturn | I.Areturn | I.Athrow | I.Monitorenter
  | I.Monitorexit ->
    (1, 0)
  | I.Iadd | I.Isub | I.Imul | I.Idiv | I.Irem | I.Ishl | I.Ishr | I.Iand
  | I.Ior | I.Ixor ->
    (2, 1)
  | I.Ineg | I.Checkcast _ | I.Instanceof _ | I.Getfield _ | I.Newarray
  | I.Anewarray _ | I.Arraylength ->
    (1, 1)
  | I.Dup -> (1, 2)
  | I.Dup_x1 -> (2, 3)
  | I.Swap -> (2, 2)
  | I.If_icmp _ | I.If_acmp _ | I.Putfield _ -> (2, 0)
  | I.Iaload | I.Aaload -> (2, 1)
  | I.Iastore | I.Aastore -> (3, 0)
  | I.Invokestatic k -> invoke k ~virt:false
  | I.Invokevirtual k | I.Invokespecial k | I.Invokeinterface k ->
    invoke k ~virt:true

(* Exact maximum operand-stack height over reachable paths. Depths are
   propagated along normal edges; a handler entry holds exactly the
   thrown reference (depth 1). On a join-depth mismatch — impossible
   in verifiable code, tolerated here — the maximum is kept. *)
module Depth = struct
  type t = int

  let equal = Int.equal
  let join = max
end

module DS = Solver.Make (Depth)

let max_stack pool (cfg : Cfg.t) : int =
  let deepest = ref 0 in
  let transfer ~at:_ ~instr d =
    let pops, pushes = effect pool instr in
    let d' = max 0 (d - pops) + pushes in
    if d' > !deepest then deepest := d';
    d'
  in
  let r = DS.solve cfg ~init:0 ~transfer ~exn_adjust:(fun _ -> 1) in
  (* The transfer only runs where the solver walks; seed with entry
     depths too so a lone-return method reports 0 correctly. *)
  Array.iter (function Some d -> if d > !deepest then deepest := d | None -> ()) r.before;
  !deepest

(* Exact locals requirement over reachable instructions. *)
let max_locals ~params ~is_static (cfg : Cfg.t) : int =
  let reach = Cfg.instr_reachable cfg in
  let need = ref (params + if is_static then 0 else 1) in
  Array.iteri
    (fun idx ins ->
      if reach.(idx) then
        match ins with
        | I.Iload n | I.Istore n | I.Aload n | I.Astore n | I.Iinc (n, _)
        | I.Ret n ->
          if n + 1 > !need then need := n + 1
        | _ -> ())
    cfg.Cfg.code.CF.instrs;
  !need
