(** Exact stack effects and dataflow-exact code bounds.

    Backs [Rewrite.Patch.recompute]: unlike the builder's estimator,
    unreachable instructions contribute nothing to the bounds. *)

val effect : Bytecode.Cp.t -> Bytecode.Instr.t -> int * int
(** [(pops, pushes)] of one instruction. Raises the constant-pool or
    descriptor exceptions on a malformed invoke site. *)

val max_stack : Bytecode.Cp.t -> Cfg.t -> int
(** Exact maximum operand-stack height over reachable paths. *)

val max_locals : params:int -> is_static:bool -> Cfg.t -> int
(** Exact locals requirement over reachable instructions (at least the
    parameter slots). *)
