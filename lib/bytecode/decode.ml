(* Binary class-file decoder. Decoding performs the *syntactic* part of
   class-file checking: magic/version, pool-entry tags, and — because
   branch targets are converted from byte offsets back to instruction
   indices — the "branches land on instruction boundaries" part of the
   paper's phase-2 instruction-integrity verification. Everything else
   (pool-index kinds, bounds, type safety) belongs to the verifier. *)

exception Format_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Format_error s)) fmt

(* List.init does not guarantee left-to-right evaluation; decoding
   relies on it, so use an explicitly ordered variant. *)
let init_in_order n f =
  let rec go acc i = if i = n then List.rev acc else go (f i :: acc) (i + 1) in
  go [] 0

let decode_cp_entry r =
  match Io.Reader.u1 r with
  | 1 -> Cp.Utf8 (Io.Reader.str r)
  | 3 -> Cp.Int_const (Io.Reader.i4 r)
  | 7 -> Cp.Class (Io.Reader.u2 r)
  | 8 -> Cp.Str (Io.Reader.u2 r)
  | 9 ->
    let c = Io.Reader.u2 r in
    Cp.Fieldref (c, Io.Reader.u2 r)
  | 10 ->
    let c = Io.Reader.u2 r in
    Cp.Methodref (c, Io.Reader.u2 r)
  | 12 ->
    let n = Io.Reader.u2 r in
    Cp.Name_and_type (n, Io.Reader.u2 r)
  | tag -> fail "unknown constant-pool tag %d" tag

(* Decode one instruction; branch operands stay as byte offsets and are
   remapped to indices in a second pass. *)
let decode_instr r =
  let u2 () = Io.Reader.u2 r in
  let u4 () = Io.Reader.u4 r in
  match Io.Reader.u1 r with
  | 0 -> Instr.Nop
  | 1 -> Instr.Iconst (Io.Reader.i4 r)
  | 2 -> Instr.Ldc_str (u2 ())
  | 3 -> Instr.Aconst_null
  | 4 -> Instr.Iload (u2 ())
  | 5 -> Instr.Istore (u2 ())
  | 6 -> Instr.Aload (u2 ())
  | 7 -> Instr.Astore (u2 ())
  | 8 ->
    let n = u2 () in
    Instr.Iinc (n, Io.Reader.i2 r)
  | 9 -> Instr.Iadd
  | 10 -> Instr.Isub
  | 11 -> Instr.Imul
  | 12 -> Instr.Idiv
  | 13 -> Instr.Irem
  | 14 -> Instr.Ineg
  | 15 -> Instr.Ishl
  | 16 -> Instr.Ishr
  | 17 -> Instr.Iand
  | 18 -> Instr.Ior
  | 19 -> Instr.Ixor
  | 20 -> Instr.Dup
  | 21 -> Instr.Dup_x1
  | 22 -> Instr.Pop
  | 23 -> Instr.Swap
  | 24 -> Instr.Goto (u4 ())
  | 25 -> Instr.If_icmp (Instr.Eq, u4 ())
  | 26 -> Instr.If_icmp (Instr.Ne, u4 ())
  | 27 -> Instr.If_icmp (Instr.Lt, u4 ())
  | 28 -> Instr.If_icmp (Instr.Ge, u4 ())
  | 29 -> Instr.If_icmp (Instr.Gt, u4 ())
  | 30 -> Instr.If_icmp (Instr.Le, u4 ())
  | 31 -> Instr.If_z (Instr.Eq, u4 ())
  | 32 -> Instr.If_z (Instr.Ne, u4 ())
  | 33 -> Instr.If_z (Instr.Lt, u4 ())
  | 34 -> Instr.If_z (Instr.Ge, u4 ())
  | 35 -> Instr.If_z (Instr.Gt, u4 ())
  | 36 -> Instr.If_z (Instr.Le, u4 ())
  | 37 -> Instr.If_acmp (true, u4 ())
  | 38 -> Instr.If_acmp (false, u4 ())
  | 39 -> Instr.If_null (true, u4 ())
  | 40 -> Instr.If_null (false, u4 ())
  | 41 -> Instr.Jsr (u4 ())
  | 42 -> Instr.Ret (u2 ())
  | 43 ->
    let low = Io.Reader.i4 r in
    let default = u4 () in
    let n = u4 () in
    if n > 0xffff then fail "oversized tableswitch (%d targets)" n;
    let targets = Array.make n 0 in
    for k = 0 to n - 1 do
      targets.(k) <- u4 ()
    done;
    Instr.Tableswitch { low; targets; default }
  | 44 -> Instr.Ireturn
  | 45 -> Instr.Areturn
  | 46 -> Instr.Return
  | 47 -> Instr.Getstatic (u2 ())
  | 48 -> Instr.Putstatic (u2 ())
  | 49 -> Instr.Getfield (u2 ())
  | 50 -> Instr.Putfield (u2 ())
  | 51 -> Instr.Invokevirtual (u2 ())
  | 52 -> Instr.Invokestatic (u2 ())
  | 53 -> Instr.Invokespecial (u2 ())
  | 54 -> Instr.New (u2 ())
  | 55 -> Instr.Newarray
  | 56 -> Instr.Anewarray (u2 ())
  | 57 -> Instr.Arraylength
  | 58 -> Instr.Iaload
  | 59 -> Instr.Iastore
  | 60 -> Instr.Aaload
  | 61 -> Instr.Aastore
  | 62 -> Instr.Athrow
  | 63 -> Instr.Checkcast (u2 ())
  | 64 -> Instr.Instanceof (u2 ())
  | 65 -> Instr.Monitorenter
  | 66 -> Instr.Monitorexit
  | 67 -> Instr.Invokeinterface (u2 ())
  | op -> fail "unknown opcode %d" op

let decode_code r =
  let max_stack = Io.Reader.u2 r in
  let max_locals = Io.Reader.u2 r in
  let body_len = Io.Reader.u4 r in
  (* A zero-copy view of the body: offsets inside [br] are body-relative
     exactly as they were when the body was carved out with String.sub. *)
  let br = Io.Reader.sub r body_len in
  (* First pass: decode instructions, remembering each one's byte
     offset in a dense offset -> index map (-1 marks mid-instruction
     bytes). *)
  let rev_instrs = ref [] in
  let index_of_offset = Array.make (body_len + 1) (-1) in
  let idx = ref 0 in
  while not (Io.Reader.at_end br) do
    index_of_offset.(Io.Reader.pos br) <- !idx;
    let i =
      try decode_instr br
      with Io.Truncated _ -> fail "truncated instruction at index %d" !idx
    in
    rev_instrs := i :: !rev_instrs;
    incr idx
  done;
  index_of_offset.(body_len) <- !idx;
  let to_index off =
    if off < 0 || off > body_len || index_of_offset.(off) < 0 then
      fail "branch target %d not on an instruction boundary" off
    else index_of_offset.(off)
  in
  let instrs =
    !rev_instrs |> List.rev_map (Instr.map_targets to_index) |> Array.of_list
  in
  let n_handlers = Io.Reader.u2 r in
  let handlers =
    init_in_order n_handlers (fun _ ->
        let h_start = to_index (Io.Reader.u4 r) in
        let h_end = to_index (Io.Reader.u4 r) in
        let h_target = to_index (Io.Reader.u4 r) in
        let h_catch =
          match Io.Reader.u1 r with
          | 0 -> None
          | 1 -> Some (Io.Reader.str r)
          | k -> fail "bad catch-type flag %d" k
        in
        { Classfile.h_start; h_end; h_target; h_catch })
  in
  { Classfile.max_stack; max_locals; instrs; handlers }

let decode_method r =
  let m_flags = Classfile.access_of_u16 (Io.Reader.u2 r) in
  let m_name = Io.Reader.str r in
  let m_desc = Io.Reader.str r in
  let m_code =
    match Io.Reader.u1 r with
    | 0 -> None
    | 1 -> Some (decode_code r)
    | k -> fail "bad has-code flag %d" k
  in
  { Classfile.m_name; m_desc; m_flags; m_code }

let decode_field r =
  let f_flags = Classfile.access_of_u16 (Io.Reader.u2 r) in
  let f_name = Io.Reader.str r in
  let f_desc = Io.Reader.str r in
  { Classfile.f_name; f_desc; f_flags }

let class_of_bytes data =
  let r = Io.Reader.of_string data in
  try
    if Io.Reader.u4 r <> Encode.magic then fail "bad magic";
    let minor = Io.Reader.u2 r in
    let major = Io.Reader.u2 r in
    if major <> Encode.version_major || minor <> Encode.version_minor then
      fail "unsupported version %d.%d" major minor;
    let cp_count = Io.Reader.u2 r in
    if cp_count < 1 then fail "empty constant pool";
    let pool = Array.make cp_count (Cp.Utf8 "") in
    for i = 1 to cp_count - 1 do
      pool.(i) <- decode_cp_entry r
    done;
    let c_flags = Classfile.access_of_u16 (Io.Reader.u2 r) in
    let name = Io.Reader.str r in
    let super =
      match Io.Reader.u1 r with
      | 0 -> None
      | 1 -> Some (Io.Reader.str r)
      | k -> fail "bad has-super flag %d" k
    in
    let interfaces =
      init_in_order (Io.Reader.u2 r) (fun _ -> Io.Reader.str r)
    in
    let fields = init_in_order (Io.Reader.u2 r) (fun _ -> decode_field r) in
    let methods = init_in_order (Io.Reader.u2 r) (fun _ -> decode_method r) in
    let attributes =
      init_in_order (Io.Reader.u2 r) (fun _ ->
          let aname = Io.Reader.str r in
          let len = Io.Reader.u4 r in
          (aname, Io.Reader.raw r len))
    in
    if not (Io.Reader.at_end r) then
      fail "%d trailing bytes after class" (Io.Reader.remaining r);
    {
      Classfile.name;
      super;
      interfaces;
      c_flags;
      fields;
      methods;
      pool;
      attributes;
    }
  with Io.Truncated msg -> fail "truncated class file (%s)" msg

(* Fast path for services that only need a class's attributes (e.g.
   the reflection service): walks the file skipping code bodies via
   their length prefixes instead of decoding instructions. *)
let class_attributes_of_bytes data =
  let r = Io.Reader.of_string data in
  try
    if Io.Reader.u4 r <> Encode.magic then fail "bad magic";
    let _minor = Io.Reader.u2 r in
    let _major = Io.Reader.u2 r in
    let cp_count = Io.Reader.u2 r in
    if cp_count < 1 then fail "empty constant pool";
    for _ = 1 to cp_count - 1 do
      ignore (decode_cp_entry r)
    done;
    let _flags = Io.Reader.u2 r in
    let _name = Io.Reader.str r in
    (match Io.Reader.u1 r with
    | 0 -> ()
    | 1 -> ignore (Io.Reader.str r)
    | k -> fail "bad has-super flag %d" k);
    for _ = 1 to Io.Reader.u2 r do
      ignore (Io.Reader.str r)
    done;
    (* fields *)
    for _ = 1 to Io.Reader.u2 r do
      ignore (Io.Reader.u2 r);
      ignore (Io.Reader.str r);
      ignore (Io.Reader.str r)
    done;
    (* methods: skip code bodies wholesale *)
    for _ = 1 to Io.Reader.u2 r do
      ignore (Io.Reader.u2 r);
      ignore (Io.Reader.str r);
      ignore (Io.Reader.str r);
      match Io.Reader.u1 r with
      | 0 -> ()
      | 1 ->
        ignore (Io.Reader.u2 r);
        ignore (Io.Reader.u2 r);
        let body_len = Io.Reader.u4 r in
        Io.Reader.skip r body_len;
        for _ = 1 to Io.Reader.u2 r do
          ignore (Io.Reader.u4 r);
          ignore (Io.Reader.u4 r);
          ignore (Io.Reader.u4 r);
          match Io.Reader.u1 r with
          | 0 -> ()
          | 1 -> ignore (Io.Reader.str r)
          | k -> fail "bad catch-type flag %d" k
        done
      | k -> fail "bad has-code flag %d" k
    done;
    init_in_order (Io.Reader.u2 r) (fun _ ->
        let aname = Io.Reader.str r in
        let len = Io.Reader.u4 r in
        (aname, Io.Reader.raw r len))
  with Io.Truncated msg -> fail "truncated class file (%s)" msg
