(* Field and method descriptors, following the JVM descriptor grammar
   restricted to the types our VM supports: 32-bit integers (which also
   encode booleans, bytes, chars and shorts), object references and
   arrays thereof. *)

type ty =
  | Int
  | Obj of string
  | Arr of ty

type method_sig = {
  params : ty list;
  ret : ty option; (* [None] encodes void *)
}

exception Bad_descriptor of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad_descriptor s)) fmt

let rec pp_ty ppf = function
  | Int -> Format.pp_print_string ppf "I"
  | Obj c -> Format.fprintf ppf "L%s;" c
  | Arr t -> Format.fprintf ppf "[%a" pp_ty t

let ty_to_string t = Format.asprintf "%a" pp_ty t

let method_sig_to_string { params; ret } =
  let buf = Buffer.create 16 in
  Buffer.add_char buf '(';
  List.iter (fun t -> Buffer.add_string buf (ty_to_string t)) params;
  Buffer.add_char buf ')';
  (match ret with
  | None -> Buffer.add_char buf 'V'
  | Some t -> Buffer.add_string buf (ty_to_string t));
  Buffer.contents buf

(* Parse one type starting at [i]; return the type and the index just
   past it. *)
let rec parse_ty s i =
  if i >= String.length s then bad "truncated descriptor %S" s;
  match s.[i] with
  | 'I' -> (Int, i + 1)
  | '[' ->
    let t, j = parse_ty s (i + 1) in
    (Arr t, j)
  | 'L' -> (
    match String.index_from_opt s i ';' with
    | None -> bad "unterminated class name in %S" s
    | Some j ->
      if j = i + 1 then bad "empty class name in %S" s;
      (Obj (String.sub s (i + 1) (j - i - 1)), j + 1))
  | c -> bad "unsupported type char %C in %S" c s

let ty_of_string_uncached s =
  let t, j = parse_ty s 0 in
  if j <> String.length s then bad "trailing junk in field descriptor %S" s;
  t

let method_sig_of_string_uncached s =
  if String.length s < 3 || s.[0] <> '(' then bad "not a method descriptor: %S" s;
  let rec params acc i =
    if i >= String.length s then bad "unterminated parameter list in %S" s
    else if s.[i] = ')' then (List.rev acc, i + 1)
    else
      let t, j = parse_ty s i in
      params (t :: acc) j
  in
  let ps, i = params [] 1 in
  if i >= String.length s then bad "missing return type in %S" s;
  if s.[i] = 'V' then
    if i + 1 = String.length s then { params = ps; ret = None }
    else bad "trailing junk in %S" s
  else
    let t, j = parse_ty s i in
    if j <> String.length s then bad "trailing junk in %S" s;
    { params = ps; ret = Some t }

(* Descriptor strings recur constantly — every invoke site, every
   verifier fixpoint iteration, every refit after a rewrite — and
   parsing is pure, so successful parses are memoized. Only successes
   are cached: a malformed descriptor re-raises on every parse, which
   keeps the error path byte-for-byte identical and the tables free of
   junk. The caches are reset when they grow past a bound so an
   adversarial stream of distinct descriptors cannot pin memory. *)
let memo_max = 65_536

let sig_cache : (string, method_sig) Hashtbl.t = Hashtbl.create 256
let ty_cache : (string, ty) Hashtbl.t = Hashtbl.create 256

let method_sig_of_string s =
  match Hashtbl.find_opt sig_cache s with
  | Some sg -> sg
  | None ->
    let sg = method_sig_of_string_uncached s in
    if Hashtbl.length sig_cache >= memo_max then Hashtbl.reset sig_cache;
    Hashtbl.add sig_cache s sg;
    sg

let ty_of_string s =
  match Hashtbl.find_opt ty_cache s with
  | Some t -> t
  | None ->
    let t = ty_of_string_uncached s in
    if Hashtbl.length ty_cache >= memo_max then Hashtbl.reset ty_cache;
    Hashtbl.add ty_cache s t;
    t

let is_method_descriptor s = String.length s > 0 && s.[0] = '('

let valid_field_descriptor s =
  match ty_of_string s with _ -> true | exception Bad_descriptor _ -> false

let valid_method_descriptor s =
  match method_sig_of_string s with
  | _ -> true
  | exception Bad_descriptor _ -> false

(* Number of locals slots taken by the parameters (all our types are
   one slot wide). *)
let param_slots sig_ = List.length sig_.params

let rec equal_ty a b =
  match (a, b) with
  | Int, Int -> true
  | Obj x, Obj y -> String.equal x y
  | Arr x, Arr y -> equal_ty x y
  | (Int | Obj _ | Arr _), _ -> false
