(* Binary class-file encoder. The layout mirrors the real class-file
   format (magic, versioned header, constant pool, members, attributes)
   with two simplifications documented in DESIGN.md: class names in the
   header are stored as direct strings rather than pool indices, and
   branch operands are absolute byte offsets rather than relative
   ones. *)

let magic = 0xCAFEBABE
let version_major = 45
let version_minor = 3

let encode_cp_entry w = function
  | Cp.Utf8 s ->
    Io.Writer.u1 w 1;
    Io.Writer.str w s
  | Cp.Int_const n ->
    Io.Writer.u1 w 3;
    Io.Writer.i4 w n
  | Cp.Class i ->
    Io.Writer.u1 w 7;
    Io.Writer.u2 w i
  | Cp.Str i ->
    Io.Writer.u1 w 8;
    Io.Writer.u2 w i
  | Cp.Fieldref (c, nt) ->
    Io.Writer.u1 w 9;
    Io.Writer.u2 w c;
    Io.Writer.u2 w nt
  | Cp.Methodref (c, nt) ->
    Io.Writer.u1 w 10;
    Io.Writer.u2 w c;
    Io.Writer.u2 w nt
  | Cp.Name_and_type (n, d) ->
    Io.Writer.u1 w 12;
    Io.Writer.u2 w n;
    Io.Writer.u2 w d

(* Byte offset of each instruction index; one extra slot holds the
   total code size so that exclusive end indices are encodable. *)
let offsets (instrs : Instr.t array) =
  let n = Array.length instrs in
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + Instr.encoded_size instrs.(i)
  done;
  off

let opcode_of : Instr.t -> int = function
  | Instr.Nop -> 0
  | Instr.Iconst _ -> 1
  | Instr.Ldc_str _ -> 2
  | Instr.Aconst_null -> 3
  | Instr.Iload _ -> 4
  | Instr.Istore _ -> 5
  | Instr.Aload _ -> 6
  | Instr.Astore _ -> 7
  | Instr.Iinc _ -> 8
  | Instr.Iadd -> 9
  | Instr.Isub -> 10
  | Instr.Imul -> 11
  | Instr.Idiv -> 12
  | Instr.Irem -> 13
  | Instr.Ineg -> 14
  | Instr.Ishl -> 15
  | Instr.Ishr -> 16
  | Instr.Iand -> 17
  | Instr.Ior -> 18
  | Instr.Ixor -> 19
  | Instr.Dup -> 20
  | Instr.Dup_x1 -> 21
  | Instr.Pop -> 22
  | Instr.Swap -> 23
  | Instr.Goto _ -> 24
  | Instr.If_icmp (Instr.Eq, _) -> 25
  | Instr.If_icmp (Instr.Ne, _) -> 26
  | Instr.If_icmp (Instr.Lt, _) -> 27
  | Instr.If_icmp (Instr.Ge, _) -> 28
  | Instr.If_icmp (Instr.Gt, _) -> 29
  | Instr.If_icmp (Instr.Le, _) -> 30
  | Instr.If_z (Instr.Eq, _) -> 31
  | Instr.If_z (Instr.Ne, _) -> 32
  | Instr.If_z (Instr.Lt, _) -> 33
  | Instr.If_z (Instr.Ge, _) -> 34
  | Instr.If_z (Instr.Gt, _) -> 35
  | Instr.If_z (Instr.Le, _) -> 36
  | Instr.If_acmp (true, _) -> 37
  | Instr.If_acmp (false, _) -> 38
  | Instr.If_null (true, _) -> 39
  | Instr.If_null (false, _) -> 40
  | Instr.Jsr _ -> 41
  | Instr.Ret _ -> 42
  | Instr.Tableswitch _ -> 43
  | Instr.Ireturn -> 44
  | Instr.Areturn -> 45
  | Instr.Return -> 46
  | Instr.Getstatic _ -> 47
  | Instr.Putstatic _ -> 48
  | Instr.Getfield _ -> 49
  | Instr.Putfield _ -> 50
  | Instr.Invokevirtual _ -> 51
  | Instr.Invokestatic _ -> 52
  | Instr.Invokespecial _ -> 53
  | Instr.New _ -> 54
  | Instr.Newarray -> 55
  | Instr.Anewarray _ -> 56
  | Instr.Arraylength -> 57
  | Instr.Iaload -> 58
  | Instr.Iastore -> 59
  | Instr.Aaload -> 60
  | Instr.Aastore -> 61
  | Instr.Athrow -> 62
  | Instr.Checkcast _ -> 63
  | Instr.Instanceof _ -> 64
  | Instr.Monitorenter -> 65
  | Instr.Monitorexit -> 66
  | Instr.Invokeinterface _ -> 67

let encode_instr w off i =
  Io.Writer.u1 w (opcode_of i);
  match i with
  | Instr.Nop | Instr.Aconst_null | Instr.Iadd | Instr.Isub | Instr.Imul
  | Instr.Idiv | Instr.Irem | Instr.Ineg | Instr.Ishl | Instr.Ishr
  | Instr.Iand | Instr.Ior | Instr.Ixor | Instr.Dup | Instr.Dup_x1 | Instr.Pop
  | Instr.Swap | Instr.Ireturn | Instr.Areturn | Instr.Return | Instr.Newarray
  | Instr.Arraylength | Instr.Iaload | Instr.Iastore | Instr.Aaload
  | Instr.Aastore | Instr.Athrow | Instr.Monitorenter | Instr.Monitorexit ->
    ()
  | Instr.Iconst n -> Io.Writer.i4 w n
  | Instr.Ldc_str k
  | Instr.Getstatic k
  | Instr.Putstatic k
  | Instr.Getfield k
  | Instr.Putfield k
  | Instr.Invokevirtual k
  | Instr.Invokestatic k
  | Instr.Invokespecial k
  | Instr.Invokeinterface k
  | Instr.New k
  | Instr.Anewarray k
  | Instr.Checkcast k
  | Instr.Instanceof k ->
    Io.Writer.u2 w k
  | Instr.Iload n | Instr.Istore n | Instr.Aload n | Instr.Astore n
  | Instr.Ret n ->
    Io.Writer.u2 w n
  | Instr.Iinc (n, d) ->
    Io.Writer.u2 w n;
    Io.Writer.i2 w d
  | Instr.Goto t
  | Instr.If_icmp (_, t)
  | Instr.If_z (_, t)
  | Instr.If_acmp (_, t)
  | Instr.If_null (_, t)
  | Instr.Jsr t ->
    Io.Writer.u4 w off.(t)
  | Instr.Tableswitch { low; targets; default } ->
    Io.Writer.i4 w low;
    Io.Writer.u4 w off.(default);
    Io.Writer.u4 w (Array.length targets);
    Array.iter (fun t -> Io.Writer.u4 w off.(t)) targets

let encode_code w (code : Classfile.code) =
  let off = offsets code.instrs in
  Io.Writer.u2 w code.max_stack;
  Io.Writer.u2 w code.max_locals;
  (* [offsets] already knows the body size (its final slot), so the
     body streams straight into [w] — no staging buffer, no copy. *)
  Io.Writer.u4 w off.(Array.length code.instrs);
  Array.iter (encode_instr w off) code.instrs;
  Io.Writer.u2 w (List.length code.handlers);
  List.iter
    (fun h ->
      Io.Writer.u4 w off.(h.Classfile.h_start);
      Io.Writer.u4 w off.(h.Classfile.h_end);
      Io.Writer.u4 w off.(h.Classfile.h_target);
      match h.Classfile.h_catch with
      | None -> Io.Writer.u1 w 0
      | Some c ->
        Io.Writer.u1 w 1;
        Io.Writer.str w c)
    code.handlers

let encode_method w (m : Classfile.meth) =
  Io.Writer.u2 w (Classfile.access_to_u16 m.m_flags);
  Io.Writer.str w m.m_name;
  Io.Writer.str w m.m_desc;
  match m.m_code with
  | None -> Io.Writer.u1 w 0
  | Some code ->
    Io.Writer.u1 w 1;
    encode_code w code

let encode_field w (f : Classfile.field) =
  Io.Writer.u2 w (Classfile.access_to_u16 f.f_flags);
  Io.Writer.str w f.f_name;
  Io.Writer.str w f.f_desc

let class_to_bytes (cls : Classfile.t) =
  let w = Io.Writer.create () in
  Io.Writer.u4 w magic;
  Io.Writer.u2 w version_minor;
  Io.Writer.u2 w version_major;
  Io.Writer.u2 w (Cp.size cls.pool);
  Array.iteri (fun i e -> if i > 0 then encode_cp_entry w e) cls.pool;
  Io.Writer.u2 w (Classfile.access_to_u16 cls.c_flags);
  Io.Writer.str w cls.name;
  (match cls.super with
  | None -> Io.Writer.u1 w 0
  | Some s ->
    Io.Writer.u1 w 1;
    Io.Writer.str w s);
  Io.Writer.u2 w (List.length cls.interfaces);
  List.iter (Io.Writer.str w) cls.interfaces;
  Io.Writer.u2 w (List.length cls.fields);
  List.iter (encode_field w) cls.fields;
  Io.Writer.u2 w (List.length cls.methods);
  List.iter (encode_method w) cls.methods;
  Io.Writer.u2 w (List.length cls.attributes);
  List.iter
    (fun (name, value) ->
      Io.Writer.str w name;
      Io.Writer.u4 w (String.length value);
      Io.Writer.raw w value)
    cls.attributes;
  Io.Writer.contents w

let class_size cls = String.length (class_to_bytes cls)
