(* Big-endian byte-level readers and writers used by the class-file
   encoder/decoder and by services that attach binary attributes. *)

exception Truncated of string
exception Overflow of string

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let u1 b v = Buffer.add_char b (Char.chr (v land 0xff))

  (* Counts, indices and offsets are u2 on the wire: a value that does
     not fit is a structural error in the class being emitted, and
     silently masking it would produce a syntactically valid but
     corrupt class file. Raise instead. *)
  let overflow what v =
    raise (Overflow (Printf.sprintf "%s: value %d exceeds 16 bits" what v))

  let u2 b v =
    if v < 0 || v > 0xffff then overflow "u2" v;
    u1 b (v lsr 8);
    u1 b (v land 0xff)

  let u4 b v =
    u1 b ((v lsr 24) land 0xff);
    u1 b ((v lsr 16) land 0xff);
    u1 b ((v lsr 8) land 0xff);
    u1 b (v land 0xff)

  let i4 b (v : int32) = u4 b (Int32.to_int v land 0xffffffff)

  let i2 b v =
    (* two's-complement 16-bit *)
    if v < -0x8000 || v > 0x7fff then overflow "i2" v;
    u2 b (v land 0xffff)

  let str b s =
    if String.length s > 0xffff then
      raise
        (Overflow
           (Printf.sprintf "str: string length %d exceeds 65535"
              (String.length s)));
    u2 b (String.length s);
    Buffer.add_string b s

  let raw b s = Buffer.add_string b s
  let contents = Buffer.contents
end

module Reader = struct
  (* A reader is a slice view [off, limit) of an underlying string;
     [sub] carves nested slices without copying the bytes. [pos] is an
     absolute index into [data], but every reported position (and
     [pos]/[remaining]) is relative to the slice, so errors read the
     same whether the bytes came from a whole string or a view. *)
  type t = { data : string; off : int; limit : int; mutable pos : int }

  let of_string data = { data; off = 0; limit = String.length data; pos = 0 }
  let pos r = r.pos - r.off
  let remaining r = r.limit - r.pos
  let at_end r = remaining r = 0

  let need r n what =
    if remaining r < n then
      raise
        (Truncated
           (Printf.sprintf "%s: need %d bytes at %d" what n (r.pos - r.off)))

  let u1 r =
    need r 1 "u1";
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u2 r =
    need r 2 "u2";
    let v = u1 r in
    (v lsl 8) lor u1 r

  let u4 r =
    need r 4 "u4";
    let a = u2 r in
    let b = u2 r in
    (a lsl 16) lor b

  let i4 r = Int32.of_int (u4 r)

  let i2 r =
    let v = u2 r in
    if v land 0x8000 <> 0 then v - 0x10000 else v

  let str r =
    let n = u2 r in
    need r n "str";
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let raw r n =
    need r n "raw";
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let sub r n =
    need r n "sub";
    let s = { data = r.data; off = r.pos; limit = r.pos + n; pos = r.pos } in
    r.pos <- r.pos + n;
    s

  let skip r n =
    need r n "skip";
    r.pos <- r.pos + n
end
