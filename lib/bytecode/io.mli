(** Big-endian byte-level readers and writers for the class-file wire
    format and binary attributes. *)

exception Truncated of string

exception Overflow of string
(** A value too wide for its wire field (u2 count/index/offset or
    length-prefixed string over 65535 bytes). Raised by {!Writer.u2},
    {!Writer.i2} and {!Writer.str} instead of silently masking. *)

module Writer : sig
  type t

  val create : unit -> t
  val u1 : t -> int -> unit

  val u2 : t -> int -> unit
  (** @raise Overflow when the value is outside [0, 65535]. *)

  val u4 : t -> int -> unit
  val i4 : t -> int32 -> unit

  val i2 : t -> int -> unit
  (** @raise Overflow when the value is outside [-32768, 32767]. *)

  val str : t -> string -> unit
  (** Length-prefixed (u2) string.
      @raise Overflow when the string is longer than 65535 bytes. *)

  val raw : t -> string -> unit
  val contents : t -> string
end

module Reader : sig
  type t

  val of_string : string -> t
  val pos : t -> int
  val remaining : t -> int
  val at_end : t -> bool
  val u1 : t -> int
  val u2 : t -> int
  val u4 : t -> int
  val i4 : t -> int32
  val i2 : t -> int
  val str : t -> string
  val raw : t -> int -> string

  val sub : t -> int -> t
  (** [sub r n] is a zero-copy reader over the next [n] bytes of [r],
      advancing [r] past them. Positions reported by the slice (and by
      [pos]) are relative to its start. *)

  val skip : t -> int -> unit
end
