(* MD5 (RFC 1321), implemented from the specification. Used by the
   signing service; the paper cites Rivest's MD5 as the digest for
   making injected checks inseparable from application code. *)

let s =
  [|
    7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
    5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
    4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
    6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21;
  |]

(* k.(i) = floor(abs(sin(i+1)) * 2^32); computed through Int64 because
   the values exceed Int32.max_int. *)
let k =
  Array.init 64 (fun i ->
      Int64.to_int32
        (Int64.of_float
           (4294967296.0 *. Float.abs (sin (Float.of_int (i + 1))))))

let rotl32 x n =
  Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let padded (msg : string) =
  let len = String.length msg in
  let bitlen = Int64.of_int (len * 8) in
  let padlen =
    let r = (len + 1) mod 64 in
    if r <= 56 then 56 - r + 1 else 64 - r + 56 + 1
  in
  let b = Buffer.create (len + padlen + 8) in
  Buffer.add_string b msg;
  Buffer.add_char b '\x80';
  for _ = 2 to padlen do
    Buffer.add_char b '\x00'
  done;
  (* little-endian 64-bit bit length *)
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen (8 * i)) 0xffL)))
  done;
  Buffer.contents b

let word_le data off =
  let byte i = Int32.of_int (Char.code data.[off + i]) in
  Int32.logor (byte 0)
    (Int32.logor
       (Int32.shift_left (byte 1) 8)
       (Int32.logor (Int32.shift_left (byte 2) 16) (Int32.shift_left (byte 3) 24)))

let digest_spec (msg : string) : string =
  let data = padded msg in
  let a0 = ref 0x67452301l
  and b0 = ref 0xefcdab89l
  and c0 = ref 0x98badcfel
  and d0 = ref 0x10325476l in
  let nblocks = String.length data / 64 in
  for blk = 0 to nblocks - 1 do
    let m = Array.init 16 (fun j -> word_le data ((blk * 64) + (j * 4))) in
    let a = ref !a0 and b = ref !b0 and c = ref !c0 and d = ref !d0 in
    for i = 0 to 63 do
      let f, g =
        if i < 16 then
          (Int32.logor (Int32.logand !b !c) (Int32.logand (Int32.lognot !b) !d), i)
        else if i < 32 then
          ( Int32.logor (Int32.logand !d !b) (Int32.logand (Int32.lognot !d) !c),
            ((5 * i) + 1) mod 16 )
        else if i < 48 then (Int32.logxor !b (Int32.logxor !c !d), ((3 * i) + 5) mod 16)
        else
          ( Int32.logxor !c (Int32.logor !b (Int32.lognot !d)),
            (7 * i) mod 16 )
      in
      let f' = Int32.add (Int32.add (Int32.add f !a) k.(i)) m.(g) in
      a := !d;
      d := !c;
      c := !b;
      b := Int32.add !b (rotl32 f' s.(i))
    done;
    a0 := Int32.add !a0 !a;
    b0 := Int32.add !b0 !b;
    c0 := Int32.add !c0 !c;
    d0 := Int32.add !d0 !d
  done;
  let out = Buffer.create 16 in
  List.iter
    (fun w ->
      for i = 0 to 3 do
        Buffer.add_char out
          (Char.chr
             (Int32.to_int (Int32.logand (Int32.shift_right_logical w (8 * i)) 0xffl)))
      done)
    [ !a0; !b0; !c0; !d0 ];
  Buffer.contents out

(* The digest sits on two hot paths — every served class is signed and
   fingerprinted, and every audit event seals the hash chain — so
   production calls go through the runtime's C MD5 ([Digest.string] is
   RFC 1321 MD5, so its output is byte-identical to the reference
   implementation above, which tests cross-check against it). *)
let digest (msg : string) : string = Digest.string msg

let hex_chars = "0123456789abcdef"

let to_hex (d : string) =
  let b = Bytes.create (2 * String.length d) in
  String.iteri
    (fun i c ->
      let x = Char.code c in
      Bytes.set b (2 * i) hex_chars.[x lsr 4];
      Bytes.set b ((2 * i) + 1) hex_chars.[x land 15])
    d;
  Bytes.unsafe_to_string b

let hex_digest msg = to_hex (digest msg)
