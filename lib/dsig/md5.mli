(** MD5 (RFC 1321), implemented from the specification. *)

val digest : string -> string
(** 16-byte raw digest. *)

val digest_spec : string -> string
(** The from-the-specification implementation; same output as
    {!digest}, kept as the readable reference and cross-checked against
    it in the test suite. *)

val to_hex : string -> string
val hex_digest : string -> string
