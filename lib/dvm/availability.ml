(* The availability experiment the paper's §5 replication argument
   calls for but never runs: application startup through the proxy
   under injected faults — link loss and jitter on the client's LAN,
   and a primary-proxy crash mid-startup — at 1 and 2 replicas.

   A single client fetches every class of a workload application
   sequentially through a replica facade. Each fetch runs under a
   timeout with bounded exponential-backoff retry; when the retry
   budget for a class is exhausted the client gives up on it (in the
   real client the error-propagation replacement class is served —
   see Dvm.Client.resilient_provider) and moves on. Everything is
   driven by one seeded fault plan, so a run is a pure function of
   (seed, loss, replicas, scenario): byte-identical across repeats. *)

type scenario = {
  sc_seed : int;
  sc_spec : Workloads.Appgen.spec;
  sc_timeout_us : int; (* per-attempt timeout *)
  sc_max_attempts : int;
  sc_base_backoff_us : int;
  sc_max_backoff_us : int;
  sc_jitter_max_us : int;
  (* Crash the primary at [fst] for [snd] µs; None = no crash. *)
  sc_crash_primary : (Simnet.Engine.time * Simnet.Engine.time) option;
  (* Fraction of the crashed proxy's cache that survives the restart. *)
  sc_cache_retained : float;
  sc_wan_latency : Simnet.Engine.time;
}

let default_scenario =
  {
    sc_seed = 23;
    sc_spec = Workloads.Apps.jlex;
    sc_timeout_us = 500_000;
    sc_max_attempts = 4;
    sc_base_backoff_us = 100_000;
    sc_max_backoff_us = 800_000;
    sc_jitter_max_us = 5_000;
    sc_crash_primary = None;
    sc_cache_retained = 0.0;
    sc_wan_latency = Simnet.Engine.ms 40;
  }

let crash_scenario =
  {
    default_scenario with
    sc_crash_primary = Some (Simnet.Engine.ms 400, Simnet.Engine.ms 2500);
  }

type point = {
  av_loss_pct : float;
  av_replicas : int;
  av_classes : int;
  av_startup_us : int64; (* virtual time to fetch every class *)
  av_requests : int; (* attempts issued *)
  av_retries : int;
  av_drops : int; (* transfers lost on the client LAN *)
  av_failovers : int; (* requests served by a non-primary *)
  av_degraded : int; (* classes that exhausted the retry budget *)
  av_trace : string list; (* the fault plan's injected-fault trace *)
}

let backoff_us sc ~attempt =
  min (sc.sc_base_backoff_us * (1 lsl min 20 (attempt - 1))) sc.sc_max_backoff_us

let run ?slo ?(scenario = default_scenario) ~loss_pct ~replicas () =
  let sc = scenario in
  let slo_record outcome now_us =
    match slo with
    | None -> ()
    | Some s -> Telemetry.Slo.record s ~now_us outcome
  in
  let app = Workloads.Apps.build_small sc.sc_spec in
  let engine = Simnet.Engine.create () in
  let plan = Simnet.Fault.create ~seed:sc.sc_seed in
  let lan = Simnet.Link.ethernet_10mb engine in
  Simnet.Link.set_faults lan ~plan ~drop_prob:(loss_pct /. 100.0)
    ~jitter_max_us:sc.sc_jitter_max_us ();
  let oracle =
    Verifier.Oracle.of_classes
      (Jvm.Bootlib.boot_classes () @ app.Workloads.Appgen.classes)
  in
  let pool =
    Array.init replicas (fun _ ->
        let services = Experiment.standard_services ~oracle () in
        Proxy.create engine
          ~origin:(Workloads.Appgen.origin app)
          ~origin_latency:(fun _ -> sc.sc_wan_latency)
          ~filters:services.Experiment.filters ())
  in
  let facade = Proxy.Replica.create engine pool in
  (match sc.sc_crash_primary with
  | None -> ()
  | Some (at, down_for) ->
    Simnet.Fault.schedule_host_faults plan pool.(0).Proxy.host
      ~on_restart:(fun () ->
        (* The restarted primary comes back cache-cold (or nearly):
           the measurable price of failing back. *)
        Proxy.Cache.drop_fraction pool.(0).Proxy.cache
          ~fraction:(1.0 -. sc.sc_cache_retained))
      ~schedule:[ (at, down_for) ]
      ());
  let classes = List.map fst (Workloads.Appgen.class_bytes app) in
  let requests = ref 0 in
  let retries = ref 0 in
  let degraded = ref 0 in
  let finished_at = ref 0L in
  let rec fetch_next = function
    | [] -> finished_at := Simnet.Engine.now engine
    | cls :: rest ->
      let rec attempt n =
        incr requests;
        let started = Simnet.Engine.now engine in
        let settled = ref false in
        (* One failure path for timeout, loss and Unavailable; the
           [settled] flag makes late replies and stale timeouts
           harmless. *)
        let fail_attempt () =
          if not !settled then begin
            settled := true;
            if n >= sc.sc_max_attempts then begin
              incr degraded;
              Telemetry.Global.incr "client.degraded";
              slo_record Telemetry.Slo.Failed (Simnet.Engine.now engine);
              fetch_next rest
            end
            else begin
              incr retries;
              Telemetry.Global.incr "client.retries";
              let b = backoff_us sc ~attempt:n in
              Telemetry.Global.observe "client.retry_backoff_us"
                (Int64.of_int b);
              Simnet.Engine.schedule engine ~delay:(Int64.of_int b) (fun () ->
                  attempt (n + 1))
            end
          end
        in
        Proxy.Replica.request facade ~cls (fun reply ->
            match reply with
            | Proxy.Bytes b ->
              (* The response crosses the client's (lossy) LAN; a drop
                 is discovered by the timeout. *)
              Simnet.Link.transfer lan ~bytes:(String.length b) (fun () ->
                  if not !settled then begin
                    settled := true;
                    Telemetry.Global.observe "client.request_us"
                      (Int64.sub (Simnet.Engine.now engine) started);
                    slo_record
                      (Telemetry.Slo.Fresh (String.length b))
                      (Simnet.Engine.now engine);
                    fetch_next rest
                  end)
            | Proxy.Not_found | Proxy.Unavailable | Proxy.Overloaded ->
              fail_attempt ());
        Simnet.Engine.schedule engine ~delay:(Int64.of_int sc.sc_timeout_us)
          fail_attempt
      in
      attempt 1
  in
  (* Kick off inside the event loop, not before it: spans opened during
     the first fetch must see the virtual clock (a pre-run dispatch
     would salt the latency histograms with wall-clock durations and
     break run-to-run reproducibility). *)
  Simnet.Engine.schedule_at engine 0L (fun () -> fetch_next classes);
  Simnet.Engine.run engine;
  {
    av_loss_pct = loss_pct;
    av_replicas = replicas;
    av_classes = List.length classes;
    av_startup_us = !finished_at;
    av_requests = !requests;
    av_retries = !retries;
    av_drops = lan.Simnet.Link.drops;
    av_failovers = facade.Proxy.Replica.failovers;
    av_degraded = !degraded;
    av_trace = Simnet.Fault.trace plan;
  }

let sweep ?slo ?scenario ~loss_pcts ~replica_counts () =
  List.concat_map
    (fun replicas ->
      List.map
        (fun loss_pct -> run ?slo ?scenario ~loss_pct ~replicas ())
        loss_pcts)
    replica_counts

(* Render a sweep as the bench/CLI table. *)
let print_table points =
  Printf.printf "%9s %9s %12s %9s %9s %9s %10s %9s\n" "Loss" "Replicas"
    "Startup(s)" "Requests" "Retries" "Drops" "Failovers" "Degraded";
  List.iter
    (fun p ->
      Printf.printf "%8.1f%% %9d %12.2f %9d %9d %9d %10d %9d\n" p.av_loss_pct
        p.av_replicas
        (Int64.to_float p.av_startup_us /. 1e6)
        p.av_requests p.av_retries p.av_drops p.av_failovers p.av_degraded)
    points
