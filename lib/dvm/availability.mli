(** Availability under injected faults (§5's replication argument,
    evaluated): application startup through 1..N replicated proxies
    with link loss, latency jitter, and an optional primary crash
    mid-startup. Fully deterministic for a fixed scenario seed. *)

type scenario = {
  sc_seed : int;
  sc_spec : Workloads.Appgen.spec;
  sc_timeout_us : int;  (** per-attempt timeout *)
  sc_max_attempts : int;
  sc_base_backoff_us : int;
  sc_max_backoff_us : int;
  sc_jitter_max_us : int;
  sc_crash_primary : (Simnet.Engine.time * Simnet.Engine.time) option;
      (** crash the primary at [fst] for [snd] µs *)
  sc_cache_retained : float;
      (** fraction of the crashed proxy's cache surviving restart *)
  sc_wan_latency : Simnet.Engine.time;
}

val default_scenario : scenario
(** jlex (small build), 500 ms timeout, 4 attempts, 100 ms base
    backoff, 5 ms jitter, no crash. *)

val crash_scenario : scenario
(** [default_scenario] plus a primary crash at t=400 ms lasting
    2.5 s with a cold-cache restart. *)

type point = {
  av_loss_pct : float;
  av_replicas : int;
  av_classes : int;
  av_startup_us : int64;  (** virtual time to fetch every class *)
  av_requests : int;  (** attempts issued *)
  av_retries : int;
  av_drops : int;  (** transfers lost on the client LAN *)
  av_failovers : int;  (** requests served by a non-primary *)
  av_degraded : int;  (** classes that exhausted the retry budget *)
  av_trace : string list;  (** the fault plan's injected-fault trace *)
}

val run :
  ?slo:Telemetry.Slo.t ->
  ?scenario:scenario ->
  loss_pct:float ->
  replicas:int ->
  unit ->
  point
(** [slo] receives one outcome per settled class fetch (served bytes
    as fresh, retry-budget exhaustion as failed) on the run's virtual
    clock, so a sweep can be summarized by the SLO monitor. *)

val sweep :
  ?slo:Telemetry.Slo.t ->
  ?scenario:scenario ->
  loss_pcts:float list ->
  replica_counts:int list ->
  unit ->
  point list

val print_table : point list -> unit
