(* Certified rewriting, end to end: rewrite the bundled workloads
   under a covering policy with certificate emission on, push the
   result through a real encode/decode round trip, and ask the
   translation validator ({!Analysis.Certify} instantiated by
   {!Security.Certifier}) to re-prove every elision and hoist from the
   wire image alone. The mutation harness then corrupts rewriter
   output in targeted ways and checks that the verifier or the
   certifier kills each mutant — the measurement that the gate
   actually gates. *)

module CF = Bytecode.Classfile

(* The workload-covering policy the elision bench uses: every worker
   class (one with a "hot" method) maps to a single per-app
   permission, so driver loops hold many sites of the same check and
   the elision/hoisting machinery has real work to do. *)
let covering_policy (app : Workloads.Appgen.app) =
  let perm = "work." ^ app.Workloads.Appgen.spec.Workloads.Appgen.name in
  let workers =
    List.filter
      (fun (c : CF.t) ->
        List.exists
          (fun (m : CF.meth) -> String.equal m.CF.m_name "hot")
          c.CF.methods)
      app.Workloads.Appgen.classes
  in
  let ops =
    List.map
      (fun (c : CF.t) ->
        Printf.sprintf {|<operation permission="%s" class="%s" method="*"/>|}
          perm c.CF.name)
      workers
  in
  Security.Policy_xml.parse
    (Printf.sprintf
       {|<policy default="allow">
           <domain name="apps"><grant permission="%s"/></domain>
           %s
           <principal classprefix="" domain="apps"/>
         </policy>|}
       perm
       (String.concat "\n" ops))

let summarize_reasons reasons =
  match reasons with
  | [] -> "certificate rejected"
  | r :: rest ->
    let head = Analysis.Certify.reason_to_string r in
    if rest = [] then head
    else Printf.sprintf "%s (+%d more)" head (List.length rest)

(* The pipeline gate: look up the class's certificate in the store the
   rewriter filled and re-prove it against the transformed image. *)
let gate ~policy ~certs : Proxy.Pipeline.gate =
 fun cf ->
  let cert = Analysis.Certificate.find certs cf.CF.name in
  match Security.Certifier.certify policy ?cert cf with
  | Ok _ -> None
  | Error reasons -> Some (summarize_reasons reasons)

(* --- Workload certification. --- *)

type report = {
  rp_apps : int;
  rp_classes : int;
  rp_methods : int;
  rp_sites : int;  (* protected resource-use instructions validated *)
  rp_live : int;  (* guarded by an adjacent live check *)
  rp_certified : int;  (* accepted via a re-proved certificate *)
  rp_hoists : int;  (* hoist certificates re-proved *)
  rp_cert_entries : int;  (* certificate entries emitted *)
  rp_elided : int;  (* checks the rewriter elided or hoisted away *)
  rp_failures : (string * string) list;  (* class, reason *)
}

let certify_app ~small spec =
  let app =
    if small then Workloads.Apps.build_small spec else Workloads.Apps.build spec
  in
  let policy = covering_policy app in
  let certs = Analysis.Certificate.create_store () in
  let counters = Security.Rewriter.fresh_counters () in
  let rewritten =
    List.map
      (fun cf ->
        Security.Rewriter.rewrite_class ~counters ~elide:true ~certs policy cf)
      app.Workloads.Appgen.classes
  in
  (app, policy, certs, counters, rewritten)

let certify_workloads ?(small = false) () : report =
  let rp = ref
      {
        rp_apps = 0;
        rp_classes = 0;
        rp_methods = 0;
        rp_sites = 0;
        rp_live = 0;
        rp_certified = 0;
        rp_hoists = 0;
        rp_cert_entries = 0;
        rp_elided = 0;
        rp_failures = [];
      }
  in
  List.iter
    (fun spec ->
      let _, policy, certs, counters, rewritten = certify_app ~small spec in
      rp := { !rp with rp_apps = !rp.rp_apps + 1;
              rp_elided = !rp.rp_elided + counters.Security.Rewriter.checks_elided };
      List.iter
        (fun cf ->
          (* The validator judges the wire image, not the in-memory
             value the rewriter produced. *)
          let cf =
            Bytecode.Decode.class_of_bytes (Bytecode.Encode.class_to_bytes cf)
          in
          let cert = Analysis.Certificate.find certs cf.CF.name in
          (match cert with
          | Some cc ->
            rp :=
              { !rp with
                rp_cert_entries =
                  !rp.rp_cert_entries + Analysis.Certificate.entry_count cc }
          | None -> ());
          match Security.Certifier.certify policy ?cert cf with
          | Ok s ->
            rp :=
              {
                !rp with
                rp_classes = !rp.rp_classes + 1;
                rp_methods = !rp.rp_methods + s.Analysis.Certify.cs_methods;
                rp_sites = !rp.rp_sites + s.Analysis.Certify.cs_sites;
                rp_live = !rp.rp_live + s.Analysis.Certify.cs_live;
                rp_certified =
                  !rp.rp_certified + s.Analysis.Certify.cs_certified;
                rp_hoists = !rp.rp_hoists + s.Analysis.Certify.cs_hoists;
              }
          | Error reasons ->
            rp :=
              {
                !rp with
                rp_classes = !rp.rp_classes + 1;
                rp_failures =
                  (cf.CF.name, summarize_reasons reasons) :: !rp.rp_failures;
              })
        rewritten)
    Workloads.Apps.all_specs;
  { !rp with rp_failures = List.rev !rp.rp_failures }

(* --- Mutation testing. --- *)

type kill = Killed_by_verifier | Killed_by_certifier | Survived

type mutation_result = {
  mu_class : string;
  mu_desc : string;  (* operator + location *)
  mu_kill : kill;
}

type mutation_report = {
  mt_seed : int64;
  mt_mutants : int;
  mt_killed_verifier : int;
  mt_killed_certifier : int;
  mt_survivors : mutation_result list;
  mt_results : mutation_result list;
}

let kill_rate r =
  if r.mt_mutants = 0 then 1.0
  else
    float_of_int (r.mt_killed_verifier + r.mt_killed_certifier)
    /. float_of_int r.mt_mutants

(* Per-class budget [count]; the per-class seed is derived from the
   run seed and a running class index so the mutant set is a pure
   function of (seed, workload build). *)
let mutation_run ?(small = true) ~seed ~count () : mutation_report =
  let results = ref [] in
  let class_ix = ref 0 in
  List.iter
    (fun spec ->
      let app, policy, certs, _, rewritten = certify_app ~small spec in
      let env = Security.Certifier.env policy in
      let oracle =
        Verifier.Oracle.of_classes
          (Jvm.Bootlib.boot_classes () @ app.Workloads.Appgen.classes)
      in
      List.iter
        (fun cf ->
          let ix = !class_ix in
          incr class_ix;
          let cert = Analysis.Certificate.find certs cf.CF.name in
          let mutants =
            Analysis.Mutate.mutants ~env
              ~seed:(Int64.add seed (Int64.of_int ix))
              ~count cf cert
          in
          List.iter
            (fun (mu : Analysis.Mutate.mutant) ->
              let kill =
                match
                  Verifier.Static_verifier.verify ~oracle
                    mu.Analysis.Mutate.mu_class
                with
                | Verifier.Static_verifier.Rejected _ -> Killed_by_verifier
                | Verifier.Static_verifier.Verified _ -> (
                  match
                    Security.Certifier.certify policy
                      ?cert:mu.Analysis.Mutate.mu_cert
                      mu.Analysis.Mutate.mu_class
                  with
                  | Error _ -> Killed_by_certifier
                  | Ok _ -> Survived)
              in
              results :=
                {
                  mu_class = cf.CF.name;
                  mu_desc =
                    Analysis.Mutate.mutation_to_string
                      mu.Analysis.Mutate.mu_mutation;
                  mu_kill = kill;
                }
                :: !results)
            mutants)
        rewritten)
    Workloads.Apps.all_specs;
  let results = List.rev !results in
  let count_kill k = List.length (List.filter (fun r -> r.mu_kill = k) results) in
  {
    mt_seed = seed;
    mt_mutants = List.length results;
    mt_killed_verifier = count_kill Killed_by_verifier;
    mt_killed_certifier = count_kill Killed_by_certifier;
    mt_survivors = List.filter (fun r -> r.mu_kill = Survived) results;
    mt_results = results;
  }
