(** Certified rewriting, end to end: rewrite the bundled workloads
    with certificate emission on, round-trip through encode/decode,
    and re-prove every elision with the translation validator. The
    mutation harness corrupts rewriter output in targeted ways and
    measures whether the verifier or the certifier kills each
    mutant. *)

val covering_policy : Workloads.Appgen.app -> Security.Policy.t
(** One per-app permission over every worker class — the policy the
    elision bench and the certification sweep share. *)

val gate :
  policy:Security.Policy.t ->
  certs:Analysis.Certificate.store ->
  Proxy.Pipeline.gate
(** Post-rewrite pipeline gate: re-proves the transformed class
    against its certificate from the store the rewriter filled. *)

type report = {
  rp_apps : int;
  rp_classes : int;
  rp_methods : int;
  rp_sites : int;  (** protected resource-use instructions validated *)
  rp_live : int;  (** guarded by an adjacent live check *)
  rp_certified : int;  (** accepted via a re-proved certificate *)
  rp_hoists : int;  (** hoist certificates re-proved *)
  rp_cert_entries : int;  (** certificate entries emitted *)
  rp_elided : int;  (** checks the rewriter elided or hoisted away *)
  rp_failures : (string * string) list;  (** class, reason *)
}

val certify_workloads : ?small:bool -> unit -> report
(** Rewrite + certify every class of every bundled workload
    ([small:false], the default, uses the full 401-class builds). *)

type kill = Killed_by_verifier | Killed_by_certifier | Survived

type mutation_result = {
  mu_class : string;
  mu_desc : string;  (** operator + location *)
  mu_kill : kill;
}

type mutation_report = {
  mt_seed : int64;
  mt_mutants : int;
  mt_killed_verifier : int;
  mt_killed_certifier : int;
  mt_survivors : mutation_result list;
  mt_results : mutation_result list;
}

val kill_rate : mutation_report -> float

val mutation_run :
  ?small:bool -> seed:int64 -> count:int -> unit -> mutation_report
(** Up to [count] mutants per class; the mutant set is a pure function
    of [(seed, workload build)]. [small] defaults to [true]. *)
