(* Seeded chaos harness for the proxy farm's overload-control layer.

   One [run] drives a 4-shard-style farm with overload-aware client
   sessions while a seeded schedule composes the failure modes the
   overload layer exists for: shard crash/restart windows, client-LAN
   loss and jitter, and a scripted load spike — a flash crowd of burst
   clients that triples the offered client population for the spike
   window. Every random choice — crash victims, crash times, loss
   decisions — comes from one [Simnet.Fault] splitmix64 stream, so a
   run is replayable bit-for-bit from its seed.

   [verify] runs the same configuration fault-free and checks the
   three invariants the ISSUE pins:

   1. integrity — every applet digest served under chaos equals the
      fault-free run's digest for that applet (faults may lose
      requests, never corrupt them);
   2. deadlines — no session served a response past its deadline
      (the sessions' [deadline_violations] tripwires stay 0);
   3. recovery — once faults clear, throughput in the tail window
      returns to at least [recovery_frac] of the fault-free run's.

   [spike_comparison] is the acceptance experiment: the same spiked
   run with the overload controls on (deadlines on the wire, admission
   shedding, breakers, hedging, retry budget) and off (deadline kept
   client-side only, so the farm works on doomed requests), compared
   by goodput — bytes served inside their deadlines per second. *)

type config = {
  ch_seed : int;
  ch_shards : int;
  ch_clients : int;
  ch_duration_s : int;
  ch_applets : int;
  ch_think_us : int64; (* per-client gap between fetches off-spike *)
  ch_budget_us : int64; (* per-fetch deadline budget *)
  ch_hedge_after_us : int64 option;
  ch_retry_budget : int; (* per-session retry+hedge token pool *)
  ch_spike_factor : int; (* total offered clients ×this inside the window *)
  ch_spike_start_s : int;
  ch_spike_len_s : int; (* 0 = no spike *)
  ch_crashes : int; (* crash/restart windows drawn from the seed *)
  ch_loss_pct : float; (* client-LAN loss, whole run *)
  ch_jitter_us : int; (* client-LAN propagation jitter bound *)
  ch_control : bool; (* overload controls on? *)
  ch_trace : bool; (* reset + enable distributed tracing for the run? *)
}

(* Sized so the fault-free run is healthy (p95 well inside the
   deadline budget at ~70% utilization) while the 3× flash crowd
   offers more than the farm's pipeline capacity for the whole spike:
   without admission control, queueing delay blows through every
   deadline and the shards burn their CPU on doomed requests; with it,
   shedding keeps admitted requests inside budget. *)
let default_config =
  {
    ch_seed = 42;
    ch_shards = 4;
    ch_clients = 40;
    ch_duration_s = 40;
    ch_applets = 12;
    ch_think_us = 1_000_000L;
    ch_budget_us = 800_000L;
    ch_hedge_after_us = Some 300_000L;
    ch_retry_budget = 8;
    ch_spike_factor = 3;
    ch_spike_start_s = 6;
    ch_spike_len_s = 22;
    ch_crashes = 2;
    ch_loss_pct = 0.5;
    ch_jitter_us = 2_000;
    ch_control = true;
    ch_trace = false;
  }

type outcome = {
  co_seed : int;
  co_fetches : int;
  co_served : int; (* fresh, in-deadline serves *)
  co_bytes : int; (* bytes of those serves *)
  co_goodput_bps : float; (* in-deadline bytes/s over the whole run *)
  co_stale_served : int;
  co_failed : int;
  co_hedges : int;
  co_hedge_wins : int;
  co_retries : int;
  co_shed : int; (* Overloaded replies clients saw *)
  co_breaker_trips : int;
  co_deadline_violations : int; (* must be 0 *)
  co_tail_served : int; (* fresh serves in the final quarter *)
  co_digests : (string * string) list; (* applet key -> MD5, sorted *)
  co_fault_trace : string list;
  co_trace_digest : string; (* MD5 over the engine event trace *)
  co_p50_us : int64; (* exact quantiles over fresh-serve latencies *)
  co_p95_us : int64;
  co_p99_us : int64;
  co_slo : Telemetry.Slo.report; (* SLO monitor state at the horizon *)
}

(* Exact quantile over the collected latencies (unlike the log₂
   histogram's bucket bounds): sort and index. *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0L
  else
    let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

let stale_key cls =
  match String.index_opt cls '/' with
  | Some i -> String.sub cls 0 i
  | None -> cls

let run (cfg : config) : outcome =
  if cfg.ch_shards <= 0 then invalid_arg "Chaos.run: shards must be positive";
  if cfg.ch_trace then begin
    (* Fresh collector per run so trace/span ids (and thus exports)
       are a pure function of the seed. *)
    Telemetry.Trace.reset ();
    Telemetry.Trace.enable ()
  end;
  let engine = Simnet.Engine.create () in
  Simnet.Engine.set_tracing engine true;
  (* Chaos runs are long and every observable event lands in the trace;
     bound the buffer so a runaway experiment degrades to a dropped-
     records count instead of unbounded memory. The cap is far above
     what any pinned seed produces — acceptance traces see every
     record. *)
  Simnet.Engine.set_trace_cap engine (Some 1_000_000);
  let plan = Simnet.Fault.create ~seed:cfg.ch_seed in
  let origin, _wan = Scaling.applet_workload ~applet_count:cfg.ch_applets ~seed:cfg.ch_seed in
  (* Intranet deployment: the origin is the organization's file store a
     few ms away, so request latency is dominated by farm queueing and
     pipeline work — the regime overload control governs. The WAN
     applet latencies would put most fetches past any reasonable
     deadline before the farm even saw them. *)
  let origin_latency _ = Simnet.Engine.ms 10 in
  let filters = Scaling.standard_filters () in
  (* Unique per-fetch class names keep the *simulated* cache out of the
     picture — every fetch is real pipeline work in the cost model —
     but the host CPU shares one outcome memo across the pool: the
     standard stack is effect-free apart from telemetry, so identical
     applet bytes replay the first run's tape instead of re-verifying.
     Digests, costs and counters are byte-identical either way. *)
  let memo = Proxy.Pipeline.Memo.create () in
  let pool =
    Array.init cfg.ch_shards (fun i ->
        Proxy.create engine ~cache_capacity:0 ~memo
          ~host_name:(Printf.sprintf "shard%d" i)
          ~origin ~origin_latency ~filters ())
  in
  let farm = Proxy.Farm.create engine pool in
  Array.iteri
    (fun i p ->
      let share =
        (cfg.ch_clients / cfg.ch_shards)
        + (if i < cfg.ch_clients mod cfg.ch_shards then 1 else 0)
      in
      Simnet.Host.allocate p.Proxy.host (share * Scaling.per_client_state_bytes))
    pool;
  let lan = Simnet.Link.ethernet_10mb engine in
  if cfg.ch_loss_pct > 0.0 || cfg.ch_jitter_us > 0 then
    Simnet.Link.set_faults lan ~plan ~drop_prob:(cfg.ch_loss_pct /. 100.0)
      ~jitter_max_us:cfg.ch_jitter_us ();
  let horizon = Simnet.Engine.sec cfg.ch_duration_s in
  (* Crash windows: [ch_crashes] victims and times drawn from the
     seed, confined to the middle half of the run so the tail window
     is fault-free and recovery is measurable. *)
  let mid_start = Int64.div horizon 4L and mid_len = Int64.div horizon 2L in
  for _ = 1 to cfg.ch_crashes do
    let victim = Simnet.Fault.range plan ~max:cfg.ch_shards in
    let crash_at =
      Int64.add mid_start
        (Int64.of_int (Simnet.Fault.range plan ~max:(Int64.to_int mid_len)))
    in
    let down_for =
      Int64.of_int (1_000_000 + Simnet.Fault.range plan ~max:2_000_000)
    in
    Simnet.Fault.schedule_host_faults plan pool.(victim).Proxy.host
      ~schedule:[ (crash_at, down_for) ]
      ()
  done;
  let spike_start = Simnet.Engine.sec cfg.ch_spike_start_s in
  let spike_end =
    Int64.add spike_start (Simnet.Engine.sec cfg.ch_spike_len_s)
  in
  let in_spike now =
    cfg.ch_spike_len_s > 0 && cfg.ch_spike_factor > 1
    && Int64.compare now spike_start >= 0
    && Int64.compare now spike_end < 0
  in
  (* The flash crowd: (spike_factor - 1) × clients extra burst
     sessions that fetch only inside the spike window, so offered
     client population is spike_factor × the base during the spike. *)
  let burst =
    if cfg.ch_spike_len_s > 0 && cfg.ch_spike_factor > 1 then
      (cfg.ch_spike_factor - 1) * cfg.ch_clients
    else 0
  in
  (* One SLO monitor for the whole client population; its window is
     the recovery tail, so the report shows steady-state health. *)
  let slo =
    Telemetry.Slo.create
      ~window_s:(max 1 (cfg.ch_duration_s / 4))
      ~objective:0.99 ()
  in
  let sessions =
    Array.init (cfg.ch_clients + burst) (fun _ ->
        Client.Session.create ~budget_us:cfg.ch_budget_us
          ?hedge_after_us:(if cfg.ch_control then cfg.ch_hedge_after_us else None)
          ~advertise_deadline:cfg.ch_control
          ~retry_budget:(if cfg.ch_control then cfg.ch_retry_budget else 0)
          ~deliver:(fun ~bytes k -> Simnet.Link.transfer lan ~bytes k)
          ~slo ~stale_key engine farm)
  in
  (* Per-applet digest of fresh serves; divergence inside one run is a
     single-flight/caching bug and fatal. *)
  let served : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let latencies = ref [] in
  let tail_start = Int64.sub horizon (Int64.div horizon 4L) in
  let tail_served = ref 0 in
  let rec client_loop ~burst:is_burst id iter =
    (* Burst clients live only inside the spike window. *)
    if (not is_burst) || in_spike (Simnet.Engine.now engine) then begin
      let k = (id + (iter * 37)) mod cfg.ch_applets in
      let applet_key = Printf.sprintf "a%d" k in
      (* Unique names: caching off, every fetch is real pipeline work. *)
      let name = Printf.sprintf "%s/c%d-i%d" applet_key id iter in
      let started = Simnet.Engine.now engine in
      Client.Session.fetch sessions.(id) ~cls:name (fun outcome ->
          let now = Simnet.Engine.now engine in
          (match outcome with
          | Client.Session.Fresh b ->
            Simnet.Engine.record engine
              (Printf.sprintf "serve %s -> c%d" name id);
            let digest = Dsig.Md5.digest b in
            (match Hashtbl.find_opt served applet_key with
            | Some d when not (String.equal d digest) ->
              failwith ("Chaos.run: divergent bytes for " ^ applet_key)
            | _ -> Hashtbl.replace served applet_key digest);
            latencies := Int64.sub now started :: !latencies;
            if Int64.compare now tail_start >= 0 then incr tail_served
          | Client.Session.Stale _ | Client.Session.Failed -> ());
          Simnet.Engine.schedule engine ~delay:cfg.ch_think_us (fun () ->
              client_loop ~burst:is_burst id (iter + 1)))
    end
  in
  for id = 0 to cfg.ch_clients - 1 do
    (* Stagger arrivals over the first second. *)
    Simnet.Engine.schedule_at engine
      (Int64.of_int (id * 1_000_000 / max 1 cfg.ch_clients))
      (fun () -> client_loop ~burst:false id 0)
  done;
  for b = 0 to burst - 1 do
    (* The flash crowd floods in over the spike's first second. *)
    Simnet.Engine.schedule_at engine
      (Int64.add spike_start (Int64.of_int (b * 1_000_000 / max 1 burst)))
      (fun () -> client_loop ~burst:true (cfg.ch_clients + b) 0)
  done;
  Simnet.Engine.run ~until:horizon engine;
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 sessions in
  let bytes = sum (fun s -> s.Client.Session.bytes_served) in
  let lat = Array.of_list !latencies in
  Array.sort Int64.compare lat;
  {
    co_seed = cfg.ch_seed;
    co_fetches = sum (fun s -> s.Client.Session.fetches);
    co_served = sum (fun s -> s.Client.Session.served);
    co_bytes = bytes;
    co_goodput_bps =
      Float.of_int bytes /. Float.max 1e-9 (Simnet.Engine.to_sec horizon);
    co_stale_served = sum (fun s -> s.Client.Session.stale_served);
    co_failed = sum (fun s -> s.Client.Session.failed);
    co_hedges = sum (fun s -> s.Client.Session.hedges);
    co_hedge_wins = sum (fun s -> s.Client.Session.hedge_wins);
    co_retries = sum (fun s -> s.Client.Session.retries);
    co_shed = sum (fun s -> s.Client.Session.overloaded_seen);
    co_breaker_trips =
      (let n = ref 0 in
       for i = 0 to cfg.ch_shards - 1 do
         n := !n + Proxy.Breaker.trips (Proxy.Farm.breaker farm i)
       done;
       !n);
    co_deadline_violations =
      sum (fun s -> s.Client.Session.deadline_violations);
    co_tail_served = !tail_served;
    co_digests =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) served []);
    co_fault_trace = Simnet.Fault.trace plan;
    co_trace_digest =
      Dsig.Md5.digest
        (String.concat "\n"
           (List.map
              (fun (t, l) -> Printf.sprintf "%Ld %s" t l)
              (Simnet.Engine.trace engine)));
    co_p50_us = exact_quantile lat 0.50;
    co_p95_us = exact_quantile lat 0.95;
    co_p99_us = exact_quantile lat 0.99;
    co_slo = Telemetry.Slo.report slo ~now_us:horizon;
  }

(* --- The three invariants. --- *)

type verdict = {
  v_reference : outcome; (* fault-free, spike-free *)
  v_chaotic : outcome;
  v_digests_ok : bool;
  v_no_late_serves : bool;
  v_recovered : bool;
}

let ok v = v.v_digests_ok && v.v_no_late_serves && v.v_recovered

let fault_free cfg =
  { cfg with ch_crashes = 0; ch_loss_pct = 0.0; ch_jitter_us = 0; ch_spike_len_s = 0 }

let verify ?(recovery_frac = 0.5) (cfg : config) : verdict =
  let reference = run (fault_free cfg) in
  let chaotic = run cfg in
  (* Integrity: compare on the applet keys both runs served — the
     bytes are a pure function of the applet, so any mismatch is
     corruption, not coverage. *)
  let digests_ok =
    List.for_all
      (fun (key, digest) ->
        match List.assoc_opt key reference.co_digests with
        | Some d -> String.equal d digest
        | None -> true)
      chaotic.co_digests
  in
  {
    v_reference = reference;
    v_chaotic = chaotic;
    v_digests_ok = digests_ok;
    v_no_late_serves =
      chaotic.co_deadline_violations = 0
      && reference.co_deadline_violations = 0;
    v_recovered =
      Float.of_int chaotic.co_tail_served
      >= recovery_frac *. Float.of_int reference.co_tail_served;
  }

(* --- The acceptance experiment: overload control on vs off under the
   same spike. --- *)

type comparison = {
  cmp_control : outcome;
  cmp_baseline : outcome;
  cmp_goodput_ratio : float; (* control / baseline *)
}

let spike_comparison (cfg : config) : comparison =
  let control = run { cfg with ch_control = true } in
  let baseline = run { cfg with ch_control = false } in
  {
    cmp_control = control;
    cmp_baseline = baseline;
    cmp_goodput_ratio =
      control.co_goodput_bps /. Float.max 1e-9 baseline.co_goodput_bps;
  }

(* --- The control-plane scenario: policy bumps under partition and
   split brain. ---

   A farm with warm caches (per-shard L1 plus the shared L2) serves a
   fixed applet set while the control plane replicates a security-
   policy bump and its cache invalidations to every shard. The seeded
   schedule cuts the victim shard's *control* links — its data path
   stays up, the split-brain case: the farm keeps routing to a shard
   that can no longer hear the leader — and optionally crash/restarts
   another shard so it must recover the current version and pending
   invalidations from the leader's log rather than the stale L2.

   The machine-checked invariant: no fetch *issued after* the bump
   committed is served bytes rewritten under the revoked version.
   (Fetches already in flight at the commit are exempt — the lease
   bound is about when a shard stops accepting new work.) It is
   checked offline against pure pipeline runs: each applet's body is
   rewritten under every version's stack, so each served digest maps
   to the set of versions that produce it, and a violation is a fresh
   serve, issued when [committed_version >= v2], whose digest only old
   stacks produce. *)

type control_config = {
  cc_seed : int;
  cc_shards : int;
  cc_clients : int;
  cc_duration_s : int;
  cc_applets : int;
  cc_think_us : int64;
  cc_budget_us : int64;
  cc_retry_budget : int;
  cc_cache_mb : int; (* per-shard L1 and shared L2 capacity *)
  cc_partitions : int; (* control-link partition windows; the first spans the bump *)
  cc_partition_len_s : int;
  cc_bump_at_s : int; (* when the leader proposes the new policy version *)
  cc_restart_shard : bool; (* crash/restart one shard, drawn from the seed *)
  cc_lease_us : int64;
  cc_hb_interval_us : int64;
  cc_commit_margin_us : int64;
  cc_churn_s : int; (* propose an invalidation every N s (0 = off) *)
  cc_snapshot_every : int; (* committed entries per snapshot fold *)
  cc_leader_crash : bool; (* crash the leased leader just after the bump *)
  cc_leader_partition : bool; (* partition the leader late; stale-term wake-up *)
  cc_trace : bool;
}

let default_control_config =
  {
    cc_seed = 7;
    cc_shards = 4;
    cc_clients = 24;
    cc_duration_s = 30;
    cc_applets = 8;
    cc_think_us = 500_000L;
    cc_budget_us = 2_000_000L;
    cc_retry_budget = 8;
    cc_cache_mb = 16;
    cc_partitions = 2;
    cc_partition_len_s = 3;
    cc_bump_at_s = 12;
    cc_restart_shard = true;
    cc_lease_us = 1_000_000L;
    cc_hb_interval_us = 250_000L;
    cc_commit_margin_us = 100_000L;
    cc_churn_s = 1;
    cc_snapshot_every = 4;
    cc_leader_crash = true;
    cc_leader_partition = true;
    cc_trace = false;
  }

type control_outcome = {
  cn_seed : int;
  cn_fetches : int;
  cn_served : int; (* fresh serves *)
  cn_stale_served : int;
  cn_failed : int;
  cn_shed : int;
  cn_base_version : int;
  cn_new_version : int;
  cn_commit_us : int64; (* when the bump committed (0 = never) *)
  cn_revoked_serves : int; (* fresh serves of revoked bytes issued after commit — must be 0 *)
  cn_inflight_exempt : int; (* old-version serves issued before the commit *)
  cn_fence_rejects : int;
  cn_resyncs : int;
  cn_stale_drops : int; (* versioned cache lookups that dropped a stale entry *)
  cn_invalidations : int; (* explicit Cache.remove hits *)
  cn_heartbeats : int;
  cn_commits : int;
  cn_term : int; (* highest term reached *)
  cn_member_terms : int list;
  cn_elections : int;
  cn_leader_changes : int;
  cn_stepdowns : int;
  cn_redrives : int;
  cn_compactions : int;
  cn_snapshot_installs : int;
  cn_max_leased : int; (* max simultaneous leased leaders seen — must be <= 1 *)
  cn_term_regressions : int; (* per-member term decreases seen — must be 0 *)
  cn_replay_ok : bool;
      (* converged, and every member's state digest equals a full-log
         replay of the authoritative log — snapshot catch-up invariant *)
  cn_converged : bool; (* every member applied the full log, at the new version, leased *)
  cn_member_versions : int list;
  cn_changed_applets : string list; (* applets whose bytes differ across versions *)
  cn_digests : (string * string list) list; (* applet -> sorted distinct served digests *)
  cn_fault_trace : string list;
  cn_trace_digest : string;
}

let run_control (cfg : control_config) : control_outcome =
  if cfg.cc_shards <= 0 then
    invalid_arg "Chaos.run_control: shards must be positive";
  if cfg.cc_trace then begin
    Telemetry.Trace.reset ();
    Telemetry.Trace.enable ()
  end;
  let engine = Simnet.Engine.create () in
  Simnet.Engine.set_tracing engine true;
  Simnet.Engine.set_trace_cap engine (Some 1_000_000);
  let plan = Simnet.Fault.create ~seed:cfg.cc_seed in
  let origin, _wan =
    Scaling.applet_workload ~applet_count:cfg.cc_applets ~seed:cfg.cc_seed
  in
  let origin_latency _ = Simnet.Engine.ms 10 in
  (* Two policy versions: the standard policy, and the same policy
     tightened with audited operations on two specific applets' kernel
     entry points — an operation-map change, so the rewriter starts
     instrumenting those call sites and the rewritten bytes genuinely
     differ for exactly those applets. The rest exercise the
     unchanged-digest half of the invariant: partitions may change who
     serves them, never the bytes. *)
  let policy_v1 = Experiment.standard_policy in
  let tightened = List.filter (fun k -> k < cfg.cc_applets) [ 1; 4 ] in
  let policy_v2 =
    List.fold_left
      (fun p k ->
        Security.Policy.with_operation p
          {
            Security.Policy.op_permission = "applet.step";
            op_class = Printf.sprintf "applet/A%03d/Kernel" k;
            op_method = "step";
            op_resource_arg = false;
          })
      policy_v1 tightened
  in
  let v1 = policy_v1.Security.Policy.version
  and v2 = policy_v2.Security.Policy.version in
  let stack_v1 = Scaling.filters_for policy_v1
  and stack_v2 = Scaling.filters_for policy_v2 in
  let stack_of v = if v >= v2 then stack_v2 else stack_v1 in
  (* Warm-cache serving: per-shard L1s plus one shared L2, fixed
     request names, no memo — stale hits must actually recompute. *)
  let l2 = Proxy.Cache.create ~capacity:(cfg.cc_cache_mb * 1024 * 1024) in
  let pool =
    Array.init cfg.cc_shards (fun i ->
        Proxy.create engine
          ~cache_capacity:(cfg.cc_cache_mb * 1024 * 1024)
          ~l2
          ~host_name:(Printf.sprintf "shard%d" i)
          ~origin ~origin_latency ~filters:stack_v1 ())
  in
  Array.iter (fun p -> p.Proxy.policy_version <- v1) pool;
  let farm = Proxy.Farm.create engine pool in
  Array.iteri
    (fun i p ->
      let share =
        (cfg.cc_clients / cfg.cc_shards)
        + (if i < cfg.cc_clients mod cfg.cc_shards then 1 else 0)
      in
      Simnet.Host.allocate p.Proxy.host (share * Scaling.per_client_state_bytes))
    pool;
  let horizon = Simnet.Engine.sec cfg.cc_duration_s in
  (* The control plane: per-member heartbeat/ack links over the farm
     LAN fabric. Applying an entry swaps the shard's filter stack and
     version, or drops the named class from its L1 and the shared L2. *)
  let ctl =
    Proxy.Control.create engine ~lease_us:cfg.cc_lease_us
      ~hb_interval_us:cfg.cc_hb_interval_us
      ~commit_margin_us:cfg.cc_commit_margin_us
      ~snapshot_threshold:(max 1 cfg.cc_snapshot_every) ~initial_version:v1 ()
  in
  let ctl_links =
    Array.mapi
      (fun i p ->
        let link name =
          Simnet.Link.create engine
            ~name:(Printf.sprintf "ctl-%s-shard%d" name i)
            ~bandwidth_bps:10_000_000 ~latency:(Simnet.Engine.us 500)
        in
        let lto = link "to" and lfrom = link "from" in
        let mid =
          Proxy.Control.add_member ctl
            ~name:p.Proxy.host.Simnet.Host.name ~host:p.Proxy.host
            ~link_to:lto ~link_from:lfrom
            ~apply:(fun entry ->
              match entry with
              | Proxy.Control.Set_version v ->
                p.Proxy.filters <- stack_of v;
                p.Proxy.policy_version <- v
              | Proxy.Control.Invalidate key ->
                ignore (Proxy.Cache.remove p.Proxy.cache key);
                ignore (Proxy.Cache.remove l2 key))
        in
        p.Proxy.serving_allowed <- (fun () -> Proxy.Control.member_ok ctl mid);
        (lto, lfrom, mid))
      pool
  in
  Proxy.Control.start ctl ~until:horizon;
  let bump_at = Simnet.Engine.sec cfg.cc_bump_at_s in
  let mid_start = Int64.div horizon 4L and mid_len = Int64.div horizon 2L in
  (* Partition windows on the victim's control links only — the data
     path stays up, so the farm keeps routing to a shard that cannot
     hear the leader until its lease lapses and the fence trips. The
     first window is pinned to span the bump (the interesting
     interleaving); the rest are drawn from the seed inside the middle
     half. *)
  for w = 0 to cfg.cc_partitions - 1 do
    let victim = Simnet.Fault.range plan ~max:cfg.cc_shards in
    let lto, lfrom, _ = ctl_links.(victim) in
    let len = Simnet.Engine.sec cfg.cc_partition_len_s in
    let start =
      if w = 0 then Int64.sub bump_at (Simnet.Engine.sec 1)
      else
        Int64.add mid_start
          (Int64.of_int (Simnet.Fault.range plan ~max:(Int64.to_int mid_len)))
    in
    Simnet.Fault.schedule_partition plan engine
      ~what:(Printf.sprintf "ctl shard%d" victim)
      ~set:(fun v ->
        Simnet.Link.set_partitioned lto v;
        Simnet.Link.set_partitioned lfrom v)
      ~schedule:[ (start, len) ]
      ()
  done;
  (* One crash/restart window: the shard reboots with its L1 gone and
     its policy state back at the base version — everything it knows
     again it must re-learn from the leader's log before the control
     plane lets it serve. The shared L2 deliberately survives: the
     version stamps are what keep its old entries from being
     resurrected. *)
  if cfg.cc_restart_shard then begin
    let victim = Simnet.Fault.range plan ~max:cfg.cc_shards in
    let p = pool.(victim) in
    let _, _, mid = ctl_links.(victim) in
    let crash_at =
      Int64.add mid_start
        (Int64.of_int (Simnet.Fault.range plan ~max:(Int64.to_int mid_len)))
    in
    let down_for =
      Int64.of_int (1_000_000 + Simnet.Fault.range plan ~max:2_000_000)
    in
    Simnet.Fault.schedule_host_faults plan p.Proxy.host
      ~on_restart:(fun () ->
        Proxy.Cache.clear p.Proxy.cache;
        p.Proxy.filters <- stack_v1;
        p.Proxy.policy_version <- v1;
        Proxy.Control.mark_restarted ctl mid)
      ~schedule:[ (crash_at, down_for) ]
      ()
  end;
  (* The bump itself: the new version plus explicit invalidations for
     the keys whose bytes the bump changes, replicated through the
     log. The other applets' cached entries are left to the version
     stamps — their first post-bump touch is a stale drop and a
     recompute that regenerates identical bytes. *)
  (* Proposals go to whichever member holds the leadership lease; with
     elections in play there may transiently be none (mid-campaign,
     leader partitioned), so every proposer retries until a leased
     leader accepts. Retrying a lost entry is safe: both entry kinds
     are idempotent joins, so a duplicate is invisible in the final
     state. *)
  let rec propose_until entry k =
    match Proxy.Control.propose ctl entry with
    | Some id -> k id
    | None ->
      Simnet.Engine.schedule engine ~delay:200_000L (fun () ->
          propose_until entry k)
  in
  let bump_id = ref 0 in
  Simnet.Engine.schedule_at engine bump_at (fun () ->
      Simnet.Engine.record engine (Printf.sprintf "propose set-version %d" v2);
      propose_until (Proxy.Control.Set_version v2) (fun id ->
          bump_id := id);
      List.iter
        (fun k ->
          propose_until
            (Proxy.Control.Invalidate (Printf.sprintf "a%d/s" k))
            (fun _ -> ()))
        tightened);
  (* Background invalidation churn keeps the log growing so compaction
     actually triggers mid-run: rotating keys of *unchanged* applets,
     whose recompute regenerates identical bytes — the log history
     gets folded away while the serving invariant stays checkable. *)
  if cfg.cc_churn_s > 0 then begin
    let period = Simnet.Engine.sec cfg.cc_churn_s in
    let rec churn i at =
      if Int64.compare at horizon < 0 then
        Simnet.Engine.schedule_at engine at (fun () ->
            propose_until
              (Proxy.Control.Invalidate
                 (Printf.sprintf "a%d/s" (i mod cfg.cc_applets)))
              (fun _ -> ());
            churn (i + 1) (Int64.add at period))
    in
    churn 0 (Simnet.Engine.sec (min 2 cfg.cc_duration_s))
  end;
  (* Leader crash just after the bump: whoever holds the lease when the
     proposal is still working toward commit goes down mid-commit, and
     the new leader must re-drive the uncommitted suffix under its own
     term. The victim restarts cold (L1 gone, base policy) and rejoins
     through the snapshot + suffix path: by the time it returns the
     survivors' churn commits have carried the snapshot fold past its
     crash position. *)
  if cfg.cc_leader_crash then begin
    let crash_at = Int64.add bump_at 200_000L in
    let down_for =
      Int64.of_int (6_000_000 + Simnet.Fault.range plan ~max:2_000_000)
    in
    Simnet.Engine.schedule_at engine crash_at (fun () ->
        match Proxy.Control.leader ctl with
        | None -> ()
        | Some lid ->
          let p = pool.(lid) in
          let _, _, mid = ctl_links.(lid) in
          Simnet.Fault.record plan ~at:crash_at
            (Printf.sprintf "leader-crash shard%d for %Ldus" lid down_for);
          Simnet.Host.crash p.Proxy.host;
          Simnet.Engine.schedule engine ~delay:down_for (fun () ->
              Simnet.Host.restart p.Proxy.host;
              Proxy.Cache.clear p.Proxy.cache;
              p.Proxy.filters <- stack_v1;
              p.Proxy.policy_version <- v1;
              Proxy.Control.mark_restarted ctl mid))
  end;
  (* Leader partition late in the run: the leased leader is cut off,
     loses its lease, the rest elect over it — and when the window
     heals the old leader wakes up with a stale term and must step
     down rather than split the brain. *)
  if cfg.cc_leader_partition then begin
    let at = Int64.add bump_at (Simnet.Engine.sec 6) in
    let len = Simnet.Engine.sec 2 in
    Simnet.Engine.schedule_at engine at (fun () ->
        match Proxy.Control.leader ctl with
        | None -> ()
        | Some lid ->
          let lto, lfrom, _ = ctl_links.(lid) in
          Simnet.Fault.record plan ~at
            (Printf.sprintf "leader-partition shard%d for %Ldus" lid len);
          Simnet.Link.set_partitioned lto true;
          Simnet.Link.set_partitioned lfrom true;
          Simnet.Engine.schedule engine ~delay:len (fun () ->
              Simnet.Fault.record plan ~at:(Int64.add at len)
                (Printf.sprintf "leader-partition shard%d healed" lid);
              Simnet.Link.set_partitioned lto false;
              Simnet.Link.set_partitioned lfrom false))
  end;
  (* Election-safety probes: sample every 100 ms of virtual time. The
     lease arithmetic guarantees disjointness continuously; the probe
     machine-checks it at every sampled instant, along with per-member
     term monotonicity. *)
  let max_leased = ref 0 and term_regressions = ref 0 in
  let last_terms = Array.make cfg.cc_shards 0 in
  let rec probe at =
    if Int64.compare at horizon <= 0 then
      Simnet.Engine.schedule_at engine at (fun () ->
          let n = List.length (Proxy.Control.leased_leaders ctl) in
          if n > !max_leased then max_leased := n;
          Array.iteri
            (fun i (_, _, mid) ->
              let tm = Proxy.Control.member_term ctl mid in
              if tm < last_terms.(i) then incr term_regressions;
              last_terms.(i) <- tm)
            ctl_links;
          probe (Int64.add at 100_000L))
  in
  probe 0L;
  let lan = Simnet.Link.ethernet_10mb engine in
  let sessions =
    Array.init cfg.cc_clients (fun _ ->
        Client.Session.create ~budget_us:cfg.cc_budget_us
          ~advertise_deadline:true ~retry_budget:cfg.cc_retry_budget
          ~deliver:(fun ~bytes k -> Simnet.Link.transfer lan ~bytes k)
          ~stale_key engine farm)
  in
  (* Fixed shared names keep the caches hot: [a<k>/s] for applet k.
     Each fresh serve is recorded with the committed version at issue
     time; the invariant is evaluated offline after the run. *)
  let records = ref [] in
  let rec client_loop id iter =
    let k = (id + (iter * 37)) mod cfg.cc_applets in
    let applet_key = Printf.sprintf "a%d" k in
    let name = Printf.sprintf "%s/s" applet_key in
    let v_at_issue = Proxy.Control.committed_version ctl in
    Client.Session.fetch sessions.(id) ~cls:name (fun outcome ->
        (match outcome with
        | Client.Session.Fresh b ->
          Simnet.Engine.record engine
            (Printf.sprintf "serve %s @v%d -> c%d" name v_at_issue id);
          records := (applet_key, Dsig.Md5.digest b, v_at_issue) :: !records
        | Client.Session.Stale _ | Client.Session.Failed -> ());
        Simnet.Engine.schedule engine ~delay:cfg.cc_think_us (fun () ->
            client_loop id (iter + 1)))
  in
  for id = 0 to cfg.cc_clients - 1 do
    Simnet.Engine.schedule_at engine
      (Int64.of_int (id * 1_000_000 / max 1 cfg.cc_clients))
      (fun () -> client_loop id 0)
  done;
  Simnet.Engine.run ~until:horizon engine;
  (* Offline invariant check against pure pipeline runs: map each
     applet to its rewritten digest under every version's stack. *)
  let expected =
    Array.init cfg.cc_applets (fun k ->
        let body =
          match origin (Printf.sprintf "a%d/s" k) with
          | Some b -> b
          | None -> failwith "Chaos.run_control: origin lost an applet"
        in
        let d stack = Proxy.Pipeline.digest (Proxy.Pipeline.run stack body) in
        (d stack_v1, d stack_v2))
  in
  let changed =
    List.filter_map
      (fun k ->
        let d1, d2 = expected.(k) in
        if String.equal d1 d2 then None else Some (Printf.sprintf "a%d" k))
      (List.init cfg.cc_applets (fun k -> k))
  in
  let revoked = ref 0 and exempt = ref 0 in
  List.iter
    (fun (applet_key, digest, v_at_issue) ->
      let k = int_of_string (String.sub applet_key 1 (String.length applet_key - 1)) in
      let d1, d2 = expected.(k) in
      if not (String.equal d1 d2) && String.equal digest d1 then
        if v_at_issue >= v2 then incr revoked else incr exempt)
    !records;
  let digests =
    let tbl : (string, string list) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (applet_key, digest, _) ->
        let ds = Option.value ~default:[] (Hashtbl.find_opt tbl applet_key) in
        if not (List.mem digest ds) then Hashtbl.replace tbl applet_key (digest :: ds))
      !records;
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold
         (fun k ds acc -> (k, List.sort String.compare ds) :: acc)
         tbl [])
  in
  let member_versions =
    List.init cfg.cc_shards (fun i ->
        let _, _, mid = ctl_links.(i) in
        Proxy.Control.member_version ctl mid)
  in
  let member_terms =
    List.init cfg.cc_shards (fun i ->
        let _, _, mid = ctl_links.(i) in
        Proxy.Control.member_term ctl mid)
  in
  let converged =
    Proxy.Control.converged ctl
    && List.for_all (fun v -> v = v2) member_versions
  in
  (* Snapshot catch-up invariant: a converged farm's members — some of
     whom got there through snapshot installs and restart replays —
     must hold state byte-identical to a from-scratch replay of the
     authoritative log. *)
  let replay_ok =
    converged
    &&
    let want = Proxy.Control.replay_digest ctl in
    List.for_all
      (fun i ->
        let _, _, mid = ctl_links.(i) in
        String.equal (Proxy.Control.member_state_digest ctl mid) want)
      (List.init cfg.cc_shards (fun i -> i))
  in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 sessions in
  {
    cn_seed = cfg.cc_seed;
    cn_fetches = sum (fun s -> s.Client.Session.fetches);
    cn_served = sum (fun s -> s.Client.Session.served);
    cn_stale_served = sum (fun s -> s.Client.Session.stale_served);
    cn_failed = sum (fun s -> s.Client.Session.failed);
    cn_shed = sum (fun s -> s.Client.Session.overloaded_seen);
    cn_base_version = v1;
    cn_new_version = v2;
    cn_commit_us =
      Option.value ~default:0L (Proxy.Control.commit_us ctl ~id:!bump_id);
    cn_revoked_serves = !revoked;
    cn_inflight_exempt = !exempt;
    cn_fence_rejects =
      Array.fold_left (fun acc p -> acc + p.Proxy.fenced_rejects) 0 pool;
    cn_resyncs = Proxy.Control.resyncs ctl;
    cn_stale_drops =
      l2.Proxy.Cache.stale_drops
      + Array.fold_left
          (fun acc p -> acc + p.Proxy.cache.Proxy.Cache.stale_drops)
          0 pool;
    cn_invalidations =
      l2.Proxy.Cache.invalidations
      + Array.fold_left
          (fun acc p -> acc + p.Proxy.cache.Proxy.Cache.invalidations)
          0 pool;
    cn_heartbeats = Proxy.Control.heartbeats ctl;
    cn_commits = Proxy.Control.commits ctl;
    cn_term = Proxy.Control.term ctl;
    cn_member_terms = member_terms;
    cn_elections = Proxy.Control.elections ctl;
    cn_leader_changes = Proxy.Control.leader_changes ctl;
    cn_stepdowns = Proxy.Control.stepdowns ctl;
    cn_redrives = Proxy.Control.redrives ctl;
    cn_compactions = Proxy.Control.compactions ctl;
    cn_snapshot_installs = Proxy.Control.snapshot_installs ctl;
    cn_max_leased = !max_leased;
    cn_term_regressions = !term_regressions;
    cn_replay_ok = replay_ok;
    cn_converged = converged;
    cn_member_versions = member_versions;
    cn_changed_applets = changed;
    cn_digests = digests;
    cn_fault_trace = Simnet.Fault.trace plan;
    cn_trace_digest =
      Dsig.Md5.digest
        (String.concat "\n"
           (List.map
              (fun (t, l) -> Printf.sprintf "%Ld %s" t l)
              (Simnet.Engine.trace engine)));
  }

(* Control-plane invariants: the chaotic run against its partition-free
   reference. *)
type control_verdict = {
  w_reference : control_outcome; (* partitions and all faults removed; bump kept *)
  w_chaotic : control_outcome;
  w_no_revoked_serves : bool; (* zero in both runs *)
  w_single_leader : bool;
      (* never two leased leaders at a sampled instant, and terms are
         monotone per member — the election-safety invariant *)
  w_replay_ok : bool;
      (* snapshot catch-up state-identical to full-log replay, both runs *)
  w_converged : bool; (* the chaotic run's members all reached the new version *)
  w_digests_ok : bool;
      (* applets the bump does not affect serve identical digest sets
         in both runs *)
}

let control_ok w =
  w.w_no_revoked_serves && w.w_single_leader && w.w_replay_ok && w.w_converged
  && w.w_digests_ok

let partition_free (cfg : control_config) =
  {
    cfg with
    cc_partitions = 0;
    cc_restart_shard = false;
    cc_leader_crash = false;
    cc_leader_partition = false;
  }

let verify_control (cfg : control_config) : control_verdict =
  let reference = run_control (partition_free cfg) in
  let chaotic = run_control cfg in
  let digests_ok =
    List.for_all
      (fun (key, ds) ->
        List.mem key chaotic.cn_changed_applets
        ||
        match List.assoc_opt key reference.cn_digests with
        | Some ds' -> ds = ds'
        | None -> true)
      chaotic.cn_digests
  in
  {
    w_reference = reference;
    w_chaotic = chaotic;
    w_no_revoked_serves =
      chaotic.cn_revoked_serves = 0 && reference.cn_revoked_serves = 0;
    w_single_leader =
      chaotic.cn_max_leased <= 1 && reference.cn_max_leased <= 1
      && chaotic.cn_term_regressions = 0
      && reference.cn_term_regressions = 0;
    w_replay_ok = chaotic.cn_replay_ok && reference.cn_replay_ok;
    w_converged = chaotic.cn_converged && reference.cn_converged;
    w_digests_ok = digests_ok;
  }

let print_control_outcome ?(label = "control") o =
  Printf.printf
    "%-10s seed=%d fetches=%d served=%d stale=%d failed=%d shed=%d \
     v%d->v%d commit=%Ldus revoked=%d exempt=%d fenced=%d resyncs=%d \
     stale_drops=%d invalidations=%d term=%d elections=%d \
     leader_changes=%d stepdowns=%d redrives=%d compactions=%d \
     snap_installs=%d max_leased=%d term_regr=%d replay_ok=%b \
     converged=%b\n"
    label o.cn_seed o.cn_fetches o.cn_served o.cn_stale_served o.cn_failed
    o.cn_shed o.cn_base_version o.cn_new_version o.cn_commit_us
    o.cn_revoked_serves o.cn_inflight_exempt o.cn_fence_rejects o.cn_resyncs
    o.cn_stale_drops o.cn_invalidations o.cn_term o.cn_elections
    o.cn_leader_changes o.cn_stepdowns o.cn_redrives o.cn_compactions
    o.cn_snapshot_installs o.cn_max_leased o.cn_term_regressions
    o.cn_replay_ok o.cn_converged

let print_outcome ?(label = "chaos") o =
  Printf.printf
    "%-10s seed=%d fetches=%d served=%d stale=%d failed=%d shed=%d \
     retries=%d hedges=%d/%d trips=%d late=%d tail=%d goodput=%.0f B/s \
     p50=%Ldus p95=%Ldus p99=%Ldus\n"
    label o.co_seed o.co_fetches o.co_served o.co_stale_served o.co_failed
    o.co_shed o.co_retries o.co_hedge_wins o.co_hedges o.co_breaker_trips
    o.co_deadline_violations o.co_tail_served o.co_goodput_bps o.co_p50_us
    o.co_p95_us o.co_p99_us
