(* Seeded chaos harness for the proxy farm's overload-control layer.

   One [run] drives a 4-shard-style farm with overload-aware client
   sessions while a seeded schedule composes the failure modes the
   overload layer exists for: shard crash/restart windows, client-LAN
   loss and jitter, and a scripted load spike — a flash crowd of burst
   clients that triples the offered client population for the spike
   window. Every random choice — crash victims, crash times, loss
   decisions — comes from one [Simnet.Fault] splitmix64 stream, so a
   run is replayable bit-for-bit from its seed.

   [verify] runs the same configuration fault-free and checks the
   three invariants the ISSUE pins:

   1. integrity — every applet digest served under chaos equals the
      fault-free run's digest for that applet (faults may lose
      requests, never corrupt them);
   2. deadlines — no session served a response past its deadline
      (the sessions' [deadline_violations] tripwires stay 0);
   3. recovery — once faults clear, throughput in the tail window
      returns to at least [recovery_frac] of the fault-free run's.

   [spike_comparison] is the acceptance experiment: the same spiked
   run with the overload controls on (deadlines on the wire, admission
   shedding, breakers, hedging, retry budget) and off (deadline kept
   client-side only, so the farm works on doomed requests), compared
   by goodput — bytes served inside their deadlines per second. *)

type config = {
  ch_seed : int;
  ch_shards : int;
  ch_clients : int;
  ch_duration_s : int;
  ch_applets : int;
  ch_think_us : int64; (* per-client gap between fetches off-spike *)
  ch_budget_us : int64; (* per-fetch deadline budget *)
  ch_hedge_after_us : int64 option;
  ch_retry_budget : int; (* per-session retry+hedge token pool *)
  ch_spike_factor : int; (* total offered clients ×this inside the window *)
  ch_spike_start_s : int;
  ch_spike_len_s : int; (* 0 = no spike *)
  ch_crashes : int; (* crash/restart windows drawn from the seed *)
  ch_loss_pct : float; (* client-LAN loss, whole run *)
  ch_jitter_us : int; (* client-LAN propagation jitter bound *)
  ch_control : bool; (* overload controls on? *)
  ch_trace : bool; (* reset + enable distributed tracing for the run? *)
}

(* Sized so the fault-free run is healthy (p95 well inside the
   deadline budget at ~70% utilization) while the 3× flash crowd
   offers more than the farm's pipeline capacity for the whole spike:
   without admission control, queueing delay blows through every
   deadline and the shards burn their CPU on doomed requests; with it,
   shedding keeps admitted requests inside budget. *)
let default_config =
  {
    ch_seed = 42;
    ch_shards = 4;
    ch_clients = 40;
    ch_duration_s = 40;
    ch_applets = 12;
    ch_think_us = 1_000_000L;
    ch_budget_us = 800_000L;
    ch_hedge_after_us = Some 300_000L;
    ch_retry_budget = 8;
    ch_spike_factor = 3;
    ch_spike_start_s = 6;
    ch_spike_len_s = 22;
    ch_crashes = 2;
    ch_loss_pct = 0.5;
    ch_jitter_us = 2_000;
    ch_control = true;
    ch_trace = false;
  }

type outcome = {
  co_seed : int;
  co_fetches : int;
  co_served : int; (* fresh, in-deadline serves *)
  co_bytes : int; (* bytes of those serves *)
  co_goodput_bps : float; (* in-deadline bytes/s over the whole run *)
  co_stale_served : int;
  co_failed : int;
  co_hedges : int;
  co_hedge_wins : int;
  co_retries : int;
  co_shed : int; (* Overloaded replies clients saw *)
  co_breaker_trips : int;
  co_deadline_violations : int; (* must be 0 *)
  co_tail_served : int; (* fresh serves in the final quarter *)
  co_digests : (string * string) list; (* applet key -> MD5, sorted *)
  co_fault_trace : string list;
  co_trace_digest : string; (* MD5 over the engine event trace *)
  co_p50_us : int64; (* exact quantiles over fresh-serve latencies *)
  co_p95_us : int64;
  co_p99_us : int64;
  co_slo : Telemetry.Slo.report; (* SLO monitor state at the horizon *)
}

(* Exact quantile over the collected latencies (unlike the log₂
   histogram's bucket bounds): sort and index. *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0L
  else
    let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

let stale_key cls =
  match String.index_opt cls '/' with
  | Some i -> String.sub cls 0 i
  | None -> cls

let run (cfg : config) : outcome =
  if cfg.ch_shards <= 0 then invalid_arg "Chaos.run: shards must be positive";
  if cfg.ch_trace then begin
    (* Fresh collector per run so trace/span ids (and thus exports)
       are a pure function of the seed. *)
    Telemetry.Trace.reset ();
    Telemetry.Trace.enable ()
  end;
  let engine = Simnet.Engine.create () in
  Simnet.Engine.set_tracing engine true;
  (* Chaos runs are long and every observable event lands in the trace;
     bound the buffer so a runaway experiment degrades to a dropped-
     records count instead of unbounded memory. The cap is far above
     what any pinned seed produces — acceptance traces see every
     record. *)
  Simnet.Engine.set_trace_cap engine (Some 1_000_000);
  let plan = Simnet.Fault.create ~seed:cfg.ch_seed in
  let origin, _wan = Scaling.applet_workload ~applet_count:cfg.ch_applets ~seed:cfg.ch_seed in
  (* Intranet deployment: the origin is the organization's file store a
     few ms away, so request latency is dominated by farm queueing and
     pipeline work — the regime overload control governs. The WAN
     applet latencies would put most fetches past any reasonable
     deadline before the farm even saw them. *)
  let origin_latency _ = Simnet.Engine.ms 10 in
  let filters = Scaling.standard_filters () in
  (* Unique per-fetch class names keep the *simulated* cache out of the
     picture — every fetch is real pipeline work in the cost model —
     but the host CPU shares one outcome memo across the pool: the
     standard stack is effect-free apart from telemetry, so identical
     applet bytes replay the first run's tape instead of re-verifying.
     Digests, costs and counters are byte-identical either way. *)
  let memo = Proxy.Pipeline.Memo.create () in
  let pool =
    Array.init cfg.ch_shards (fun i ->
        Proxy.create engine ~cache_capacity:0 ~memo
          ~host_name:(Printf.sprintf "shard%d" i)
          ~origin ~origin_latency ~filters ())
  in
  let farm = Proxy.Farm.create engine pool in
  Array.iteri
    (fun i p ->
      let share =
        (cfg.ch_clients / cfg.ch_shards)
        + (if i < cfg.ch_clients mod cfg.ch_shards then 1 else 0)
      in
      Simnet.Host.allocate p.Proxy.host (share * Scaling.per_client_state_bytes))
    pool;
  let lan = Simnet.Link.ethernet_10mb engine in
  if cfg.ch_loss_pct > 0.0 || cfg.ch_jitter_us > 0 then
    Simnet.Link.set_faults lan ~plan ~drop_prob:(cfg.ch_loss_pct /. 100.0)
      ~jitter_max_us:cfg.ch_jitter_us ();
  let horizon = Simnet.Engine.sec cfg.ch_duration_s in
  (* Crash windows: [ch_crashes] victims and times drawn from the
     seed, confined to the middle half of the run so the tail window
     is fault-free and recovery is measurable. *)
  let mid_start = Int64.div horizon 4L and mid_len = Int64.div horizon 2L in
  for _ = 1 to cfg.ch_crashes do
    let victim = Simnet.Fault.range plan ~max:cfg.ch_shards in
    let crash_at =
      Int64.add mid_start
        (Int64.of_int (Simnet.Fault.range plan ~max:(Int64.to_int mid_len)))
    in
    let down_for =
      Int64.of_int (1_000_000 + Simnet.Fault.range plan ~max:2_000_000)
    in
    Simnet.Fault.schedule_host_faults plan pool.(victim).Proxy.host
      ~schedule:[ (crash_at, down_for) ]
      ()
  done;
  let spike_start = Simnet.Engine.sec cfg.ch_spike_start_s in
  let spike_end =
    Int64.add spike_start (Simnet.Engine.sec cfg.ch_spike_len_s)
  in
  let in_spike now =
    cfg.ch_spike_len_s > 0 && cfg.ch_spike_factor > 1
    && Int64.compare now spike_start >= 0
    && Int64.compare now spike_end < 0
  in
  (* The flash crowd: (spike_factor - 1) × clients extra burst
     sessions that fetch only inside the spike window, so offered
     client population is spike_factor × the base during the spike. *)
  let burst =
    if cfg.ch_spike_len_s > 0 && cfg.ch_spike_factor > 1 then
      (cfg.ch_spike_factor - 1) * cfg.ch_clients
    else 0
  in
  (* One SLO monitor for the whole client population; its window is
     the recovery tail, so the report shows steady-state health. *)
  let slo =
    Telemetry.Slo.create
      ~window_s:(max 1 (cfg.ch_duration_s / 4))
      ~objective:0.99 ()
  in
  let sessions =
    Array.init (cfg.ch_clients + burst) (fun _ ->
        Client.Session.create ~budget_us:cfg.ch_budget_us
          ?hedge_after_us:(if cfg.ch_control then cfg.ch_hedge_after_us else None)
          ~advertise_deadline:cfg.ch_control
          ~retry_budget:(if cfg.ch_control then cfg.ch_retry_budget else 0)
          ~deliver:(fun ~bytes k -> Simnet.Link.transfer lan ~bytes k)
          ~slo ~stale_key engine farm)
  in
  (* Per-applet digest of fresh serves; divergence inside one run is a
     single-flight/caching bug and fatal. *)
  let served : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let latencies = ref [] in
  let tail_start = Int64.sub horizon (Int64.div horizon 4L) in
  let tail_served = ref 0 in
  let rec client_loop ~burst:is_burst id iter =
    (* Burst clients live only inside the spike window. *)
    if (not is_burst) || in_spike (Simnet.Engine.now engine) then begin
      let k = (id + (iter * 37)) mod cfg.ch_applets in
      let applet_key = Printf.sprintf "a%d" k in
      (* Unique names: caching off, every fetch is real pipeline work. *)
      let name = Printf.sprintf "%s/c%d-i%d" applet_key id iter in
      let started = Simnet.Engine.now engine in
      Client.Session.fetch sessions.(id) ~cls:name (fun outcome ->
          let now = Simnet.Engine.now engine in
          (match outcome with
          | Client.Session.Fresh b ->
            Simnet.Engine.record engine
              (Printf.sprintf "serve %s -> c%d" name id);
            let digest = Dsig.Md5.digest b in
            (match Hashtbl.find_opt served applet_key with
            | Some d when not (String.equal d digest) ->
              failwith ("Chaos.run: divergent bytes for " ^ applet_key)
            | _ -> Hashtbl.replace served applet_key digest);
            latencies := Int64.sub now started :: !latencies;
            if Int64.compare now tail_start >= 0 then incr tail_served
          | Client.Session.Stale _ | Client.Session.Failed -> ());
          Simnet.Engine.schedule engine ~delay:cfg.ch_think_us (fun () ->
              client_loop ~burst:is_burst id (iter + 1)))
    end
  in
  for id = 0 to cfg.ch_clients - 1 do
    (* Stagger arrivals over the first second. *)
    Simnet.Engine.schedule_at engine
      (Int64.of_int (id * 1_000_000 / max 1 cfg.ch_clients))
      (fun () -> client_loop ~burst:false id 0)
  done;
  for b = 0 to burst - 1 do
    (* The flash crowd floods in over the spike's first second. *)
    Simnet.Engine.schedule_at engine
      (Int64.add spike_start (Int64.of_int (b * 1_000_000 / max 1 burst)))
      (fun () -> client_loop ~burst:true (cfg.ch_clients + b) 0)
  done;
  Simnet.Engine.run ~until:horizon engine;
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 sessions in
  let bytes = sum (fun s -> s.Client.Session.bytes_served) in
  let lat = Array.of_list !latencies in
  Array.sort Int64.compare lat;
  {
    co_seed = cfg.ch_seed;
    co_fetches = sum (fun s -> s.Client.Session.fetches);
    co_served = sum (fun s -> s.Client.Session.served);
    co_bytes = bytes;
    co_goodput_bps =
      Float.of_int bytes /. Float.max 1e-9 (Simnet.Engine.to_sec horizon);
    co_stale_served = sum (fun s -> s.Client.Session.stale_served);
    co_failed = sum (fun s -> s.Client.Session.failed);
    co_hedges = sum (fun s -> s.Client.Session.hedges);
    co_hedge_wins = sum (fun s -> s.Client.Session.hedge_wins);
    co_retries = sum (fun s -> s.Client.Session.retries);
    co_shed = sum (fun s -> s.Client.Session.overloaded_seen);
    co_breaker_trips =
      (let n = ref 0 in
       for i = 0 to cfg.ch_shards - 1 do
         n := !n + Proxy.Breaker.trips (Proxy.Farm.breaker farm i)
       done;
       !n);
    co_deadline_violations =
      sum (fun s -> s.Client.Session.deadline_violations);
    co_tail_served = !tail_served;
    co_digests =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) served []);
    co_fault_trace = Simnet.Fault.trace plan;
    co_trace_digest =
      Dsig.Md5.digest
        (String.concat "\n"
           (List.map
              (fun (t, l) -> Printf.sprintf "%Ld %s" t l)
              (Simnet.Engine.trace engine)));
    co_p50_us = exact_quantile lat 0.50;
    co_p95_us = exact_quantile lat 0.95;
    co_p99_us = exact_quantile lat 0.99;
    co_slo = Telemetry.Slo.report slo ~now_us:horizon;
  }

(* --- The three invariants. --- *)

type verdict = {
  v_reference : outcome; (* fault-free, spike-free *)
  v_chaotic : outcome;
  v_digests_ok : bool;
  v_no_late_serves : bool;
  v_recovered : bool;
}

let ok v = v.v_digests_ok && v.v_no_late_serves && v.v_recovered

let fault_free cfg =
  { cfg with ch_crashes = 0; ch_loss_pct = 0.0; ch_jitter_us = 0; ch_spike_len_s = 0 }

let verify ?(recovery_frac = 0.5) (cfg : config) : verdict =
  let reference = run (fault_free cfg) in
  let chaotic = run cfg in
  (* Integrity: compare on the applet keys both runs served — the
     bytes are a pure function of the applet, so any mismatch is
     corruption, not coverage. *)
  let digests_ok =
    List.for_all
      (fun (key, digest) ->
        match List.assoc_opt key reference.co_digests with
        | Some d -> String.equal d digest
        | None -> true)
      chaotic.co_digests
  in
  {
    v_reference = reference;
    v_chaotic = chaotic;
    v_digests_ok = digests_ok;
    v_no_late_serves =
      chaotic.co_deadline_violations = 0
      && reference.co_deadline_violations = 0;
    v_recovered =
      Float.of_int chaotic.co_tail_served
      >= recovery_frac *. Float.of_int reference.co_tail_served;
  }

(* --- The acceptance experiment: overload control on vs off under the
   same spike. --- *)

type comparison = {
  cmp_control : outcome;
  cmp_baseline : outcome;
  cmp_goodput_ratio : float; (* control / baseline *)
}

let spike_comparison (cfg : config) : comparison =
  let control = run { cfg with ch_control = true } in
  let baseline = run { cfg with ch_control = false } in
  {
    cmp_control = control;
    cmp_baseline = baseline;
    cmp_goodput_ratio =
      control.co_goodput_bps /. Float.max 1e-9 baseline.co_goodput_bps;
  }

let print_outcome ?(label = "chaos") o =
  Printf.printf
    "%-10s seed=%d fetches=%d served=%d stale=%d failed=%d shed=%d \
     retries=%d hedges=%d/%d trips=%d late=%d tail=%d goodput=%.0f B/s \
     p50=%Ldus p95=%Ldus p99=%Ldus\n"
    label o.co_seed o.co_fetches o.co_served o.co_stale_served o.co_failed
    o.co_shed o.co_retries o.co_hedge_wins o.co_hedges o.co_breaker_trips
    o.co_deadline_violations o.co_tail_served o.co_goodput_bps o.co_p50_us
    o.co_p95_us o.co_p99_us
