(** Seeded chaos harness for the overload-control layer.

    A chaos run drives a sharded farm with overload-aware client
    sessions while a seeded schedule composes shard crash/restart
    windows, client-LAN loss and jitter, and a scripted load spike — a
    flash crowd of burst clients that multiplies the offered client
    population by [ch_spike_factor] for the spike window.
    Every random choice comes from one {!Simnet.Fault} stream, so a
    run replays bit-for-bit from its seed — [co_fault_trace] and
    [co_trace_digest] make that checkable. *)

type config = {
  ch_seed : int;
  ch_shards : int;
  ch_clients : int;
  ch_duration_s : int;
  ch_applets : int;
  ch_think_us : int64;  (** per-client gap between fetches off-spike *)
  ch_budget_us : int64;  (** per-fetch deadline budget *)
  ch_hedge_after_us : int64 option;
  ch_retry_budget : int;  (** per-session retry+hedge token pool *)
  ch_spike_factor : int;
      (** flash crowd: total offered clients ×this inside the window *)
  ch_spike_start_s : int;
  ch_spike_len_s : int;  (** 0 = no spike *)
  ch_crashes : int;  (** crash/restart windows drawn from the seed *)
  ch_loss_pct : float;  (** client-LAN loss percentage, whole run *)
  ch_jitter_us : int;  (** client-LAN propagation jitter bound *)
  ch_control : bool;  (** overload controls on? *)
  ch_trace : bool;
      (** reset + enable {!Telemetry.Trace} for the run, so every
          fetch yields a cross-node trace (off by default) *)
}

val default_config : config
(** 4 shards, 40 clients, 40 s, a 3× flash crowd in the middle, 2
    crash windows, 0.5% LAN loss — the bench and [dvmctl chaos]
    defaults. *)

type outcome = {
  co_seed : int;
  co_fetches : int;
  co_served : int;  (** fresh, in-deadline serves *)
  co_bytes : int;
  co_goodput_bps : float;  (** in-deadline bytes/s over the whole run *)
  co_stale_served : int;
  co_failed : int;
  co_hedges : int;
  co_hedge_wins : int;
  co_retries : int;
  co_shed : int;  (** [Overloaded] replies clients saw *)
  co_breaker_trips : int;
  co_deadline_violations : int;  (** must be 0 *)
  co_tail_served : int;  (** fresh serves in the final quarter *)
  co_digests : (string * string) list;
      (** applet key → MD5 of served bytes, sorted; intra-run
          divergence is fatal *)
  co_fault_trace : string list;
  co_trace_digest : string;  (** MD5 over the engine event trace *)
  co_p50_us : int64;  (** exact quantiles over fresh-serve latencies *)
  co_p95_us : int64;
  co_p99_us : int64;
  co_slo : Telemetry.Slo.report;
      (** SLO monitor at the horizon: rolling goodput over the final
          quarter, violation rate, error-budget burn *)
}

val stale_key : string -> string
(** Applet prefix of a request name ([a3/c7-i12] → [a3]): the
    stale-archive key chaos sessions brown out against. *)

val run : config -> outcome
(** One seeded chaos run in simulated time. *)

val fault_free : config -> config
(** The same configuration with crashes, loss, jitter and the spike
    removed — the reference run invariants compare against. *)

(** The three chaos invariants, checked by {!verify}. *)
type verdict = {
  v_reference : outcome;  (** fault-free, spike-free *)
  v_chaotic : outcome;
  v_digests_ok : bool;
      (** every applet served under chaos is byte-identical (by MD5)
          to the fault-free run's serve *)
  v_no_late_serves : bool;  (** zero deadline violations in both runs *)
  v_recovered : bool;
      (** tail-window serves reach [recovery_frac] of the reference *)
}

val ok : verdict -> bool

val verify : ?recovery_frac:float -> config -> verdict
(** Run [fault_free config] and [config], check the invariants.
    [recovery_frac] defaults to 0.5. *)

type comparison = {
  cmp_control : outcome;
  cmp_baseline : outcome;
  cmp_goodput_ratio : float;  (** control / baseline *)
}

val spike_comparison : config -> comparison
(** The acceptance experiment: the same spiked run with overload
    controls on ([ch_control = true]: deadlines on the wire, admission
    shedding, breakers, hedging, retry budget) and off (deadline kept
    client-side only, so shards burn CPU on doomed requests), compared
    by goodput. *)

val print_outcome : ?label:string -> outcome -> unit
