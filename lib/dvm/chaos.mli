(** Seeded chaos harness for the overload-control layer.

    A chaos run drives a sharded farm with overload-aware client
    sessions while a seeded schedule composes shard crash/restart
    windows, client-LAN loss and jitter, and a scripted load spike — a
    flash crowd of burst clients that multiplies the offered client
    population by [ch_spike_factor] for the spike window.
    Every random choice comes from one {!Simnet.Fault} stream, so a
    run replays bit-for-bit from its seed — [co_fault_trace] and
    [co_trace_digest] make that checkable. *)

type config = {
  ch_seed : int;
  ch_shards : int;
  ch_clients : int;
  ch_duration_s : int;
  ch_applets : int;
  ch_think_us : int64;  (** per-client gap between fetches off-spike *)
  ch_budget_us : int64;  (** per-fetch deadline budget *)
  ch_hedge_after_us : int64 option;
  ch_retry_budget : int;  (** per-session retry+hedge token pool *)
  ch_spike_factor : int;
      (** flash crowd: total offered clients ×this inside the window *)
  ch_spike_start_s : int;
  ch_spike_len_s : int;  (** 0 = no spike *)
  ch_crashes : int;  (** crash/restart windows drawn from the seed *)
  ch_loss_pct : float;  (** client-LAN loss percentage, whole run *)
  ch_jitter_us : int;  (** client-LAN propagation jitter bound *)
  ch_control : bool;  (** overload controls on? *)
  ch_trace : bool;
      (** reset + enable {!Telemetry.Trace} for the run, so every
          fetch yields a cross-node trace (off by default) *)
}

val default_config : config
(** 4 shards, 40 clients, 40 s, a 3× flash crowd in the middle, 2
    crash windows, 0.5% LAN loss — the bench and [dvmctl chaos]
    defaults. *)

type outcome = {
  co_seed : int;
  co_fetches : int;
  co_served : int;  (** fresh, in-deadline serves *)
  co_bytes : int;
  co_goodput_bps : float;  (** in-deadline bytes/s over the whole run *)
  co_stale_served : int;
  co_failed : int;
  co_hedges : int;
  co_hedge_wins : int;
  co_retries : int;
  co_shed : int;  (** [Overloaded] replies clients saw *)
  co_breaker_trips : int;
  co_deadline_violations : int;  (** must be 0 *)
  co_tail_served : int;  (** fresh serves in the final quarter *)
  co_digests : (string * string) list;
      (** applet key → MD5 of served bytes, sorted; intra-run
          divergence is fatal *)
  co_fault_trace : string list;
  co_trace_digest : string;  (** MD5 over the engine event trace *)
  co_p50_us : int64;  (** exact quantiles over fresh-serve latencies *)
  co_p95_us : int64;
  co_p99_us : int64;
  co_slo : Telemetry.Slo.report;
      (** SLO monitor at the horizon: rolling goodput over the final
          quarter, violation rate, error-budget burn *)
}

val stale_key : string -> string
(** Applet prefix of a request name ([a3/c7-i12] → [a3]): the
    stale-archive key chaos sessions brown out against. *)

val run : config -> outcome
(** One seeded chaos run in simulated time. *)

val fault_free : config -> config
(** The same configuration with crashes, loss, jitter and the spike
    removed — the reference run invariants compare against. *)

(** The three chaos invariants, checked by {!verify}. *)
type verdict = {
  v_reference : outcome;  (** fault-free, spike-free *)
  v_chaotic : outcome;
  v_digests_ok : bool;
      (** every applet served under chaos is byte-identical (by MD5)
          to the fault-free run's serve *)
  v_no_late_serves : bool;  (** zero deadline violations in both runs *)
  v_recovered : bool;
      (** tail-window serves reach [recovery_frac] of the reference *)
}

val ok : verdict -> bool

val verify : ?recovery_frac:float -> config -> verdict
(** Run [fault_free config] and [config], check the invariants.
    [recovery_frac] defaults to 0.5. *)

type comparison = {
  cmp_control : outcome;
  cmp_baseline : outcome;
  cmp_goodput_ratio : float;  (** control / baseline *)
}

val spike_comparison : config -> comparison
(** The acceptance experiment: the same spiked run with overload
    controls on ([ch_control = true]: deadlines on the wire, admission
    shedding, breakers, hedging, retry budget) and off (deadline kept
    client-side only, so shards burn CPU on doomed requests), compared
    by goodput. *)

val print_outcome : ?label:string -> outcome -> unit

(** {1 The control-plane scenario}

    Policy bumps under partition and split brain: a warm-cache farm
    (per-shard L1 plus a shared L2, fixed request names) serves a
    fixed applet set while a {!Proxy.Control} log replicates a
    security-policy bump and its cache invalidations to every shard.
    The seeded schedule cuts the victim shard's {e control} links only
    — its data path stays up, so the farm keeps routing to a shard
    that can no longer hear the leader until its lease lapses and the
    fence trips — and optionally crash/restarts another shard so it
    must recover the current version and pending invalidations from
    the log rather than the stale shared L2. With elections in play
    the schedule also attacks the leadership itself: the leased leader
    is crashed just after proposing the bump (crash-during-commit —
    the new leader re-drives the uncommitted suffix under its own
    term) and partitioned late in the run (it wakes up with a stale
    term and must step down), while background invalidation churn
    grows the log past the snapshot threshold so compaction and
    snapshot catch-up genuinely happen mid-run.

    Three machine-checked invariants: {b no fetch issued after the
    bump committed is served bytes rewritten under the revoked
    version} (fetches already in flight at the commit instant are
    exempt — the lease bound is about when a shard stops accepting new
    work, not about work it already accepted; the check is offline:
    each applet's body is rewritten under both versions' stacks after
    the run, so every served digest maps to the versions that produce
    it); {b at most one member holds a valid leadership lease at any
    sampled instant, and terms are monotone per member} (election
    safety, probed every 100 ms of virtual time); and {b snapshot
    catch-up is state-identical to full-log replay} (every converged
    member's state digest equals a from-scratch replay of the
    authoritative log). *)

type control_config = {
  cc_seed : int;
  cc_shards : int;
  cc_clients : int;
  cc_duration_s : int;
  cc_applets : int;
  cc_think_us : int64;
  cc_budget_us : int64;
  cc_retry_budget : int;
  cc_cache_mb : int;  (** per-shard L1 and shared L2 capacity *)
  cc_partitions : int;
      (** control-link partition windows; the first spans the bump *)
  cc_partition_len_s : int;
  cc_bump_at_s : int;  (** when the leader proposes the new version *)
  cc_restart_shard : bool;
      (** crash/restart one shard, drawn from the seed *)
  cc_lease_us : int64;
  cc_hb_interval_us : int64;
  cc_commit_margin_us : int64;
  cc_churn_s : int;
      (** propose a rotating cache invalidation every N seconds (0 =
          off) — keeps the log growing so compaction triggers mid-run *)
  cc_snapshot_every : int;
      (** committed, applied entries that trigger a snapshot fold *)
  cc_leader_crash : bool;
      (** crash whoever holds the lease 200 ms after the bump, forcing
          a hand-off with an uncommitted suffix *)
  cc_leader_partition : bool;
      (** partition the leased leader 6 s after the bump for 2 s — the
          stale-term wake-up scenario *)
  cc_trace : bool;
}

val default_control_config : control_config
(** 4 shards, 24 clients, 30 s, 8 applets, the bump at 12 s, two 3 s
    partition windows (the first spanning the bump), one restart, 1 s
    invalidation churn with a snapshot fold every 4 entries, leader
    crash and leader partition on — the bench and [dvmctl control]
    defaults. *)

type control_outcome = {
  cn_seed : int;
  cn_fetches : int;
  cn_served : int;  (** fresh serves *)
  cn_stale_served : int;
  cn_failed : int;
  cn_shed : int;
  cn_base_version : int;
  cn_new_version : int;
  cn_commit_us : int64;  (** when the bump committed (0 = never) *)
  cn_revoked_serves : int;
      (** fresh serves of revoked bytes issued after the commit — the
          invariant; must be 0 *)
  cn_inflight_exempt : int;
      (** old-version serves issued before the commit *)
  cn_fence_rejects : int;  (** requests refused by lease fences *)
  cn_resyncs : int;  (** members that caught up after falling behind *)
  cn_stale_drops : int;
      (** versioned cache lookups that dropped a stale entry *)
  cn_invalidations : int;  (** explicit [Cache.remove] hits *)
  cn_heartbeats : int;
  cn_commits : int;
  cn_term : int;  (** highest term reached *)
  cn_member_terms : int list;
  cn_elections : int;  (** elections won, bootstrap included *)
  cn_leader_changes : int;
  cn_stepdowns : int;
  cn_redrives : int;
      (** uncommitted entries re-stamped under a new leader's term *)
  cn_compactions : int;
  cn_snapshot_installs : int;
  cn_max_leased : int;
      (** max simultaneous leased leaders across all sampled instants —
          election safety demands [<= 1] *)
  cn_term_regressions : int;
      (** per-member term decreases observed — must be 0 *)
  cn_replay_ok : bool;
      (** converged, and every member's state digest is byte-identical
          to a full-log replay of the authoritative log — the snapshot
          catch-up invariant *)
  cn_converged : bool;
      (** every member applied the full log, at the new version, with
          a live lease, by the horizon *)
  cn_member_versions : int list;
  cn_changed_applets : string list;
      (** applets whose rewritten bytes differ across versions *)
  cn_digests : (string * string list) list;
      (** applet key → sorted distinct served digests *)
  cn_fault_trace : string list;
  cn_trace_digest : string;
}

val run_control : control_config -> control_outcome
(** One seeded control-plane run in simulated time. *)

val partition_free : control_config -> control_config
(** The same configuration with the partitions, the restart, and the
    leader crash/partition removed — the bump and the churn still
    happen; the reference run {!verify_control} compares against. *)

(** The control-plane invariants, checked by {!verify_control}. *)
type control_verdict = {
  w_reference : control_outcome;  (** partition-free, fault-free *)
  w_chaotic : control_outcome;
  w_no_revoked_serves : bool;  (** zero revoked serves in both runs *)
  w_single_leader : bool;
      (** never two leased leaders at a sampled instant and terms
          monotone per member, in both runs — election safety *)
  w_replay_ok : bool;
      (** snapshot catch-up state-identical to full-log replay, in
          both runs *)
  w_converged : bool;  (** both runs' members all reached the new version *)
  w_digests_ok : bool;
      (** applets the bump does not affect serve identical digest sets
          in both runs — partitions change who serves, never the
          bytes *)
}

val control_ok : control_verdict -> bool

val verify_control : control_config -> control_verdict
(** Run [partition_free config] and [config], check the invariants. *)

val print_control_outcome : ?label:string -> control_outcome -> unit
