(* Client assembly: builds a VM configured either as a *monolithic*
   virtual machine (all services local: load-time verification,
   stack-introspection security, client-side auditing) or as a *DVM
   client* (thin runtime plus the dynamic service components:
   RTVerifier link checks, the enforcement manager, the monitoring
   natives). *)

type architecture =
  | Monolithic
  | Dvm_client

type t = {
  vm : Jvm.Vmstate.t;
  architecture : architecture;
  (* DVM dynamic components (present on DVM clients). *)
  rt_verifier : Verifier.Rt_verifier.stats option;
  enforcement : Security.Enforcement.t option;
  profiler : Monitor.Profiler.t option;
  (* Monolithic local-service accounting. *)
  mutable local_verify_checks : int;
  mutable local_verify_errors : int;
}

(* Telemetry around the client's window onto the network: each class
   fetch is a span (and a round-trip latency observation) in the
   "client" subsystem, nested inside the registry's jvm.class_load
   span and containing the proxy/pipeline spans it triggers. *)
let traced_provider (provider : Jvm.Classreg.provider) : Jvm.Classreg.provider
    =
 fun name ->
  if not (Telemetry.Global.on ()) then provider name
  else
    Telemetry.Global.with_span ~cat:"client" ~args:[ ("class", name) ]
      ~observe_hist:"client.fetch_us" "client.fetch" (fun () ->
        Telemetry.Global.incr "client.fetches";
        match provider name with
        | Some b as r ->
          Telemetry.Global.add "client.bytes_fetched"
            (Int64.of_int (String.length b));
          r
        | None -> None)

(* --- Fetch resilience: timeout-equivalent retry with graceful
   degradation. ---

   The synchronous provider the VM loads through can fail
   transiently — the proxy down, the response lost. A resilient
   provider retries with bounded exponential backoff and, once the
   retry budget for a class is exhausted, degrades gracefully: it
   serves the paper's error-propagation replacement class (§3.1), so
   an unreachable service surfaces to the application as an ordinary
   Java exception at class-initialization time instead of a hang. *)

type fetch = Fetched of string | Fetch_unavailable | Fetch_absent

type retry_policy = {
  rp_attempts : int; (* total tries per class, >= 1 *)
  rp_base_backoff_us : int; (* backoff before the 2nd try; doubles *)
  rp_max_backoff_us : int;
}

let default_retry_policy =
  { rp_attempts = 4; rp_base_backoff_us = 50_000; rp_max_backoff_us = 800_000 }

let backoff_us policy ~attempt =
  (* attempt is 1-based: the backoff taken after attempt n fails. *)
  let b = policy.rp_base_backoff_us * (1 lsl min 20 (attempt - 1)) in
  min b policy.rp_max_backoff_us

let degraded_class_bytes ~cls ~attempts =
  Bytecode.Encode.class_to_bytes
    (Verifier.Error_class.build ~name:cls
       ~message:
         (Printf.sprintf "service unavailable after %d attempts" attempts))

let resilient_provider ?(policy = default_retry_policy) ?budget ?on_backoff
    (fetch : string -> fetch) : Jvm.Classreg.provider =
 fun cls ->
  let rec attempt n =
    match fetch cls with
    | Fetched b -> Some b
    | Fetch_absent -> None
    | Fetch_unavailable ->
      (* Per-class attempts are bounded by the policy; the optional
         [budget] bounds retries across the whole session, so N
         classes failing at once cannot multiply into N × attempts of
         extra load on an already-sick service — retry amplification
         is exactly how overload feeds itself. An exhausted budget
         degrades immediately. *)
      let budget_spent =
        match budget with Some b -> !b <= 0 | None -> false
      in
      if n >= policy.rp_attempts || budget_spent then begin
        Telemetry.Global.incr "client.degraded";
        Some (degraded_class_bytes ~cls ~attempts:n)
      end
      else begin
        (match budget with Some b -> decr b | None -> ());
        let backoff = backoff_us policy ~attempt:n in
        Telemetry.Global.incr "client.retries";
        Telemetry.Global.observe "client.retry_backoff_us"
          (Int64.of_int backoff);
        (match on_backoff with
        | Some f -> f (Int64.of_int backoff)
        | None -> ());
        attempt (n + 1)
      end
  in
  attempt 1

(* --- Overload-aware farm sessions. ---

   The simulated-time client side of the overload-control story. Every
   fetch carries an absolute deadline (now + budget), propagated to
   the farm through the Httpwire Deadline-Us header so shard admission
   control can shed against it; the session enforces the same deadline
   on its own side — a response that lands late is dropped, never
   delivered, so "no successful response outlives its deadline" holds
   by construction (a counter records any would-be violation).

   Retries and hedges draw from one session-wide token pool: a hedge
   is a speculative retry against the next shard in ring order, taken
   when the first attempt is slow rather than failed, and the pool
   caps the total extra load one session can push onto a struggling
   farm. First response wins; the loser's delivery is discarded by the
   settled flag. When the whole farm is unavailable (every shard down
   or breaker-barred) the session browns out: it serves the stale
   bytes it last saw for the class's archive key, counted apart from
   fresh serves. *)

module Session = struct
  type served = Fresh of string | Stale of string | Failed

  type t = {
    engine : Simnet.Engine.t;
    farm : Proxy.Farm.t;
    budget_us : int64; (* per-fetch deadline budget *)
    hedge_after_us : int64 option; (* hedge delay; None disables hedging *)
    advertise_deadline : bool; (* carry Deadline-Us on the wire? *)
    retry_backoff_us : int64;
    tokens : int ref; (* session-wide retry+hedge pool *)
    deliver : bytes:int -> (unit -> unit) -> unit; (* client-side wire *)
    slo : Telemetry.Slo.t option; (* per-outcome SLO feed *)
    stale_key : string -> string;
    stale : (string, string) Hashtbl.t; (* archive key -> last fresh bytes *)
    mutable fetches : int;
    mutable served : int;
    mutable bytes_served : int;
    mutable stale_served : int;
    mutable hedges : int;
    mutable hedge_wins : int; (* fetches the hedged request won *)
    mutable retries : int;
    mutable overloaded_seen : int; (* Overloaded replies observed *)
    mutable failed : int;
    mutable deadline_violations : int; (* must stay 0: late serves *)
  }

  let create ?(budget_us = 2_000_000L) ?hedge_after_us
      ?(advertise_deadline = true) ?(retry_backoff_us = 50_000L)
      ?(retry_budget = max_int) ?(deliver = fun ~bytes:_ k -> k ()) ?slo
      ?(stale_key = fun cls -> cls) engine farm =
    {
      engine;
      farm;
      budget_us;
      hedge_after_us;
      advertise_deadline;
      retry_backoff_us;
      tokens = ref retry_budget;
      deliver;
      slo;
      stale_key;
      stale = Hashtbl.create 64;
      fetches = 0;
      served = 0;
      bytes_served = 0;
      stale_served = 0;
      hedges = 0;
      hedge_wins = 0;
      retries = 0;
      overloaded_seen = 0;
      failed = 0;
      deadline_violations = 0;
    }

  (* Spend one token from the session pool; [false] means the pool is
     dry and the caller must not add load. *)
  let take_token t =
    if !(t.tokens) > 0 then begin
      decr t.tokens;
      true
    end
    else false

  let fetch t ~cls k =
    t.fetches <- t.fetches + 1;
    let deadline = Int64.add (Simnet.Engine.now t.engine) t.budget_us in
    (* Mint the distributed trace here: the session is where a request
       is born, so the client span is the root every hop nests under. *)
    let root =
      Telemetry.Trace.root ~node:"client"
        ~args:
          [ ("class", cls); ("deadline_us", Int64.to_string deadline) ]
        "client.fetch"
    in
    let rctx = Telemetry.Trace.ctx_of root in
    let settled = ref false in
    let finish outcome =
      if not !settled then begin
        settled := true;
        (match outcome with
        | Fresh b ->
          t.served <- t.served + 1;
          t.bytes_served <- t.bytes_served + String.length b;
          Telemetry.Global.observe "client.request_us"
            (Int64.sub (Simnet.Engine.now t.engine)
               (Int64.sub deadline t.budget_us))
        | Stale _ ->
          t.stale_served <- t.stale_served + 1;
          Telemetry.Global.incr "client.stale_served";
          Telemetry.Trace.event rctx ~node:"client" ~kind:"client.serve_stale"
            (Printf.sprintf "class %s browned out to archived bytes" cls)
        | Failed -> t.failed <- t.failed + 1);
        Telemetry.Trace.finish root;
        (match t.slo with
        | None -> ()
        | Some s ->
          Telemetry.Slo.record s ~now_us:(Simnet.Engine.now t.engine)
            (match outcome with
            | Fresh b -> Telemetry.Slo.Fresh (String.length b)
            | Stale _ -> Telemetry.Slo.Stale
            | Failed -> Telemetry.Slo.Failed));
        k outcome
      end
    in
    let brownout_or k_miss =
      match Hashtbl.find_opt t.stale (t.stale_key cls) with
      | Some b -> finish (Stale b)
      | None -> k_miss ()
    in
    (* Attempts still in flight (primary, hedge, scheduled retries).
       A failed racer settles the fetch only when it was the last one
       standing — otherwise the other racer keeps its chance. *)
    let pending = ref 0 in
    let one_down () =
      pending := !pending - 1;
      if !pending = 0 then brownout_or (fun () -> finish Failed)
    in
    let rec attempt ~hedged () =
      if !settled then ()
      else begin
        incr pending;
        (* The deadline rides the wire: encode the request with its
           Deadline-Us header and decode it back at the farm edge —
           what a real proxy would parse off the socket. A session
           that does not advertise it still enforces the deadline on
           its own side, but the shards cannot shed for it — the
           no-overload-control baseline. *)
        let raw =
          Proxy.Httpwire.encode_request
            ?deadline_us:(if t.advertise_deadline then Some deadline else None)
            ?trace:(Telemetry.Trace.wire rctx) ~cls ()
        in
        let req = Proxy.Httpwire.decode_request_full raw in
        let cls = req.Proxy.Httpwire.rq_cls in
        let deadline = req.Proxy.Httpwire.rq_deadline_us in
        (* The edge rebuilds the context from the decoded headers, not
           from session state — the wire is the source of truth. *)
        let wctx =
          Telemetry.Trace.of_wire ~trace_id:req.Proxy.Httpwire.rq_trace_id
            ~parent_span:req.Proxy.Httpwire.rq_parent_span
        in
        let offset = if hedged then 1 else 0 in
        Proxy.Farm.request ?deadline ~offset ~trace:wctx t.farm ~cls
          (fun reply ->
            if !settled then ()
            else
              match reply with
              | Proxy.Bytes b ->
                t.deliver ~bytes:(String.length b) (fun () ->
                    if not !settled then begin
                      let now = Simnet.Engine.now t.engine in
                      match deadline with
                      | Some d when Int64.compare now d > 0 ->
                        (* Late: never delivered. The deadline timer
                           settles the fetch; this records that a
                           serve would have violated the deadline had
                           the drop been missing. *)
                        t.deadline_violations <- t.deadline_violations + 1;
                        pending := !pending - 1
                      | _ ->
                        if hedged then begin
                          t.hedge_wins <- t.hedge_wins + 1;
                          Telemetry.Global.incr "client.hedge_wins";
                          Telemetry.Trace.event rctx ~node:"client"
                            ~kind:"client.hedge_win"
                            (Printf.sprintf
                               "class %s: hedged request beat the primary" cls)
                        end;
                        Hashtbl.replace t.stale (t.stale_key cls) b;
                        finish (Fresh b)
                    end)
              | Proxy.Not_found ->
                (* Definitive: the class does not exist anywhere, so
                   the racers would only confirm it. *)
                finish Failed
              | Proxy.Overloaded ->
                (* The shard shed us: retry after a backoff iff the
                   session still has tokens and the deadline can still
                   be met. Never failover sideways — that amplifies. *)
                t.overloaded_seen <- t.overloaded_seen + 1;
                (match t.slo with
                | Some s ->
                  Telemetry.Slo.note_shed s
                    ~now_us:(Simnet.Engine.now t.engine)
                | None -> ());
                let retry_at =
                  Int64.add (Simnet.Engine.now t.engine) t.retry_backoff_us
                in
                let in_budget =
                  match deadline with
                  | Some d -> Int64.compare retry_at d < 0
                  | None -> true
                in
                if in_budget && take_token t then begin
                  t.retries <- t.retries + 1;
                  pending := !pending - 1;
                  Simnet.Engine.schedule t.engine ~delay:t.retry_backoff_us
                    (fun () ->
                      if !settled then ()
                      else if !pending > 0 then
                        (* The other racer is still live; don't stack
                           a third copy of the work on the farm. *)
                        ()
                      else attempt ~hedged:false ())
                end
                else one_down ()
              | Proxy.Unavailable ->
                (* Every candidate down or breaker-barred. *)
                one_down ())
      end
    in
    (* Deadline enforcement, client side: at expiry the fetch settles
       (browning out if it can) and any response still in flight is
       dropped on arrival by the settled flag. *)
    Simnet.Engine.schedule t.engine ~delay:t.budget_us (fun () ->
        if not !settled then begin
          Telemetry.Trace.event rctx ~node:"client"
            ~kind:"client.deadline_expired"
            (Printf.sprintf "class %s: budget %Ldus exhausted" cls t.budget_us);
          brownout_or (fun () -> finish Failed)
        end);
    (* Tail-latency hedge: if the first attempt has neither settled
       nor failed after the hedge delay, race a second request against
       the next shard in ring order — spending a token, so hedging
       cannot amplify an overload either. *)
    (match t.hedge_after_us with
    | None -> ()
    | Some h ->
      Simnet.Engine.schedule t.engine ~delay:h (fun () ->
          if (not !settled) && take_token t then begin
            t.hedges <- t.hedges + 1;
            Telemetry.Global.incr "client.hedges";
            Telemetry.Trace.event rctx ~node:"client" ~kind:"client.hedge"
              (Printf.sprintf "class %s: racing ring-offset 1 after %Ldus" cls
                 h);
            attempt ~hedged:true ()
          end));
    attempt ~hedged:false ()
end

(* The monolithic client verifies everything it loads, locally, at
   load time: full static verification against an oracle that can see
   whatever the provider can serve. The cost lands on the client. *)
let monolithic_verify_hook client provider =
  let decode_cache : (string, Bytecode.Classfile.t option) Hashtbl.t =
    Hashtbl.create 32
  in
  let oracle_extra name =
    match Hashtbl.find_opt decode_cache name with
    | Some v -> v
    | None ->
      let v =
        match provider name with
        | None -> None
        | Some bytes -> (
          match Bytecode.Decode.class_of_bytes bytes with
          | cf -> Some cf
          | exception Bytecode.Decode.Format_error _ -> None)
      in
      Hashtbl.replace decode_cache name v;
      v
  in
  let boot_oracle = Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ()) in
  let oracle name =
    match boot_oracle name with
    | Some i -> Some i
    | None -> Option.map Verifier.Oracle.info_of_classfile (oracle_extra name)
  in
  fun (cf : Bytecode.Classfile.t) ->
    match Verifier.Static_verifier.verify ~oracle cf with
    | Verifier.Static_verifier.Verified (_, stats) ->
      client.local_verify_checks <-
        client.local_verify_checks + stats.Verifier.Static_verifier.sv_static_checks;
      Jvm.Vmstate.add_cost client.vm
        (Int64.of_float
           (Costs.monolithic_verify_us_per_check
           *. Float.of_int stats.Verifier.Static_verifier.sv_static_checks))
    | Verifier.Static_verifier.Rejected (errors, stats) ->
      client.local_verify_checks <-
        client.local_verify_checks + stats.Verifier.Static_verifier.sv_static_checks;
      client.local_verify_errors <-
        client.local_verify_errors + List.length errors;
      raise
        (Jvm.Classreg.Load_rejected
           {
             cls = cf.Bytecode.Classfile.name;
             reason =
               (match errors with
               | e :: _ -> Verifier.Verror.to_string e
               | [] -> "verification failed");
           })

(* The monolithic JDK security manager: the stack-introspection check
   at the operations the system designers anticipated, charged at
   Figure 9's measured overheads. *)
let jdk_security_hook vm (policy : Security.Policy.t) ~sid op =
  let overhead =
    match op with
    | "property.get" | "property.set" -> Costs.jdk_overhead_get_property
    | "file.open" -> Costs.jdk_overhead_open_file
    | "thread.setPriority" -> Costs.jdk_overhead_set_priority
    | _ -> Costs.jdk_overhead_get_property
  in
  Jvm.Vmstate.add_cost vm overhead;
  if not (Security.Policy.decide policy ~sid ~permission:op) then
    Jvm.Vmstate.throw vm ~cls:Jvm.Vmstate.c_security ~message:op

let create_monolithic ?(policy = Security.Policy.empty)
    ?(sid = "default") ?(verify = true) ?oracle_provider ~provider () =
  let vm = Jvm.Bootlib.fresh_vm ~provider:(traced_provider provider) () in
  let client =
    {
      vm;
      architecture = Monolithic;
      rt_verifier = None;
      enforcement = None;
      profiler = None;
      local_verify_checks = 0;
      local_verify_errors = 0;
    }
  in
  (* The verifier's environment lookups resolve against the raw origin
     (no transfer metering): resolution state is local to the client in
     a monolithic VM. *)
  let oracle_provider = Option.value ~default:provider oracle_provider in
  if verify then
    Jvm.Classreg.set_on_load vm.Jvm.Vmstate.reg
      (monolithic_verify_hook client oracle_provider);
  vm.Jvm.Vmstate.security_hook <- Some (jdk_security_hook vm policy ~sid);
  client

let create_dvm ?console ?(session = 0) ?security_server ?(sid = "default")
    ~provider () =
  let vm = Jvm.Bootlib.fresh_vm ~provider:(traced_provider provider) () in
  let rt = Verifier.Rt_verifier.install vm in
  let enforcement =
    Option.map (fun server -> Security.Enforcement.install vm ~server ~sid)
      security_server
  in
  let profiler = Monitor.Profiler.install vm ?console ~session () in
  {
    vm;
    architecture = Dvm_client;
    rt_verifier = Some rt;
    enforcement;
    profiler = Some profiler;
    local_verify_checks = 0;
    local_verify_errors = 0;
  }

let run_main client entry =
  if not (Telemetry.Global.on ()) then Jvm.Interp.run_main client.vm entry
  else
    Telemetry.Global.with_span ~cat:"client" ~args:[ ("entry", entry) ]
      "client.run" (fun () ->
        let invocations0 = client.vm.Jvm.Vmstate.invocations in
        let instrs0 = client.vm.Jvm.Vmstate.instr_count in
        let r = Jvm.Interp.run_main client.vm entry in
        Telemetry.Global.add "jvm.methods_invoked"
          (Int64.of_int (client.vm.Jvm.Vmstate.invocations - invocations0));
        Telemetry.Global.add "jvm.bytecodes_executed"
          (Int64.of_int (client.vm.Jvm.Vmstate.instr_count - instrs0));
        r)

let client_time_us client = Costs.client_us_of_vm client.vm
