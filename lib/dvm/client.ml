(* Client assembly: builds a VM configured either as a *monolithic*
   virtual machine (all services local: load-time verification,
   stack-introspection security, client-side auditing) or as a *DVM
   client* (thin runtime plus the dynamic service components:
   RTVerifier link checks, the enforcement manager, the monitoring
   natives). *)

type architecture =
  | Monolithic
  | Dvm_client

type t = {
  vm : Jvm.Vmstate.t;
  architecture : architecture;
  (* DVM dynamic components (present on DVM clients). *)
  rt_verifier : Verifier.Rt_verifier.stats option;
  enforcement : Security.Enforcement.t option;
  profiler : Monitor.Profiler.t option;
  (* Monolithic local-service accounting. *)
  mutable local_verify_checks : int;
  mutable local_verify_errors : int;
}

(* Telemetry around the client's window onto the network: each class
   fetch is a span (and a round-trip latency observation) in the
   "client" subsystem, nested inside the registry's jvm.class_load
   span and containing the proxy/pipeline spans it triggers. *)
let traced_provider (provider : Jvm.Classreg.provider) : Jvm.Classreg.provider
    =
 fun name ->
  if not (Telemetry.Global.on ()) then provider name
  else
    Telemetry.Global.with_span ~cat:"client" ~args:[ ("class", name) ]
      ~observe_hist:"client.fetch_us" "client.fetch" (fun () ->
        Telemetry.Global.incr "client.fetches";
        match provider name with
        | Some b as r ->
          Telemetry.Global.add "client.bytes_fetched"
            (Int64.of_int (String.length b));
          r
        | None -> None)

(* --- Fetch resilience: timeout-equivalent retry with graceful
   degradation. ---

   The synchronous provider the VM loads through can fail
   transiently — the proxy down, the response lost. A resilient
   provider retries with bounded exponential backoff and, once the
   retry budget for a class is exhausted, degrades gracefully: it
   serves the paper's error-propagation replacement class (§3.1), so
   an unreachable service surfaces to the application as an ordinary
   Java exception at class-initialization time instead of a hang. *)

type fetch = Fetched of string | Fetch_unavailable | Fetch_absent

type retry_policy = {
  rp_attempts : int; (* total tries per class, >= 1 *)
  rp_base_backoff_us : int; (* backoff before the 2nd try; doubles *)
  rp_max_backoff_us : int;
}

let default_retry_policy =
  { rp_attempts = 4; rp_base_backoff_us = 50_000; rp_max_backoff_us = 800_000 }

let backoff_us policy ~attempt =
  (* attempt is 1-based: the backoff taken after attempt n fails. *)
  let b = policy.rp_base_backoff_us * (1 lsl min 20 (attempt - 1)) in
  min b policy.rp_max_backoff_us

let degraded_class_bytes ~cls ~attempts =
  Bytecode.Encode.class_to_bytes
    (Verifier.Error_class.build ~name:cls
       ~message:
         (Printf.sprintf "service unavailable after %d attempts" attempts))

let resilient_provider ?(policy = default_retry_policy) ?on_backoff
    (fetch : string -> fetch) : Jvm.Classreg.provider =
 fun cls ->
  let rec attempt n =
    match fetch cls with
    | Fetched b -> Some b
    | Fetch_absent -> None
    | Fetch_unavailable ->
      if n >= policy.rp_attempts then begin
        Telemetry.Global.incr "client.degraded";
        Some (degraded_class_bytes ~cls ~attempts:n)
      end
      else begin
        let backoff = backoff_us policy ~attempt:n in
        Telemetry.Global.incr "client.retries";
        Telemetry.Global.observe "client.retry_backoff_us"
          (Int64.of_int backoff);
        (match on_backoff with
        | Some f -> f (Int64.of_int backoff)
        | None -> ());
        attempt (n + 1)
      end
  in
  attempt 1

(* The monolithic client verifies everything it loads, locally, at
   load time: full static verification against an oracle that can see
   whatever the provider can serve. The cost lands on the client. *)
let monolithic_verify_hook client provider =
  let decode_cache : (string, Bytecode.Classfile.t option) Hashtbl.t =
    Hashtbl.create 32
  in
  let oracle_extra name =
    match Hashtbl.find_opt decode_cache name with
    | Some v -> v
    | None ->
      let v =
        match provider name with
        | None -> None
        | Some bytes -> (
          match Bytecode.Decode.class_of_bytes bytes with
          | cf -> Some cf
          | exception Bytecode.Decode.Format_error _ -> None)
      in
      Hashtbl.replace decode_cache name v;
      v
  in
  let boot_oracle = Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ()) in
  let oracle name =
    match boot_oracle name with
    | Some i -> Some i
    | None -> Option.map Verifier.Oracle.info_of_classfile (oracle_extra name)
  in
  fun (cf : Bytecode.Classfile.t) ->
    match Verifier.Static_verifier.verify ~oracle cf with
    | Verifier.Static_verifier.Verified (_, stats) ->
      client.local_verify_checks <-
        client.local_verify_checks + stats.Verifier.Static_verifier.sv_static_checks;
      Jvm.Vmstate.add_cost client.vm
        (Int64.of_float
           (Costs.monolithic_verify_us_per_check
           *. Float.of_int stats.Verifier.Static_verifier.sv_static_checks))
    | Verifier.Static_verifier.Rejected (errors, stats) ->
      client.local_verify_checks <-
        client.local_verify_checks + stats.Verifier.Static_verifier.sv_static_checks;
      client.local_verify_errors <-
        client.local_verify_errors + List.length errors;
      raise
        (Jvm.Classreg.Load_rejected
           {
             cls = cf.Bytecode.Classfile.name;
             reason =
               (match errors with
               | e :: _ -> Verifier.Verror.to_string e
               | [] -> "verification failed");
           })

(* The monolithic JDK security manager: the stack-introspection check
   at the operations the system designers anticipated, charged at
   Figure 9's measured overheads. *)
let jdk_security_hook vm (policy : Security.Policy.t) ~sid op =
  let overhead =
    match op with
    | "property.get" | "property.set" -> Costs.jdk_overhead_get_property
    | "file.open" -> Costs.jdk_overhead_open_file
    | "thread.setPriority" -> Costs.jdk_overhead_set_priority
    | _ -> Costs.jdk_overhead_get_property
  in
  Jvm.Vmstate.add_cost vm overhead;
  if not (Security.Policy.decide policy ~sid ~permission:op) then
    Jvm.Vmstate.throw vm ~cls:Jvm.Vmstate.c_security ~message:op

let create_monolithic ?(policy = Security.Policy.empty)
    ?(sid = "default") ?(verify = true) ?oracle_provider ~provider () =
  let vm = Jvm.Bootlib.fresh_vm ~provider:(traced_provider provider) () in
  let client =
    {
      vm;
      architecture = Monolithic;
      rt_verifier = None;
      enforcement = None;
      profiler = None;
      local_verify_checks = 0;
      local_verify_errors = 0;
    }
  in
  (* The verifier's environment lookups resolve against the raw origin
     (no transfer metering): resolution state is local to the client in
     a monolithic VM. *)
  let oracle_provider = Option.value ~default:provider oracle_provider in
  if verify then
    Jvm.Classreg.set_on_load vm.Jvm.Vmstate.reg
      (monolithic_verify_hook client oracle_provider);
  vm.Jvm.Vmstate.security_hook <- Some (jdk_security_hook vm policy ~sid);
  client

let create_dvm ?console ?(session = 0) ?security_server ?(sid = "default")
    ~provider () =
  let vm = Jvm.Bootlib.fresh_vm ~provider:(traced_provider provider) () in
  let rt = Verifier.Rt_verifier.install vm in
  let enforcement =
    Option.map (fun server -> Security.Enforcement.install vm ~server ~sid)
      security_server
  in
  let profiler = Monitor.Profiler.install vm ?console ~session () in
  {
    vm;
    architecture = Dvm_client;
    rt_verifier = Some rt;
    enforcement;
    profiler = Some profiler;
    local_verify_checks = 0;
    local_verify_errors = 0;
  }

let run_main client entry =
  if not (Telemetry.Global.on ()) then Jvm.Interp.run_main client.vm entry
  else
    Telemetry.Global.with_span ~cat:"client" ~args:[ ("entry", entry) ]
      "client.run" (fun () ->
        let invocations0 = client.vm.Jvm.Vmstate.invocations in
        let instrs0 = client.vm.Jvm.Vmstate.instr_count in
        let r = Jvm.Interp.run_main client.vm entry in
        Telemetry.Global.add "jvm.methods_invoked"
          (Int64.sub client.vm.Jvm.Vmstate.invocations invocations0);
        Telemetry.Global.add "jvm.bytecodes_executed"
          (Int64.sub client.vm.Jvm.Vmstate.instr_count instrs0);
        r)

let client_time_us client = Costs.client_us_of_vm client.vm
