(** Client assembly.

    Builds a VM configured either as a {e monolithic} virtual machine
    (all services local: load-time verification, stack-introspection
    security, client-side auditing) or as a {e DVM client} (thin
    runtime plus the dynamic service components: RTVerifier link
    checks, the enforcement manager, the monitoring natives). *)

type architecture = Monolithic | Dvm_client

type t = {
  vm : Jvm.Vmstate.t;
  architecture : architecture;
  rt_verifier : Verifier.Rt_verifier.stats option;
  enforcement : Security.Enforcement.t option;
  profiler : Monitor.Profiler.t option;
  mutable local_verify_checks : int;
  mutable local_verify_errors : int;
}

(** {1 Fetch resilience} *)

type fetch = Fetched of string | Fetch_unavailable | Fetch_absent
(** Outcome of one provider try: served, transiently failed (proxy
    down, response lost — worth retrying), or definitively absent. *)

type retry_policy = {
  rp_attempts : int;  (** total tries per class, >= 1 *)
  rp_base_backoff_us : int;  (** backoff before the 2nd try; doubles *)
  rp_max_backoff_us : int;
}

val default_retry_policy : retry_policy
(** 4 attempts, 50 ms base backoff, 800 ms cap. *)

val backoff_us : retry_policy -> attempt:int -> int
(** Bounded exponential backoff after 1-based [attempt] fails. *)

val degraded_class_bytes : cls:string -> attempts:int -> string
(** The error-propagation replacement class (§3.1) served when the
    retry budget is exhausted: same name, raises at initialization. *)

val resilient_provider :
  ?policy:retry_policy ->
  ?on_backoff:(int64 -> unit) ->
  (string -> fetch) ->
  Jvm.Classreg.provider
(** Wrap a flaky fetch in bounded exponential-backoff retry; when the
    budget is exhausted the provider degrades gracefully to
    {!degraded_class_bytes} instead of hanging or failing the load.
    [on_backoff] is called with each backoff (µs) so callers can
    charge the wait to a clock. Counters: [client.retries],
    [client.degraded]; histogram [client.retry_backoff_us]. *)

val jdk_security_hook :
  Jvm.Vmstate.t -> Security.Policy.t -> sid:Security.Policy.sid -> string -> unit
(** The monolithic JDK security manager: stack-introspection checks at
    the anticipated operations, charged at Figure 9's overheads. *)

val create_monolithic :
  ?policy:Security.Policy.t ->
  ?sid:Security.Policy.sid ->
  ?verify:bool ->
  ?oracle_provider:Jvm.Classreg.provider ->
  provider:Jvm.Classreg.provider ->
  unit ->
  t
(** [oracle_provider] serves the local verifier's environment lookups
    (defaults to [provider]); pass the raw origin to keep transfer
    metering honest. *)

val create_dvm :
  ?console:Monitor.Console.t ->
  ?session:int ->
  ?security_server:Security.Server.t ->
  ?sid:Security.Policy.sid ->
  provider:Jvm.Classreg.provider ->
  unit ->
  t

val run_main : t -> string -> (unit, Jvm.Value.t) result
val client_time_us : t -> int64
