(** Client assembly.

    Builds a VM configured either as a {e monolithic} virtual machine
    (all services local: load-time verification, stack-introspection
    security, client-side auditing) or as a {e DVM client} (thin
    runtime plus the dynamic service components: RTVerifier link
    checks, the enforcement manager, the monitoring natives). *)

type architecture = Monolithic | Dvm_client

type t = {
  vm : Jvm.Vmstate.t;
  architecture : architecture;
  rt_verifier : Verifier.Rt_verifier.stats option;
  enforcement : Security.Enforcement.t option;
  profiler : Monitor.Profiler.t option;
  mutable local_verify_checks : int;
  mutable local_verify_errors : int;
}

(** {1 Fetch resilience} *)

type fetch = Fetched of string | Fetch_unavailable | Fetch_absent
(** Outcome of one provider try: served, transiently failed (proxy
    down, response lost — worth retrying), or definitively absent. *)

type retry_policy = {
  rp_attempts : int;  (** total tries per class, >= 1 *)
  rp_base_backoff_us : int;  (** backoff before the 2nd try; doubles *)
  rp_max_backoff_us : int;
}

val default_retry_policy : retry_policy
(** 4 attempts, 50 ms base backoff, 800 ms cap. *)

val backoff_us : retry_policy -> attempt:int -> int
(** Bounded exponential backoff after 1-based [attempt] fails. *)

val degraded_class_bytes : cls:string -> attempts:int -> string
(** The error-propagation replacement class (§3.1) served when the
    retry budget is exhausted: same name, raises at initialization. *)

val resilient_provider :
  ?policy:retry_policy ->
  ?budget:int ref ->
  ?on_backoff:(int64 -> unit) ->
  (string -> fetch) ->
  Jvm.Classreg.provider
(** Wrap a flaky fetch in bounded exponential-backoff retry; when the
    budget is exhausted the provider degrades gracefully to
    {!degraded_class_bytes} instead of hanging or failing the load.
    [budget] is a {e session-wide} retry-token pool shared by every
    class this provider loads (each retry decrements it; empty ⇒
    degrade immediately), so a burst of failing classes cannot
    multiply retries into an overload amplifier. [on_backoff] is
    called with each backoff (µs) so callers can charge the wait to a
    clock. Counters: [client.retries], [client.degraded]; histogram
    [client.retry_backoff_us]. *)

(** {1 Overload-aware farm sessions}

    The simulated-time client side of overload control: deadlines on
    the wire, session-wide retry/hedge token budgets, tail-latency
    hedging against the next shard in ring order, and serve-stale
    brownout when the farm is unavailable. *)
module Session : sig
  type served =
    | Fresh of string  (** served inside its deadline *)
    | Stale of string
        (** brownout: the archive's last fresh bytes for this key,
            counted apart from fresh serves *)
    | Failed

  type t = {
    engine : Simnet.Engine.t;
    farm : Proxy.Farm.t;
    budget_us : int64;  (** per-fetch deadline budget *)
    hedge_after_us : int64 option;  (** hedge delay; [None] disables *)
    advertise_deadline : bool;  (** carry [Deadline-Us] on the wire? *)
    retry_backoff_us : int64;
    tokens : int ref;  (** session-wide retry+hedge pool *)
    deliver : bytes:int -> (unit -> unit) -> unit;  (** client-side wire *)
    slo : Telemetry.Slo.t option;  (** per-outcome SLO feed *)
    stale_key : string -> string;
    stale : (string, string) Hashtbl.t;
    mutable fetches : int;
    mutable served : int;
    mutable bytes_served : int;
    mutable stale_served : int;
    mutable hedges : int;
    mutable hedge_wins : int;  (** fetches the hedged request won *)
    mutable retries : int;
    mutable overloaded_seen : int;  (** [Overloaded] replies observed *)
    mutable failed : int;
    mutable deadline_violations : int;
        (** late responses that would have been served had the client
            not dropped them — 0 by construction; nonzero means the
            deadline machinery broke *)
  }

  val create :
    ?budget_us:int64 ->
    ?hedge_after_us:int64 ->
    ?advertise_deadline:bool ->
    ?retry_backoff_us:int64 ->
    ?retry_budget:int ->
    ?deliver:(bytes:int -> (unit -> unit) -> unit) ->
    ?slo:Telemetry.Slo.t ->
    ?stale_key:(string -> string) ->
    Simnet.Engine.t ->
    Proxy.Farm.t ->
    t
  (** Defaults: 2 s deadline budget, no hedging, deadline advertised
      on the wire, 50 ms retry backoff, unbounded token pool,
      immediate delivery, no SLO feed, identity archive key. [slo]
      receives one outcome per settled fetch (fresh/stale/failed,
      plus shed notes). [advertise_deadline:
      false] keeps client-side deadline enforcement but hides the
      deadline from the shards (so admission cannot shed) — the
      no-overload-control baseline. [stale_key] maps a class name to
      its stale-archive key (e.g. the applet prefix), so unique
      per-request names still brown out to the applet's last good
      bytes. *)

  val fetch : t -> cls:string -> (served -> unit) -> unit
  (** One deadline-bound fetch. When {!Telemetry.Trace} is enabled the
      fetch mints a distributed trace: the client span is the root,
      the context rides the wire as [Trace-Id]/[Parent-Span-Id], and
      hedges, hedge wins, serve-stale brownouts and deadline expiry
      attach reason events. The deadline (now + budget) is encoded
      into the request's [Deadline-Us] header and decoded at the farm
      edge; shard admission sheds against it, and the client drops any
      response that lands past it. [Overloaded] replies are retried
      (with backoff) only while the token pool and the remaining
      budget allow; [Unavailable] — every shard down or
      breaker-barred — browns out to the stale archive, as does
      deadline expiry. The hedge, when enabled, races a second request
      at ring offset 1 after [hedge_after_us]; first response wins and
      the loser is discarded on arrival. *)
end

val jdk_security_hook :
  Jvm.Vmstate.t -> Security.Policy.t -> sid:Security.Policy.sid -> string -> unit
(** The monolithic JDK security manager: stack-introspection checks at
    the anticipated operations, charged at Figure 9's overheads. *)

val create_monolithic :
  ?policy:Security.Policy.t ->
  ?sid:Security.Policy.sid ->
  ?verify:bool ->
  ?oracle_provider:Jvm.Classreg.provider ->
  provider:Jvm.Classreg.provider ->
  unit ->
  t
(** [oracle_provider] serves the local verifier's environment lookups
    (defaults to [provider]); pass the raw origin to keep transfer
    metering honest. *)

val create_dvm :
  ?console:Monitor.Console.t ->
  ?session:int ->
  ?security_server:Security.Server.t ->
  ?sid:Security.Policy.sid ->
  provider:Jvm.Classreg.provider ->
  unit ->
  t

val run_main : t -> string -> (unit, Jvm.Value.t) result
val client_time_us : t -> int64
