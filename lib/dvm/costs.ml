(* The shared cost model, expressed in simulated microseconds on the
   paper's reference client (200 MHz PentiumPro, 64 MB). All absolute
   constants are calibrations — the reproduction claims shapes, not
   cycle counts — but each is anchored to a number the paper reports:

   - interpretation speed anchors Figure 6's run-time magnitudes;
   - the per-check verifier cost anchors Figure 7 against the check
     counts of Figure 8;
   - the JDK security overheads are Figure 9's measured columns;
   - proxy parse/instrument cost anchors the 265 ms average applet
     overhead of §4.1.2 (see Proxy.Pipeline). *)

(* Client interpretation: one bytecode on the reference machine. *)
let client_us_per_bytecode = 5.0

(* Client-side class-file parsing (both architectures parse what they
   load). *)
let client_parse_us_per_byte = 2.0

(* Monolithic verifier: per static check at class-load time. Figure 7's
   bars are (checks from Figure 8) x (this constant). *)
let monolithic_verify_us_per_check = 10.0

(* Monolithic auditing-equivalent cost per method invocation (the
   null-proxy configuration performs the service in the client). *)
let monolithic_audit_us_per_invocation = 15.0

(* JDK 1.2 stack-introspection security overheads, Figure 9 "JDK
   (overhead)" column, µs. *)
let jdk_overhead_get_property = 47L
let jdk_overhead_open_file = 7224L
let jdk_overhead_set_priority = 1L

(* Client LAN: 10 Mb/s Ethernet. *)
let lan_bandwidth_bps = 10_000_000
let lan_latency_us = 500

let lan_transfer_us ~bytes =
  lan_latency_us
  + int_of_float (Float.of_int bytes *. 8.0 *. 1_000_000.0
                  /. Float.of_int lan_bandwidth_bps)

(* Convert the VM's cost units into microseconds: instruction counts
   weighted by interpretation speed, native costs taken at face
   value. *)
let client_us_of_vm (vm : Jvm.Vmstate.t) =
  Int64.of_float
    (float_of_int vm.Jvm.Vmstate.instr_count *. client_us_per_bytecode)
  |> Int64.add (Int64.of_int vm.Jvm.Vmstate.native_cost)

let us_to_s us = Int64.to_float us /. 1_000_000.0
