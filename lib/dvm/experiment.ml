(* The end-to-end experiment harness (§4.1, Figure 6): runs a benchmark
   application under a service architecture and accounts for every
   component of the wall time — client execution, client-side service
   work, proxy work, and network transfer.

   Both architectures use identical clients and identical class bytes
   at the origin; only the service architecture differs, mirroring the
   paper's methodology ("identical software and hardware platforms, but
   under different service architectures"). *)

type architecture =
  | Monolithic
  | Dvm of { cached : bool }

let architecture_name = function
  | Monolithic -> "Monolithic"
  | Dvm { cached = false } -> "DVM"
  | Dvm { cached = true } -> "DVM cached"

type result = {
  r_app : string;
  r_arch : architecture;
  r_wall_us : int64;
  r_client_us : int64; (* execution + client-resident service work *)
  r_proxy_us : int64;
  r_transfer_us : int64;
  r_bytes_fetched : int;
  r_static_checks : int;
  r_dynamic_checks : int;
  r_enforcement_checks : int;
  r_audit_events : int;
  r_output : string;
  r_decisions : (string * bool) list;
      (* enforcement (permission, verdict) sequence, in order *)
}

let wall r = r.r_wall_us

(* A standard audit+security+verification pipeline over a policy that,
   per §4.1, forces the services to parse every class and examine
   every instruction. *)
let standard_policy =
  Security.Policy_xml.parse
    {|<policy default="allow">
        <domain name="apps">
          <grant permission="file.open"/>
          <grant permission="file.read"/>
          <grant permission="property.get"/>
          <grant permission="thread.setPriority"/>
        </domain>
        <operation permission="file.open" class="java/io/FileInputStream" method="&lt;init&gt;"/>
        <operation permission="file.read" class="java/io/FileInputStream" method="read"/>
        <operation permission="property.get" class="java/lang/System" method="getProperty"/>
        <operation permission="thread.setPriority" class="java/lang/Thread" method="setPriority"/>
        <principal classprefix="" domain="apps"/>
      </policy>|}

type services = {
  verifier_counters : Verifier.Static_verifier.counters;
  security_counters : Security.Rewriter.counters;
  audit_counters : Monitor.Instrument.counters;
  filters : Rewrite.Filter.t list;
}

let standard_services ?(policy = standard_policy) ?elide ~oracle () =
  let verifier_counters = Verifier.Static_verifier.fresh_counters () in
  let security_counters = Security.Rewriter.fresh_counters () in
  let audit_counters = Monitor.Instrument.fresh_counters () in
  {
    verifier_counters;
    security_counters;
    audit_counters;
    filters =
      [
        Verifier.Static_verifier.filter ~counters:verifier_counters ~oracle ();
        Security.Rewriter.filter ~counters:security_counters ?elide policy;
        Monitor.Instrument.audit_filter ~counters:audit_counters ();
        (* §4.3: the self-describing attribute goes on last so it
           reflects the fully transformed class *)
        Verifier.Reflect.filter ();
      ];
  }

(* Wrap a provider so that each served class is charged for LAN
   transfer and client-side parsing, and the byte volume recorded. *)
let metered_provider inner ~transfer_us ~bytes =
 fun name ->
  match inner name with
  | None -> None
  | Some b ->
    transfer_us := !transfer_us + Costs.lan_transfer_us ~bytes:(String.length b);
    bytes := !bytes + String.length b;
    Some b

let run_arch ?elide ~policy ~arch (app : Workloads.Appgen.app) : result =
  let origin = Workloads.Appgen.origin app in
  let transfer_us = ref 0 in
  let bytes = ref 0 in
  match arch with
  | Monolithic ->
    let provider = metered_provider origin ~transfer_us ~bytes in
    let client =
      Client.create_monolithic ~policy ~oracle_provider:origin ~provider ()
    in
    let outcome = Client.run_main client app.Workloads.Appgen.entry in
    let output =
      match outcome with
      | Ok () -> Jvm.Vmstate.output client.Client.vm
      | Error e -> "uncaught: " ^ Jvm.Interp.describe_throwable e
    in
    (* The null-proxy configuration performs auditing in the client:
       charge the equivalent per-invocation cost. *)
    let audit_equiv =
      Int64.of_float
        (Costs.monolithic_audit_us_per_invocation
        *. float_of_int client.Client.vm.Jvm.Vmstate.invocations)
    in
    let parse_us =
      Int64.of_float (Costs.client_parse_us_per_byte *. Float.of_int !bytes)
    in
    let client_us =
      Int64.add (Client.client_time_us client) (Int64.add audit_equiv parse_us)
    in
    {
      r_app = app.Workloads.Appgen.spec.Workloads.Appgen.name;
      r_arch = arch;
      r_wall_us = Int64.add client_us (Int64.of_int !transfer_us);
      r_client_us = client_us;
      r_proxy_us = 0L;
      r_transfer_us = Int64.of_int !transfer_us;
      r_bytes_fetched = !bytes;
      r_static_checks = client.Client.local_verify_checks;
      r_dynamic_checks = 0;
      r_enforcement_checks = 0;
      r_audit_events = client.Client.vm.Jvm.Vmstate.invocations;
      r_output = output;
      r_decisions = [];
    }
  | Dvm { cached } ->
    let engine = Simnet.Engine.create () in
    (* The proxy's oracle grows as classes stream through it: a class
       referencing one the proxy has not yet seen gets deferred
       (dynamic) link checks, exactly the lazy scheme of §3.1 that
       Figure 8 counts. *)
    let seen : (string, Verifier.Oracle.class_info) Hashtbl.t =
      Hashtbl.create 64
    in
    let boot_oracle =
      Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ())
    in
    let oracle name =
      match boot_oracle name with
      | Some i -> Some i
      | None -> Hashtbl.find_opt seen name
    in
    let services = standard_services ~policy ?elide ~oracle () in
    let record_filter =
      Rewrite.Filter.make ~name:"record-seen" (fun cf ->
          Hashtbl.replace seen cf.Bytecode.Classfile.name
            (Verifier.Oracle.info_of_classfile cf);
          cf)
    in
    let services =
      { services with filters = services.filters @ [ record_filter ] }
    in
    let proxy =
      Proxy.create engine
        ~cache_capacity:(if cached then 48 * 1024 * 1024 else 0)
        ~origin
        ~origin_latency:(fun _ -> 0L) (* intranet origin *)
        ~filters:services.filters ()
    in
    (if cached then
       (* Model a prior fetch by another client in the organization:
          warm the cache. *)
       List.iter
         (fun cf ->
           ignore (Proxy.request_sync proxy ~cls:cf.Bytecode.Classfile.name))
         app.Workloads.Appgen.classes);
    let proxy_cpu_before = proxy.Proxy.cpu_us in
    let provider name =
      match Proxy.request_sync proxy ~cls:name with
      | Proxy.Not_found | Proxy.Unavailable | Proxy.Overloaded -> None
      | Proxy.Bytes b -> Some b
    in
    (* The console shares the simulation's clock, so its audit trail
       lines up with telemetry spans captured during the run. *)
    let console =
      Monitor.Console.create ~clock:(fun () -> Simnet.Engine.now engine) ()
    in
    let cclient =
      Monitor.Console.handshake console ~user:"egs" ~hardware:"x86-200MHz-64MB"
        ~native_format:"x86" ~vm_version:"dvm-1.0"
    in
    let security_server = Security.Server.create policy in
    let provider = metered_provider provider ~transfer_us ~bytes in
    let client =
      Client.create_dvm ~console ~session:cclient.Monitor.Console.session
        ~security_server ~sid:"apps" ~provider ()
    in
    Monitor.Console.record_app_start console cclient
      ~app:app.Workloads.Appgen.entry;
    let outcome = Client.run_main client app.Workloads.Appgen.entry in
    let output =
      match outcome with
      | Ok () -> Jvm.Vmstate.output client.Client.vm
      | Error e -> "uncaught: " ^ Jvm.Interp.describe_throwable e
    in
    (* Proxy CPU time attributable to this run: uncached fetches run
       the pipeline, cached fetches cost the fixed cache service. *)
    let proxy_us = Int64.sub proxy.Proxy.cpu_us proxy_cpu_before in
    let parse_us =
      Int64.of_float (Costs.client_parse_us_per_byte *. Float.of_int !bytes)
    in
    let client_us = Int64.add (Client.client_time_us client) parse_us in
    let dynamic_checks =
      match client.Client.rt_verifier with
      | Some s -> s.Verifier.Rt_verifier.dynamic_checks
      | None -> 0
    in
    let enforcement_checks =
      match client.Client.enforcement with
      | Some e -> e.Security.Enforcement.checks
      | None -> 0
    in
    {
      r_app = app.Workloads.Appgen.spec.Workloads.Appgen.name;
      r_arch = arch;
      r_wall_us =
        Int64.add client_us (Int64.add proxy_us (Int64.of_int !transfer_us));
      r_client_us = client_us;
      r_proxy_us = proxy_us;
      r_transfer_us = Int64.of_int !transfer_us;
      r_bytes_fetched = !bytes;
      r_static_checks =
        services.verifier_counters
          .Verifier.Static_verifier.total_static_checks;
      r_dynamic_checks = dynamic_checks;
      r_enforcement_checks = enforcement_checks;
      r_audit_events = Monitor.Audit.count (Monitor.Console.audit console);
      r_output = output;
      r_decisions =
        (match client.Client.enforcement with
        | Some e -> Security.Enforcement.decisions e
        | None -> []);
    }

let run ?(policy = standard_policy) ?elide ~arch app =
  Telemetry.Global.with_span ~cat:"experiment"
    ~args:
      [
        ("app", app.Workloads.Appgen.spec.Workloads.Appgen.name);
        ("arch", architecture_name arch);
      ]
    "experiment.run"
    (fun () -> run_arch ?elide ~policy ~arch app)
