(** The end-to-end experiment harness (§4.1, Figure 6).

    Runs a benchmark application under a service architecture,
    accounting every component of the wall time: client execution,
    client-resident service work, proxy work, and network transfer.
    Both architectures use identical clients and identical class bytes
    at the origin; only the service architecture differs. *)

type architecture = Monolithic | Dvm of { cached : bool }

val architecture_name : architecture -> string

type result = {
  r_app : string;
  r_arch : architecture;
  r_wall_us : int64;
  r_client_us : int64;  (** execution + client-resident service work *)
  r_proxy_us : int64;
  r_transfer_us : int64;
  r_bytes_fetched : int;
  r_static_checks : int;
  r_dynamic_checks : int;
  r_enforcement_checks : int;
  r_audit_events : int;
  r_output : string;
  r_decisions : (string * bool) list;
      (** enforcement (permission, verdict) sequence, in order; empty
          under the monolithic architecture *)
}

val wall : result -> int64

val standard_policy : Security.Policy.t
(** Per §4.1: a policy that forces the services to parse every class
    and examine every instruction. *)

type services = {
  verifier_counters : Verifier.Static_verifier.counters;
  security_counters : Security.Rewriter.counters;
  audit_counters : Monitor.Instrument.counters;
  filters : Rewrite.Filter.t list;
}

val standard_services :
  ?policy:Security.Policy.t ->
  ?elide:bool ->
  oracle:Verifier.Oracle.t ->
  unit ->
  services
(** [elide] (default true) lets the security rewriter drop checks the
    proxy-side dataflow analysis proves redundant. *)

val run :
  ?policy:Security.Policy.t ->
  ?elide:bool ->
  arch:architecture ->
  Workloads.Appgen.app ->
  result
