(* The scaling experiment of §4.2 (Figure 10): up to hundreds of
   clients simultaneously fetch different applets from the Internet
   through one proxy with caching disabled — the worst case for a DVM.

   Resource model: the proxy serializes pipeline work on one reference
   CPU and holds per-connected-client service state (connection
   buffers, session and rewriting state) in its 64 MB of memory. While
   client count stays under the memory budget, throughput grows
   linearly — the static services never synchronize with clients or
   share exclusive state. Past it, the host pages and all service work
   slows down: the knee the paper reports at its 64 MB. *)

type point = {
  clients : int;
  throughput_bytes_per_s : float;
  mean_latency_us : float;
  mean_latency_s_per_kb : float;
  requests_completed : int;
  proxy_utilization : float;
}

(* Per-connected-client proxy footprint: 256 KB of connection and
   service state. 250 clients saturate the 64 MB proxy. *)
let per_client_state_bytes = 256 * 1024

(* Per-client think time between fetches: browsing users do not
   request applets back to back. *)
let think_time = Simnet.Engine.sec 9

let run ?(duration_s = 30) ?(seed = 7) ?(applet_count = 64)
    ?(mem_capacity = 64 * 1024 * 1024) ?(proxies = 1)
    ?(cache_capacity = 0) ~clients () : point =
  let engine = Simnet.Engine.create () in
  let pop = Workloads.Applets.population ~n:applet_count ~seed () in
  let applets = Array.of_list pop in
  (* Realize one served body per applet (real class bytes the pipeline
     can decode, verify and rewrite). *)
  let bodies =
    Array.map
      (fun ap -> Bytecode.Encode.class_to_bytes (Workloads.Applets.realize ap))
      applets
  in
  let origin name =
    (* name = "a<k>/<uniq>": serve body k *)
    match String.index_opt name '/' with
    | Some i ->
      let k = int_of_string (String.sub name 1 (i - 1)) in
      Some bodies.(k mod Array.length bodies)
    | None -> None
  in
  let origin_latency name =
    match String.index_opt name '/' with
    | Some i ->
      let k = int_of_string (String.sub name 1 (i - 1)) in
      Int64.of_int applets.(k mod Array.length applets).Workloads.Applets.ap_wan_latency_us
    | None -> Simnet.Engine.ms 2000
  in
  let oracle = Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ()) in
  let filters =
    [
      Verifier.Static_verifier.filter ~oracle ();
      Security.Rewriter.filter Experiment.standard_policy;
      Monitor.Instrument.audit_filter ();
    ]
  in
  (* Replicated server implementations (§2): clients spread round-robin
     over the proxy pool, each proxy holding its own share of
     per-client state. *)
  let pool =
    Array.init proxies (fun _ ->
        Proxy.create engine ~cache_capacity ~mem_capacity ~origin
          ~origin_latency ~filters ())
  in
  Array.iteri
    (fun i proxy ->
      let share = (clients / proxies) + (if i < clients mod proxies then 1 else 0) in
      Simnet.Host.allocate proxy.Proxy.host (share * per_client_state_bytes))
    pool;
  let lan = Simnet.Link.ethernet_10mb engine in
  let horizon = Simnet.Engine.sec duration_s in
  let completed = ref 0 in
  let bytes_delivered = ref 0 in
  let latency_sum = ref 0L in
  let latency_weighted_kb = ref 0.0 in
  let rec client_loop id iter =
    (* With the cache disabled every request is unique (the paper's
       worst case); with it enabled, clients share the popular applet
       set and the cache can work. *)
    let k = (id + (iter * 37)) mod applet_count in
    let name =
      if cache_capacity > 0 then Printf.sprintf "a%d/pop" k
      else Printf.sprintf "a%d/c%d-i%d" k id iter
    in
    let started = Simnet.Engine.now engine in
    let proxy = pool.(id mod proxies) in
    Proxy.request proxy ~cls:name (fun reply ->
        match reply with
        | Proxy.Not_found | Proxy.Unavailable -> ()
        | Proxy.Bytes b ->
          Simnet.Link.transfer lan ~bytes:(String.length b) (fun () ->
              let now = Simnet.Engine.now engine in
              if Int64.compare now horizon <= 0 then begin
                incr completed;
                bytes_delivered := !bytes_delivered + String.length b;
                let lat = Int64.sub now started in
                latency_sum := Int64.add !latency_sum lat;
                latency_weighted_kb :=
                  !latency_weighted_kb
                  +. (Int64.to_float lat /. 1_000_000.0)
                     /. (Float.of_int (String.length b) /. 1024.0);
                Simnet.Engine.schedule engine ~delay:think_time (fun () ->
                    client_loop id (iter + 1))
              end))
  in
  for id = 0 to clients - 1 do
    (* Stagger arrivals over the first second. *)
    Simnet.Engine.schedule_at engine
      (Int64.of_int (id * 1_000_000 / max 1 clients))
      (fun () -> client_loop id 0)
  done;
  Simnet.Engine.run ~until:horizon engine;
  let dur = Simnet.Engine.to_sec horizon in
  {
    clients;
    throughput_bytes_per_s = Float.of_int !bytes_delivered /. dur;
    mean_latency_us =
      (if !completed = 0 then 0.0
       else Int64.to_float !latency_sum /. Float.of_int !completed);
    mean_latency_s_per_kb =
      (if !completed = 0 then 0.0
       else !latency_weighted_kb /. Float.of_int !completed);
    requests_completed = !completed;
    proxy_utilization =
      (Array.fold_left
         (fun a p -> a +. Simnet.Host.utilization p.Proxy.host)
         0.0 pool
      /. Float.of_int proxies);
  }

let sweep ?duration_s ?seed ?applet_count ?mem_capacity ?proxies
    ?cache_capacity counts =
  List.map
    (fun clients ->
      run ?duration_s ?seed ?applet_count ?mem_capacity ?proxies
        ?cache_capacity ~clients ())
    counts
