(* The scaling experiment of §4.2 (Figure 10): up to hundreds of
   clients simultaneously fetch different applets from the Internet
   through one proxy with caching disabled — the worst case for a DVM.

   Resource model: the proxy serializes pipeline work on one reference
   CPU and holds per-connected-client service state (connection
   buffers, session and rewriting state) in its 64 MB of memory. While
   client count stays under the memory budget, throughput grows
   linearly — the static services never synchronize with clients or
   share exclusive state. Past it, the host pages and all service work
   slows down: the knee the paper reports at its 64 MB. *)

type point = {
  clients : int;
  throughput_bytes_per_s : float;
  mean_latency_us : float;
  mean_latency_s_per_kb : float;
  requests_completed : int;
  proxy_utilization : float;
}

(* Per-connected-client proxy footprint: 256 KB of connection and
   service state. 250 clients saturate the 64 MB proxy. *)
let per_client_state_bytes = 256 * 1024

(* Per-client think time between fetches: browsing users do not
   request applets back to back. *)
let think_time = Simnet.Engine.sec 9

(* Workload plumbing shared by the single-proxy and farm experiments:
   realized applet bodies (real class bytes the pipeline can decode,
   verify and rewrite), the origin serving them and the per-class WAN
   latency. Request names are "a<k>/<uniq>": serve body k. *)
let applet_workload ~applet_count ~seed =
  let pop = Workloads.Applets.population ~n:applet_count ~seed () in
  let applets = Array.of_list pop in
  let bodies =
    Array.map
      (fun ap -> Bytecode.Encode.class_to_bytes (Workloads.Applets.realize ap))
      applets
  in
  let origin name =
    match String.index_opt name '/' with
    | Some i ->
      let k = int_of_string (String.sub name 1 (i - 1)) in
      Some bodies.(k mod Array.length bodies)
    | None -> None
  in
  let origin_latency name =
    match String.index_opt name '/' with
    | Some i ->
      let k = int_of_string (String.sub name 1 (i - 1)) in
      Int64.of_int applets.(k mod Array.length applets).Workloads.Applets.ap_wan_latency_us
    | None -> Simnet.Engine.ms 2000
  in
  (origin, origin_latency)

let filters_for policy =
  let oracle = Verifier.Oracle.of_classes (Jvm.Bootlib.boot_classes ()) in
  [
    Verifier.Static_verifier.filter ~oracle ();
    Security.Rewriter.filter policy;
    Monitor.Instrument.audit_filter ();
  ]

let standard_filters () = filters_for Experiment.standard_policy

let run ?(duration_s = 30) ?(seed = 7) ?(applet_count = 64)
    ?(mem_capacity = 64 * 1024 * 1024) ?(proxies = 1)
    ?(cache_capacity = 0) ~clients () : point =
  let engine = Simnet.Engine.create () in
  let origin, origin_latency = applet_workload ~applet_count ~seed in
  let filters = standard_filters () in
  (* Replicated server implementations (§2): clients spread round-robin
     over the proxy pool, each proxy holding its own share of
     per-client state. *)
  (* The standard stack is effect-free apart from telemetry, so the
     pool shares one host-CPU outcome memo: identical applet bytes are
     verified and rewritten once, replayed thereafter. The simulated
     cost model still charges every fetch the full pipeline price. *)
  let memo = Proxy.Pipeline.Memo.create () in
  let pool =
    Array.init proxies (fun _ ->
        Proxy.create engine ~cache_capacity ~mem_capacity ~memo ~origin
          ~origin_latency ~filters ())
  in
  Array.iteri
    (fun i proxy ->
      let share = (clients / proxies) + (if i < clients mod proxies then 1 else 0) in
      Simnet.Host.allocate proxy.Proxy.host (share * per_client_state_bytes))
    pool;
  let lan = Simnet.Link.ethernet_10mb engine in
  let horizon = Simnet.Engine.sec duration_s in
  let completed = ref 0 in
  let bytes_delivered = ref 0 in
  let latency_sum = ref 0L in
  let latency_weighted_kb = ref 0.0 in
  let rec client_loop id iter =
    (* With the cache disabled every request is unique (the paper's
       worst case); with it enabled, clients share the popular applet
       set and the cache can work. *)
    let k = (id + (iter * 37)) mod applet_count in
    let name =
      if cache_capacity > 0 then Printf.sprintf "a%d/pop" k
      else Printf.sprintf "a%d/c%d-i%d" k id iter
    in
    let started = Simnet.Engine.now engine in
    let proxy = pool.(id mod proxies) in
    Proxy.request proxy ~cls:name (fun reply ->
        match reply with
        | Proxy.Not_found | Proxy.Unavailable | Proxy.Overloaded -> ()
        | Proxy.Bytes b ->
          Simnet.Link.transfer lan ~bytes:(String.length b) (fun () ->
              let now = Simnet.Engine.now engine in
              if Int64.compare now horizon <= 0 then begin
                incr completed;
                bytes_delivered := !bytes_delivered + String.length b;
                let lat = Int64.sub now started in
                Telemetry.Global.observe "client.request_us" lat;
                latency_sum := Int64.add !latency_sum lat;
                latency_weighted_kb :=
                  !latency_weighted_kb
                  +. (Int64.to_float lat /. 1_000_000.0)
                     /. (Float.of_int (String.length b) /. 1024.0);
                Simnet.Engine.schedule engine ~delay:think_time (fun () ->
                    client_loop id (iter + 1))
              end))
  in
  for id = 0 to clients - 1 do
    (* Stagger arrivals over the first second. *)
    Simnet.Engine.schedule_at engine
      (Int64.of_int (id * 1_000_000 / max 1 clients))
      (fun () -> client_loop id 0)
  done;
  Simnet.Engine.run ~until:horizon engine;
  let dur = Simnet.Engine.to_sec horizon in
  {
    clients;
    throughput_bytes_per_s = Float.of_int !bytes_delivered /. dur;
    mean_latency_us =
      (if !completed = 0 then 0.0
       else Int64.to_float !latency_sum /. Float.of_int !completed);
    mean_latency_s_per_kb =
      (if !completed = 0 then 0.0
       else !latency_weighted_kb /. Float.of_int !completed);
    requests_completed = !completed;
    proxy_utilization =
      (Array.fold_left
         (fun a p -> a +. Simnet.Host.utilization p.Proxy.host)
         0.0 pool
      /. Float.of_int proxies);
  }

let sweep ?duration_s ?seed ?applet_count ?mem_capacity ?proxies
    ?cache_capacity counts =
  List.map
    (fun clients ->
      run ?duration_s ?seed ?applet_count ?mem_capacity ?proxies
        ?cache_capacity ~clients ())
    counts

(* --- The farm experiment ---------------------------------------------

   Same workload and client model as [run], but the pool is a
   consistent-hash farm rather than round-robin replicas: each shard
   owns a stable slice of the key space, holds its share of the
   per-client state, and misses coalesce per shard. The sweep
   regenerates the Figure-10-style curve once per shard count — the
   knee moves right as shards divide the memory load, which is where
   the ≥3× aggregate throughput from 1→4 shards comes from once a
   single proxy is past its knee.

   Every run also produces two fingerprints:
   - [f_served]: per-applet MD5 of the served bytes (sorted assoc).
     The pipeline is pure, so these must be identical across shard
     counts — the farm changes who does the work, never the work.
   - [f_trace_digest]: MD5 of the engine's (time, label) event trace.
     Same seed ⇒ same digest; two runs of the same configuration must
     match exactly. *)

type farm_point = {
  f_shards : int;
  f_clients : int;
  f_throughput_bytes_per_s : float;
  f_mean_latency_us : float;
  f_requests_completed : int;
  f_pipeline_runs : int;
  f_coalesced : int;
  f_l2_hits : int;
  f_failovers : int;
  f_utilization : float; (* mean shard CPU utilization *)
  f_served : (string * string) list; (* applet key -> MD5 of served bytes *)
  f_trace_digest : string;
}

let run_farm ?slo ?(duration_s = 30) ?(seed = 7) ?(applet_count = 64)
    ?(mem_capacity = 64 * 1024 * 1024) ?(cache_capacity = 0)
    ?(l2_capacity = 0) ?(vnodes = Proxy.Farm.default_vnodes) ~shards ~clients
    () : farm_point =
  if shards <= 0 then invalid_arg "run_farm: shards must be positive";
  let slo_record outcome now_us =
    match slo with
    | None -> ()
    | Some s -> Telemetry.Slo.record s ~now_us outcome
  in
  let engine = Simnet.Engine.create () in
  Simnet.Engine.set_tracing engine true;
  (* Same rationale as the chaos harness: cap the deterministic event
     trace well above anything a pinned seed produces, so memory stays
     bounded without losing a record in practice. *)
  Simnet.Engine.set_trace_cap engine (Some 1_000_000);
  let origin, origin_latency = applet_workload ~applet_count ~seed in
  let filters = standard_filters () in
  let l2 =
    if l2_capacity > 0 then Some (Proxy.Cache.create ~capacity:l2_capacity)
    else None
  in
  (* One outcome memo for the farm, same rationale as [run]. *)
  let memo = Proxy.Pipeline.Memo.create () in
  let pool =
    Array.init shards (fun i ->
        Proxy.create engine ~cache_capacity ~mem_capacity ?l2 ~memo
          ~host_name:(Printf.sprintf "shard%d" i)
          ~origin ~origin_latency ~filters ())
  in
  let farm = Proxy.Farm.create ~vnodes engine pool in
  (* Connected-client service state spreads evenly over the shard
     hosts — the whole point of sharding for Figure 10. *)
  Array.iteri
    (fun i p ->
      let share = (clients / shards) + (if i < clients mod shards then 1 else 0) in
      Simnet.Host.allocate p.Proxy.host (share * per_client_state_bytes))
    pool;
  let lan = Simnet.Link.ethernet_10mb engine in
  let horizon = Simnet.Engine.sec duration_s in
  let completed = ref 0 in
  let bytes_delivered = ref 0 in
  let latency_sum = ref 0L in
  (* applet key ("a<k>") -> digest of the rewritten bytes served for
     it. Within one run, any divergence is a single-flight or cache
     corruption bug, so it is fatal rather than recorded. *)
  let served : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let rec client_loop id iter =
    let k = (id + (iter * 37)) mod applet_count in
    let applet_key = Printf.sprintf "a%d" k in
    (* Cache off: every request unique (the worst case). Any cache
       tier on: clients share the popular set so hits and coalescing
       can happen. *)
    let name =
      if cache_capacity > 0 || l2_capacity > 0 then applet_key ^ "/pop"
      else Printf.sprintf "%s/c%d-i%d" applet_key id iter
    in
    let started = Simnet.Engine.now engine in
    Proxy.Farm.request farm ~cls:name (fun reply ->
        match reply with
        | Proxy.Not_found | Proxy.Unavailable | Proxy.Overloaded ->
          slo_record Telemetry.Slo.Failed (Simnet.Engine.now engine)
        | Proxy.Bytes b ->
          Simnet.Link.transfer lan ~bytes:(String.length b) (fun () ->
              let now = Simnet.Engine.now engine in
              if Int64.compare now horizon <= 0 then begin
                incr completed;
                slo_record (Telemetry.Slo.Fresh (String.length b)) now;
                Telemetry.Global.observe "client.request_us"
                  (Int64.sub now started);
                Simnet.Engine.record engine
                  (Printf.sprintf "serve %s -> c%d" name id);
                let digest = Dsig.Md5.digest b in
                (match Hashtbl.find_opt served applet_key with
                | Some d when not (String.equal d digest) ->
                  failwith ("run_farm: divergent bytes for " ^ applet_key)
                | _ -> Hashtbl.replace served applet_key digest);
                bytes_delivered := !bytes_delivered + String.length b;
                latency_sum := Int64.add !latency_sum (Int64.sub now started);
                Simnet.Engine.schedule engine ~delay:think_time (fun () ->
                    client_loop id (iter + 1))
              end))
  in
  for id = 0 to clients - 1 do
    Simnet.Engine.schedule_at engine
      (Int64.of_int (id * 1_000_000 / max 1 clients))
      (fun () -> client_loop id 0)
  done;
  Simnet.Engine.run ~until:horizon engine;
  let dur = Simnet.Engine.to_sec horizon in
  let f_served =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun k d acc -> (k, d) :: acc) served [])
  in
  let f_trace_digest =
    Dsig.Md5.digest
      (String.concat "\n"
         (List.map
            (fun (at, label) -> Printf.sprintf "%Ld %s" at label)
            (Simnet.Engine.trace engine)))
  in
  {
    f_shards = shards;
    f_clients = clients;
    f_throughput_bytes_per_s = Float.of_int !bytes_delivered /. dur;
    f_mean_latency_us =
      (if !completed = 0 then 0.0
       else Int64.to_float !latency_sum /. Float.of_int !completed);
    f_requests_completed = !completed;
    f_pipeline_runs = Proxy.Farm.pipeline_runs farm;
    f_coalesced = Proxy.Farm.coalesced farm;
    f_l2_hits = Proxy.Farm.l2_hits farm;
    f_failovers = farm.Proxy.Farm.failovers;
    f_utilization =
      Array.fold_left
        (fun a p -> a +. Simnet.Host.utilization p.Proxy.host)
        0.0 pool
      /. Float.of_int shards;
    f_served;
    f_trace_digest;
  }

let farm_sweep ?slo ?duration_s ?seed ?applet_count ?mem_capacity
    ?cache_capacity ?l2_capacity ?vnodes ~clients shard_counts =
  List.map
    (fun shards ->
      run_farm ?slo ?duration_s ?seed ?applet_count ?mem_capacity
        ?cache_capacity ?l2_capacity ?vnodes ~shards ~clients ())
    shard_counts
