(** The scaling experiment of §4.2 (Figure 10): hundreds of clients
    fetch different applets through one proxy with caching disabled.
    See the implementation header for the resource model behind the
    64 MB knee. *)

type point = {
  clients : int;
  throughput_bytes_per_s : float;
  mean_latency_us : float;
  mean_latency_s_per_kb : float;
  requests_completed : int;
  proxy_utilization : float;
}

val per_client_state_bytes : int
val think_time : Simnet.Engine.time

val applet_workload :
  applet_count:int ->
  seed:int ->
  (string -> string option) * (string -> Simnet.Engine.time)
(** The workload plumbing shared with the farm and chaos experiments:
    [(origin, origin_latency)] over realized applet bodies. Request
    names are ["a<k>/<uniq>"]: serve body [k]. *)

val filters_for : Security.Policy.t -> Rewrite.Filter.t list
(** The standard pipeline — static verification, security rewriting
    under the given policy, audit instrumentation. The control-plane
    chaos scenario builds one stack per policy version from this. *)

val standard_filters : unit -> Rewrite.Filter.t list
(** [filters_for Experiment.standard_policy] — the stack every
    experiment runs. *)

val run :
  ?duration_s:int ->
  ?seed:int ->
  ?applet_count:int ->
  ?mem_capacity:int ->
  ?proxies:int ->
  ?cache_capacity:int ->
  clients:int ->
  unit ->
  point
(** [proxies] > 1 models the replicated-server deployment of §2:
    clients spread round-robin over the pool. [cache_capacity] > 0
    enables the proxy cache and makes clients share the popular applet
    set (the paper's stated mitigations). *)

val sweep :
  ?duration_s:int ->
  ?seed:int ->
  ?applet_count:int ->
  ?mem_capacity:int ->
  ?proxies:int ->
  ?cache_capacity:int ->
  int list ->
  point list

(** {1 The farm experiment}

    Same workload and client model, but the pool is a consistent-hash
    {!Proxy.Farm} rather than round-robin replicas: each shard owns a
    stable slice of the key space and its share of the per-client
    memory load, so the Figure-10 knee moves right with shard
    count. *)

type farm_point = {
  f_shards : int;
  f_clients : int;
  f_throughput_bytes_per_s : float;
  f_mean_latency_us : float;
  f_requests_completed : int;
  f_pipeline_runs : int;
  f_coalesced : int;
  f_l2_hits : int;
  f_failovers : int;
  f_utilization : float;  (** mean shard CPU utilization *)
  f_served : (string * string) list;
      (** applet key → MD5 of the served rewritten bytes, sorted by
          key. Identical across shard counts: the farm changes who
          does the work, never the work. *)
  f_trace_digest : string;
      (** MD5 of the engine's (time, label) event trace — same seed
          and configuration ⇒ same digest. *)
}

val run_farm :
  ?slo:Telemetry.Slo.t ->
  ?duration_s:int ->
  ?seed:int ->
  ?applet_count:int ->
  ?mem_capacity:int ->
  ?cache_capacity:int ->
  ?l2_capacity:int ->
  ?vnodes:int ->
  shards:int ->
  clients:int ->
  unit ->
  farm_point
(** [cache_capacity] sizes each shard's own L1 (0 disables it, every
    request unique — the worst case); [l2_capacity] > 0 adds one
    shared L2 instance across all shards. With any cache tier on,
    clients share the popular applet set so hits and single-flight
    coalescing can happen. [slo] receives one outcome per settled
    request (in-horizon serves as fresh, farm refusals as failed) on
    the run's virtual clock. *)

val farm_sweep :
  ?slo:Telemetry.Slo.t ->
  ?duration_s:int ->
  ?seed:int ->
  ?applet_count:int ->
  ?mem_capacity:int ->
  ?cache_capacity:int ->
  ?l2_capacity:int ->
  ?vnodes:int ->
  clients:int ->
  int list ->
  farm_point list
(** One {!run_farm} per shard count — a Figure-10-style curve over
    shards instead of clients. *)
