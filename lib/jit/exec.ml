(* An executor for compiled kernels: runs the arithmetic/control subset
   of the IR directly over virtual registers. Methods whose IR uses
   object or call operations are left to the interpreter (the service
   reports them as interpreter-resident). This is enough to demonstrate
   compile-and-run end to end and to benchmark dispatch cost against
   the bytecode interpreter. *)

exception Unsupported of string

let supported_instr = function
  | Ir.Const _ | Ir.Str _ | Ir.Null _ | Ir.Move _ | Ir.Bin _ | Ir.Neg _
  | Ir.Jump _ | Ir.Branch _ | Ir.Switch _ | Ir.Ret _ | Ir.Newarr _
  | Ir.Arrlen _
  | Ir.Arrload (_, _, _, `Int)
  | Ir.Arrstore (_, _, _, `Int)
  | Ir.Guard _ | Ir.Nop ->
    true
  | Ir.Call _ | Ir.Getfield _ | Ir.Putfield _ | Ir.Getstatic _
  | Ir.Putstatic _ | Ir.New _ | Ir.Anewarr _ | Ir.Throw _ | Ir.Cast _
  | Ir.Instof _ | Ir.Monitor _
  | Ir.Arrload (_, _, _, `Ref)
  | Ir.Arrstore (_, _, _, `Ref) ->
    false

let supported (m : Ir.meth) = Array.for_all supported_instr m.Ir.code

type value = Vint of int32 | Vstr of string | Vnull | Varr of int32 array

exception Kernel_fault of string

let run (m : Ir.meth) (args : value list) : value option =
  let regs = Array.make (max 1 m.Ir.nregs) Vnull in
  List.iteri (fun i v -> regs.(i) <- v) args;
  let geti r =
    match regs.(r) with
    | Vint v -> v
    | _ -> raise (Kernel_fault "expected int register")
  in
  let n = Array.length m.Ir.code in
  let result = ref None in
  let running = ref true in
  let pc = ref 0 in
  while !running do
    if !pc < 0 || !pc >= n then raise (Kernel_fault "pc out of range");
    let next = ref (!pc + 1) in
    (match m.Ir.code.(!pc) with
    | Ir.Const (d, v) -> regs.(d) <- Vint v
    | Ir.Str (d, s) -> regs.(d) <- Vstr s
    | Ir.Null d -> regs.(d) <- Vnull
    | Ir.Move (d, s) -> regs.(d) <- regs.(s)
    | Ir.Bin (op, d, a, b) ->
      let x = geti a and y = geti b in
      let v =
        match op with
        | Ir.Add -> Int32.add x y
        | Ir.Sub -> Int32.sub x y
        | Ir.Mul -> Int32.mul x y
        | Ir.Div ->
          if Int32.equal y 0l then raise (Kernel_fault "/0") else Int32.div x y
        | Ir.Rem ->
          if Int32.equal y 0l then raise (Kernel_fault "%0") else Int32.rem x y
        | Ir.Shl -> Int32.shift_left x (Int32.to_int y land 31)
        | Ir.Shr -> Int32.shift_right x (Int32.to_int y land 31)
        | Ir.And -> Int32.logand x y
        | Ir.Or -> Int32.logor x y
        | Ir.Xor -> Int32.logxor x y
      in
      regs.(d) <- Vint v
    | Ir.Neg (d, s) -> regs.(d) <- Vint (Int32.neg (geti s))
    | Ir.Jump t -> next := t
    | Ir.Branch (c, a, b, t) ->
      let x =
        match regs.(a) with
        | Vint v -> Int32.to_int v
        | Vnull -> 0
        | Vstr _ | Varr _ -> 1
      in
      let y = match b with None -> 0 | Some r -> Int32.to_int (geti r) in
      let cmp = compare x y in
      let taken =
        match c with
        | Ir.Eq -> cmp = 0
        | Ir.Ne -> cmp <> 0
        | Ir.Lt -> cmp < 0
        | Ir.Ge -> cmp >= 0
        | Ir.Gt -> cmp > 0
        | Ir.Le -> cmp <= 0
      in
      if taken then next := t
    | Ir.Switch { src; low; targets; default } ->
      let k = Int32.to_int (Int32.sub (geti src) low) in
      if k >= 0 && k < Array.length targets then next := targets.(k)
      else next := default
    | Ir.Ret (Some r) ->
      result := Some regs.(r);
      running := false
    | Ir.Ret None ->
      result := None;
      running := false
    | Ir.Newarr (d, l) -> regs.(d) <- Varr (Array.make (Int32.to_int (geti l)) 0l)
    | Ir.Arrlen (d, a) -> (
      match regs.(a) with
      | Varr arr -> regs.(d) <- Vint (Int32.of_int (Array.length arr))
      | _ -> raise (Kernel_fault "arrlen of non-array"))
    | Ir.Arrload (d, a, i, `Int) -> (
      match regs.(a) with
      | Varr arr ->
        let k = Int32.to_int (geti i) in
        if k < 0 || k >= Array.length arr then raise (Kernel_fault "bounds")
        else regs.(d) <- Vint arr.(k)
      | _ -> raise (Kernel_fault "arrload of non-array"))
    | Ir.Arrstore (a, i, srcr, `Int) -> (
      match regs.(a) with
      | Varr arr ->
        let k = Int32.to_int (geti i) in
        if k < 0 || k >= Array.length arr then raise (Kernel_fault "bounds")
        else arr.(k) <- geti srcr
      | _ -> raise (Kernel_fault "arrstore of non-array"))
    | Ir.Guard (`Null r) -> (
      match regs.(r) with
      | Vnull -> raise (Kernel_fault "null guard")
      | _ -> ())
    | Ir.Guard (`Bounds (a, i)) -> (
      match regs.(a) with
      | Varr arr ->
        let k = Int32.to_int (geti i) in
        if k < 0 || k >= Array.length arr then
          raise (Kernel_fault "bounds guard")
      | Vnull -> raise (Kernel_fault "null guard")
      | _ -> raise (Kernel_fault "bounds guard of non-array"))
    | Ir.Nop -> ()
    | insn ->
      raise (Unsupported (Format.asprintf "%a" Ir.pp_instr insn)));
    pc := !next
  done;
  !result
