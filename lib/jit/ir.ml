(* A register-based intermediate representation: the "native format"
   the compilation service targets. Virtual registers are unbounded;
   the allocator later maps them onto an architecture's register file,
   spilling the rest to frame slots. *)

type reg = int

type binop = Add | Sub | Mul | Div | Rem | Shl | Shr | And | Or | Xor

type cond = Eq | Ne | Lt | Ge | Gt | Le

type instr =
  | Const of reg * int32
  | Str of reg * string
  | Null of reg
  | Move of reg * reg (* dst, src *)
  | Bin of binop * reg * reg * reg (* op dst a b *)
  | Neg of reg * reg
  | Jump of int
  | Branch of cond * reg * reg option * int (* cmp a (b | zero) -> target *)
  | Switch of { src : reg; low : int32; targets : int array; default : int }
  | Ret of reg option
  | Call of {
      kind : [ `Virtual | `Static | `Special ];
      cls : string;
      name : string;
      desc : string;
      args : reg list;
      dst : reg option;
    }
  | Getfield of reg * reg * string * string * string (* dst obj cls name desc *)
  | Putfield of reg * reg * string * string * string (* obj src cls name desc *)
  | Getstatic of reg * string * string * string
  | Putstatic of reg * string * string * string
  | New of reg * string
  | Newarr of reg * reg (* dst len *)
  | Anewarr of reg * reg * string
  | Arrlen of reg * reg
  | Arrload of reg * reg * reg * [ `Int | `Ref ] (* dst arr idx *)
  | Arrstore of reg * reg * reg * [ `Int | `Ref ] (* arr idx src *)
  | Throw of reg
  | Cast of reg * reg * string
  | Instof of reg * reg * string
  | Monitor of reg * bool (* enter? *)
  | Guard of [ `Null of reg | `Bounds of reg * reg ]
    (* runtime safety check: trap unless reg non-null / idx within
       array bounds. Emitted before dereference sites; the translator
       elides one when proxy-side dataflow facts prove it redundant. *)
  | Nop

type meth = {
  ir_name : string;
  ir_desc : string;
  code : instr array;
  nregs : int; (* virtual register count *)
}

let defs = function
  | Const (d, _) | Str (d, _) | Null d | Move (d, _) | Bin (_, d, _, _)
  | Neg (d, _)
  | Getfield (d, _, _, _, _)
  | Getstatic (d, _, _, _)
  | New (d, _)
  | Newarr (d, _)
  | Anewarr (d, _, _)
  | Arrlen (d, _)
  | Arrload (d, _, _, _)
  | Cast (d, _, _)
  | Instof (d, _, _) ->
    [ d ]
  | Call { dst = Some d; _ } -> [ d ]
  | Call { dst = None; _ }
  | Jump _ | Branch _ | Switch _ | Ret _
  | Putfield _ | Putstatic _ | Arrstore _ | Throw _ | Monitor _ | Guard _
  | Nop ->
    []

let uses = function
  | Const _ | Str _ | Null _ | New _ | Getstatic _ | Jump _ | Nop -> []
  | Move (_, s) | Neg (_, s) -> [ s ]
  | Bin (_, _, a, b) -> [ a; b ]
  | Branch (_, a, Some b, _) -> [ a; b ]
  | Branch (_, a, None, _) -> [ a ]
  | Switch { src; _ } -> [ src ]
  | Ret (Some r) -> [ r ]
  | Ret None -> []
  | Call { args; _ } -> args
  | Getfield (_, o, _, _, _) -> [ o ]
  | Putfield (o, s, _, _, _) -> [ o; s ]
  | Putstatic (s, _, _, _) -> [ s ]
  | Newarr (_, l) -> [ l ]
  | Anewarr (_, l, _) -> [ l ]
  | Arrlen (_, a) -> [ a ]
  | Arrload (_, a, i, _) -> [ a; i ]
  | Arrstore (a, i, s, _) -> [ a; i; s ]
  | Throw r | Cast (_, r, _) | Instof (_, r, _) | Monitor (r, _) -> [ r ]
  | Guard (`Null r) -> [ r ]
  | Guard (`Bounds (a, i)) -> [ a; i ]

let targets = function
  | Jump t | Branch (_, _, _, t) -> [ t ]
  | Switch { targets; default; _ } -> default :: Array.to_list targets
  | _ -> []

let is_terminator = function
  | Jump _ | Ret _ | Throw _ | Switch _ -> true
  | _ -> false

let pp_instr ppf i =
  let r n = Format.sprintf "r%d" n in
  match i with
  | Const (d, v) -> Format.fprintf ppf "%s <- %ld" (r d) v
  | Str (d, s) -> Format.fprintf ppf "%s <- %S" (r d) s
  | Null d -> Format.fprintf ppf "%s <- null" (r d)
  | Move (d, s) -> Format.fprintf ppf "%s <- %s" (r d) (r s)
  | Bin (op, d, a, b) ->
    let ops =
      match op with
      | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
      | Shl -> "<<" | Shr -> ">>" | And -> "&" | Or -> "|" | Xor -> "^"
    in
    Format.fprintf ppf "%s <- %s %s %s" (r d) (r a) ops (r b)
  | Neg (d, s) -> Format.fprintf ppf "%s <- -%s" (r d) (r s)
  | Jump t -> Format.fprintf ppf "jump @%d" t
  | Branch (_, a, Some b, t) ->
    Format.fprintf ppf "br %s ? %s @%d" (r a) (r b) t
  | Branch (_, a, None, t) -> Format.fprintf ppf "br %s ? 0 @%d" (r a) t
  | Switch { src; _ } -> Format.fprintf ppf "switch %s" (r src)
  | Ret (Some x) -> Format.fprintf ppf "ret %s" (r x)
  | Ret None -> Format.fprintf ppf "ret"
  | Call { cls; name; _ } -> Format.fprintf ppf "call %s.%s" cls name
  | Getfield (d, o, _, n, _) -> Format.fprintf ppf "%s <- %s.%s" (r d) (r o) n
  | Putfield (o, s, _, n, _) -> Format.fprintf ppf "%s.%s <- %s" (r o) n (r s)
  | Getstatic (d, c, n, _) -> Format.fprintf ppf "%s <- %s.%s" (r d) c n
  | Putstatic (s, c, n, _) -> Format.fprintf ppf "%s.%s <- %s" c n (r s)
  | New (d, c) -> Format.fprintf ppf "%s <- new %s" (r d) c
  | Newarr (d, l) -> Format.fprintf ppf "%s <- new int[%s]" (r d) (r l)
  | Anewarr (d, l, c) -> Format.fprintf ppf "%s <- new %s[%s]" (r d) c (r l)
  | Arrlen (d, a) -> Format.fprintf ppf "%s <- len %s" (r d) (r a)
  | Arrload (d, a, i, _) -> Format.fprintf ppf "%s <- %s[%s]" (r d) (r a) (r i)
  | Arrstore (a, i, s, _) -> Format.fprintf ppf "%s[%s] <- %s" (r a) (r i) (r s)
  | Throw x -> Format.fprintf ppf "throw %s" (r x)
  | Cast (d, s, c) -> Format.fprintf ppf "%s <- (%s) %s" (r d) c (r s)
  | Instof (d, s, c) -> Format.fprintf ppf "%s <- %s instanceof %s" (r d) (r s) c
  | Monitor (x, e) ->
    Format.fprintf ppf "monitor%s %s" (if e then "enter" else "exit") (r x)
  | Guard (`Null x) -> Format.fprintf ppf "guard nonnull %s" (r x)
  | Guard (`Bounds (a, i)) ->
    Format.fprintf ppf "guard bounds %s[%s]" (r a) (r i)
  | Nop -> Format.pp_print_string ppf "nop"

(* Static cost of a method body on an architecture (cost units):
   interpretation of the same stream costs ~1/instruction, so this is
   the compiled-speedup estimate the compilation service reports. *)
let static_cost (arch : Arch.t) code =
  Array.fold_left
    (fun acc i ->
      acc
      +.
      match i with
      | Const _ | Str _ | Null _ | Move _ | Bin _ | Neg _ | Cast _ | Instof _
      | Nop ->
        arch.Arch.cost_alu
      | Jump _ | Branch _ | Switch _ | Ret _ | Guard _ -> arch.Arch.cost_branch
      | Call _ | New _ | Newarr _ | Anewarr _ | Throw _ | Monitor _ ->
        arch.Arch.cost_call
      | Getfield _ | Putfield _ | Getstatic _ | Putstatic _ | Arrlen _
      | Arrload _ | Arrstore _ ->
        arch.Arch.cost_mem)
    0.0 code
