(** A register-based intermediate representation — the "native format"
    the compilation service targets. Virtual registers are unbounded;
    {!Regalloc} later maps them onto an architecture's register file. *)

type reg = int
type binop = Add | Sub | Mul | Div | Rem | Shl | Shr | And | Or | Xor
type cond = Eq | Ne | Lt | Ge | Gt | Le

type instr =
  | Const of reg * int32
  | Str of reg * string
  | Null of reg
  | Move of reg * reg
  | Bin of binop * reg * reg * reg
  | Neg of reg * reg
  | Jump of int
  | Branch of cond * reg * reg option * int
      (** compare against a register or against zero/null *)
  | Switch of { src : reg; low : int32; targets : int array; default : int }
  | Ret of reg option
  | Call of {
      kind : [ `Virtual | `Static | `Special ];
      cls : string;
      name : string;
      desc : string;
      args : reg list;
      dst : reg option;
    }
  | Getfield of reg * reg * string * string * string
  | Putfield of reg * reg * string * string * string
  | Getstatic of reg * string * string * string
  | Putstatic of reg * string * string * string
  | New of reg * string
  | Newarr of reg * reg
  | Anewarr of reg * reg * string
  | Arrlen of reg * reg
  | Arrload of reg * reg * reg * [ `Int | `Ref ]
  | Arrstore of reg * reg * reg * [ `Int | `Ref ]
  | Throw of reg
  | Cast of reg * reg * string
  | Instof of reg * reg * string
  | Monitor of reg * bool
  | Guard of [ `Null of reg | `Bounds of reg * reg ]
      (** runtime safety check before a dereference; elided by the
          translator when proxy-side dataflow facts prove it redundant *)
  | Nop

type meth = { ir_name : string; ir_desc : string; code : instr array; nregs : int }

val defs : instr -> reg list
val uses : instr -> reg list
val targets : instr -> int list
val is_terminator : instr -> bool
val pp_instr : Format.formatter -> instr -> unit

val static_cost : Arch.t -> instr array -> float
(** Static per-pass cost estimate in cost units; interpretation of the
    same stream costs ~1/instruction. *)
