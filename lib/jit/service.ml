(* The network compilation service (§3.4): clients describe their
   native format during the administration handshake; the compiler
   translates ahead of time for each format present in the
   organization, amortizing its cost across all clients, and caches
   compiled units per (class, method, architecture). *)

type compiled = {
  arch : Arch.t;
  ir : Ir.meth;
  allocation : Regalloc.result;
  est_cost : float; (* static per-pass cost estimate, cost units *)
  kernel : bool; (* directly executable by Exec *)
}

type entry = Compiled of compiled | Interpreter_resident of string

type t = {
  cache : (string, entry) Hashtbl.t; (* "cls.meth:desc@arch" *)
  mutable compiled_methods : int;
  mutable skipped_methods : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable compile_cost_us : int64; (* total server-side compile work *)
  mutable guards_emitted : int;
  mutable guards_elided : int; (* proven redundant by dataflow facts *)
}

let create () =
  {
    cache = Hashtbl.create 64;
    compiled_methods = 0;
    skipped_methods = 0;
    cache_hits = 0;
    cache_misses = 0;
    compile_cost_us = 0L;
    guards_emitted = 0;
    guards_elided = 0;
  }

let key ~cls ~name ~desc ~arch = Printf.sprintf "%s.%s:%s@%s" cls name desc arch

(* Server-side compile cost model: dominated by per-instruction
   translation and allocation work. *)
let compile_cost_us_of (m : Ir.meth) = Int64.of_int (5 * Array.length m.Ir.code)

let compile_method ?(elide = true) t arch (cf : Bytecode.Classfile.t)
    (m : Bytecode.Classfile.meth) =
  let k =
    key ~cls:cf.Bytecode.Classfile.name ~name:m.Bytecode.Classfile.m_name
      ~desc:m.Bytecode.Classfile.m_desc ~arch:arch.Arch.name
  in
  match Hashtbl.find_opt t.cache k with
  | Some e ->
    t.cache_hits <- t.cache_hits + 1;
    e
  | None ->
    t.cache_misses <- t.cache_misses + 1;
    let facts =
      if elide then
        Analysis.Pass.for_method cf.Bytecode.Classfile.pool
          ~cls:cf.Bytecode.Classfile.name m
      else None
    in
    let stats = Translate.fresh_guard_stats () in
    let e =
      match
        Translate.translate_method ?facts ~stats cf.Bytecode.Classfile.pool m
      with
      | ir ->
        let allocation = Regalloc.allocate arch ir in
        t.compiled_methods <- t.compiled_methods + 1;
        t.compile_cost_us <-
          Int64.add t.compile_cost_us (compile_cost_us_of ir);
        t.guards_emitted <- t.guards_emitted + stats.Translate.emitted;
        t.guards_elided <- t.guards_elided + stats.Translate.elided;
        if Telemetry.Global.on () then begin
          Telemetry.Global.add "jit.guards_emitted"
            (Int64.of_int stats.Translate.emitted);
          Telemetry.Global.add "jit.guards_elided"
            (Int64.of_int stats.Translate.elided)
        end;
        Compiled
          {
            arch;
            ir;
            allocation;
            est_cost = Ir.static_cost arch ir.Ir.code;
            kernel = Exec.supported ir;
          }
      | exception Translate.Unsupported reason ->
        t.skipped_methods <- t.skipped_methods + 1;
        Interpreter_resident reason
    in
    Hashtbl.replace t.cache k e;
    e

let compile_class ?elide t arch cf =
  List.map
    (fun m ->
      ( m.Bytecode.Classfile.m_name ^ m.Bytecode.Classfile.m_desc,
        compile_method ?elide t arch cf m ))
    (List.filter
       (fun m -> m.Bytecode.Classfile.m_code <> None)
       cf.Bytecode.Classfile.methods)

(* Compile for every native format registered at the console — the
   "resource investments benefit all clients" property. *)
let compile_for_fleet ?elide t console cf =
  List.concat_map
    (fun fmt ->
      match Arch.by_name fmt with
      | Some arch -> compile_class ?elide t arch cf
      | None -> [])
    (Monitor.Console.native_formats console)
