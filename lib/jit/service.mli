(** The network compilation service (§3.4).

    Clients describe their native format during the administration
    handshake; the compiler translates ahead of time for each format
    present in the organization, amortizing its cost across all
    clients, and caches compiled units per (class, method,
    architecture). *)

type compiled = {
  arch : Arch.t;
  ir : Ir.meth;
  allocation : Regalloc.result;
  est_cost : float;  (** static per-pass cost estimate, cost units *)
  kernel : bool;  (** directly executable by {!Exec} *)
}

type entry = Compiled of compiled | Interpreter_resident of string

type t = {
  cache : (string, entry) Hashtbl.t;
  mutable compiled_methods : int;
  mutable skipped_methods : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable compile_cost_us : int64;
  mutable guards_emitted : int;
  mutable guards_elided : int;
      (** guards proven redundant by proxy-side dataflow facts *)
}

val create : unit -> t
val key : cls:string -> name:string -> desc:string -> arch:string -> string

val compile_method :
  ?elide:bool ->
  t ->
  Arch.t ->
  Bytecode.Classfile.t ->
  Bytecode.Classfile.meth ->
  entry
(** [elide] (default true) consults the {!Analysis} pass manager so
    guards proven redundant are dropped from the emitted IR. *)

val compile_class :
  ?elide:bool -> t -> Arch.t -> Bytecode.Classfile.t -> (string * entry) list

val compile_for_fleet :
  ?elide:bool ->
  t ->
  Monitor.Console.t ->
  Bytecode.Classfile.t ->
  (string * entry) list
(** Compile for every native format registered at the console. *)
