(* Stack-to-register translation: the first half of the network
   compiler. Verified bytecode has a consistent operand-stack depth at
   every program point, so each stack slot at depth d maps to the fixed
   virtual register max_locals + d and no SSA construction is needed.
   Locals keep their indices.

   Scope (documented in DESIGN.md): methods using jsr/ret or exception
   handlers stay interpreted — the service compiles what it can and
   leaves the rest to the client interpreter, as a conservative AOT
   compiler would. *)

module CF = Bytecode.Classfile
module CP = Bytecode.Cp
module I = Bytecode.Instr
module D = Bytecode.Descriptor

exception Unsupported of string

type guard_stats = { mutable emitted : int; mutable elided : int }

let fresh_guard_stats () = { emitted = 0; elided = 0 }

let cond_of_icmp = function
  | I.Eq -> Ir.Eq
  | I.Ne -> Ir.Ne
  | I.Lt -> Ir.Lt
  | I.Ge -> Ir.Ge
  | I.Gt -> Ir.Gt
  | I.Le -> Ir.Le

let translate_method ?facts ?(stats = fresh_guard_stats ()) pool
    (m : CF.meth) : Ir.meth =
  match m.CF.m_code with
  | None -> raise (Unsupported "no code")
  | Some code ->
    if code.CF.handlers <> [] then raise (Unsupported "exception handlers");
    Array.iter
      (fun i ->
        match i with
        | I.Jsr _ | I.Ret _ -> raise (Unsupported "jsr/ret subroutine")
        | _ -> ())
      code.CF.instrs;
    let n = Array.length code.CF.instrs in
    let base = code.CF.max_locals in
    let tmp0 = base + code.CF.max_stack in
    let s d = base + d in
    (* Entry stack depth per instruction, by propagation. *)
    let depth = Array.make n (-1) in
    let delta insn d =
      match insn with
      | I.Nop | I.Iinc _ | I.Goto _ -> d
      | I.Iconst _ | I.Ldc_str _ | I.Aconst_null | I.Iload _ | I.Aload _
      | I.New _ | I.Getstatic _ ->
        d + 1
      | I.Istore _ | I.Astore _ | I.Pop | I.Putstatic _ | I.If_z _
      | I.If_null _ | I.Monitorenter | I.Monitorexit | I.Tableswitch _
      | I.Athrow | I.Ireturn | I.Areturn ->
        d - 1
      | I.Iadd | I.Isub | I.Imul | I.Idiv | I.Irem | I.Ishl | I.Ishr | I.Iand
      | I.Ior | I.Ixor | I.Iaload | I.Aaload ->
        d - 1
      | I.Ineg | I.Newarray | I.Anewarray _ | I.Arraylength | I.Checkcast _
      | I.Instanceof _ | I.Swap | I.Return ->
        d
      | I.Dup | I.Dup_x1 -> d + 1
      | I.If_icmp _ | I.If_acmp _ | I.Putfield _ -> d - 2
      | I.Getfield _ -> d
      | I.Iastore | I.Aastore -> d - 3
      | I.Jsr _ | I.Ret _ -> raise (Unsupported "jsr/ret")
      | I.Invokevirtual k | I.Invokespecial k | I.Invokeinterface k ->
        let mr = CP.get_methodref pool k in
        let sg = D.method_sig_of_string mr.CP.ref_desc in
        d - 1 - List.length sg.D.params
        + (match sg.D.ret with None -> 0 | Some _ -> 1)
      | I.Invokestatic k ->
        let mr = CP.get_methodref pool k in
        let sg = D.method_sig_of_string mr.CP.ref_desc in
        d - List.length sg.D.params
        + (match sg.D.ret with None -> 0 | Some _ -> 1)
    in
    let rec flow idx d =
      if idx >= 0 && idx < n && depth.(idx) < 0 then begin
        depth.(idx) <- d;
        let d' = delta code.CF.instrs.(idx) d in
        List.iter (fun t -> flow t d') (I.successors idx code.CF.instrs.(idx))
      end
    in
    flow 0 0;
    (* Translate each bytecode to one or more IR instructions,
       remembering the IR offset of each bytecode. *)
    let out = ref [] in
    let count = ref 0 in
    let emit i =
      out := i :: !out;
      incr count
    in
    let start = Array.make (n + 1) 0 in
    (* Proxy-side dataflow facts, when supplied, prove some guards
       redundant; a guard only reaches the stream when unproven. *)
    let null_fact idx =
      match facts with
      | None -> None
      | Some f ->
        (Lazy.force f.Analysis.Pass.nullness).Analysis.Nullness.before.(idx)
    in
    let range_fact idx =
      match facts with
      | None -> None
      | Some f ->
        (Lazy.force f.Analysis.Pass.ranges).Analysis.Intrange.before.(idx)
    in
    let guard_null idx d ~dft =
      let proven =
        match null_fact idx with
        | Some st -> Analysis.Nullness.stack_nonnull st ~depth:dft
        | None -> false
      in
      if proven then stats.elided <- stats.elided + 1
      else begin
        stats.emitted <- stats.emitted + 1;
        emit (Ir.Guard (`Null (s (d - 1 - dft))))
      end
    in
    let guard_bounds idx d ~arr_dft ~idx_dft =
      let proven =
        match range_fact idx with
        | Some st ->
          Analysis.Intrange.in_bounds st ~idx_depth:idx_dft ~arr_depth:arr_dft
        | None -> false
      in
      if proven then stats.elided <- stats.elided + 1
      else begin
        stats.emitted <- stats.emitted + 1;
        emit (Ir.Guard (`Bounds (s (d - 1 - arr_dft), s (d - 1 - idx_dft))))
      end
    in
    for idx = 0 to n - 1 do
      start.(idx) <- !count;
      let d = depth.(idx) in
      if d < 0 then (* unreachable: keep alignment with a nop *)
        emit Ir.Nop
      else begin
        let fieldref k = CP.get_fieldref pool k in
        let methodref k = CP.get_methodref pool k in
        match code.CF.instrs.(idx) with
        | I.Nop -> emit Ir.Nop
        | I.Iconst v -> emit (Ir.Const (s d, v))
        | I.Ldc_str k -> emit (Ir.Str (s d, CP.get_string pool k))
        | I.Aconst_null -> emit (Ir.Null (s d))
        | I.Iload l | I.Aload l -> emit (Ir.Move (s d, l))
        | I.Istore l | I.Astore l -> emit (Ir.Move (l, s (d - 1)))
        | I.Iinc (l, c) ->
          emit (Ir.Const (tmp0, Int32.of_int c));
          emit (Ir.Bin (Ir.Add, l, l, tmp0))
        | I.Iadd -> emit (Ir.Bin (Ir.Add, s (d - 2), s (d - 2), s (d - 1)))
        | I.Isub -> emit (Ir.Bin (Ir.Sub, s (d - 2), s (d - 2), s (d - 1)))
        | I.Imul -> emit (Ir.Bin (Ir.Mul, s (d - 2), s (d - 2), s (d - 1)))
        | I.Idiv -> emit (Ir.Bin (Ir.Div, s (d - 2), s (d - 2), s (d - 1)))
        | I.Irem -> emit (Ir.Bin (Ir.Rem, s (d - 2), s (d - 2), s (d - 1)))
        | I.Ishl -> emit (Ir.Bin (Ir.Shl, s (d - 2), s (d - 2), s (d - 1)))
        | I.Ishr -> emit (Ir.Bin (Ir.Shr, s (d - 2), s (d - 2), s (d - 1)))
        | I.Iand -> emit (Ir.Bin (Ir.And, s (d - 2), s (d - 2), s (d - 1)))
        | I.Ior -> emit (Ir.Bin (Ir.Or, s (d - 2), s (d - 2), s (d - 1)))
        | I.Ixor -> emit (Ir.Bin (Ir.Xor, s (d - 2), s (d - 2), s (d - 1)))
        | I.Ineg -> emit (Ir.Neg (s (d - 1), s (d - 1)))
        | I.Dup -> emit (Ir.Move (s d, s (d - 1)))
        | I.Dup_x1 ->
          (* ... b a  ->  ... a b a *)
          emit (Ir.Move (tmp0, s (d - 2)));
          emit (Ir.Move (s (d - 2), s (d - 1)));
          emit (Ir.Move (s (d - 1), tmp0));
          emit (Ir.Move (s d, s (d - 2)))
        | I.Pop -> emit Ir.Nop
        | I.Swap ->
          emit (Ir.Move (tmp0, s (d - 2)));
          emit (Ir.Move (s (d - 2), s (d - 1)));
          emit (Ir.Move (s (d - 1), tmp0))
        | I.Goto t -> emit (Ir.Jump t)
        | I.If_icmp (c, t) ->
          emit (Ir.Branch (cond_of_icmp c, s (d - 2), Some (s (d - 1)), t))
        | I.If_z (c, t) -> emit (Ir.Branch (cond_of_icmp c, s (d - 1), None, t))
        | I.If_acmp (eq, t) ->
          emit
            (Ir.Branch
               ((if eq then Ir.Eq else Ir.Ne), s (d - 2), Some (s (d - 1)), t))
        | I.If_null (isnull, t) ->
          emit
            (Ir.Branch ((if isnull then Ir.Eq else Ir.Ne), s (d - 1), None, t))
        | I.Jsr _ | I.Ret _ -> raise (Unsupported "jsr/ret")
        | I.Tableswitch { low; targets; default } ->
          emit (Ir.Switch { src = s (d - 1); low; targets; default })
        | I.Ireturn | I.Areturn -> emit (Ir.Ret (Some (s (d - 1))))
        | I.Return -> emit (Ir.Ret None)
        | I.Getstatic k ->
          let fr = fieldref k in
          emit (Ir.Getstatic (s d, fr.CP.ref_class, fr.CP.ref_name, fr.CP.ref_desc))
        | I.Putstatic k ->
          let fr = fieldref k in
          emit
            (Ir.Putstatic (s (d - 1), fr.CP.ref_class, fr.CP.ref_name, fr.CP.ref_desc))
        | I.Getfield k ->
          guard_null idx d ~dft:0;
          let fr = fieldref k in
          emit
            (Ir.Getfield
               (s (d - 1), s (d - 1), fr.CP.ref_class, fr.CP.ref_name, fr.CP.ref_desc))
        | I.Putfield k ->
          guard_null idx d ~dft:1;
          let fr = fieldref k in
          emit
            (Ir.Putfield
               (s (d - 2), s (d - 1), fr.CP.ref_class, fr.CP.ref_name, fr.CP.ref_desc))
        | I.Invokevirtual k | I.Invokespecial k | I.Invokestatic k
        | I.Invokeinterface k ->
          let mr = methodref k in
          let sg = D.method_sig_of_string mr.CP.ref_desc in
          let kind =
            match code.CF.instrs.(idx) with
            | I.Invokevirtual _ | I.Invokeinterface _ -> `Virtual
            | I.Invokespecial _ -> `Special
            | _ -> `Static
          in
          let nargs =
            List.length sg.D.params + (match kind with `Static -> 0 | _ -> 1)
          in
          if kind <> `Static then guard_null idx d ~dft:(nargs - 1);
          let args = List.init nargs (fun i -> s (d - nargs + i)) in
          let dst =
            match sg.D.ret with None -> None | Some _ -> Some (s (d - nargs))
          in
          emit
            (Ir.Call
               {
                 kind;
                 cls = mr.CP.ref_class;
                 name = mr.CP.ref_name;
                 desc = mr.CP.ref_desc;
                 args;
                 dst;
               })
        | I.New k -> emit (Ir.New (s d, CP.get_class_name pool k))
        | I.Newarray -> emit (Ir.Newarr (s (d - 1), s (d - 1)))
        | I.Anewarray k ->
          emit (Ir.Anewarr (s (d - 1), s (d - 1), CP.get_class_name pool k))
        | I.Arraylength ->
          guard_null idx d ~dft:0;
          emit (Ir.Arrlen (s (d - 1), s (d - 1)))
        | I.Iaload ->
          guard_null idx d ~dft:1;
          guard_bounds idx d ~arr_dft:1 ~idx_dft:0;
          emit (Ir.Arrload (s (d - 2), s (d - 2), s (d - 1), `Int))
        | I.Aaload ->
          guard_null idx d ~dft:1;
          guard_bounds idx d ~arr_dft:1 ~idx_dft:0;
          emit (Ir.Arrload (s (d - 2), s (d - 2), s (d - 1), `Ref))
        | I.Iastore ->
          guard_null idx d ~dft:2;
          guard_bounds idx d ~arr_dft:2 ~idx_dft:1;
          emit (Ir.Arrstore (s (d - 3), s (d - 2), s (d - 1), `Int))
        | I.Aastore ->
          guard_null idx d ~dft:2;
          guard_bounds idx d ~arr_dft:2 ~idx_dft:1;
          emit (Ir.Arrstore (s (d - 3), s (d - 2), s (d - 1), `Ref))
        | I.Athrow -> emit (Ir.Throw (s (d - 1)))
        | I.Checkcast k ->
          emit (Ir.Cast (s (d - 1), s (d - 1), CP.get_class_name pool k))
        | I.Instanceof k ->
          emit (Ir.Instof (s (d - 1), s (d - 1), CP.get_class_name pool k))
        | I.Monitorenter ->
          guard_null idx d ~dft:0;
          emit (Ir.Monitor (s (d - 1), true))
        | I.Monitorexit ->
          guard_null idx d ~dft:0;
          emit (Ir.Monitor (s (d - 1), false))
      end
    done;
    start.(n) <- !count;
    let arr = Array.of_list (List.rev !out) in
    (* Remap branch targets from bytecode indices to IR offsets. *)
    let remap = function
      | Ir.Jump t -> Ir.Jump start.(t)
      | Ir.Branch (c, a, b, t) -> Ir.Branch (c, a, b, start.(t))
      | Ir.Switch { src; low; targets; default } ->
        Ir.Switch
          {
            src;
            low;
            targets = Array.map (fun t -> start.(t)) targets;
            default = start.(default);
          }
      | i -> i
    in
    {
      Ir.ir_name = m.CF.m_name;
      ir_desc = m.CF.m_desc;
      code = Array.map remap arr;
      nregs = tmp0 + 1;
    }
