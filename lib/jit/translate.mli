(** Stack-to-register translation: the first half of the network
    compiler.

    Verified bytecode has a consistent operand-stack depth at every
    program point, so stack slot [d] maps to virtual register
    [max_locals + d] and no SSA construction is needed.

    Scope (DESIGN.md): methods using [jsr]/[ret] or exception handlers
    stay interpreted — the service compiles what it can, as a
    conservative AOT compiler would. *)

exception Unsupported of string

type guard_stats = { mutable emitted : int; mutable elided : int }
(** Null/bounds guards emitted before dereference sites, and guards
    proven redundant by proxy-side dataflow facts and dropped. *)

val fresh_guard_stats : unit -> guard_stats

val translate_method :
  ?facts:Analysis.Pass.facts ->
  ?stats:guard_stats ->
  Bytecode.Cp.t ->
  Bytecode.Classfile.meth ->
  Ir.meth
(** Without [facts] every dereference site gets a guard; with them,
    guards the nullness/range analyses prove redundant are elided.
    @raise Unsupported for abstract/native bodies, jsr/ret, handlers. *)
