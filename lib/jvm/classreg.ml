(* The class registry: loaded classes, lazy loading through a provider
   (the DVM client's window onto the network), hierarchy queries and
   member resolution. *)

type init_state = Not_initialized | Initializing | Initialized

type loaded = {
  cf : Bytecode.Classfile.t;
  statics : (string, Value.t) Hashtbl.t;
  mutable init_state : init_state;
  wire_bytes : int; (* encoded size when fetched; 0 for boot classes *)
}

type provider = string -> string option

exception Class_not_found of string
exception Load_rejected of { cls : string; reason : string }

type t = {
  classes : (string, loaded) Hashtbl.t;
  mutable provider : provider;
  mutable on_load : Bytecode.Classfile.t -> unit;
  mutable classes_fetched : int;
  mutable bytes_fetched : int;
  mutable load_order : string list; (* most recent first *)
}

let create ?(provider = fun _ -> None) () =
  {
    classes = Hashtbl.create 64;
    provider;
    on_load = ignore;
    classes_fetched = 0;
    bytes_fetched = 0;
    load_order = [];
  }

let set_provider t p = t.provider <- p
let set_on_load t f = t.on_load <- f

let make_loaded ?(wire_bytes = 0) cf =
  let statics = Hashtbl.create 8 in
  List.iter
    (fun f ->
      if List.mem Bytecode.Classfile.Static f.Bytecode.Classfile.f_flags then
        Hashtbl.replace statics f.Bytecode.Classfile.f_name
          (Value.default_of_descriptor f.Bytecode.Classfile.f_desc))
    cf.Bytecode.Classfile.fields;
  { cf; statics; init_state = Not_initialized; wire_bytes }

let register t cf =
  Hashtbl.replace t.classes cf.Bytecode.Classfile.name (make_loaded cf)

let find_loaded t name = Hashtbl.find_opt t.classes name

let lookup t name =
  match Hashtbl.find_opt t.classes name with
  | Some l -> l
  | None -> (
    match
      Telemetry.Global.with_span ~cat:"jvm" ~args:[ ("class", name) ]
        ~observe_hist:"jvm.class_load_us" "jvm.class_load" (fun () ->
          t.provider name)
    with
    | None -> raise (Class_not_found name)
    | Some bytes ->
      let cf =
        try Bytecode.Decode.class_of_bytes bytes
        with Bytecode.Decode.Format_error reason ->
          raise (Load_rejected { cls = name; reason })
      in
      if not (String.equal cf.Bytecode.Classfile.name name) then
        raise
          (Load_rejected
             {
               cls = name;
               reason =
                 Printf.sprintf "provider returned class %S"
                   cf.Bytecode.Classfile.name;
             });
      t.on_load cf;
      let l = make_loaded ~wire_bytes:(String.length bytes) cf in
      Hashtbl.replace t.classes name l;
      t.classes_fetched <- t.classes_fetched + 1;
      t.bytes_fetched <- t.bytes_fetched + String.length bytes;
      t.load_order <- name :: t.load_order;
      if Telemetry.Global.on () then begin
        Telemetry.Global.incr "jvm.classes_loaded";
        Telemetry.Global.add "jvm.bytes_fetched"
          (Int64.of_int (String.length bytes))
      end;
      l)

let is_loaded t name = Hashtbl.mem t.classes name

(* All (transitive) interfaces of a class, including those inherited
   through superclasses. *)
let rec interfaces_of t name acc =
  match find_or_load t name with
  | None -> acc
  | Some l ->
    let cf = l.cf in
    let acc =
      List.fold_left
        (fun acc i ->
          if List.mem i acc then acc else interfaces_of t i (i :: acc))
        acc cf.Bytecode.Classfile.interfaces
    in
    (match cf.Bytecode.Classfile.super with
    | None -> acc
    | Some s -> interfaces_of t s acc)

and find_or_load t name =
  match Hashtbl.find_opt t.classes name with
  | Some l -> Some l
  | None -> ( try Some (lookup t name) with Class_not_found _ -> None)

let rec superclass_chain t name acc =
  match find_or_load t name with
  | None -> List.rev (name :: acc)
  | Some l -> (
    match l.cf.Bytecode.Classfile.super with
    | None -> List.rev (name :: acc)
    | Some s -> superclass_chain t s (name :: acc))

(* Reflexive subtype test over class names, covering arrays.
   [java/lang/String] is a final class with superclass Object. *)
let rec is_subclass t ~sub ~super =
  if String.equal sub super then true
  else if String.equal sub "<null>" then true (* null widens to any ref *)
  else if String.length sub > 0 && sub.[0] = '[' then
    (* arrays: [X <= Object; [LA; <= [LB; when A <= B *)
    String.equal super Bytecode.Classfile.java_lang_object
    ||
    if String.length super > 0 && super.[0] = '[' then
      match (array_elem sub, array_elem super) with
      | Some a, Some b -> is_subclass t ~sub:a ~super:b
      | _, _ -> false
    else false
  else
    List.mem super (superclass_chain t sub [])
    || List.mem super (interfaces_of t sub [])

and array_elem name =
  if String.length name >= 2 && name.[0] = '[' then
    if name.[1] = 'L' && name.[String.length name - 1] = ';' then
      Some (String.sub name 2 (String.length name - 3))
    else if String.equal name "[I" then Some "I"
    else None
  else None

(* Walk the superclass chain looking for a concrete (or native)
   method. Returns the defining class's entry too, so the caller can
   find the right native implementation. *)
let resolve_method t cls_name name desc =
  let rec walk cname =
    match find_or_load t cname with
    | None -> None
    | Some l -> (
      match Bytecode.Classfile.find_method l.cf name desc with
      | Some m -> Some (l, m)
      | None -> (
        match l.cf.Bytecode.Classfile.super with
        | None -> None
        | Some s -> walk s))
  in
  walk cls_name

let resolve_field t cls_name name =
  let rec walk cname =
    match find_or_load t cname with
    | None -> None
    | Some l -> (
      match Bytecode.Classfile.find_field l.cf name with
      | Some f -> Some (l, f)
      | None -> (
        match l.cf.Bytecode.Classfile.super with
        | None -> None
        | Some s -> walk s))
  in
  walk cls_name

(* Instance fields of a class including inherited ones, as
   (name, descriptor) pairs for object allocation. *)
let all_instance_fields t cls_name =
  let rec walk cname acc =
    match find_or_load t cname with
    | None -> acc
    | Some l ->
      let acc =
        List.fold_left
          (fun acc f ->
            if List.mem Bytecode.Classfile.Static f.Bytecode.Classfile.f_flags
            then acc
            else
              (f.Bytecode.Classfile.f_name, f.Bytecode.Classfile.f_desc) :: acc)
          acc l.cf.Bytecode.Classfile.fields
      in
      (match l.cf.Bytecode.Classfile.super with
      | None -> acc
      | Some s -> walk s acc)
  in
  walk cls_name []

let loaded_count t = Hashtbl.length t.classes
