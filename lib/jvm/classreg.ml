(* The class registry: loaded classes, lazy loading through a provider
   (the DVM client's window onto the network), hierarchy queries and
   member resolution. *)

type init_state = Not_initialized | Initializing | Initialized

type loaded = {
  cf : Bytecode.Classfile.t;
  statics : (string, Value.t) Hashtbl.t;
  mutable init_state : init_state;
  wire_bytes : int; (* encoded size when fetched; 0 for boot classes *)
}

type provider = string -> string option

exception Class_not_found of string
exception Load_rejected of { cls : string; reason : string }

type t = {
  classes : (string, loaded) Hashtbl.t;
  mutable provider : provider;
  mutable on_load : Bytecode.Classfile.t -> unit;
  mutable classes_fetched : int;
  mutable bytes_fetched : int;
  mutable load_order : string list; (* most recent first *)
  (* Hierarchy-query memos. Interpretation hits [resolve_method],
     [resolve_field], [is_subclass] and [all_instance_fields] on every
     invoke / field access / checkcast / new, and each is a chain walk
     over [classes]. A result is cached only when computing it touched
     loaded classes exclusively — a walk that consulted the provider
     (even unsuccessfully) is never cached, so lazy-load side effects
     (fetches, telemetry, Class_not_found) replay exactly as uncached.
     All four memos are flushed whenever [classes] changes. *)
  method_cache : (string * string * string, (loaded * Bytecode.Classfile.meth) option) Hashtbl.t;
  field_cache : (string * string, (loaded * Bytecode.Classfile.field) option) Hashtbl.t;
  subtype_cache : (string * string, bool) Hashtbl.t;
  fields_cache : (string, (string * string) list) Hashtbl.t;
}

let create ?(provider = fun _ -> None) () =
  {
    classes = Hashtbl.create 64;
    provider;
    on_load = ignore;
    classes_fetched = 0;
    bytes_fetched = 0;
    load_order = [];
    method_cache = Hashtbl.create 64;
    field_cache = Hashtbl.create 64;
    subtype_cache = Hashtbl.create 64;
    fields_cache = Hashtbl.create 16;
  }

let flush_query_caches t =
  Hashtbl.reset t.method_cache;
  Hashtbl.reset t.field_cache;
  Hashtbl.reset t.subtype_cache;
  Hashtbl.reset t.fields_cache

let set_provider t p = t.provider <- p
let set_on_load t f = t.on_load <- f

let make_loaded ?(wire_bytes = 0) cf =
  let statics = Hashtbl.create 8 in
  List.iter
    (fun f ->
      if List.mem Bytecode.Classfile.Static f.Bytecode.Classfile.f_flags then
        Hashtbl.replace statics f.Bytecode.Classfile.f_name
          (Value.default_of_descriptor f.Bytecode.Classfile.f_desc))
    cf.Bytecode.Classfile.fields;
  { cf; statics; init_state = Not_initialized; wire_bytes }

let register t cf =
  flush_query_caches t;
  Hashtbl.replace t.classes cf.Bytecode.Classfile.name (make_loaded cf)

let find_loaded t name = Hashtbl.find_opt t.classes name

let lookup t name =
  match Hashtbl.find_opt t.classes name with
  | Some l -> l
  | None -> (
    match
      Telemetry.Global.with_span ~cat:"jvm" ~args:[ ("class", name) ]
        ~observe_hist:"jvm.class_load_us" "jvm.class_load" (fun () ->
          t.provider name)
    with
    | None -> raise (Class_not_found name)
    | Some bytes ->
      let cf =
        try Bytecode.Decode.class_of_bytes bytes
        with Bytecode.Decode.Format_error reason ->
          raise (Load_rejected { cls = name; reason })
      in
      if not (String.equal cf.Bytecode.Classfile.name name) then
        raise
          (Load_rejected
             {
               cls = name;
               reason =
                 Printf.sprintf "provider returned class %S"
                   cf.Bytecode.Classfile.name;
             });
      t.on_load cf;
      let l = make_loaded ~wire_bytes:(String.length bytes) cf in
      flush_query_caches t;
      Hashtbl.replace t.classes name l;
      t.classes_fetched <- t.classes_fetched + 1;
      t.bytes_fetched <- t.bytes_fetched + String.length bytes;
      t.load_order <- name :: t.load_order;
      if Telemetry.Global.on () then begin
        Telemetry.Global.incr "jvm.classes_loaded";
        Telemetry.Global.add "jvm.bytes_fetched"
          (Int64.of_int (String.length bytes))
      end;
      l)

let is_loaded t name = Hashtbl.mem t.classes name

let find_or_load t name =
  match Hashtbl.find_opt t.classes name with
  | Some l -> Some l
  | None -> ( try Some (lookup t name) with Class_not_found _ -> None)

(* Like [find_or_load], but records in [missed] whether the provider
   was consulted — a walk that set [missed] must not be memoized (its
   side effects have to replay on the next query). *)
let find_track t missed name =
  match Hashtbl.find_opt t.classes name with
  | Some l -> Some l
  | None ->
    missed := true;
    find_or_load t name

(* All (transitive) interfaces of a class, including those inherited
   through superclasses. *)
let rec interfaces_walk t missed name acc =
  match find_track t missed name with
  | None -> acc
  | Some l ->
    let cf = l.cf in
    let acc =
      List.fold_left
        (fun acc i ->
          if List.mem i acc then acc else interfaces_walk t missed i (i :: acc))
        acc cf.Bytecode.Classfile.interfaces
    in
    (match cf.Bytecode.Classfile.super with
    | None -> acc
    | Some s -> interfaces_walk t missed s acc)

let rec superclass_walk t missed name acc =
  match find_track t missed name with
  | None -> List.rev (name :: acc)
  | Some l -> (
    match l.cf.Bytecode.Classfile.super with
    | None -> List.rev (name :: acc)
    | Some s -> superclass_walk t missed s (name :: acc))

let superclass_chain t name acc = superclass_walk t (ref false) name acc

(* Reflexive subtype test over class names, covering arrays.
   [java/lang/String] is a final class with superclass Object. *)
let rec subclass_walk t missed ~sub ~super =
  if String.equal sub super then true
  else if String.equal sub "<null>" then true (* null widens to any ref *)
  else if String.length sub > 0 && sub.[0] = '[' then
    (* arrays: [X <= Object; [LA; <= [LB; when A <= B *)
    String.equal super Bytecode.Classfile.java_lang_object
    ||
    if String.length super > 0 && super.[0] = '[' then
      match (array_elem sub, array_elem super) with
      | Some a, Some b -> subclass_walk t missed ~sub:a ~super:b
      | _, _ -> false
    else false
  else
    List.mem super (superclass_walk t missed sub [])
    || List.mem super (interfaces_walk t missed sub [])

and array_elem name =
  if String.length name >= 2 && name.[0] = '[' then
    if name.[1] = 'L' && name.[String.length name - 1] = ';' then
      Some (String.sub name 2 (String.length name - 3))
    else if String.equal name "[I" then Some "I"
    else None
  else None

let is_subclass t ~sub ~super =
  if String.equal sub super then true
  else if String.equal sub "<null>" then true
  else
    let key = (sub, super) in
    match Hashtbl.find_opt t.subtype_cache key with
    | Some b -> b
    | None ->
      let missed = ref false in
      let b = subclass_walk t missed ~sub ~super in
      if not !missed then Hashtbl.replace t.subtype_cache key b;
      b

(* Walk the superclass chain looking for a concrete (or native)
   method. Returns the defining class's entry too, so the caller can
   find the right native implementation. *)
let resolve_method t cls_name name desc =
  let key = (cls_name, name, desc) in
  match Hashtbl.find_opt t.method_cache key with
  | Some r -> r
  | None ->
    let missed = ref false in
    let rec walk cname =
      match find_track t missed cname with
      | None -> None
      | Some l -> (
        match Bytecode.Classfile.find_method l.cf name desc with
        | Some m -> Some (l, m)
        | None -> (
          match l.cf.Bytecode.Classfile.super with
          | None -> None
          | Some s -> walk s))
    in
    let r = walk cls_name in
    if not !missed then Hashtbl.replace t.method_cache key r;
    r

let resolve_field t cls_name name =
  let key = (cls_name, name) in
  match Hashtbl.find_opt t.field_cache key with
  | Some r -> r
  | None ->
    let missed = ref false in
    let rec walk cname =
      match find_track t missed cname with
      | None -> None
      | Some l -> (
        match Bytecode.Classfile.find_field l.cf name with
        | Some f -> Some (l, f)
        | None -> (
          match l.cf.Bytecode.Classfile.super with
          | None -> None
          | Some s -> walk s))
    in
    let r = walk cls_name in
    if not !missed then Hashtbl.replace t.field_cache key r;
    r

(* Instance fields of a class including inherited ones, as
   (name, descriptor) pairs for object allocation. *)
let all_instance_fields t cls_name =
  match Hashtbl.find_opt t.fields_cache cls_name with
  | Some fields -> fields
  | None ->
    let missed = ref false in
    let rec walk cname acc =
      match find_track t missed cname with
      | None -> acc
      | Some l ->
        let acc =
          List.fold_left
            (fun acc f ->
              if List.mem Bytecode.Classfile.Static f.Bytecode.Classfile.f_flags
              then acc
              else
                (f.Bytecode.Classfile.f_name, f.Bytecode.Classfile.f_desc) :: acc)
            acc l.cf.Bytecode.Classfile.fields
        in
        (match l.cf.Bytecode.Classfile.super with
        | None -> acc
        | Some s -> walk s acc)
    in
    let fields = walk cls_name [] in
    if not !missed then Hashtbl.replace t.fields_cache cls_name fields;
    fields

let loaded_count t = Hashtbl.length t.classes
