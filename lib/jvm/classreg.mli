(** Class registry: loaded classes, lazy loading through a provider
    (the client's window onto the network), hierarchy queries and
    member resolution. *)

type init_state = Not_initialized | Initializing | Initialized

type loaded = {
  cf : Bytecode.Classfile.t;
  statics : (string, Value.t) Hashtbl.t;
  mutable init_state : init_state;
  wire_bytes : int;  (** encoded size when fetched; 0 for boot classes *)
}

type provider = string -> string option
(** Maps a class name to its encoded bytes, or [None] if unknown. *)

exception Class_not_found of string
exception Load_rejected of { cls : string; reason : string }

type t = {
  classes : (string, loaded) Hashtbl.t;
  mutable provider : provider;
  mutable on_load : Bytecode.Classfile.t -> unit;
  mutable classes_fetched : int;
  mutable bytes_fetched : int;
  mutable load_order : string list;  (** most recently loaded first *)
  method_cache :
    (string * string * string, (loaded * Bytecode.Classfile.meth) option) Hashtbl.t;
      (** memoized [resolve_method]; flushed whenever [classes] changes *)
  field_cache : (string * string, (loaded * Bytecode.Classfile.field) option) Hashtbl.t;
  subtype_cache : (string * string, bool) Hashtbl.t;
  fields_cache : (string, (string * string) list) Hashtbl.t;
}

val create : ?provider:provider -> unit -> t
val set_provider : t -> provider -> unit

val set_on_load : t -> (Bytecode.Classfile.t -> unit) -> unit
(** Hook run on every provider-loaded class before registration — this
    is where a monolithic client plugs in local verification. The hook
    rejects a class by raising. *)

val register : t -> Bytecode.Classfile.t -> unit
(** Register a boot class directly, bypassing provider and hook. *)

val find_loaded : t -> string -> loaded option

val lookup : t -> string -> loaded
(** Find a class, fetching through the provider if necessary.
    @raise Class_not_found when the provider has no such class.
    @raise Load_rejected when the bytes are malformed, misnamed, or the
    [on_load] hook rejects them. *)

val is_loaded : t -> string -> bool

val is_subclass : t -> sub:string -> super:string -> bool
(** Reflexive subtype test over class names, covering arrays and
    (transitive) interfaces. *)

val array_elem : string -> string option

val resolve_method :
  t -> string -> string -> string -> (loaded * Bytecode.Classfile.meth) option
(** [resolve_method t cls name desc] walks the superclass chain. *)

val resolve_field :
  t -> string -> string -> (loaded * Bytecode.Classfile.field) option

val all_instance_fields : t -> string -> (string * string) list
val superclass_chain : t -> string -> string list -> string list
val loaded_count : t -> int
