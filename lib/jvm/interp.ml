(* The bytecode interpreter.

   Deliberately trusting: operand and local slots are checked at use
   with Runtime_fault, which is exactly the class of crash the verifier
   exists to rule out. Runs of verified code never fault; runs of
   unverified code may. Exception objects unwind via Vmstate.Throw and
   are dispatched against the exception tables of enclosing frames. *)

module I = Bytecode.Instr
module CF = Bytecode.Classfile
module CP = Bytecode.Cp
module D = Bytecode.Descriptor

let max_call_depth = 2048

(* --- Slot accessors: the unsafe edges verification protects. --- *)

let as_int = function
  | Value.Int n -> n
  | v -> Vmstate.fault "expected int, got %s" (Value.to_string v)

let as_retaddr = function
  | Value.Retaddr pc -> pc
  | v -> Vmstate.fault "expected return address, got %s" (Value.to_string v)

let as_reference v =
  if Value.is_reference v then v
  else Vmstate.fault "expected reference, got %s" (Value.to_string v)

(* --- Class initialization. --- *)

let rec ensure_initialized vm name =
  let l =
    try Classreg.lookup vm.Vmstate.reg name with
    | Classreg.Class_not_found c ->
      Vmstate.throw vm ~cls:Vmstate.c_ncdfe ~message:c
    | Classreg.Load_rejected { cls; reason } ->
      Vmstate.throw vm ~cls:Vmstate.c_verify
        ~message:(Printf.sprintf "%s: %s" cls reason)
  in
  match l.Classreg.init_state with
  | Classreg.Initialized | Classreg.Initializing -> ()
  | Classreg.Not_initialized ->
    l.Classreg.init_state <- Classreg.Initializing;
    (match l.Classreg.cf.CF.super with
    | None -> ()
    | Some s -> ensure_initialized vm s);
    (match CF.find_method l.Classreg.cf "<clinit>" "()V" with
    | None -> ()
    | Some m -> ignore (invoke_resolved vm l m []));
    l.Classreg.init_state <- Classreg.Initialized

(* --- Method invocation. --- *)

and invoke vm ~cls ~name ~desc args =
  match Classreg.resolve_method vm.Vmstate.reg cls name desc with
  | None ->
    Vmstate.throw vm ~cls:"java/lang/NoSuchMethodError"
      ~message:(Printf.sprintf "%s.%s:%s" cls name desc)
  | Some (l, m) -> invoke_resolved vm l m args

and invoke_resolved vm l (m : CF.meth) args =
  let cls = l.Classreg.cf.CF.name in
  vm.Vmstate.invocations <- vm.Vmstate.invocations + 1;
  vm.Vmstate.call_depth <- vm.Vmstate.call_depth + 1;
  if vm.Vmstate.call_depth > vm.Vmstate.max_call_depth then
    vm.Vmstate.max_call_depth <- vm.Vmstate.call_depth;
  (* Manual unwind instead of [Fun.protect]: this runs once per method
     invocation, and the depth decrement cannot itself raise. *)
  let enter () =
    if vm.Vmstate.call_depth > max_call_depth then
      Vmstate.throw vm ~cls:Vmstate.c_stack_overflow
        ~message:(cls ^ "." ^ m.CF.m_name);
    match m.CF.m_code with
    | Some code -> exec_body vm l m code args
    | None -> (
      match
        Vmstate.find_native vm ~cls ~name:m.CF.m_name ~desc:m.CF.m_desc
      with
      | Some impl -> impl vm args
      | None ->
        Vmstate.fault "no native implementation for %s.%s:%s" cls
          m.CF.m_name m.CF.m_desc)
  in
  match enter () with
  | v ->
    vm.Vmstate.call_depth <- vm.Vmstate.call_depth - 1;
    v
  | exception e ->
    vm.Vmstate.call_depth <- vm.Vmstate.call_depth - 1;
    raise e

and exec_body vm l (m : CF.meth) (code : CF.code) args =
  let pool = l.Classreg.cf.CF.pool in
  let locals = Array.make (max code.CF.max_locals (List.length args)) Value.Null in
  List.iteri (fun i a -> locals.(i) <- a) args;
  let stack = Array.make (code.CF.max_stack + 1) Value.Null in
  let sp = ref 0 in
  let push v =
    if !sp >= Array.length stack then Vmstate.fault "operand stack overflow";
    stack.(!sp) <- v;
    incr sp
  in
  let pop () =
    if !sp <= 0 then Vmstate.fault "operand stack underflow";
    decr sp;
    stack.(!sp)
  in
  let pop_int () = as_int (pop ()) in
  let local n =
    if n < 0 || n >= Array.length locals then
      Vmstate.fault "local index %d out of range" n
    else locals.(n)
  in
  let set_local n v =
    if n < 0 || n >= Array.length locals then
      Vmstate.fault "local index %d out of range" n
    else locals.(n) <- v
  in
  let fieldref idx =
    try CP.get_fieldref pool idx
    with CP.Invalid_index _ | CP.Wrong_kind _ ->
      Vmstate.fault "bad fieldref index %d" idx
  in
  let methodref idx =
    try CP.get_methodref pool idx
    with CP.Invalid_index _ | CP.Wrong_kind _ ->
      Vmstate.fault "bad methodref index %d" idx
  in
  let class_at idx =
    try CP.get_class_name pool idx
    with CP.Invalid_index _ | CP.Wrong_kind _ ->
      Vmstate.fault "bad class index %d" idx
  in
  (* Pop [n] call arguments, last argument on top of stack. *)
  let pop_args n =
    let rec go acc k = if k = 0 then acc else go (pop () :: acc) (k - 1) in
    go [] n
  in
  let non_null v =
    match v with
    | Value.Null -> Vmstate.throw vm ~cls:Vmstate.c_npe ~message:""
    | v -> v
  in
  let statics_of cls_name field =
    match Classreg.resolve_field vm.Vmstate.reg cls_name field with
    | Some (dl, f) when CF.has_flag f.CF.f_flags CF.Static ->
      ensure_initialized vm dl.Classreg.cf.CF.name;
      dl.Classreg.statics
    | Some _ | None ->
      Vmstate.throw vm ~cls:"java/lang/NoSuchFieldError"
        ~message:(cls_name ^ "." ^ field)
  in
  let result = ref None in
  let running = ref true in
  let pc = ref 0 in
  let ncode = Array.length code.CF.instrs in
  (* [next] lives outside the loop and the exception handler wraps the
     whole loop rather than each instruction: the straight-line path
     allocates nothing for control flow. On a [Throw], [!pc] still
     names the faulting instruction (it only advances after a complete
     dispatch), so handler lookup sees exactly what the per-instruction
     handler saw; [loop] re-enters by tail call. *)
  let next = ref 0 in
  let rec loop () =
    try
      while !running do
        if !pc < 0 || !pc >= ncode then
          Vmstate.fault "pc %d outside method %s.%s" !pc l.Classreg.cf.CF.name
            m.CF.m_name;
        let insn = code.CF.instrs.(!pc) in
        vm.Vmstate.instr_count <- vm.Vmstate.instr_count + 1;
        if vm.Vmstate.instr_count > vm.Vmstate.budget then
          raise Vmstate.Budget_exhausted;
        next := !pc + 1;
        (match insn with
       | I.Nop -> ()
       | I.Iconst n -> push (Value.Int n)
       | I.Ldc_str idx -> (
         match CP.get_string pool idx with
         | s -> push (Value.Str s)
         | exception (CP.Invalid_index _ | CP.Wrong_kind _) ->
           Vmstate.fault "bad string index %d" idx)
       | I.Aconst_null -> push Value.Null
       | I.Iload n -> (
         (* Pushing the checked value as-is skips re-boxing the int32
            [as_int] just unwrapped. *)
         match local n with
         | Value.Int _ as v -> push v
         | v -> push (Value.Int (as_int v)))
       | I.Istore n -> (
         match pop () with
         | Value.Int _ as v -> set_local n v
         | v -> set_local n (Value.Int (as_int v)))
       | I.Aload n -> push (as_reference (local n))
       | I.Astore n ->
         (* astore also accepts return addresses (jsr/ret idiom) *)
         let v = pop () in
         (match v with
         | Value.Retaddr _ -> set_local n v
         | v -> set_local n (as_reference v))
       | I.Iinc (n, d) ->
         set_local n
           (Value.Int (Int32.add (as_int (local n)) (Int32.of_int d)))
       | I.Iadd ->
         let b = pop_int () in
         let a = pop_int () in
         push (Value.Int (Int32.add a b))
       | I.Isub ->
         let b = pop_int () in
         let a = pop_int () in
         push (Value.Int (Int32.sub a b))
       | I.Imul ->
         let b = pop_int () in
         let a = pop_int () in
         push (Value.Int (Int32.mul a b))
       | I.Idiv ->
         let b = pop_int () in
         let a = pop_int () in
         if Int32.equal b 0l then
           Vmstate.throw vm ~cls:Vmstate.c_arith ~message:"/ by zero"
         else push (Value.Int (Int32.div a b))
       | I.Irem ->
         let b = pop_int () in
         let a = pop_int () in
         if Int32.equal b 0l then
           Vmstate.throw vm ~cls:Vmstate.c_arith ~message:"% by zero"
         else push (Value.Int (Int32.rem a b))
       | I.Ineg -> push (Value.Int (Int32.neg (pop_int ())))
       | I.Ishl ->
         let b = pop_int () in
         let a = pop_int () in
         push (Value.Int (Int32.shift_left a (Int32.to_int b land 31)))
       | I.Ishr ->
         let b = pop_int () in
         let a = pop_int () in
         push (Value.Int (Int32.shift_right a (Int32.to_int b land 31)))
       | I.Iand ->
         let b = pop_int () in
         let a = pop_int () in
         push (Value.Int (Int32.logand a b))
       | I.Ior ->
         let b = pop_int () in
         let a = pop_int () in
         push (Value.Int (Int32.logor a b))
       | I.Ixor ->
         let b = pop_int () in
         let a = pop_int () in
         push (Value.Int (Int32.logxor a b))
       | I.Dup ->
         let v = pop () in
         push v;
         push v
       | I.Dup_x1 ->
         let a = pop () in
         let b = pop () in
         push a;
         push b;
         push a
       | I.Pop -> ignore (pop ())
       | I.Swap ->
         let a = pop () in
         let b = pop () in
         push a;
         push b
       | I.Goto t -> next := t
       | I.If_icmp (c, t) ->
         let b = pop_int () in
         let a = pop_int () in
         let cmp = Int32.compare a b in
         let taken =
           match c with
           | I.Eq -> cmp = 0
           | I.Ne -> cmp <> 0
           | I.Lt -> cmp < 0
           | I.Ge -> cmp >= 0
           | I.Gt -> cmp > 0
           | I.Le -> cmp <= 0
         in
         if taken then next := t
       | I.If_z (c, t) ->
         let a = pop_int () in
         let cmp = Int32.compare a 0l in
         let taken =
           match c with
           | I.Eq -> cmp = 0
           | I.Ne -> cmp <> 0
           | I.Lt -> cmp < 0
           | I.Ge -> cmp >= 0
           | I.Gt -> cmp > 0
           | I.Le -> cmp <= 0
         in
         if taken then next := t
       | I.If_acmp (want_eq, t) ->
         let b = pop () in
         let a = pop () in
         if Value.ref_equal a b = want_eq then next := t
       | I.If_null (want_null, t) ->
         let v = pop () in
         let is_null = match v with Value.Null -> true | _ -> false in
         if is_null = want_null then next := t
       | I.Jsr t ->
         push (Value.Retaddr (!pc + 1));
         next := t
       | I.Ret n -> next := as_retaddr (local n)
       | I.Tableswitch { low; targets; default } ->
         let v = pop_int () in
         let k = Int32.to_int (Int32.sub v low) in
         if k >= 0 && k < Array.length targets then next := targets.(k)
         else next := default
       | I.Ireturn ->
         result := Some (Value.Int (pop_int ()));
         running := false
       | I.Areturn ->
         result := Some (as_reference (pop ()));
         running := false
       | I.Return ->
         result := None;
         running := false
       | I.Getstatic idx ->
         let fr = fieldref idx in
         let statics = statics_of fr.CP.ref_class fr.CP.ref_name in
         (match Hashtbl.find_opt statics fr.CP.ref_name with
         | Some v -> push v
         | None -> Vmstate.fault "uninitialized static %s" fr.CP.ref_name)
       | I.Putstatic idx ->
         let fr = fieldref idx in
         let statics = statics_of fr.CP.ref_class fr.CP.ref_name in
         Hashtbl.replace statics fr.CP.ref_name (pop ())
       | I.Getfield idx -> (
         let fr = fieldref idx in
         match non_null (pop ()) with
         | Value.Obj o -> (
           match Hashtbl.find_opt o.Value.fields fr.CP.ref_name with
           | Some v -> push v
           | None ->
             Vmstate.throw vm ~cls:"java/lang/NoSuchFieldError"
               ~message:(fr.CP.ref_class ^ "." ^ fr.CP.ref_name))
         | v -> Vmstate.fault "getfield on %s" (Value.to_string v))
       | I.Putfield idx -> (
         let fr = fieldref idx in
         let v = pop () in
         match non_null (pop ()) with
         | Value.Obj o -> Hashtbl.replace o.Value.fields fr.CP.ref_name v
         | recv -> Vmstate.fault "putfield on %s" (Value.to_string recv))
       | I.Invokevirtual idx | I.Invokeinterface idx -> (
         let mr = methodref idx in
         let sg = D.method_sig_of_string mr.CP.ref_desc in
         let args = pop_args (List.length sg.D.params) in
         let recv = non_null (pop ()) in
         let dyn = Value.class_of recv in
         (* Dynamic dispatch starts at the receiver's class; falls back
            to the static class for strings/arrays resolved through
            their surrogate classes. *)
         let start =
           if Classreg.is_loaded vm.Vmstate.reg dyn then dyn
           else mr.CP.ref_class
         in
         match
           invoke vm ~cls:start ~name:mr.CP.ref_name ~desc:mr.CP.ref_desc
             (recv :: args)
         with
         | Some v -> push v
         | None -> ())
       | I.Invokestatic idx -> (
         let mr = methodref idx in
         ensure_initialized vm mr.CP.ref_class;
         let sg = D.method_sig_of_string mr.CP.ref_desc in
         let args = pop_args (List.length sg.D.params) in
         match
           invoke vm ~cls:mr.CP.ref_class ~name:mr.CP.ref_name
             ~desc:mr.CP.ref_desc args
         with
         | Some v -> push v
         | None -> ())
       | I.Invokespecial idx -> (
         (* Non-virtual: constructors, private and super calls resolve
            against the named class. *)
         let mr = methodref idx in
         let sg = D.method_sig_of_string mr.CP.ref_desc in
         let args = pop_args (List.length sg.D.params) in
         let recv = non_null (pop ()) in
         match
           invoke vm ~cls:mr.CP.ref_class ~name:mr.CP.ref_name
             ~desc:mr.CP.ref_desc (recv :: args)
         with
         | Some v -> push v
         | None -> ())
       | I.New idx ->
         let cname = class_at idx in
         ensure_initialized vm cname;
         let field_descs = Classreg.all_instance_fields vm.Vmstate.reg cname in
         push (Value.Obj (Heap.alloc_obj vm.Vmstate.heap ~cls:cname ~field_descs))
       | I.Newarray ->
         let len = Int32.to_int (pop_int ()) in
         if len < 0 then
           Vmstate.throw vm ~cls:Vmstate.c_nase ~message:(string_of_int len)
         else push (Value.Arr_int (Heap.alloc_int_array vm.Vmstate.heap len))
       | I.Anewarray idx ->
         let elem = class_at idx in
         let len = Int32.to_int (pop_int ()) in
         if len < 0 then
           Vmstate.throw vm ~cls:Vmstate.c_nase ~message:(string_of_int len)
         else
           push (Value.Arr_ref (Heap.alloc_ref_array vm.Vmstate.heap ~elem len))
       | I.Arraylength -> (
         match non_null (pop ()) with
         | Value.Arr_int a ->
           push (Value.Int (Int32.of_int (Array.length a.Value.ints)))
         | Value.Arr_ref a ->
           push (Value.Int (Int32.of_int (Array.length a.Value.refs)))
         | v -> Vmstate.fault "arraylength on %s" (Value.to_string v))
       | I.Iaload -> (
         let i = Int32.to_int (pop_int ()) in
         match non_null (pop ()) with
         | Value.Arr_int a ->
           if i < 0 || i >= Array.length a.Value.ints then
             Vmstate.throw vm ~cls:Vmstate.c_aioobe
               ~message:(string_of_int i)
           else push (Value.Int a.Value.ints.(i))
         | v -> Vmstate.fault "iaload on %s" (Value.to_string v))
       | I.Iastore -> (
         let v = pop_int () in
         let i = Int32.to_int (pop_int ()) in
         match non_null (pop ()) with
         | Value.Arr_int a ->
           if i < 0 || i >= Array.length a.Value.ints then
             Vmstate.throw vm ~cls:Vmstate.c_aioobe
               ~message:(string_of_int i)
           else a.Value.ints.(i) <- v
         | arr -> Vmstate.fault "iastore on %s" (Value.to_string arr))
       | I.Aaload -> (
         let i = Int32.to_int (pop_int ()) in
         match non_null (pop ()) with
         | Value.Arr_ref a ->
           if i < 0 || i >= Array.length a.Value.refs then
             Vmstate.throw vm ~cls:Vmstate.c_aioobe
               ~message:(string_of_int i)
           else push a.Value.refs.(i)
         | v -> Vmstate.fault "aaload on %s" (Value.to_string v))
       | I.Aastore -> (
         let v = pop () in
         let i = Int32.to_int (pop_int ()) in
         match non_null (pop ()) with
         | Value.Arr_ref a ->
           if i < 0 || i >= Array.length a.Value.refs then
             Vmstate.throw vm ~cls:Vmstate.c_aioobe
               ~message:(string_of_int i)
           else a.Value.refs.(i) <- as_reference v
         | arr -> Vmstate.fault "aastore on %s" (Value.to_string arr))
       | I.Athrow -> (
         match non_null (pop ()) with
         | Value.Obj _ as v -> raise (Vmstate.Throw v)
         | v -> Vmstate.fault "athrow of %s" (Value.to_string v))
       | I.Checkcast idx -> (
         let target = class_at idx in
         let v = pop () in
         match v with
         | Value.Null -> push Value.Null
         | v ->
           if
             Classreg.is_subclass vm.Vmstate.reg ~sub:(Value.class_of v)
               ~super:target
           then push v
           else
             Vmstate.throw vm ~cls:Vmstate.c_cce
               ~message:(Value.class_of v ^ " -> " ^ target))
       | I.Instanceof idx -> (
         let target = class_at idx in
         match pop () with
         | Value.Null -> push (Value.Int 0l)
         | v ->
           let yes =
             Classreg.is_subclass vm.Vmstate.reg ~sub:(Value.class_of v)
               ~super:target
           in
           push (Value.Int (if yes then 1l else 0l)))
        | I.Monitorenter | I.Monitorexit -> ignore (non_null (pop ())));
        pc := !next
      done
    with Vmstate.Throw exn ->
      (* Dispatch against this frame's exception table; first match
         wins, otherwise unwind to the caller. *)
      let cls_of_exn = Value.class_of exn in
      let handler =
        List.find_opt
          (fun h ->
            !pc >= h.CF.h_start && !pc < h.CF.h_end
            &&
            match h.CF.h_catch with
            | None -> true
            | Some c -> Classreg.is_subclass vm.Vmstate.reg ~sub:cls_of_exn ~super:c)
          code.CF.handlers
      in
      (match handler with
      | Some h ->
        sp := 0;
        push exn;
        pc := h.CF.h_target;
        loop ()
      | None -> raise (Vmstate.Throw exn))
  in
  loop ();
  !result

(* --- Entry points. --- *)

let run_main vm cls_name =
  match
    ensure_initialized vm cls_name;
    invoke vm ~cls:cls_name ~name:"main" ~desc:"()V" []
  with
  | _ -> Ok ()
  | exception Vmstate.Throw v -> Error v

let describe_throwable v =
  match v with
  | Value.Obj o ->
    let msg =
      match Hashtbl.find_opt o.Value.fields "message" with
      | Some (Value.Str s) -> s
      | Some _ | None -> ""
    in
    Printf.sprintf "%s: %s" o.Value.cls msg
  | v -> Value.to_string v
