(* Shared mutable state of one virtual machine instance: heap, class
   registry, native-method table, simulated devices (console,
   properties, file store, thread priority) and cost counters. The
   interpreter and the boot library both hang off this record. *)

type t = {
  heap : Heap.t;
  reg : Classreg.t;
  natives : (string * string * string, native) Hashtbl.t; (* key: (cls, name, desc) *)
  out : Buffer.t;
  props : (string, string) Hashtbl.t;
  files : (string, string) Hashtbl.t;
  mutable thread_priority : int;
  (* Cost counters are plain [int]s: they are bumped on every executed
     bytecode, and a boxed [int64] read-modify-write there costs an
     allocation per instruction. 63 bits cannot overflow at simulated
     instruction rates. The external API ([add_cost], [total_cost],
     [create ?budget]) keeps its [int64] face. *)
  mutable instr_count : int;
  mutable native_cost : int; (* simulated cost units added by natives *)
  mutable budget : int; (* instruction budget; exceeded -> Budget_exhausted *)
  mutable security_hook : (string -> unit) option;
      (* monolithic JDK-style stack-introspection hook; raises to deny *)
  mutable call_depth : int;
  mutable max_call_depth : int;
  mutable invocations : int; (* method invocations, incl. natives *)
}

and native = t -> Value.t list -> Value.t option

(* An in-flight VM exception (a throwable object unwinding frames). *)
exception Throw of Value.t

(* The interpreter hit a state that verified code can never reach
   (operand-kind confusion, missing method after verification, ...).
   On unverified code this is the "VM crash" the verifier prevents. *)
exception Runtime_fault of string

exception Budget_exhausted

let fault fmt = Format.kasprintf (fun s -> raise (Runtime_fault s)) fmt

let create ?budget ?provider () =
  let budget =
    match budget with
    | None -> max_int
    | Some b when Int64.compare b (Int64.of_int max_int) >= 0 -> max_int
    | Some b -> Int64.to_int b
  in
  {
    heap = Heap.create ();
    reg = Classreg.create ?provider ();
    natives = Hashtbl.create 64;
    out = Buffer.create 256;
    props = Hashtbl.create 16;
    files = Hashtbl.create 16;
    thread_priority = 5;
    instr_count = 0;
    native_cost = 0;
    budget;
    security_hook = None;
    call_depth = 0;
    max_call_depth = 0;
    invocations = 0;
  }

(* Tuple keys avoid the "cls.name:desc" string concatenation the old
   scheme paid on every native dispatch (two audit probes per
   instrumented method call). *)
let register_native t ~cls ~name ~desc impl =
  Hashtbl.replace t.natives (cls, name, desc) impl

let find_native t ~cls ~name ~desc = Hashtbl.find_opt t.natives (cls, name, desc)
let add_cost t units = t.native_cost <- t.native_cost + Int64.to_int units
let total_cost t = Int64.of_int (t.instr_count + t.native_cost)

let output t = Buffer.contents t.out

(* Allocate and initialize a throwable of class [cls] carrying
   [message], without running its constructor (boot throwables have a
   uniform shape: a "message" field). *)
let make_throwable t ~cls ~message =
  let fields =
    match Classreg.find_loaded t.reg cls with
    | Some _ -> Classreg.all_instance_fields t.reg cls
    | None -> [ ("message", "Ljava/lang/String;") ]
  in
  let fields =
    if List.mem_assoc "message" fields then fields
    else ("message", "Ljava/lang/String;") :: fields
  in
  let o = Heap.alloc_obj t.heap ~cls ~field_descs:fields in
  Hashtbl.replace o.Value.fields "message" (Value.Str message);
  Value.Obj o

let throw t ~cls ~message = raise (Throw (make_throwable t ~cls ~message))

(* Throwable class names used across the runtime. *)
let c_npe = "java/lang/NullPointerException"
let c_arith = "java/lang/ArithmeticException"
let c_aioobe = "java/lang/ArrayIndexOutOfBoundsException"
let c_cce = "java/lang/ClassCastException"
let c_nase = "java/lang/NegativeArraySizeException"
let c_verify = "java/lang/VerifyError"
let c_ncdfe = "java/lang/NoClassDefFoundError"
let c_security = "java/lang/SecurityException"
let c_stack_overflow = "java/lang/StackOverflowError"
let c_io = "java/io/IOException"
