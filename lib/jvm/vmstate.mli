(** Shared mutable state of one virtual machine instance: heap, class
    registry, native-method table, simulated devices and cost
    counters. *)

type t = {
  heap : Heap.t;
  reg : Classreg.t;
  natives : (string * string * string, native) Hashtbl.t;  (** key: (cls, name, desc) *)
  out : Buffer.t;  (** console output *)
  props : (string, string) Hashtbl.t;  (** system properties *)
  files : (string, string) Hashtbl.t;  (** simulated file store *)
  mutable thread_priority : int;
  mutable instr_count : int;  (** bytecodes executed *)
  mutable native_cost : int;  (** simulated cost units added by natives *)
  mutable budget : int;
  mutable security_hook : (string -> unit) option;
      (** monolithic JDK-style check hook; raises {!Throw} to deny *)
  mutable call_depth : int;
  mutable max_call_depth : int;
  mutable invocations : int;  (** method invocations, incl. natives *)
}

and native = t -> Value.t list -> Value.t option
(** A native method body. For instance methods the receiver is the
    first argument. Returns [None] for void. *)

exception Throw of Value.t
(** An in-flight VM exception (a throwable unwinding frames). *)

exception Runtime_fault of string
(** The interpreter reached a state that verified code can never
    reach. On unverified code this is the crash the verifier
    prevents. *)

exception Budget_exhausted

val fault : ('a, Format.formatter, unit, 'b) format4 -> 'a
val create : ?budget:int64 -> ?provider:Classreg.provider -> unit -> t
val register_native : t -> cls:string -> name:string -> desc:string -> native -> unit
val find_native : t -> cls:string -> name:string -> desc:string -> native option
val add_cost : t -> int64 -> unit

val total_cost : t -> int64
(** Executed bytecodes plus native cost: the client's simulated work. *)

val output : t -> string

val make_throwable : t -> cls:string -> message:string -> Value.t
val throw : t -> cls:string -> message:string -> 'a

(** Throwable class names used across the runtime. *)

val c_npe : string
val c_arith : string
val c_aioobe : string
val c_cce : string
val c_nase : string
val c_verify : string
val c_ncdfe : string
val c_security : string
val c_stack_overflow : string
val c_io : string
