(* The audit trail (§3.3). Events live on a central administration
   host, off-limits to untrusted applications: a security breach may
   stop the creation of new events but cannot tamper with existing
   ones. We make that property checkable with a hash chain — each event
   seals the digest of its predecessor. *)

type event = {
  ev_seq : int;
  ev_time : int64; (* simulated time or client cost when emitted *)
  ev_session : int;
  ev_kind : string; (* e.g. "app.start", "method.enter", "security.deny" *)
  ev_detail : string;
  ev_chain : string; (* hex MD5 over (prev chain ^ this event) *)
}

type t = {
  mutable events : event list; (* newest first *)
  mutable last_chain : string;
  mutable count : int;
  clock : unit -> int64;
      (* supplies ev_time when the caller does not; inject the simulation
         clock here so audit events and telemetry spans agree on
         timestamps *)
}

let create ?(clock = fun () -> 0L) () =
  { events = []; last_chain = "genesis"; count = 0; clock }

(* One seal per audited method entry/exit makes this the hottest
   string-building site in the monitor; a reused buffer assembles the
   identical "prev|seq|time|session|kind|detail" image without the
   printf machinery. *)
let seal_buf = Buffer.create 256

let seal ~prev ~seq ~time ~session ~kind ~detail =
  let b = seal_buf in
  Buffer.clear b;
  Buffer.add_string b prev;
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int seq);
  Buffer.add_char b '|';
  Buffer.add_string b (Int64.to_string time);
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int session);
  Buffer.add_char b '|';
  Buffer.add_string b kind;
  Buffer.add_char b '|';
  Buffer.add_string b detail;
  Dsig.Md5.hex_digest (Buffer.contents b)

let append ?time t ~session ~kind ~detail =
  let time = match time with Some t -> t | None -> t.clock () in
  let ev =
    {
      ev_seq = t.count;
      ev_time = time;
      ev_session = session;
      ev_kind = kind;
      ev_detail = detail;
      ev_chain =
        seal ~prev:t.last_chain ~seq:t.count ~time ~session ~kind ~detail;
    }
  in
  t.events <- ev :: t.events;
  t.last_chain <- ev.ev_chain;
  t.count <- t.count + 1

let events t = List.rev t.events

(* Recompute the chain from the beginning; any in-place tampering
   breaks every subsequent seal. *)
let verify_chain t =
  let rec go prev = function
    | [] -> true
    | ev :: rest ->
      String.equal ev.ev_chain
        (seal ~prev ~seq:ev.ev_seq ~time:ev.ev_time ~session:ev.ev_session
           ~kind:ev.ev_kind ~detail:ev.ev_detail)
      && go ev.ev_chain rest
  in
  go "genesis" (events t)

let count t = t.count

let filter_kind t kind =
  List.filter (fun ev -> String.equal ev.ev_kind kind) (events t)

let pp_event ppf ev =
  Format.fprintf ppf "#%d t=%Ldus s=%d %s %s" ev.ev_seq ev.ev_time
    ev.ev_session ev.ev_kind ev.ev_detail

(* Serialize the log for shipment to (or archival at) the console
   host; import re-verifies every seal, so a log tampered with in
   transit is refused. *)
exception Corrupt_log of string

let to_bytes t =
  let w = Bytecode.Io.Writer.create () in
  Bytecode.Io.Writer.u4 w t.count;
  List.iter
    (fun ev ->
      Bytecode.Io.Writer.u4 w ev.ev_seq;
      Bytecode.Io.Writer.u4 w (Int64.to_int ev.ev_time);
      Bytecode.Io.Writer.u4 w ev.ev_session;
      Bytecode.Io.Writer.str w ev.ev_kind;
      Bytecode.Io.Writer.str w ev.ev_detail;
      Bytecode.Io.Writer.str w ev.ev_chain)
    (events t);
  Bytecode.Io.Writer.contents w

let of_bytes data =
  let r = Bytecode.Io.Reader.of_string data in
  try
    let n = Bytecode.Io.Reader.u4 r in
    let t = create () in
    for _ = 1 to n do
      let seq = Bytecode.Io.Reader.u4 r in
      let time = Int64.of_int (Bytecode.Io.Reader.u4 r) in
      let session = Bytecode.Io.Reader.u4 r in
      let kind = Bytecode.Io.Reader.str r in
      let detail = Bytecode.Io.Reader.str r in
      let chain = Bytecode.Io.Reader.str r in
      append t ~time ~session ~kind ~detail;
      (* the recomputed seal must equal the transported one *)
      match t.events with
      | ev :: _ ->
        if ev.ev_seq <> seq || not (String.equal ev.ev_chain chain) then
          raise (Corrupt_log (Printf.sprintf "seal mismatch at event %d" seq))
      | [] -> assert false
    done;
    if not (Bytecode.Io.Reader.at_end r) then
      raise (Corrupt_log "trailing bytes");
    t
  with Bytecode.Io.Truncated m -> raise (Corrupt_log m)
