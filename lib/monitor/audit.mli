(** The audit trail (§3.3).

    Events live on a central administration host, off-limits to
    untrusted applications. Each event seals the digest of its
    predecessor (hash chain), making in-place tampering detectable. *)

type event = {
  ev_seq : int;
  ev_time : int64;
  ev_session : int;
  ev_kind : string;
  ev_detail : string;
  ev_chain : string;
}

type t

val create : ?clock:(unit -> int64) -> unit -> t
(** [clock] supplies event times when [append] is not given one —
    inject the simulation's virtual clock so audit events and
    telemetry spans agree on timestamps. Defaults to a constant 0. *)

val append : ?time:int64 -> t -> session:int -> kind:string -> detail:string -> unit
val events : t -> event list
val verify_chain : t -> bool
val count : t -> int
val filter_kind : t -> string -> event list
val pp_event : Format.formatter -> event -> unit

exception Corrupt_log of string

val to_bytes : t -> string
(** Serialize for shipment to the console host. *)

val of_bytes : string -> t
(** Import, re-verifying every seal.
    @raise Corrupt_log on tampering or truncation. *)
