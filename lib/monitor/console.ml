(* The remote administration console (§3.3): clients perform a
   handshake establishing credentials and receive a session identifier;
   the console tracks hardware configurations, users, VM instances,
   code versions and noteworthy events, and is the single point from
   which rogue applications are pruned off the network. *)

type client = {
  session : int;
  user : string;
  hardware : string; (* e.g. "x86-200MHz-64MB" *)
  native_format : string; (* target ISA, consumed by the compilation service *)
  vm_version : string;
  mutable apps_started : string list;
  mutable last_seen : int64;
}

type t = {
  audit : Audit.t;
  clock : unit -> int64;
  mutable clients : client list;
  mutable next_session : int;
  banned : (string, string) Hashtbl.t; (* app class -> reason *)
}

(* [clock] supplies event times when callers omit them; inject the
   simulation's virtual clock so console records, audit events and
   telemetry spans all share one timeline. *)
let create ?(clock = fun () -> 0L) () =
  {
    audit = Audit.create ~clock ();
    clock;
    clients = [];
    next_session = 1;
    banned = Hashtbl.create 8;
  }

let audit t = t.audit

(* The handshake protocol: credentials in, session identifier out. *)
let handshake ?time t ~user ~hardware ~native_format ~vm_version =
  let time = match time with Some x -> x | None -> t.clock () in
  let session = t.next_session in
  t.next_session <- session + 1;
  let c =
    {
      session;
      user;
      hardware;
      native_format;
      vm_version;
      apps_started = [];
      last_seen = time;
    }
  in
  t.clients <- c :: t.clients;
  Audit.append t.audit ~time ~session ~kind:"client.handshake"
    ~detail:(Printf.sprintf "user=%s hw=%s isa=%s vm=%s" user hardware
               native_format vm_version);
  c

let record_app_start ?time t client ~app =
  let time = match time with Some x -> x | None -> t.clock () in
  client.apps_started <- app :: client.apps_started;
  client.last_seen <- time;
  Audit.append t.audit ~time ~session:client.session ~kind:"app.start"
    ~detail:app

let record_event ?time t client ~kind ~detail =
  let time = match time with Some x -> x | None -> t.clock () in
  client.last_seen <- time;
  Audit.append t.audit ~time ~session:client.session ~kind ~detail

(* Pruning rogue applications: a banned class is refused by every
   DVM client loader from then on. *)
let ban_app ?time t ~app ~reason =
  let time = match time with Some x -> x | None -> t.clock () in
  Hashtbl.replace t.banned app reason;
  Audit.append t.audit ~time ~session:0 ~kind:"admin.ban" ~detail:app

let is_banned t app = Hashtbl.find_opt t.banned app

let clients t = List.rev t.clients
let find_client t session =
  List.find_opt (fun c -> c.session = session) t.clients

let native_formats t =
  List.sort_uniq String.compare (List.map (fun c -> c.native_format) t.clients)

(* A fleet status report: what an administrator reads at the console
   instead of ssh-ing into ten thousand machines. *)
let pp_report ppf t =
  Format.fprintf ppf "=== administration console ===@\n";
  Format.fprintf ppf "clients: %d  audit events: %d (chain %s)@\n"
    (List.length t.clients) (Audit.count t.audit)
    (if Audit.verify_chain t.audit then "intact" else "BROKEN");
  List.iter
    (fun c ->
      Format.fprintf ppf "  #%d %-10s %-22s isa=%-6s vm=%s apps=[%s]@\n"
        c.session c.user c.hardware c.native_format c.vm_version
        (String.concat ", " (List.rev c.apps_started)))
    (clients t);
  let bans = Hashtbl.fold (fun app why acc -> (app, why) :: acc) t.banned [] in
  if bans <> [] then begin
    Format.fprintf ppf "banned applications:@\n";
    List.iter (fun (app, why) -> Format.fprintf ppf "  %s (%s)@\n" app why) bans
  end
