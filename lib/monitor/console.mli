(** The remote administration console (§3.3).

    Clients perform a handshake establishing credentials and receive a
    session identifier; the console tracks hardware configurations,
    users, VM instances and code versions, stores the audit trail, and
    is the single point from which rogue applications are pruned. *)

type client = {
  session : int;
  user : string;
  hardware : string;
  native_format : string;  (** target ISA, consumed by the compilation service *)
  vm_version : string;
  mutable apps_started : string list;
  mutable last_seen : int64;
}

type t

val create : ?clock:(unit -> int64) -> unit -> t
(** [clock] supplies event times when callers omit them — inject the
    simulation's virtual clock so console records, audit events and
    telemetry spans share one timeline. Defaults to a constant 0. *)

val audit : t -> Audit.t

val handshake :
  ?time:int64 ->
  t ->
  user:string ->
  hardware:string ->
  native_format:string ->
  vm_version:string ->
  client
(** [time] defaults to the injected clock's current value (likewise
    for the other record calls below). *)

val record_app_start : ?time:int64 -> t -> client -> app:string -> unit
val record_event : ?time:int64 -> t -> client -> kind:string -> detail:string -> unit

val ban_app : ?time:int64 -> t -> app:string -> reason:string -> unit
val is_banned : t -> string -> string option

val clients : t -> client list
val find_client : t -> int -> client option

val native_formats : t -> string list
(** Distinct client ISAs — what the network compiler pre-translates
    for. *)

val pp_report : Format.formatter -> t -> unit
(** A fleet status report: clients, sessions, audit health, bans. *)
