(* The static component of the monitoring services: transforms
   applications to invoke the auditing/profiling runtime at the
   appropriate places — entry to and exit from methods and
   constructors, and (for the tracing service) at synchronization
   operations. *)

module CF = Bytecode.Classfile
module CP = Bytecode.Cp
module I = Bytecode.Instr

let method_label cls (m : CF.meth) = cls ^ "." ^ m.CF.m_name ^ m.CF.m_desc

type counters = {
  mutable probes_inserted : int;
  mutable methods_instrumented : int;
}

let fresh_counters () = { probes_inserted = 0; methods_instrumented = 0 }

let call pool ~runtime_class ~name label =
  [
    I.Ldc_str (CP.Builder.string pool label);
    I.Invokestatic
      (CP.Builder.methodref pool ~cls:runtime_class ~name
         ~desc:Profiler.desc_s);
  ]

let sync_sites (code : CF.code) =
  let sites = ref [] in
  Array.iteri
    (fun idx insn ->
      match insn with
      | I.Monitorenter | I.Monitorexit -> sites := idx :: !sites
      | _ -> ())
    code.CF.instrs;
  List.rev !sites

(* Refit deferred until the pool stops growing: the builder is
   append-only and interning, so bounds estimated against the final
   snapshot are identical to per-method snapshots — without paying an
   [Array.sub] of the whole pool for every method. *)
let refit_with pool (m : CF.meth) code =
  let sg = Bytecode.Descriptor.method_sig_of_string m.CF.m_desc in
  let code =
    Rewrite.Patch.refit_bounds pool
      ~params:(Bytecode.Descriptor.param_slots sg)
      ~is_static:(CF.has_flag m.CF.m_flags CF.Static)
      code
  in
  { m with CF.m_code = Some code }

let instrument_class ?(counters = fresh_counters ()) ~runtime_class
    ?(sync_trace = false) (cf : CF.t) : CF.t =
  let pool = CP.Builder.of_pool cf.CF.pool in
  if not sync_trace then begin
    let patched =
      List.map
        (fun m ->
          match m.CF.m_code with
          | None -> Either.Left m
          | Some code ->
            let label = method_label cf.CF.name m in
            let entry = call pool ~runtime_class ~name:"enter" label in
            let before_return = call pool ~runtime_class ~name:"exit" label in
            counters.methods_instrumented <- counters.methods_instrumented + 1;
            let returns = Rewrite.Patch.return_sites code in
            counters.probes_inserted <-
              counters.probes_inserted + 1 + List.length returns;
            let insertions =
              Rewrite.Patch.before 0 entry
              :: List.map
                   (fun at -> Rewrite.Patch.before at before_return)
                   returns
            in
            Either.Right (m, Rewrite.Patch.apply_insertions code insertions))
        cf.CF.methods
    in
    let final_pool = CP.Builder.to_pool pool in
    let methods =
      List.map
        (function
          | Either.Left m -> m
          | Either.Right (m, code) -> refit_with final_pool m code)
        patched
    in
    { cf with CF.methods; pool = final_pool }
  end
  else
  let methods =
    List.map
      (fun m ->
        match m.CF.m_code with
        | None -> m
        | Some code ->
          let label = method_label cf.CF.name m in
          let entry = call pool ~runtime_class ~name:"enter" label in
          let before_return = call pool ~runtime_class ~name:"exit" label in
          counters.methods_instrumented <- counters.methods_instrumented + 1;
          counters.probes_inserted <-
            counters.probes_inserted + 1
            + List.length (Rewrite.Patch.return_sites code);
          let m =
            Rewrite.Patch.instrument_method (CP.Builder.to_pool pool) m ~entry
              ~before_return
          in
          begin
            match m.CF.m_code with
            | None -> m
            | Some code ->
              let sites = sync_sites code in
              if sites = [] then m
              else begin
                counters.probes_inserted <-
                  counters.probes_inserted + List.length sites;
                let block =
                  call pool ~runtime_class:Profiler.tracer_class ~name:"sync"
                    label
                in
                let code =
                  Rewrite.Patch.apply_insertions code
                    (List.map (fun at -> Rewrite.Patch.before at block) sites)
                in
                let sg = Bytecode.Descriptor.method_sig_of_string m.CF.m_desc in
                let code =
                  Rewrite.Patch.refit_bounds (CP.Builder.to_pool pool)
                    ~params:(Bytecode.Descriptor.param_slots sg)
                    ~is_static:(CF.has_flag m.CF.m_flags CF.Static)
                    code
                in
                { m with CF.m_code = Some code }
              end
          end)
      cf.CF.methods
  in
  { cf with CF.methods; pool = CP.Builder.to_pool pool }

(* Basic-block leaders: the entry, every branch target, and every
   instruction following a branch or terminator. *)
let block_leaders (code : CF.code) =
  let n = Array.length code.CF.instrs in
  let leader = Array.make n false in
  if n > 0 then leader.(0) <- true;
  Array.iteri
    (fun idx insn ->
      List.iter
        (fun t -> if t >= 0 && t < n then leader.(t) <- true)
        (I.targets insn);
      if
        (I.targets insn <> [] || I.is_terminator insn) && idx + 1 < n
      then leader.(idx + 1) <- true)
    code.CF.instrs;
  List.iter
    (fun h -> if h.CF.h_target < n then leader.(h.CF.h_target) <- true)
    code.CF.handlers;
  let out = ref [] in
  Array.iteri (fun i is_l -> if is_l then out := i :: !out) leader;
  List.rev !out

(* The instruction-level tracing service of §3.3: counts basic-block
   executions, giving "statistics on client code usage" at a
   granularity method probes cannot. *)
let trace_blocks ?(counters = fresh_counters ()) (cf : CF.t) : CF.t =
  let pool = CP.Builder.of_pool cf.CF.pool in
  let patched =
    List.map
      (fun m ->
        match m.CF.m_code with
        | None -> Either.Left m
        | Some code ->
          let label_of idx =
            Printf.sprintf "%s@%d" (method_label cf.CF.name m) idx
          in
          let leaders = block_leaders code in
          counters.probes_inserted <-
            counters.probes_inserted + List.length leaders;
          counters.methods_instrumented <- counters.methods_instrumented + 1;
          let insertions =
            List.map
              (fun at ->
                Rewrite.Patch.before at
                  [
                    I.Ldc_str (CP.Builder.string pool (label_of at));
                    I.Invokestatic
                      (CP.Builder.methodref pool ~cls:Profiler.tracer_class
                         ~name:"block" ~desc:Profiler.desc_s);
                  ])
              leaders
          in
          Either.Right (m, Rewrite.Patch.apply_insertions code insertions))
      cf.CF.methods
  in
  let final_pool = CP.Builder.to_pool pool in
  let methods =
    List.map
      (function
        | Either.Left m -> m
        | Either.Right (m, code) -> refit_with final_pool m code)
      patched
  in
  { cf with CF.methods; pool = final_pool }

let audit_filter ?counters () =
  Rewrite.Filter.make ~name:"auditor"
    (instrument_class ?counters ~runtime_class:Profiler.auditor_class)

let profile_filter ?counters ?(sync_trace = false) () =
  Rewrite.Filter.make ~name:"profiler"
    (instrument_class ?counters ~runtime_class:Profiler.profiler_class
       ~sync_trace)

let trace_filter ?counters () =
  Rewrite.Filter.make ~name:"tracer" (trace_blocks ?counters)
