(* First-use analysis (§5): from a profile of the first execution, the
   proxy derives which methods an application actually touches — and in
   what order — before it becomes ready for user requests. The
   repartitioning service groups those; everything else is cold. *)

type profile = {
  used : (string, unit) Hashtbl.t; (* method labels used during startup *)
  order : string list; (* first-use order *)
}

let method_key cls name desc = cls ^ "." ^ name ^ desc

let of_order order =
  let used = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace used l ()) order;
  { used; order }

let of_profiler p = of_order (Monitor.Profiler.first_use_order p)

(* A pseudo-profile from static call-graph reachability: methods no
   entry point can reach are cold without ever running the program.
   First-use order falls back to declaration order over the reachable
   set — the proxy refines it once a runtime profile arrives. *)
let of_static classes ~entries =
  let r = Analysis.Reach.analyze classes ~entries in
  let order =
    List.concat_map
      (fun (cf : Bytecode.Classfile.t) ->
        List.filter_map
          (fun (m : Bytecode.Classfile.meth) ->
            if
              Analysis.Reach.is_reachable r ~cls:cf.Bytecode.Classfile.name
                ~meth:m.Bytecode.Classfile.m_name
                ~desc:m.Bytecode.Classfile.m_desc
            then
              Some
                (method_key cf.Bytecode.Classfile.name
                   m.Bytecode.Classfile.m_name m.Bytecode.Classfile.m_desc)
            else None)
          cf.Bytecode.Classfile.methods)
      classes
  in
  of_order order

let is_used t label = Hashtbl.mem t.used label

(* Partition one class's methods into hot (used, or structurally
   unmovable) and cold. Constructors and class initializers are never
   moved: they are tied to object layout and initialization order. *)
let partition t (cf : Bytecode.Classfile.t) =
  let open Bytecode.Classfile in
  List.partition
    (fun m ->
      String.equal m.m_name "<init>"
      || String.equal m.m_name "<clinit>"
      || has_flag m.m_flags Native
      || has_flag m.m_flags Abstract
      || m.m_code = None
      || is_used t (method_key cf.name m.m_name m.m_desc))
    cf.methods

(* Fraction (by encoded code bytes) of a class that is cold. *)
let cold_fraction t (cf : Bytecode.Classfile.t) =
  let open Bytecode.Classfile in
  let size m = match m.m_code with None -> 0 | Some c -> code_bytes c in
  let _, cold = partition t cf in
  let total = List.fold_left (fun a m -> a + size m) 0 cf.methods in
  let cold_bytes = List.fold_left (fun a m -> a + size m) 0 cold in
  if total = 0 then 0.0 else Float.of_int cold_bytes /. Float.of_int total
