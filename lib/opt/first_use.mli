(** First-use analysis (§5).

    From a profile of the first execution, derives which methods an
    application touches — and in what order — before it is ready for
    user requests. The repartitioning service groups those; everything
    else is cold. *)

type profile

val method_key : string -> string -> string -> string
val of_order : string list -> profile
val of_profiler : Monitor.Profiler.t -> profile

(** Pseudo-profile from static call-graph reachability
    ({!Analysis.Reach}): methods no entry point reaches are classified
    cold without a runtime profile. *)
val of_static :
  Bytecode.Classfile.t list ->
  entries:(string * string * string) list ->
  profile
val is_used : profile -> string -> bool

val partition :
  profile ->
  Bytecode.Classfile.t ->
  Bytecode.Classfile.meth list * Bytecode.Classfile.meth list
(** (hot-or-unmovable, cold). Constructors, class initializers,
    natives and abstract methods are never moved. *)

val cold_fraction : profile -> Bytecode.Classfile.t -> float
(** Fraction by encoded code bytes of a class that is cold. *)
