(* Deadline-aware admission control for a proxy node.

   The controller answers one question at dispatch time: given what
   this shard is already committed to, can the new request finish
   inside its deadline? If not, reject it {e now} with a distinct
   verdict instead of letting it queue behind work it will never
   outrun — a late rejection costs the client its whole budget, an
   early one costs a round trip.

   Cost model: the caller supplies an estimate (CPU backlog plus the
   expected service cost for the hit/miss path); the expected miss
   cost is an EWMA over the service times of completed misses, so the
   estimate tracks the actual workload without any configuration.

   The bounded queue ([queue_limit] concurrent admitted requests) is a
   second, deadline-independent shed: by default it is [max_int], so a
   node with no deadlines behaves exactly as before — admission is
   passive bookkeeping until a request actually carries a deadline. *)

type verdict = Admit | Shed_queue | Shed_deadline

type t = {
  queue_limit : int;
  ewma_alpha : float;
  mutable inflight : int; (* admitted, not yet completed *)
  mutable est_cost_us : float; (* EWMA of completed miss service time *)
  mutable admitted : int;
  mutable shed_queue : int;
  mutable shed_deadline : int;
}

let create ?(queue_limit = max_int) ?(initial_cost_us = 50_000)
    ?(ewma_alpha = 0.2) () =
  if queue_limit <= 0 then invalid_arg "Admission.create: queue_limit";
  {
    queue_limit;
    ewma_alpha;
    inflight = 0;
    est_cost_us = Float.of_int initial_cost_us;
    admitted = 0;
    shed_queue = 0;
    shed_deadline = 0;
  }

let estimate_us t = Int64.of_float t.est_cost_us
let inflight t = t.inflight
let admitted t = t.admitted
let shed_queue t = t.shed_queue
let shed_deadline t = t.shed_deadline

let admit t ~now ~deadline ~est_us =
  if t.inflight >= t.queue_limit then begin
    t.shed_queue <- t.shed_queue + 1;
    Telemetry.Global.incr "admission.shed_queue";
    Shed_queue
  end
  else
    match deadline with
    | Some d when Int64.compare (Int64.add now est_us) d > 0 ->
      t.shed_deadline <- t.shed_deadline + 1;
      Telemetry.Global.incr "admission.shed_deadline";
      Shed_deadline
    | Some _ | None ->
      t.inflight <- t.inflight + 1;
      t.admitted <- t.admitted + 1;
      Admit

(* One admitted request finished (successfully or not). [sample] is
   its actual service time when it exercised the miss path — the only
   observations fed to the EWMA, so cheap cache hits cannot drag the
   miss estimate down into wishful thinking. *)
let complete ?sample t =
  t.inflight <- max 0 (t.inflight - 1);
  match sample with
  | None -> ()
  | Some actual_us ->
    t.est_cost_us <-
      ((1.0 -. t.ewma_alpha) *. t.est_cost_us)
      +. (t.ewma_alpha *. Int64.to_float actual_us)
