(** Deadline-aware admission control for a proxy node.

    At dispatch, {!admit} decides whether a request can finish inside
    its deadline given the shard's current commitments: the caller
    passes an estimated completion cost (CPU backlog + expected
    hit/miss service cost) and the absolute deadline, and the
    controller sheds immediately ([Shed_deadline]) rather than letting
    the request queue behind work it cannot outrun. The expected miss
    cost is an EWMA over completed misses' actual service times.

    A bounded concurrent-request queue adds a deadline-independent
    shed ([Shed_queue]); its default limit is [max_int], so admission
    is passive until a request actually carries a deadline. Counters:
    [admission.shed_queue], [admission.shed_deadline]. *)

type verdict = Admit | Shed_queue | Shed_deadline

type t

val create :
  ?queue_limit:int -> ?initial_cost_us:int -> ?ewma_alpha:float -> unit -> t
(** Defaults: unbounded queue, 50 ms initial miss estimate,
    EWMA α = 0.2. *)

val admit : t -> now:int64 -> deadline:int64 option -> est_us:int64 -> verdict
(** [Admit] increments the in-flight count; the caller must balance
    every [Admit] with one {!complete}. *)

val complete : ?sample:int64 -> t -> unit
(** One admitted request finished. Pass [sample] (its actual service
    time) only when it exercised the miss path — those are the
    observations the miss-cost EWMA learns from. *)

val estimate_us : t -> int64
(** Current EWMA miss-cost estimate. *)

val inflight : t -> int
val admitted : t -> int
val shed_queue : t -> int
val shed_deadline : t -> int
