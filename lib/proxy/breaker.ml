(* Per-shard circuit breaker: Closed / Open / Half_open with
   hysteresis, driven entirely by the virtual clock its callers pass
   in (the module holds no engine reference, so it is testable with
   bare timestamps).

   Two trip conditions, because they catch different pathologies:

   - [fail_threshold] consecutive failures — the classic "shard is
     dead" signal;
   - [window_threshold] failures inside a sliding [window_us] — the
     flapping signal. A host that alternates up/down never accumulates
     consecutive failures (every success resets that counter), but its
     failures pile up in the window, so the breaker opens and routing
     stops following each flap. Successes deliberately do NOT clear
     the window.

   An open breaker rejects traffic until its cooldown expires, then
   admits probes in Half_open; [success_threshold] consecutive probe
   successes close it, one probe failure re-opens it with the cooldown
   doubled (capped at [max_cooldown_us]) so a shard that keeps
   relapsing is retried geometrically less often. Closing resets the
   cooldown to its base. *)

type state = Closed | Open | Half_open

type t = {
  fail_threshold : int;
  window_threshold : int;
  window_us : int64;
  base_cooldown_us : int64;
  max_cooldown_us : int64;
  success_threshold : int;
  mutable st : state;
  mutable consecutive : int;
  mutable window : int64 list; (* failure times inside the window, newest first *)
  mutable cooldown_us : int64; (* next trip's cooldown *)
  mutable open_until : int64;
  mutable probe_successes : int;
  mutable probe_inflight : int; (* Half_open grants not yet resolved *)
  mutable trips : int;
  mutable probes : int;
}

let create ?(fail_threshold = 3) ?(window_threshold = 4)
    ?(window_us = 10_000_000L) ?(cooldown_us = 500_000L)
    ?(max_cooldown_us = 4_000_000L) ?(success_threshold = 2) () =
  if fail_threshold <= 0 then invalid_arg "Breaker.create: fail_threshold";
  if window_threshold <= 0 then invalid_arg "Breaker.create: window_threshold";
  if success_threshold <= 0 then invalid_arg "Breaker.create: success_threshold";
  {
    fail_threshold;
    window_threshold;
    window_us;
    base_cooldown_us = cooldown_us;
    max_cooldown_us;
    success_threshold;
    st = Closed;
    consecutive = 0;
    window = [];
    cooldown_us;
    open_until = 0L;
    probe_successes = 0;
    probe_inflight = 0;
    trips = 0;
    probes = 0;
  }

let trips t = t.trips
let probes t = t.probes

let prune t ~now =
  let horizon = Int64.sub now t.window_us in
  t.window <- List.filter (fun at -> Int64.compare at horizon >= 0) t.window

(* Advance Open -> Half_open when the cooldown has expired; every
   observer goes through here so [state] and [allow] agree. *)
let refresh t ~now =
  if t.st = Open && Int64.compare now t.open_until >= 0 then begin
    t.st <- Half_open;
    t.probe_successes <- 0;
    t.probe_inflight <- 0
  end

let state t ~now =
  refresh t ~now;
  t.st

let allow t ~now =
  refresh t ~now;
  match t.st with
  | Closed -> true
  | Open -> false
  | Half_open ->
    (* Cap outstanding probes at [success_threshold]: that many
       successes suffice to close, so admitting more traffic before
       any probe resolves is a thundering herd onto a still-sick
       shard. Further callers are refused until a probe resolves
       (via [record_success] / [record_failure]). *)
    if t.probe_inflight >= t.success_threshold then false
    else begin
      t.probe_inflight <- t.probe_inflight + 1;
      t.probes <- t.probes + 1;
      true
    end

let trip t ~now =
  t.st <- Open;
  t.open_until <- Int64.add now t.cooldown_us;
  t.cooldown_us <-
    (let doubled = Int64.mul t.cooldown_us 2L in
     if Int64.compare doubled t.max_cooldown_us > 0 then t.max_cooldown_us
     else doubled);
  t.probe_successes <- 0;
  t.probe_inflight <- 0;
  t.trips <- t.trips + 1;
  Telemetry.Global.incr "breaker.trips"

let record_failure t ~now =
  refresh t ~now;
  t.consecutive <- t.consecutive + 1;
  prune t ~now;
  t.window <- now :: t.window;
  match t.st with
  | Open -> ()
  | Half_open ->
    (* The probe failed: the shard is still sick. Back off harder.
       ([trip] zeroes [probe_inflight] along with the other probe
       bookkeeping.) *)
    trip t ~now
  | Closed ->
    if
      t.consecutive >= t.fail_threshold
      || List.length t.window >= t.window_threshold
    then trip t ~now

let record_success t ~now =
  refresh t ~now;
  t.consecutive <- 0;
  match t.st with
  | Open -> ()
  | Closed -> ()
  | Half_open ->
    (* Floor at 0: health probes ([Farm.probe]) report outcomes
       without a matching [allow], so there may be nothing in flight
       to release. *)
    if t.probe_inflight > 0 then t.probe_inflight <- t.probe_inflight - 1;
    t.probe_successes <- t.probe_successes + 1;
    if t.probe_successes >= t.success_threshold then begin
      t.st <- Closed;
      t.window <- [];
      t.cooldown_us <- t.base_cooldown_us;
      t.probe_inflight <- 0
    end
