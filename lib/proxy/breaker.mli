(** Per-shard circuit breaker with hysteresis.

    Closed / Open / Half_open, driven by timestamps the caller passes
    (no engine reference — testable with bare numbers). Trips on
    either [fail_threshold] {e consecutive} failures or
    [window_threshold] failures inside a sliding [window_us] — the
    windowed condition is what catches a {e flapping} host, whose
    successes keep resetting the consecutive counter but do not clear
    the window. While Open, {!allow} refuses traffic; after the
    cooldown it admits probes in Half_open, where
    [success_threshold] successes close it and one failure re-opens
    it with the cooldown doubled (capped at [max_cooldown_us]).
    Counter: [breaker.trips]. *)

type state = Closed | Open | Half_open

type t

val create :
  ?fail_threshold:int ->
  ?window_threshold:int ->
  ?window_us:int64 ->
  ?cooldown_us:int64 ->
  ?max_cooldown_us:int64 ->
  ?success_threshold:int ->
  unit ->
  t
(** Defaults: 3 consecutive or 4-in-10s failures trip; 500 ms cooldown
    doubling to a 4 s cap; 2 probe successes close. *)

val allow : t -> now:int64 -> bool
(** May traffic be sent now? [true] in Closed, [false] in Open.
    In Half_open each grant counts as a probe and at most
    [success_threshold] probes may be outstanding at once — further
    callers get [false] until a probe resolves through
    {!record_success} or {!record_failure}, so a thundering herd
    cannot pile onto a still-sick shard. Advances Open→Half_open
    when the cooldown has expired. *)

val record_success : t -> now:int64 -> unit
val record_failure : t -> now:int64 -> unit

val state : t -> now:int64 -> state
(** The state an {!allow} at [now] would see (cooldown expiry
    applied), without counting a probe. *)

val trips : t -> int
val probes : t -> int
(** Half_open grants handed out. *)
