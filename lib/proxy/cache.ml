(* The proxy's class cache (§3): rewritten classes are cached so code
   shared between clients is transformed once. LRU over a byte budget,
   kept as an intrusive doubly-linked recency list over the hash
   table's entries: find, store and evict are all O(1), so eviction
   storms stay linear instead of the O(n²) a scan-per-eviction
   degrades to. *)

type entry = {
  e_key : string;
  e_bytes : string;
  e_version : int; (* policy version the bytes were rewritten under; 0 = unversioned *)
  mutable e_prev : entry option; (* toward the MRU end *)
  mutable e_next : entry option; (* toward the LRU end *)
}

type t = {
  capacity : int; (* bytes; 0 disables caching *)
  tbl : (string, entry) Hashtbl.t;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable used : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int; (* capacity-pressure evictions only *)
  mutable restart_drops : int; (* warm state lost to simulated restarts *)
  mutable oversize_skips : int; (* stores skipped: entry larger than capacity *)
  mutable stale_drops : int; (* versioned lookups that evicted a stale entry *)
  mutable invalidations : int; (* explicit removes via [remove] *)
}

let create ~capacity =
  {
    capacity;
    tbl = Hashtbl.create 256;
    mru = None;
    lru = None;
    used = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    restart_drops = 0;
    oversize_skips = 0;
    stale_drops = 0;
    invalidations = 0;
  }

let enabled t = t.capacity > 0

let unlink t e =
  (match e.e_prev with Some p -> p.e_next <- e.e_next | None -> t.mru <- e.e_next);
  (match e.e_next with Some n -> n.e_prev <- e.e_prev | None -> t.lru <- e.e_prev);
  e.e_prev <- None;
  e.e_next <- None

let push_mru t e =
  e.e_prev <- None;
  e.e_next <- t.mru;
  (match t.mru with Some m -> m.e_prev <- Some e | None -> t.lru <- Some e);
  t.mru <- Some e

(* Refresh the occupancy gauges wherever the population changes —
   stores, evictions and clears alike. *)
let publish_gauges t =
  if Telemetry.Global.on () then begin
    Telemetry.Global.set_gauge "cache.bytes_used" (Int64.of_int t.used);
    Telemetry.Global.set_gauge "cache.entries"
      (Int64.of_int (Hashtbl.length t.tbl))
  end

let detach t e =
  unlink t e;
  Hashtbl.remove t.tbl e.e_key;
  t.used <- t.used - String.length e.e_bytes

(* Version 0 — on either side — means "unversioned, matches anything",
   so the pre-versioning call sites keep their exact behaviour. A real
   mismatch is worse than a miss: the bytes were rewritten under a
   revoked policy, so the entry is dropped on sight rather than left
   to be served by a later unversioned lookup. *)
let version_ok ~version e =
  version = 0 || e.e_version = 0 || e.e_version = version

let find_raw t ~version key =
  match Hashtbl.find_opt t.tbl key with
  | Some e when version_ok ~version e ->
    unlink t e;
    push_mru t e;
    t.hits <- t.hits + 1;
    Some e.e_bytes
  | Some e ->
    detach t e;
    t.stale_drops <- t.stale_drops + 1;
    t.misses <- t.misses + 1;
    if Telemetry.Global.on () then Telemetry.Global.incr "cache.stale_drops";
    publish_gauges t;
    None
  | None ->
    t.misses <- t.misses + 1;
    None

let find ?(version = 0) t key =
  if not (enabled t) then begin
    (* A disabled cache still reports the miss: every lookup that would
       have gone to a real cache is one, and counting it keeps hit-ratio
       lines comparable between cache-off and cache-on bench runs. *)
    t.misses <- t.misses + 1;
    if Telemetry.Global.on () then Telemetry.Global.incr "cache.misses";
    None
  end
  else if not (Telemetry.Global.on ()) then find_raw t ~version key
  else
    Telemetry.Global.with_span ~cat:"cache" ~args:[ ("class", key) ]
      ~observe_hist:"cache.find_us" "cache.find" (fun () ->
        match find_raw t ~version key with
        | Some _ as hit ->
          Telemetry.Global.incr "cache.hits";
          hit
        | None ->
          Telemetry.Global.incr "cache.misses";
          None)

(* Detach the LRU entry from the table, without deciding what the
   removal *was* — a capacity eviction and a restart drop are counted
   by their callers. Callers publish gauges when they are done, not
   once per removed entry. *)
let remove_lru t =
  match t.lru with
  | None -> false
  | Some e ->
    detach t e;
    true

(* Explicit invalidation — the control plane's path for revoking one
   class. Distinct from eviction (capacity) and restart drops (crash):
   counted in [invalidations] / [cache.invalidations]. *)
let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> false
  | Some e ->
    detach t e;
    t.invalidations <- t.invalidations + 1;
    if Telemetry.Global.on () then Telemetry.Global.incr "cache.invalidations";
    publish_gauges t;
    true

let evict_one t =
  if remove_lru t then begin
    t.evictions <- t.evictions + 1;
    Telemetry.Global.incr "cache.evictions"
  end

let store ?(version = 0) t key bytes =
  if not (enabled t) then ()
  else if String.length bytes > t.capacity then begin
    (* An entry bigger than the whole budget can never be cached;
       count the skip so bench output can tell "cache too small for
       this class" apart from ordinary churn. *)
    t.oversize_skips <- t.oversize_skips + 1;
    if Telemetry.Global.on () then Telemetry.Global.incr "cache.oversize_skips"
  end
  else begin
    (match Hashtbl.find_opt t.tbl key with
    | Some old ->
      unlink t old;
      Hashtbl.remove t.tbl key;
      t.used <- t.used - String.length old.e_bytes
    | None -> ());
    while t.used + String.length bytes > t.capacity && Hashtbl.length t.tbl > 0 do
      evict_one t
    done;
    let e =
      { e_key = key; e_bytes = bytes; e_version = version;
        e_prev = None; e_next = None }
    in
    Hashtbl.replace t.tbl key e;
    push_mru t e;
    t.used <- t.used + String.length bytes;
    if Telemetry.Global.on () then Telemetry.Global.incr "cache.stores";
    publish_gauges t
  end

(* Peek without touching recency order or hit/miss stats — what
   admission control uses to estimate service cost without polluting
   the numbers the real lookup will record. *)
let mem ?(version = 0) t key =
  enabled t
  &&
  match Hashtbl.find_opt t.tbl key with
  | Some e -> version_ok ~version e
  | None -> false

let size t = Hashtbl.length t.tbl

let clear t =
  Hashtbl.reset t.tbl;
  t.mru <- None;
  t.lru <- None;
  t.used <- 0;
  publish_gauges t

(* Drop the coldest [fraction] of entries — what survives a host
   restart that retains only part of its warm state. A restart loss is
   not capacity pressure: it is counted in [restart_drops] (and the
   [cache.restart_drops] counter), never in [evictions], and the
   occupancy gauges are published once at the end rather than once per
   dropped entry. *)
let drop_fraction t ~fraction =
  let total = Hashtbl.length t.tbl in
  let n =
    if fraction >= 1.0 then total
    else int_of_float (ceil (fraction *. Float.of_int total))
  in
  let dropped = ref 0 in
  for _ = 1 to n do
    if remove_lru t then incr dropped
  done;
  if !dropped > 0 then begin
    t.restart_drops <- t.restart_drops + !dropped;
    if Telemetry.Global.on () then
      Telemetry.Global.add "cache.restart_drops" (Int64.of_int !dropped)
  end;
  publish_gauges t
