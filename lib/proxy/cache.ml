(* The proxy's class cache (§3): rewritten classes are cached so code
   shared between clients is transformed once. LRU over a byte
   budget. *)

type entry = { bytes : string; mutable last_used : int }

type t = {
  capacity : int; (* bytes; 0 disables caching *)
  tbl : (string, entry) Hashtbl.t;
  mutable used : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  {
    capacity;
    tbl = Hashtbl.create 256;
    used = 0;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let enabled t = t.capacity > 0

let find_raw t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    t.clock <- t.clock + 1;
    e.last_used <- t.clock;
    t.hits <- t.hits + 1;
    Some e.bytes
  | None ->
    t.misses <- t.misses + 1;
    None

let find t key =
  if not (enabled t) then None
  else if not (Telemetry.Global.on ()) then find_raw t key
  else
    Telemetry.Global.with_span ~cat:"cache" ~args:[ ("class", key) ]
      ~observe_hist:"cache.find_us" "cache.find" (fun () ->
        match find_raw t key with
        | Some _ as hit ->
          Telemetry.Global.incr "cache.hits";
          hit
        | None ->
          Telemetry.Global.incr "cache.misses";
          None)

let evict_one t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best.last_used <= e.last_used -> acc
        | _ -> Some (k, e))
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some (k, e) ->
    Hashtbl.remove t.tbl k;
    t.used <- t.used - String.length e.bytes;
    t.evictions <- t.evictions + 1;
    Telemetry.Global.incr "cache.evictions"

let store t key bytes =
  if enabled t && String.length bytes <= t.capacity then begin
    (match Hashtbl.find_opt t.tbl key with
    | Some old ->
      Hashtbl.remove t.tbl key;
      t.used <- t.used - String.length old.bytes
    | None -> ());
    while t.used + String.length bytes > t.capacity && Hashtbl.length t.tbl > 0 do
      evict_one t
    done;
    t.clock <- t.clock + 1;
    Hashtbl.replace t.tbl key { bytes; last_used = t.clock };
    t.used <- t.used + String.length bytes;
    if Telemetry.Global.on () then begin
      Telemetry.Global.incr "cache.stores";
      Telemetry.Global.set_gauge "cache.bytes_used" (Int64.of_int t.used);
      Telemetry.Global.set_gauge "cache.entries"
        (Int64.of_int (Hashtbl.length t.tbl))
    end
  end

let size t = Hashtbl.length t.tbl
