(* The proxy's class cache (§3): rewritten classes are cached so code
   shared between clients is transformed once. LRU over a byte budget,
   kept as an intrusive doubly-linked recency list over the hash
   table's entries: find, store and evict are all O(1), so eviction
   storms stay linear instead of the O(n²) a scan-per-eviction
   degrades to. *)

type entry = {
  e_key : string;
  e_bytes : string;
  mutable e_prev : entry option; (* toward the MRU end *)
  mutable e_next : entry option; (* toward the LRU end *)
}

type t = {
  capacity : int; (* bytes; 0 disables caching *)
  tbl : (string, entry) Hashtbl.t;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable used : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  {
    capacity;
    tbl = Hashtbl.create 256;
    mru = None;
    lru = None;
    used = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let enabled t = t.capacity > 0

let unlink t e =
  (match e.e_prev with Some p -> p.e_next <- e.e_next | None -> t.mru <- e.e_next);
  (match e.e_next with Some n -> n.e_prev <- e.e_prev | None -> t.lru <- e.e_prev);
  e.e_prev <- None;
  e.e_next <- None

let push_mru t e =
  e.e_prev <- None;
  e.e_next <- t.mru;
  (match t.mru with Some m -> m.e_prev <- Some e | None -> t.lru <- Some e);
  t.mru <- Some e

(* Refresh the occupancy gauges wherever the population changes —
   stores, evictions and clears alike. *)
let publish_gauges t =
  if Telemetry.Global.on () then begin
    Telemetry.Global.set_gauge "cache.bytes_used" (Int64.of_int t.used);
    Telemetry.Global.set_gauge "cache.entries"
      (Int64.of_int (Hashtbl.length t.tbl))
  end

let find_raw t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    unlink t e;
    push_mru t e;
    t.hits <- t.hits + 1;
    Some e.e_bytes
  | None ->
    t.misses <- t.misses + 1;
    None

let find t key =
  if not (enabled t) then None
  else if not (Telemetry.Global.on ()) then find_raw t key
  else
    Telemetry.Global.with_span ~cat:"cache" ~args:[ ("class", key) ]
      ~observe_hist:"cache.find_us" "cache.find" (fun () ->
        match find_raw t key with
        | Some _ as hit ->
          Telemetry.Global.incr "cache.hits";
          hit
        | None ->
          Telemetry.Global.incr "cache.misses";
          None)

let evict_one t =
  match t.lru with
  | None -> ()
  | Some e ->
    unlink t e;
    Hashtbl.remove t.tbl e.e_key;
    t.used <- t.used - String.length e.e_bytes;
    t.evictions <- t.evictions + 1;
    Telemetry.Global.incr "cache.evictions";
    publish_gauges t

let store t key bytes =
  if enabled t && String.length bytes <= t.capacity then begin
    (match Hashtbl.find_opt t.tbl key with
    | Some old ->
      unlink t old;
      Hashtbl.remove t.tbl key;
      t.used <- t.used - String.length old.e_bytes
    | None -> ());
    while t.used + String.length bytes > t.capacity && Hashtbl.length t.tbl > 0 do
      evict_one t
    done;
    let e = { e_key = key; e_bytes = bytes; e_prev = None; e_next = None } in
    Hashtbl.replace t.tbl key e;
    push_mru t e;
    t.used <- t.used + String.length bytes;
    if Telemetry.Global.on () then Telemetry.Global.incr "cache.stores";
    publish_gauges t
  end

let size t = Hashtbl.length t.tbl

let clear t =
  Hashtbl.reset t.tbl;
  t.mru <- None;
  t.lru <- None;
  t.used <- 0;
  publish_gauges t

(* Drop the coldest [fraction] of entries — what survives a host
   restart that retains only part of its warm state. *)
let drop_fraction t ~fraction =
  if fraction >= 1.0 then clear t
  else begin
    let n =
      int_of_float (ceil (fraction *. Float.of_int (Hashtbl.length t.tbl)))
    in
    for _ = 1 to n do
      evict_one t
    done
  end
