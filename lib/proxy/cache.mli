(** The proxy's class cache (§3): rewritten classes are cached so code
    shared between clients is transformed once. LRU over a byte
    budget, kept as an intrusive recency list so find/store/evict are
    all O(1); capacity 0 disables caching. *)

type entry

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable used : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

val create : capacity:int -> t
val enabled : t -> bool
val find : t -> string -> string option
val store : t -> string -> string -> unit
val size : t -> int

val clear : t -> unit
(** Drop everything — a cold restart. *)

val drop_fraction : t -> fraction:float -> unit
(** Evict the coldest [fraction] of entries (1.0 = {!clear}), as after
    a crash that lost part of the warm state. *)
