(** The proxy's class cache (§3): rewritten classes are cached so code
    shared between clients is transformed once. LRU over a byte
    budget, kept as an intrusive recency list so find/store/evict are
    all O(1); capacity 0 disables caching. *)

type entry

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable used : int;
  mutable hits : int;
  mutable misses : int;  (** counted on disabled caches too, so hit-ratio
      lines stay comparable between cache-off and cache-on runs *)
  mutable evictions : int;  (** capacity-pressure evictions only *)
  mutable restart_drops : int;  (** entries lost to simulated restarts
      ({!drop_fraction}) — never conflated with [evictions] *)
  mutable oversize_skips : int;  (** stores skipped because the entry
      exceeds the whole capacity *)
  mutable stale_drops : int;  (** versioned lookups that hit an entry
      rewritten under another policy version — dropped on sight and
      counted as misses ([cache.stale_drops]) *)
  mutable invalidations : int;  (** explicit {!remove}s, the control
      plane's revocation path ([cache.invalidations]) *)
}

val create : capacity:int -> t
val enabled : t -> bool

val find : ?version:int -> t -> string -> string option
(** [version] is the policy version the caller will serve under;
    0 (the default) means unversioned and matches any entry, as does
    an entry stored unversioned. A genuine mismatch is treated as a
    miss {e and} drops the stale entry, so bytes rewritten under a
    revoked policy cannot be resurrected by a later lookup. *)

val store : ?version:int -> t -> string -> string -> unit
(** Stamp the entry with the policy version it was rewritten under
    (0 = unversioned). *)

val remove : t -> string -> bool
(** Explicit invalidation of one key; [true] if it was present.
    Counted in [invalidations], never in [evictions]. *)

val mem : ?version:int -> t -> string -> bool
(** Peek: present in an enabled cache (under a compatible version)?
    Touches neither the recency order nor the hit/miss stats —
    admission control's cost estimate must not perturb what the real
    lookup then records. *)

val size : t -> int

val clear : t -> unit
(** Drop everything — a cold restart. *)

val drop_fraction : t -> fraction:float -> unit
(** Drop the coldest [fraction] of entries (1.0 = everything), as after
    a crash that lost part of the warm state. Counted in
    [restart_drops] / [cache.restart_drops], not [evictions]; occupancy
    gauges are republished once, at the end. *)
