(* The farm's control plane: a replicated log with term-numbered
   leader election, leadership + serving leases, and snapshot
   compaction, propagating security-policy versions and rewrite-cache
   invalidations to every shard over simnet links.

   Every shard is a full replica. Members exchange messages over a
   hub: a message from [src] to [dst] crosses [src]'s uplink
   ([m_from]) and then [dst]'s downlink ([m_to]), so partitioning one
   member's pair isolates it from every peer while the others keep
   talking — the same cut the chaos schedules have always made.

   Election. A follower that has not heard a leader for its election
   timeout becomes a candidate: it bumps its term, votes for itself
   and solicits votes. A voter grants at most one vote per term and
   only to a candidate whose log is at least as complete as its own
   (last term, then last index) — so a majority winner provably holds
   every committed entry. Timeouts are staggered by member id (one
   heartbeat interval apart), which keeps elections deterministic and
   collision-free under the discrete clock.

   Leases. Two kinds, both [lease_us] long:

   - The *leadership* lease: a leader holds it while a majority of
     members (itself included) acked a heartbeat it sent within the
     last [lease_us]. A vote grant carries the voter's *promise
     horizon* — the time until which its past acks may still be
     extending an old leader's lease — and a new leader's lease is
     not valid before the maximum promise its electing majority
     reported. Any two majorities intersect, so two leaders can never
     both hold valid leases: the election-safety invariant.

   - The *serving* lease per member: renewed only by heartbeats from
     a leader that believes its leadership lease is live, and only
     once the member has applied everything that leader holds. A
     member may serve clients only on a live serving lease
     ([member_ok]); a partitioned or restarted member fences itself.

   Commit. An entry proposed at [p] by a leased leader commits at

     max( majority of members acked it,
          min( all members acked it,
               p + lease_us + commit_margin_us ) )

   The majority arm makes the entry durable across leader changes
   (the election restriction hands it to every future leader); the
   second arm is the fence bound: by [p + lease + margin] every
   member has either applied the entry or lost the serving lease —
   provided the proposing leader still holds its leadership lease at
   the deadline, which is exactly what rules out a rival leader
   having renewed somebody meanwhile. [commit_margin_us] covers
   renewals already in flight at the proposal.

   Hand-off. A new leader re-drives the uncommitted suffix of its log
   under its own term — re-stamped, re-timed, fresh fence backstops —
   and followers adopt the new stamps in place (same content) or,
   when a dead leader left them a divergent suffix, truncate from the
   first conflicting index up, keeping the agreed prefix (committed
   entries included, as Raft does).

   Compaction. Once the committed, locally-applied prefix grows past
   [snapshot_threshold] live entries, a replica folds it into a
   snapshot — the highest committed version plus the deduplicated
   pending-invalidation set — and truncates the log. A heartbeat to a
   member whose ack position lies under the leader's fold ships the
   snapshot and the live suffix instead of replaying history.

   Restart. The durable stub a real deployment would fsync — current
   term, vote, promise horizon, snapshot, log — survives
   [mark_restarted]; everything serving-related (version, caches,
   leases) is volatile and re-derived by replaying the stub into the
   fresh node. The member stays fenced until a leader confirms it is
   not missing a suffix. *)

type entry = Set_version of int | Invalidate of string

let entry_to_string = function
  | Set_version v -> Printf.sprintf "set-version %d" v
  | Invalidate key -> Printf.sprintf "invalidate %s" key

type role = Follower | Candidate | Leader

type logrec = {
  l_index : int; (* 1-based, contiguous above the snapshot *)
  l_id : int; (* mint id: unique per proposal, kept across re-drives *)
  mutable l_term : int;
  l_entry : entry;
  mutable l_proposed_at : int64;
  mutable l_fence_ok : bool; (* fence backstop passed under the proposer *)
}

type snapshot = {
  s_index : int; (* last entry folded in *)
  s_term : int; (* its term *)
  s_version : int; (* highest folded Set_version *)
  s_pending : string list; (* folded invalidation keys, oldest first *)
}

type member = {
  m_id : int;
  m_name : string;
  m_host : Simnet.Host.t;
  m_to : Simnet.Link.t; (* fabric -> member (downlink) *)
  m_from : Simnet.Link.t; (* member -> fabric (uplink) *)
  m_apply : entry -> unit;
  (* durable stub: survives mark_restarted *)
  mutable m_term : int;
  mutable m_voted_for : int option;
  mutable m_log : logrec list; (* newest first; indices > m_snap.s_index *)
  mutable m_snap : snapshot;
  mutable m_promise_until : int64; (* horizon of leases my acks back *)
  (* volatile replica state *)
  mutable m_role : role;
  mutable m_applied : int;
  mutable m_commit_index : int;
  mutable m_version : int; (* highest Set_version applied *)
  m_invals : (string, unit) Hashtbl.t; (* applied invalidations *)
  mutable m_lease_until : int64; (* serving lease *)
  mutable m_serving : bool; (* edge detector for grant/expire events *)
  mutable m_needs_resync : bool; (* restarted; fenced until confirmed *)
  mutable m_resyncs : int;
  mutable m_snapshot_installs : int;
  mutable m_compactions : int;
  mutable m_heard_at : int64; (* last valid leader/vote contact *)
  (* candidate state *)
  mutable m_votes_got : int list;
  mutable m_lease_floor : int64; (* max promise reported by my voters *)
  (* leader state *)
  mutable m_last_hb_sent : int64;
  mutable m_ldr_lease_until : int64;
  mutable m_match : int array; (* per-peer applied position, from acks *)
  mutable m_acked_send : int64 array; (* per-peer newest echoed send time *)
}

type append = {
  a_term : int;
  a_leader : int;
  a_sent : int64;
  a_leased : bool; (* sender believes its leadership lease is live *)
  a_commit : int;
  a_last : int; (* leader's last log index *)
  a_prev_index : int; (* entry just below the shipped batch *)
  a_prev_term : int;
  a_snap : snapshot option;
  a_entries : logrec list; (* oldest first *)
}

type msg =
  | Request_vote of {
      v_term : int;
      v_cand : int;
      v_last_index : int;
      v_last_term : int;
    }
  | Vote_reply of {
      r_term : int;
      r_from : int;
      r_granted : bool;
      r_promise : int64;
    }
  | Append of append
  | Append_reply of {
      p_term : int;
      p_from : int;
      p_applied : int;
      p_echo : int64; (* send time of the heartbeat this acks *)
    }

type t = {
  engine : Simnet.Engine.t;
  lease_us : int64;
  hb_interval_us : int64;
  commit_margin_us : int64;
  election_timeout_us : int64;
  stagger_us : int64;
  snapshot_threshold : int;
  hb_bytes : int; (* wire size of an empty heartbeat / ack / vote *)
  entry_bytes : int; (* wire size per carried log entry *)
  base_version : int;
  mutable members : member array;
  mutable next_index : int; (* highest log index ever minted *)
  mutable next_id : int; (* last proposal id minted; never reused *)
  mutable version : int; (* latest *proposed* version *)
  mutable committed_version : int; (* highest committed Set_version *)
  (* Keyed by proposal id, NOT log index: a dead leader's uncommitted
     indices can be reused under a later term, and an index-keyed
     table would let a caller's stale handle flip committed for a
     different entry that later lands at the same index. *)
  commits_at : (int, int64) Hashtbl.t; (* proposal id -> commit time *)
  mutable running : bool;
  mutable until : int64;
  mutable trace_ctx : Telemetry.Trace.ctx;
  mutable trace_span : Telemetry.Trace.span option;
  mutable heartbeats : int;
  mutable acks : int;
  mutable proposals : int;
  mutable commits : int;
  mutable elections : int; (* elections won *)
  mutable stepdowns : int;
  mutable redrives : int;
  mutable compactions : int;
  mutable snapshot_installs : int;
  mutable leader_changes : int;
  mutable last_leader : int option;
}

let create engine ?(lease_us = 1_000_000L) ?(hb_interval_us = 250_000L)
    ?(commit_margin_us = 100_000L) ?(election_timeout_us = 600_000L)
    ?stagger_us ?(snapshot_threshold = 8) ?(hb_bytes = 64)
    ?(entry_bytes = 96) ?(initial_version = 1) () =
  {
    engine;
    lease_us;
    hb_interval_us;
    commit_margin_us;
    election_timeout_us;
    stagger_us = Option.value ~default:hb_interval_us stagger_us;
    snapshot_threshold;
    hb_bytes;
    entry_bytes;
    base_version = initial_version;
    members = [||];
    next_index = 0;
    next_id = 0;
    version = initial_version;
    committed_version = initial_version;
    commits_at = Hashtbl.create 64;
    running = false;
    until = 0L;
    trace_ctx = Telemetry.Trace.none;
    trace_span = None;
    heartbeats = 0;
    acks = 0;
    proposals = 0;
    commits = 0;
    elections = 0;
    stepdowns = 0;
    redrives = 0;
    compactions = 0;
    snapshot_installs = 0;
    leader_changes = 0;
    last_leader = None;
  }

let member t id =
  if id < 0 || id >= Array.length t.members then
    invalid_arg "Control.member: unknown id";
  t.members.(id)

let empty_snapshot version = { s_index = 0; s_term = 0; s_version = version; s_pending = [] }

let add_member t ~name ~host ~link_to ~link_from ~apply =
  let id = Array.length t.members in
  let m =
    {
      m_id = id;
      m_name = name;
      m_host = host;
      m_to = link_to;
      m_from = link_from;
      m_apply = apply;
      m_term = 0;
      m_voted_for = None;
      m_log = [];
      m_snap = empty_snapshot t.base_version;
      m_promise_until = 0L;
      m_role = Follower;
      m_applied = 0;
      m_commit_index = 0;
      m_version = t.base_version;
      m_invals = Hashtbl.create 16;
      (* A fresh member starts with a live lease: the log is empty, so
         there is nothing it could be missing. *)
      m_lease_until = Int64.add (Simnet.Engine.now t.engine) t.lease_us;
      m_serving = true;
      m_needs_resync = false;
      m_resyncs = 0;
      m_snapshot_installs = 0;
      m_compactions = 0;
      m_heard_at = Simnet.Engine.now t.engine;
      m_votes_got = [];
      m_lease_floor = 0L;
      m_last_hb_sent = 0L;
      m_ldr_lease_until = 0L;
      m_match = [||];
      m_acked_send = [||];
    }
  in
  t.members <- Array.append t.members [| m |];
  id

(* --- small helpers --- *)

let majority t = (Array.length t.members / 2) + 1

let last_index m =
  match m.m_log with r :: _ -> r.l_index | [] -> m.m_snap.s_index

let last_term m =
  match m.m_log with r :: _ -> r.l_term | [] -> m.m_snap.s_term

let timeout_of t m =
  Int64.add t.election_timeout_us (Int64.mul (Int64.of_int m.m_id) t.stagger_us)

let leased _t m ~now =
  m.m_role = Leader
  && Simnet.Host.is_up m.m_host
  && Int64.compare now m.m_lease_floor >= 0
  && Int64.compare now m.m_ldr_lease_until < 0

let leased_leader t =
  let now = Simnet.Engine.now t.engine in
  Array.fold_left
    (fun acc m -> if leased t m ~now then Some m else acc)
    None t.members

(* Reason events: each kind is mirrored 1:1 by a same-named telemetry
   counter; the line lands on the trace (and through it the flight
   recorder) when the control root span is live, directly on the
   flight recorder otherwise. *)
let note t m kind detail =
  Telemetry.Global.incr kind;
  if Telemetry.Trace.live t.trace_ctx then
    Telemetry.Trace.event t.trace_ctx ~node:m.m_name ~kind detail
  else
    Telemetry.Flight.note
      ~at:(Simnet.Engine.now t.engine)
      ~node:m.m_name
      (Printf.sprintf "%s %s" kind detail)

let set_term t m term =
  if term > m.m_term then begin
    m.m_term <- term;
    m.m_voted_for <- None;
    note t m "control.term_bump" (Printf.sprintf "term %d" term)
  end

(* Role-only demotion (the term, if newer, is adopted separately). *)
let demote t m =
  if m.m_role <> Follower then begin
    m.m_role <- Follower;
    t.stepdowns <- t.stepdowns + 1;
    note t m "control.stepdown"
      (Printf.sprintf "deposed at term %d" m.m_term)
  end

let step_down t m ~now ~term =
  set_term t m term;
  if m.m_role <> Follower then begin
    demote t m;
    (* give the new regime one timeout before campaigning again *)
    m.m_heard_at <- now
  end

let renew_serving t m ~now =
  m.m_lease_until <- Int64.add now t.lease_us;
  if not m.m_serving then begin
    m.m_serving <- true;
    note t m "control.lease_grant"
      (Printf.sprintf "serving lease until %Ld" m.m_lease_until)
  end

let apply_entry t m e =
  m.m_apply e;
  (match e with
  | Set_version v -> if v > m.m_version then m.m_version <- v
  | Invalidate k -> Hashtbl.replace m.m_invals k ());
  ignore t;
  Telemetry.Global.incr "control.applies"

(* Replay a snapshot's folded effects into the member's serving
   state: the version bound, then every pending invalidation. All
   effects are idempotent joins, so replaying over live state is
   harmless. *)
let replay_fold t m (s : snapshot) =
  if s.s_index > 0 then begin
    apply_entry t m (Set_version s.s_version);
    List.iter (fun k -> apply_entry t m (Invalidate k)) s.s_pending
  end

let dedup_keep_first keys =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun k ->
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    keys

(* Fold the committed, locally-applied prefix into the snapshot once
   it holds [snapshot_threshold] live entries. Both leaders and
   followers compact; the fold only ever covers committed entries, so
   two folds of the same prefix are identical on every replica. *)
let maybe_compact t m =
  let bound = min m.m_commit_index m.m_applied in
  if bound > m.m_snap.s_index then begin
    let folded =
      List.rev (List.filter (fun r -> r.l_index <= bound) m.m_log)
    in
    if List.length folded >= t.snapshot_threshold then begin
      let s_term =
        List.fold_left (fun _ r -> r.l_term) m.m_snap.s_term folded
      in
      let s_version =
        List.fold_left
          (fun v r ->
            match r.l_entry with Set_version x -> max v x | _ -> v)
          m.m_snap.s_version folded
      in
      let keys =
        List.filter_map
          (fun r ->
            match r.l_entry with Invalidate k -> Some k | _ -> None)
          folded
      in
      let folded_n = List.length folded in
      m.m_snap <-
        {
          s_index = bound;
          s_term;
          s_version;
          s_pending = dedup_keep_first (m.m_snap.s_pending @ keys);
        };
      m.m_log <- List.filter (fun r -> r.l_index > bound) m.m_log;
      m.m_compactions <- m.m_compactions + 1;
      t.compactions <- t.compactions + 1;
      note t m "control.snapshot_compact"
        (Printf.sprintf "folded %d entries through %d at v%d" folded_n
           bound m.m_snap.s_version)
    end
  end

(* Rebuild the member's digest bookkeeping (version bound +
   invalidation set) from its snapshot fold and retained log. The
   external effects delivered through [apply] are conservative joins
   and are never undone — but the *digest* must be strictly
   log-derived, or effects applied for a dead leader's lost entries
   would make snapshot catch-up observably diverge from full-log
   replay. *)
let refresh_state p =
  p.m_version <- p.m_snap.s_version;
  Hashtbl.reset p.m_invals;
  List.iter (fun k -> Hashtbl.replace p.m_invals k ()) p.m_snap.s_pending;
  List.iter
    (fun r ->
      match r.l_entry with
      | Set_version v -> if v > p.m_version then p.m_version <- v
      | Invalidate k -> Hashtbl.replace p.m_invals k ())
    p.m_log

let install_snapshot t p (s : snapshot) =
  replay_fold t p s;
  p.m_snap <- s;
  (* Anything above the fold gets re-shipped in the same heartbeat;
     dropping the suffix wholesale sidesteps stale-conflict cases. *)
  p.m_log <- [];
  p.m_applied <- s.s_index;
  p.m_commit_index <- max p.m_commit_index s.s_index;
  refresh_state p;
  p.m_snapshot_installs <- p.m_snapshot_installs + 1;
  t.snapshot_installs <- t.snapshot_installs + 1;
  note t p "control.snapshot_install"
    (Printf.sprintf "through %d at v%d (%d pending)" s.s_index s.s_version
       (List.length s.s_pending))

let term_at m idx =
  if idx <= 0 then 0
  else if idx = m.m_snap.s_index then m.m_snap.s_term
  else
    match List.find_opt (fun r -> r.l_index = idx) m.m_log with
    | Some r -> r.l_term
    | None -> 0

(* Does the member's log agree with the leader's at the batch anchor?
   Anchors inside the committed fold are trusted — folds only cover
   committed entries, and those agree everywhere. *)
let prev_ok p ~prev_index ~prev_term =
  if prev_index < p.m_snap.s_index then true
  else if prev_index = p.m_snap.s_index then prev_term = p.m_snap.s_term
  else
    match List.find_opt (fun x -> x.l_index = prev_index) p.m_log with
    | Some x -> x.l_term = prev_term
    | None -> false

(* Drop the divergent suffix a dead leader left behind: only the
   entries from the first conflicting index up. The agreed prefix —
   committed-but-not-yet-folded entries the member already acked
   included — is kept; wiping it back to the snapshot would open a
   window in which too few members hold a committed entry for the
   election restriction to guarantee the next leader has it. Applied
   effects stay (they are idempotent joins) and the next heartbeat
   re-ships the authoritative suffix. *)
let truncate_from p idx =
  p.m_log <- List.filter (fun x -> x.l_index < idx) p.m_log;
  p.m_applied <- min p.m_applied (last_index p);
  p.m_commit_index <- min p.m_commit_index p.m_applied;
  refresh_state p

(* Accept one shipped entry; false aborts the rest of the batch (the
   ack then walks the leader's view of our position back). *)
let accept_entry t p r =
  if r.l_index <= p.m_snap.s_index then true
  else
    match List.find_opt (fun x -> x.l_index = r.l_index) p.m_log with
    | Some x ->
      if x.l_entry = r.l_entry then begin
        (* a re-driven entry: same content, new term — adopt in place *)
        x.l_term <- r.l_term;
        true
      end
      else begin
        (* conflict: truncate from here up (the prefix below agrees)
           and take the leader's record in its place *)
        truncate_from p r.l_index;
        p.m_log <- r :: p.m_log;
        apply_entry t p r.l_entry;
        p.m_applied <- r.l_index;
        true
      end
    | None ->
      if r.l_index = last_index p + 1 then begin
        p.m_log <- r :: p.m_log;
        apply_entry t p r.l_entry;
        p.m_applied <- r.l_index;
        true
      end
      else false

(* Walk the contiguous committed prefix of [m]'s log: an index counts
   as committed iff the record holding it committed (by id — a reused
   index under a later term is a different record). A leader calls
   this both when a fresh entry commits and on taking office: its log
   can hold entries an earlier leader already committed, and walking
   the prefix at election time lets its fold catch up — and spares
   those entries a pointless re-drive — without waiting for new
   traffic. *)
let advance_commit_prefix t m =
  let committed_at idx =
    idx <= m.m_snap.s_index
    || (match List.find_opt (fun x -> x.l_index = idx) m.m_log with
       | Some x -> Hashtbl.mem t.commits_at x.l_id
       | None -> false)
  in
  while committed_at (m.m_commit_index + 1) do
    m.m_commit_index <- m.m_commit_index + 1
  done

let commit_rec t m r ~now =
  if not (Hashtbl.mem t.commits_at r.l_id) then begin
    Hashtbl.replace t.commits_at r.l_id now;
    t.commits <- t.commits + 1;
    (match r.l_entry with
    | Set_version v -> if v > t.committed_version then t.committed_version <- v
    | Invalidate _ -> ());
    advance_commit_prefix t m;
    Telemetry.Global.incr "control.commits";
    maybe_compact t m
  end

(* Leader-side commit rule: majority acked (durability across leader
   changes) AND (all acked, or the fence backstop passed while this
   leader's lease was live). *)
let advance_commits t m ~now =
  let maj = majority t in
  List.iter
    (fun r ->
      if not (Hashtbl.mem t.commits_at r.l_id) then begin
        let acked = ref 1 and all = ref true in
        Array.iter
          (fun p ->
            if p.m_id <> m.m_id then
              if m.m_match.(p.m_id) >= r.l_index then incr acked
              else all := false)
          t.members;
        if !acked >= maj && (!all || r.l_fence_ok) then commit_rec t m r ~now
      end)
    m.m_log

(* Sentinel in [m_acked_send] for a peer that has not acked this
   leadership at all. It must be distinguishable from a real ack (the
   clock starts at 0): a zero-initialized slot would let a fresh
   leader derive a "valid" lease from zero acks whenever now <
   lease_us, and with a nondefault election timeout shorter than the
   lease that fabricated lease could overlap a rival's. *)
let never_acked = -1L

let recompute_lease t m =
  let n = Array.length t.members in
  if Array.length m.m_acked_send = n then begin
    let vals =
      Array.init n (fun q ->
          if q = m.m_id then m.m_last_hb_sent else m.m_acked_send.(q))
    in
    Array.sort (fun a b -> Int64.compare b a) vals;
    let kth = vals.(majority t - 1) in
    (* the lease only ever derives from a real majority of acks *)
    if Int64.compare kth never_acked > 0 then begin
      let cand = Int64.add kth t.lease_us in
      if Int64.compare cand m.m_ldr_lease_until > 0 then
        m.m_ldr_lease_until <- cand
    end
  end

(* --- the message loop --- *)

let rec send t ~src ~dst ~bytes msg =
  if Simnet.Host.is_up src.m_host then
    Simnet.Link.transfer src.m_from ~bytes (fun () ->
        Simnet.Link.transfer dst.m_to ~bytes (fun () ->
            if Simnet.Host.is_up dst.m_host then handle t dst msg))

and handle t p msg =
  let now = Simnet.Engine.now t.engine in
  match msg with
  | Request_vote { v_term; v_cand; v_last_index; v_last_term } ->
    if v_term > p.m_term then step_down t p ~now ~term:v_term;
    let up_to_date =
      v_last_term > last_term p
      || (v_last_term = last_term p && v_last_index >= last_index p)
    in
    let grant =
      v_term = p.m_term
      && (match p.m_voted_for with None -> true | Some c -> c = v_cand)
      && up_to_date
    in
    if grant then begin
      p.m_voted_for <- Some v_cand;
      p.m_heard_at <- now;
      note t p "control.vote"
        (Printf.sprintf "granted m%d at term %d" v_cand p.m_term)
    end;
    send t ~src:p ~dst:(member t v_cand) ~bytes:t.hb_bytes
      (Vote_reply
         {
           r_term = p.m_term;
           r_from = p.m_id;
           r_granted = grant;
           r_promise = p.m_promise_until;
         })
  | Vote_reply { r_term; r_from; r_granted; r_promise } ->
    if r_term > p.m_term then step_down t p ~now ~term:r_term
    else if
      p.m_role = Candidate && r_granted && r_term = p.m_term
      && not (List.mem r_from p.m_votes_got)
    then begin
      p.m_votes_got <- r_from :: p.m_votes_got;
      if Int64.compare r_promise p.m_lease_floor > 0 then
        p.m_lease_floor <- r_promise;
      maybe_win t p ~now
    end
  | Append a -> on_append t p a ~now
  | Append_reply { p_term; p_from; p_applied; p_echo } ->
    if p_term > p.m_term then step_down t p ~now ~term:p_term
    else if p.m_role = Leader && p_term = p.m_term then begin
      t.acks <- t.acks + 1;
      Telemetry.Global.incr "control.acks";
      if Int64.compare p_echo p.m_acked_send.(p_from) >= 0 then begin
        let was = leased t p ~now in
        p.m_acked_send.(p_from) <- p_echo;
        p.m_match.(p_from) <- p_applied;
        recompute_lease t p;
        (* lease just activated: re-broadcast so serving leases resume
           without waiting out a heartbeat interval *)
        if (not was) && leased t p ~now then broadcast t p ~now;
        advance_commits t p ~now
      end
    end

and on_append t p
    ({
       a_term;
       a_leader;
       a_sent;
       a_leased;
       a_commit;
       a_last;
       a_prev_index;
       a_prev_term;
       a_snap;
       a_entries;
     } :
      append) ~now =
  let leader_m = member t a_leader in
  if a_term < p.m_term then
    (* stale leader woke up: the ack's term makes it step down *)
    reply_append t p leader_m ~echo:a_sent
  else begin
    set_term t p a_term;
    demote t p;
    p.m_role <- Follower;
    p.m_heard_at <- now;
    (* my acks may extend this leader's lease until now + lease_us:
       the promise a future vote of mine must report *)
    p.m_promise_until <- Int64.add now t.lease_us;
    (match a_snap with
    | Some s when s.s_index > p.m_applied -> install_snapshot t p s
    | _ -> ());
    if prev_ok p ~prev_index:a_prev_index ~prev_term:a_prev_term then begin
      let ok = ref true in
      List.iter (fun r -> if !ok then ok := accept_entry t p r) a_entries
    end
    else
      (* the anchor disagrees: drop the suffix from the anchor up; the
         ack reports the clamped position and the leader re-ships from
         the agreed prefix *)
      truncate_from p a_prev_index;
    (* A suffix above the leader's last entry, stamped by an older
       term, came from a dead leader and is lost — this leader never
       had it. Drop it or it haunts the state digest forever. *)
    let live, junk =
      List.partition
        (fun r -> r.l_index <= a_last || r.l_term >= a_term)
        p.m_log
    in
    if junk <> [] then begin
      p.m_log <- live;
      p.m_applied <- min p.m_applied (last_index p);
      refresh_state p
    end;
    p.m_commit_index <- max p.m_commit_index (min a_commit p.m_applied);
    maybe_compact t p;
    if p.m_needs_resync && p.m_applied >= a_last then begin
      p.m_needs_resync <- false;
      p.m_resyncs <- p.m_resyncs + 1;
      Telemetry.Global.incr "control.resyncs";
      note t p "control.resync"
        (Printf.sprintf "caught up through %d" p.m_applied)
    end;
    (* The serving lease renews only under a live leadership lease,
       and only once this member holds everything the leader does —
       the ordering the commit fence relies on. *)
    if a_leased && (not p.m_needs_resync) && p.m_applied >= a_last then
      renew_serving t p ~now;
    reply_append t p leader_m ~echo:a_sent
  end

and reply_append t p leader_m ~echo =
  send t ~src:p ~dst:leader_m ~bytes:t.hb_bytes
    (Append_reply
       {
         p_term = p.m_term;
         p_from = p.m_id;
         p_applied = p.m_applied;
         p_echo = echo;
       })

and broadcast t m ~now =
  m.m_last_hb_sent <- now;
  recompute_lease t m;
  let is_leased = leased t m ~now in
  let last = last_index m in
  Array.iter
    (fun p ->
      if p.m_id <> m.m_id then begin
        let base = min m.m_match.(p.m_id) last in
        let snap, base =
          if base < m.m_snap.s_index then (Some m.m_snap, m.m_snap.s_index)
          else (None, base)
        in
        let entries =
          List.rev_map
            (fun r -> { r with l_index = r.l_index })
            (List.filter (fun r -> r.l_index > base) m.m_log)
        in
        let bytes =
          t.hb_bytes
          + (t.entry_bytes * List.length entries)
          + (match snap with
            | None -> 0
            | Some s -> t.entry_bytes * (1 + List.length s.s_pending))
        in
        t.heartbeats <- t.heartbeats + 1;
        Telemetry.Global.incr "control.heartbeats";
        send t ~src:m ~dst:p ~bytes
          (Append
             {
               a_term = m.m_term;
               a_leader = m.m_id;
               a_sent = now;
               a_leased = is_leased;
               a_commit = m.m_commit_index;
               a_last = last;
               a_prev_index = base;
               a_prev_term = term_at m base;
               a_snap = snap;
               a_entries = entries;
             })
      end)
    t.members

and maybe_win t m ~now =
  if m.m_role = Candidate && List.length m.m_votes_got >= majority t then
    become_leader t m ~now

and become_leader t m ~now =
  m.m_role <- Leader;
  let n = Array.length t.members in
  m.m_match <- Array.make n 0;
  m.m_acked_send <- Array.make n never_acked;
  m.m_ldr_lease_until <- 0L;
  t.elections <- t.elections + 1;
  if t.last_leader <> Some m.m_id then begin
    t.leader_changes <- t.leader_changes + 1;
    t.last_leader <- Some m.m_id
  end;
  note t m "control.election_win"
    (Printf.sprintf "term %d with %d votes" m.m_term
       (List.length m.m_votes_got));
  (* Entries a fallen leader already committed need no re-drive; walk
     the committed prefix first so the fold can catch up and only the
     genuinely uncommitted suffix is re-stamped. *)
  advance_commit_prefix t m;
  maybe_compact t m;
  (* Re-drive the uncommitted suffix under the new term: fresh stamp,
     fresh propose time, fresh fence backstop. *)
  List.iter
    (fun r ->
      if r.l_index > m.m_commit_index && r.l_term <> m.m_term then begin
        r.l_term <- m.m_term;
        r.l_proposed_at <- now;
        r.l_fence_ok <- false;
        t.redrives <- t.redrives + 1;
        note t m "control.redrive"
          (Printf.sprintf "entry %d under term %d" r.l_index m.m_term);
        arm_backstop t m r
      end)
    m.m_log;
  broadcast t m ~now

and start_election t m ~now =
  set_term t m (m.m_term + 1);
  m.m_voted_for <- Some m.m_id;
  m.m_role <- Candidate;
  m.m_votes_got <- [ m.m_id ];
  m.m_lease_floor <- m.m_promise_until;
  m.m_heard_at <- now;
  note t m "control.vote"
    (Printf.sprintf "granted m%d at term %d (self)" m.m_id m.m_term);
  Array.iter
    (fun p ->
      if p.m_id <> m.m_id then
        send t ~src:m ~dst:p ~bytes:t.hb_bytes
          (Request_vote
             {
               v_term = m.m_term;
               v_cand = m.m_id;
               v_last_index = last_index m;
               v_last_term = last_term m;
             }))
    t.members;
  maybe_win t m ~now

(* The fence backstop: at propose + lease + margin, every member has
   either applied the entry or lost its serving lease — sound only
   while the proposing leader still holds the leadership lease (a
   rival leased leader would imply this one's lease had lapsed
   first). A transiently unleased leader re-arms and retries. *)
and arm_backstop t m r =
  let fire_at =
    Int64.add r.l_proposed_at (Int64.add t.lease_us t.commit_margin_us)
  in
  let term = r.l_term in
  Simnet.Engine.schedule_at t.engine fire_at (fun () ->
      backstop_check t m r ~term)

and backstop_check t m r ~term =
  let now = Simnet.Engine.now t.engine in
  if
    t.running && m.m_role = Leader && m.m_term = term && r.l_term = term
    && not (Hashtbl.mem t.commits_at r.l_id)
  then
    if leased t m ~now then begin
      r.l_fence_ok <- true;
      advance_commits t m ~now
    end
    else
      Simnet.Engine.schedule t.engine ~delay:t.hb_interval_us (fun () ->
          backstop_check t m r ~term)

and tick t () =
  if t.running then begin
    let now = Simnet.Engine.now t.engine in
    if Int64.compare now t.until <= 0 then begin
      Array.iter (fun m -> step t m ~now) t.members;
      Simnet.Engine.schedule t.engine ~delay:t.hb_interval_us (fun () ->
          tick t ())
    end
  end

and step t m ~now =
  if Simnet.Host.is_up m.m_host then begin
    if m.m_serving && Int64.compare now m.m_lease_until >= 0 then begin
      m.m_serving <- false;
      note t m "control.lease_expire"
        (Printf.sprintf "serving lease lapsed at term %d" m.m_term)
    end;
    match m.m_role with
    | Leader ->
      broadcast t m ~now;
      if leased t m ~now && not m.m_needs_resync then renew_serving t m ~now
    | Follower | Candidate ->
      if Int64.compare (Int64.sub now m.m_heard_at) (timeout_of t m) >= 0
      then start_election t m ~now
  end

(* --- public surface --- *)

let start t ~until =
  if not t.running then begin
    t.running <- true;
    t.until <- until;
    if Telemetry.Trace.enabled () then begin
      let sp = Telemetry.Trace.root ~node:"control" "control.plane" in
      t.trace_span <- Some sp;
      t.trace_ctx <- Telemetry.Trace.ctx_of sp
    end;
    tick t ()
  end

let stop t =
  t.running <- false;
  (match t.trace_span with
  | Some sp -> Telemetry.Trace.finish sp
  | None -> ());
  t.trace_span <- None;
  t.trace_ctx <- Telemetry.Trace.none

let propose t e =
  let now = Simnet.Engine.now t.engine in
  match leased_leader t with
  | None -> None
  | Some m ->
    let idx = last_index m + 1 in
    t.next_id <- t.next_id + 1;
    let r =
      {
        l_index = idx;
        l_id = t.next_id;
        l_term = m.m_term;
        l_entry = e;
        l_proposed_at = now;
        l_fence_ok = false;
      }
    in
    m.m_log <- r :: m.m_log;
    (* the leader applies its own entries immediately — it renews its
       serving lease only while leased, preserving apply-before-renew *)
    apply_entry t m e;
    m.m_applied <- idx;
    t.proposals <- t.proposals + 1;
    (match e with
    | Set_version v -> if v > t.version then t.version <- v
    | Invalidate _ -> ());
    if idx > t.next_index then t.next_index <- idx;
    Telemetry.Global.incr "control.proposals";
    arm_backstop t m r;
    advance_commits t m ~now;
    Some r.l_id

let member_ok t id =
  let m = member t id in
  Int64.compare (Simnet.Engine.now t.engine) m.m_lease_until < 0

let mark_restarted t id =
  let m = member t id in
  let now = Simnet.Engine.now t.engine in
  m.m_role <- Follower;
  m.m_lease_until <- 0L;
  m.m_serving <- false;
  m.m_ldr_lease_until <- 0L;
  m.m_votes_got <- [];
  m.m_heard_at <- now;
  (* Serving state is volatile: re-derive it by replaying the durable
     stub — snapshot fold, then the retained suffix — into the fresh
     node. Term, vote and promise survive as-is (the stub a real
     deployment fsyncs), so a member can never vote twice in a term
     across a reboot. *)
  m.m_version <- t.base_version;
  Hashtbl.reset m.m_invals;
  m.m_applied <- 0;
  replay_fold t m m.m_snap;
  m.m_applied <- m.m_snap.s_index;
  List.iter
    (fun r ->
      apply_entry t m r.l_entry;
      m.m_applied <- r.l_index)
    (List.rev m.m_log);
  m.m_commit_index <- min m.m_commit_index m.m_applied;
  m.m_needs_resync <- t.next_index > 0;
  Telemetry.Global.incr "control.restarts"

let committed t ~id = Hashtbl.mem t.commits_at id
let commit_us t ~id = Hashtbl.find_opt t.commits_at id
let committed_version t = t.committed_version
let current_version t = t.version
let log_length t = t.next_index
let member_count t = Array.length t.members
let member_name t id = (member t id).m_name
let member_version t id = (member t id).m_version
let member_applied t id = (member t id).m_applied
let member_resyncs t id = (member t id).m_resyncs
let member_term t id = (member t id).m_term

let member_role t id =
  match (member t id).m_role with
  | Follower -> "follower"
  | Candidate -> "candidate"
  | Leader -> "leader"

let member_snapshot_index t id = (member t id).m_snap.s_index
let member_snapshot_installs t id = (member t id).m_snapshot_installs
let member_log_live t id = List.length (member t id).m_log

let member_state_digest t id =
  let m = member t id in
  let keys =
    List.sort String.compare
      (Hashtbl.fold (fun k () acc -> k :: acc) m.m_invals [])
  in
  Printf.sprintf "v%d|%s" m.m_version (String.concat "," keys)

let leader t = Option.map (fun m -> m.m_id) (leased_leader t)

let leased_leaders t =
  let now = Simnet.Engine.now t.engine in
  Array.fold_left
    (fun acc m -> if leased t m ~now then m.m_id :: acc else acc)
    [] t.members
  |> List.rev

let term t = Array.fold_left (fun acc m -> max acc m.m_term) 0 t.members

(* The authoritative log: the leased leader's if there is one, else
   the most election-worthy member's — the log any next leader must
   contain. *)
let authoritative t =
  match leased_leader t with
  | Some m -> Some m
  | None ->
    Array.fold_left
      (fun best m ->
        match best with
        | None -> Some m
        | Some b ->
          if
            last_term m > last_term b
            || (last_term m = last_term b && last_index m > last_index b)
          then Some m
          else best)
      None t.members

let replay_digest t =
  match authoritative t with
  | None -> Printf.sprintf "v%d|" t.base_version
  | Some m ->
    let oldest = List.rev m.m_log in
    let v =
      List.fold_left
        (fun v r -> match r.l_entry with Set_version x -> max v x | _ -> v)
        m.m_snap.s_version oldest
    in
    let keys =
      m.m_snap.s_pending
      @ List.filter_map
          (fun r ->
            match r.l_entry with Invalidate k -> Some k | _ -> None)
          oldest
    in
    let keys = List.sort_uniq String.compare keys in
    Printf.sprintf "v%d|%s" v (String.concat "," keys)

let converged t =
  let now = Simnet.Engine.now t.engine in
  match leased_leader t with
  | None -> false
  | Some l ->
    let last = last_index l in
    Array.for_all
      (fun m ->
        m.m_applied >= last
        && (not m.m_needs_resync)
        && Int64.compare now m.m_lease_until < 0)
      t.members

let heartbeats t = t.heartbeats
let acks t = t.acks
let proposals t = t.proposals
let commits t = t.commits
let elections t = t.elections
let stepdowns t = t.stepdowns
let redrives t = t.redrives
let compactions t = t.compactions
let snapshot_installs t = t.snapshot_installs
let leader_changes t = t.leader_changes

let resyncs t =
  Array.fold_left (fun acc m -> acc + m.m_resyncs) 0 t.members
