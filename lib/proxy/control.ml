(* The farm's control plane: a leader-based replication log that
   propagates security-policy versions and rewrite-cache invalidations
   to every shard over simnet links.

   Why a leader log and not anti-entropy gossip: the invariant the
   chaos suite checks — "no client is served under a revoked policy
   version once the bump commits" — needs a *commit point* with a
   guarantee about every shard, including the partitioned ones gossip
   cannot reach. Leases give that point without waiting on the slowest
   partition: a shard may serve only while it holds a live lease, and
   leases are renewed exclusively by heartbeats, which always carry
   the log suffix the shard is missing. So at

     commit(e) = min( all members acked e,
                      proposed(e) + lease_us + commit_margin_us )

   every member has either applied [e] (it processed a heartbeat sent
   after the proposal — entries are applied *before* the lease is
   renewed, in the same delivery) or its lease has lapsed and the
   shard is fenced: its node refuses to serve and the farm fails the
   request over. [commit_margin_us] covers heartbeats already in
   flight when the entry was proposed: such a heartbeat renews the
   lease to at most proposed + transit + lease_us, so any margin at
   or above the worst-case heartbeat transit makes the bound sound.

   A restarted shard is the same machinery from the other end: it
   comes back fenced with its applied position reset, and the next
   heartbeat replays the whole log — current version and every
   pending invalidation — before the lease that lets it serve again
   is granted. Recovery from peers, not from whatever the shared L2
   still holds. *)

type entry = Set_version of int | Invalidate of string

let entry_to_string = function
  | Set_version v -> Printf.sprintf "set-version %d" v
  | Invalidate key -> Printf.sprintf "invalidate %s" key

type member = {
  m_id : int;
  m_name : string;
  m_host : Simnet.Host.t;
  m_to : Simnet.Link.t; (* leader -> member: heartbeats + log suffix *)
  m_from : Simnet.Link.t; (* member -> leader: acks *)
  m_apply : entry -> unit;
  mutable m_applied : int; (* prefix of the log applied locally *)
  mutable m_acked : int; (* leader's view of the acked prefix *)
  mutable m_lease_until : int64;
  mutable m_version : int; (* highest Set_version applied *)
  mutable m_needs_resync : bool; (* restarted; fenced until caught up *)
  mutable m_resyncs : int;
}

type pending = {
  p_index : int; (* 1-based position in the log *)
  p_entry : entry;
  p_proposed_at : int64;
  mutable p_committed_at : int64 option;
}

type t = {
  engine : Simnet.Engine.t;
  lease_us : int64;
  hb_interval_us : int64;
  commit_margin_us : int64;
  hb_bytes : int; (* wire size of an empty heartbeat / an ack *)
  entry_bytes : int; (* wire size per carried log entry *)
  mutable members : member array;
  mutable log : pending list; (* newest first *)
  mutable log_len : int;
  mutable version : int; (* latest *proposed* version *)
  mutable committed_version : int; (* highest committed Set_version *)
  mutable running : bool;
  mutable heartbeats : int;
  mutable acks : int;
  mutable proposals : int;
  mutable commits : int;
}

let create engine ?(lease_us = 1_000_000L) ?(hb_interval_us = 250_000L)
    ?(commit_margin_us = 100_000L) ?(hb_bytes = 64) ?(entry_bytes = 96)
    ?(initial_version = 1) () =
  {
    engine;
    lease_us;
    hb_interval_us;
    commit_margin_us;
    hb_bytes;
    entry_bytes;
    members = [||];
    log = [];
    log_len = 0;
    version = initial_version;
    committed_version = initial_version;
    running = false;
    heartbeats = 0;
    acks = 0;
    proposals = 0;
    commits = 0;
  }

let member t id =
  if id < 0 || id >= Array.length t.members then
    invalid_arg "Control.member: unknown id";
  t.members.(id)

let add_member t ~name ~host ~link_to ~link_from ~apply =
  let id = Array.length t.members in
  let m =
    {
      m_id = id;
      m_name = name;
      m_host = host;
      m_to = link_to;
      m_from = link_from;
      m_apply = apply;
      m_applied = 0;
      m_acked = 0;
      (* A fresh member starts with a live lease: the log is empty, so
         there is nothing it could be missing. *)
      m_lease_until = Int64.add (Simnet.Engine.now t.engine) t.lease_us;
      m_version = t.version;
      m_needs_resync = false;
      m_resyncs = 0;
    }
  in
  t.members <- Array.append t.members [| m |];
  id

(* Log positions are 1-based; [suffix_after n] returns entries n+1..len
   oldest first. The log is a few entries long, so list scans are
   fine. *)
let suffix_after t n =
  List.filter (fun p -> p.p_index > n) (List.rev t.log)

let entry_at t idx = List.find_opt (fun p -> p.p_index = idx) t.log

let commit t p ~at =
  if p.p_committed_at = None then begin
    p.p_committed_at <- Some at;
    t.commits <- t.commits + 1;
    (match p.p_entry with
    | Set_version v ->
      if v > t.committed_version then t.committed_version <- v
    | Invalidate _ -> ());
    Telemetry.Global.incr "control.commits"
  end

(* An entry commits as soon as every member acked it; the lease
   deadline scheduled at propose time is the backstop for members a
   partition keeps silent. *)
let advance_commits t ~now =
  let floor_acked =
    Array.fold_left (fun acc m -> min acc m.m_acked) max_int t.members
  in
  List.iter
    (fun p -> if p.p_index <= floor_acked then commit t p ~at:now)
    t.log

let propose t entry =
  let now = Simnet.Engine.now t.engine in
  let p =
    { p_index = t.log_len + 1; p_entry = entry; p_proposed_at = now;
      p_committed_at = None }
  in
  t.log <- p :: t.log;
  t.log_len <- t.log_len + 1;
  t.proposals <- t.proposals + 1;
  (match entry with
  | Set_version v -> if v > t.version then t.version <- v
  | Invalidate _ -> ());
  Telemetry.Global.incr "control.proposals";
  (* Lease backstop: by this time every member that has not applied
     the entry is running on a lease too old to still be live. *)
  Simnet.Engine.schedule_at t.engine
    (Int64.add now (Int64.add t.lease_us t.commit_margin_us))
    (fun () ->
      if Array.length t.members = 0 then
        commit t p ~at:(Simnet.Engine.now t.engine)
      else advance_commits t ~now:(Simnet.Engine.now t.engine);
      if p.p_committed_at = None then
        commit t p ~at:(Simnet.Engine.now t.engine));
  p.p_index

(* One heartbeat to one member: ship the suffix past the leader's view
   of its acked prefix. Delivery applies the entries *then* renews the
   lease — the ordering the commit rule relies on — and the ack rides
   its own link back. A member whose host is down ignores the
   delivery entirely: no apply, no renewal, no ack. *)
let heartbeat t m =
  let missing = suffix_after t m.m_acked in
  let bytes = t.hb_bytes + (t.entry_bytes * List.length missing) in
  t.heartbeats <- t.heartbeats + 1;
  Telemetry.Global.incr "control.heartbeats";
  Simnet.Link.transfer m.m_to ~bytes (fun () ->
      if Simnet.Host.is_up m.m_host then begin
        List.iter
          (fun p ->
            if p.p_index > m.m_applied then begin
              m.m_apply p.p_entry;
              (match p.p_entry with
              | Set_version v -> if v > m.m_version then m.m_version <- v
              | Invalidate _ -> ());
              m.m_applied <- p.p_index;
              Telemetry.Global.incr "control.applies"
            end)
          missing;
        if m.m_needs_resync && m.m_applied >= t.log_len then begin
          m.m_needs_resync <- false;
          m.m_resyncs <- m.m_resyncs + 1;
          Telemetry.Global.incr "control.resyncs"
        end;
        (* The lease is renewed only when the member is fully caught
           up on what this heartbeat carried; a restarted member in
           mid-replay stays fenced. *)
        if not m.m_needs_resync then
          m.m_lease_until <-
            Int64.add (Simnet.Engine.now t.engine) t.lease_us;
        let applied = m.m_applied in
        Simnet.Link.transfer m.m_from ~bytes:t.hb_bytes (fun () ->
            t.acks <- t.acks + 1;
            if applied > m.m_acked then m.m_acked <- applied;
            Telemetry.Global.incr "control.acks";
            advance_commits t ~now:(Simnet.Engine.now t.engine))
      end)

let rec tick t ~until =
  if t.running && Int64.compare (Simnet.Engine.now t.engine) until <= 0 then begin
    Array.iter (fun m -> heartbeat t m) t.members;
    Simnet.Engine.schedule t.engine ~delay:t.hb_interval_us (fun () ->
        tick t ~until)
  end

let start t ~until =
  if not t.running then begin
    t.running <- true;
    tick t ~until
  end

let stop t = t.running <- false

(* May shard [id] serve right now? Only on a live lease — and a
   restarted member holds none until it has replayed the full log. *)
let member_ok t id =
  let m = member t id in
  Int64.compare (Simnet.Engine.now t.engine) m.m_lease_until < 0

let mark_restarted t id =
  let m = member t id in
  m.m_applied <- 0;
  m.m_acked <- 0;
  m.m_lease_until <- 0L;
  m.m_needs_resync <- t.log_len > 0;
  Telemetry.Global.incr "control.restarts"

let committed t ~index =
  match entry_at t index with
  | Some p -> p.p_committed_at <> None
  | None -> false

let commit_us t ~index =
  match entry_at t index with Some p -> p.p_committed_at | None -> None

let committed_version t = t.committed_version
let current_version t = t.version
let log_length t = t.log_len
let member_count t = Array.length t.members
let member_name t id = (member t id).m_name
let member_version t id = (member t id).m_version
let member_applied t id = (member t id).m_applied
let member_resyncs t id = (member t id).m_resyncs

let converged t =
  Array.for_all
    (fun m ->
      m.m_applied >= t.log_len
      && Int64.compare (Simnet.Engine.now t.engine) m.m_lease_until < 0)
    t.members

let heartbeats t = t.heartbeats
let acks t = t.acks
let proposals t = t.proposals
let commits t = t.commits

let resyncs t =
  Array.fold_left (fun acc m -> acc + m.m_resyncs) 0 t.members
