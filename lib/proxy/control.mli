(** The farm's control plane: a leader-based replication log with
    lease fencing, propagating security-policy versions and
    rewrite-cache invalidations to every shard over simnet links.

    The leader appends {!type:entry} values to a log and ships the
    missing suffix to each member on every heartbeat; a member applies
    the entries {e in order, before} its lease is renewed by the same
    delivery. A member may serve clients only while its lease is live
    ({!member_ok}), so an entry proposed at [p] is {e committed} at

    [min (all members acked, p + lease_us + commit_margin_us)]

    — by then every member has either applied it or is fenced and the
    farm fails requests over to shards that have. [commit_margin_us]
    must be at least the worst-case heartbeat transit time (it covers
    renewals already in flight at the proposal). A restarted member
    ({!mark_restarted}) comes back fenced with its position reset and
    recovers the whole log — current version plus pending
    invalidations — from the leader before it is granted a lease
    again.

    Counters: [control.heartbeats], [control.acks],
    [control.proposals], [control.commits], [control.applies],
    [control.resyncs], [control.restarts]. *)

type t

type entry =
  | Set_version of int  (** the security policy moved to this version *)
  | Invalidate of string  (** drop this class from rewrite caches *)

val entry_to_string : entry -> string

val create :
  Simnet.Engine.t ->
  ?lease_us:int64 ->
  ?hb_interval_us:int64 ->
  ?commit_margin_us:int64 ->
  ?hb_bytes:int ->
  ?entry_bytes:int ->
  ?initial_version:int ->
  unit ->
  t
(** Defaults: 1 s leases renewed every 250 ms, 100 ms commit margin,
    64-byte heartbeats/acks carrying 96 bytes per log entry, initial
    policy version 1. *)

val add_member :
  t ->
  name:string ->
  host:Simnet.Host.t ->
  link_to:Simnet.Link.t ->
  link_from:Simnet.Link.t ->
  apply:(entry -> unit) ->
  int
(** Register a shard; returns its member id. [link_to] carries
    heartbeats leader→member, [link_from] carries acks back — sever
    both (e.g. {!Simnet.Link.set_partitioned}) to partition the member
    from the control plane while its data path stays up. [apply] runs
    at heartbeat delivery, once per log entry, in log order; a member
    whose host is down ignores deliveries entirely. The member starts
    with a live lease (the log it could be missing is empty). *)

val start : t -> until:Simnet.Engine.time -> unit
(** Start the heartbeat loop; it reschedules itself every
    [hb_interval_us] until the virtual clock passes [until] (or
    {!stop}). *)

val stop : t -> unit

val propose : t -> entry -> int
(** Append an entry to the log and return its (1-based) index. Commit
    happens when all members ack or at the lease backstop, whichever
    is earlier; watch it with {!committed} / {!commit_us}. *)

val committed : t -> index:int -> bool
val commit_us : t -> index:int -> Simnet.Engine.time option

val committed_version : t -> int
(** Highest [Set_version] that has committed — the version the
    serving invariant is stated against. *)

val current_version : t -> int
(** Highest [Set_version] proposed (it may not have committed yet). *)

val member_ok : t -> int -> bool
(** May this shard serve right now? [true] only on a live lease; a
    partitioned member's lease lapses one [lease_us] after its last
    heartbeat, and a restarted member holds no lease until it has
    replayed the full log. Nodes plug this into
    [Node.serving_allowed] so a fenced shard fails over. *)

val mark_restarted : t -> int -> unit
(** The shard lost its volatile state: reset its applied position and
    fence it until the log — version and pending invalidations — has
    been replayed from the leader. Call from the host's [on_restart]
    hook. *)

val converged : t -> bool
(** Every member has applied the full log and holds a live lease. *)

val log_length : t -> int
val member_count : t -> int
val member_name : t -> int -> string
val member_version : t -> int -> int
(** Highest [Set_version] this member has applied. *)

val member_applied : t -> int -> int
val member_resyncs : t -> int -> int

val heartbeats : t -> int
val acks : t -> int
val proposals : t -> int
val commits : t -> int
val resyncs : t -> int
