(** The farm's control plane: a replicated log with term-numbered
    leader election, leadership + serving leases, and snapshot
    compaction, carrying security-policy versions and rewrite-cache
    invalidations to every shard over simnet links.

    Every member is a full replica. A member that has not heard a
    leader for its (id-staggered) election timeout campaigns: it bumps
    its term and solicits votes; a voter grants at most one vote per
    term and only to candidates whose log is at least as complete as
    its own, so a majority winner holds every committed entry. A vote
    grant carries the voter's promise horizon — the time until which
    its past acks may still extend an old leader's leadership lease —
    and the winner's lease is invalid before the maximum promise its
    majority reported. Majorities intersect, so at most one leader
    holds a valid lease per instant (the election-safety invariant,
    probed by {!leased_leaders}).

    An entry proposed at [p] commits at

    [max (majority acked, min (all acked, p + lease_us + margin))]

    — the majority arm makes it durable across leader changes (the
    election restriction hands it to every future leader); the fence
    arm is sound because by [p + lease + margin] every member has
    either applied the entry or lost the serving lease, which only a
    {e leased} leader's heartbeats renew, and the backstop fires only
    while the proposing leader still holds its leadership lease. A new
    leader re-drives the uncommitted suffix of its log under its own
    term. Replicas fold the committed, applied prefix into a snapshot
    (version bound + pending invalidation set) once it exceeds a
    threshold and truncate the log; laggards and restarted members
    catch up from snapshot + suffix instead of replaying history.
    Restart keeps the durable stub (term, vote, promise horizon,
    snapshot, log), replays it locally, and stays fenced until a
    leader confirms the member is current.

    Counters (all also emitted as reason events of the same name):
    [control.heartbeats], [control.acks], [control.proposals],
    [control.commits], [control.applies], [control.resyncs],
    [control.restarts], [control.vote], [control.term_bump],
    [control.election_win], [control.stepdown], [control.redrive],
    [control.lease_grant], [control.lease_expire],
    [control.snapshot_compact], [control.snapshot_install]. *)

type t

type entry =
  | Set_version of int  (** the security policy moved to this version *)
  | Invalidate of string  (** drop this class from rewrite caches *)

val entry_to_string : entry -> string

val create :
  Simnet.Engine.t ->
  ?lease_us:int64 ->
  ?hb_interval_us:int64 ->
  ?commit_margin_us:int64 ->
  ?election_timeout_us:int64 ->
  ?stagger_us:int64 ->
  ?snapshot_threshold:int ->
  ?hb_bytes:int ->
  ?entry_bytes:int ->
  ?initial_version:int ->
  unit ->
  t
(** Defaults: 1 s leases renewed every 250 ms, 100 ms commit margin,
    600 ms base election timeout staggered by one heartbeat interval
    per member id (a finer stagger would quantize away under the
    tick), snapshot fold at 8 committed live entries, 64-byte
    heartbeats/acks carrying 96 bytes per log entry (a shipped
    snapshot costs one entry plus one per pending invalidation),
    initial policy version 1. *)

val add_member :
  t ->
  name:string ->
  host:Simnet.Host.t ->
  link_to:Simnet.Link.t ->
  link_from:Simnet.Link.t ->
  apply:(entry -> unit) ->
  int
(** Register a replica; returns its member id. [link_to] is the
    fabric → member downlink, [link_from] the member → fabric uplink;
    a message between two members crosses the sender's uplink and then
    the receiver's downlink, so severing one member's pair
    ({!Simnet.Link.set_partitioned}) isolates it from the whole plane
    while its data path stays up. [apply] runs at delivery, in log
    order — and again on snapshot install or restart replay, so
    effects must be idempotent joins (version bumps and invalidations
    are). A member whose host is down ignores deliveries entirely. A
    fresh member starts with a live serving lease: the log it could be
    missing is empty. *)

val start : t -> until:Simnet.Engine.time -> unit
(** Start the tick loop (elections, heartbeats, lease renewal); it
    reschedules itself every [hb_interval_us] until the virtual clock
    passes [until] (or {!stop}). When tracing is enabled, opens a
    [control.plane] root span that collects the reason events. *)

val stop : t -> unit

val propose : t -> entry -> int option
(** Append an entry at the current leased leader and return its
    proposal id — unique, monotone, never reused — or [None] when no
    member holds a valid leadership lease (mid-election, leader
    partitioned) — callers retry. Log {e indices} continue from the
    leader's own last entry, so an index minted by a dead leader for
    an uncommitted entry may be reused under a later term; commitment
    is therefore tracked by proposal id, which follows the entry
    across leader hand-off re-drives and can never alias a different
    entry that later commits at a reused index. Watch commitment with
    {!committed} / {!commit_us}. *)

val committed : t -> id:int -> bool
(** Has the proposal with this id committed? A re-driven proposal
    (same entry, re-stamped under a new leader's term) keeps its id;
    a lost proposal's id never reports committed, even after a
    different entry commits at the same log index. *)

val commit_us : t -> id:int -> Simnet.Engine.time option

val committed_version : t -> int
(** Highest [Set_version] that has committed — the version the
    serving invariant is stated against. *)

val current_version : t -> int
(** Highest [Set_version] a leader accepted (it may not have
    committed yet). *)

val member_ok : t -> int -> bool
(** May this shard serve right now? [true] only on a live serving
    lease. Only a leased leader's heartbeats renew it, and only once
    the member has applied everything that leader holds — so a
    partitioned, stale or restarted member fences itself within one
    [lease_us]. Nodes plug this into [Node.serving_allowed] so a
    fenced shard fails over. *)

val mark_restarted : t -> int -> unit
(** The shard lost its volatile serving state (caches, version,
    leases) but kept the durable stub a real deployment would fsync —
    term, vote, promise horizon, snapshot, log. Replays the stub into
    the fresh node via [apply] (snapshot fold first, then the retained
    suffix) and fences the member until a leader confirms it is
    current. Call from the host's [on_restart] hook. *)

val converged : t -> bool
(** A leased leader exists, every member has applied everything it
    holds, and every serving lease is live. *)

(** {2 Election and replication observables} *)

val leader : t -> int option
(** The member holding a valid leadership lease right now, if any. *)

val leased_leaders : t -> int list
(** Every member holding a valid leadership lease at this instant —
    the split-brain probe. Election safety says this never has two
    elements. *)

val term : t -> int
(** Highest term any member has seen. *)

val member_term : t -> int -> int
val member_role : t -> int -> string
(** ["follower"], ["candidate"] or ["leader"]. *)

val member_state_digest : t -> int -> string
(** Canonical digest of the member's applied serving state — version
    plus sorted invalidation set. The snapshot catch-up invariant
    byte-compares this across members and against {!replay_digest}. *)

val replay_digest : t -> string
(** The state a fresh replica reaches by replaying the authoritative
    log (the leased leader's, else the most election-worthy member's)
    from scratch: snapshot fold + live suffix. Snapshot catch-up is
    correct iff every converged member's {!member_state_digest}
    equals this. *)

(** {2 Introspection} *)

val log_length : t -> int
(** Highest log index ever minted (compaction does not shrink it). *)

val member_count : t -> int
val member_name : t -> int -> string

val member_version : t -> int -> int
(** Highest [Set_version] this member has applied. *)

val member_applied : t -> int -> int
val member_resyncs : t -> int -> int

val member_snapshot_index : t -> int -> int
(** Log index through which this member's state is folded into its
    snapshot. *)

val member_snapshot_installs : t -> int -> int

val member_log_live : t -> int -> int
(** Log entries the member retains above its snapshot. *)

(** {2 Counters} *)

val heartbeats : t -> int
val acks : t -> int
val proposals : t -> int
val commits : t -> int
val resyncs : t -> int

val elections : t -> int
(** Elections won (leaderships assumed, including re-elections). *)

val stepdowns : t -> int
val redrives : t -> int
(** Uncommitted entries re-stamped under a new leader's term. *)

val compactions : t -> int
val snapshot_installs : t -> int

val leader_changes : t -> int
(** Changes of leadership identity (bootstrap election included). *)
