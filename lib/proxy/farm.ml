(* A sharded proxy farm: N independent proxy nodes behind one facade,
   with class keys spread across the shards by consistent hashing.

   Each shard is a full [Node.t] — its own host, CPU accounting and L1
   cache — so adding shards multiplies pipeline capacity and, more
   importantly for Figure 10, divides the per-client memory load that
   pushes a single proxy past its thrashing knee. The ring uses
   virtual nodes so key ownership stays balanced at small shard
   counts, and failover walks the ring clockwise to the next distinct
   live shard — exactly the preference order consistent hashing gives
   for free — reusing the per-request [on_fail] health machinery the
   replica facade introduced.

   Determinism: ownership is a pure function of (key, shard count,
   vnodes), dispatch does no random choice and touches no hash-table
   iteration order, so the same seed yields the same event trace; and
   because the pipeline is pure, the bytes a class rewrites to are
   identical no matter which shard served it. *)

type t = {
  engine : Simnet.Engine.t;
  shards : Node.t array;
  ring : (int * int) array; (* (point, shard index), sorted by point *)
  health : bool array; (* last observed per-shard state, for the console *)
  mutable requests : int;
  mutable failovers : int; (* requests served by a non-owner shard *)
  mutable unavailable : int; (* requests no shard could serve *)
}

(* FNV-1a, 64-bit. Cheap, seedless, and stable across runs — unlike
   [Hashtbl.hash] no randomization flag can perturb it. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash_key (s : string) : int =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  (* Keep it a nonnegative OCaml int: drop the top two bits. *)
  Int64.to_int (Int64.shift_right_logical !h 2)

let default_vnodes = 64

let create ?(vnodes = default_vnodes) engine shards =
  if Array.length shards = 0 then invalid_arg "Farm.create: empty shard pool";
  if vnodes <= 0 then invalid_arg "Farm.create: vnodes must be positive";
  let n = Array.length shards in
  let ring =
    Array.init (n * vnodes) (fun i ->
        let shard = i / vnodes and v = i mod vnodes in
        (hash_key (Printf.sprintf "shard-%d#%d" shard v), shard))
  in
  Array.sort compare ring;
  {
    engine;
    shards;
    ring;
    health = Array.map (fun s -> Simnet.Host.is_up s.Node.host) shards;
    requests = 0;
    failovers = 0;
    unavailable = 0;
  }

let size t = Array.length t.shards
let shard t i = t.shards.(i)

(* Index of the first ring slot at or clockwise-after the key's point. *)
let ring_position t key =
  let h = hash_key key in
  let n = Array.length t.ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.ring.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let owner t key = snd t.ring.(ring_position t key)

(* Distinct shards in ring order starting at the key's owner — the
   failover preference order for that key. *)
let preference_order t key =
  let n = Array.length t.ring in
  let start = ring_position t key in
  let seen = Array.make (Array.length t.shards) false in
  let order = ref [] in
  for i = 0 to n - 1 do
    let s = snd t.ring.((start + i) mod n) in
    if not seen.(s) then begin
      seen.(s) <- true;
      order := s :: !order
    end
  done;
  List.rev !order

let health t =
  Array.iteri
    (fun i s -> t.health.(i) <- Simnet.Host.is_up s.Node.host)
    t.shards;
  Array.copy t.health

(* Farm-wide aggregates over the per-shard counters. *)
let sum f t = Array.fold_left (fun acc s -> acc + f s) 0 t.shards
let pipeline_runs t = sum (fun s -> s.Node.pipeline_runs) t
let coalesced t = sum (fun s -> s.Node.coalesced) t
let l2_hits t = sum (fun s -> s.Node.l2_hits) t
let origin_fetches t = sum (fun s -> s.Node.origin_fetches) t
let bytes_served t = sum (fun s -> s.Node.bytes_served) t

let cpu_us t =
  Array.fold_left (fun acc s -> Int64.add acc s.Node.cpu_us) 0L t.shards

let request t ~cls k =
  t.requests <- t.requests + 1;
  (* Walk the key's preference order; a shard down at dispatch (or
     crashing with the request in flight, via [on_fail]) hands the
     request to the next distinct live shard on the ring. *)
  let rec dispatch ~first = function
    | [] ->
      t.unavailable <- t.unavailable + 1;
      Telemetry.Global.incr "farm.unavailable";
      Simnet.Engine.schedule t.engine ~delay:0L (fun () -> k Node.Unavailable)
    | s :: rest ->
      let p = t.shards.(s) in
      if not (Simnet.Host.is_up p.Node.host) then begin
        t.health.(s) <- false;
        dispatch ~first:false rest
      end
      else begin
        t.health.(s) <- true;
        if not first then begin
          t.failovers <- t.failovers + 1;
          Telemetry.Global.incr "farm.failovers"
        end;
        Node.request p ~cls k ~on_fail:(fun () ->
            t.health.(s) <- false;
            dispatch ~first:false rest)
      end
  in
  dispatch ~first:true (preference_order t cls)
