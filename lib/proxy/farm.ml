(* A sharded proxy farm: N independent proxy nodes behind one facade,
   with class keys spread across the shards by consistent hashing.

   Each shard is a full [Node.t] — its own host, CPU accounting and L1
   cache — so adding shards multiplies pipeline capacity and, more
   importantly for Figure 10, divides the per-client memory load that
   pushes a single proxy past its thrashing knee. The ring uses
   virtual nodes so key ownership stays balanced at small shard
   counts, and failover walks the ring clockwise to the next distinct
   live shard — exactly the preference order consistent hashing gives
   for free — reusing the per-request [on_fail] health machinery the
   replica facade introduced.

   Determinism: ownership is a pure function of (key, shard count,
   vnodes), dispatch does no random choice and touches no hash-table
   iteration order, so the same seed yields the same event trace; and
   because the pipeline is pure, the bytes a class rewrites to are
   identical no matter which shard served it. *)

type t = {
  engine : Simnet.Engine.t;
  shards : Node.t array;
  ring : (int * int) array; (* (point, shard index), sorted by point *)
  health : bool array; (* last observed per-shard state, for the console *)
  breakers : Breaker.t array; (* per-shard circuit breaker, ruling routing *)
  mutable requests : int;
  mutable failovers : int; (* requests served by a non-owner shard *)
  mutable unavailable : int; (* requests no shard could serve *)
  mutable overloaded : int; (* requests a shard shed at admission *)
  mutable breaker_skips : int; (* dispatch candidates skipped open-breaker *)
}

(* FNV-1a, 64-bit. Cheap, seedless, and stable across runs — unlike
   [Hashtbl.hash] no randomization flag can perturb it. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash_key (s : string) : int =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  (* Keep it a nonnegative OCaml int: drop the top two bits. *)
  Int64.to_int (Int64.shift_right_logical !h 2)

let default_vnodes = 64

let create ?(vnodes = default_vnodes) ?breaker engine shards =
  if Array.length shards = 0 then invalid_arg "Farm.create: empty shard pool";
  if vnodes <= 0 then invalid_arg "Farm.create: vnodes must be positive";
  let n = Array.length shards in
  let ring =
    Array.init (n * vnodes) (fun i ->
        let shard = i / vnodes and v = i mod vnodes in
        (hash_key (Printf.sprintf "shard-%d#%d" shard v), shard))
  in
  Array.sort compare ring;
  let mk_breaker =
    match breaker with Some f -> f | None -> fun _ -> Breaker.create ()
  in
  {
    engine;
    shards;
    ring;
    health = Array.map (fun s -> Simnet.Host.is_up s.Node.host) shards;
    breakers = Array.init n mk_breaker;
    requests = 0;
    failovers = 0;
    unavailable = 0;
    overloaded = 0;
    breaker_skips = 0;
  }

let size t = Array.length t.shards
let shard t i = t.shards.(i)

(* Index of the first ring slot at or clockwise-after the key's point. *)
let ring_position t key =
  let h = hash_key key in
  let n = Array.length t.ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.ring.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let owner t key = snd t.ring.(ring_position t key)

(* Distinct shards in ring order starting at the key's owner — the
   failover preference order for that key. *)
let preference_order t key =
  let n = Array.length t.ring in
  let start = ring_position t key in
  let seen = Array.make (Array.length t.shards) false in
  let order = ref [] in
  for i = 0 to n - 1 do
    let s = snd t.ring.((start + i) mod n) in
    if not seen.(s) then begin
      seen.(s) <- true;
      order := s :: !order
    end
  done;
  List.rev !order

let health t =
  Array.iteri
    (fun i s -> t.health.(i) <- Simnet.Host.is_up s.Node.host)
    t.shards;
  Array.copy t.health

let breaker t i = t.breakers.(i)

(* Health with hysteresis: each probe feeds the raw host state through
   the shard's breaker and reports what routing will actually do. A
   flapping host (up on one probe, down on the next) flips the raw
   [health] view every time, but after enough windowed failures its
   breaker opens and [probe] holds the shard out — steadily — until the
   cooldown expires and probes prove it stable again. *)
let probe t =
  let now = Simnet.Engine.now t.engine in
  Array.mapi
    (fun i s ->
      let b = t.breakers.(i) in
      match Breaker.state b ~now with
      | Breaker.Open -> false
      | Breaker.Closed | Breaker.Half_open ->
        let up = Simnet.Host.is_up s.Node.host in
        if up then Breaker.record_success b ~now
        else Breaker.record_failure b ~now;
        t.health.(i) <- up;
        up && Breaker.state b ~now <> Breaker.Open)
    t.shards

(* Farm-wide aggregates over the per-shard counters. *)
let sum f t = Array.fold_left (fun acc s -> acc + f s) 0 t.shards
let pipeline_runs t = sum (fun s -> s.Node.pipeline_runs) t
let coalesced t = sum (fun s -> s.Node.coalesced) t
let l2_hits t = sum (fun s -> s.Node.l2_hits) t
let origin_fetches t = sum (fun s -> s.Node.origin_fetches) t
let bytes_served t = sum (fun s -> s.Node.bytes_served) t

let cpu_us t =
  Array.fold_left (fun acc s -> Int64.add acc s.Node.cpu_us) 0L t.shards

(* Drop the first [n] elements (shorter than the list). *)
let rec drop n = function
  | rest when n <= 0 -> rest
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

(* The edge's name in distributed traces — the routing tier is one
   logical hop in front of the shards. *)
let edge = "edge"

let request ?deadline ?(offset = 0) ?(trace = Telemetry.Trace.none) t ~cls k =
  t.requests <- t.requests + 1;
  let sp =
    Telemetry.Trace.start trace ~node:edge
      ~args:
        (("class", cls)
        :: (if offset > 0 then [ ("hedge_offset", string_of_int offset) ] else []))
      "farm.route"
  in
  let tctx = Telemetry.Trace.ctx_of sp in
  let k reply =
    Telemetry.Trace.finish sp;
    k reply
  in
  (* A breaker trip is a routing decision worth explaining: attach it
     to the request whose failure tipped the window. *)
  let record_failure_traced ~shard b ~now ~why =
    let before = Breaker.trips b in
    Breaker.record_failure b ~now;
    if Breaker.trips b > before then
      Telemetry.Trace.event tctx ~node:edge ~kind:"breaker.trip"
        (Printf.sprintf "shard %d breaker opened (%s)" shard why)
  in
  (* Walk the key's preference order; a shard whose breaker is open is
     skipped without even probing its host, a shard down at dispatch
     (or crashing with the request in flight, via [on_fail]) feeds its
     breaker a failure and hands the request to the next distinct live
     shard on the ring. [offset] starts the walk [offset] places past
     the owner — how a hedged request targets the next shard in ring
     order without re-deriving the ring. An [Overloaded] reply
     propagates to the caller with {e no} failover and no breaker
     failure: shedding is the shard protecting itself, and bouncing
     the same work to its neighbours would amplify the overload. *)
  let rec dispatch ~first = function
    | [] ->
      t.unavailable <- t.unavailable + 1;
      Telemetry.Global.incr "farm.unavailable";
      Telemetry.Trace.event tctx ~node:edge ~kind:"farm.unavailable"
        (Printf.sprintf "class %s: no live shard on the ring" cls);
      Simnet.Engine.schedule t.engine ~delay:0L (fun () -> k Node.Unavailable)
    | s :: rest ->
      let p = t.shards.(s) in
      let b = t.breakers.(s) in
      if not (Breaker.allow b ~now:(Simnet.Engine.now t.engine)) then begin
        t.breaker_skips <- t.breaker_skips + 1;
        Telemetry.Global.incr "farm.breaker_skips";
        Telemetry.Trace.event tctx ~node:edge ~kind:"farm.breaker_skip"
          (Printf.sprintf "shard %d skipped: breaker open" s);
        dispatch ~first rest
      end
      else if not (Simnet.Host.is_up p.Node.host) then begin
        t.health.(s) <- false;
        record_failure_traced ~shard:s b
          ~now:(Simnet.Engine.now t.engine)
          ~why:"down at dispatch";
        dispatch ~first:false rest
      end
      else begin
        t.health.(s) <- true;
        if not first then begin
          t.failovers <- t.failovers + 1;
          Telemetry.Global.incr "farm.failovers";
          Telemetry.Trace.event tctx ~node:edge ~kind:"farm.failover"
            (Printf.sprintf "class %s rerouted to shard %d" cls s)
        end;
        Node.request p ?deadline ~trace:tctx ~cls
          (fun reply ->
            (match reply with
            | Node.Bytes _ | Node.Not_found ->
              Breaker.record_success b ~now:(Simnet.Engine.now t.engine)
            | Node.Overloaded -> t.overloaded <- t.overloaded + 1
            | Node.Unavailable -> ());
            k reply)
          ~on_fail:(fun () ->
            t.health.(s) <- false;
            record_failure_traced ~shard:s b
              ~now:(Simnet.Engine.now t.engine)
              ~why:"crashed in flight";
            dispatch ~first:false rest)
      end
  in
  dispatch ~first:(offset = 0) (drop offset (preference_order t cls))
