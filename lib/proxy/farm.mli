(** A sharded proxy farm behind one facade.

    Class keys are spread across N independent proxy shards by
    consistent hashing (FNV-1a over a ring with virtual nodes). Each
    shard is a full {!Node.t} with its own host, CPU accounting and L1
    cache; an optional shared L2 is wired per-shard at
    {!Node.create}. Failover walks the ring to the next distinct live
    shard. Counters: [farm.failovers], [farm.unavailable]. *)

type t = {
  engine : Simnet.Engine.t;
  shards : Node.t array;
  ring : (int * int) array;  (** (point, shard index), sorted *)
  health : bool array;  (** last observed per-shard state *)
  breakers : Breaker.t array;  (** per-shard circuit breaker, ruling routing *)
  mutable requests : int;
  mutable failovers : int;  (** requests served by a non-owner shard *)
  mutable unavailable : int;  (** requests no shard could serve *)
  mutable overloaded : int;  (** requests a shard shed at admission *)
  mutable breaker_skips : int;  (** dispatch candidates skipped open-breaker *)
}

val hash_key : string -> int
(** FNV-1a 64-bit, truncated to a nonnegative OCaml int. Stable
    across runs (no randomization), so ownership is reproducible. *)

val default_vnodes : int

val create :
  ?vnodes:int -> ?breaker:(int -> Breaker.t) -> Simnet.Engine.t ->
  Node.t array -> t
(** The shard pool must be non-empty. [vnodes] (default 64) virtual
    ring points per shard keep ownership balanced at small counts.
    [breaker] builds shard [i]'s circuit breaker (default
    [Breaker.create ()] for every shard). *)

val size : t -> int
val shard : t -> int -> Node.t

val owner : t -> string -> int
(** The shard index owning a key — a pure function of
    (key, shard count, vnodes), independent of health. *)

val preference_order : t -> string -> int list
(** Distinct shards in ring order starting at the key's owner: the
    failover order {!request} walks. *)

val health : t -> bool array
(** Probe every shard host and return the raw up/down view — no
    hysteresis; a flapping host flips this every probe. Routing and
    {!probe} go through the breakers instead. *)

val breaker : t -> int -> Breaker.t

val probe : t -> bool array
(** Health with hysteresis: feed each shard's current host state
    through its breaker and report whether routing would use it. A
    flapping host stops flipping this view once its breaker's failure
    window fills — it reads [false] until the cooldown expires and
    probes prove it stable. *)

val pipeline_runs : t -> int
val coalesced : t -> int
val l2_hits : t -> int
val origin_fetches : t -> int
val bytes_served : t -> int
val cpu_us : t -> int64

val request :
  ?deadline:int64 -> ?offset:int -> ?trace:Telemetry.Trace.ctx -> t ->
  cls:string -> (Node.reply -> unit) -> unit
(** [trace] nests the routing hop (an "edge" span, plus failover /
    breaker / shed reason events) under the caller's distributed
    trace. Route to the key's owner with ring-order failover; replies
    [Unavailable] (after one simulated-time hop) when every candidate
    is down or breaker-barred. Open-breaker shards are skipped without
    probing; a dispatch-time-down or mid-flight crash feeds the
    shard's breaker a failure. [deadline] (absolute virtual µs) is
    handed to the shard's admission control; an [Overloaded] shed
    propagates with no failover — bouncing shed work to neighbours
    would amplify the overload. [offset] starts the walk [offset]
    places past the owner in the key's preference order — how a hedged
    request targets the next shard in ring order. *)
