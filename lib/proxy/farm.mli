(** A sharded proxy farm behind one facade.

    Class keys are spread across N independent proxy shards by
    consistent hashing (FNV-1a over a ring with virtual nodes). Each
    shard is a full {!Node.t} with its own host, CPU accounting and L1
    cache; an optional shared L2 is wired per-shard at
    {!Node.create}. Failover walks the ring to the next distinct live
    shard. Counters: [farm.failovers], [farm.unavailable]. *)

type t = {
  engine : Simnet.Engine.t;
  shards : Node.t array;
  ring : (int * int) array;  (** (point, shard index), sorted *)
  health : bool array;  (** last observed per-shard state *)
  mutable requests : int;
  mutable failovers : int;  (** requests served by a non-owner shard *)
  mutable unavailable : int;  (** requests no shard could serve *)
}

val hash_key : string -> int
(** FNV-1a 64-bit, truncated to a nonnegative OCaml int. Stable
    across runs (no randomization), so ownership is reproducible. *)

val default_vnodes : int

val create : ?vnodes:int -> Simnet.Engine.t -> Node.t array -> t
(** The shard pool must be non-empty. [vnodes] (default 64) virtual
    ring points per shard keep ownership balanced at small counts. *)

val size : t -> int
val shard : t -> int -> Node.t

val owner : t -> string -> int
(** The shard index owning a key — a pure function of
    (key, shard count, vnodes), independent of health. *)

val preference_order : t -> string -> int list
(** Distinct shards in ring order starting at the key's owner: the
    failover order {!request} walks. *)

val health : t -> bool array
(** Probe every shard host and return the refreshed view. *)

val pipeline_runs : t -> int
val coalesced : t -> int
val l2_hits : t -> int
val origin_fetches : t -> int
val bytes_served : t -> int
val cpu_us : t -> int64

val request : t -> cls:string -> (Node.reply -> unit) -> unit
(** Route to the key's owner with ring-order failover; replies
    [Unavailable] (after one simulated-time hop) when every shard is
    down. *)
