(* The proxy's wire protocol.

   The paper's proxy is an HTTP proxy (the evaluation runs it in front
   of Netscape Enterprise); this is the minimal HTTP/1.0-shaped framing
   the reproduction's clients and proxies exchange: a GET line naming
   the class resource, and a status response with a Content-Length
   body. The framing exists so that byte volumes on the wire include
   protocol overhead and so malformed requests have somewhere to be
   rejected. *)

exception Bad_message of string

let fail fmt = Format.kasprintf (fun s -> raise (Bad_message s)) fmt

let crlf = "\r\n"

(* --- Requests. --- *)

let encode_request ?deadline_us ~cls () =
  match deadline_us with
  | None -> Printf.sprintf "GET /%s DVM/1.0%s%s" cls crlf crlf
  | Some d -> Printf.sprintf "GET /%s DVM/1.0%sDeadline-Us: %Ld%s%s" cls crlf d crlf crlf

(* A request is the GET line, optionally one [Deadline-Us] header (the
   client's absolute deadline on the virtual clock, which admission
   control sheds against), and the blank-line terminator. Framing
   stays strict: a lone "\r" is truncated, anything after the
   terminator is garbage, and an unknown header is rejected rather
   than skipped — there is exactly one wire dialect. *)
let decode_request_deadline (data : string) : string * int64 option =
  match String.index_opt data '\r' with
  | None -> fail "no request line terminator"
  | Some eol ->
    if eol + 2 > String.length data || data.[eol + 1] <> '\n' then
      fail "missing blank-line terminator after request line";
    let cls =
      let line = String.sub data 0 eol in
      match String.split_on_char ' ' line with
      | [ "GET"; path; "DVM/1.0" ] ->
        if String.length path < 2 || path.[0] <> '/' then
          fail "bad request path %S" path
        else String.sub path 1 (String.length path - 1)
      | _ -> fail "malformed request line %S" line
    in
    let rest_start = eol + 2 in
    let expect_end ~from deadline =
      if from + 2 > String.length data || data.[from] <> '\r' || data.[from + 1] <> '\n'
      then fail "missing blank-line terminator after request line";
      if String.length data <> from + 2 then
        fail "trailing garbage after request (%d extra bytes)"
          (String.length data - from - 2);
      (cls, deadline)
    in
    if
      rest_start + 2 <= String.length data
      && data.[rest_start] = '\r'
      && data.[rest_start + 1] = '\n'
    then expect_end ~from:rest_start None
    else begin
      (* One header line, which must be Deadline-Us. *)
      let heol =
        let rec go i =
          if i + 1 >= String.length data then
            fail "missing blank-line terminator after request line"
          else if data.[i] = '\r' && data.[i + 1] = '\n' then i
          else go (i + 1)
        in
        go rest_start
      in
      let header = String.sub data rest_start (heol - rest_start) in
      match String.index_opt header ':' with
      | Some c when String.sub header 0 c = "Deadline-Us" -> (
        let v = String.trim (String.sub header (c + 1) (String.length header - c - 1)) in
        match Int64.of_string_opt v with
        | Some d when Int64.compare d 0L >= 0 -> expect_end ~from:(heol + 2) (Some d)
        | Some _ | None -> fail "bad deadline %S" v)
      | _ -> fail "unknown request header %S" header
    end

let decode_request (data : string) : string = fst (decode_request_deadline data)

(* --- Responses. --- *)

type status = Ok_200 | Not_found_404 | Bad_request_400 | Overloaded_503

let status_code = function
  | Ok_200 -> 200
  | Not_found_404 -> 404
  | Bad_request_400 -> 400
  | Overloaded_503 -> 503

let status_of_code = function
  | 200 -> Ok_200
  | 404 -> Not_found_404
  | 400 -> Bad_request_400
  | 503 -> Overloaded_503
  | c -> fail "unknown status %d" c

let encode_response ~status ~body =
  Printf.sprintf "DVM/1.0 %d%sContent-Length: %d%s%s%s" (status_code status)
    crlf (String.length body) crlf crlf body

let decode_response (data : string) : status * string =
  let find_crlf from =
    let rec go i =
      if i + 1 >= String.length data then fail "truncated response"
      else if data.[i] = '\r' && data.[i + 1] = '\n' then i
      else go (i + 1)
    in
    go from
  in
  let eol1 = find_crlf 0 in
  let status =
    match String.split_on_char ' ' (String.sub data 0 eol1) with
    | [ "DVM/1.0"; code ] -> (
      match int_of_string_opt code with
      | Some c -> status_of_code c
      | None -> fail "bad status code %S" code)
    | _ -> fail "malformed status line"
  in
  let eol2 = find_crlf (eol1 + 2) in
  let header = String.sub data (eol1 + 2) (eol2 - eol1 - 2) in
  let len =
    match String.split_on_char ':' header with
    | [ "Content-Length"; v ] -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 0 -> n
      | Some _ | None -> fail "bad content length %S" v)
    | _ -> fail "missing Content-Length"
  in
  (* The header block must end with the blank-line separator
     ("\r\n\r\n") right here — anything else between the header and
     the body is garbage framing, not body bytes. *)
  if
    eol2 + 4 > String.length data
    || data.[eol2 + 2] <> '\r'
    || data.[eol2 + 3] <> '\n'
  then fail "missing blank-line separator after headers";
  let body_start = eol2 + 4 in
  if String.length data <> body_start + len then
    fail "body length mismatch (declared %d, present %d)" len
      (String.length data - body_start);
  (status, String.sub data body_start len)

(* Framing overhead in bytes for a response carrying [body_bytes] — the
   wire-volume correction network experiments can apply. *)
let response_overhead ~body_bytes =
  String.length (encode_response ~status:Ok_200 ~body:"") +
  (* Content-Length digits grow with the body *)
  String.length (string_of_int body_bytes) - 1

(* Serve one request against an origin-like lookup. *)
let serve lookup (raw_request : string) : string =
  match decode_request raw_request with
  | exception Bad_message m ->
    encode_response ~status:Bad_request_400 ~body:m
  | cls -> (
    match lookup cls with
    | Some body -> encode_response ~status:Ok_200 ~body
    | None -> encode_response ~status:Not_found_404 ~body:"")
