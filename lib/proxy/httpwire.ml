(* The proxy's wire protocol.

   The paper's proxy is an HTTP proxy (the evaluation runs it in front
   of Netscape Enterprise); this is the minimal HTTP/1.0-shaped framing
   the reproduction's clients and proxies exchange: a GET line naming
   the class resource, and a status response with a Content-Length
   body. The framing exists so that byte volumes on the wire include
   protocol overhead and so malformed requests have somewhere to be
   rejected. *)

exception Bad_message of string

let fail fmt = Format.kasprintf (fun s -> raise (Bad_message s)) fmt

let crlf = "\r\n"

(* Strict decimal parsing. The stdlib's [of_string] family accepts
   radix prefixes ("0x10", "0b101") and '_' separators ("1_000") —
   none of which are wire syntax. A numeric field is exactly one or
   more ASCII digits; anything else is a malformed message, and
   out-of-range digit strings fail the [of_string] overflow check. *)
let is_decimal s =
  String.length s > 0
  && String.for_all (function '0' .. '9' -> true | _ -> false) s

let decimal_int64_opt s = if is_decimal s then Int64.of_string_opt s else None
let decimal_int_opt s = if is_decimal s then int_of_string_opt s else None

(* --- Requests. --- *)

let encode_request ?deadline_us ?trace ~cls () =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "GET /%s DVM/1.0%s" cls crlf);
  (match deadline_us with
  | Some d -> Buffer.add_string b (Printf.sprintf "Deadline-Us: %Ld%s" d crlf)
  | None -> ());
  (match trace with
  | Some (tid, parent) ->
    Buffer.add_string b (Printf.sprintf "Trace-Id: %016Lx%s" tid crlf);
    Buffer.add_string b (Printf.sprintf "Parent-Span-Id: %d%s" parent crlf)
  | None -> ());
  Buffer.add_string b crlf;
  Buffer.contents b

type request = {
  rq_cls : string;
  rq_deadline_us : int64 option;
  rq_trace_id : int64 option;
  rq_parent_span : int option;
}

(* A request is the GET line, zero or more known headers —
   [Deadline-Us] (the client's absolute deadline on the virtual clock,
   which admission control sheds against), [Trace-Id] (16 hex digits
   naming the distributed trace) and [Parent-Span-Id] (the span the
   next hop nests under) — and the blank-line terminator. Old peers
   that send none of them still decode. Framing stays strict: a lone
   "\r" is truncated, anything after the terminator is garbage, a
   repeated or unknown header is rejected rather than skipped, and
   [Parent-Span-Id] without [Trace-Id] is an orphan — there is exactly
   one wire dialect. *)
let decode_request_full (data : string) : request =
  match String.index_opt data '\r' with
  | None -> fail "no request line terminator"
  | Some eol ->
    if eol + 2 > String.length data || data.[eol + 1] <> '\n' then
      fail "missing blank-line terminator after request line";
    let cls =
      let line = String.sub data 0 eol in
      match String.split_on_char ' ' line with
      | [ "GET"; path; "DVM/1.0" ] ->
        if String.length path < 2 || path.[0] <> '/' then
          fail "bad request path %S" path
        else String.sub path 1 (String.length path - 1)
      | _ -> fail "malformed request line %S" line
    in
    let deadline = ref None and trace_id = ref None and parent = ref None in
    let is_hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false in
    let set_once r name v =
      match !r with
      | Some _ -> fail "repeated header %s" name
      | None -> r := Some v
    in
    let header line =
      match String.index_opt line ':' with
      | None -> fail "malformed request header %S" line
      | Some c -> (
        let name = String.sub line 0 c in
        let v = String.trim (String.sub line (c + 1) (String.length line - c - 1)) in
        match name with
        | "Deadline-Us" -> (
          match decimal_int64_opt v with
          | Some d -> set_once deadline name d
          | None -> fail "bad deadline %S" v)
        | "Trace-Id" ->
          if String.length v <> 16 || not (String.for_all is_hex v) then
            fail "bad trace id %S" v;
          let id =
            match Int64.of_string_opt ("0x" ^ v) with
            | Some id -> id
            | None -> fail "bad trace id %S" v
          in
          if Int64.equal id 0L then fail "bad trace id %S" v;
          set_once trace_id name id
        | "Parent-Span-Id" -> (
          match decimal_int_opt v with
          | Some p -> set_once parent name p
          | None -> fail "bad parent span id %S" v)
        | _ -> fail "unknown request header %S" line)
    in
    let rec headers from =
      if from + 2 > String.length data then
        fail "missing blank-line terminator after request line"
      else if data.[from] = '\r' && data.[from + 1] = '\n' then begin
        if String.length data <> from + 2 then
          fail "trailing garbage after request (%d extra bytes)"
            (String.length data - from - 2)
      end
      else begin
        let heol =
          let rec go i =
            if i + 1 >= String.length data then
              fail "missing blank-line terminator after request line"
            else if data.[i] = '\r' && data.[i + 1] = '\n' then i
            else go (i + 1)
          in
          go from
        in
        header (String.sub data from (heol - from));
        headers (heol + 2)
      end
    in
    headers (eol + 2);
    if !parent <> None && !trace_id = None then
      fail "Parent-Span-Id without Trace-Id";
    {
      rq_cls = cls;
      rq_deadline_us = !deadline;
      rq_trace_id = !trace_id;
      rq_parent_span = !parent;
    }

let decode_request_deadline (data : string) : string * int64 option =
  let r = decode_request_full data in
  (r.rq_cls, r.rq_deadline_us)

let decode_request (data : string) : string = (decode_request_full data).rq_cls

(* --- Responses. --- *)

type status = Ok_200 | Not_found_404 | Bad_request_400 | Overloaded_503

let status_code = function
  | Ok_200 -> 200
  | Not_found_404 -> 404
  | Bad_request_400 -> 400
  | Overloaded_503 -> 503

let status_of_code = function
  | 200 -> Ok_200
  | 404 -> Not_found_404
  | 400 -> Bad_request_400
  | 503 -> Overloaded_503
  | c -> fail "unknown status %d" c

(* One buffer reused across encodes: the proxy re-frames every served
   class, so the staging bytes are written once into [scratch] and
   copied out exactly once by [Buffer.contents] — no sprintf
   intermediates. Single-threaded (the simulator is), like every other
   service-side scratch structure here. *)
let scratch = Buffer.create 256

let encode_response_into b ~status ~body =
  Buffer.add_string b "DVM/1.0 ";
  Buffer.add_string b (string_of_int (status_code status));
  Buffer.add_string b crlf;
  Buffer.add_string b "Content-Length: ";
  Buffer.add_string b (string_of_int (String.length body));
  Buffer.add_string b crlf;
  Buffer.add_string b crlf;
  Buffer.add_string b body

let encode_response ~status ~body =
  Buffer.clear scratch;
  encode_response_into scratch ~status ~body;
  Buffer.contents scratch

(* Decode to a body *view* — offset and length into the wire bytes —
   so the body is not copied until (unless) someone actually needs it
   as a standalone string. *)
let decode_response_view (data : string) : status * (int * int) =
  let find_crlf from =
    let rec go i =
      if i + 1 >= String.length data then fail "truncated response"
      else if data.[i] = '\r' && data.[i + 1] = '\n' then i
      else go (i + 1)
    in
    go from
  in
  let eol1 = find_crlf 0 in
  let status =
    match String.split_on_char ' ' (String.sub data 0 eol1) with
    | [ "DVM/1.0"; code ] -> (
      match decimal_int_opt code with
      | Some c -> status_of_code c
      | None -> fail "bad status code %S" code)
    | _ -> fail "malformed status line"
  in
  let eol2 = find_crlf (eol1 + 2) in
  let header = String.sub data (eol1 + 2) (eol2 - eol1 - 2) in
  let len =
    match String.split_on_char ':' header with
    | [ "Content-Length"; v ] -> (
      match decimal_int_opt (String.trim v) with
      | Some n -> n
      | None -> fail "bad content length %S" v)
    | _ -> fail "missing Content-Length"
  in
  (* The header block must end with the blank-line separator
     ("\r\n\r\n") right here — anything else between the header and
     the body is garbage framing, not body bytes. *)
  if
    eol2 + 4 > String.length data
    || data.[eol2 + 2] <> '\r'
    || data.[eol2 + 3] <> '\n'
  then fail "missing blank-line separator after headers";
  let body_start = eol2 + 4 in
  if String.length data <> body_start + len then
    fail "body length mismatch (declared %d, present %d)" len
      (String.length data - body_start);
  (status, (body_start, len))

let decode_response (data : string) : status * string =
  let status, (off, len) = decode_response_view data in
  (status, String.sub data off len)

(* Framing overhead in bytes for a response carrying [body_bytes] — the
   wire-volume correction network experiments can apply. *)
let response_overhead ~body_bytes =
  String.length (encode_response ~status:Ok_200 ~body:"") +
  (* Content-Length digits grow with the body *)
  String.length (string_of_int body_bytes) - 1

(* Serve one request against an origin-like lookup. *)
let serve lookup (raw_request : string) : string =
  match decode_request raw_request with
  | exception Bad_message m ->
    encode_response ~status:Bad_request_400 ~body:m
  | cls -> (
    match lookup cls with
    | Some body -> encode_response ~status:Ok_200 ~body
    | None -> encode_response ~status:Not_found_404 ~body:"")
