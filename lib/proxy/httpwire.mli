(** The proxy's wire protocol: minimal HTTP/1.0-shaped framing (the
    paper's proxy is an HTTP proxy). Requests name a class resource;
    responses carry a status and Content-Length body. *)

exception Bad_message of string

val encode_request :
  ?deadline_us:int64 -> ?trace:int64 * int -> cls:string -> unit -> string
(** [deadline_us] adds a [Deadline-Us] header: the client's absolute
    deadline on the virtual clock, which proxy admission control sheds
    against. [trace] adds [Trace-Id] (16 hex digits) and
    [Parent-Span-Id] headers carrying the distributed-trace context. *)

type request = {
  rq_cls : string;
  rq_deadline_us : int64 option;
  rq_trace_id : int64 option;
  rq_parent_span : int option;
}

val decode_request_full : string -> request
(** Strict multi-header decode: the three known headers each at most
    once, no unknown headers, no trailing garbage, [Parent-Span-Id]
    only alongside [Trace-Id]. Requests from old peers carrying no
    headers still decode.
    @raise Bad_message on malformed input. *)

val decode_request : string -> string
(** @raise Bad_message on malformed input. *)

val decode_request_deadline : string -> string * int64 option
(** Like {!decode_request}, also returning the carried deadline.
    @raise Bad_message on malformed input. *)

type status = Ok_200 | Not_found_404 | Bad_request_400 | Overloaded_503

val status_code : status -> int
val encode_response : status:status -> body:string -> string

val encode_response_into : Buffer.t -> status:status -> body:string -> unit
(** Append the framed response to [b] — the allocation-free form
    {!encode_response} itself uses (with a reused staging buffer). *)

val decode_response : string -> status * string

val decode_response_view : string -> status * (int * int)
(** Like {!decode_response}, but the body is returned as an
    [(offset, length)] view into the input — no copy until a caller
    actually materializes it.
    @raise Bad_message on malformed input. *)

val response_overhead : body_bytes:int -> int

val serve : (string -> string option) -> string -> string
(** One request/response exchange over an origin-like lookup;
    malformed requests get a 400. *)
