(* The transparent network proxy hosting the static service components
   (§2–§3): it intercepts class requests from clients, fetches from the
   origin (an Internet web server or an intranet file store), runs the
   filter pipeline once per class, signs the result, caches it, and
   leaves an audit trail for the administration console.

   Placement mirrors the paper: the proxy sits at the organization's
   trust boundary on a physically secure host. Its CPU serializes
   pipeline work and its memory holds per-request working state — the
   resource model behind the Figure 10 scaling experiment.

   This module is the single-node implementation; [Proxy] re-exports it
   and [Farm] composes several nodes behind a consistent-hash ring. *)

type reply = Bytes of string | Not_found | Unavailable | Overloaded

type origin = string -> string option

(* A request that joined an in-flight single-flight run: its own
   completion callback and failure hook, fired when the leader's
   pipeline run settles. *)
type waiter = (reply -> unit) * (unit -> unit) option

type t = {
  engine : Simnet.Engine.t;
  host : Simnet.Host.t;
  cache : Cache.t; (* the shard's own L1 *)
  l2 : Cache.t option; (* optional shared tier, one instance per farm *)
  l2_lookup_us : int;
  l2_bandwidth_bps : int; (* peer-to-peer transfer rate for L2 hits *)
  mutable filters : Rewrite.Filter.t list;
  mutable policy_version : int;
  (* Security-policy version this shard currently rewrites under;
     stamped onto pipeline runs and every L1/L2 entry (0 =
     unversioned, the pre-control-plane behaviour). The control
     plane's apply hook swaps [filters] and bumps this together. *)
  mutable serving_allowed : unit -> bool;
  (* Control-plane fence: when false the node refuses to serve —
     requests take the [on_fail] path exactly like a crashed host, so
     the farm fails over. Wired to [Control.member_ok]; defaults to
     always-true for standalone nodes. *)
  origin : origin;
  origin_latency : string -> Simnet.Engine.time; (* per-class WAN latency *)
  origin_bandwidth_bps : int;
  signer : Dsig.Sign.key option;
  memo : Pipeline.Memo.t option; (* optional host-CPU outcome memo *)
  audit : Monitor.Audit.t option;
  (* Parsed working state per in-flight request: buffers for the raw
     bytes, the decoded image and the output. *)
  working_set_factor : int;
  (* Single-flight: concurrent misses for the same key join the run
     already in flight instead of re-parsing. The table maps keys with
     a pipeline run in flight to the requests that joined it. *)
  inflight : (string, waiter list ref) Hashtbl.t;
  admission : Admission.t;
  mutable requests : int;
  mutable rejections : int;
  mutable bytes_served : int;
  mutable origin_fetches : int;
  mutable pipeline_runs : int; (* full parse/rewrite/generate passes *)
  mutable coalesced : int; (* requests that joined an in-flight run *)
  mutable l2_hits : int; (* misses served by the shared tier *)
  mutable fenced_rejects : int; (* requests refused by the control-plane fence *)
  mutable cpu_us : int64; (* total pipeline + cache-service CPU *)
}

let create ?(cache_capacity = 48 * 1024 * 1024)
    ?(mem_capacity = 64 * 1024 * 1024) ?signer ?audit
    ?(origin_bandwidth_bps = 100_000_000) ?(working_set_factor = 12)
    ?(cpu_factor = 1.0) ?(host_name = "proxy") ?l2 ?memo
    ?(l2_lookup_us = 1500) ?(l2_bandwidth_bps = 100_000_000) ?admission engine
    ~origin ~origin_latency ~filters () =
  {
    engine;
    host =
      Simnet.Host.create ~cpu_factor ~mem_capacity engine ~name:host_name;
    cache = Cache.create ~capacity:cache_capacity;
    l2;
    l2_lookup_us;
    l2_bandwidth_bps;
    filters;
    policy_version = 0;
    serving_allowed = (fun () -> true);
    origin;
    origin_latency;
    origin_bandwidth_bps;
    signer;
    memo;
    audit;
    working_set_factor;
    inflight = Hashtbl.create 32;
    admission =
      (match admission with Some a -> a | None -> Admission.create ());
    requests = 0;
    rejections = 0;
    bytes_served = 0;
    origin_fetches = 0;
    pipeline_runs = 0;
    coalesced = 0;
    l2_hits = 0;
    fenced_rejects = 0;
    cpu_us = 0L;
  }

let log t kind detail =
  match t.audit with
  | None -> ()
  | Some a ->
    Monitor.Audit.append a ~time:(Simnet.Engine.now t.engine) ~session:0 ~kind
      ~detail

(* Process fetched bytes through the pipeline on the proxy CPU, then
   deliver. *)
let transform_and_reply ?on_fail ?(trace = Telemetry.Trace.none) t ~cls bytes k
    =
  let ws = t.working_set_factor * String.length bytes in
  Simnet.Host.allocate t.host ws;
  let on_fail =
    Option.map (fun f () -> Simnet.Host.release t.host ws; f ()) on_fail
  in
  (* The pipeline itself runs synchronously (it is pure CPU work); its
     cost occupies the host CPU in simulated time. The trace scope
     makes the pipeline's telemetry spans leaves of the request's
     distributed trace. *)
  t.pipeline_runs <- t.pipeline_runs + 1;
  let outcome =
    Telemetry.Trace.scope trace ~node:t.host.Simnet.Host.name (fun () ->
        Telemetry.Global.with_span ~cat:"proxy" ~args:[ ("class", cls) ]
          "proxy.transform" (fun () ->
            Pipeline.run ~policy_version:t.policy_version ?memo:t.memo
              ?signer:t.signer t.filters bytes))
  in
  let sign_cost =
    match t.signer with
    | None -> 0L
    | Some _ ->
      Int64.of_int
        (Dsig.Sign.sign_cost_us ~bytes:(String.length outcome.Pipeline.out_bytes))
  in
  if Int64.compare sign_cost 0L > 0 then
    Telemetry.Global.observe "pipeline.sign_us" sign_cost;
  let cost = Int64.add (Pipeline.total_cost outcome) sign_cost in
  t.cpu_us <- Int64.add t.cpu_us cost;
  Simnet.Host.compute t.host ?on_fail ~cost_us:cost (fun () ->
      Simnet.Host.release t.host ws;
      (match outcome.Pipeline.rejected with
      | Some (filter, reason) ->
        t.rejections <- t.rejections + 1;
        log t "proxy.reject" (Printf.sprintf "%s: %s (%s)" cls reason filter)
      | None -> log t "proxy.serve" cls);
      let out = outcome.Pipeline.out_bytes in
      let version = outcome.Pipeline.out_version in
      Cache.store ~version t.cache cls out;
      (* The shared tier keeps the rewritten class even if this shard
         later restarts cache-cold: peers (and the restarted shard)
         rewarm from it at transfer cost instead of re-running the
         pipeline. Both entries carry the policy version the bytes
         were rewritten under, so a later lookup under a newer policy
         treats them as misses instead of resurrecting stale code. *)
      (match t.l2 with None -> () | Some l2 -> Cache.store ~version l2 cls out);
      t.bytes_served <- t.bytes_served + String.length out;
      k (Bytes out))

(* Cost of serving a miss from the shared L2 tier: a fixed lookup plus
   the peer-to-peer transfer of the rewritten bytes — far cheaper than
   the pipeline, slightly dearer than the local disk cache. *)
let l2_transfer_cost t ~bytes =
  Int64.add
    (Int64.of_int t.l2_lookup_us)
    (Int64.of_float
       (Float.of_int bytes *. 8.0 *. 1_000_000.0
       /. Float.of_int t.l2_bandwidth_bps))

(* Handle one client request for a class. The callback fires, in
   simulated time, when the proxy has the response ready to put on the
   client's wire (the caller models the client-side link). [on_fail]
   fires instead if the proxy host is down or crashes while the
   request is in flight — the hook the replica facade fails over on.

   Misses are single-flight: the first request for a key becomes the
   leader and runs the pipeline; concurrent requests for the same key
   join it and are settled — success or failure — when the leader's
   run settles. A crash mid-flight therefore fails every joined
   request at once (each through its own [on_fail]), and the in-flight
   entry is dropped so a retry after restart starts a fresh run. *)
let rec request ?on_fail ?deadline ?(trace = Telemetry.Trace.none) t ~cls k =
  t.requests <- t.requests + 1;
  if Telemetry.Global.on () then begin
    Telemetry.Global.incr "proxy.requests";
    Telemetry.Global.set_gauge "proxy.mem_pressure_x1000"
      (Int64.of_float (1000.0 *. Simnet.Host.mem_pressure t.host))
  end;
  let node = t.host.Simnet.Host.name in
  let sp =
    Telemetry.Trace.start trace ~node ~args:[ ("class", cls) ] "proxy.request"
  in
  let tctx = Telemetry.Trace.ctx_of sp in
  let k reply =
    Telemetry.Trace.finish sp;
    k reply
  in
  let on_fail =
    Option.map
      (fun f () ->
        Telemetry.Trace.finish sp;
        f ())
      on_fail
  in
  if not (Simnet.Host.is_up t.host) then
    match on_fail with
    | Some f -> Simnet.Engine.schedule t.engine ~delay:0L f
    | None -> ()
  else if not (t.serving_allowed ()) then begin
    (* Control-plane fence: the shard's lease lapsed (partition) or it
       is replaying the log after a restart. Serving now could hand
       out bytes rewritten under a revoked policy, so refuse and let
       the farm fail over — the same path as a crashed host. *)
    t.fenced_rejects <- t.fenced_rejects + 1;
    if Telemetry.Global.on () then Telemetry.Global.incr "control.fenced_rejects";
    (* mirrored 1:1 with the counter, like the control plane's own
       reason events; off-trace the line still reaches the recorder *)
    (if Telemetry.Trace.live tctx then
       Telemetry.Trace.event tctx ~node ~kind:"control.fenced_rejects"
         (Printf.sprintf "class %s: shard fenced, failing over" cls)
     else
       Telemetry.Flight.note
         ~at:(Simnet.Engine.now t.engine)
         ~node
         (Printf.sprintf "control.fenced_rejects class %s: shard fenced"
            cls));
    match on_fail with
    | Some f -> Simnet.Engine.schedule t.engine ~delay:0L f
    | None -> Simnet.Engine.schedule t.engine ~delay:0L (fun () -> k Unavailable)
  end
  else begin
    (* Admission: can this request finish inside its deadline given
       what the CPU is already committed to? The estimate peeks at the
       cache (without perturbing it) to pick the hit or miss cost and
       adds the CPU backlog the request would queue behind. Shedding
       happens here, before any work is scheduled — an [Overloaded]
       reply after one zero-delay hop, not a timeout downstream. *)
    let admit_at = Simnet.Engine.now t.engine in
    let backlog = Simnet.Host.backlog_us t.host in
    let is_hit = Cache.mem ~version:t.policy_version t.cache cls in
    let is_join = Hashtbl.mem t.inflight cls in
    let est_us =
      Int64.add backlog
        (if is_hit then 2000L else Admission.estimate_us t.admission)
    in
    match Admission.admit t.admission ~now:admit_at ~deadline ~est_us with
    | (Shed_queue | Shed_deadline) as verdict ->
      if Telemetry.Global.on () then Telemetry.Global.incr "proxy.overloaded";
      (* The reason event carries the shed's arithmetic, so a trace
         explains the 503 without correlating logs. *)
      Telemetry.Trace.event tctx ~node
        ~kind:
          (match verdict with
          | Admission.Shed_queue -> "admission.shed_queue"
          | _ -> "admission.shed_deadline")
        (Printf.sprintf "class %s: est %Ldus, deadline %s" cls est_us
           (match deadline with
           | Some d -> Printf.sprintf "%Ldus" d
           | None -> "none"));
      Simnet.Engine.schedule t.engine ~delay:0L (fun () -> k Overloaded)
    | Admit ->
      (* Balance the admit exactly once however the request settles.
         Misses (but not single-flight joins, which ride the leader's
         run) feed their service time — net of the backlog they merely
         waited out — back to the cost EWMA. *)
      let completed = ref false in
      let complete () =
        if not !completed then begin
          completed := true;
          let sample =
            if is_hit || is_join then None
            else
              let elapsed = Int64.sub (Simnet.Engine.now t.engine) admit_at in
              Some (Int64.max 0L (Int64.sub elapsed backlog))
          in
          Admission.complete ?sample t.admission
        end
      in
      let k reply = complete (); k reply in
      let on_fail =
        Some
          (fun () ->
            complete ();
            match on_fail with Some f -> f () | None -> ())
      in
      request_admitted ?on_fail ~trace:tctx t ~cls k
  end

(* The post-admission request path: cache lookup, single-flight join,
   L2, origin fetch + pipeline. *)
and request_admitted ?on_fail ~trace t ~cls k =
  let node = t.host.Simnet.Host.name in
  match Cache.find ~version:t.policy_version t.cache cls with
    | Some bytes ->
      (* A small fixed cost to look up and stream from the disk cache.
         Stats and the audit record land in the completion callback:
         at schedule time the response hasn't been served yet, and the
         audit timestamp must not lead the virtual clock (the miss
         path logs at pipeline completion). *)
      t.cpu_us <- Int64.add t.cpu_us 2000L;
      Simnet.Host.compute t.host ?on_fail ~cost_us:2000L (fun () ->
          t.bytes_served <- t.bytes_served + String.length bytes;
          log t "proxy.cache_hit" cls;
          k (Bytes bytes))
    | None -> (
      match Hashtbl.find_opt t.inflight cls with
      | Some waiters ->
        (* Join the pipeline run already in flight for this key. *)
        t.coalesced <- t.coalesced + 1;
        if Telemetry.Global.on () then Telemetry.Global.incr "proxy.coalesced";
        Telemetry.Trace.event trace ~node ~kind:"proxy.coalesce.join"
          (Printf.sprintf "class %s: joined %d in flight" cls
             (List.length !waiters + 1));
        waiters := (k, on_fail) :: !waiters
      | None -> (
        match
          match t.l2 with
          | None -> None
          | Some l2 -> Cache.find ~version:t.policy_version l2 cls
        with
        | Some bytes ->
          (* Shared-tier hit: pay the peer transfer, rewarm the L1. *)
          t.l2_hits <- t.l2_hits + 1;
          if Telemetry.Global.on () then Telemetry.Global.incr "proxy.l2_hits";
          Telemetry.Trace.event trace ~node ~kind:"proxy.l2_hit"
            (Printf.sprintf "class %s: %d bytes from shared tier" cls
               (String.length bytes));
          let cost = l2_transfer_cost t ~bytes:(String.length bytes) in
          t.cpu_us <- Int64.add t.cpu_us cost;
          Simnet.Host.compute t.host ?on_fail ~cost_us:cost (fun () ->
              Cache.store ~version:t.policy_version t.cache cls bytes;
              t.bytes_served <- t.bytes_served + String.length bytes;
              log t "proxy.l2_hit" cls;
              k (Bytes bytes))
        | None -> (
          match t.origin cls with
          | None ->
            Simnet.Host.compute t.host ?on_fail ~cost_us:500L (fun () ->
                log t "proxy.not_found" cls;
                k Not_found)
          | Some bytes ->
            (* Become the leader of a single-flight run. *)
            let waiters : waiter list ref = ref [] in
            Hashtbl.replace t.inflight cls waiters;
            let settle reply =
              Hashtbl.remove t.inflight cls;
              let joined = List.rev !waiters in
              let deliver () =
                k reply;
                List.iter (fun ((kw, _) : waiter) -> kw reply) joined
              in
              if joined = [] || not (Telemetry.Global.on ()) then deliver ()
              else
                Telemetry.Global.with_span ~cat:"proxy"
                  ~args:
                    [
                      ("class", cls);
                      ("waiters", string_of_int (List.length joined));
                    ]
                  "proxy.coalesce.fanout" deliver
            in
            let settle_fail () =
              Hashtbl.remove t.inflight cls;
              let joined = List.rev !waiters in
              (match on_fail with Some f -> f () | None -> ());
              List.iter
                (fun ((_, of_) : waiter) ->
                  match of_ with Some f -> f () | None -> ())
                joined
            in
            t.origin_fetches <- t.origin_fetches + 1;
            Telemetry.Global.incr "proxy.origin_fetches";
            let latency = t.origin_latency cls in
            let tx =
              Int64.of_float
                (Float.of_int (String.length bytes)
                *. 8.0 *. 1_000_000.0
                /. Float.of_int t.origin_bandwidth_bps)
            in
            Simnet.Engine.schedule t.engine ~delay:(Int64.add latency tx)
              (fun () ->
                transform_and_reply ~on_fail:settle_fail ~trace t ~cls bytes
                  settle))))

(* Synchronous variant for non-simulated use (unit tests, CLI): runs
   the pipeline immediately and returns the bytes. *)
let request_sync_raw t ~cls =
  t.requests <- t.requests + 1;
  match Cache.find ~version:t.policy_version t.cache cls with
  | Some bytes ->
    t.cpu_us <- Int64.add t.cpu_us 2000L;
    t.bytes_served <- t.bytes_served + String.length bytes;
    Bytes bytes
  | None -> (
    match
      match t.l2 with
      | None -> None
      | Some l2 -> Cache.find ~version:t.policy_version l2 cls
    with
    | Some bytes ->
      t.l2_hits <- t.l2_hits + 1;
      if Telemetry.Global.on () then Telemetry.Global.incr "proxy.l2_hits";
      t.cpu_us <-
        Int64.add t.cpu_us (l2_transfer_cost t ~bytes:(String.length bytes));
      Cache.store ~version:t.policy_version t.cache cls bytes;
      t.bytes_served <- t.bytes_served + String.length bytes;
      Bytes bytes
    | None -> (
      match t.origin cls with
      | None -> Not_found
      | Some bytes ->
        t.origin_fetches <- t.origin_fetches + 1;
        Telemetry.Global.incr "proxy.origin_fetches";
        t.pipeline_runs <- t.pipeline_runs + 1;
        let outcome =
          Pipeline.run ~policy_version:t.policy_version ?memo:t.memo
            ?signer:t.signer t.filters bytes
        in
        t.cpu_us <- Int64.add t.cpu_us (Pipeline.total_cost outcome);
        (match outcome.Pipeline.rejected with
        | Some _ -> t.rejections <- t.rejections + 1
        | None -> ());
        let version = outcome.Pipeline.out_version in
        Cache.store ~version t.cache cls outcome.Pipeline.out_bytes;
        (match t.l2 with
        | None -> ()
        | Some l2 -> Cache.store ~version l2 cls outcome.Pipeline.out_bytes);
        t.bytes_served <-
          t.bytes_served + String.length outcome.Pipeline.out_bytes;
        Bytes outcome.Pipeline.out_bytes))

let request_sync t ~cls =
  if not (Telemetry.Global.on ()) then request_sync_raw t ~cls
  else
    Telemetry.Global.with_span ~cat:"proxy" ~args:[ ("class", cls) ]
      ~observe_hist:"proxy.request_us" "proxy.request" (fun () ->
        Telemetry.Global.incr "proxy.requests";
        let reply = request_sync_raw t ~cls in
        (match reply with
        | Bytes b ->
          Telemetry.Global.add "proxy.bytes_served" (Int64.of_int (String.length b))
        | Not_found -> Telemetry.Global.incr "proxy.not_found"
        | Unavailable -> Telemetry.Global.incr "proxy.unavailable"
        | Overloaded -> Telemetry.Global.incr "proxy.overloaded");
        reply)

(* A classloading provider backed by the synchronous path — what a DVM
   client plugs into its registry. *)
let provider t : Jvm.Classreg.provider =
 fun cls ->
  match request_sync t ~cls with
  | Bytes b -> Some b
  | Not_found | Unavailable | Overloaded -> None

type proxy = t

(* Replicated proxies behind one facade (§5's availability answer to
   the single-point-of-failure critique): requests prefer the primary
   (replica 0) and fail over, in order, to the first live secondary
   when the preferred replica is down at dispatch or crashes with the
   request in flight. Health is probed against the replica host at
   every dispatch, so a restarted primary takes traffic back
   immediately — but cache-cold, which is the measurable price of
   failover the paper's §5 argument predicts. *)
module Replica = struct
  type t = {
    engine : Simnet.Engine.t;
    pool : proxy array;
    health : bool array; (* last observed state, for the console *)
    mutable requests : int;
    mutable failovers : int; (* requests served by a non-primary *)
    mutable unavailable : int; (* requests no replica could serve *)
  }

  let create engine pool =
    if Array.length pool = 0 then invalid_arg "Replica.create: empty pool";
    {
      engine;
      pool;
      health = Array.map (fun p -> Simnet.Host.is_up p.host) pool;
      requests = 0;
      failovers = 0;
      unavailable = 0;
    }

  let size t = Array.length t.pool
  let replica t i = t.pool.(i)

  let health t =
    Array.iteri (fun i p -> t.health.(i) <- Simnet.Host.is_up p.host) t.pool;
    Array.copy t.health

  let request t ~cls k =
    t.requests <- t.requests + 1;
    let n = Array.length t.pool in
    (* Try replicas starting from the primary; [idx] is the next
       candidate. A failed candidate is marked unhealthy and the next
       one pays the failover. *)
    let rec dispatch idx =
      if idx >= n then begin
        t.unavailable <- t.unavailable + 1;
        Telemetry.Global.incr "proxy.unavailable";
        Simnet.Engine.schedule t.engine ~delay:0L (fun () -> k Unavailable)
      end
      else begin
        let p = t.pool.(idx) in
        if not (Simnet.Host.is_up p.host) then begin
          t.health.(idx) <- false;
          dispatch (idx + 1)
        end
        else begin
          t.health.(idx) <- true;
          if idx > 0 then begin
            t.failovers <- t.failovers + 1;
            Telemetry.Global.incr "proxy.failovers"
          end;
          request p ~cls k ~on_fail:(fun () ->
              (* Crashed with the request in flight: fail over. *)
              t.health.(idx) <- false;
              dispatch (idx + 1))
        end
      end
    in
    dispatch 0
end
