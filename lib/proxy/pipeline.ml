(* The static-service pipeline (Figure 2): code flows through a stack
   of independent code-transformation filters. Parsing and code
   generation are performed once for all services; the filters operate
   on the parsed image. A rejection anywhere in the stack is converted
   into an error-propagation replacement class, so failures reach
   clients as ordinary Java exceptions. *)

type outcome = {
  out_bytes : string;
  out_version : int; (* policy version the class was rewritten under; 0 = unversioned *)
  rejected : (string * string) option; (* filter, reason *)
  parse_cost : int64; (* µs of proxy CPU *)
  transform_cost : int64;
  generate_cost : int64;
  parses : int; (* parse passes performed (1, or N in the ablation) *)
}

let total_cost o = Int64.add o.parse_cost (Int64.add o.transform_cost o.generate_cost)

(* Fingerprint of the rewritten bytes — what the farm's determinism
   checks compare across shard counts: the pipeline is a pure function
   of its input, so the same class must digest identically no matter
   which shard ran it. *)
let digest o = Dsig.Md5.digest o.out_bytes

(* Proxy cost model, in µs on the reference CPU. Calibrated against
   §4.1.2: parsing + instrumenting an average Internet applet costs
   ~265 ms. *)
let parse_us_per_byte = 12.0
let generate_us_per_byte = 4.0
let transform_us_per_instr = 2.0

let parse_cost_of bytes =
  Int64.of_float (parse_us_per_byte *. Float.of_int (String.length bytes))

let generate_cost_of bytes =
  Int64.of_float (generate_us_per_byte *. Float.of_int (String.length bytes))

let transform_cost_of cf =
  Int64.of_float
    (transform_us_per_instr *. Float.of_int (Bytecode.Classfile.instruction_count cf))

(* Telemetry around the pipeline: the parse, each filter and code
   generation get wall-clock spans; the simulated cost model feeds the
   *_us histograms the metrics snapshot reports. All of it is behind
   the registry's enabled flag. *)

let record_outcome (o : outcome) =
  if Telemetry.Global.on () then begin
    Telemetry.Global.incr "pipeline.classes";
    Telemetry.Global.observe "pipeline.parse_us" o.parse_cost;
    Telemetry.Global.observe "pipeline.transform_us" o.transform_cost;
    Telemetry.Global.observe "pipeline.generate_us" o.generate_cost;
    match o.rejected with
    | Some (filter, _) ->
      Telemetry.Global.incr "pipeline.rejections";
      Telemetry.Global.incr ("pipeline.reject." ^ filter)
    | None -> ()
  end

let apply_filter f cf =
  if not (Telemetry.Global.on ()) then Rewrite.Filter.apply f cf
  else
    let name = f.Rewrite.Filter.name in
    Telemetry.Global.with_span ~cat:"pipeline"
      ~args:[ ("class", cf.Bytecode.Classfile.name) ]
      ~observe_hist:("pipeline.filter_us." ^ name)
      ("pipeline.filter:" ^ name)
      (fun () ->
        Telemetry.Global.observe
          ("pipeline.filter_model_us." ^ name)
          (transform_cost_of cf);
        Rewrite.Filter.apply f cf)

let parse_traced bytes =
  Telemetry.Global.with_span ~cat:"pipeline" "pipeline.parse" (fun () ->
      Bytecode.Decode.class_of_bytes bytes)

let generate_traced cf =
  Telemetry.Global.with_span ~cat:"pipeline" "pipeline.generate" (fun () ->
      Bytecode.Encode.class_to_bytes cf)

(* Post-transform admission gate: runs over the fully transformed
   class, [Some reason] rejects it exactly like a filter rejection
   (§3.1 error-propagation replacement). The translation-validating
   certifier plugs in here — the pipeline itself stays agnostic about
   what the gate proves. *)
type gate = Bytecode.Classfile.t -> string option

let apply_gate g cf =
  Telemetry.Global.with_span ~cat:"pipeline"
    ~args:[ ("class", cf.Bytecode.Classfile.name) ]
    "pipeline.certify"
    (fun () ->
      match g cf with
      | None ->
        Telemetry.Global.incr "certify.ok";
        None
      | Some reason ->
        Telemetry.Global.incr "certify.fail";
        Some reason)

let run_uncached ?(policy_version = 0) ?signer ?gate filters (bytes : string) :
    outcome =
  let parse_cost = parse_cost_of bytes in
  match parse_traced bytes with
  | exception Bytecode.Decode.Format_error reason ->
    (* Undecodable input: substitute the error class outright. *)
    let name = "malformed/Input" in
    let repl = Verifier.Error_class.build ~name ~message:reason in
    let out = Bytecode.Encode.class_to_bytes repl in
    let o =
      {
        out_bytes = out;
        out_version = policy_version;
        rejected = Some ("decode", reason);
        parse_cost;
        transform_cost = 0L;
        generate_cost = generate_cost_of out;
        parses = 1;
      }
    in
    record_outcome o;
    o
  | cf -> (
    let transform_cost = ref 0L in
    match
      List.fold_left
        (fun acc f ->
          transform_cost := Int64.add !transform_cost (transform_cost_of acc);
          apply_filter f acc)
        cf filters
    with
    | transformed -> (
      let gate_rejection =
        match gate with
        | None -> None
        | Some g ->
          Option.map
            (fun reason -> (transformed.Bytecode.Classfile.name, reason))
            (apply_gate g transformed)
      in
      match gate_rejection with
      | Some (cls, reason) ->
        (* The certifier refused the transformed class: same §3.1
           conversion as a filter rejection. *)
        let repl = Verifier.Error_class.build ~name:cls ~message:reason in
        let repl =
          match signer with None -> repl | Some key -> Dsig.Sign.sign key repl
        in
        let out = Bytecode.Encode.class_to_bytes repl in
        let o =
          {
            out_bytes = out;
            out_version = policy_version;
            rejected = Some ("certify", reason);
            parse_cost;
            transform_cost = !transform_cost;
            generate_cost = generate_cost_of out;
            parses = 1;
          }
        in
        record_outcome o;
        o
      | None -> (
      let transformed =
        match signer with
        | None -> transformed
        | Some key ->
          Telemetry.Global.with_span ~cat:"pipeline" "pipeline.sign"
            (fun () -> Dsig.Sign.sign key transformed)
      in
      match generate_traced transformed with
      | out ->
        let o =
          {
            out_bytes = out;
            out_version = policy_version;
            rejected = None;
            parse_cost;
            transform_cost = !transform_cost;
            generate_cost = generate_cost_of out;
            parses = 1;
          }
        in
        record_outcome o;
        o
      | exception Bytecode.Io.Overflow reason ->
        (* A filter inflated the class past a classfile encoding limit
           (a 16-bit length or index field). That is a rejection like
           any other (§3.1): the client gets an error-propagation
           replacement class naming the oversized field, not a
           truncated or silently-masked image. *)
        let repl =
          Verifier.Error_class.build
            ~name:transformed.Bytecode.Classfile.name ~message:reason
        in
        let repl =
          match signer with None -> repl | Some key -> Dsig.Sign.sign key repl
        in
        let out = Bytecode.Encode.class_to_bytes repl in
        let o =
          {
            out_bytes = out;
            out_version = policy_version;
            rejected = Some ("encode", reason);
            parse_cost;
            transform_cost = !transform_cost;
            generate_cost = generate_cost_of out;
            parses = 1;
          }
        in
        record_outcome o;
        o))
    | exception Rewrite.Filter.Rejected { filter; cls; reason } ->
      let repl = Verifier.Error_class.build ~name:cls ~message:reason in
      let repl =
        match signer with None -> repl | Some key -> Dsig.Sign.sign key repl
      in
      let out = Bytecode.Encode.class_to_bytes repl in
      let o =
        {
          out_bytes = out;
          out_version = policy_version;
          rejected = Some (filter, reason);
          parse_cost;
          transform_cost = !transform_cost;
          generate_cost = generate_cost_of out;
          parses = 1;
        }
      in
      record_outcome o;
      o)

(* --- Host-CPU memoization. ---

   The pipeline is a pure function of its input (that is what the
   farm's determinism checks assert), so when an experiment pushes the
   same class bytes through the same filter stack thousands of times —
   chaos and scaling runs deliberately disable the simulated cache so
   "every fetch is real pipeline work" in the *cost model* — the host
   CPU need not redo the parse/verify/rewrite/generate work to produce
   the identical outcome. A memo caches the outcome together with the
   telemetry tape of the first run; a hit replays the tape (identical
   counters, histogram observations and span structure, with live span
   ids and the ambient trace scope) and returns the shared outcome.
   Simulated costs, served bytes and every pinned digest are untouched:
   only host wall-clock changes.

   Memoization is opt-in per call site because filters are arbitrary
   closures: a stack is memo-safe only when its filters are effect-free
   apart from telemetry (no caller-visible counter records, no audit
   appends). The standard chaos/scaling stacks qualify; experiment
   stacks that thread mutable counter records do not. *)

module Memo = struct
  type entry = {
    me_outcome : outcome;
    me_tape : Telemetry.tape option;
    me_telemetry : bool; (* registry enabled when captured *)
  }

  type t = {
    tbl : (int * string, entry) Hashtbl.t; (* (policy version, input bytes) -> entry *)
    cap : int; (* stop inserting past this many entries *)
    mutable hits : int;
    mutable misses : int;
    (* The stack and signer the cached entries were computed under;
       pinned on first use so accidental sharing across different
       pipelines falls back to real runs instead of serving wrong
       bytes. *)
    mutable key_filters : Rewrite.Filter.t list option;
    mutable key_signer : Dsig.Sign.key option option;
    mutable key_gate : gate option option;
  }

  let create ?(cap = 1024) () =
    {
      tbl = Hashtbl.create 64;
      cap;
      hits = 0;
      misses = 0;
      key_filters = None;
      key_signer = None;
      key_gate = None;
    }

  let hits t = t.hits
  let misses t = t.misses

  (* Physical equality is the right notion for all three: filter lists
     are built once per experiment and shared across the pool, and a
     signer key or gate closure is a value the caller threads around,
     not something reconstructed per request. *)
  let matches t filters signer gate =
    (match t.key_filters with None -> true | Some fs -> fs == filters)
    && (match t.key_signer with
       | None -> true
       | Some None -> signer = None
       | Some (Some k) -> (
         match signer with Some k' -> k == k' | None -> false))
    && match t.key_gate with
       | None -> true
       | Some None -> gate = None
       | Some (Some g) -> (
         match gate with Some g' -> g == g' | None -> false)

  let pin t filters signer gate =
    if t.key_filters = None then begin
      t.key_filters <- Some filters;
      t.key_signer <- Some signer;
      t.key_gate <- Some gate
    end
end

let run ?(policy_version = 0) ?memo ?signer ?gate filters (bytes : string) :
    outcome =
  match memo with
  | None -> run_uncached ~policy_version ?signer ?gate filters bytes
  | Some m when not (Memo.matches m filters signer gate) ->
    run_uncached ~policy_version ?signer ?gate filters bytes
  | Some m -> (
    Memo.pin m filters signer gate;
    let live = Telemetry.Global.on () in
    (* The memo key carries the policy version alongside the bytes:
       two versions whose filter stacks happen to be shared physically
       must still never serve each other's outcomes. *)
    let key = (policy_version, bytes) in
    match Hashtbl.find_opt m.Memo.tbl key with
    | Some e when e.Memo.me_telemetry = live ->
      m.Memo.hits <- m.Memo.hits + 1;
      (match e.Memo.me_tape with
      | Some tape -> Telemetry.replay Telemetry.default tape
      | None -> ());
      e.Memo.me_outcome
    | _ ->
      m.Memo.misses <- m.Memo.misses + 1;
      let o, tape =
        Telemetry.capture Telemetry.default (fun () ->
            run_uncached ~policy_version ?signer ?gate filters bytes)
      in
      (match tape with
      | Some _ when Hashtbl.length m.Memo.tbl < m.Memo.cap ->
        Hashtbl.replace m.Memo.tbl key
          { Memo.me_outcome = o; me_tape = tape; me_telemetry = live }
      | _ -> ());
      o)

(* Ablation: the naive structure that re-parses and re-generates
   between every pair of services, as if each were an independent
   proxy. Same output, multiplied parse/generate cost. *)
let run_parse_per_service ?(policy_version = 0) ?signer ?gate filters bytes :
    outcome =
  (* A rejection carries the name the replacement class must take —
     the rejected class's own name (so the client's load of it raises
     the error), or the fixed "malformed/Input" when the input never
     decoded. [run] follows the same rule; the ablation must produce
     the same output, only at multiplied cost. *)
  let rec go bytes acc_parse acc_transform acc_generate parses = function
    | [] -> (bytes, acc_parse, acc_transform, acc_generate, parses, None)
    | f :: rest -> (
      let parse = parse_cost_of bytes in
      match Bytecode.Decode.class_of_bytes bytes with
      | exception Bytecode.Decode.Format_error reason ->
        (bytes, Int64.add acc_parse parse, acc_transform, acc_generate, parses + 1,
         Some ("decode", reason, "malformed/Input"))
      | cf -> (
        let tc = transform_cost_of cf in
        match Rewrite.Filter.apply f cf with
        | cf' -> (
          (* Same §3.1 conversion as [run]: an encoding-limit overflow
             is a rejection naming the oversized field. *)
          match Bytecode.Encode.class_to_bytes cf' with
          | out ->
            go out (Int64.add acc_parse parse) (Int64.add acc_transform tc)
              (Int64.add acc_generate (generate_cost_of out))
              (parses + 1) rest
          | exception Bytecode.Io.Overflow reason ->
            (bytes, Int64.add acc_parse parse, Int64.add acc_transform tc,
             acc_generate, parses + 1,
             Some ("encode", reason, cf'.Bytecode.Classfile.name)))
        | exception Rewrite.Filter.Rejected { filter; cls; reason } ->
          (bytes, Int64.add acc_parse parse, Int64.add acc_transform tc,
           acc_generate, parses + 1, Some (filter, reason, cls))))
  in
  let out, parse_cost, transform_cost, generate_cost, parses, rejected =
    go bytes 0L 0L 0L 0 filters
  in
  (* The gate sees the final parsed image — the ablation re-parses for
     it like it does between services (same output as [run], more
     parse cost). *)
  let parse_cost, rejected =
    match (rejected, gate) with
    | Some _, _ | None, None -> (parse_cost, rejected)
    | None, Some g -> (
      let parse_cost = Int64.add parse_cost (parse_cost_of out) in
      match Bytecode.Decode.class_of_bytes out with
      | exception Bytecode.Decode.Format_error reason ->
        (parse_cost, Some ("decode", reason, "malformed/Input"))
      | cf -> (
        match apply_gate g cf with
        | None -> (parse_cost, None)
        | Some reason ->
          (parse_cost, Some ("certify", reason, cf.Bytecode.Classfile.name))))
  in
  let out_bytes, rejected, generate_cost =
    match rejected with
    | None -> (out, None, generate_cost)
    | Some (filter, reason, repl_name) ->
      let repl = Verifier.Error_class.build ~name:repl_name ~message:reason in
      let out = Bytecode.Encode.class_to_bytes repl in
      (* Generating the replacement is proxy work too, exactly as in
         [run]. *)
      (out, Some (filter, reason), Int64.add generate_cost (generate_cost_of out))
  in
  let out_bytes =
    match signer with
    | None -> out_bytes
    | Some key ->
      Bytecode.Encode.class_to_bytes
        (Dsig.Sign.sign key (Bytecode.Decode.class_of_bytes out_bytes))
  in
  { out_bytes; out_version = policy_version; rejected; parse_cost;
    transform_cost; generate_cost; parses }
