(** The static-service pipeline (Figure 2).

    Code flows through a stack of independent code-transformation
    filters; parsing and generation happen once for all services. A
    rejection anywhere becomes an error-propagation replacement class,
    so failures reach clients as ordinary Java exceptions. *)

type outcome = {
  out_bytes : string;
  out_version : int;
      (** security-policy version the class was rewritten under
          (stamped onto every cache/L2 entry); 0 = unversioned *)
  rejected : (string * string) option;  (** (filter, reason) *)
  parse_cost : int64;  (** µs of proxy CPU *)
  transform_cost : int64;
  generate_cost : int64;
  parses : int;
}

val total_cost : outcome -> int64

val digest : outcome -> string
(** MD5 of [out_bytes] — the pipeline is pure, so the same input class
    digests identically no matter which proxy shard ran it. *)

val parse_us_per_byte : float
val generate_us_per_byte : float
val transform_us_per_instr : float

val parse_cost_of : string -> int64
val generate_cost_of : string -> int64
val transform_cost_of : Bytecode.Classfile.t -> int64

type gate = Bytecode.Classfile.t -> string option
(** Post-transform admission gate: runs over the fully transformed
    class; [Some reason] rejects it exactly like a filter rejection
    (filter name ["certify"], §3.1 replacement class, counters
    [certify.ok]/[certify.fail] and a [pipeline.certify] span). The
    translation-validating certifier plugs in here. *)

(** Host-CPU memoization of pipeline outcomes.

    The pipeline is a pure function of its input, so load experiments
    that push the same class bytes through the same stack thousands of
    times (chaos and scaling runs disable the simulated cache on
    purpose) can reuse the first outcome. A hit replays the first
    run's telemetry tape — identical counters, histogram observations
    and span structure, under the ambient trace scope — and returns
    the shared outcome, so simulated costs, served bytes and pinned
    digests are byte-identical to real re-runs; only host wall-clock
    changes.

    Opt-in per call site: a stack is memo-safe only when its filters
    are effect-free apart from telemetry. The memo pins itself to the
    first (filters, signer) pair it serves and falls back to real runs
    for any other, so one memo can be shared across a proxy pool the
    way the shared L2 cache is. *)
module Memo : sig
  type t

  val create : ?cap:int -> unit -> t
  (** [cap] bounds the number of cached inputs (default 1024); past
      it, new inputs run uncached. *)

  val hits : t -> int
  val misses : t -> int
end

val run :
  ?policy_version:int ->
  ?memo:Memo.t ->
  ?signer:Dsig.Sign.key ->
  ?gate:gate ->
  Rewrite.Filter.t list ->
  string ->
  outcome
(** A memo pins itself to the first (filters, signer, gate) triple it
    serves — all compared physically — and falls back to real runs for
    any other. [policy_version] (default 0 = unversioned) is stamped
    into [out_version] and keys the memo alongside the input bytes, so
    outcomes computed under different policy versions never alias. *)

val run_parse_per_service :
  ?policy_version:int ->
  ?signer:Dsig.Sign.key -> ?gate:gate -> Rewrite.Filter.t list -> string -> outcome
(** Ablation: re-parse and re-generate between every pair of services
    (same output, multiplied cost — including one more parse for the
    gate, which in {!run} reuses the in-memory image). *)
